//! HODLR (hierarchically off-diagonal low-rank) matrices with a direct
//! solver — the working form of the paper's §11 outlook ("we plan to
//! extend our study by integrating our GPU implementation of the
//! randomized algorithm … for [the] HSS solver \[7, 22\]").
//!
//! A [`HodlrMatrix`] partitions a square matrix recursively into 2×2
//! blocks; at every level the two off-diagonal blocks are compressed to
//! rank `k` with the randomized sampler, and only the leaf diagonal
//! blocks stay dense. Storage and matvec cost `O(k·n·log n)`.
//!
//! The solver is the Ambikasaran–Darve recursive Woodbury scheme: each
//! node is `D + U·Vᵀ` with `D` block diagonal of its children, so
//!
//! `(D + UVᵀ)⁻¹ b = D⁻¹b − D⁻¹U·(I + VᵀD⁻¹U)⁻¹·VᵀD⁻¹b`,
//!
//! where `D⁻¹` recurses into the children and the capacitance system
//! `I + VᵀD⁻¹U` is a small dense `2k × 2k` solve. Total cost
//! `O(k²·n·log²n)` — the reason hierarchical solvers want a fast
//! compression kernel, which is exactly what the paper's GPU sampler
//! provides.

use crate::config::SamplerConfig;
use crate::fixed_rank::sample_fixed_rank;
use rand::Rng;
use rlra_blas::{gemm, gemv, Trans};
use rlra_matrix::{Mat, MatrixError, Result};

/// A node of the HODLR tree.
#[derive(Debug, Clone)]
enum Node {
    /// Leaf: dense diagonal block.
    Leaf(Mat),
    /// Internal: two children plus the rank-`k` off-diagonal factors
    /// `A₁₂ ≈ U₁·V₁ᵀ` (top-right) and `A₂₁ ≈ U₂·V₂ᵀ` (bottom-left).
    Branch {
        left: Box<Node>,
        right: Box<Node>,
        /// Rows of the left child.
        split: usize,
        /// `U₁` (`split × k`), `V₁` (`n−split × k`).
        u1: Mat,
        v1: Mat,
        /// `U₂` (`n−split × k`), `V₂` (`split × k`).
        u2: Mat,
        v2: Mat,
    },
}

/// A hierarchically off-diagonal low-rank matrix.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use rlra_core::{HodlrMatrix, SamplerConfig};
/// use rlra_matrix::Mat;
///
/// // A diagonally dominant smooth-kernel system.
/// let n = 128;
/// let a = Mat::from_fn(n, n, |i, j| {
///     let d = (i as f64 - j as f64).abs() / n as f64;
///     1.0 / (1.0 + 32.0 * d) + if i == j { 2.0 } else { 0.0 }
/// });
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let cfg = SamplerConfig::new(8).with_p(6).with_q(1);
/// let h = HodlrMatrix::compress(&a, 32, &cfg, &mut rng).unwrap();
///
/// // Direct solve through the hierarchy.
/// let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
/// let x = h.solve(&b).unwrap();
/// let hx = h.matvec(&x).unwrap();
/// let err: f64 = hx.iter().zip(&b).map(|(p, q)| (p - q).powi(2)).sum::<f64>().sqrt();
/// assert!(err < 1e-8);
/// ```
#[derive(Debug, Clone)]
pub struct HodlrMatrix {
    root: Node,
    n: usize,
    levels: usize,
}

impl HodlrMatrix {
    /// Compresses the square matrix `a`: blocks of `leaf_size` or fewer
    /// rows stay dense; every off-diagonal block is compressed to rank
    /// `cfg.k` by random sampling.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidParameter`] for non-square inputs or
    /// leaf sizes that cannot accommodate the sampling dimension
    /// `ℓ = k + p`.
    pub fn compress(
        a: &Mat,
        leaf_size: usize,
        cfg: &SamplerConfig,
        rng: &mut impl Rng,
    ) -> Result<HodlrMatrix> {
        let (m, n) = a.shape();
        if m != n {
            return Err(MatrixError::InvalidParameter {
                name: "a",
                message: format!("HODLR needs a square matrix, got {m}x{n}"),
            });
        }
        if leaf_size < 2 * cfg.l() {
            return Err(MatrixError::InvalidParameter {
                name: "leaf_size",
                message: format!(
                    "leaf size {leaf_size} must be at least 2·(k + p) = {}",
                    2 * cfg.l()
                ),
            });
        }
        let mut levels = 0usize;
        let root = build(a, leaf_size, cfg, rng, 0, &mut levels)?;
        Ok(HodlrMatrix { root, n, levels })
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Depth of the hierarchy (0 = a single dense block).
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Total stored entries.
    pub fn stored_entries(&self) -> usize {
        stored(&self.root)
    }

    /// Compression ratio `dense / stored`.
    pub fn compression_ratio(&self) -> f64 {
        (self.n * self.n) as f64 / self.stored_entries() as f64
    }

    /// `y = H·x`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] on length mismatch.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(MatrixError::DimensionMismatch {
                op: "HodlrMatrix::matvec",
                expected: format!("x.len() == {}", self.n),
                found: format!("x.len() == {}", x.len()),
            });
        }
        let mut y = vec![0.0f64; self.n];
        apply(&self.root, x, &mut y)?;
        Ok(y)
    }

    /// Direct solve `H·x = b` by the recursive Woodbury factorization.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::SingularDiagonal`]-class errors if a leaf
    /// block or a capacitance system is numerically singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.n {
            return Err(MatrixError::DimensionMismatch {
                op: "HodlrMatrix::solve",
                expected: format!("b.len() == {}", self.n),
                found: format!("b.len() == {}", b.len()),
            });
        }
        let bm = Mat::from_col_major(self.n, 1, b.to_vec())?;
        let x = solve_mat(&self.root, &bm)?;
        Ok(x.into_vec())
    }

    /// Reconstructs the dense matrix (diagnostics / tests).
    pub fn to_dense(&self) -> Result<Mat> {
        dense(&self.root)
    }
}

fn build(
    a: &Mat,
    leaf_size: usize,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
    depth: usize,
    levels: &mut usize,
) -> Result<Node> {
    let n = a.rows();
    *levels = (*levels).max(depth);
    if n <= leaf_size {
        return Ok(Node::Leaf(a.clone()));
    }
    let split = n / 2;
    let a11 = a.submatrix(0, 0, split, split);
    let a22 = a.submatrix(split, split, n - split, n - split);
    let a12 = a.submatrix(0, split, split, n - split);
    let a21 = a.submatrix(split, 0, n - split, split);

    // Compress the off-diagonal blocks with the randomized sampler and
    // convert to (U, V) outer-product form: A ≈ Q·R·Pᵀ = Q·(R·Pᵀ) ⇒
    // U = Q, Vᵀ = R·Pᵀ.
    let (u1, v1) = outer_factors(&a12, cfg, rng)?;
    let (u2, v2) = outer_factors(&a21, cfg, rng)?;
    let left = build(&a11, leaf_size, cfg, rng, depth + 1, levels)?;
    let right = build(&a22, leaf_size, cfg, rng, depth + 1, levels)?;
    Ok(Node::Branch {
        left: Box::new(left),
        right: Box::new(right),
        split,
        u1,
        v1,
        u2,
        v2,
    })
}

/// Rank-`k` outer-product factors `(U, V)` with `block ≈ U·Vᵀ`.
fn outer_factors(block: &Mat, cfg: &SamplerConfig, rng: &mut impl Rng) -> Result<(Mat, Mat)> {
    let lr = sample_fixed_rank(block, cfg, rng)?;
    let u = lr.q.clone();
    // Vᵀ = R·Pᵀ, i.e. V = (R·P⁻¹-applied)ᵀ = P applied to Rᵀ's rows.
    let r_unperm = lr.perm.inverse().apply_cols(&lr.r)?;
    Ok((u, r_unperm.transpose()))
}

fn stored(node: &Node) -> usize {
    match node {
        Node::Leaf(d) => d.rows() * d.cols(),
        Node::Branch {
            left,
            right,
            u1,
            v1,
            u2,
            v2,
            ..
        } => {
            stored(left)
                + stored(right)
                + u1.rows() * u1.cols()
                + v1.rows() * v1.cols()
                + u2.rows() * u2.cols()
                + v2.rows() * v2.cols()
        }
    }
}

fn apply(node: &Node, x: &[f64], y: &mut [f64]) -> Result<()> {
    match node {
        Node::Leaf(d) => gemv(1.0, d.as_ref(), Trans::No, x, 1.0, y),
        Node::Branch {
            left,
            right,
            split,
            u1,
            v1,
            u2,
            v2,
        } => {
            let (x1, x2) = x.split_at(*split);
            {
                let (y1, y2) = y.split_at_mut(*split);
                apply(left, x1, y1)?;
                apply(right, x2, y2)?;
            }
            // y1 += U1 (V1ᵀ x2); y2 += U2 (V2ᵀ x1).
            let k1 = u1.cols();
            let mut t = vec![0.0f64; k1];
            gemv(1.0, v1.as_ref(), Trans::Yes, x2, 0.0, &mut t)?;
            let (y1, y2) = y.split_at_mut(*split);
            gemv(1.0, u1.as_ref(), Trans::No, &t, 1.0, y1)?;
            let k2 = u2.cols();
            let mut t2 = vec![0.0f64; k2];
            gemv(1.0, v2.as_ref(), Trans::Yes, x1, 0.0, &mut t2)?;
            gemv(1.0, u2.as_ref(), Trans::No, &t2, 1.0, y2)?;
            Ok(())
        }
    }
}

fn dense(node: &Node) -> Result<Mat> {
    match node {
        Node::Leaf(d) => Ok(d.clone()),
        Node::Branch {
            left,
            right,
            split,
            u1,
            v1,
            u2,
            v2,
        } => {
            let dl = dense(left)?;
            let dr = dense(right)?;
            let n = dl.rows() + dr.rows();
            let mut out = Mat::zeros(n, n);
            out.set_submatrix(0, 0, &dl);
            out.set_submatrix(*split, *split, &dr);
            let mut a12 = Mat::zeros(u1.rows(), v1.rows());
            gemm(
                1.0,
                u1.as_ref(),
                Trans::No,
                v1.as_ref(),
                Trans::Yes,
                0.0,
                a12.as_mut(),
            )?;
            out.set_submatrix(0, *split, &a12);
            let mut a21 = Mat::zeros(u2.rows(), v2.rows());
            gemm(
                1.0,
                u2.as_ref(),
                Trans::No,
                v2.as_ref(),
                Trans::Yes,
                0.0,
                a21.as_mut(),
            )?;
            out.set_submatrix(*split, 0, &a21);
            Ok(out)
        }
    }
}

/// Solves `node · X = B` for a (multi-column) right-hand side via the
/// recursive Woodbury identity.
fn solve_mat(node: &Node, b: &Mat) -> Result<Mat> {
    match node {
        Node::Leaf(d) => dense_solve(d, b),
        Node::Branch {
            left,
            right,
            split,
            u1,
            v1,
            u2,
            v2,
        } => {
            let n = b.rows();
            let nrhs = b.cols();
            let k1 = u1.cols();
            let k2 = u2.cols();
            // The node is D + U·Vᵀ with
            // U = [[U1, 0], [0, U2]]  (n × (k1 + k2)),
            // V = [[0, V2], [V1, 0]]  (n × (k1 + k2))
            // so U·Vᵀ places U1·V1ᵀ top-right and U2·V2ᵀ bottom-left.
            //
            // Woodbury: x = D⁻¹b − D⁻¹U (I + Vᵀ D⁻¹ U)⁻¹ Vᵀ D⁻¹ b.
            // D⁻¹ [b; U] in one recursive sweep per child.
            let b1 = b.submatrix(0, 0, *split, nrhs);
            let b2 = b.submatrix(*split, 0, n - *split, nrhs);
            let rhs1 = b1.hcat(u1)?; // split × (nrhs + k1)
            let rhs2 = b2.hcat(u2)?; // (n − split) × (nrhs + k2)
            let sol1 = solve_mat(left, &rhs1)?;
            let sol2 = solve_mat(right, &rhs2)?;
            let d1b = sol1.submatrix(0, 0, *split, nrhs);
            let d1u1 = sol1.submatrix(0, nrhs, *split, k1);
            let d2b = sol2.submatrix(0, 0, n - *split, nrhs);
            let d2u2 = sol2.submatrix(0, nrhs, n - *split, k2);

            // Capacitance C = I + Vᵀ D⁻¹ U ((k1 + k2) square):
            // Vᵀ D⁻¹ U = [[0, V2ᵀ·D2⁻¹U2... ]] — with the U/V block
            // structure above:
            //   row block 1 (k1): V1ᵀ applied to the *second* half ⇒
            //     V1ᵀ·(D2⁻¹U2) in the (1, 2) block;
            //   row block 2 (k2): V2ᵀ·(D1⁻¹U1) in the (2, 1) block.
            let mut c = Mat::identity(k1 + k2);
            {
                let mut c12 = Mat::zeros(k1, k2);
                gemm(
                    1.0,
                    v1.as_ref(),
                    Trans::Yes,
                    d2u2.as_ref(),
                    Trans::No,
                    0.0,
                    c12.as_mut(),
                )?;
                c.set_submatrix(0, k1, &c12);
                let mut c21 = Mat::zeros(k2, k1);
                gemm(
                    1.0,
                    v2.as_ref(),
                    Trans::Yes,
                    d1u1.as_ref(),
                    Trans::No,
                    0.0,
                    c21.as_mut(),
                )?;
                c.set_submatrix(k1, 0, &c21);
            }
            // w = Vᵀ D⁻¹ b: rows 1..k1 = V1ᵀ·D2⁻¹b2, rows k1.. = V2ᵀ·D1⁻¹b1.
            let mut w = Mat::zeros(k1 + k2, nrhs);
            {
                let mut w1 = Mat::zeros(k1, nrhs);
                gemm(
                    1.0,
                    v1.as_ref(),
                    Trans::Yes,
                    d2b.as_ref(),
                    Trans::No,
                    0.0,
                    w1.as_mut(),
                )?;
                w.set_submatrix(0, 0, &w1);
                let mut w2 = Mat::zeros(k2, nrhs);
                gemm(
                    1.0,
                    v2.as_ref(),
                    Trans::Yes,
                    d1b.as_ref(),
                    Trans::No,
                    0.0,
                    w2.as_mut(),
                )?;
                w.set_submatrix(k1, 0, &w2);
            }
            // y = C⁻¹ w (small dense solve).
            let y = dense_solve(&c, &w)?;
            // x = D⁻¹b − D⁻¹U y, assembled per half.
            let y1 = y.submatrix(0, 0, k1, nrhs);
            let y2 = y.submatrix(k1, 0, k2, nrhs);
            let mut x = Mat::zeros(n, nrhs);
            {
                let mut x1 = d1b.clone();
                gemm(
                    -1.0,
                    d1u1.as_ref(),
                    Trans::No,
                    y1.as_ref(),
                    Trans::No,
                    1.0,
                    x1.as_mut(),
                )?;
                x.set_submatrix(0, 0, &x1);
                let mut x2 = d2b.clone();
                gemm(
                    -1.0,
                    d2u2.as_ref(),
                    Trans::No,
                    y2.as_ref(),
                    Trans::No,
                    1.0,
                    x2.as_mut(),
                )?;
                x.set_submatrix(*split, 0, &x2);
            }
            Ok(x)
        }
    }
}

/// Dense direct solve `A·X = B` for the small systems at the leaves and
/// capacitance nodes (LU with partial pivoting from the substrate).
fn dense_solve(a: &Mat, b: &Mat) -> Result<Mat> {
    rlra_lapack::lu_solve(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_data::{kernel_matrix, uniform_points, Kernel};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Diagonally shifted Cauchy kernel: well conditioned, hierarchically
    /// low rank off the diagonal.
    fn shifted_kernel(n: usize) -> Mat {
        let mut a = kernel_matrix(Kernel::Cauchy { gamma: 48.0 }, &uniform_points(n));
        for i in 0..n {
            a[(i, i)] += 2.0;
        }
        a
    }

    #[test]
    fn compresses_and_reconstructs() {
        let a = shifted_kernel(256);
        let cfg = SamplerConfig::new(10).with_p(6).with_q(1);
        let h = HodlrMatrix::compress(&a, 64, &cfg, &mut rng(1)).unwrap();
        assert!(h.levels() >= 2, "256 with 64-leaves gives 2 levels");
        assert!(
            h.compression_ratio() > 1.5,
            "ratio {:.2}",
            h.compression_ratio()
        );
        let rec = h.to_dense().unwrap();
        let err =
            rlra_matrix::norms::spectral_norm(rlra_matrix::ops::sub(&a, &rec).unwrap().as_ref())
                / rlra_matrix::norms::spectral_norm(a.as_ref());
        assert!(err < 1e-7, "HODLR reconstruction error {err:e}");
    }

    #[test]
    fn matvec_matches_dense() {
        let a = shifted_kernel(192);
        let cfg = SamplerConfig::new(8).with_p(6).with_q(1);
        let h = HodlrMatrix::compress(&a, 48, &cfg, &mut rng(2)).unwrap();
        let x: Vec<f64> = (0..192).map(|i| (i as f64 * 0.05).sin()).collect();
        let y_h = h.matvec(&x).unwrap();
        let mut y_d = vec![0.0; 192];
        gemv(1.0, a.as_ref(), Trans::No, &x, 0.0, &mut y_d).unwrap();
        let err: f64 = y_h
            .iter()
            .zip(&y_d)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            / rlra_matrix::norms::vec_norm2(&y_d);
        assert!(err < 1e-6, "matvec error {err:e}");
    }

    #[test]
    fn solver_matches_dense_solution() {
        let n = 256;
        let a = shifted_kernel(n);
        let cfg = SamplerConfig::new(12).with_p(8).with_q(1);
        let h = HodlrMatrix::compress(&a, 64, &cfg, &mut rng(3)).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let x = h.solve(&b).unwrap();
        // Residual against the ORIGINAL dense matrix (so the error has
        // both the compression and the solver in it).
        let mut r = b.clone();
        gemv(-1.0, a.as_ref(), Trans::No, &x, 1.0, &mut r).unwrap();
        let rel = rlra_matrix::norms::vec_norm2(&r) / rlra_matrix::norms::vec_norm2(&b);
        assert!(rel < 1e-6, "solve residual {rel:e}");
    }

    #[test]
    fn solve_is_exact_for_its_own_operator() {
        // Against the HODLR operator itself the Woodbury solve is exact
        // to roundoff.
        let a = shifted_kernel(128);
        let cfg = SamplerConfig::new(8).with_p(6).with_q(1);
        let h = HodlrMatrix::compress(&a, 32, &cfg, &mut rng(4)).unwrap();
        let b: Vec<f64> = (0..128).map(|i| (i as f64 * 0.31).cos()).collect();
        let x = h.solve(&b).unwrap();
        let hx = h.matvec(&x).unwrap();
        let err: f64 = hx
            .iter()
            .zip(&b)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
            / rlra_matrix::norms::vec_norm2(&b);
        assert!(err < 1e-10, "self-consistency {err:e}");
    }

    #[test]
    fn single_level_equals_dense() {
        let a = shifted_kernel(40);
        let cfg = SamplerConfig::new(4).with_p(4);
        // Leaf size >= n: no hierarchy, exact dense block.
        let h = HodlrMatrix::compress(&a, 64, &cfg, &mut rng(5)).unwrap();
        assert_eq!(h.levels(), 0);
        assert!(h.to_dense().unwrap().approx_eq(&a, 0.0));
        let b: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let x = h.solve(&b).unwrap();
        let mut r = b.clone();
        gemv(-1.0, a.as_ref(), Trans::No, &x, 1.0, &mut r).unwrap();
        assert!(rlra_matrix::norms::vec_norm2(&r) < 1e-9);
    }

    #[test]
    fn validates_inputs() {
        let cfg = SamplerConfig::new(4).with_p(4);
        assert!(HodlrMatrix::compress(&Mat::zeros(10, 12), 8, &cfg, &mut rng(6)).is_err());
        // Leaf smaller than 2l.
        assert!(HodlrMatrix::compress(&shifted_kernel(64), 8, &cfg, &mut rng(7)).is_err());
        let h = HodlrMatrix::compress(&shifted_kernel(64), 64, &cfg, &mut rng(8)).unwrap();
        assert!(h.matvec(&vec![0.0; 63]).is_err());
        assert!(h.solve(&vec![0.0; 63]).is_err());
    }

    #[test]
    fn deeper_hierarchy_compresses_more() {
        let a = shifted_kernel(512);
        let cfg = SamplerConfig::new(8).with_p(6).with_q(1);
        let shallow = HodlrMatrix::compress(&a, 256, &cfg, &mut rng(9)).unwrap();
        let deep = HodlrMatrix::compress(&a, 64, &cfg, &mut rng(10)).unwrap();
        assert!(deep.levels() > shallow.levels());
        assert!(
            deep.compression_ratio() > shallow.compression_ratio(),
            "deep {:.2} vs shallow {:.2}",
            deep.compression_ratio(),
            shallow.compression_ratio()
        );
    }
}
