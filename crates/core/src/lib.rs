//! # rlra-core
//!
//! Randomized sampling for low-rank approximation of dense matrices —
//! the primary contribution of Mary, Yamazaki, Kurzak, Luszczek, Tomov
//! and Dongarra, *"Performance of Random Sampling for Computing Low-rank
//! Approximations of a Dense Matrix on GPUs"*, SC'15.
//!
//! The algorithm (the paper's Figure 2) computes `A·P ≈ Q·R` in three
//! steps:
//!
//! 1. **Sampling** — `B = Ω·A` with an `ℓ × m` Gaussian (or
//!    subsampled-FFT) matrix, `ℓ = k + p`, optionally refined by `q`
//!    power iterations `C = B·Aᵀ`, `B = C·A` with CholQR
//!    re-orthogonalization after every application,
//! 2. **QRCP** — a truncated QP3 of the small sampled matrix `B` selects
//!    the `k` pivot columns and yields `T = R̂₁:ₖ⁻¹·R̂ₖ₊₁:ₙ`,
//! 3. **QR** — a tall-skinny QR of `A·P₁:ₖ` (CholQR) produces `Q` and
//!    `R = R̄·[I | T]`.
//!
//! The pipeline is written **once**, against the [`backend::Executor`]
//! trait ([`backend::run_fixed_rank`]); four execution backends plug in:
//!
//! - [`backend::CpuExec`] — plain CPU reference,
//! - [`backend::GpuExec`] — single simulated GPU with the paper's
//!   phase-by-phase time breakdown (Figures 11–14),
//! - [`backend::MultiGpuExec`] — the 1D block-row multi-GPU variant of §4
//!   (Figure 15),
//! - [`backend::ClusterExec`] — the distributed-memory extrapolation of
//!   §11 (timing-only),
//!
//! with thin compatibility wrappers in [`fixed_rank`], [`gpu_exec`],
//! [`multi`] and [`cluster_exec`]. The **adaptive sampling-size scheme**
//! for the fixed-accuracy problem (the paper's Figure 3 and Figures
//! 16–17) lives in [`adaptive`], and the deterministic truncated-QP3
//! **baseline** in [`baseline`].

#![forbid(unsafe_code)]

pub mod adaptive;
pub mod backend;
pub mod baseline;
pub mod blr;
pub mod checkpoint;
pub mod cluster_exec;
pub mod config;
pub mod cur;
pub mod durable;
pub mod estimate;
pub mod fixed_rank;
pub mod gpu_exec;
pub mod hodlr;
pub mod id;
pub mod multi;
pub mod observe;
pub mod power;
pub mod result;
pub mod rsvd;
pub mod solvers;

pub use adaptive::{
    adaptive_sample, adaptive_sample_exec, sample_fixed_accuracy, sample_fixed_accuracy_exec,
    sample_fixed_accuracy_protected, AdaptiveConfig, AdaptiveResult, AdaptiveStep, FinishMode,
    IncStrategy,
};
pub use backend::{
    run_fixed_rank, ClusterExec, CpuExec, ExecReport, Executor, GpuExec, Input, MultiGpuExec,
};
pub use baseline::{qp3_low_rank, qp3_low_rank_gpu};
pub use blr::{BlrBlock, BlrMatrix};
pub use checkpoint::{
    AdaptiveSnapshot, CheckpointPlan, CountingRng, Deadline, Durability, DurableOutcome,
    FixedRankSnapshot, FixedRankStage, GuardCounters, Partial, SnapshotKind,
};
pub use cluster_exec::{qp3_cluster_time, sample_fixed_rank_cluster, ClusterRunReport};
pub use config::{SamplerConfig, SamplingKind, Step2Kind};
pub use cur::{cur_decomposition, CurDecomposition};
pub use durable::{
    resume_fixed_accuracy, resume_fixed_rank, run_fixed_rank_durable,
    run_fixed_rank_durable_protected, sample_fixed_accuracy_durable,
};
pub use fixed_rank::{
    finish_from_sampled, finish_from_sampled_with, sample_fixed_rank, IncrementalFactors,
};
pub use gpu_exec::{sample_fixed_rank_gpu, RunReport};
pub use hodlr::HodlrMatrix;
pub use id::{interpolative_decomposition, InterpolativeDecomposition};
pub use multi::{sample_fixed_rank_multi_gpu, scaling_report, HostInput, MultiRunReport};
pub use observe::{incident_of, postmortem_dir, report_json, FlightDeck};
pub use result::LowRankApprox;
pub use rsvd::{randomized_svd, RandomizedSvd};
pub use solvers::{identity_preconditioner, pcg, PcgResult};
