//! # rlra-core
//!
//! Randomized sampling for low-rank approximation of dense matrices —
//! the primary contribution of Mary, Yamazaki, Kurzak, Luszczek, Tomov
//! and Dongarra, *"Performance of Random Sampling for Computing Low-rank
//! Approximations of a Dense Matrix on GPUs"*, SC'15.
//!
//! The algorithm (the paper's Figure 2) computes `A·P ≈ Q·R` in three
//! steps:
//!
//! 1. **Sampling** — `B = Ω·A` with an `ℓ × m` Gaussian (or
//!    subsampled-FFT) matrix, `ℓ = k + p`, optionally refined by `q`
//!    power iterations `C = B·Aᵀ`, `B = C·A` with CholQR
//!    re-orthogonalization after every application,
//! 2. **QRCP** — a truncated QP3 of the small sampled matrix `B` selects
//!    the `k` pivot columns and yields `T = R̂₁:ₖ⁻¹·R̂ₖ₊₁:ₙ`,
//! 3. **QR** — a tall-skinny QR of `A·P₁:ₖ` (CholQR) produces `Q` and
//!    `R = R̄·[I | T]`.
//!
//! Three execution paths are provided:
//!
//! - [`fixed_rank::sample_fixed_rank`] — plain CPU reference,
//! - [`gpu_exec::sample_fixed_rank_gpu`] — single simulated GPU with the
//!   paper's phase-by-phase time breakdown (Figures 11–14),
//! - [`multi::sample_fixed_rank_multi_gpu`] — the 1D block-row multi-GPU
//!   variant of §4 (Figure 15),
//!
//! plus the **adaptive sampling-size scheme** for the fixed-accuracy
//! problem (the paper's Figure 3 and Figures 16–17) in [`adaptive`], and
//! the deterministic truncated-QP3 **baseline** in [`baseline`].

pub mod adaptive;
pub mod baseline;
pub mod blr;
pub mod cluster_exec;
pub mod config;
pub mod cur;
pub mod estimate;
pub mod fixed_rank;
pub mod gpu_exec;
pub mod hodlr;
pub mod id;
pub mod multi;
pub mod power;
pub mod result;
pub mod solvers;
pub mod rsvd;

pub use adaptive::{adaptive_sample, AdaptiveConfig, AdaptiveResult, AdaptiveStep, IncStrategy};
pub use baseline::{qp3_low_rank, qp3_low_rank_gpu};
pub use blr::{BlrBlock, BlrMatrix};
pub use cluster_exec::{qp3_cluster_time, sample_fixed_rank_cluster, ClusterRunReport};
pub use config::{SamplerConfig, SamplingKind, Step2Kind};
pub use cur::{cur_decomposition, CurDecomposition};
pub use fixed_rank::{finish_from_sampled, sample_fixed_rank};
pub use gpu_exec::{sample_fixed_rank_gpu, RunReport};
pub use hodlr::HodlrMatrix;
pub use id::{interpolative_decomposition, InterpolativeDecomposition};
pub use multi::sample_fixed_rank_multi_gpu;
pub use result::LowRankApprox;
pub use solvers::{identity_preconditioner, pcg, PcgResult};
pub use rsvd::{randomized_svd, RandomizedSvd};
