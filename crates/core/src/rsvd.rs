//! Randomized SVD — the truncated singular value decomposition computed
//! through the sampled subspace.
//!
//! The paper returns its approximation in pivoted-QR form `A·P ≈ Q·R`
//! (eq. 1), but most downstream users of randomized low-rank
//! approximation (PCA, spectral clustering, the paper's own population
//! clustering use case) want the SVD form `A ≈ U·Σ·Vᵀ`. This module
//! finishes the sampled subspace the other standard way (Halko et al.
//! §5.1): project `A` onto the row basis, SVD the small projected
//! matrix, and rotate back.

use crate::config::{SamplerConfig, SamplingKind};
use crate::power::{orth_rows, power_iterate};
use rand::Rng;
use rlra_blas::{gemm, Trans};
use rlra_fft::SrftOperator;
use rlra_matrix::{gaussian_mat, Mat, Result};

/// A rank-`k` truncated SVD `A ≈ U·Σ·Vᵀ`.
#[derive(Debug, Clone)]
pub struct RandomizedSvd {
    /// Left singular vectors (`m × k`, orthonormal columns).
    pub u: Mat,
    /// Approximate singular values, non-increasing.
    pub sigma: Vec<f64>,
    /// Right singular vectors (`n × k`, orthonormal columns).
    pub v: Mat,
}

impl RandomizedSvd {
    /// Rank of the approximation.
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Reconstructs `U·Σ·Vᵀ`.
    pub fn reconstruct(&self) -> Result<Mat> {
        let k = self.rank();
        let us = Mat::from_fn(self.u.rows(), k, |i, j| self.u[(i, j)] * self.sigma[j]);
        let mut out = Mat::zeros(self.u.rows(), self.v.rows());
        gemm(
            1.0,
            us.as_ref(),
            Trans::No,
            self.v.as_ref(),
            Trans::Yes,
            0.0,
            out.as_mut(),
        )?;
        Ok(out)
    }

    /// Spectral-norm error `‖A − UΣVᵀ‖₂`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn error_spectral(&self, a: &Mat) -> Result<f64> {
        let rec = self.reconstruct()?;
        let diff = rlra_matrix::ops::sub(a, &rec)?;
        Ok(rlra_matrix::norms::spectral_norm(diff.as_ref()))
    }
}

/// Computes a rank-`k` randomized SVD of `a` with the same sampling
/// machinery as the fixed-rank pipeline (`ℓ = k + p` samples, `q` power
/// iterations with re-orthogonalization).
///
/// # Errors
///
/// Returns configuration errors from [`SamplerConfig::validate`] and
/// propagates kernel failures.
pub fn randomized_svd(a: &Mat, cfg: &SamplerConfig, rng: &mut impl Rng) -> Result<RandomizedSvd> {
    let (m, n) = a.shape();
    cfg.validate(m, n)?;
    let l = cfg.l();
    let k = cfg.k;

    // Step 1: sample and refine the row basis (identical to fixed-rank).
    let b = match cfg.sampling {
        SamplingKind::Gaussian => {
            let omega = gaussian_mat(l, m, rng);
            let mut b = Mat::zeros(l, n);
            gemm(
                1.0,
                omega.as_ref(),
                Trans::No,
                a.as_ref(),
                Trans::No,
                0.0,
                b.as_mut(),
            )?;
            b
        }
        SamplingKind::Fft(scheme) => SrftOperator::new(m, l, scheme, rng)?.sample_rows(a)?,
    };
    let (b, _) = power_iterate(
        a,
        &Mat::zeros(0, n),
        &Mat::zeros(0, m),
        b,
        cfg.q,
        cfg.reorth,
    )?;
    // Row-orthonormal basis Q_B (l × n).
    let qb = orth_rows(&b, cfg.reorth)?;

    // Step 2: project A onto the basis: W = A·Q_Bᵀ (m × l).
    let mut w = Mat::zeros(m, l);
    gemm(
        1.0,
        a.as_ref(),
        Trans::No,
        qb.as_ref(),
        Trans::Yes,
        0.0,
        w.as_mut(),
    )?;

    // Step 3: small SVD of W (Golub–Kahan — the projected matrix has
    // l columns, where bidiagonalization beats Jacobi sweeps), then
    // rotate V back through the basis.
    let svd = rlra_lapack::svd_golub_kahan(&w)?;
    let kk = k.min(svd.sigma.len());
    let u = svd.u.columns(0, kk);
    let sigma = svd.sigma[..kk].to_vec();
    // V = Q_Bᵀ · V_small (n × kk).
    let vsmall = svd.v.columns(0, kk);
    let mut v = Mat::zeros(n, kk);
    gemm(
        1.0,
        qb.as_ref(),
        Trans::Yes,
        vsmall.as_ref(),
        Trans::No,
        0.0,
        v.as_mut(),
    )?;
    Ok(RandomizedSvd { u, sigma, v })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_data::testmat::{decay_matrix, rng};
    use rlra_lapack::householder::orthogonality_error;

    #[test]
    fn factors_orthonormal_and_sigma_sorted() {
        let (a, _) = decay_matrix(80, 40, 0.6, 1);
        let cfg = SamplerConfig::new(8).with_q(1);
        let svd = randomized_svd(&a, &cfg, &mut rng(2)).unwrap();
        assert_eq!(svd.rank(), 8);
        assert!(orthogonality_error(&svd.u) < 1e-10);
        assert!(orthogonality_error(&svd.v) < 1e-10);
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn singular_values_match_exact_ones() {
        let (a, spec) = decay_matrix(60, 30, 0.5, 3);
        let cfg = SamplerConfig::new(6).with_p(10).with_q(2);
        let svd = randomized_svd(&a, &cfg, &mut rng(4)).unwrap();
        for (got, expect) in svd.sigma.iter().zip(&spec) {
            assert!(
                (got - expect).abs() < 1e-3 * expect,
                "sigma {got:e} vs exact {expect:e}"
            );
        }
    }

    #[test]
    fn error_near_optimal_with_power_iterations() {
        let (a, spec) = decay_matrix(100, 50, 0.8, 5);
        let k = 10;
        let cfg = SamplerConfig::new(k).with_p(10).with_q(3);
        let svd = randomized_svd(&a, &cfg, &mut rng(6)).unwrap();
        let err = svd.error_spectral(&a).unwrap();
        assert!(
            err < 2.0 * spec[k],
            "q=3 should be near-optimal: {err:e} vs sigma_k+1 {:e}",
            spec[k]
        );
    }

    #[test]
    fn matches_fixed_rank_subspace_quality() {
        let (a, _) = decay_matrix(70, 35, 0.6, 7);
        let cfg = SamplerConfig::new(7).with_q(1);
        let svd = randomized_svd(&a, &cfg, &mut rng(8)).unwrap();
        let qr = crate::fixed_rank::sample_fixed_rank(&a, &cfg, &mut rng(8)).unwrap();
        let e_svd = svd.error_spectral(&a).unwrap();
        let e_qr = qr.error_spectral(&a).unwrap();
        // SVD-form finishing is at least as accurate as pivoted-QR form.
        assert!(e_svd <= e_qr * 1.5 + 1e-14, "svd {e_svd:e} vs qr {e_qr:e}");
    }

    #[test]
    fn exact_low_rank_recovered() {
        let x = gaussian_mat(40, 3, &mut rng(9));
        let y = gaussian_mat(3, 25, &mut rng(10));
        let mut a = Mat::zeros(40, 25);
        gemm(
            1.0,
            x.as_ref(),
            Trans::No,
            y.as_ref(),
            Trans::No,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        let cfg = SamplerConfig::new(3).with_p(5);
        let svd = randomized_svd(&a, &cfg, &mut rng(11)).unwrap();
        let err = svd.error_spectral(&a).unwrap();
        let scale = rlra_matrix::norms::spectral_norm(a.as_ref());
        assert!(err < 1e-10 * scale);
    }

    #[test]
    fn fft_sampling_supported() {
        let (a, spec) = decay_matrix(64, 32, 0.5, 12);
        let cfg = SamplerConfig::new(5)
            .with_p(8)
            .with_sampling(SamplingKind::Fft(rlra_fft::SrftScheme::Full));
        let svd = randomized_svd(&a, &cfg, &mut rng(13)).unwrap();
        assert!(svd.error_spectral(&a).unwrap() < 30.0 * spec[5]);
    }
}
