//! Durable jobs: versioned checkpoint snapshots, deadline budgets and
//! resumable run state.
//!
//! A long sampling run on a large fleet can be preempted, killed, or
//! discover mid-flight that it will overrun its time budget. This module
//! gives every pipeline a *durability* layer:
//!
//! - **Snapshots** — at sample-block and pipeline-stage boundaries the
//!   durable runners serialize the full run state (factors, adaptive
//!   trajectory, RNG stream position, guard counters and the backend's
//!   accounting) into a versioned, checksummed binary blob. The
//!   serialization cost is charged through the
//!   [`Executor::checkpoint_hook`] stage so checkpointing is never free.
//! - **Resume** — `resume_fixed_accuracy` / `resume_fixed_rank` reload a
//!   snapshot and continue; a resumed run reproduces the uninterrupted
//!   run's factors *and* its [`crate::backend::ExecReport`] bit for bit,
//!   because the snapshot carries the executor's absolute accounting
//!   state and the exact RNG draw count.
//! - **Deadlines** — a [`Deadline`] is checked against the simulated
//!   clock at every boundary; on overrun the run checkpoints, stores a
//!   [`Partial`] result (with its posterior error estimate) and surfaces
//!   [`MatrixError::DeadlineExceeded`] carrying the snapshot id.
//!
//! The format is hand-rolled little-endian (no serde in this workspace)
//! and defensive end to end: *every* malformed input — truncated, bit
//! flipped, wrong magic, future version — decodes to
//! [`MatrixError::CheckpointCorrupt`], never a panic.

use crate::adaptive::AdaptiveStep;
use crate::backend::{staged, Executor};
use crate::fixed_rank::IncrementalFactors;
use crate::result::LowRankApprox;
use rand::RngCore;
use rlra_matrix::{Mat, MatrixError, Result};
use rlra_trace::TraceEvent;

/// Leading magic of every sealed snapshot.
pub const CHECKPOINT_MAGIC: [u8; 8] = *b"RLRACKPT";
/// Current snapshot format version.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Which pipeline a sealed snapshot belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    /// Fixed-accuracy (adaptive Figure 3) run state.
    Adaptive,
    /// Fixed-rank (Figure 2b) run state.
    FixedRank,
}

impl SnapshotKind {
    fn to_u8(self) -> u8 {
        match self {
            SnapshotKind::Adaptive => 1,
            SnapshotKind::FixedRank => 2,
        }
    }

    fn from_u8(b: u8) -> Result<Self> {
        match b {
            1 => Ok(SnapshotKind::Adaptive),
            2 => Ok(SnapshotKind::FixedRank),
            _ => Err(corrupt("unknown snapshot kind")),
        }
    }
}

fn corrupt(detail: &'static str) -> MatrixError {
    MatrixError::CheckpointCorrupt { detail }
}

/// FNV-1a 64-bit hash — the snapshot trailer checksum. Not
/// cryptographic; it exists to turn random corruption (truncation, bit
/// flips, torn writes) into a clean [`MatrixError::CheckpointCorrupt`].
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seals a payload into the on-disk/on-wire snapshot framing:
/// `magic | version | kind | payload_len | payload | fnv1a64`.
pub fn seal(kind: SnapshotKind, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 29);
    out.extend_from_slice(&CHECKPOINT_MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.push(kind.to_u8());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Validates the framing of a sealed snapshot and returns its kind and
/// payload.
///
/// # Errors
///
/// [`MatrixError::CheckpointCorrupt`] on bad magic, an unknown version
/// or kind, a length that disagrees with the buffer, or a checksum
/// mismatch. Never panics, whatever the input.
pub fn open(bytes: &[u8]) -> Result<(SnapshotKind, &[u8])> {
    let mut r = SnapReader::new(bytes);
    let magic = r.take(8)?;
    if magic != CHECKPOINT_MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = r.read_u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(corrupt("unknown snapshot version"));
    }
    let kind = SnapshotKind::from_u8(r.read_u8()?)?;
    let len = r.read_u64()?;
    let len: usize = len.try_into().map_err(|_| corrupt("payload length"))?;
    let payload = r.take(len)?;
    let body_end = bytes.len().saturating_sub(8);
    if r.pos != body_end {
        return Err(corrupt("trailing bytes after payload"));
    }
    let declared = r.read_u64()?;
    let actual = bytes.get(..body_end).map(fnv1a);
    if actual != Some(declared) {
        return Err(corrupt("checksum mismatch"));
    }
    Ok((kind, payload))
}

// ---------------------------------------------------------------------
// Little-endian primitive framing
// ---------------------------------------------------------------------

/// Append-only little-endian encoder for snapshot payloads. The matching
/// decoder is [`SnapReader`]; the durability round-trip tests pin the
/// two against each other.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes encoding and yields the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a little-endian `u64`.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Appends an `f64` by bit pattern (exact round trip, NaN included).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Appends an `Option<f64>` as a presence byte plus the bits.
    pub fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.write_bool(true);
                self.write_f64(x);
            }
            None => self.write_bool(false),
        }
    }

    /// Appends a length-prefixed byte blob.
    pub fn write_bytes(&mut self, v: &[u8]) {
        self.write_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, v: &str) {
        self.write_bytes(v.as_bytes());
    }

    /// Appends a length-prefixed `usize` slice.
    pub fn write_usizes(&mut self, v: &[usize]) {
        self.write_usize(v.len());
        for &x in v {
            self.write_usize(x);
        }
    }

    /// Appends a matrix as `rows | cols | column-major f64 data`.
    pub fn write_mat(&mut self, m: &Mat) {
        let (rows, cols) = m.shape();
        self.write_usize(rows);
        self.write_usize(cols);
        for &x in m.as_slice() {
            self.write_f64(x);
        }
    }
}

/// Cursor-based decoder over a snapshot payload. Every method returns
/// [`MatrixError::CheckpointCorrupt`] instead of panicking when the
/// buffer runs short or a length field is implausible.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(corrupt("length overflow"))?;
        let slice = self.buf.get(self.pos..end).ok_or(corrupt("truncated"))?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on a short buffer.
    pub fn read_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on a short buffer.
    pub fn read_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        let arr: [u8; 4] = b.try_into().map_err(|_| corrupt("u32 framing"))?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on a short buffer.
    pub fn read_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| corrupt("u64 framing"))?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a `usize` (stored as `u64`).
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on a short buffer or a value
    /// that does not fit this platform's `usize`.
    pub fn read_usize(&mut self) -> Result<usize> {
        self.read_u64()?
            .try_into()
            .map_err(|_| corrupt("usize out of range"))
    }

    /// Reads an `f64` by bit pattern.
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on a short buffer.
    pub fn read_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a `bool` (strictly 0 or 1 — anything else is corruption).
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on a short buffer or a
    /// non-boolean byte.
    pub fn read_bool(&mut self) -> Result<bool> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(corrupt("non-boolean presence byte")),
        }
    }

    /// Reads an `Option<f64>` written by [`SnapWriter::write_opt_f64`].
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on malformed framing.
    pub fn read_opt_f64(&mut self) -> Result<Option<f64>> {
        if self.read_bool()? {
            Ok(Some(self.read_f64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed byte blob.
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] when the declared length
    /// exceeds the remaining buffer (checked *before* any allocation).
    pub fn read_bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.read_usize()?;
        if n > self.remaining() {
            return Err(corrupt("blob length exceeds buffer"));
        }
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on malformed framing or
    /// invalid UTF-8.
    pub fn read_string(&mut self) -> Result<String> {
        let bytes = self.read_bytes()?;
        String::from_utf8(bytes).map_err(|_| corrupt("invalid utf-8 string"))
    }

    /// Reads a length-prefixed `usize` vector.
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] when the declared length
    /// exceeds the remaining buffer (checked *before* any allocation).
    pub fn read_usizes(&mut self) -> Result<Vec<usize>> {
        let n = self.read_usize()?;
        if n.checked_mul(8).is_none_or(|b| b > self.remaining()) {
            return Err(corrupt("vector length exceeds buffer"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.read_usize()?);
        }
        Ok(out)
    }

    /// Reads a matrix written by [`SnapWriter::write_mat`].
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] when the declared shape
    /// implies more data than the buffer holds (checked *before* the
    /// allocation, so a flipped length byte cannot provoke a huge
    /// alloc), or on any construction failure.
    pub fn read_mat(&mut self) -> Result<Mat> {
        let rows = self.read_usize()?;
        let cols = self.read_usize()?;
        let elems = rows.checked_mul(cols).ok_or(corrupt("matrix shape"))?;
        if elems.checked_mul(8).is_none_or(|b| b > self.remaining()) {
            return Err(corrupt("matrix data exceeds buffer"));
        }
        let mut data = Vec::with_capacity(elems);
        for _ in 0..elems {
            data.push(self.read_f64()?);
        }
        Mat::from_col_major(rows, cols, data).map_err(|_| corrupt("matrix construction"))
    }
}

// ---------------------------------------------------------------------
// RNG stream position
// ---------------------------------------------------------------------

/// An [`RngCore`] adapter that counts raw `next_u64` draws — the RNG
/// stream position recorded in every snapshot.
///
/// Durable runs wrap their generator in this; on resume,
/// [`CountingRng::resume`] burns exactly the recorded number of draws on
/// a fresh generator seeded the same way, so the resumed run continues
/// the *same* Gaussian stream and reproduces the uninterrupted factors
/// bit for bit.
#[derive(Debug, Clone)]
pub struct CountingRng<R: RngCore> {
    inner: R,
    drawn: u64,
}

impl<R: RngCore> CountingRng<R> {
    /// Wraps a generator at stream position 0.
    pub fn new(inner: R) -> Self {
        CountingRng { inner, drawn: 0 }
    }

    /// Wraps a *freshly seeded* generator and advances it to stream
    /// position `drawn` (the position a snapshot recorded).
    pub fn resume(inner: R, drawn: u64) -> Self {
        let mut rng = CountingRng { inner, drawn: 0 };
        for _ in 0..drawn {
            // analyze: allow(discard, fast-forward burns draws to reach the snapshot's stream position; the values are the ones the killed run already consumed)
            let _ = rng.next_u64();
        }
        rng
    }

    /// Raw `u64` draws made through this wrapper so far.
    pub fn drawn(&self) -> u64 {
        self.drawn
    }
}

impl<R: RngCore> RngCore for CountingRng<R> {
    fn next_u64(&mut self) -> u64 {
        self.drawn += 1;
        self.inner.next_u64()
    }
}

// ---------------------------------------------------------------------
// Deadlines, plans and run-scoped durability state
// ---------------------------------------------------------------------

/// A simulated wall-clock budget for a durable run, checked against
/// [`Executor::elapsed`] at every checkpoint boundary (so overruns are
/// caught with one-boundary granularity, never mid-kernel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deadline {
    /// Budget in simulated seconds.
    pub seconds: f64,
}

impl Deadline {
    /// A budget of `seconds` simulated seconds.
    pub fn new(seconds: f64) -> Self {
        Deadline { seconds }
    }

    /// Whether `elapsed` simulated seconds overruns this budget.
    pub fn exceeded(&self, elapsed: f64) -> bool {
        elapsed > self.seconds
    }
}

/// Checkpoint policy for one durable run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointPlan {
    /// Fault-injection knob for the resume tests: kill the run (return
    /// [`DurableOutcome::Suspended`]) immediately after writing the
    /// snapshot with this id. `None` runs to completion.
    pub kill_after: Option<u64>,
}

impl CheckpointPlan {
    /// Checkpoint at every boundary, never kill (the production plan).
    pub fn always() -> Self {
        CheckpointPlan::default()
    }

    /// Kill the run right after snapshot `id` is written.
    pub fn kill_after(id: u64) -> Self {
        CheckpointPlan {
            kill_after: Some(id),
        }
    }
}

/// A deadline-truncated result: the factors assembled from the state at
/// the overrun boundary plus the posterior estimate of what they achieve.
#[derive(Debug, Clone)]
pub struct Partial {
    /// The partial approximation (`None` on dry-run backends, or when
    /// the overrun hit before any columns were accepted).
    pub approx: Option<LowRankApprox>,
    /// Posterior residual-error estimate of the partial factors (the
    /// adaptive probe's estimate at the overrun boundary; infinity when
    /// no probe had run yet).
    pub estimate: f64,
    /// Id of the snapshot written at the overrun boundary — resume from
    /// it later to finish the job.
    pub snapshot: u64,
}

/// Outcome of a durable run: the finished result, or a suspension point
/// after an injected kill (see [`CheckpointPlan::kill_after`]).
#[derive(Debug)]
pub enum DurableOutcome<T> {
    /// The run finished; here is the ordinary result.
    Complete(T),
    /// The run was killed after writing this snapshot; resume from it.
    Suspended {
        /// Id of the last snapshot written before the kill.
        snapshot: u64,
    },
}

impl<T> DurableOutcome<T> {
    /// The completed result, if the run was not suspended.
    pub fn complete(self) -> Option<T> {
        match self {
            DurableOutcome::Complete(t) => Some(t),
            DurableOutcome::Suspended { .. } => None,
        }
    }

    /// The suspension snapshot id, if the run was killed.
    pub fn suspended(&self) -> Option<u64> {
        match self {
            DurableOutcome::Complete(_) => None,
            DurableOutcome::Suspended { snapshot } => Some(*snapshot),
        }
    }
}

/// Run-scoped durability state: the checkpoint plan, every snapshot
/// written so far (most recent last), and the deadline-truncated partial
/// result when a budget overran.
#[derive(Debug, Default)]
pub struct Durability {
    plan: CheckpointPlan,
    snapshots: Vec<(u64, Vec<u8>)>,
    next_id: u64,
    partial: Option<Partial>,
}

impl Durability {
    /// Fresh durability state under `plan`; snapshot ids start at 1.
    pub fn new(plan: CheckpointPlan) -> Self {
        Durability {
            plan,
            snapshots: Vec::new(),
            next_id: 1,
            partial: None,
        }
    }

    /// Durability state for a *resumed* run: ids continue after
    /// `resumed_from`, so a resumed run numbers (and kills at) the same
    /// boundaries the uninterrupted run would.
    pub fn resumed(plan: CheckpointPlan, resumed_from: u64) -> Self {
        Durability {
            plan,
            snapshots: Vec::new(),
            next_id: resumed_from + 1,
            partial: None,
        }
    }

    /// The active checkpoint plan.
    pub fn plan(&self) -> CheckpointPlan {
        self.plan
    }

    /// All snapshots written this run, `(id, sealed bytes)`, oldest
    /// first.
    pub fn snapshots(&self) -> &[(u64, Vec<u8>)] {
        &self.snapshots
    }

    /// The most recent snapshot, if any.
    pub fn latest(&self) -> Option<&(u64, Vec<u8>)> {
        self.snapshots.last()
    }

    /// The sealed bytes of snapshot `id`, if this run wrote it.
    pub fn get(&self, id: u64) -> Option<&[u8]> {
        self.snapshots
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, b)| b.as_slice())
    }

    /// The deadline-truncated partial result, if a budget overran.
    pub fn partial(&self) -> Option<&Partial> {
        self.partial.as_ref()
    }

    /// Takes ownership of the partial result, if a budget overran.
    pub fn take_partial(&mut self) -> Option<Partial> {
        self.partial.take()
    }

    pub(crate) fn set_partial(&mut self, partial: Partial) {
        self.partial = Some(partial);
    }

    /// Aligns the id counter to continue after snapshot `id`, so a
    /// resumed run numbers (and kills at) the same boundaries the
    /// uninterrupted run would — called by the resume entry points, so
    /// the caller may pass either [`Durability::new`] or
    /// [`Durability::resumed`] state.
    pub(crate) fn align_after(&mut self, id: u64) {
        self.next_id = id + 1;
    }

    fn peek_id(&self) -> u64 {
        self.next_id
    }

    fn record(&mut self, sealed: Vec<u8>) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.snapshots.push((id, sealed));
        id
    }
}

/// Writes one checkpoint boundary: charges the serialization/drain
/// through the `checkpoint_hook` stage, captures the executor's
/// *post-charge* accounting blob, seals the payload the caller builds
/// from it, records the snapshot and emits the
/// [`TraceEvent::Checkpoint`] mark.
///
/// The hook is charged before the account is exported so the snapshot's
/// clocks *include* the checkpoint cost — that is what lets a resumed
/// run's report line up bit for bit with the uninterrupted one.
pub(crate) fn checkpoint_boundary<E: Executor>(
    exec: &mut E,
    dur: &mut Durability,
    kind: SnapshotKind,
    numeric_bytes: u64,
    build_payload: impl FnOnce(u64, Vec<u8>) -> Vec<u8>,
) -> Result<u64> {
    let id = dur.peek_id();
    staged(exec, "checkpoint_hook", |e| {
        e.checkpoint_hook(numeric_bytes)
    })?;
    let account = exec.export_account()?;
    let payload = build_payload(id, account);
    let sealed = seal(kind, &payload);
    let recorded = dur.record(sealed);
    debug_assert_eq!(recorded, id);
    if let Some(t) = exec.tracer() {
        t.emit(TraceEvent::Checkpoint {
            id,
            bytes: numeric_bytes,
            time: exec.elapsed(),
        });
    }
    Ok(id)
}

// ---------------------------------------------------------------------
// Guard counters
// ---------------------------------------------------------------------

/// The numeric guard's cumulative counters — the durable slice of
/// [`crate::backend::NumericGuard`] state (buffered charges are always
/// drained before a snapshot, so counters are all a snapshot carries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardCounters {
    /// Breakdowns detected so far.
    pub breakdowns: u64,
    /// Ladder escalations performed so far.
    pub fallbacks: u64,
    /// Per-rung success histogram.
    pub histogram: [u64; 3],
}

impl GuardCounters {
    /// Captures the counters of a live guard.
    pub fn capture(guard: &crate::backend::NumericGuard) -> Self {
        GuardCounters {
            breakdowns: guard.breakdowns(),
            fallbacks: guard.fallbacks(),
            histogram: guard.ladder_histogram(),
        }
    }

    /// Restores the counters onto a fresh guard.
    pub(crate) fn restore(&self, guard: &mut crate::backend::NumericGuard) {
        guard.restore_counters(self.breakdowns, self.fallbacks, self.histogram);
    }

    fn write(&self, w: &mut SnapWriter) {
        w.write_u64(self.breakdowns);
        w.write_u64(self.fallbacks);
        for &h in &self.histogram {
            w.write_u64(h);
        }
    }

    fn read(r: &mut SnapReader<'_>) -> Result<Self> {
        Ok(GuardCounters {
            breakdowns: r.read_u64()?,
            fallbacks: r.read_u64()?,
            histogram: [r.read_u64()?, r.read_u64()?, r.read_u64()?],
        })
    }
}

// ---------------------------------------------------------------------
// Pipeline snapshots
// ---------------------------------------------------------------------

fn write_step(w: &mut SnapWriter, s: &AdaptiveStep) {
    w.write_usize(s.l);
    w.write_usize(s.l_inc);
    w.write_f64(s.estimate);
    w.write_f64(s.sim_time);
    w.write_opt_f64(s.actual_error);
}

fn read_step(r: &mut SnapReader<'_>) -> Result<AdaptiveStep> {
    Ok(AdaptiveStep {
        l: r.read_usize()?,
        l_inc: r.read_usize()?,
        estimate: r.read_f64()?,
        sim_time: r.read_f64()?,
        actual_error: r.read_opt_f64()?,
    })
}

fn write_factors(w: &mut SnapWriter, f: &IncrementalFactors) {
    let (q, rr, s_resid, perm, k_done, m, n) = f.parts();
    w.write_mat(q);
    w.write_mat(rr);
    w.write_mat(s_resid);
    w.write_usizes(perm);
    w.write_usize(k_done);
    w.write_usize(m);
    w.write_usize(n);
}

fn read_factors(r: &mut SnapReader<'_>) -> Result<IncrementalFactors> {
    let q = r.read_mat()?;
    let rr = r.read_mat()?;
    let s_resid = r.read_mat()?;
    let perm = r.read_usizes()?;
    let k_done = r.read_usize()?;
    let m = r.read_usize()?;
    let n = r.read_usize()?;
    Ok(IncrementalFactors::from_parts(
        q, rr, s_resid, perm, k_done, m, n,
    ))
}

fn mat_bytes(m: &Mat) -> u64 {
    (m.rows() as u64) * (m.cols() as u64) * 8
}

/// Full state of a fixed-accuracy (adaptive) run at a sample-block
/// boundary: everything `resume_fixed_accuracy` needs to continue the
/// loop as if the kill never happened.
#[derive(Debug, Clone)]
pub struct AdaptiveSnapshot {
    /// Monotonic snapshot id within the job (resumed runs continue the
    /// numbering).
    pub id: u64,
    /// Operand rows.
    pub m: usize,
    /// Operand columns.
    pub n: usize,
    /// Accepted row basis (`ℓ × n`).
    pub basis: Mat,
    /// Power-iteration companion basis (`ℓ × m`).
    pub c_basis: Mat,
    /// The pending (drawn but not yet accepted) sample block.
    pub w: Mat,
    /// Next block increment `ℓ_inc` chosen by the growth strategy.
    pub l_inc: usize,
    /// Best residual estimate seen so far (divergence guard).
    pub best_estimate: f64,
    /// The adaptive trajectory so far.
    pub steps: Vec<AdaptiveStep>,
    /// Incremental factors (fixed-accuracy incremental finish mode).
    pub factors: Option<IncrementalFactors>,
    /// Guard counters at the boundary.
    pub guard: GuardCounters,
    /// RNG stream position (raw `u64` draws) at the boundary.
    pub rng_drawn: u64,
    /// The executor's opaque accounting blob (absolute clocks,
    /// timelines, kernel stats), captured after the checkpoint charge.
    pub account: Vec<u8>,
}

impl AdaptiveSnapshot {
    /// Size in bytes of the numeric state a checkpoint drains to stable
    /// storage — the figure charged through
    /// [`Executor::checkpoint_hook`]. Deterministic in the run state
    /// (matrix dimensions only), so resumed and uninterrupted runs
    /// charge identically.
    pub fn numeric_bytes(&self) -> u64 {
        let mut total = mat_bytes(&self.basis) + mat_bytes(&self.c_basis) + mat_bytes(&self.w);
        if let Some(f) = &self.factors {
            let (q, rr, s_resid, perm, ..) = f.parts();
            total += mat_bytes(q) + mat_bytes(rr) + mat_bytes(s_resid) + (perm.len() as u64) * 8;
        }
        total
    }

    /// Serializes the snapshot payload (seal it with
    /// [`seal`]`(SnapshotKind::Adaptive, ..)`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.write_u64(self.id);
        w.write_usize(self.m);
        w.write_usize(self.n);
        w.write_mat(&self.basis);
        w.write_mat(&self.c_basis);
        w.write_mat(&self.w);
        w.write_usize(self.l_inc);
        w.write_f64(self.best_estimate);
        w.write_usize(self.steps.len());
        for s in &self.steps {
            write_step(&mut w, s);
        }
        w.write_bool(self.factors.is_some());
        if let Some(f) = &self.factors {
            write_factors(&mut w, f);
        }
        self.guard.write(&mut w);
        w.write_u64(self.rng_drawn);
        w.write_bytes(&self.account);
        w.into_bytes()
    }

    /// Decodes a payload produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on any malformed framing;
    /// never panics.
    pub fn from_bytes(payload: &[u8]) -> Result<Self> {
        let mut r = SnapReader::new(payload);
        let id = r.read_u64()?;
        let m = r.read_usize()?;
        let n = r.read_usize()?;
        let basis = r.read_mat()?;
        let c_basis = r.read_mat()?;
        let w = r.read_mat()?;
        let l_inc = r.read_usize()?;
        let best_estimate = r.read_f64()?;
        let n_steps = r.read_usize()?;
        if n_steps > r.remaining() {
            return Err(corrupt("step count exceeds buffer"));
        }
        let mut steps = Vec::with_capacity(n_steps);
        for _ in 0..n_steps {
            steps.push(read_step(&mut r)?);
        }
        let factors = if r.read_bool()? {
            Some(read_factors(&mut r)?)
        } else {
            None
        };
        let guard = GuardCounters::read(&mut r)?;
        let rng_drawn = r.read_u64()?;
        let account = r.read_bytes()?;
        if r.remaining() != 0 {
            return Err(corrupt("trailing bytes in adaptive payload"));
        }
        Ok(AdaptiveSnapshot {
            id,
            m,
            n,
            basis,
            c_basis,
            w,
            l_inc,
            best_estimate,
            steps,
            factors,
            guard,
            rng_drawn,
            account,
        })
    }

    /// Opens a *sealed* snapshot and decodes it, checking kind and
    /// checksum.
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on framing or checksum
    /// failures, or when the snapshot is not an adaptive one.
    pub fn open(sealed: &[u8]) -> Result<Self> {
        let (kind, payload) = open(sealed)?;
        if kind != SnapshotKind::Adaptive {
            return Err(corrupt("not an adaptive snapshot"));
        }
        Self::from_bytes(payload)
    }
}

/// Which fixed-rank stage boundary a [`FixedRankSnapshot`] was written
/// at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixedRankStage {
    /// After Step 1a: the sketch `B = Ω·A` exists.
    Sampled,
    /// After Step 1b: the power-iterated sketch exists.
    Powered,
}

impl FixedRankStage {
    fn to_u8(self) -> u8 {
        match self {
            FixedRankStage::Sampled => 1,
            FixedRankStage::Powered => 2,
        }
    }

    fn from_u8(b: u8) -> Result<Self> {
        match b {
            1 => Ok(FixedRankStage::Sampled),
            2 => Ok(FixedRankStage::Powered),
            _ => Err(corrupt("unknown fixed-rank stage")),
        }
    }
}

/// Full state of a fixed-rank run at a pipeline-stage boundary.
#[derive(Debug, Clone)]
pub struct FixedRankSnapshot {
    /// Monotonic snapshot id within the job.
    pub id: u64,
    /// Operand rows.
    pub m: usize,
    /// Operand columns.
    pub n: usize,
    /// Sketch rows `ℓ = k + p`.
    pub l: usize,
    /// Which stage boundary this snapshot captures.
    pub stage: FixedRankStage,
    /// The sketch `B` (`ℓ × n`) on computing backends, `None` on
    /// dry-run ones.
    pub b_host: Option<Mat>,
    /// Guard counters at the boundary.
    pub guard: GuardCounters,
    /// RNG stream position (raw `u64` draws) at the boundary.
    pub rng_drawn: u64,
    /// The executor's opaque accounting blob.
    pub account: Vec<u8>,
}

impl FixedRankSnapshot {
    /// Size in bytes of the numeric state the checkpoint drains (the
    /// `ℓ × n` sketch — modeled identically on dry-run backends, so the
    /// charge stays backend-deterministic).
    pub fn numeric_bytes(&self) -> u64 {
        (self.l as u64) * (self.n as u64) * 8
    }

    /// Serializes the snapshot payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.write_u64(self.id);
        w.write_usize(self.m);
        w.write_usize(self.n);
        w.write_usize(self.l);
        w.write_u8(self.stage.to_u8());
        w.write_bool(self.b_host.is_some());
        if let Some(b) = &self.b_host {
            w.write_mat(b);
        }
        self.guard.write(&mut w);
        w.write_u64(self.rng_drawn);
        w.write_bytes(&self.account);
        w.into_bytes()
    }

    /// Decodes a payload produced by [`Self::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on any malformed framing;
    /// never panics.
    pub fn from_bytes(payload: &[u8]) -> Result<Self> {
        let mut r = SnapReader::new(payload);
        let id = r.read_u64()?;
        let m = r.read_usize()?;
        let n = r.read_usize()?;
        let l = r.read_usize()?;
        let stage = FixedRankStage::from_u8(r.read_u8()?)?;
        let b_host = if r.read_bool()? {
            Some(r.read_mat()?)
        } else {
            None
        };
        let guard = GuardCounters::read(&mut r)?;
        let rng_drawn = r.read_u64()?;
        let account = r.read_bytes()?;
        if r.remaining() != 0 {
            return Err(corrupt("trailing bytes in fixed-rank payload"));
        }
        Ok(FixedRankSnapshot {
            id,
            m,
            n,
            l,
            stage,
            b_host,
            guard,
            rng_drawn,
            account,
        })
    }

    /// Opens a *sealed* snapshot and decodes it, checking kind and
    /// checksum.
    ///
    /// # Errors
    ///
    /// [`MatrixError::CheckpointCorrupt`] on framing or checksum
    /// failures, or when the snapshot is not a fixed-rank one.
    pub fn open(sealed: &[u8]) -> Result<Self> {
        let (kind, payload) = open(sealed)?;
        if kind != SnapshotKind::FixedRank {
            return Err(corrupt("not a fixed-rank snapshot"));
        }
        Self::from_bytes(payload)
    }
}

// ---------------------------------------------------------------------
// Backend account blobs
// ---------------------------------------------------------------------
//
// The simulator crates expose their accounting snapshots as plain
// structs ([`rlra_gpu::DeviceAccount`] and friends); the wire encoding
// lives here with the rest of the snapshot format so every backend's
// `export_account` blob shares one framing and one corruption story.

pub(crate) fn write_device_account(w: &mut SnapWriter, acc: &rlra_gpu::DeviceAccount) {
    w.write_f64(acc.clock);
    w.write_usize(acc.phases.len());
    for &p in &acc.phases {
        w.write_f64(p);
    }
    w.write_u64(acc.launches);
    w.write_u64(acc.syncs);
    w.write_f64(acc.waits);
    w.write_f64(acc.bytes_moved);
    w.write_f64(acc.slowdown);
    w.write_bool(acc.quarantined);
    w.write_bool(acc.dead.is_some());
    if let Some((device, at)) = acc.dead {
        w.write_usize(device);
        w.write_u64(at);
    }
    w.write_usize(acc.kernels.len());
    for (name, stats) in &acc.kernels {
        w.write_str(name);
        w.write_u64(stats.launches);
        w.write_f64(stats.seconds);
        w.write_f64(stats.flops);
        w.write_f64(stats.bytes);
    }
}

pub(crate) fn read_device_account(r: &mut SnapReader<'_>) -> Result<rlra_gpu::DeviceAccount> {
    let clock = r.read_f64()?;
    let n_phases = r.read_usize()?;
    if n_phases != rlra_gpu::Phase::COUNT {
        return Err(corrupt("device account phase count mismatch"));
    }
    let mut phases = [0.0; rlra_gpu::Phase::COUNT];
    for p in &mut phases {
        *p = r.read_f64()?;
    }
    let launches = r.read_u64()?;
    let syncs = r.read_u64()?;
    let waits = r.read_f64()?;
    let bytes_moved = r.read_f64()?;
    let slowdown = r.read_f64()?;
    let quarantined = r.read_bool()?;
    let dead = if r.read_bool()? {
        Some((r.read_usize()?, r.read_u64()?))
    } else {
        None
    };
    let n_kernels = r.read_usize()?;
    let mut kernels = Vec::new();
    for _ in 0..n_kernels {
        let name = r.read_string()?;
        let stats = rlra_trace::KernelStats {
            launches: r.read_u64()?,
            seconds: r.read_f64()?,
            flops: r.read_f64()?,
            bytes: r.read_f64()?,
        };
        kernels.push((name, stats));
    }
    Ok(rlra_gpu::DeviceAccount {
        clock,
        phases,
        launches,
        syncs,
        waits,
        bytes_moved,
        slowdown,
        quarantined,
        dead,
        kernels,
    })
}

pub(crate) fn write_fleet_account(w: &mut SnapWriter, acc: &rlra_gpu::FleetAccount) {
    w.write_usize(acc.gpus.len());
    for g in &acc.gpus {
        write_device_account(w, g);
    }
    for &p in &acc.host_phases {
        w.write_f64(p);
    }
}

pub(crate) fn read_fleet_account(r: &mut SnapReader<'_>) -> Result<rlra_gpu::FleetAccount> {
    let ng = r.read_usize()?;
    // A fleet larger than any simulated node is a corrupt length, not
    // an allocation request.
    if ng > 4096 {
        return Err(corrupt("fleet account gpu count implausible"));
    }
    let mut gpus = Vec::with_capacity(ng);
    for _ in 0..ng {
        gpus.push(read_device_account(r)?);
    }
    let mut host_phases = [0.0; rlra_gpu::Phase::COUNT];
    for p in &mut host_phases {
        *p = r.read_f64()?;
    }
    Ok(rlra_gpu::FleetAccount { gpus, host_phases })
}

pub(crate) fn write_cluster_account(w: &mut SnapWriter, acc: &rlra_gpu::ClusterAccount) {
    w.write_usize(acc.nodes.len());
    for n in &acc.nodes {
        write_fleet_account(w, n);
    }
    w.write_f64(acc.inter_node_comms);
}

pub(crate) fn read_cluster_account(r: &mut SnapReader<'_>) -> Result<rlra_gpu::ClusterAccount> {
    let nn = r.read_usize()?;
    if nn > 4096 {
        return Err(corrupt("cluster account node count implausible"));
    }
    let mut nodes = Vec::with_capacity(nn);
    for _ in 0..nn {
        nodes.push(read_fleet_account(r)?);
    }
    let inter_node_comms = r.read_f64()?;
    Ok(rlra_gpu::ClusterAccount {
        nodes,
        inter_node_comms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_mat(rows: usize, cols: usize, salt: f64) -> Mat {
        Mat::from_fn(rows, cols, |i, j| {
            salt + (i as f64) * 0.5 - (j as f64) * 0.25
        })
    }

    fn demo_adaptive() -> AdaptiveSnapshot {
        AdaptiveSnapshot {
            id: 3,
            m: 8,
            n: 6,
            basis: demo_mat(4, 6, 1.0),
            c_basis: demo_mat(4, 8, -2.0),
            w: demo_mat(2, 6, 0.125),
            l_inc: 2,
            best_estimate: 0.375,
            steps: vec![
                AdaptiveStep {
                    l: 2,
                    l_inc: 2,
                    estimate: 1.5,
                    sim_time: 0.25,
                    actual_error: None,
                },
                AdaptiveStep {
                    l: 4,
                    l_inc: 2,
                    estimate: 0.375,
                    sim_time: 0.5,
                    actual_error: Some(0.25),
                },
            ],
            factors: Some(IncrementalFactors::new(8, 6)),
            guard: GuardCounters {
                breakdowns: 1,
                fallbacks: 2,
                histogram: [0, 2, 0],
            },
            rng_drawn: 1234,
            account: vec![7, 8, 9],
        }
    }

    fn assert_adaptive_eq(a: &AdaptiveSnapshot, b: &AdaptiveSnapshot) {
        assert_eq!(a.id, b.id);
        assert_eq!((a.m, a.n, a.l_inc), (b.m, b.n, b.l_inc));
        assert_eq!(a.basis.as_slice(), b.basis.as_slice());
        assert_eq!(a.c_basis.as_slice(), b.c_basis.as_slice());
        assert_eq!(a.w.as_slice(), b.w.as_slice());
        assert_eq!(a.best_estimate.to_bits(), b.best_estimate.to_bits());
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.factors.is_some(), b.factors.is_some());
        if let (Some(fa), Some(fb)) = (&a.factors, &b.factors) {
            let pa = fa.parts();
            let pb = fb.parts();
            assert_eq!(pa.0.as_slice(), pb.0.as_slice());
            assert_eq!(pa.3, pb.3);
            assert_eq!((pa.4, pa.5, pa.6), (pb.4, pb.5, pb.6));
        }
        assert_eq!(a.guard, b.guard);
        assert_eq!(a.rng_drawn, b.rng_drawn);
        assert_eq!(a.account, b.account);
    }

    #[test]
    fn adaptive_snapshot_round_trips() {
        let snap = demo_adaptive();
        let sealed = seal(SnapshotKind::Adaptive, &snap.to_bytes());
        let back = AdaptiveSnapshot::open(&sealed).unwrap();
        assert_adaptive_eq(&snap, &back);
    }

    #[test]
    fn fixed_rank_snapshot_round_trips() {
        let snap = FixedRankSnapshot {
            id: 1,
            m: 10,
            n: 7,
            l: 4,
            stage: FixedRankStage::Powered,
            b_host: Some(demo_mat(4, 7, 3.0)),
            guard: GuardCounters::default(),
            rng_drawn: 40,
            account: Vec::new(),
        };
        let sealed = seal(SnapshotKind::FixedRank, &snap.to_bytes());
        let back = FixedRankSnapshot::open(&sealed).unwrap();
        assert_eq!(back.id, 1);
        assert_eq!(back.stage, FixedRankStage::Powered);
        assert_eq!(
            back.b_host.as_ref().unwrap().as_slice(),
            snap.b_host.as_ref().unwrap().as_slice()
        );
        assert_eq!(back.numeric_bytes(), 4 * 7 * 8);
    }

    #[test]
    fn open_rejects_wrong_kind() {
        let snap = demo_adaptive();
        let sealed = seal(SnapshotKind::Adaptive, &snap.to_bytes());
        let err = FixedRankSnapshot::open(&sealed).unwrap_err();
        assert!(matches!(err, MatrixError::CheckpointCorrupt { .. }));
    }

    #[test]
    fn open_rejects_bad_magic_and_version() {
        let sealed = seal(SnapshotKind::Adaptive, &demo_adaptive().to_bytes());
        let mut bad_magic = sealed.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            open(&bad_magic).unwrap_err(),
            MatrixError::CheckpointCorrupt {
                detail: "bad magic"
            }
        ));
        // A version bump must re-seal the checksum to reach the version
        // check (otherwise the checksum rejects it first — also fine).
        let mut future = sealed;
        future[8] = 99;
        let body_end = future.len() - 8;
        let sum = fnv1a(&future[..body_end]).to_le_bytes();
        future[body_end..].copy_from_slice(&sum);
        assert!(matches!(
            open(&future).unwrap_err(),
            MatrixError::CheckpointCorrupt {
                detail: "unknown snapshot version"
            }
        ));
    }

    #[test]
    fn every_truncation_is_a_clean_error() {
        let sealed = seal(SnapshotKind::Adaptive, &demo_adaptive().to_bytes());
        for len in 0..sealed.len() {
            let err = AdaptiveSnapshot::open(&sealed[..len]);
            assert!(
                matches!(err, Err(MatrixError::CheckpointCorrupt { .. })),
                "truncation to {len} bytes must be CheckpointCorrupt"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_a_clean_error() {
        // The checksum trailer covers every preceding byte, so *any*
        // single-bit flip — header, payload or the checksum itself —
        // must surface as CheckpointCorrupt (and, crucially, not panic
        // while parsing the damaged payload).
        let sealed = seal(SnapshotKind::Adaptive, &demo_adaptive().to_bytes());
        for byte in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[byte] ^= 1 << (byte % 8);
            let err = AdaptiveSnapshot::open(&bad);
            assert!(
                matches!(err, Err(MatrixError::CheckpointCorrupt { .. })),
                "bit flip at byte {byte} must be CheckpointCorrupt"
            );
        }
    }

    #[test]
    fn huge_declared_lengths_do_not_allocate() {
        // A payload whose matrix header claims u64::MAX elements must be
        // rejected by the remaining-bytes guard before any allocation.
        let mut w = SnapWriter::new();
        w.write_usize(usize::MAX);
        w.write_usize(usize::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.read_mat(),
            Err(MatrixError::CheckpointCorrupt { .. })
        ));
        let mut w = SnapWriter::new();
        w.write_usize(usize::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.read_bytes(),
            Err(MatrixError::CheckpointCorrupt { .. })
        ));
        let mut r = SnapReader::new(&bytes);
        assert!(matches!(
            r.read_usizes(),
            Err(MatrixError::CheckpointCorrupt { .. })
        ));
    }

    #[test]
    fn counting_rng_resume_continues_the_stream() {
        let mut full = CountingRng::new(StdRng::seed_from_u64(42));
        let first: Vec<u64> = (0..10).map(|_| full.next_u64()).collect();
        let tail: Vec<u64> = (0..10).map(|_| full.next_u64()).collect();
        assert_eq!(full.drawn(), 20);

        let mut resumed = CountingRng::resume(StdRng::seed_from_u64(42), 10);
        assert_eq!(resumed.drawn(), 10);
        let resumed_tail: Vec<u64> = (0..10).map(|_| resumed.next_u64()).collect();
        assert_eq!(resumed_tail, tail);
        assert_ne!(resumed_tail, first);
    }

    #[test]
    fn durability_ids_are_monotonic_and_resumable() {
        let mut d = Durability::new(CheckpointPlan::kill_after(2));
        assert_eq!(d.record(vec![1]), 1);
        assert_eq!(d.record(vec![2]), 2);
        assert_eq!(d.latest().map(|(id, _)| *id), Some(2));
        assert_eq!(d.get(1), Some(&[1u8][..]));
        assert_eq!(d.get(9), None);
        assert_eq!(d.plan().kill_after, Some(2));

        let mut r = Durability::resumed(CheckpointPlan::always(), 2);
        assert_eq!(r.record(vec![3]), 3);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn primitive_framing_round_trips(
            a in 0u64..u64::MAX,
            b in 0usize..1_000_000usize,
            x in -1e12f64..1e12f64,
            flag in 0usize..2usize,
            rows in 0usize..6usize,
            cols in 0usize..6usize,
        ) {
            let mat = demo_mat(rows, cols, x.fract());
            let mut w = SnapWriter::new();
            w.write_u64(a);
            w.write_usize(b);
            w.write_f64(x);
            w.write_bool(flag == 1);
            w.write_opt_f64(if flag == 1 { Some(x) } else { None });
            w.write_mat(&mat);
            w.write_usizes(&[b, b / 2, 0]);
            w.write_str("snapshot");
            let bytes = w.into_bytes();
            let mut r = SnapReader::new(&bytes);
            prop_assert_eq!(r.read_u64().unwrap(), a);
            prop_assert_eq!(r.read_usize().unwrap(), b);
            prop_assert_eq!(r.read_f64().unwrap().to_bits(), x.to_bits());
            prop_assert_eq!(r.read_bool().unwrap(), flag == 1);
            let opt = r.read_opt_f64().unwrap();
            prop_assert_eq!(opt.map(f64::to_bits), if flag == 1 { Some(x.to_bits()) } else { None });
            let m2 = r.read_mat().unwrap();
            prop_assert_eq!(m2.shape(), (rows, cols));
            prop_assert_eq!(m2.as_slice(), mat.as_slice());
            prop_assert_eq!(r.read_usizes().unwrap(), vec![b, b / 2, 0]);
            prop_assert_eq!(r.read_string().unwrap(), "snapshot");
            prop_assert_eq!(r.remaining(), 0);
        }

        #[test]
        fn sealed_adaptive_snapshots_survive_arbitrary_states(
            seed in 0u64..1_000u64,
            l in 1usize..5usize,
            n_steps in 0usize..4usize,
            with_factors in 0usize..2usize,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = 6 + (rng.next_u64() % 4) as usize;
            let n = 4 + (rng.next_u64() % 3) as usize;
            let snap = AdaptiveSnapshot {
                id: seed,
                m,
                n,
                basis: demo_mat(l, n, seed as f64),
                c_basis: demo_mat(l, m, -(seed as f64)),
                w: demo_mat(l, n, 0.5),
                l_inc: l,
                best_estimate: 1.0 / (seed as f64 + 1.0),
                steps: (0..n_steps)
                    .map(|i| AdaptiveStep {
                        l: l * (i + 1),
                        l_inc: l,
                        estimate: 1.0 / (i as f64 + 1.0),
                        sim_time: i as f64,
                        actual_error: if i % 2 == 0 { None } else { Some(i as f64) },
                    })
                    .collect(),
                factors: if with_factors == 1 {
                    Some(IncrementalFactors::new(m, n))
                } else {
                    None
                },
                guard: GuardCounters {
                    breakdowns: seed % 3,
                    fallbacks: seed % 5,
                    histogram: [seed % 2, seed % 7, 0],
                },
                rng_drawn: seed * 17,
                account: (0..(seed % 32) as u8).collect(),
            };
            let sealed = seal(SnapshotKind::Adaptive, &snap.to_bytes());
            let back = AdaptiveSnapshot::open(&sealed).unwrap();
            assert_adaptive_eq(&snap, &back);
        }
    }
}
