//! Multi-GPU execution of the fixed-rank sampler (paper §4 and
//! Figure 15).
//!
//! `A` is distributed block-row-wise; `Ω` and `C` follow the matching 1D
//! block-column layout of `Aᵀ`. Sampling and the power-iteration
//! multiplies are local GEMMs followed by host reductions; the small QR
//! of the reduced `ℓ × n` matrix runs on the CPU and is broadcast back;
//! CholQR of the distributed `C` uses the Figure 4 scheme.

use crate::config::{SamplerConfig, SamplingKind};
use crate::result::LowRankApprox;
use rand::Rng;
use rlra_blas::{Diag, Side, Trans, UpLo};
use rlra_gpu::{DMat, ExecMode, MultiGpu, Phase, Timeline};
use rlra_matrix::{Mat, MatrixError, Result};

/// Timing report of a multi-GPU run.
#[derive(Debug, Clone)]
pub struct MultiRunReport {
    /// Simulated wall-clock seconds (the slowest GPU).
    pub seconds: f64,
    /// Per-phase breakdown (max across GPUs; collective phases are
    /// charged to every GPU so the max is exact for them).
    pub timeline: Timeline,
    /// Total communication/host time (the paper's "Comms" bar).
    pub comms: f64,
    /// Number of GPUs used.
    pub ng: usize,
}

/// Host-side input: real values for compute mode, or shape-only for dry
/// runs at the paper's full sizes.
#[derive(Debug, Clone, Copy)]
pub enum HostInput<'a> {
    /// Materialized matrix.
    Values(&'a Mat),
    /// `(m, n)` shape only (dry-run mode).
    Shape(usize, usize),
}

impl HostInput<'_> {
    fn shape(&self) -> (usize, usize) {
        match self {
            HostInput::Values(a) => a.shape(),
            HostInput::Shape(m, n) => (*m, *n),
        }
    }
}

/// Runs fixed-rank random sampling across `mg.ng()` simulated GPUs.
///
/// Only Gaussian sampling is supported on the multi-GPU path (as in the
/// paper's scaling study).
///
/// # Errors
///
/// Returns configuration errors, a parameter error for FFT sampling, and
/// propagates kernel failures. `HostInput::Shape` with a compute-mode
/// context is also rejected.
pub fn sample_fixed_rank_multi_gpu(
    mg: &mut MultiGpu,
    a: HostInput<'_>,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<(Option<LowRankApprox>, MultiRunReport)> {
    let (m, n) = a.shape();
    cfg.validate(m, n)?;
    if !matches!(cfg.sampling, SamplingKind::Gaussian) {
        return Err(MatrixError::InvalidParameter {
            name: "sampling",
            message: "multi-GPU path supports Gaussian sampling only".into(),
        });
    }
    let compute = mg.mode() == ExecMode::Compute;
    if compute && matches!(a, HostInput::Shape(..)) {
        return Err(MatrixError::InvalidParameter {
            name: "a",
            message: "compute mode needs HostInput::Values".into(),
        });
    }
    let l = cfg.l();
    let k = cfg.k;
    let ng = mg.ng();
    let t0 = mg.time();

    // --- Distribute A block-row-wise ---------------------------------------
    let a_parts: Vec<DMat> = match a {
        HostInput::Values(am) => mg.distribute_rows(am, false),
        HostInput::Shape(m, n) => mg.distribute_rows_shape(m, n),
    };

    // --- Step 1a: local sampling, then reduction ----------------------------
    // Ω is distributed in the block-column layout of Aᵀ: GPU i draws its
    // own l × m_i chunk (independent cuRAND streams in parallel).
    let mut b_parts = Vec::with_capacity(ng);
    for (i, ap) in a_parts.iter().enumerate() {
        let mi = ap.rows();
        let gpu = mg.gpu_mut(i);
        let omega_i = gpu.curand_gaussian(Phase::Prng, l, mi, rng);
        let mut bi = gpu.alloc(l, n);
        gpu.gemm(Phase::Sampling, 1.0, &omega_i, Trans::No, ap, Trans::No, 0.0, &mut bi)?;
        b_parts.push(bi);
    }
    let mut b_host = mg.reduce_to_host(Phase::Comms, &b_parts)?;

    // --- Step 1b: power iterations -------------------------------------------
    for _ in 0..cfg.q {
        // QR of the small l × n matrix B on the CPU (paper §4), then
        // broadcast the orthonormal factor.
        charge_host_rows_qr(mg, l, n, cfg.reorth);
        if compute {
            b_host = crate::power::orth_rows(&b_host, cfg.reorth)?;
        }
        let b_bcast = mg.broadcast(Phase::Comms, &b_host);
        // C(i) = B · A(i)ᵀ — column-distributed like Aᵀ.
        let mut c_parts = Vec::with_capacity(ng);
        for (i, ap) in a_parts.iter().enumerate() {
            let mi = ap.rows();
            let gpu = mg.gpu_mut(i);
            let mut ci = gpu.alloc(l, mi);
            gpu.gemm(Phase::GemmIter, 1.0, &b_bcast[i], Trans::No, ap, Trans::Yes, 0.0, &mut ci)?;
            c_parts.push(ci);
        }
        // Distributed CholQR of C (Figure 4).
        mg.cholqr_rows_distributed(Phase::OrthIter, &mut c_parts, cfg.reorth)?;
        // B(i) = C(i) · A(i), reduce.
        let mut b_next = Vec::with_capacity(ng);
        for (i, ap) in a_parts.iter().enumerate() {
            let gpu = mg.gpu_mut(i);
            let mut bi = gpu.alloc(l, n);
            gpu.gemm(Phase::GemmIter, 1.0, &c_parts[i], Trans::No, ap, Trans::No, 0.0, &mut bi)?;
            b_next.push(bi);
        }
        b_host = mg.reduce_to_host(Phase::Comms, &b_next)?;
    }

    // --- Step 2: truncated QP3 of B on GPU 0 ---------------------------------
    let (qp3_host, t_part) = {
        let gpu0 = mg.gpu_mut(0);
        let b_dev =
            if compute { gpu0.resident(&b_host) } else { gpu0.resident_shape(l, n) };
        let qp3 = rlra_gpu::algos::gpu_qp3_truncated(gpu0, Phase::Qrcp, &b_dev, k)?;
        if n > k {
            gpu0.charge(Phase::Qrcp, gpu0.cost().trsm(k, n - k));
        }
        // Compute T on the host for the final assembly.
        let t = qp3.result.as_ref().map(|res| -> Result<Mat> {
            let r_hat = res.r();
            let r11 = r_hat.submatrix(0, 0, k, k);
            let mut t = r_hat.submatrix(0, k, k, n - k);
            if n > k {
                rlra_blas::trsm(Side::Left, UpLo::Upper, Trans::No, Diag::NonUnit, 1.0, r11.as_ref(), t.as_mut())?;
            }
            Ok(t)
        });
        let t = match t {
            Some(Ok(t)) => Some(t),
            Some(Err(e)) => return Err(e),
            None => None,
        };
        (qp3.result, t)
    };
    mg.barrier();

    // --- Step 3: distributed tall-skinny QR of A·P₁:ₖ -------------------------
    // Each GPU gathers its local rows of the k pivot columns.
    let mut x_parts = Vec::with_capacity(ng);
    let chunks = mg.row_chunks(m);
    for (i, &(start, len)) in chunks.iter().enumerate() {
        let gpu = mg.gpu_mut(i);
        gpu.charge(Phase::Qr, gpu.cost().blas1(len * k, 2.0)); // gather copy
        let part = if compute {
            let am = match a {
                HostInput::Values(am) => am,
                HostInput::Shape(..) => unreachable!("validated above"),
            };
            let perm = &qp3_host.as_ref().expect("compute mode").perm;
            let block = am.submatrix(start, 0, len, n);
            gpu.resident(&perm.apply_cols_truncated(&block, k)?)
        } else {
            gpu.resident_shape(len, k)
        };
        x_parts.push(part);
    }
    let r_bar = mg.cholqr_tall_distributed(Phase::Qr, &mut x_parts, cfg.reorth)?;
    // Triangular finish on GPU 0.
    {
        let gpu0 = mg.gpu_mut(0);
        gpu0.charge(Phase::Qr, gpu0.cost().trsm(k, n));
    }
    mg.barrier();

    let report = MultiRunReport {
        seconds: mg.time() - t0,
        timeline: mg.breakdown(),
        comms: mg.comms_time(),
        ng,
    };

    let approx = if compute {
        let qp3_host = qp3_host.expect("compute mode");
        let t = t_part.expect("compute mode");
        let perm = qp3_host.perm.clone();
        // Q: concatenate the distributed row blocks.
        let mut q = Mat::zeros(m, k);
        let mut row = 0;
        for p in &x_parts {
            let pm = p.expect_values();
            q.set_submatrix(row, 0, pm);
            row += pm.rows();
        }
        let mut r = Mat::zeros(k, n);
        r.set_submatrix(0, 0, &r_bar);
        if n > k {
            let mut rt = Mat::zeros(k, n - k);
            rlra_blas::gemm(1.0, r_bar.as_ref(), Trans::No, t.as_ref(), Trans::No, 0.0, rt.as_mut())?;
            r.set_submatrix(0, k, &rt);
        }
        Some(LowRankApprox { q, r, perm })
    } else {
        None
    };
    Ok((approx, report))
}

/// Charges the host-side QR of the reduced `l × n` sampled matrix
/// (CholQR flop count on the CPU, paper §4) to every GPU.
fn charge_host_rows_qr(mg: &mut MultiGpu, l: usize, n: usize, reorth: bool) {
    let passes = if reorth { 2.0 } else { 1.0 };
    let flops = passes * 2.0 * l as f64 * l as f64 * n as f64;
    let cost = mg.gpu(0).cost().clone();
    let secs = cost.host_flops(flops) + cost.host_cholesky(l);
    for i in 0..mg.ng() {
        mg.gpu_mut(i).charge(Phase::OrthIter, secs);
    }
}

/// Convenience wrapper for dry-run scaling studies: returns only the
/// report.
///
/// # Errors
///
/// Propagates errors from [`sample_fixed_rank_multi_gpu`].
pub fn scaling_report(
    ng: usize,
    m: usize,
    n: usize,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<MultiRunReport> {
    let mut mg = MultiGpu::new(ng, rlra_gpu::DeviceSpec::k40c(), ExecMode::DryRun);
    let (_, report) = sample_fixed_rank_multi_gpu(&mut mg, HostInput::Shape(m, n), cfg, rng)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_gpu::DeviceSpec;
    use rlra_matrix::gaussian_mat;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn decay_matrix(m: usize, n: usize, decay: f64, seed: u64) -> Mat {
        let r = m.min(n);
        let spec: Vec<f64> = (0..r).map(|i| decay.powi(i as i32)).collect();
        let x = rlra_lapack::form_q(&gaussian_mat(m, r, &mut rng(seed)));
        let y = rlra_lapack::form_q(&gaussian_mat(n, r, &mut rng(seed + 1)));
        let xs = Mat::from_fn(m, r, |i, j| x[(i, j)] * spec[j]);
        let mut a = Mat::zeros(m, n);
        rlra_blas::gemm(1.0, xs.as_ref(), Trans::No, y.as_ref(), Trans::Yes, 0.0, a.as_mut())
            .unwrap();
        a
    }

    #[test]
    fn multi_gpu_result_is_a_valid_low_rank_approx() {
        let a = decay_matrix(60, 30, 0.5, 1);
        let cfg = SamplerConfig::new(5).with_p(3).with_q(1);
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute);
        let (lr, report) =
            sample_fixed_rank_multi_gpu(&mut mg, HostInput::Values(&a), &cfg, &mut rng(2)).unwrap();
        let lr = lr.unwrap();
        assert_eq!(lr.q.shape(), (60, 5));
        assert!(rlra_lapack::householder::orthogonality_error(&lr.q) < 1e-10);
        // Error comparable to a single-GPU run of the same config.
        let err = lr.error_spectral(&a).unwrap();
        let single = crate::fixed_rank::sample_fixed_rank(&a, &cfg, &mut rng(3)).unwrap();
        let err_single = single.error_spectral(&a).unwrap();
        assert!(err < err_single * 20.0 + 1e-12, "multi {err:e} vs single {err_single:e}");
        assert!(report.comms > 0.0);
        assert_eq!(report.ng, 3);
    }

    #[test]
    fn strong_scaling_shape_matches_fig15() {
        // (m; n) = (150,000; 2,500), (l; p; q) = (64; 10; 1): the paper
        // reports overall speedups ≈ 2.4× (2 GPUs) and 3.8× (3 GPUs) —
        // superlinear because the GEMM chunks become less skinny.
        let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
        let t1 = scaling_report(1, 150_000, 2_500, &cfg, &mut rng(4)).unwrap().seconds;
        let t2 = scaling_report(2, 150_000, 2_500, &cfg, &mut rng(4)).unwrap().seconds;
        let t3 = scaling_report(3, 150_000, 2_500, &cfg, &mut rng(4)).unwrap().seconds;
        let s2 = t1 / t2;
        let s3 = t1 / t3;
        assert!(s2 > 1.8 && s2 < 3.2, "2-GPU speedup {s2:.2} (paper: 2.4)");
        assert!(s3 > 2.6 && s3 < 5.2, "3-GPU speedup {s3:.2} (paper: 3.8)");
        assert!(s3 > s2);
    }

    #[test]
    fn comms_fraction_small_but_growing() {
        let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
        let r2 = scaling_report(2, 150_000, 2_500, &cfg, &mut rng(5)).unwrap();
        let r3 = scaling_report(3, 150_000, 2_500, &cfg, &mut rng(5)).unwrap();
        let f2 = r2.comms / r2.seconds;
        let f3 = r3.comms / r3.seconds;
        // Paper: 1.6 % on two GPUs, 4.3 % on three.
        assert!(f2 < 0.10, "2-GPU comms fraction {f2:.3}");
        assert!(f3 < 0.15, "3-GPU comms fraction {f3:.3}");
        assert!(f3 > f2, "comms fraction must grow with GPU count");
    }

    #[test]
    fn rejects_fft_sampling() {
        let mut mg = MultiGpu::new(2, DeviceSpec::k40c(), ExecMode::DryRun);
        let cfg = SamplerConfig::new(5)
            .with_p(3)
            .with_sampling(SamplingKind::Fft(rlra_fft::SrftScheme::Full));
        assert!(
            sample_fixed_rank_multi_gpu(&mut mg, HostInput::Shape(100, 50), &cfg, &mut rng(6))
                .is_err()
        );
    }

    #[test]
    fn compute_mode_requires_values() {
        let mut mg = MultiGpu::new(2, DeviceSpec::k40c(), ExecMode::Compute);
        let cfg = SamplerConfig::new(5).with_p(3);
        assert!(
            sample_fixed_rank_multi_gpu(&mut mg, HostInput::Shape(100, 50), &cfg, &mut rng(7))
                .is_err()
        );
    }

    #[test]
    fn single_gpu_multi_context_close_to_plain_gpu_time() {
        // A 1-GPU MultiGpu run should cost about the same as the plain
        // single-GPU path (modulo the host-side reductions it performs).
        let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
        let t_multi = scaling_report(1, 50_000, 2_500, &cfg, &mut rng(8)).unwrap().seconds;
        let mut gpu = rlra_gpu::Gpu::k40c_dry();
        let ad = gpu.resident_shape(50_000, 2_500);
        let (_, rep) =
            crate::gpu_exec::sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(8)).unwrap();
        let ratio = t_multi / rep.seconds;
        assert!(ratio > 0.7 && ratio < 1.6, "ratio {ratio:.2}");
    }
}
