//! Multi-GPU execution of the fixed-rank sampler (paper §4 and
//! Figure 15).
//!
//! Thin wrapper over the unified pipeline
//! ([`crate::backend::run_fixed_rank`]) with the
//! [`crate::backend::MultiGpuExec`] backend: `A` is distributed
//! block-row-wise; `Ω` and `C` follow the matching 1D block-column
//! layout of `Aᵀ`; the short-wide reductions run over the (simulated)
//! PCIe bus.

use crate::backend::{run_fixed_rank, Input, MultiGpuExec};
use crate::config::SamplerConfig;
use crate::result::LowRankApprox;
use rand::Rng;
use rlra_gpu::{ExecMode, MultiGpu};
use rlra_matrix::Result;

/// Timing report of a multi-GPU run (the unified
/// [`crate::backend::ExecReport`]; `devices` is the GPU count and
/// `comms` the paper's "Comms" bar).
pub type MultiRunReport = crate::backend::ExecReport;

/// Host-side input: real values for compute mode, or shape-only for dry
/// runs at the paper's full sizes. Alias of the unified
/// [`crate::backend::Input`].
pub type HostInput<'a> = Input<'a>;

/// Runs fixed-rank random sampling across `mg.ng()` simulated GPUs.
///
/// Only Gaussian sampling is supported on the multi-GPU path (as in the
/// paper's scaling study).
///
/// # Errors
///
/// Returns configuration errors, [`rlra_matrix::MatrixError::Unsupported`]
/// for FFT sampling or for `HostInput::Shape` with a compute-mode
/// context, and propagates kernel failures.
pub fn sample_fixed_rank_multi_gpu(
    mg: &mut MultiGpu,
    a: HostInput<'_>,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<(Option<LowRankApprox>, MultiRunReport)> {
    let mut exec = MultiGpuExec::new(mg)?;
    run_fixed_rank(&mut exec, a, cfg, rng)
}

/// Convenience wrapper for dry-run scaling studies: returns only the
/// report.
///
/// # Errors
///
/// Propagates errors from [`sample_fixed_rank_multi_gpu`].
pub fn scaling_report(
    ng: usize,
    m: usize,
    n: usize,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<MultiRunReport> {
    let mut mg = MultiGpu::new(ng, rlra_gpu::DeviceSpec::k40c(), ExecMode::DryRun)?;
    let (_, report) = sample_fixed_rank_multi_gpu(&mut mg, HostInput::Shape(m, n), cfg, rng)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplingKind;
    use rlra_data::testmat::{decay_matrix, rng};
    use rlra_gpu::DeviceSpec;

    #[test]
    fn multi_gpu_result_is_a_valid_low_rank_approx() {
        let (a, _) = decay_matrix(60, 30, 0.5, 1);
        let cfg = SamplerConfig::new(5).with_p(3).with_q(1);
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        let (lr, report) =
            sample_fixed_rank_multi_gpu(&mut mg, HostInput::Values(&a), &cfg, &mut rng(2)).unwrap();
        let lr = lr.unwrap();
        assert_eq!(lr.q.shape(), (60, 5));
        assert!(rlra_lapack::householder::orthogonality_error(&lr.q) < 1e-10);
        // The unified pipeline runs the numerics on the host, so the
        // result is identical to the single-GPU/CPU run of the same seed.
        let single = crate::fixed_rank::sample_fixed_rank(&a, &cfg, &mut rng(2)).unwrap();
        assert_eq!(lr.q, single.q);
        assert_eq!(lr.r, single.r);
        assert_eq!(lr.perm.as_slice(), single.perm.as_slice());
        assert!(report.comms > 0.0);
        assert_eq!(report.devices, 3);
    }

    #[test]
    fn strong_scaling_shape_matches_fig15() {
        // (m; n) = (150,000; 2,500), (l; p; q) = (64; 10; 1): the paper
        // reports overall speedups ≈ 2.4× (2 GPUs) and 3.8× (3 GPUs) —
        // superlinear because the GEMM chunks become less skinny.
        let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
        let t1 = scaling_report(1, 150_000, 2_500, &cfg, &mut rng(4))
            .unwrap()
            .seconds;
        let t2 = scaling_report(2, 150_000, 2_500, &cfg, &mut rng(4))
            .unwrap()
            .seconds;
        let t3 = scaling_report(3, 150_000, 2_500, &cfg, &mut rng(4))
            .unwrap()
            .seconds;
        let s2 = t1 / t2;
        let s3 = t1 / t3;
        assert!(s2 > 1.8 && s2 < 3.2, "2-GPU speedup {s2:.2} (paper: 2.4)");
        assert!(s3 > 2.6 && s3 < 5.2, "3-GPU speedup {s3:.2} (paper: 3.8)");
        assert!(s3 > s2);
    }

    #[test]
    fn comms_fraction_small_but_growing() {
        let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
        let r2 = scaling_report(2, 150_000, 2_500, &cfg, &mut rng(5)).unwrap();
        let r3 = scaling_report(3, 150_000, 2_500, &cfg, &mut rng(5)).unwrap();
        let f2 = r2.comms / r2.seconds;
        let f3 = r3.comms / r3.seconds;
        // Paper: 1.6 % on two GPUs, 4.3 % on three.
        assert!(f2 < 0.10, "2-GPU comms fraction {f2:.3}");
        assert!(f3 < 0.15, "3-GPU comms fraction {f3:.3}");
        assert!(f3 > f2, "comms fraction must grow with GPU count");
    }

    #[test]
    fn rejects_fft_sampling() {
        let mut mg = MultiGpu::new(2, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
        let cfg = SamplerConfig::new(5)
            .with_p(3)
            .with_sampling(SamplingKind::Fft(rlra_fft::SrftScheme::Full));
        let err =
            sample_fixed_rank_multi_gpu(&mut mg, HostInput::Shape(100, 50), &cfg, &mut rng(6))
                .unwrap_err();
        assert!(matches!(
            err,
            rlra_matrix::MatrixError::Unsupported {
                backend: "multi-gpu",
                ..
            }
        ));
    }

    #[test]
    fn compute_mode_requires_values() {
        let mut mg = MultiGpu::new(2, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        let cfg = SamplerConfig::new(5).with_p(3);
        assert!(
            sample_fixed_rank_multi_gpu(&mut mg, HostInput::Shape(100, 50), &cfg, &mut rng(7))
                .is_err()
        );
    }

    #[test]
    fn single_gpu_multi_context_close_to_plain_gpu_time() {
        // A 1-GPU MultiGpu run should cost about the same as the plain
        // single-GPU path (modulo the host-side reductions it performs).
        let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
        let t_multi = scaling_report(1, 50_000, 2_500, &cfg, &mut rng(8))
            .unwrap()
            .seconds;
        let mut gpu = rlra_gpu::Gpu::k40c_dry();
        let ad = gpu.resident_shape(50_000, 2_500);
        let (_, rep) =
            crate::gpu_exec::sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(8)).unwrap();
        let ratio = t_multi / rep.seconds;
        assert!(ratio > 0.7 && ratio < 1.6, "ratio {ratio:.2}");
    }
}
