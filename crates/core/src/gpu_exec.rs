//! Single-GPU execution of the fixed-rank sampler with the paper's
//! phase-by-phase time breakdown (Figures 11–14).

use crate::config::{SamplerConfig, SamplingKind, Step2Kind};
use crate::result::LowRankApprox;
use rand::Rng;
use rlra_blas::{Diag, Side, Trans, UpLo};
use rlra_fft::SrftOperator;
use rlra_gpu::algos::{gpu_cholqr, gpu_cholqr_rows, gpu_qp3_truncated, gpu_tournament_qrcp};
use rlra_gpu::{DMat, ExecMode, Gpu, Phase, Timeline};
use rlra_matrix::{Mat, Result};

/// Timing report of one GPU run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Total simulated seconds.
    pub seconds: f64,
    /// Per-phase breakdown (PRNG / Sampling / GEMM (Iter) / Orth (Iter) /
    /// QRCP / QR, matching the paper's stacked bars).
    pub timeline: Timeline,
    /// Kernel launches issued.
    pub launches: u64,
    /// Host synchronizations.
    pub syncs: u64,
}

/// Runs the fixed-rank random sampling algorithm (Figure 2b) on one
/// simulated GPU. The input `a` must be resident on the device (the
/// paper's timings likewise exclude the initial transfer of `A`).
///
/// In [`ExecMode::Compute`] the returned approximation is the real
/// factorization; in [`ExecMode::DryRun`] only the timing report is
/// meaningful and the approximation is `None`.
///
/// # Errors
///
/// Returns configuration errors from [`SamplerConfig::validate`] and
/// propagates kernel failures.
pub fn sample_fixed_rank_gpu(
    gpu: &mut Gpu,
    a: &DMat,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<(Option<LowRankApprox>, RunReport)> {
    let (m, n) = a.shape();
    cfg.validate(m, n)?;
    let l = cfg.l();
    let k = cfg.k;
    let clock0 = gpu.clock();
    let tl0 = gpu.timeline().clone();
    let (launches0, syncs0) = (gpu.launches, gpu.syncs);

    // --- Step 1a: sampling ------------------------------------------------
    let mut b = match cfg.sampling {
        SamplingKind::Gaussian => {
            let omega = gpu.curand_gaussian(Phase::Prng, l, m, rng);
            let mut b = gpu.alloc(l, n);
            gpu.gemm(Phase::Sampling, 1.0, &omega, Trans::No, a, Trans::No, 0.0, &mut b)?;
            b
        }
        SamplingKind::Fft(scheme) => {
            let op = SrftOperator::new(m, l, scheme, rng)?;
            gpu.cufft_sample_rows(Phase::Sampling, &op, a)?
        }
    };

    // --- Step 1b: power iterations -----------------------------------------
    for _ in 0..cfg.q {
        let (bq, _) = gpu_cholqr_rows(gpu, Phase::OrthIter, &b, cfg.reorth)?;
        let mut c = gpu.alloc(l, m);
        gpu.gemm(Phase::GemmIter, 1.0, &bq, Trans::No, a, Trans::Yes, 0.0, &mut c)?;
        let (cq, _) = gpu_cholqr_rows(gpu, Phase::OrthIter, &c, cfg.reorth)?;
        let mut bnew = gpu.alloc(l, n);
        gpu.gemm(Phase::GemmIter, 1.0, &cq, Trans::No, a, Trans::No, 0.0, &mut bnew)?;
        b = bnew;
    }

    // --- Step 2: rank the pivot columns of B ---------------------------------
    // Either the paper's truncated QP3 or the communication-avoiding
    // tournament; both yield R̂ (upper-triangular leading block) + P.
    let step2_host: Option<(Mat, rlra_matrix::ColPerm)> = match cfg.step2 {
        Step2Kind::Qp3 => {
            let qp3 = gpu_qp3_truncated(gpu, Phase::Qrcp, &b, k)?;
            qp3.result.map(|res| (res.r(), res.perm.clone()))
        }
        Step2Kind::Tournament => {
            let ca = gpu_tournament_qrcp(gpu, Phase::Qrcp, &b, k)?;
            ca.map(|c| (c.r, c.perm))
        }
    };
    // T = R̂₁:ₖ⁻¹·R̂ₖ₊₁:ₙ on the device (Line 9).
    if n > k {
        gpu.launches += 1;
        gpu.charge(Phase::Qrcp, gpu.cost().trsm(k, n - k));
    }

    // --- Step 3: tall-skinny QR of A·P₁:ₖ -----------------------------------
    // Gathering the k pivot columns is a device-side copy.
    gpu.launches += 1;
    gpu.charge(Phase::Qr, gpu.cost().blas1(m * k, 2.0));
    let ap1k_dev: DMat = match gpu.mode() {
        ExecMode::Compute => {
            let (_, perm) = step2_host.as_ref().expect("compute mode has a Step-2 result");
            let host = perm.apply_cols_truncated(a.expect_values(), k)?;
            gpu.resident(&host)
        }
        ExecMode::DryRun => gpu.resident_shape(m, k),
    };
    let (q_dev, rbar_dev) = gpu_cholqr(gpu, Phase::Qr, &ap1k_dev, cfg.reorth)?;
    // R = R̄·[I | T] (Line 10): triangular multiply on the device.
    gpu.launches += 1;
    gpu.charge(Phase::Qr, gpu.cost().trsm(k, n));

    let report = RunReport {
        seconds: gpu.clock() - clock0,
        timeline: diff_timeline(gpu.timeline(), &tl0),
        launches: gpu.launches - launches0,
        syncs: gpu.syncs - syncs0,
    };

    // --- Assemble the host-side result (compute mode) -----------------------
    let approx = match gpu.mode() {
        ExecMode::DryRun => None,
        ExecMode::Compute => {
            let (r_hat, perm) = step2_host.expect("compute mode has a Step-2 result");
            let r11 = r_hat.submatrix(0, 0, k, k);
            let mut t = r_hat.submatrix(0, k, k, n - k);
            if n > k {
                rlra_blas::trsm(
                    Side::Left,
                    UpLo::Upper,
                    Trans::No,
                    Diag::NonUnit,
                    1.0,
                    r11.as_ref(),
                    t.as_mut(),
                )?;
            }
            let rbar = rbar_dev.expect_values();
            let mut r = Mat::zeros(k, n);
            r.set_submatrix(0, 0, rbar);
            if n > k {
                let mut rt = Mat::zeros(k, n - k);
                rlra_blas::gemm(1.0, rbar.as_ref(), Trans::No, t.as_ref(), Trans::No, 0.0, rt.as_mut())?;
                r.set_submatrix(0, k, &rt);
            }
            Some(LowRankApprox { q: q_dev.expect_values().clone(), r, perm })
        }
    };
    Ok((approx, report))
}

/// Per-phase difference `after − before`.
fn diff_timeline(after: &Timeline, before: &Timeline) -> Timeline {
    let mut out = Timeline::new();
    for phase in Phase::ALL {
        let d = after.get(phase) - before.get(phase);
        if d > 0.0 {
            out.add(phase, d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_matrix::gaussian_mat;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn decay_matrix(m: usize, n: usize, decay: f64, seed: u64) -> Mat {
        let r = m.min(n);
        let spec: Vec<f64> = (0..r).map(|i| decay.powi(i as i32)).collect();
        let x = rlra_lapack::form_q(&gaussian_mat(m, r, &mut rng(seed)));
        let y = rlra_lapack::form_q(&gaussian_mat(n, r, &mut rng(seed + 1)));
        let xs = Mat::from_fn(m, r, |i, j| x[(i, j)] * spec[j]);
        let mut a = Mat::zeros(m, n);
        rlra_blas::gemm(1.0, xs.as_ref(), Trans::No, y.as_ref(), Trans::Yes, 0.0, a.as_mut())
            .unwrap();
        a
    }

    #[test]
    fn gpu_run_matches_cpu_numerics() {
        let a = decay_matrix(50, 25, 0.5, 1);
        let cfg = SamplerConfig::new(5).with_p(3).with_q(1);
        // Same seed: identical Gaussian draws, identical result.
        let cpu = crate::fixed_rank::sample_fixed_rank(&a, &cfg, &mut rng(7)).unwrap();
        let mut gpu = Gpu::k40c();
        let ad = gpu.resident(&a);
        let (gpu_lr, report) = sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(7)).unwrap();
        let gpu_lr = gpu_lr.unwrap();
        assert!(report.seconds > 0.0);
        assert_eq!(cpu.perm.as_slice(), gpu_lr.perm.as_slice());
        assert!(cpu.q.approx_eq(&gpu_lr.q, 1e-10));
        assert!(cpu.r.approx_eq(&gpu_lr.r, 1e-10));
    }

    #[test]
    fn phases_are_populated_as_in_fig11() {
        let mut gpu = Gpu::k40c_dry();
        let ad = gpu.resident_shape(50_000, 2_500);
        let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
        let (_, report) =
            sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(2)).unwrap();
        for phase in [Phase::Prng, Phase::Sampling, Phase::GemmIter, Phase::OrthIter, Phase::Qrcp, Phase::Qr]
        {
            assert!(report.timeline.get(phase) > 0.0, "phase {phase:?} empty");
        }
        // Paper §9: at m = 50,000 the first step dominates and the GEMM
        // is ~75 % of the total; QRCP is small.
        let gemm_frac =
            (report.timeline.get(Phase::Sampling) + report.timeline.get(Phase::GemmIter)) / report.seconds;
        assert!(gemm_frac > 0.5, "GEMM fraction {gemm_frac}");
    }

    #[test]
    fn speedup_over_qp3_in_paper_band() {
        // The paper's headline numbers at (m; n) = (50,000; 2,500),
        // (k; p) = (54; 10): q=1 speedup ≈ 6.6×, q=0 ≈ 12.8×.
        let run_rs = |q: usize| -> f64 {
            let mut gpu = Gpu::k40c_dry();
            let ad = gpu.resident_shape(50_000, 2_500);
            let cfg = SamplerConfig::new(54).with_p(10).with_q(q);
            let (_, report) = sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(3)).unwrap();
            report.seconds
        };
        let mut gpu = Gpu::k40c_dry();
        let ad = gpu.resident_shape(50_000, 2_500);
        let (_, t_qp3) = crate::baseline::qp3_low_rank_gpu(&mut gpu, &ad, 64).unwrap();
        let s0 = t_qp3 / run_rs(0);
        let s1 = t_qp3 / run_rs(1);
        assert!(s0 > 6.0 && s0 < 26.0, "q=0 speedup {s0:.1} (paper: 12.8)");
        assert!(s1 > 3.0 && s1 < 14.0, "q=1 speedup {s1:.1} (paper: 6.6)");
        assert!(s0 > s1, "q=0 must be faster than q=1");
    }

    #[test]
    fn time_grows_linearly_with_q() {
        let run = |q: usize| -> f64 {
            let mut gpu = Gpu::k40c_dry();
            let ad = gpu.resident_shape(50_000, 2_500);
            let cfg = SamplerConfig::new(54).with_p(10).with_q(q);
            sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(4)).unwrap().1.seconds
        };
        let t0 = run(0);
        let t4 = run(4);
        let t8 = run(8);
        // Increments per iteration should be nearly equal (Fig. 14).
        let d1 = t4 - t0;
        let d2 = t8 - t4;
        assert!((d1 - d2).abs() / d1 < 0.05, "nonlinear growth: {d1} vs {d2}");
    }

    #[test]
    fn tournament_step2_gpu_matches_cpu() {
        let a = decay_matrix(60, 30, 0.5, 9);
        let cfg = SamplerConfig::new(5).with_p(5).with_step2(Step2Kind::Tournament);
        let cpu = crate::fixed_rank::sample_fixed_rank(&a, &cfg, &mut rng(10)).unwrap();
        let mut gpu = Gpu::k40c();
        let ad = gpu.resident(&a);
        let (gpu_lr, rep) = sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(10)).unwrap();
        let gpu_lr = gpu_lr.unwrap();
        assert_eq!(cpu.perm.as_slice(), gpu_lr.perm.as_slice());
        assert!(cpu.q.approx_eq(&gpu_lr.q, 1e-10));
        // Fewer syncs than the QP3 Step 2 at the same size.
        let mut gq = Gpu::k40c_dry();
        let aq = gq.resident_shape(60, 30);
        let (_, rep_qp3) =
            sample_fixed_rank_gpu(&mut gq, &aq, &SamplerConfig::new(5).with_p(5), &mut rng(10))
                .unwrap();
        assert!(rep.syncs < rep_qp3.syncs);
    }

    #[test]
    fn fft_sampling_path_runs() {
        let a = decay_matrix(64, 20, 0.5, 5);
        let mut gpu = Gpu::k40c();
        let ad = gpu.resident(&a);
        let cfg = SamplerConfig::new(4)
            .with_p(4)
            .with_sampling(SamplingKind::Fft(rlra_fft::SrftScheme::Full));
        let (lr, report) = sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(6)).unwrap();
        assert!(lr.is_some());
        assert!(report.timeline.get(Phase::Sampling) > 0.0);
        assert_eq!(report.timeline.get(Phase::Prng), 0.0);
    }
}
