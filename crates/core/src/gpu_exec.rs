//! Single-GPU execution of the fixed-rank sampler with the paper's
//! phase-by-phase time breakdown (Figures 11–14).
//!
//! Thin wrapper over the unified pipeline
//! ([`crate::backend::run_fixed_rank`]) with the
//! [`crate::backend::GpuExec`] backend.

use crate::backend::{run_fixed_rank, GpuExec, Input};
use crate::config::SamplerConfig;
use crate::result::LowRankApprox;
use rand::Rng;
use rlra_gpu::{DMat, ExecMode, Gpu};
use rlra_matrix::Result;

/// Timing report of one GPU run (the unified [`crate::backend::ExecReport`];
/// `comms` is always zero and `devices` is 1 on this backend).
pub type RunReport = crate::backend::ExecReport;

/// Runs the fixed-rank random sampling algorithm (Figure 2b) on one
/// simulated GPU. The input `a` must be resident on the device (the
/// paper's timings likewise exclude the initial transfer of `A`).
///
/// In [`ExecMode::Compute`] the returned approximation is the real
/// factorization; in [`ExecMode::DryRun`] only the timing report is
/// meaningful and the approximation is `None`.
///
/// # Errors
///
/// Returns configuration errors from [`SamplerConfig::validate`] and
/// propagates kernel failures.
pub fn sample_fixed_rank_gpu(
    gpu: &mut Gpu,
    a: &DMat,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<(Option<LowRankApprox>, RunReport)> {
    let input = match gpu.mode() {
        ExecMode::Compute => Input::Values(a.expect_values()),
        ExecMode::DryRun => {
            let (m, n) = a.shape();
            Input::Shape(m, n)
        }
    };
    let mut exec = GpuExec::new(gpu);
    run_fixed_rank(&mut exec, input, cfg, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SamplingKind, Step2Kind};
    use rlra_data::testmat::{decay_matrix, rng};
    use rlra_gpu::Phase;

    #[test]
    fn gpu_run_matches_cpu_numerics() {
        let (a, _) = decay_matrix(50, 25, 0.5, 1);
        let cfg = SamplerConfig::new(5).with_p(3).with_q(1);
        // Same seed: identical Gaussian draws, identical result.
        let cpu = crate::fixed_rank::sample_fixed_rank(&a, &cfg, &mut rng(7)).unwrap();
        let mut gpu = Gpu::k40c();
        let ad = gpu.resident(&a);
        let (gpu_lr, report) = sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(7)).unwrap();
        let gpu_lr = gpu_lr.unwrap();
        assert!(report.seconds > 0.0);
        assert_eq!(cpu.perm.as_slice(), gpu_lr.perm.as_slice());
        assert!(cpu.q.approx_eq(&gpu_lr.q, 1e-10));
        assert!(cpu.r.approx_eq(&gpu_lr.r, 1e-10));
    }

    #[test]
    fn phases_are_populated_as_in_fig11() {
        let mut gpu = Gpu::k40c_dry();
        let ad = gpu.resident_shape(50_000, 2_500);
        let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
        let (_, report) = sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(2)).unwrap();
        for phase in [
            Phase::Prng,
            Phase::Sampling,
            Phase::GemmIter,
            Phase::OrthIter,
            Phase::Qrcp,
            Phase::Qr,
        ] {
            assert!(report.timeline.get(phase) > 0.0, "phase {phase:?} empty");
        }
        // Paper §9: at m = 50,000 the first step dominates and the GEMM
        // is ~75 % of the total; QRCP is small.
        let gemm_frac = (report.timeline.get(Phase::Sampling)
            + report.timeline.get(Phase::GemmIter))
            / report.seconds;
        assert!(gemm_frac > 0.5, "GEMM fraction {gemm_frac}");
    }

    #[test]
    fn speedup_over_qp3_in_paper_band() {
        // The paper's headline numbers at (m; n) = (50,000; 2,500),
        // (k; p) = (54; 10): q=1 speedup ≈ 6.6×, q=0 ≈ 12.8×.
        let run_rs = |q: usize| -> f64 {
            let mut gpu = Gpu::k40c_dry();
            let ad = gpu.resident_shape(50_000, 2_500);
            let cfg = SamplerConfig::new(54).with_p(10).with_q(q);
            let (_, report) = sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(3)).unwrap();
            report.seconds
        };
        let mut gpu = Gpu::k40c_dry();
        let ad = gpu.resident_shape(50_000, 2_500);
        let (_, t_qp3) = crate::baseline::qp3_low_rank_gpu(&mut gpu, &ad, 64).unwrap();
        let s0 = t_qp3 / run_rs(0);
        let s1 = t_qp3 / run_rs(1);
        assert!(s0 > 6.0 && s0 < 26.0, "q=0 speedup {s0:.1} (paper: 12.8)");
        assert!(s1 > 3.0 && s1 < 14.0, "q=1 speedup {s1:.1} (paper: 6.6)");
        assert!(s0 > s1, "q=0 must be faster than q=1");
    }

    #[test]
    fn time_grows_linearly_with_q() {
        let run = |q: usize| -> f64 {
            let mut gpu = Gpu::k40c_dry();
            let ad = gpu.resident_shape(50_000, 2_500);
            let cfg = SamplerConfig::new(54).with_p(10).with_q(q);
            sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(4))
                .unwrap()
                .1
                .seconds
        };
        let t0 = run(0);
        let t4 = run(4);
        let t8 = run(8);
        // Increments per iteration should be nearly equal (Fig. 14).
        let d1 = t4 - t0;
        let d2 = t8 - t4;
        assert!(
            (d1 - d2).abs() / d1 < 0.05,
            "nonlinear growth: {d1} vs {d2}"
        );
    }

    #[test]
    fn tournament_step2_gpu_matches_cpu() {
        let (a, _) = decay_matrix(60, 30, 0.5, 9);
        let cfg = SamplerConfig::new(5)
            .with_p(5)
            .with_step2(Step2Kind::Tournament);
        let cpu = crate::fixed_rank::sample_fixed_rank(&a, &cfg, &mut rng(10)).unwrap();
        let mut gpu = Gpu::k40c();
        let ad = gpu.resident(&a);
        let (gpu_lr, rep) = sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(10)).unwrap();
        let gpu_lr = gpu_lr.unwrap();
        assert_eq!(cpu.perm.as_slice(), gpu_lr.perm.as_slice());
        assert!(cpu.q.approx_eq(&gpu_lr.q, 1e-10));
        // Fewer syncs than the QP3 Step 2 at the same size.
        let mut gq = Gpu::k40c_dry();
        let aq = gq.resident_shape(60, 30);
        let (_, rep_qp3) =
            sample_fixed_rank_gpu(&mut gq, &aq, &SamplerConfig::new(5).with_p(5), &mut rng(10))
                .unwrap();
        assert!(rep.syncs < rep_qp3.syncs);
    }

    #[test]
    fn fft_sampling_path_runs() {
        let (a, _) = decay_matrix(64, 20, 0.5, 5);
        let mut gpu = Gpu::k40c();
        let ad = gpu.resident(&a);
        let cfg = SamplerConfig::new(4)
            .with_p(4)
            .with_sampling(SamplingKind::Fft(rlra_fft::SrftScheme::Full));
        let (lr, report) = sample_fixed_rank_gpu(&mut gpu, &ad, &cfg, &mut rng(6)).unwrap();
        assert!(lr.is_some());
        assert!(report.timeline.get(Phase::Sampling) > 0.0);
        assert_eq!(report.timeline.get(Phase::Prng), 0.0);
    }
}
