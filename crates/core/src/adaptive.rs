//! The adaptive sampling-size scheme for the fixed-accuracy problem
//! (paper Figure 3 and §10 — "to the best of our knowledge, this is the
//! first experimental study of the adaptive scheme").
//!
//! The sampled subspace is grown by `ℓ_inc` rows at a time; each freshly
//! drawn random block doubles as (a) the probe for the error estimate
//! `ε̃` and (b) the next expansion block. The increment is either static
//! or adjusted by linear interpolation of the last two estimates (the
//! paper's "simple linear interpolation of the previous two steps") —
//! trading off GPU-kernel efficiency (larger blocks run faster, Fig. 18)
//! against overshoot of the required subspace size.
//!
//! Like the fixed-rank pipeline, the loop is written **once** against the
//! [`Executor`] trait: the numerics run on host matrices while the
//! backend's `adaptive_*` hooks account for the device cost of each
//! step. Backends opt in via [`Executor::supports_adaptive`]; the scheme
//! also needs a computing backend, since the stopping decision reads the
//! sampled values.

use crate::backend::{
    incremental_extend, staged, ExecReport, Executor, GpuExec, IntegrityGuard, NumericGuard,
};
use crate::checkpoint::Deadline;
use crate::estimate::residual_estimate;
use crate::fixed_rank::IncrementalFactors;
use crate::result::LowRankApprox;
use rand::Rng;
use rlra_blas::Trans;
use rlra_gpu::Gpu;
use rlra_matrix::{gaussian_mat, Mat, MatrixError, Result};

/// Smallest increment the interpolated strategy will schedule: below
/// this the per-step fixed costs (draw, probe, orthogonalization
/// launches) dominate and the expansion crawls.
pub const INC_MIN: usize = 4;
/// Floor on the geometric-growth cap `2·ℓ_inc_prev` of the interpolated
/// strategy, so a run that bottomed out at a tiny increment can still
/// accelerate instead of being stuck doubling from 1.
pub const INC_GROWTH_MIN_CAP: usize = 8;
/// Largest increment the interpolated strategy will schedule: a single
/// huge jump can overshoot past the point where new sample blocks are
/// numerically rank deficient (see the stagnation guard in the loop).
pub const INC_MAX: usize = 256;

/// How `ℓ_inc` evolves between steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncStrategy {
    /// Constant increment (`f(ℓ, ℓ_inc) = ℓ_inc`).
    Static(usize),
    /// Start at `init`, then extrapolate the target subspace size from
    /// the previous two (ℓ, log ε̃) points (clamped to
    /// [`INC_MIN`]`..=`[`INC_MAX`]).
    Interpolated {
        /// Initial increment.
        init: usize,
    },
}

/// How the fixed-accuracy run turns the grown subspace into `A·P ≈ Q·R`
/// factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FinishMode {
    /// Extend the Q/R/permutation factors by one panel per accepted
    /// sample block (sample-driven pivot selection plus exact projection
    /// blocks), so the finish is a permutation/assembly-only
    /// finalization.
    #[default]
    Incremental,
    /// Grow-then-restart: re-run Steps 2–3 from scratch at
    /// `k = ℓ_final`. Kept as the equivalence oracle for the incremental
    /// path (same trajectory, same final rank, higher modeled cost).
    Restart,
}

impl IncStrategy {
    fn initial(&self) -> usize {
        match *self {
            IncStrategy::Static(v) | IncStrategy::Interpolated { init: v } => v,
        }
    }
}

/// Configuration of the adaptive scheme.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Target tolerance `ε` on the estimate `ε̃` (the paper uses 1e−12).
    pub tol: f64,
    /// Power iterations per expansion.
    pub q: usize,
    /// Extra CholQR pass.
    pub reorth: bool,
    /// Increment strategy.
    pub inc: IncStrategy,
    /// Hard cap on the subspace size (safety stop).
    pub l_max: usize,
    /// Also record the exact error `‖A − A·BᵀB‖₂` per step (offline
    /// diagnostic, Figure 16's dashed line; `O(mnl)` per step).
    pub track_actual: bool,
    /// How the fixed-accuracy entry points finish the run (ignored by
    /// the basis-only entry points, which never build factors).
    pub finish: FinishMode,
    /// Simulated wall-clock budget, enforced by the *durable* entry
    /// points at checkpoint boundaries (see
    /// [`crate::durable::sample_fixed_accuracy_durable`]): on overrun
    /// the run returns [`MatrixError::DeadlineExceeded`] and leaves a
    /// checkpointed partial result behind. Ignored by the non-durable
    /// entry points, which have no boundaries to check at.
    pub deadline: Option<Deadline>,
}

impl AdaptiveConfig {
    /// Paper-style defaults: `ε = 1e−12`, `q = 0`, reorthogonalized,
    /// static `ℓ_inc = init`, cap at 512, incremental finish.
    pub fn new(tol: f64, l_init: usize) -> Self {
        AdaptiveConfig {
            tol,
            q: 0,
            reorth: true,
            inc: IncStrategy::Static(l_init),
            l_max: 512,
            track_actual: false,
            finish: FinishMode::Incremental,
            deadline: None,
        }
    }

    /// Checks the configuration for degeneracies that would make the
    /// adaptive loop meaningless (or never terminate). Called by every
    /// adaptive entry point.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidParameter`] when `tol ≤ 0` (the
    /// estimate can never go below zero), when `l_max` is zero, when the
    /// increment is zero (the subspace would never grow), or when the
    /// initial increment already exceeds `l_max`.
    pub fn validate(&self) -> Result<()> {
        if self.tol.is_nan() || self.tol <= 0.0 {
            return Err(MatrixError::InvalidParameter {
                name: "tol",
                message: format!("tolerance must be positive, got {}", self.tol),
            });
        }
        if self.l_max == 0 {
            return Err(MatrixError::InvalidParameter {
                name: "l_max",
                message: "subspace size cap must be positive".into(),
            });
        }
        let init = self.inc.initial();
        if init == 0 {
            return Err(MatrixError::InvalidParameter {
                name: "inc",
                message: "increment must be positive".into(),
            });
        }
        if init > self.l_max {
            return Err(MatrixError::InvalidParameter {
                name: "inc",
                message: format!("initial increment {init} exceeds l_max {}", self.l_max),
            });
        }
        Ok(())
    }
}

/// One step of the adaptive scheme.
///
/// `PartialEq` is exact (bit-level) on the floats: the durability tests
/// use it to assert that a resumed run reproduces the uninterrupted
/// trajectory identically.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveStep {
    /// Accepted subspace size `ℓ` after the expansion.
    pub l: usize,
    /// Increment used for the expansion.
    pub l_inc: usize,
    /// Error estimate `ε̃` probed with the next random block.
    pub estimate: f64,
    /// Simulated seconds elapsed since the start of the adaptive run.
    pub sim_time: f64,
    /// Exact error (present when `track_actual`).
    pub actual_error: Option<f64>,
}

/// Result of the adaptive sampling run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveResult {
    /// Row-orthonormal basis `B₁:ℓ` of the sampled subspace (`ℓ × n`).
    pub basis: Mat,
    /// Per-step history (`ℓ`, `ε̃`, simulated time).
    pub steps: Vec<AdaptiveStep>,
    /// Whether `ε̃ ≤ ε` was reached before `l_max`.
    pub converged: bool,
}

impl AdaptiveResult {
    /// Final subspace size.
    pub fn l(&self) -> usize {
        self.basis.rows()
    }
}

/// Runs the adaptive-ℓ scheme (Figure 3) on the given execution backend,
/// returning the grown row-orthonormal basis, the convergence history
/// and the backend's timing report.
///
/// # Errors
///
/// Returns [`MatrixError::InvalidParameter`] from
/// [`AdaptiveConfig::validate`], [`MatrixError::Unsupported`] for
/// backends that cannot run the scheme (non-computing backends, or
/// backends without adaptive support), and propagates kernel failures.
pub fn adaptive_sample_exec<E: Executor>(
    exec: &mut E,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut impl Rng,
) -> Result<(AdaptiveResult, ExecReport)> {
    let mut guard = NumericGuard::default();
    adaptive_sample_exec_with_guard(exec, a, cfg, rng, &mut guard)
}

/// As [`adaptive_sample_exec`], with an explicit [`NumericGuard`] so the
/// caller controls the orthogonalization fallback policy of the
/// expansion steps and can read the breakdown counters afterwards.
///
/// # Errors
///
/// As [`adaptive_sample_exec`], plus
/// [`MatrixError::NumericalBreakdown`] when the guard's ladder is capped
/// below the rung a breakdown needs.
pub fn adaptive_sample_exec_with_guard<E: Executor>(
    exec: &mut E,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut impl Rng,
    guard: &mut NumericGuard,
) -> Result<(AdaptiveResult, ExecReport)> {
    let mut iguard = IntegrityGuard::default();
    let result = adaptive_loop(exec, a, cfg, rng, guard, &mut iguard, None)?;
    guard.drain(exec)?;
    let mut report = exec.finish()?;
    guard.fold_into(&mut report);
    Ok((result, report))
}

/// Runs the adaptive-ℓ scheme (Figure 3) on a simulated GPU in compute
/// mode, returning the grown row-orthonormal basis and the convergence
/// history.
///
/// Thin wrapper over [`adaptive_sample_exec`] with the single-GPU
/// backend.
///
/// # Errors
///
/// Returns [`MatrixError::Unsupported`] for dry-run GPUs,
/// [`MatrixError::InvalidParameter`] for degenerate configurations, and
/// propagates kernel failures.
pub fn adaptive_sample(
    gpu: &mut Gpu,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut impl Rng,
) -> Result<AdaptiveResult> {
    let mut exec = GpuExec::new(gpu);
    let (result, _report) = adaptive_sample_exec(&mut exec, a, cfg, rng)?;
    Ok(result)
}

/// The shared adaptive loop: host numerics, backend cost hooks. Does not
/// call [`Executor::finish`], so callers can append further charges
/// (e.g. the fixed-accuracy finishing steps) to the same run.
///
/// When `factors` is provided (the incremental finish mode), every
/// accepted block also extends the `A·P ≈ Q·R` factors by one panel via
/// [`incremental_extend`] — the extension consumes no RNG and never
/// touches the basis, so the `(ℓ, ε̃)` trajectory is bit-identical with
/// and without it.
#[allow(clippy::too_many_arguments)]
fn adaptive_loop<E: Executor>(
    exec: &mut E,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut impl Rng,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
    mut factors: Option<&mut IncrementalFactors>,
) -> Result<AdaptiveResult> {
    let mut cur = AdaptiveCursor::start(exec, a, cfg, rng, iguard)?;
    let converged = loop {
        match adaptive_step(
            exec,
            a,
            cfg,
            rng,
            guard,
            iguard,
            factors.as_deref_mut(),
            &mut cur,
        )? {
            StepOutcome::Continue => {}
            StepOutcome::Converged => break true,
            StepOutcome::Stopped => break false,
        }
    };
    Ok(cur.into_result(converged))
}

/// The mutable state of the adaptive loop between iterations — exactly
/// what an [`crate::checkpoint::AdaptiveSnapshot`] captures at a
/// sample-block boundary, which is what lets the durable and plain entry
/// points drive the *same* [`adaptive_step`] and stay bit-identical.
pub(crate) struct AdaptiveCursor {
    /// Accepted row basis so far.
    pub(crate) basis: Mat,
    /// Power-iteration companion basis.
    pub(crate) c_basis: Mat,
    /// The pending (drawn but not yet folded) sample block.
    pub(crate) w: Mat,
    /// Increment of the pending block.
    pub(crate) l_inc: usize,
    /// Best residual estimate seen so far (divergence guard).
    pub(crate) best_estimate: f64,
    /// Trajectory so far.
    pub(crate) steps: Vec<AdaptiveStep>,
    /// Sim-time origin of the run (the executor's elapsed clock at
    /// entry), subtracted from every step stamp.
    pub(crate) t0: f64,
}

/// What one [`adaptive_step`] decided.
pub(crate) enum StepOutcome {
    /// Keep going: the cursor holds the next pending block.
    Continue,
    /// Terminal: the estimate reached the tolerance.
    Converged,
    /// Terminal: the stagnation guard or the size cap stopped the run
    /// short of the tolerance.
    Stopped,
}

impl AdaptiveCursor {
    /// Validates the configuration and backend, begins the run, and
    /// draws the first candidate block.
    pub(crate) fn start<E: Executor>(
        exec: &mut E,
        a: &Mat,
        cfg: &AdaptiveConfig,
        rng: &mut impl Rng,
        iguard: &mut IntegrityGuard,
    ) -> Result<Self> {
        cfg.validate()?;
        Self::check_backend(exec)?;
        let (m, n) = a.shape();
        let t0 = exec.elapsed();
        exec.begin(m, n);
        let l_inc = cfg.inc.initial().min(cfg.l_max);
        let w = draw_block(exec, a, l_inc, rng, iguard)?;
        Ok(AdaptiveCursor {
            basis: Mat::zeros(0, n),
            c_basis: Mat::zeros(0, m),
            w,
            l_inc,
            best_estimate: f64::INFINITY,
            steps: Vec::new(),
            t0,
        })
    }

    /// The backend gate shared by fresh starts and resumes.
    pub(crate) fn check_backend<E: Executor>(exec: &E) -> Result<()> {
        if !exec.supports_adaptive() {
            return Err(MatrixError::Unsupported {
                backend: exec.name(),
                feature: "the adaptive fixed-accuracy scheme".into(),
            });
        }
        if !exec.computes() {
            return Err(MatrixError::Unsupported {
                backend: exec.name(),
                feature: "adaptive sampling in dry-run mode — the stopping decision reads values"
                    .into(),
            });
        }
        Ok(())
    }

    /// Finishes the run into the public result.
    pub(crate) fn into_result(self, converged: bool) -> AdaptiveResult {
        AdaptiveResult {
            basis: self.basis,
            steps: self.steps,
            converged,
        }
    }
}

/// One iteration of the adaptive loop (Figure 3): fold the pending block
/// into the basis, extend the incremental factors, draw and probe the
/// next block, and decide whether to continue. Both the plain and the
/// durable drivers call this — the durable one checkpoints between
/// `Continue` outcomes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn adaptive_step<E: Executor>(
    exec: &mut E,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut impl Rng,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
    factors: Option<&mut IncrementalFactors>,
    cur: &mut AdaptiveCursor,
) -> Result<StepOutcome> {
    let (m, n) = a.shape();

    // --- Expand: refine W with POWER and fold it into the basis ------
    let w = std::mem::replace(&mut cur.w, Mat::zeros(0, n));
    let w_refined = expand_block(exec, a, &cur.basis, &mut cur.c_basis, w, cfg, guard, iguard)?;
    let l_used = w_refined.rows();
    cur.basis = cur.basis.vcat(&w_refined)?;
    let l_now = cur.basis.rows();
    if let Some(f) = factors {
        incremental_extend(exec, f, a, &w_refined, cfg.reorth, guard, iguard)?;
    }

    // --- Choose the next increment -----------------------------------
    let next_inc = match cfg.inc {
        IncStrategy::Static(v) => v,
        IncStrategy::Interpolated { .. } => interpolate_inc(&cur.steps, cfg.tol, l_now, cur.l_inc),
    };
    let next_inc = next_inc.clamp(1, cfg.l_max.saturating_sub(l_now).max(1));

    // --- Draw the probe block and estimate the error ------------------
    let probe = draw_block(exec, a, next_inc, rng, iguard)?;
    staged(exec, "adaptive_probe", |e| {
        e.adaptive_probe(next_inc, l_now)
    })?;
    let estimate = residual_estimate(&probe, &cur.basis)?;

    let actual = if cfg.track_actual {
        Some(crate::estimate::actual_error(a, &cur.basis)?)
    } else {
        None
    };
    cur.steps.push(AdaptiveStep {
        l: l_now,
        l_inc: l_used,
        estimate,
        sim_time: exec.elapsed() - cur.t0,
        actual_error: actual,
    });

    if estimate <= cfg.tol {
        return Ok(StepOutcome::Converged);
    }
    // Stagnation guard: once the subspace captures A to roundoff, new
    // blocks are numerically rank deficient and the estimate bottoms
    // out at the floating-point noise floor (≈ n·ε·‖A‖·‖ω‖) and then
    // climbs as noise pollutes the basis. Folding such blocks in
    // would only corrupt orthogonality, so stop.
    cur.best_estimate = cur.best_estimate.min(estimate);
    if estimate > 10.0 * cur.best_estimate {
        return Ok(StepOutcome::Stopped);
    }
    if l_now + next_inc > cfg.l_max || l_now + next_inc > n.min(m) {
        return Ok(StepOutcome::Stopped);
    }
    cur.w = probe;
    cur.l_inc = next_inc;
    Ok(StepOutcome::Continue)
}

/// Draws `l_inc` Gaussian rows and samples them through `A`: the backend
/// charges the PRNG + Sampling phases, the values come from the host
/// (same stream position, see [`crate::backend`]).
fn draw_block<E: Executor>(
    exec: &mut E,
    a: &Mat,
    l_inc: usize,
    rng: &mut impl Rng,
    iguard: &mut IntegrityGuard,
) -> Result<Mat> {
    let (m, n) = a.shape();
    staged(exec, "adaptive_draw", |e| e.adaptive_draw(l_inc))?;
    iguard.sync(exec);
    let omega = gaussian_mat(l_inc, m, rng);
    let mut w = Mat::zeros(l_inc, n);
    let protected = iguard.gemm_protected(
        "adaptive_draw",
        "sketch",
        1.0,
        &omega,
        Trans::No,
        a,
        Trans::No,
        &mut w,
    );
    iguard.drain(exec)?;
    protected?;
    Ok(w)
}

/// Folds a new block into the subspace: orthogonalize against the
/// accepted basis, run `q` power iterations, and row-orthonormalize.
/// Returns the refined (row-orthonormal) block.
#[allow(clippy::too_many_arguments)]
fn expand_block<E: Executor>(
    exec: &mut E,
    a: &Mat,
    basis: &Mat,
    c_basis: &mut Mat,
    mut w: Mat,
    cfg: &AdaptiveConfig,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
) -> Result<Mat> {
    let (m, n) = a.shape();
    let l_new = w.rows();

    // Orthogonalize the incoming block against the accepted basis.
    let l_prev = basis.rows();
    staged(exec, "adaptive_orth", |e| {
        e.adaptive_orth(l_new, n, l_prev, cfg.reorth)
    })?;
    iguard.sync(exec);
    rlra_lapack::block_orth_rows(basis, &mut w, cfg.reorth)?;
    let w_in = w;
    w = iguard.orth_protected("adaptive_orth", "orth_b", || {
        guard.ladder_rows("adaptive_orth", &w_in, cfg.reorth)
    })?;
    guard.drain(exec)?;
    iguard.drain(exec)?;

    // Power iterations (Figure 2a with j > 1).
    for _ in 0..cfg.q {
        // C_new = W·Aᵀ.
        staged(exec, "adaptive_gemm_c", |e| e.adaptive_gemm_c(l_new))?;
        iguard.sync(exec);
        let mut c = Mat::zeros(l_new, m);
        iguard.gemm_protected(
            "adaptive_gemm_c",
            "power_c",
            1.0,
            &w,
            Trans::No,
            a,
            Trans::Yes,
            &mut c,
        )?;
        let c_prev = c_basis.rows();
        staged(exec, "adaptive_orth", |e| {
            e.adaptive_orth(l_new, m, c_prev, cfg.reorth)
        })?;
        iguard.sync(exec);
        rlra_lapack::block_orth_rows(c_basis, &mut c, cfg.reorth)?;
        let c = iguard.orth_protected("adaptive_orth", "orth_c", || {
            guard.ladder_rows("adaptive_orth", &c, cfg.reorth)
        })?;
        guard.drain(exec)?;
        iguard.drain(exec)?;
        *c_basis = c_basis.vcat(&c)?;
        // W = C·A.
        staged(exec, "adaptive_gemm_w", |e| e.adaptive_gemm_w(l_new))?;
        iguard.sync(exec);
        let mut wnew = Mat::zeros(l_new, n);
        iguard.gemm_protected(
            "adaptive_gemm_w",
            "power_b",
            1.0,
            &c,
            Trans::No,
            a,
            Trans::No,
            &mut wnew,
        )?;
        w = wnew;
        // Re-orthogonalize against the basis after the round trip.
        let b_prev = basis.rows();
        staged(exec, "adaptive_orth", |e| {
            e.adaptive_orth(l_new, n, b_prev, cfg.reorth)
        })?;
        iguard.sync(exec);
        rlra_lapack::block_orth_rows(basis, &mut w, cfg.reorth)?;
        let w_in = w;
        w = iguard.orth_protected("adaptive_orth", "orth_b", || {
            guard.ladder_rows("adaptive_orth", &w_in, cfg.reorth)
        })?;
        guard.drain(exec)?;
        iguard.drain(exec)?;
    }
    Ok(w)
}

/// Linear interpolation of the previous two steps in (ℓ, log ε̃) space to
/// pick the next increment (paper §10).
fn interpolate_inc(steps: &[AdaptiveStep], tol: f64, l_now: usize, prev_inc: usize) -> usize {
    if steps.len() < 2 {
        return prev_inc;
    }
    let s0 = &steps[steps.len() - 2];
    let s1 = &steps[steps.len() - 1];
    let (x0, y0) = (s0.l as f64, s0.estimate.max(1e-300).log10());
    let (x1, y1) = (s1.l as f64, s1.estimate.max(1e-300).log10());
    let slope = (y1 - y0) / (x1 - x0);
    // NaN slopes (identical estimates) must land in the fallback branch,
    // hence the negated comparison rather than `slope >= 0.0`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(slope < 0.0) || !slope.is_finite() {
        // No progress measured: grow geometrically.
        return (prev_inc * 2).clamp(INC_MIN, INC_MAX);
    }
    let target_l = x1 + (tol.log10() - y1) / slope;
    let inc = (target_l - l_now as f64).ceil();
    // Grow at most geometrically: the early slope underestimates the
    // asymptotic decay rate, and a single huge jump can overshoot past
    // the point where new sample blocks are numerically rank deficient.
    let cap = (prev_inc * 2).clamp(INC_GROWTH_MIN_CAP, INC_MAX);
    (inc as isize).clamp(INC_MIN as isize, cap as isize) as usize
}

/// Solves the fixed-accuracy problem end to end on the given backend:
/// grows the subspace adaptively and returns the `A·P ≈ Q·R`
/// factorization alongside the history and the backend's timing report.
///
/// In the default [`FinishMode::Incremental`], the factors are extended
/// by one panel per accepted block inside the loop and the finish is
/// assembly-only — the restart's Step-2 re-run term is gone from the
/// report. [`FinishMode::Restart`] keeps the grow-then-restart finish
/// (Steps 2–3 from scratch at `k = ℓ_final`) as the equivalence oracle.
///
/// # Errors
///
/// Propagates errors from [`adaptive_sample_exec`] and the finishing
/// steps.
pub fn sample_fixed_accuracy_exec<E: Executor>(
    exec: &mut E,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut impl Rng,
) -> Result<(LowRankApprox, AdaptiveResult, ExecReport)> {
    let mut iguard = IntegrityGuard::default();
    sample_fixed_accuracy_protected(exec, a, cfg, rng, &mut iguard)
}

/// As [`sample_fixed_accuracy_exec`], with an explicit [`IntegrityGuard`]
/// arming the ABFT integrity layer over the adaptive funnel: the sketch
/// and probe draws (buffer `"sketch"`), the expansion GEMMs (`"power_c"`
/// / `"power_b"`), the CholQR ladder rungs (`"orth_b"` / `"orth_c"`) and
/// the accepted [`rlra_lapack::sample_panel_step`] panels (`"panel"`)
/// run checksum-guarded, and the report's `sdc_*` counters record what
/// happened. With the default disarmed guard this is
/// [`sample_fixed_accuracy_exec`] exactly.
///
/// On an integrity failure the guard is drained before the error
/// returns, so the detection work that failed the run is still charged
/// and traced on the executor.
///
/// # Errors
///
/// Everything [`sample_fixed_accuracy_exec`] returns, plus
/// [`rlra_matrix::MatrixError::SilentCorruption`] when corruption is
/// detected under [`crate::backend::IntegrityMode::DetectOnly`] or
/// exhausts the correction budget.
pub fn sample_fixed_accuracy_protected<E: Executor>(
    exec: &mut E,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut impl Rng,
    iguard: &mut IntegrityGuard,
) -> Result<(LowRankApprox, AdaptiveResult, ExecReport)> {
    let mut guard = NumericGuard::default();
    let (m, n) = a.shape();
    let mut factors = match cfg.finish {
        FinishMode::Incremental => Some(IncrementalFactors::new(m, n)),
        FinishMode::Restart => None,
    };
    let attempt = adaptive_loop(exec, a, cfg, rng, &mut guard, iguard, factors.as_mut()).and_then(
        |adaptive| {
            finish_fixed_accuracy(exec, a, cfg, &mut guard, iguard, &adaptive, factors)
                .map(|approx| (approx, adaptive))
        },
    );
    guard.drain(exec)?;
    iguard.drain(exec)?;
    let (approx, adaptive) = attempt?;
    let mut report = exec.finish()?;
    guard.fold_into(&mut report);
    iguard.fold_into(&mut report);
    Ok((approx, adaptive, report))
}

/// Turns a finished adaptive run into the `A·P ≈ Q·R` factors —
/// incremental assembly when `factors` were grown in the loop, the
/// grow-then-restart finish otherwise. Shared by the plain and durable
/// fixed-accuracy drivers so the two charge identically.
pub(crate) fn finish_fixed_accuracy<E: Executor>(
    exec: &mut E,
    a: &Mat,
    cfg: &AdaptiveConfig,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
    adaptive: &AdaptiveResult,
    factors: Option<IncrementalFactors>,
) -> Result<LowRankApprox> {
    match factors {
        Some(mut factors) => {
            // Flush the reserved sample block (one last extension with an
            // empty fresh block), then assemble. The stage event marks
            // where the restart's Step-2 re-run used to be; only the
            // final panel's update hooks are charged under it.
            let n = a.cols();
            staged(exec, "adaptive_finish", |e| {
                incremental_extend(
                    e,
                    &mut factors,
                    a,
                    &Mat::zeros(0, n),
                    cfg.reorth,
                    guard,
                    iguard,
                )
            })?;
            factors.finalize()
        }
        None => {
            let k = adaptive.l().min(a.cols());
            // Charge Steps 2–3 on the backend, finish on the host
            // (through the guard's ladder).
            staged(exec, "adaptive_finish", |e| e.adaptive_finish(k))?;
            crate::fixed_rank::finish_from_sampled_guarded(
                a,
                &adaptive.basis,
                k,
                cfg.reorth,
                crate::config::Step2Kind::Qp3,
                guard,
            )
        }
    }
}

/// Solves the fixed-accuracy problem end to end on a simulated GPU.
///
/// Thin wrapper over [`sample_fixed_accuracy_exec`] with the single-GPU
/// backend.
///
/// # Errors
///
/// Propagates errors from [`adaptive_sample`] and the finishing steps.
pub fn sample_fixed_accuracy(
    gpu: &mut Gpu,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut impl Rng,
) -> Result<(LowRankApprox, AdaptiveResult)> {
    let mut exec = GpuExec::new(gpu);
    let (approx, adaptive, _report) = sample_fixed_accuracy_exec(&mut exec, a, cfg, rng)?;
    Ok((approx, adaptive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CpuExec;
    use rlra_data::testmat::{exponent_matrix, rng};

    #[test]
    fn estimates_decrease_and_converge() {
        // Tolerance reachable within n = 60 basis vectors: the estimate
        // scales like sqrt(m)*sigma_tail, so 1e-3 needs sigma ~ 9e-5,
        // i.e. l ~ 40 of the exponent profile.
        let a = exponent_matrix(120, 60, 1);
        let mut gpu = Gpu::k40c();
        let cfg = AdaptiveConfig::new(1e-3, 8);
        let res = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(2)).unwrap();
        assert!(res.converged, "should converge on the exponent matrix");
        assert!(res.steps.len() >= 2);
        // Broad decrease: last estimate below first.
        let first = res.steps.first().unwrap().estimate;
        let last = res.steps.last().unwrap().estimate;
        assert!(last <= cfg.tol);
        assert!(first > last);
        // Simulated time strictly increases step over step.
        for w in res.steps.windows(2) {
            assert!(w[1].sim_time > w[0].sim_time);
        }
    }

    #[test]
    fn basis_is_row_orthonormal() {
        let a = exponent_matrix(80, 40, 3);
        let mut gpu = Gpu::k40c();
        let cfg = AdaptiveConfig::new(1e-4, 8);
        let res = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(4)).unwrap();
        let err = rlra_lapack::householder::orthogonality_error(&res.basis.transpose());
        assert!(err < 1e-10, "basis orthogonality {err:e}");
    }

    #[test]
    fn estimate_upper_bounds_actual_error() {
        // Figure 16: the estimates sit one or two orders of magnitude
        // above the actual error.
        let a = exponent_matrix(100, 50, 5);
        let mut gpu = Gpu::k40c();
        let mut cfg = AdaptiveConfig::new(1e-6, 8);
        cfg.track_actual = true;
        let res = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(6)).unwrap();
        for s in &res.steps {
            let actual = s.actual_error.unwrap();
            assert!(
                s.estimate * 3.0 > actual,
                "estimate {:.2e} should not be far below actual {:.2e}",
                s.estimate,
                actual
            );
        }
    }

    #[test]
    fn larger_increment_needs_fewer_steps() {
        let a = exponent_matrix(100, 60, 7);
        let steps_for = |inc: usize| -> usize {
            let mut gpu = Gpu::k40c();
            let cfg = AdaptiveConfig::new(1e-6, inc);
            adaptive_sample(&mut gpu, &a, &cfg, &mut rng(8))
                .unwrap()
                .steps
                .len()
        };
        assert!(steps_for(32) < steps_for(8));
    }

    #[test]
    fn interpolated_inc_converges_with_fewer_steps_than_smallest_static() {
        let a = exponent_matrix(100, 60, 9);
        let run = |inc: IncStrategy| -> (bool, usize) {
            let mut gpu = Gpu::k40c();
            let cfg = AdaptiveConfig {
                tol: 1e-6,
                inc,
                l_max: 60,
                ..AdaptiveConfig::new(1e-6, 8)
            };
            let res = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(10)).unwrap();
            (res.converged, res.steps.len())
        };
        let (conv_s, steps_static) = run(IncStrategy::Static(8));
        let (conv_i, steps_interp) = run(IncStrategy::Interpolated { init: 8 });
        assert!(conv_s && conv_i);
        assert!(
            steps_interp <= steps_static,
            "interpolated ({steps_interp}) should not need more steps than static 8 ({steps_static})"
        );
    }

    #[test]
    fn fixed_accuracy_end_to_end() {
        let a = exponent_matrix(100, 60, 11);
        let mut gpu = Gpu::k40c();
        let cfg = AdaptiveConfig::new(1e-3, 8);
        let (approx, adaptive) = sample_fixed_accuracy(&mut gpu, &a, &cfg, &mut rng(12)).unwrap();
        assert!(adaptive.converged);
        // The certified construction: final factorization error should be
        // of the order of the tolerance (the estimate is pessimistic, so
        // usually much better).
        let err = approx.error_spectral(&a).unwrap();
        assert!(err < cfg.tol * 100.0, "error {err:e} vs tol {:e}", cfg.tol);
    }

    #[test]
    fn dry_run_rejected() {
        let a = exponent_matrix(30, 20, 13);
        let mut gpu = Gpu::k40c_dry();
        let cfg = AdaptiveConfig::new(1e-6, 4);
        assert!(adaptive_sample(&mut gpu, &a, &cfg, &mut rng(14)).is_err());
    }

    #[test]
    fn power_iterations_supported_in_expansion() {
        let a = exponent_matrix(80, 40, 15);
        let mut gpu = Gpu::k40c();
        let mut cfg = AdaptiveConfig::new(1e-5, 8);
        cfg.q = 1;
        let res = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(16)).unwrap();
        assert!(res.converged);
        let err = rlra_lapack::householder::orthogonality_error(&res.basis.transpose());
        assert!(err < 1e-10);
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        assert!(AdaptiveConfig::new(0.0, 8).validate().is_err());
        assert!(AdaptiveConfig::new(-1e-6, 8).validate().is_err());
        assert!(AdaptiveConfig::new(f64::NAN, 8).validate().is_err());
        assert!(AdaptiveConfig::new(1e-6, 0).validate().is_err());
        let mut cfg = AdaptiveConfig::new(1e-6, 8);
        cfg.l_max = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = AdaptiveConfig::new(1e-6, 64);
        cfg.l_max = 32;
        assert!(cfg.validate().is_err());
        assert!(AdaptiveConfig::new(1e-6, 8).validate().is_ok());
        // Entry points reject the same configs.
        let a = exponent_matrix(30, 20, 17);
        let mut gpu = Gpu::k40c();
        assert!(adaptive_sample(&mut gpu, &a, &AdaptiveConfig::new(0.0, 8), &mut rng(18)).is_err());
        let mut cpu = CpuExec::new();
        assert!(sample_fixed_accuracy_exec(
            &mut cpu,
            &a,
            &AdaptiveConfig::new(1e-6, 0),
            &mut rng(19)
        )
        .is_err());
    }

    #[test]
    fn nan_slope_falls_back_to_geometric_growth() {
        let step = |l: usize, estimate: f64| AdaptiveStep {
            l,
            l_inc: 0,
            estimate,
            sim_time: 0.0,
            actual_error: None,
        };
        // Identical (ℓ, ε̃) points give a 0/0 = NaN slope: the fallback
        // must double the previous increment within [INC_MIN, INC_MAX].
        let stuck = vec![step(16, 1e-3), step(16, 1e-3)];
        assert_eq!(interpolate_inc(&stuck, 1e-9, 16, 8), 16);
        assert_eq!(interpolate_inc(&stuck, 1e-9, 16, 1), INC_MIN);
        assert_eq!(interpolate_inc(&stuck, 1e-9, 16, 200), INC_MAX);
        // Zero and positive slopes (no progress) land in the same branch.
        let flat = vec![step(8, 1e-3), step(16, 1e-3)];
        assert_eq!(interpolate_inc(&flat, 1e-9, 16, 8), 16);
        let rising = vec![step(8, 1e-4), step(16, 1e-3)];
        assert_eq!(interpolate_inc(&rising, 1e-9, 16, 8), 16);
        // Fewer than two steps: keep the previous increment as-is.
        assert_eq!(interpolate_inc(&[], 1e-9, 16, 8), 8);
        assert_eq!(interpolate_inc(&[step(8, 1e-3)], 1e-9, 8, 8), 8);
    }

    #[test]
    fn l_max_cap_returns_honest_nonconverged_result_on_both_finishes() {
        // A full-rank Gaussian matrix cannot reach 1e-12, so the run must
        // stop at the cap with an honest history on both finish modes.
        let a = rlra_matrix::gaussian_mat(60, 40, &mut rng(31));
        for finish in [FinishMode::Incremental, FinishMode::Restart] {
            let mut gpu = Gpu::k40c();
            let mut exec = GpuExec::new(&mut gpu);
            let cfg = AdaptiveConfig {
                l_max: 16,
                finish,
                ..AdaptiveConfig::new(1e-12, 8)
            };
            let (approx, adaptive, report) =
                sample_fixed_accuracy_exec(&mut exec, &a, &cfg, &mut rng(32)).unwrap();
            assert!(!adaptive.converged, "{finish:?}: full rank cannot converge");
            assert!(adaptive.l() <= cfg.l_max);
            assert!(!adaptive.steps.is_empty(), "{finish:?}: history intact");
            for s in &adaptive.steps {
                assert!(s.estimate.is_finite());
            }
            assert_eq!(approx.q.rows(), 60);
            assert_eq!(approx.q.cols(), adaptive.l());
            assert_eq!(approx.r.shape(), (adaptive.l(), 40));
            assert!(report.seconds > 0.0);
        }
    }

    #[test]
    fn incremental_finish_matches_restart_and_is_cheaper() {
        // Acceptance check of the incremental pipeline: same trajectory
        // and final rank as the restart oracle, same accuracy class, and
        // strictly lower modeled cost — the Step-2 re-run term (a QP3
        // skeleton at k = ℓ_final, the dominant Qrcp charge) is gone.
        let a = exponent_matrix(1200, 240, 23);
        let tol = 1e-9;
        let run = |finish: FinishMode| {
            let mut gpu = Gpu::k40c();
            let mut exec = GpuExec::new(&mut gpu);
            let cfg = AdaptiveConfig {
                finish,
                ..AdaptiveConfig::new(tol, 32)
            };
            sample_fixed_accuracy_exec(&mut exec, &a, &cfg, &mut rng(24)).unwrap()
        };
        let (inc_approx, inc_adaptive, inc_report) = run(FinishMode::Incremental);
        let (res_approx, res_adaptive, res_report) = run(FinishMode::Restart);
        // Identical (ℓ, ε̃) trajectory: the factor extension consumes no
        // RNG and never touches the basis.
        assert!(inc_adaptive.converged && res_adaptive.converged);
        assert_eq!(inc_adaptive.l(), res_adaptive.l());
        assert_eq!(inc_adaptive.steps.len(), res_adaptive.steps.len());
        for (i, r) in inc_adaptive.steps.iter().zip(&res_adaptive.steps) {
            assert_eq!(i.l, r.l);
            assert_eq!(i.estimate, r.estimate);
        }
        // Same rank, same accuracy class (the incremental trailing block
        // is interpolated from per-step samples; the documented tolerance
        // is the same ×100 slack the restart finish gets).
        assert_eq!(inc_approx.q.shape(), res_approx.q.shape());
        let err_inc = inc_approx.error_spectral(&a).unwrap();
        let err_res = res_approx.error_spectral(&a).unwrap();
        assert!(err_inc < tol * 100.0, "incremental error {err_inc:e}");
        assert!(err_res < tol * 100.0, "restart error {err_res:e}");
        // Strictly cheaper in total and in the Qrcp phase specifically.
        assert!(
            inc_report.seconds < res_report.seconds,
            "incremental {:.6e} s should beat restart {:.6e} s",
            inc_report.seconds,
            res_report.seconds
        );
        let inc_qrcp = inc_report.timeline.get(rlra_gpu::Phase::Qrcp);
        let res_qrcp = res_report.timeline.get(rlra_gpu::Phase::Qrcp);
        assert!(
            inc_qrcp < res_qrcp,
            "incremental Qrcp {inc_qrcp:.6e} s should beat restart {res_qrcp:.6e} s"
        );
    }

    #[test]
    fn cpu_backend_matches_gpu_trajectory() {
        // The numerics are host-side on every backend, so the same seed
        // must walk the same (ℓ, ε̃) trajectory on CPU and GPU.
        let a = exponent_matrix(100, 60, 21);
        let cfg = AdaptiveConfig::new(1e-5, 8);
        let mut gpu = Gpu::k40c();
        let on_gpu = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(22)).unwrap();
        let mut cpu = CpuExec::new();
        let (on_cpu, report) = adaptive_sample_exec(&mut cpu, &a, &cfg, &mut rng(22)).unwrap();
        assert_eq!(on_cpu.l(), on_gpu.l());
        assert_eq!(on_cpu.converged, on_gpu.converged);
        assert_eq!(on_cpu.steps.len(), on_gpu.steps.len());
        for (c, g) in on_cpu.steps.iter().zip(&on_gpu.steps) {
            assert_eq!(c.estimate, g.estimate);
        }
        assert_eq!(on_cpu.basis, on_gpu.basis);
        // The CPU backend reports no device time.
        assert_eq!(report.seconds, 0.0);
        assert_eq!(report.devices, 0);
    }
}
