//! The adaptive sampling-size scheme for the fixed-accuracy problem
//! (paper Figure 3 and §10 — "to the best of our knowledge, this is the
//! first experimental study of the adaptive scheme").
//!
//! The sampled subspace is grown by `ℓ_inc` rows at a time; each freshly
//! drawn random block doubles as (a) the probe for the error estimate
//! `ε̃` and (b) the next expansion block. The increment is either static
//! or adjusted by linear interpolation of the last two estimates (the
//! paper's "simple linear interpolation of the previous two steps") —
//! trading off GPU-kernel efficiency (larger blocks run faster, Fig. 18)
//! against overshoot of the required subspace size.

use crate::estimate::residual_estimate;
use crate::result::LowRankApprox;
use rand::Rng;
use rlra_blas::Trans;
use rlra_gpu::{DMat, ExecMode, Gpu, Phase};
use rlra_matrix::{Mat, MatrixError, Result};

/// How `ℓ_inc` evolves between steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncStrategy {
    /// Constant increment (`f(ℓ, ℓ_inc) = ℓ_inc`).
    Static(usize),
    /// Start at `init`, then extrapolate the target subspace size from
    /// the previous two (ℓ, log ε̃) points (clamped to `[4, 256]`).
    Interpolated {
        /// Initial increment.
        init: usize,
    },
}

impl IncStrategy {
    fn initial(&self) -> usize {
        match *self {
            IncStrategy::Static(v) | IncStrategy::Interpolated { init: v } => v,
        }
    }
}

/// Configuration of the adaptive scheme.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveConfig {
    /// Target tolerance `ε` on the estimate `ε̃` (the paper uses 1e−12).
    pub tol: f64,
    /// Power iterations per expansion.
    pub q: usize,
    /// Extra CholQR pass.
    pub reorth: bool,
    /// Increment strategy.
    pub inc: IncStrategy,
    /// Hard cap on the subspace size (safety stop).
    pub l_max: usize,
    /// Also record the exact error `‖A − A·BᵀB‖₂` per step (offline
    /// diagnostic, Figure 16's dashed line; `O(mnl)` per step).
    pub track_actual: bool,
}

impl AdaptiveConfig {
    /// Paper-style defaults: `ε = 1e−12`, `q = 0`, reorthogonalized,
    /// static `ℓ_inc = init`, cap at 512.
    pub fn new(tol: f64, l_init: usize) -> Self {
        AdaptiveConfig {
            tol,
            q: 0,
            reorth: true,
            inc: IncStrategy::Static(l_init),
            l_max: 512,
            track_actual: false,
        }
    }
}

/// One step of the adaptive scheme.
#[derive(Debug, Clone)]
pub struct AdaptiveStep {
    /// Accepted subspace size `ℓ` after the expansion.
    pub l: usize,
    /// Increment used for the expansion.
    pub l_inc: usize,
    /// Error estimate `ε̃` probed with the next random block.
    pub estimate: f64,
    /// Simulated seconds elapsed since the start of the adaptive run.
    pub sim_time: f64,
    /// Exact error (present when `track_actual`).
    pub actual_error: Option<f64>,
}

/// Result of the adaptive sampling run.
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// Row-orthonormal basis `B₁:ℓ` of the sampled subspace (`ℓ × n`).
    pub basis: Mat,
    /// Per-step history (`ℓ`, `ε̃`, simulated time).
    pub steps: Vec<AdaptiveStep>,
    /// Whether `ε̃ ≤ ε` was reached before `l_max`.
    pub converged: bool,
}

impl AdaptiveResult {
    /// Final subspace size.
    pub fn l(&self) -> usize {
        self.basis.rows()
    }
}

/// Runs the adaptive-ℓ scheme (Figure 3) on a simulated GPU in compute
/// mode, returning the grown row-orthonormal basis and the convergence
/// history.
///
/// # Errors
///
/// Returns [`MatrixError::InvalidParameter`] for dry-run GPUs or
/// degenerate configurations, and propagates kernel failures.
pub fn adaptive_sample(
    gpu: &mut Gpu,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut impl Rng,
) -> Result<AdaptiveResult> {
    if gpu.mode() != ExecMode::Compute {
        return Err(MatrixError::InvalidParameter {
            name: "gpu",
            message: "adaptive_sample decides from values; use ExecMode::Compute".into(),
        });
    }
    let (m, n) = a.shape();
    let init = cfg.inc.initial();
    if init == 0 || cfg.tol <= 0.0 {
        return Err(MatrixError::InvalidParameter {
            name: "cfg",
            message: "l_init and tol must be positive".into(),
        });
    }
    let t0 = gpu.clock();
    let a_dev = gpu.resident(a);

    // Accepted basis (rows of B) and its C companion.
    let mut basis = Mat::zeros(0, n);
    let mut c_basis = Mat::zeros(0, m);
    let mut steps: Vec<AdaptiveStep> = Vec::new();
    let mut l_inc = init.min(cfg.l_max);

    // First candidate block W = Ω·A.
    let mut w = draw_block(gpu, &a_dev, l_inc, rng)?;
    let mut converged = false;
    let mut best_estimate = f64::INFINITY;

    loop {
        // --- Expand: refine W with POWER and fold it into the basis ------
        let w_refined = expand_block(gpu, &a_dev, &basis, &mut c_basis, w, cfg)?;
        let l_used = w_refined.rows();
        basis = basis.vcat(&w_refined)?;
        let l_now = basis.rows();

        // --- Choose the next increment -----------------------------------
        let next_inc = match cfg.inc {
            IncStrategy::Static(v) => v,
            IncStrategy::Interpolated { .. } => interpolate_inc(&steps, cfg.tol, l_now, l_inc),
        };
        let next_inc = next_inc.clamp(1, cfg.l_max.saturating_sub(l_now).max(1));

        // --- Draw the probe block and estimate the error ------------------
        let probe = draw_block(gpu, &a_dev, next_inc, rng)?;
        // ε̃ = max row-residual (small GEMMs, charged as Other).
        gpu.charge(Phase::Other, gpu.cost().gemm(next_inc, l_now, n) + gpu.cost().gemm(next_inc, n, l_now));
        let estimate = residual_estimate(&probe, &basis)?;

        let actual = if cfg.track_actual {
            Some(crate::estimate::actual_error(a, &basis)?)
        } else {
            None
        };
        steps.push(AdaptiveStep {
            l: l_now,
            l_inc: l_used,
            estimate,
            sim_time: gpu.clock() - t0,
            actual_error: actual,
        });

        if estimate <= cfg.tol {
            converged = true;
            break;
        }
        // Stagnation guard: once the subspace captures A to roundoff, new
        // blocks are numerically rank deficient and the estimate bottoms
        // out at the floating-point noise floor (≈ n·ε·‖A‖·‖ω‖) and then
        // climbs as noise pollutes the basis. Folding such blocks in
        // would only corrupt orthogonality, so stop.
        best_estimate = best_estimate.min(estimate);
        if estimate > 10.0 * best_estimate {
            break;
        }
        if l_now + next_inc > cfg.l_max || l_now + next_inc > n.min(m) {
            break;
        }
        w = probe;
        l_inc = next_inc;
        let _ = l_inc;
    }
    Ok(AdaptiveResult { basis, steps, converged })
}

/// Draws `l_inc` Gaussian rows and samples them through `A` (PRNG +
/// Sampling phases).
fn draw_block(gpu: &mut Gpu, a: &DMat, l_inc: usize, rng: &mut impl Rng) -> Result<Mat> {
    let (m, n) = a.shape();
    let omega = gpu.curand_gaussian(Phase::Prng, l_inc, m, rng);
    let mut w = gpu.alloc(l_inc, n);
    gpu.gemm(Phase::Sampling, 1.0, &omega, Trans::No, a, Trans::No, 0.0, &mut w)?;
    Ok(w.expect_values().clone())
}

/// Folds a new block into the subspace: orthogonalize against the
/// accepted basis, run `q` power iterations, and row-orthonormalize.
/// Returns the refined (row-orthonormal) block.
fn expand_block(
    gpu: &mut Gpu,
    a_dev: &DMat,
    basis: &Mat,
    c_basis: &mut Mat,
    mut w: Mat,
    cfg: &AdaptiveConfig,
) -> Result<Mat> {
    let (m, n) = a_dev.shape();
    let l_new = w.rows();
    let l_old = basis.rows();

    // Charge BOrth (two GEMMs) + CholQR per pass.
    let charge_orth = |gpu: &mut Gpu, rows: usize, cols: usize, l_prev: usize| {
        if l_prev > 0 {
            let passes = if cfg.reorth { 2 } else { 1 };
            for _ in 0..passes {
                gpu.charge(Phase::OrthIter, gpu.cost().gemm(rows, l_prev, cols));
                gpu.charge(Phase::OrthIter, gpu.cost().gemm(rows, cols, l_prev));
            }
        }
        let passes = if cfg.reorth { 2 } else { 1 };
        for _ in 0..passes {
            gpu.charge(Phase::OrthIter, gpu.cost().syrk(rows, cols));
            gpu.charge(Phase::OrthIter, gpu.cost().host_cholesky(rows));
            gpu.charge(Phase::OrthIter, gpu.cost().trsm(rows, cols));
        }
    };

    // Orthogonalize the incoming block against the accepted basis.
    charge_orth(gpu, l_new, n, l_old);
    rlra_lapack::block_orth_rows(basis, &mut w, cfg.reorth)?;
    w = crate::power::orth_rows(&w, cfg.reorth)?;

    // Power iterations (Figure 2a with j > 1).
    for _ in 0..cfg.q {
        // C_new = W·Aᵀ.
        let wd = gpu.resident(&w);
        let mut c = gpu.alloc(l_new, m);
        gpu.gemm(Phase::GemmIter, 1.0, &wd, Trans::No, a_dev, Trans::Yes, 0.0, &mut c)?;
        let mut c = c.expect_values().clone();
        charge_orth(gpu, l_new, m, c_basis.rows());
        rlra_lapack::block_orth_rows(c_basis, &mut c, cfg.reorth)?;
        let c = crate::power::orth_rows(&c, cfg.reorth)?;
        *c_basis = c_basis.vcat(&c)?;
        // W = C·A.
        let cd = gpu.resident(&c);
        let mut wnew = gpu.alloc(l_new, n);
        gpu.gemm(Phase::GemmIter, 1.0, &cd, Trans::No, a_dev, Trans::No, 0.0, &mut wnew)?;
        w = wnew.expect_values().clone();
        // Re-orthogonalize against the basis after the round trip.
        charge_orth(gpu, l_new, n, basis.rows());
        rlra_lapack::block_orth_rows(basis, &mut w, cfg.reorth)?;
        w = crate::power::orth_rows(&w, cfg.reorth)?;
    }
    Ok(w)
}

/// Linear interpolation of the previous two steps in (ℓ, log ε̃) space to
/// pick the next increment (paper §10).
fn interpolate_inc(steps: &[AdaptiveStep], tol: f64, l_now: usize, prev_inc: usize) -> usize {
    if steps.len() < 2 {
        return prev_inc;
    }
    let s0 = &steps[steps.len() - 2];
    let s1 = &steps[steps.len() - 1];
    let (x0, y0) = (s0.l as f64, s0.estimate.max(1e-300).log10());
    let (x1, y1) = (s1.l as f64, s1.estimate.max(1e-300).log10());
    let slope = (y1 - y0) / (x1 - x0);
    // NaN slopes (identical estimates) must land in the fallback branch,
    // hence the negated comparison rather than `slope >= 0.0`.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(slope < 0.0) || !slope.is_finite() {
        // No progress measured: grow geometrically.
        return (prev_inc * 2).clamp(4, 256);
    }
    let target_l = x1 + (tol.log10() - y1) / slope;
    let inc = (target_l - l_now as f64).ceil();
    // Grow at most geometrically: the early slope underestimates the
    // asymptotic decay rate, and a single huge jump can overshoot past
    // the point where new sample blocks are numerically rank deficient.
    let cap = (prev_inc * 2).clamp(8, 256);
    (inc as isize).clamp(4, cap as isize) as usize
}

/// Solves the fixed-accuracy problem end to end: grows the subspace
/// adaptively, then completes Steps 2–3 of random sampling with
/// `k = ℓ_final` to return the `A·P ≈ Q·R` factorization.
///
/// # Errors
///
/// Propagates errors from [`adaptive_sample`] and the finishing steps.
pub fn sample_fixed_accuracy(
    gpu: &mut Gpu,
    a: &Mat,
    cfg: &AdaptiveConfig,
    rng: &mut impl Rng,
) -> Result<(LowRankApprox, AdaptiveResult)> {
    let adaptive = adaptive_sample(gpu, a, cfg, rng)?;
    let k = adaptive.l().min(a.cols());
    // Charge Steps 2–3 on the device.
    let (m, n) = a.shape();
    gpu.charge(Phase::Qrcp, gpu.cost().gemv(k, n) * k as f64); // truncated QP3 skeleton
    gpu.charge(Phase::Qr, gpu.cost().syrk(k, m) + gpu.cost().trsm(k, m));
    let approx = crate::fixed_rank::finish_from_sampled(a, &adaptive.basis, k, cfg.reorth)?;
    Ok((approx, adaptive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_matrix::gaussian_mat;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Exponent-profile matrix (the one the paper uses in §10).
    fn exponent_matrix(m: usize, n: usize, seed: u64) -> Mat {
        let r = m.min(n);
        let spec: Vec<f64> = (0..r).map(|i| 10f64.powf(-(i as f64) / 10.0)).collect();
        let x = rlra_lapack::form_q(&gaussian_mat(m, r, &mut rng(seed)));
        let y = rlra_lapack::form_q(&gaussian_mat(n, r, &mut rng(seed + 1)));
        let xs = Mat::from_fn(m, r, |i, j| x[(i, j)] * spec[j]);
        let mut a = Mat::zeros(m, n);
        rlra_blas::gemm(1.0, xs.as_ref(), Trans::No, y.as_ref(), Trans::Yes, 0.0, a.as_mut())
            .unwrap();
        a
    }

    #[test]
    fn estimates_decrease_and_converge() {
        // Tolerance reachable within n = 60 basis vectors: the estimate
        // scales like sqrt(m)*sigma_tail, so 1e-3 needs sigma ~ 9e-5,
        // i.e. l ~ 40 of the exponent profile.
        let a = exponent_matrix(120, 60, 1);
        let mut gpu = Gpu::k40c();
        let cfg = AdaptiveConfig::new(1e-3, 8);
        let res = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(2)).unwrap();
        assert!(res.converged, "should converge on the exponent matrix");
        assert!(res.steps.len() >= 2);
        // Broad decrease: last estimate below first.
        let first = res.steps.first().unwrap().estimate;
        let last = res.steps.last().unwrap().estimate;
        assert!(last <= cfg.tol);
        assert!(first > last);
        // Simulated time strictly increases step over step.
        for w in res.steps.windows(2) {
            assert!(w[1].sim_time > w[0].sim_time);
        }
    }

    #[test]
    fn basis_is_row_orthonormal() {
        let a = exponent_matrix(80, 40, 3);
        let mut gpu = Gpu::k40c();
        let cfg = AdaptiveConfig::new(1e-4, 8);
        let res = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(4)).unwrap();
        let err = rlra_lapack::householder::orthogonality_error(&res.basis.transpose());
        assert!(err < 1e-10, "basis orthogonality {err:e}");
    }

    #[test]
    fn estimate_upper_bounds_actual_error() {
        // Figure 16: the estimates sit one or two orders of magnitude
        // above the actual error.
        let a = exponent_matrix(100, 50, 5);
        let mut gpu = Gpu::k40c();
        let mut cfg = AdaptiveConfig::new(1e-6, 8);
        cfg.track_actual = true;
        let res = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(6)).unwrap();
        for s in &res.steps {
            let actual = s.actual_error.unwrap();
            assert!(
                s.estimate * 3.0 > actual,
                "estimate {:.2e} should not be far below actual {:.2e}",
                s.estimate,
                actual
            );
        }
    }

    #[test]
    fn larger_increment_needs_fewer_steps() {
        let a = exponent_matrix(100, 60, 7);
        let steps_for = |inc: usize| -> usize {
            let mut gpu = Gpu::k40c();
            let cfg = AdaptiveConfig::new(1e-6, inc);
            adaptive_sample(&mut gpu, &a, &cfg, &mut rng(8)).unwrap().steps.len()
        };
        assert!(steps_for(32) < steps_for(8));
    }

    #[test]
    fn interpolated_inc_converges_with_fewer_steps_than_smallest_static() {
        let a = exponent_matrix(100, 60, 9);
        let run = |inc: IncStrategy| -> (bool, usize) {
            let mut gpu = Gpu::k40c();
            let cfg = AdaptiveConfig { tol: 1e-6, q: 0, reorth: true, inc, l_max: 60, track_actual: false };
            let res = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(10)).unwrap();
            (res.converged, res.steps.len())
        };
        let (conv_s, steps_static) = run(IncStrategy::Static(8));
        let (conv_i, steps_interp) = run(IncStrategy::Interpolated { init: 8 });
        assert!(conv_s && conv_i);
        assert!(
            steps_interp <= steps_static,
            "interpolated ({steps_interp}) should not need more steps than static 8 ({steps_static})"
        );
    }

    #[test]
    fn fixed_accuracy_end_to_end() {
        let a = exponent_matrix(100, 60, 11);
        let mut gpu = Gpu::k40c();
        let cfg = AdaptiveConfig::new(1e-3, 8);
        let (approx, adaptive) = sample_fixed_accuracy(&mut gpu, &a, &cfg, &mut rng(12)).unwrap();
        assert!(adaptive.converged);
        // The certified construction: final factorization error should be
        // of the order of the tolerance (the estimate is pessimistic, so
        // usually much better).
        let err = approx.error_spectral(&a).unwrap();
        assert!(err < cfg.tol * 100.0, "error {err:e} vs tol {:e}", cfg.tol);
    }

    #[test]
    fn dry_run_rejected() {
        let a = exponent_matrix(30, 20, 13);
        let mut gpu = Gpu::k40c_dry();
        let cfg = AdaptiveConfig::new(1e-6, 4);
        assert!(adaptive_sample(&mut gpu, &a, &cfg, &mut rng(14)).is_err());
    }

    #[test]
    fn power_iterations_supported_in_expansion() {
        let a = exponent_matrix(80, 40, 15);
        let mut gpu = Gpu::k40c();
        let mut cfg = AdaptiveConfig::new(1e-5, 8);
        cfg.q = 1;
        let res = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(16)).unwrap();
        assert!(res.converged);
        let err = rlra_lapack::householder::orthogonality_error(&res.basis.transpose());
        assert!(err < 1e-10);
    }
}
