//! Block low-rank (BLR) matrix compression — the library form of the
//! paper's §11 HSS-solver outlook.
//!
//! A [`BlrMatrix`] tiles a dense matrix into a uniform grid, keeps the
//! diagonal tiles dense, and compresses every off-diagonal tile with the
//! randomized fixed-rank sampler. This is the flat (single-level) BLR
//! format used by sparse direct solvers; the hierarchical (HSS) format
//! the paper names applies the same per-block compression recursively.
//!
//! The point of doing this with *random sampling* rather than QP3 is the
//! paper's whole thesis: each tile compression is GEMM-bound, so on a
//! GPU the O(tiles²) compressions run at near-peak throughput.

use crate::config::SamplerConfig;
use crate::fixed_rank::sample_fixed_rank;
use crate::result::LowRankApprox;
use rand::Rng;
use rlra_matrix::{Mat, MatrixError, Result};

/// One tile of the BLR representation.
#[derive(Debug, Clone)]
pub enum BlrBlock {
    /// Stored densely (diagonal tiles, or tiles where compression did not
    /// pay off).
    Dense(Mat),
    /// Stored as a rank-`k` factorization.
    LowRank(LowRankApprox),
}

impl BlrBlock {
    /// Entries stored by this tile.
    pub fn stored_entries(&self) -> usize {
        match self {
            BlrBlock::Dense(d) => d.rows() * d.cols(),
            BlrBlock::LowRank(lr) => {
                lr.q.rows() * lr.rank() + lr.rank() * lr.r.cols() + lr.perm.len()
            }
        }
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<()> {
        match self {
            BlrBlock::Dense(d) => rlra_blas::gemv(1.0, d.as_ref(), rlra_blas::Trans::No, x, 1.0, y),
            BlrBlock::LowRank(lr) => {
                let t = lr.apply(x)?;
                for (yi, ti) in y.iter_mut().zip(&t) {
                    *yi += ti;
                }
                Ok(())
            }
        }
    }
}

/// A flat block low-rank matrix: a `tiles × tiles` grid over an
/// `n × n` dense matrix.
#[derive(Debug, Clone)]
pub struct BlrMatrix {
    blocks: Vec<Vec<BlrBlock>>,
    tile: usize,
    n: usize,
}

impl BlrMatrix {
    /// Compresses `a` (square) into BLR form with `tiles × tiles` blocks:
    /// diagonal tiles stay dense; each off-diagonal tile is compressed to
    /// rank `cfg.k` by random sampling, but kept dense when the
    /// factorization would store more than the tile itself (the standard
    /// BLR admissibility-by-benefit rule).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidParameter`] for non-square inputs or
    /// tile counts that do not divide the dimension.
    pub fn compress(
        a: &Mat,
        tiles: usize,
        cfg: &SamplerConfig,
        rng: &mut impl Rng,
    ) -> Result<BlrMatrix> {
        let (m, n) = a.shape();
        if m != n {
            return Err(MatrixError::InvalidParameter {
                name: "a",
                message: format!("BLR compression needs a square matrix, got {m}x{n}"),
            });
        }
        if tiles == 0 || n % tiles != 0 {
            return Err(MatrixError::InvalidParameter {
                name: "tiles",
                message: format!("tile count {tiles} must divide n = {n}"),
            });
        }
        let tile = n / tiles;
        cfg.validate(tile, tile)?;
        let dense_entries = tile * tile;
        let mut blocks = Vec::with_capacity(tiles);
        for bi in 0..tiles {
            let mut row = Vec::with_capacity(tiles);
            for bj in 0..tiles {
                let sub = a.submatrix(bi * tile, bj * tile, tile, tile);
                if bi == bj {
                    row.push(BlrBlock::Dense(sub));
                    continue;
                }
                let lr = sample_fixed_rank(&sub, cfg, rng)?;
                let candidate = BlrBlock::LowRank(lr);
                if candidate.stored_entries() < dense_entries {
                    row.push(candidate);
                } else {
                    row.push(BlrBlock::Dense(sub));
                }
            }
            blocks.push(row);
        }
        Ok(BlrMatrix { blocks, tile, n })
    }

    /// Compresses `a` to a **tolerance** instead of a fixed rank: every
    /// off-diagonal tile runs the paper's adaptive-ℓ scheme (Figure 3)
    /// until its error estimate drops below `tol·‖A‖`-scale, so smooth
    /// far-field tiles get small ranks and near-field tiles get larger
    /// ones automatically — the fixed-accuracy problem in its natural
    /// application.
    ///
    /// # Errors
    ///
    /// As for [`BlrMatrix::compress`]; `tol` must be positive.
    pub fn compress_adaptive(
        a: &Mat,
        tiles: usize,
        tol: f64,
        rng: &mut impl Rng,
    ) -> Result<BlrMatrix> {
        let (m, n) = a.shape();
        if m != n {
            return Err(MatrixError::InvalidParameter {
                name: "a",
                message: format!("BLR compression needs a square matrix, got {m}x{n}"),
            });
        }
        if tiles == 0 || n % tiles != 0 {
            return Err(MatrixError::InvalidParameter {
                name: "tiles",
                message: format!("tile count {tiles} must divide n = {n}"),
            });
        }
        let tile = n / tiles;
        let mut gpu = rlra_gpu::Gpu::k40c();
        let acfg = crate::adaptive::AdaptiveConfig {
            tol,
            q: 0,
            reorth: true,
            inc: crate::adaptive::IncStrategy::Interpolated { init: 4 },
            l_max: tile / 2,
            track_actual: false,
            finish: crate::adaptive::FinishMode::Incremental,
            deadline: None,
        };
        let dense_entries = tile * tile;
        let mut blocks = Vec::with_capacity(tiles);
        for bi in 0..tiles {
            let mut row = Vec::with_capacity(tiles);
            for bj in 0..tiles {
                let sub = a.submatrix(bi * tile, bj * tile, tile, tile);
                if bi == bj {
                    row.push(BlrBlock::Dense(sub));
                    continue;
                }
                let adaptive = crate::adaptive::adaptive_sample(&mut gpu, &sub, &acfg, rng)?;
                if !adaptive.converged {
                    // Tolerance unreachable within the rank cap: keep dense.
                    row.push(BlrBlock::Dense(sub));
                    continue;
                }
                let k = adaptive.l().min(tile);
                let lr = crate::fixed_rank::finish_from_sampled(&sub, &adaptive.basis, k, true)?;
                let candidate = BlrBlock::LowRank(lr);
                if candidate.stored_entries() < dense_entries {
                    row.push(candidate);
                } else {
                    row.push(BlrBlock::Dense(sub));
                }
            }
            blocks.push(row);
        }
        Ok(BlrMatrix { blocks, tile, n })
    }

    /// Ranks of the low-rank tiles in row-major tile order (`None` for
    /// dense tiles) — diagnostics for the adaptive compression.
    pub fn tile_ranks(&self) -> Vec<Vec<Option<usize>>> {
        self.blocks
            .iter()
            .map(|row| {
                row.iter()
                    .map(|b| match b {
                        BlrBlock::Dense(_) => None,
                        BlrBlock::LowRank(lr) => Some(lr.rank()),
                    })
                    .collect()
            })
            .collect()
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Tile edge length.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Total stored entries across all tiles.
    pub fn stored_entries(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|r| r.iter().map(BlrBlock::stored_entries))
            .sum()
    }

    /// Compression ratio `dense / stored` (> 1 means compression won).
    pub fn compression_ratio(&self) -> f64 {
        (self.n * self.n) as f64 / self.stored_entries() as f64
    }

    /// Number of tiles kept dense (including the diagonal).
    pub fn dense_tiles(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|r| r.iter())
            .filter(|b| matches!(b, BlrBlock::Dense(_)))
            .count()
    }

    /// Compressed matrix-vector product `y = (BLR) · x`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `x.len() != dim()`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.n {
            return Err(MatrixError::DimensionMismatch {
                op: "BlrMatrix::matvec",
                expected: format!("x.len() == {}", self.n),
                found: format!("x.len() == {}", x.len()),
            });
        }
        let mut y = vec![0.0f64; self.n];
        for (bi, row) in self.blocks.iter().enumerate() {
            for (bj, block) in row.iter().enumerate() {
                let xs = &x[bj * self.tile..(bj + 1) * self.tile];
                let ys = &mut y[bi * self.tile..(bi + 1) * self.tile];
                block.apply(xs, ys)?;
            }
        }
        Ok(y)
    }

    /// Reconstructs the dense matrix (diagnostics / tests).
    ///
    /// # Errors
    ///
    /// Propagates reconstruction errors.
    pub fn to_dense(&self) -> Result<Mat> {
        let mut out = Mat::zeros(self.n, self.n);
        for (bi, row) in self.blocks.iter().enumerate() {
            for (bj, block) in row.iter().enumerate() {
                let dense = match block {
                    BlrBlock::Dense(d) => d.clone(),
                    BlrBlock::LowRank(lr) => lr.reconstruct()?,
                };
                out.set_submatrix(bi * self.tile, bj * self.tile, &dense);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_data::{kernel_matrix, uniform_points, Kernel};

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn cauchy(n: usize) -> Mat {
        kernel_matrix(Kernel::Cauchy { gamma: 48.0 }, &uniform_points(n))
    }

    #[test]
    fn compresses_kernel_matrix_accurately() {
        let a = cauchy(256);
        let cfg = SamplerConfig::new(10).with_p(6).with_q(1);
        let blr = BlrMatrix::compress(&a, 4, &cfg, &mut rng(1)).unwrap();
        assert!(
            blr.compression_ratio() > 1.5,
            "ratio {:.2}",
            blr.compression_ratio()
        );
        let rec = blr.to_dense().unwrap();
        let err =
            rlra_matrix::norms::spectral_norm(rlra_matrix::ops::sub(&a, &rec).unwrap().as_ref())
                / rlra_matrix::norms::spectral_norm(a.as_ref());
        assert!(err < 1e-6, "BLR reconstruction error {err:e}");
    }

    #[test]
    fn matvec_matches_dense() {
        let a = cauchy(128);
        let cfg = SamplerConfig::new(8).with_p(4).with_q(1);
        let blr = BlrMatrix::compress(&a, 4, &cfg, &mut rng(2)).unwrap();
        let x: Vec<f64> = (0..128).map(|i| (i as f64 * 0.1).cos()).collect();
        let y_blr = blr.matvec(&x).unwrap();
        let mut y_dense = vec![0.0; 128];
        rlra_blas::gemv(1.0, a.as_ref(), rlra_blas::Trans::No, &x, 0.0, &mut y_dense).unwrap();
        let num: f64 = y_blr
            .iter()
            .zip(&y_dense)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den = rlra_matrix::norms::vec_norm2(&y_dense);
        assert!(num / den < 1e-6, "matvec error {:e}", num / den);
    }

    #[test]
    fn incompressible_matrix_stays_dense() {
        // A full-rank random matrix: the benefit rule keeps every tile
        // dense (rank k + p storage exceeds the tile), so BLR degrades
        // gracefully to the dense layout.
        let a = rlra_matrix::gaussian_mat(64, 64, &mut rng(3));
        // k chosen so the factored tile (2·32·16 + 32 entries) exceeds
        // the dense tile (32² = 1024): the benefit rule must refuse.
        let cfg = SamplerConfig::new(16).with_p(4);
        let blr = BlrMatrix::compress(&a, 2, &cfg, &mut rng(4)).unwrap();
        assert_eq!(blr.dense_tiles(), 4, "nothing should compress");
        assert!((blr.compression_ratio() - 1.0).abs() < 1e-12);
        let rec = blr.to_dense().unwrap();
        assert!(rec.approx_eq(&a, 0.0), "dense fallback must be exact");
    }

    #[test]
    fn rejects_bad_shapes() {
        let a = Mat::zeros(10, 12);
        assert!(BlrMatrix::compress(&a, 2, &SamplerConfig::new(2), &mut rng(5)).is_err());
        let a = Mat::zeros(10, 10);
        assert!(BlrMatrix::compress(&a, 3, &SamplerConfig::new(2), &mut rng(6)).is_err());
        assert!(BlrMatrix::compress(&a, 0, &SamplerConfig::new(2), &mut rng(7)).is_err());
    }

    #[test]
    fn matvec_length_checked() {
        let a = cauchy(64);
        let blr =
            BlrMatrix::compress(&a, 2, &SamplerConfig::new(4).with_p(4), &mut rng(8)).unwrap();
        assert!(blr.matvec(&vec![0.0; 63]).is_err());
    }

    #[test]
    fn adaptive_compression_meets_tolerance_with_varying_ranks() {
        let a = cauchy(256);
        let tol = 1e-8;
        let blr = BlrMatrix::compress_adaptive(&a, 4, tol, &mut rng(20)).unwrap();
        // Operator error bounded by ~tiles * per-tile tolerance.
        let rec = blr.to_dense().unwrap();
        let err =
            rlra_matrix::norms::spectral_norm(rlra_matrix::ops::sub(&a, &rec).unwrap().as_ref());
        assert!(
            err < 16.0 * tol,
            "adaptive BLR error {err:e} vs tol {tol:e}"
        );
        // Near-diagonal tiles need higher rank than far tiles.
        let ranks = blr.tile_ranks();
        let near = ranks[0][1].expect("off-diagonal neighbor compressed");
        let far = ranks[0][3].expect("far corner compressed");
        assert!(
            far <= near,
            "far tile rank {far} should be <= near tile rank {near}"
        );
        assert!(blr.compression_ratio() > 1.3);
    }

    #[test]
    fn adaptive_tolerance_controls_rank() {
        let a = cauchy(128);
        let loose = BlrMatrix::compress_adaptive(&a, 2, 1e-4, &mut rng(21)).unwrap();
        let tight = BlrMatrix::compress_adaptive(&a, 2, 1e-10, &mut rng(22)).unwrap();
        assert!(
            tight.stored_entries() > loose.stored_entries(),
            "tighter tolerance must store more: {} vs {}",
            tight.stored_entries(),
            loose.stored_entries()
        );
    }

    #[test]
    fn sharper_kernel_compresses_better() {
        let mild = kernel_matrix(Kernel::Cauchy { gamma: 8.0 }, &uniform_points(192));
        let sharp = kernel_matrix(Kernel::Gaussian { gamma: 400.0 }, &uniform_points(192));
        let cfg = SamplerConfig::new(6).with_p(4).with_q(1);
        let r_mild = BlrMatrix::compress(&mild, 4, &cfg, &mut rng(9))
            .unwrap()
            .compression_ratio();
        let r_sharp = BlrMatrix::compress(&sharp, 4, &cfg, &mut rng(10))
            .unwrap()
            .compression_ratio();
        assert!(
            r_sharp >= r_mild * 0.9,
            "sharp {r_sharp:.2} vs mild {r_mild:.2}"
        );
    }
}
