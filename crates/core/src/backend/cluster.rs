//! The distributed-memory backend — the setting of the paper's closing
//! prediction (§11: the benefits of random sampling "increase on a
//! computer with higher communication cost, like a distributed-memory
//! computer").
//!
//! The layout extends §4's single-node scheme one level up: `A` is split
//! block-row-wise across nodes (proportionally to their GPU counts) and
//! again across each node's GPUs; the short-wide reductions run
//! PCIe-locally first and then as α-β tree collectives over the
//! interconnect.
//!
//! This backend is timing-only ([`ExecMode::DryRun`] clusters): the
//! distributed numerics are already validated at the multi-GPU level,
//! and the cluster study is about communication shape at scale. It
//! therefore charges the caller's cluster directly rather than
//! simulating internally.

use super::{ExecReport, Executor, IntegrityOutcome};
use crate::config::{SamplerConfig, SamplingKind, Step2Kind};
use rlra_blas::Trans;
use rlra_fft::SrftScheme;
use rlra_gpu::algos::{gpu_qp3_truncated, gpu_tournament_qrcp};
use rlra_gpu::{Cluster, DMat, ExecMode, Phase};
use rlra_matrix::{Mat, MatrixError, Result};
use rlra_trace::{Metrics, Tracer};

/// Distributed-memory (cluster) execution backend. Timing-only.
///
/// `slots[ni][j]` is the GPU index (within node `ni`) that owns the
/// `j`-th distributed part of that node's block of `A`; fail-stop
/// recovery redistributes a node's block over its surviving GPUs.
pub struct ClusterExec<'a> {
    cluster: &'a mut Cluster,
    a_parts: Vec<Vec<DMat>>,
    slots: Vec<Vec<usize>>,
    node_rows: Vec<usize>,
    t0: f64,
    launches0: u64,
    syncs0: u64,
    faults0: u64,
    sdc0: u64,
    recovery0: f64,
    metrics0: Metrics,
    l: usize,
    m: usize,
    n: usize,
}

impl std::fmt::Debug for ClusterExec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterExec")
            .field("m", &self.m)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<'a> ClusterExec<'a> {
    /// Creates the backend for the given (caller-owned) cluster.
    pub fn new(cluster: &'a mut Cluster) -> Self {
        ClusterExec {
            cluster,
            a_parts: Vec::new(),
            slots: Vec::new(),
            node_rows: Vec::new(),
            t0: 0.0,
            launches0: 0,
            syncs0: 0,
            faults0: 0,
            sdc0: 0,
            recovery0: 0.0,
            metrics0: Metrics::default(),
            l: 0,
            m: 0,
            n: 0,
        }
    }

    /// First surviving GPU on node 0 (the paper's "root" device for the
    /// small factorizations).
    fn root_gpu(&self) -> Result<usize> {
        self.cluster
            .node(0)
            .alive_indices()
            .first()
            .copied()
            .ok_or(MatrixError::Internal {
                op: "ClusterExec",
                invariant: "node 0 has at least one surviving GPU",
            })
    }

    fn counter_sums(&self) -> (u64, u64) {
        let (mut launches, mut syncs) = (0u64, 0u64);
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node(ni);
            for gi in 0..node.ng() {
                launches += node.gpu(gi).launches;
                syncs += node.gpu(gi).syncs;
            }
        }
        (launches, syncs)
    }

    /// Local GEMM of a distributed `src` against every `A` block, node
    /// reduction, then the inter-node allreduce — the shape of both the
    /// sampling step and the `B = C·A` update.
    fn reduce_b(
        &mut self,
        l: usize,
        src: &mut dyn FnMut(&mut rlra_gpu::Gpu, usize) -> DMat,
        phase: Phase,
    ) -> Result<()> {
        let nodes = self.cluster.nodes();
        let n = self.n;
        let mut node_bs = Vec::with_capacity(nodes);
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            let mut b_parts = Vec::with_capacity(parts.len());
            for (ap, &gi) in parts.iter().zip(&self.slots[ni]) {
                let gpu = node.gpu_mut(gi);
                let s = src(gpu, ap.rows());
                let mut bi = gpu.alloc(l, n);
                gpu.gemm(phase, 1.0, &s, Trans::No, ap, Trans::No, 0.0, &mut bi)?;
                b_parts.push(bi);
            }
            node_bs.push(node.reduce_to_host(Phase::Comms, &b_parts)?);
        }
        self.cluster.allreduce_host(Phase::Comms, &node_bs)?;
        Ok(())
    }
}

impl Executor for ClusterExec<'_> {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn computes(&self) -> bool {
        false
    }

    fn supports(&self, cfg: &SamplerConfig, _has_values: bool) -> Result<()> {
        if !matches!(cfg.sampling, SamplingKind::Gaussian) {
            return Err(MatrixError::Unsupported {
                backend: self.name(),
                feature: "FFT (SRFT) sampling — the cluster study uses Gaussian sampling only"
                    .into(),
            });
        }
        if self.cluster.mode() != ExecMode::DryRun {
            return Err(MatrixError::Unsupported {
                backend: self.name(),
                feature: "compute mode — cluster runs are timing studies; use ExecMode::DryRun"
                    .into(),
            });
        }
        Ok(())
    }

    fn begin(&mut self, m: usize, n: usize) {
        self.m = m;
        self.n = n;
        self.t0 = self.cluster.time();
        let (launches0, syncs0) = self.counter_sums();
        self.launches0 = launches0;
        self.syncs0 = syncs0;
        self.faults0 = self.cluster.faults_injected();
        self.sdc0 = self.cluster.sdc_injected();
        self.recovery0 = self.cluster.breakdown().get(Phase::Recovery);
        self.metrics0 = self.cluster.metrics();
        let node_chunks = self.cluster.node_row_chunks(m);
        self.a_parts = Vec::with_capacity(node_chunks.len());
        self.slots = Vec::with_capacity(node_chunks.len());
        self.node_rows = node_chunks.iter().map(|&(_, len)| len).collect();
        for (ni, &(_, len)) in node_chunks.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            self.a_parts.push(node.distribute_rows_shape(len, n));
            self.slots.push(node.alive_indices());
        }
    }

    fn gaussian_sample(&mut self, l: usize) -> Result<()> {
        // Ω chunks drawn per GPU (independent cuRAND streams).
        self.l = l;
        let mut draw = |gpu: &mut rlra_gpu::Gpu, rows: usize| -> DMat {
            gpu.charge(Phase::Prng, gpu.cost().curand(l * rows));
            gpu.resident_shape(l, rows)
        };
        self.reduce_b(l, &mut draw, Phase::Sampling)
    }

    fn srft_sample_rows(&mut self, _l: usize, _scheme: SrftScheme) -> Result<()> {
        Err(MatrixError::Unsupported {
            backend: self.name(),
            feature: "FFT (SRFT) sampling".into(),
        })
    }

    fn orth_b(&mut self, l: usize, reorth: bool) -> Result<()> {
        // Host QR of B on node 0, broadcast over the interconnect, then
        // PCIe-broadcast within each node.
        let n = self.n;
        {
            let node0 = self.cluster.node_mut(0);
            let cost = node0.gpu(0).cost().clone();
            let passes = if reorth { 2.0 } else { 1.0 };
            let secs = cost.host_flops(passes * 2.0 * (l * l * n) as f64) + cost.host_cholesky(l);
            for g in node0.alive_indices() {
                node0.gpu_mut(g).charge_raw(Phase::OrthIter, secs);
            }
        }
        self.cluster.broadcast_host(Phase::Comms, &Mat::zeros(l, n));
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node_mut(ni);
            node.broadcast(Phase::Comms, &Mat::zeros(l, n));
        }
        Ok(())
    }

    fn gemm_to_c(&mut self, l: usize) -> Result<()> {
        // C(i) = B·A(i)ᵀ on every GPU's row slice.
        let n = self.n;
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            for (ap, &gi) in parts.iter().zip(&self.slots[ni]) {
                let gpu = node.gpu_mut(gi);
                let b_local = gpu.resident_shape(l, n);
                let mut ci = gpu.alloc(l, ap.rows());
                gpu.gemm(
                    Phase::GemmIter,
                    1.0,
                    &b_local,
                    Trans::No,
                    ap,
                    Trans::Yes,
                    0.0,
                    &mut ci,
                )?;
            }
        }
        Ok(())
    }

    fn orth_c(&mut self, l: usize, _reorth: bool) -> Result<()> {
        // Distributed CholQR of C with a global Gram allreduce: local
        // SYRKs, node reductions, the inter-node allreduce, then the
        // replicated host Cholesky, intra-node broadcast of R̄ and the
        // local TRSMs.
        let nodes = self.cluster.nodes();
        let mut node_gs = Vec::with_capacity(nodes);
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            let mut g_parts = Vec::with_capacity(parts.len());
            for (ap, &gi) in parts.iter().zip(&self.slots[ni]) {
                let gpu = node.gpu_mut(gi);
                let ci = gpu.resident_shape(l, ap.rows());
                let mut gi_mat = gpu.alloc(l, l);
                gpu.syrk_full(Phase::OrthIter, 1.0, &ci, Trans::No, 0.0, &mut gi_mat)?;
                g_parts.push(gi_mat);
            }
            node_gs.push(node.reduce_to_host(Phase::Comms, &g_parts)?);
        }
        self.cluster.allreduce_host(Phase::Comms, &node_gs)?;
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            {
                let cost = node.gpu(0).cost().clone();
                let secs = cost.host_cholesky(l);
                for g in node.alive_indices() {
                    node.gpu_mut(g).charge_raw(Phase::OrthIter, secs);
                }
            }
            node.broadcast(Phase::Comms, &Mat::zeros(l, l));
            for (ap, &gi) in parts.iter().zip(&self.slots[ni]) {
                let gpu = node.gpu_mut(gi);
                gpu.charge(Phase::OrthIter, gpu.cost().trsm(l, ap.rows()));
            }
        }
        Ok(())
    }

    fn gemm_to_b(&mut self, l: usize) -> Result<()> {
        // B(i) = C(i)·A(i), node reduce + inter-node allreduce.
        let mut noop =
            |gpu: &mut rlra_gpu::Gpu, rows: usize| -> DMat { gpu.resident_shape(l, rows) };
        self.reduce_b(l, &mut noop, Phase::GemmIter)
    }

    fn step2_pivot(&mut self, kind: Step2Kind, l: usize, k: usize) -> Result<()> {
        let n = self.n;
        {
            let root = self.root_gpu()?;
            let node0 = self.cluster.node_mut(0);
            let gpu0 = node0.gpu_mut(root);
            let b_dev = gpu0.resident_shape(l, n);
            match kind {
                Step2Kind::Qp3 => {
                    gpu_qp3_truncated(gpu0, Phase::Qrcp, &b_dev, k)?;
                }
                Step2Kind::Tournament => {
                    gpu_tournament_qrcp(gpu0, Phase::Qrcp, &b_dev, k)?;
                }
            }
            if n > k {
                gpu0.charge(Phase::Qrcp, gpu0.cost().trsm(k, n - k));
            }
        }
        // Broadcast the pivot list (tiny) to all nodes.
        self.cluster
            .broadcast_host(Phase::Comms, &Mat::zeros(1, k.max(1)));
        Ok(())
    }

    fn tsqr(&mut self, k: usize, _reorth: bool) -> Result<()> {
        // Distributed tall-skinny CholQR of A·P₁:ₖ: gather, local SYRKs,
        // the two-level Gram reduction, replicated Cholesky and local
        // TRSMs. The triangular finish stays fused in the per-GPU TRSMs.
        let nodes = self.cluster.nodes();
        let mut node_gs = Vec::with_capacity(nodes);
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            let mut g_parts = Vec::with_capacity(parts.len());
            for (ap, &gi) in parts.iter().zip(&self.slots[ni]) {
                let gpu = node.gpu_mut(gi);
                gpu.charge(Phase::Qr, gpu.cost().blas1(ap.rows() * k, 2.0)); // gather
                let x = gpu.resident_shape(ap.rows(), k);
                let mut g = gpu.alloc(k, k);
                gpu.syrk_full(Phase::Qr, 1.0, &x, Trans::Yes, 0.0, &mut g)?;
                g_parts.push(g);
            }
            node_gs.push(node.reduce_to_host(Phase::Comms, &g_parts)?);
        }
        self.cluster.allreduce_host(Phase::Comms, &node_gs)?;
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            {
                let cost = node.gpu(0).cost().clone();
                let secs = cost.host_cholesky(k);
                for g in node.alive_indices() {
                    node.gpu_mut(g).charge_raw(Phase::Qr, secs);
                }
            }
            node.broadcast(Phase::Comms, &Mat::zeros(k, k));
            for (ap, &gi) in parts.iter().zip(&self.slots[ni]) {
                let gpu = node.gpu_mut(gi);
                gpu.charge(Phase::Qr, gpu.cost().trsm(k, ap.rows()));
            }
        }
        self.cluster.barrier();
        Ok(())
    }

    fn adaptive_update_pivot(&mut self, l_rows: usize, n_trail: usize, k_b: usize) -> Result<()> {
        if n_trail == 0 || k_b == 0 {
            return Ok(());
        }
        // The sample panel is host-replicated on node 0 after the sample
        // allreduce: the trailing-sample update (QR of the lead block
        // plus two projection gemms) and the truncated QP3 run there,
        // and the pivot order crosses the interconnect and then each
        // node's PCIe.
        let k_done = self.n - n_trail;
        {
            let node0 = self.cluster.node_mut(0);
            let cost = node0.gpu(0).cost().clone();
            let secs = cost.host_flops(4.0 * (l_rows * k_done) as f64 * k_done as f64)
                + cost.host_flops(4.0 * (l_rows * k_done) as f64 * n_trail as f64)
                + cost.host_flops(4.0 * (l_rows * k_b) as f64 * n_trail as f64);
            for g in node0.alive_indices() {
                node0.gpu_mut(g).charge_raw(Phase::Qrcp, secs);
            }
        }
        self.cluster
            .broadcast_host(Phase::Comms, &Mat::zeros(1, n_trail));
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node_mut(ni);
            node.broadcast(Phase::Comms, &Mat::zeros(1, n_trail));
        }
        Ok(())
    }

    fn adaptive_update_panel(&mut self, k_b: usize, k_done: usize) -> Result<()> {
        if k_b == 0 {
            return Ok(());
        }
        // Mirror of `tsqr` at panel width: gather the k_b new pivot
        // columns per GPU, project against the accepted panels, and run
        // one two-level reduction of the stacked coefficient + Gram block
        // ((k_done + k_b) × k_b per GPU), then the replicated Cholesky,
        // intra-node broadcast and local TRSMs.
        let nodes = self.cluster.nodes();
        let mut node_gs = Vec::with_capacity(nodes);
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            let mut g_parts = Vec::with_capacity(parts.len());
            for (ap, &gi) in parts.iter().zip(&self.slots[ni]) {
                let gpu = node.gpu_mut(gi);
                gpu.charge(Phase::Qr, gpu.cost().blas1(ap.rows() * k_b, 2.0)); // gather
                if k_done > 0 {
                    // Two projection passes ("twice is enough").
                    for _ in 0..2 {
                        gpu.charge(Phase::Qr, gpu.cost().gemm(k_done, k_b, ap.rows()));
                        gpu.charge(Phase::Qr, gpu.cost().gemm(ap.rows(), k_b, k_done));
                    }
                }
                // GEMM-formed Gram: the SYRK tile shape is too small at
                // panel widths to keep the device busy.
                gpu.charge(Phase::Qr, gpu.cost().gemm(k_b, k_b, ap.rows()));
                g_parts.push(gpu.alloc(k_done + k_b, k_b));
            }
            node_gs.push(node.reduce_to_host(Phase::Comms, &g_parts)?);
        }
        self.cluster.allreduce_host(Phase::Comms, &node_gs)?;
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            {
                let cost = node.gpu(0).cost().clone();
                let secs = cost.host_cholesky(k_b);
                for g in node.alive_indices() {
                    node.gpu_mut(g).charge_raw(Phase::Qr, secs);
                }
            }
            node.broadcast(Phase::Comms, &Mat::zeros(k_b, k_b));
            for (ap, &gi) in parts.iter().zip(&self.slots[ni]) {
                let gpu = node.gpu_mut(gi);
                gpu.charge(Phase::Qr, gpu.cost().trsm(k_b, ap.rows()));
            }
        }
        self.cluster.barrier();
        Ok(())
    }

    fn adaptive_update_trailing(&mut self, k_b: usize, n_trail: usize) -> Result<()> {
        if k_b == 0 || n_trail <= k_b {
            return Ok(());
        }
        // Exact trailing coupling Q_newᵀ·A_rest: each GPU's row block
        // contributes a k_b × n_rest partial product, assembled by one
        // two-level reduction (intra-node, then across the interconnect).
        let n_rest = n_trail - k_b;
        let mut node_ts = Vec::with_capacity(self.cluster.nodes());
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            let mut t_parts = Vec::with_capacity(parts.len());
            for (ap, &gi) in parts.iter().zip(&self.slots[ni]) {
                let gpu = node.gpu_mut(gi);
                gpu.charge(Phase::Qr, gpu.cost().blas1(ap.rows() * n_rest, 2.0)); // gather
                gpu.charge(Phase::Qr, gpu.cost().gemm(k_b, n_rest, ap.rows()));
                t_parts.push(gpu.alloc(k_b, n_rest));
            }
            node_ts.push(node.reduce_to_host(Phase::Comms, &t_parts)?);
        }
        self.cluster.allreduce_host(Phase::Comms, &node_ts)?;
        self.cluster.barrier();
        Ok(())
    }

    fn charge_fallback(
        &mut self,
        rows: usize,
        cols: usize,
        rung: super::Rung,
        _reorth: bool,
    ) -> Result<()> {
        // The multi-GPU rescue shapes, one level up: the Gram/shift work
        // is host-replicated per node and stalls every survivor equally
        // (exempt from straggler scaling, like the reduced host QR).
        let s = rows.min(cols);
        let long = rows.max(cols);
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node_mut(ni);
            let cost = node.gpu(0).cost().clone();
            let secs = match rung {
                super::Rung::CholQr => return Ok(()),
                super::Rung::ShiftedCholQr2 => {
                    cost.blas1(s, 2.0)
                        + 3.0 * (cost.syrk(s, long) + cost.host_cholesky(s) + cost.trsm(s, long))
                }
                super::Rung::Householder => {
                    cost.transfer(8 * (rows * cols) as u64)
                        + cost.host_flops(4.0 * long as f64 * s as f64 * s as f64)
                }
            };
            for g in node.alive_indices() {
                node.gpu_mut(g).charge_raw(Phase::OrthIter, secs);
            }
        }
        Ok(())
    }

    fn charge_health_check(&mut self, rows: usize, cols: usize) -> Result<()> {
        // The scanned block is host-replicated between stages; one
        // streaming reduction per node, stalling its survivors.
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node_mut(ni);
            let secs = node.gpu(0).cost().host_flops((rows * cols) as f64);
            for g in node.alive_indices() {
                node.gpu_mut(g).charge_raw(Phase::Other, secs);
            }
        }
        Ok(())
    }

    fn charge_checksum_encode(&mut self, m: usize, n: usize, k: usize) -> Result<()> {
        // Each GPU encodes the references of its share of the inner
        // dimension alongside its partial product; the reference digests
        // then cross the interconnect so every node verifies against the
        // same pair.
        let total: usize = self.slots.iter().map(Vec::len).sum();
        let share = k.div_ceil(total.max(1)).max(1);
        for (ni, slots) in self.slots.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            for &gi in slots {
                let gpu = node.gpu_mut(gi);
                gpu.charge_kernel(
                    Phase::Integrity,
                    "abft",
                    [m, n, share],
                    rlra_blas::checksum::encode_flops(m, n, share) as f64,
                    8.0 * (m * share + share * n + m + n) as f64,
                    gpu.cost().blas1_reduce(m * share)
                        + gpu.cost().blas1_reduce(share * n)
                        + gpu.cost().gemv(share, n)
                        + gpu.cost().gemv(m, share),
                );
            }
        }
        self.cluster
            .broadcast_host(Phase::Comms, &Mat::zeros(1, (m + n).max(1)));
        Ok(())
    }

    fn verify_integrity(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        outcome: IntegrityOutcome,
    ) -> Result<()> {
        // Each GPU sweeps the column/row digests of its partial panel;
        // the digest vectors ride the same two-level reduction as the
        // panel, and the replicated host compare stalls every survivor.
        let mut node_ds = Vec::with_capacity(self.cluster.nodes());
        for (ni, slots) in self.slots.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            let mut d_parts = Vec::with_capacity(slots.len());
            for &gi in slots {
                let gpu = node.gpu_mut(gi);
                gpu.charge_kernel(
                    Phase::Integrity,
                    "abft",
                    [m, n, 0],
                    rlra_blas::checksum::verify_flops(m, n) as f64,
                    8.0 * (m * n) as f64,
                    gpu.cost().blas1_reduce(m * n) * 2.0,
                );
                d_parts.push(gpu.alloc(1, (m + n).max(1)));
            }
            node_ds.push(node.reduce_to_host(Phase::Comms, &d_parts)?);
        }
        self.cluster.allreduce_host(Phase::Comms, &node_ds)?;
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node_mut(ni);
            let secs = node.gpu(0).cost().host_flops((m + n) as f64);
            for g in node.alive_indices() {
                node.gpu_mut(g).charge_raw(Phase::Integrity, secs);
            }
        }
        match outcome {
            IntegrityOutcome::Clean => {}
            IntegrityOutcome::Corrected => {
                // The repair runs on node 0's host-replicated panel (one
                // length-k inner product, a single-entry write-back, a
                // re-verify sweep); the corrected entry then crosses the
                // interconnect so every replica agrees.
                let node0 = self.cluster.node_mut(0);
                let cost = node0.gpu(0).cost().clone();
                let secs = cost.host_flops(2.0 * k.max(1) as f64)
                    + cost.host_flops(rlra_blas::checksum::verify_flops(m, n) as f64);
                for g in node0.alive_indices() {
                    node0.gpu_mut(g).charge_raw(Phase::Integrity, secs);
                }
                self.cluster.broadcast_host(Phase::Comms, &Mat::zeros(1, 1));
            }
            IntegrityOutcome::Rerun => {
                // Re-run the distributed product (k > 0) or the CholQR
                // pass that produced the block (k == 0), then the
                // replicated host re-verify.
                let total: usize = self.slots.iter().map(Vec::len).sum();
                let share = k.div_ceil(total.max(1)).max(1);
                for (ni, slots) in self.slots.iter().enumerate() {
                    let node = self.cluster.node_mut(ni);
                    for &gi in slots {
                        let gpu = node.gpu_mut(gi);
                        let redo = if k > 0 {
                            gpu.cost().gemm(m, n, share)
                        } else {
                            gpu.cost().syrk(m, n)
                                + gpu.cost().host_cholesky(m)
                                + gpu.cost().trsm(m, n)
                        };
                        gpu.charge(Phase::Integrity, redo);
                    }
                }
                for ni in 0..self.cluster.nodes() {
                    let node = self.cluster.node_mut(ni);
                    let secs = node
                        .gpu(0)
                        .cost()
                        .host_flops(rlra_blas::checksum::verify_flops(m, n) as f64);
                    for g in node.alive_indices() {
                        node.gpu_mut(g).charge_raw(Phase::Integrity, secs);
                    }
                }
            }
        }
        Ok(())
    }

    fn take_sdc_events(&mut self) -> Vec<rlra_gpu::SdcEvent> {
        self.cluster.drain_sdc_events()
    }

    fn verify_probe(&mut self, probes: usize, k: usize) -> Result<()> {
        // Probe GEMMs against each GPU's row slice of A, the partial
        // products reduced per node and allreduced over the interconnect,
        // then the thin host products against Q and R replicated per
        // node.
        let n = self.n;
        let mut node_ps = Vec::with_capacity(self.cluster.nodes());
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            let mut p_parts = Vec::with_capacity(parts.len());
            for (ap, &gi) in parts.iter().zip(&self.slots[ni]) {
                let gpu = node.gpu_mut(gi);
                gpu.charge(Phase::Other, gpu.cost().gemm(probes, n, ap.rows()));
                p_parts.push(gpu.alloc(probes, n));
            }
            node_ps.push(node.reduce_to_host(Phase::Comms, &p_parts)?);
        }
        self.cluster.allreduce_host(Phase::Comms, &node_ps)?;
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node_mut(ni);
            let secs = node
                .gpu(0)
                .cost()
                .host_flops(2.0 * probes as f64 * k as f64 * (self.m + n) as f64);
            for g in node.alive_indices() {
                node.gpu_mut(g).charge_raw(Phase::Other, secs);
            }
        }
        self.cluster.barrier();
        Ok(())
    }

    fn elapsed(&self) -> f64 {
        self.cluster.time() - self.t0
    }

    fn tracer(&self) -> Option<Tracer> {
        self.cluster.tracer()
    }

    fn charge_recovery(&mut self, secs: f64) {
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node_mut(ni);
            for gi in node.alive_indices() {
                node.gpu_mut(gi).charge_raw(Phase::Recovery, secs);
            }
        }
    }

    fn charge_speculation(&mut self, device: usize, secs: f64) {
        // The cancelled racer's in-flight work lands on the device that
        // ran it (global numbering), raw.
        if let Some((ni, gi)) = self.cluster.locate_device(device) {
            self.cluster
                .node_mut(ni)
                .gpu_mut(gi)
                .charge_raw(Phase::Recovery, secs);
        }
    }

    fn device_load(&self) -> Vec<(usize, f64, u64)> {
        // Every schedulable device in the cluster, globally numbered.
        let mut out = Vec::new();
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node(ni);
            for gi in node.alive_indices() {
                let m = node.gpu(gi).device_metrics();
                out.push((m.device, m.busy_seconds, m.launches));
            }
        }
        out
    }

    fn checkpoint_hook(&mut self, bytes: u64) -> Result<()> {
        // Every node drains at the global barrier; each serializes its
        // snapshot shard through its host (PCIe gather + serialization
        // pass), then the tiny job manifest crosses the interconnect.
        self.cluster.barrier();
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node_mut(ni);
            let cost = node.gpu(0).cost().clone();
            let secs = cost.transfer(bytes) + cost.host_flops(bytes as f64);
            for g in node.alive_indices() {
                node.gpu_mut(g).charge_raw(Phase::Other, secs);
            }
        }
        self.cluster.broadcast_host(Phase::Comms, &Mat::zeros(1, 8));
        Ok(())
    }

    fn export_account(&mut self) -> Result<Vec<u8>> {
        let mut w = crate::checkpoint::SnapWriter::new();
        crate::checkpoint::write_cluster_account(&mut w, &self.cluster.export_account());
        Ok(w.into_bytes())
    }

    fn restore_account(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = crate::checkpoint::SnapReader::new(bytes);
        let acc = crate::checkpoint::read_cluster_account(&mut r)?;
        if r.remaining() != 0 {
            return Err(MatrixError::CheckpointCorrupt {
                detail: "trailing bytes in cluster account blob",
            });
        }
        self.cluster.restore_account(&acc)?;
        // This backend reports diffs against begin()-time baselines.
        // Durable cluster jobs start on a freshly reset cluster (the
        // durable-entry contract), so the original baselines were zero:
        // reset them here so the resumed diff spans the whole job.
        self.t0 = 0.0;
        self.launches0 = 0;
        self.syncs0 = 0;
        self.faults0 = 0;
        self.sdc0 = 0;
        self.recovery0 = 0.0;
        self.metrics0 = Metrics::default();
        // The snapshot may carry dead or quarantined devices this
        // cluster did not know about: re-derive the distribution.
        if self.m > 0 {
            let node_chunks = self.cluster.node_row_chunks(self.m);
            self.a_parts = Vec::with_capacity(node_chunks.len());
            self.slots = Vec::with_capacity(node_chunks.len());
            self.node_rows = node_chunks.iter().map(|&(_, len)| len).collect();
            let n = self.n;
            for (ni, &(_, len)) in node_chunks.iter().enumerate() {
                let node = self.cluster.node_mut(ni);
                self.a_parts.push(node.distribute_rows_shape(len, n));
                self.slots.push(node.alive_indices());
            }
        }
        Ok(())
    }

    fn recover_device_loss(&mut self, device: usize, at: u64) -> Result<()> {
        let Some((ni, gi)) = self.cluster.locate_device(device) else {
            return Err(MatrixError::Internal {
                op: "ClusterExec::recover_device_loss",
                invariant: "faulted device index within the cluster",
            });
        };
        {
            let node = self.cluster.node_mut(ni);
            if !node.gpu(gi).is_dead() {
                node.gpu_mut(gi).mark_dead(device, at);
            }
        }
        let survivors = self.cluster.node(ni).alive_indices();
        if survivors.is_empty() {
            return Err(MatrixError::Unsupported {
                backend: self.name(),
                feature: format!("device-loss recovery: node {ni} lost all its GPUs"),
            });
        }
        // The node's block of A is redistributed over its survivors; only
        // the dead GPU's rows move, its Ω rows are re-drawn, and the
        // re-drawn sketch block is re-orthogonalized against the accepted
        // basis — all charged to the Recovery phase on the survivors.
        let lost_rows = self.slots[ni].iter().position(|&g| g == gi).map_or_else(
            || self.node_rows[ni] / self.cluster.node(ni).ng().max(1),
            |j| self.a_parts[ni][j].rows(),
        );
        let l = self.l.max(1);
        let n = self.n;
        let ns = survivors.len();
        {
            let node = self.cluster.node_mut(ni);
            let cost = node.gpu(survivors[0]).cost().clone();
            let reupload = cost.transfer(8 * (lost_rows * n) as u64);
            let share = lost_rows.div_ceil(ns);
            let redraw = cost.curand(l * share) + cost.gemm(l, n, share);
            let reorth = cost.gemm(l, n, l)
                + cost.gemm(l, l, n)
                + cost.syrk(l, n)
                + cost.host_cholesky(l)
                + cost.trsm(l, n);
            for &g in &survivors {
                node.gpu_mut(g)
                    .charge_raw(Phase::Recovery, reupload + redraw + reorth);
            }
            self.a_parts[ni] = node.distribute_rows_shape(self.node_rows[ni], n);
            self.slots[ni] = node.alive_indices();
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<ExecReport> {
        let (launches, syncs) = self.counter_sums();
        let report = ExecReport {
            seconds: self.cluster.time() - self.t0,
            timeline: self.cluster.breakdown(),
            launches: launches - self.launches0,
            syncs: syncs - self.syncs0,
            comms: self.cluster.inter_node_comms(),
            devices: self.cluster.total_gpus(),
            faults_injected: self.cluster.faults_injected() - self.faults0,
            retries: 0,
            recovery_seconds: self.cluster.breakdown().get(Phase::Recovery) - self.recovery0,
            devices_lost: 0,
            breakdowns: 0,
            fallbacks: 0,
            ladder_histogram: [0; 3],
            speculations: 0,
            sdc_injected: self.cluster.sdc_injected() - self.sdc0,
            sdc_detected: 0,
            sdc_corrected: 0,
            sdc_rollbacks: 0,
            metrics: self.cluster.metrics().minus(&self.metrics0),
        };
        self.a_parts.clear();
        self.slots.clear();
        self.node_rows.clear();
        Ok(report)
    }
}
