//! The distributed-memory backend — the setting of the paper's closing
//! prediction (§11: the benefits of random sampling "increase on a
//! computer with higher communication cost, like a distributed-memory
//! computer").
//!
//! The layout extends §4's single-node scheme one level up: `A` is split
//! block-row-wise across nodes (proportionally to their GPU counts) and
//! again across each node's GPUs; the short-wide reductions run
//! PCIe-locally first and then as α-β tree collectives over the
//! interconnect.
//!
//! This backend is timing-only ([`ExecMode::DryRun`] clusters): the
//! distributed numerics are already validated at the multi-GPU level,
//! and the cluster study is about communication shape at scale. It
//! therefore charges the caller's cluster directly rather than
//! simulating internally.

use super::{ExecReport, Executor};
use crate::config::{SamplerConfig, SamplingKind, Step2Kind};
use rlra_blas::Trans;
use rlra_fft::SrftScheme;
use rlra_gpu::algos::{gpu_qp3_truncated, gpu_tournament_qrcp};
use rlra_gpu::{Cluster, DMat, ExecMode, Phase};
use rlra_matrix::{Mat, MatrixError, Result};

/// Distributed-memory (cluster) execution backend. Timing-only.
pub struct ClusterExec<'a> {
    cluster: &'a mut Cluster,
    a_parts: Vec<Vec<DMat>>,
    t0: f64,
    launches0: u64,
    syncs0: u64,
    m: usize,
    n: usize,
}

impl std::fmt::Debug for ClusterExec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterExec")
            .field("m", &self.m)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<'a> ClusterExec<'a> {
    /// Creates the backend for the given (caller-owned) cluster.
    pub fn new(cluster: &'a mut Cluster) -> Self {
        ClusterExec {
            cluster,
            a_parts: Vec::new(),
            t0: 0.0,
            launches0: 0,
            syncs0: 0,
            m: 0,
            n: 0,
        }
    }

    fn counter_sums(&self) -> (u64, u64) {
        let (mut launches, mut syncs) = (0u64, 0u64);
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node(ni);
            for gi in 0..node.ng() {
                launches += node.gpu(gi).launches;
                syncs += node.gpu(gi).syncs;
            }
        }
        (launches, syncs)
    }

    /// Local GEMM of a distributed `src` against every `A` block, node
    /// reduction, then the inter-node allreduce — the shape of both the
    /// sampling step and the `B = C·A` update.
    fn reduce_b(
        &mut self,
        l: usize,
        src: &mut dyn FnMut(&mut rlra_gpu::Gpu, usize) -> DMat,
        phase: Phase,
    ) -> Result<()> {
        let nodes = self.cluster.nodes();
        let n = self.n;
        let mut node_bs = Vec::with_capacity(nodes);
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            let mut b_parts = Vec::with_capacity(node.ng());
            for (gi, ap) in parts.iter().enumerate() {
                let gpu = node.gpu_mut(gi);
                let s = src(gpu, ap.rows());
                let mut bi = gpu.alloc(l, n);
                gpu.gemm(phase, 1.0, &s, Trans::No, ap, Trans::No, 0.0, &mut bi)?;
                b_parts.push(bi);
            }
            node_bs.push(node.reduce_to_host(Phase::Comms, &b_parts)?);
        }
        self.cluster.allreduce_host(Phase::Comms, &node_bs)?;
        Ok(())
    }
}

impl Executor for ClusterExec<'_> {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn computes(&self) -> bool {
        false
    }

    fn supports(&self, cfg: &SamplerConfig, _has_values: bool) -> Result<()> {
        if !matches!(cfg.sampling, SamplingKind::Gaussian) {
            return Err(MatrixError::Unsupported {
                backend: self.name(),
                feature: "FFT (SRFT) sampling — the cluster study uses Gaussian sampling only"
                    .into(),
            });
        }
        if self.cluster.mode() != ExecMode::DryRun {
            return Err(MatrixError::Unsupported {
                backend: self.name(),
                feature: "compute mode — cluster runs are timing studies; use ExecMode::DryRun"
                    .into(),
            });
        }
        Ok(())
    }

    fn begin(&mut self, m: usize, n: usize) {
        self.m = m;
        self.n = n;
        self.t0 = self.cluster.time();
        let (launches0, syncs0) = self.counter_sums();
        self.launches0 = launches0;
        self.syncs0 = syncs0;
        let node_chunks = self.cluster.node_row_chunks(m);
        self.a_parts = Vec::with_capacity(node_chunks.len());
        for (ni, &(_, len)) in node_chunks.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            self.a_parts.push(node.distribute_rows_shape(len, n));
        }
    }

    fn gaussian_sample(&mut self, l: usize) -> Result<()> {
        // Ω chunks drawn per GPU (independent cuRAND streams).
        let mut draw = |gpu: &mut rlra_gpu::Gpu, rows: usize| -> DMat {
            gpu.charge(Phase::Prng, gpu.cost().curand(l * rows));
            gpu.resident_shape(l, rows)
        };
        self.reduce_b(l, &mut draw, Phase::Sampling)
    }

    fn srft_sample_rows(&mut self, _l: usize, _scheme: SrftScheme) -> Result<()> {
        Err(MatrixError::Unsupported {
            backend: self.name(),
            feature: "FFT (SRFT) sampling".into(),
        })
    }

    fn orth_b(&mut self, l: usize, reorth: bool) -> Result<()> {
        // Host QR of B on node 0, broadcast over the interconnect, then
        // PCIe-broadcast within each node.
        let n = self.n;
        {
            let node0 = self.cluster.node_mut(0);
            let cost = node0.gpu(0).cost().clone();
            let passes = if reorth { 2.0 } else { 1.0 };
            let secs = cost.host_flops(passes * 2.0 * (l * l * n) as f64) + cost.host_cholesky(l);
            for g in 0..node0.ng() {
                node0.gpu_mut(g).charge(Phase::OrthIter, secs);
            }
        }
        self.cluster.broadcast_host(Phase::Comms, &Mat::zeros(l, n));
        for ni in 0..self.cluster.nodes() {
            let node = self.cluster.node_mut(ni);
            node.broadcast(Phase::Comms, &Mat::zeros(l, n));
        }
        Ok(())
    }

    fn gemm_to_c(&mut self, l: usize) -> Result<()> {
        // C(i) = B·A(i)ᵀ on every GPU's row slice.
        let n = self.n;
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            for (gi, ap) in parts.iter().enumerate() {
                let gpu = node.gpu_mut(gi);
                let b_local = gpu.resident_shape(l, n);
                let mut ci = gpu.alloc(l, ap.rows());
                gpu.gemm(
                    Phase::GemmIter,
                    1.0,
                    &b_local,
                    Trans::No,
                    ap,
                    Trans::Yes,
                    0.0,
                    &mut ci,
                )?;
            }
        }
        Ok(())
    }

    fn orth_c(&mut self, l: usize, _reorth: bool) -> Result<()> {
        // Distributed CholQR of C with a global Gram allreduce: local
        // SYRKs, node reductions, the inter-node allreduce, then the
        // replicated host Cholesky, intra-node broadcast of R̄ and the
        // local TRSMs.
        let nodes = self.cluster.nodes();
        let mut node_gs = Vec::with_capacity(nodes);
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            let mut g_parts = Vec::with_capacity(node.ng());
            for (gi, ap) in parts.iter().enumerate() {
                let gpu = node.gpu_mut(gi);
                let ci = gpu.resident_shape(l, ap.rows());
                let mut gi_mat = gpu.alloc(l, l);
                gpu.syrk_full(Phase::OrthIter, 1.0, &ci, Trans::No, 0.0, &mut gi_mat)?;
                g_parts.push(gi_mat);
            }
            node_gs.push(node.reduce_to_host(Phase::Comms, &g_parts)?);
        }
        self.cluster.allreduce_host(Phase::Comms, &node_gs)?;
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            {
                let cost = node.gpu(0).cost().clone();
                let secs = cost.host_cholesky(l);
                for g in 0..node.ng() {
                    node.gpu_mut(g).charge(Phase::OrthIter, secs);
                }
            }
            node.broadcast(Phase::Comms, &Mat::zeros(l, l));
            for (gi, ap) in parts.iter().enumerate() {
                let gpu = node.gpu_mut(gi);
                gpu.charge(Phase::OrthIter, gpu.cost().trsm(l, ap.rows()));
            }
        }
        Ok(())
    }

    fn gemm_to_b(&mut self, l: usize) -> Result<()> {
        // B(i) = C(i)·A(i), node reduce + inter-node allreduce.
        let mut noop =
            |gpu: &mut rlra_gpu::Gpu, rows: usize| -> DMat { gpu.resident_shape(l, rows) };
        self.reduce_b(l, &mut noop, Phase::GemmIter)
    }

    fn step2_pivot(&mut self, kind: Step2Kind, l: usize, k: usize) -> Result<()> {
        let n = self.n;
        {
            let node0 = self.cluster.node_mut(0);
            let gpu0 = node0.gpu_mut(0);
            let b_dev = gpu0.resident_shape(l, n);
            match kind {
                Step2Kind::Qp3 => {
                    gpu_qp3_truncated(gpu0, Phase::Qrcp, &b_dev, k)?;
                }
                Step2Kind::Tournament => {
                    gpu_tournament_qrcp(gpu0, Phase::Qrcp, &b_dev, k)?;
                }
            }
            if n > k {
                gpu0.charge(Phase::Qrcp, gpu0.cost().trsm(k, n - k));
            }
        }
        // Broadcast the pivot list (tiny) to all nodes.
        self.cluster
            .broadcast_host(Phase::Comms, &Mat::zeros(1, k.max(1)));
        Ok(())
    }

    fn tsqr(&mut self, k: usize, _reorth: bool) -> Result<()> {
        // Distributed tall-skinny CholQR of A·P₁:ₖ: gather, local SYRKs,
        // the two-level Gram reduction, replicated Cholesky and local
        // TRSMs. The triangular finish stays fused in the per-GPU TRSMs.
        let nodes = self.cluster.nodes();
        let mut node_gs = Vec::with_capacity(nodes);
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            let mut g_parts = Vec::with_capacity(node.ng());
            for (gi, ap) in parts.iter().enumerate() {
                let gpu = node.gpu_mut(gi);
                gpu.charge(Phase::Qr, gpu.cost().blas1(ap.rows() * k, 2.0)); // gather
                let x = gpu.resident_shape(ap.rows(), k);
                let mut g = gpu.alloc(k, k);
                gpu.syrk_full(Phase::Qr, 1.0, &x, Trans::Yes, 0.0, &mut g)?;
                g_parts.push(g);
            }
            node_gs.push(node.reduce_to_host(Phase::Comms, &g_parts)?);
        }
        self.cluster.allreduce_host(Phase::Comms, &node_gs)?;
        for (ni, parts) in self.a_parts.iter().enumerate() {
            let node = self.cluster.node_mut(ni);
            {
                let cost = node.gpu(0).cost().clone();
                let secs = cost.host_cholesky(k);
                for g in 0..node.ng() {
                    node.gpu_mut(g).charge(Phase::Qr, secs);
                }
            }
            node.broadcast(Phase::Comms, &Mat::zeros(k, k));
            for (gi, ap) in parts.iter().enumerate() {
                let gpu = node.gpu_mut(gi);
                gpu.charge(Phase::Qr, gpu.cost().trsm(k, ap.rows()));
            }
        }
        self.cluster.barrier();
        Ok(())
    }

    fn finish(&mut self) -> ExecReport {
        let (launches, syncs) = self.counter_sums();
        let report = ExecReport {
            seconds: self.cluster.time() - self.t0,
            timeline: self.cluster.breakdown(),
            launches: launches - self.launches0,
            syncs: syncs - self.syncs0,
            comms: self.cluster.inter_node_comms(),
            devices: self.cluster.total_gpus(),
        };
        self.a_parts.clear();
        report
    }
}
