//! The fixed-rank sampling pipeline (paper Figure 2b), written once
//! against the [`Executor`] trait.
//!
//! Numerics run here on host matrices — identically on every backend —
//! while the executor hooks account for what each step costs on the
//! backend's hardware. See the [module docs](super) for the contract.

use super::{ExecReport, Executor, Input};
use crate::config::{SamplerConfig, SamplingKind};
use crate::power::power_iterate;
use crate::result::LowRankApprox;
use rand::Rng;
use rlra_blas::Trans;
use rlra_fft::SrftOperator;
use rlra_matrix::{gaussian_mat, Mat, MatrixError, Result};
use rlra_trace::TraceEvent;

/// Advances `rng` by exactly the draws of an `count`-variate standard
/// normal fill, without materializing the buffer. Keeps dry runs
/// seed-compatible with compute runs (and with each other across
/// backends) at sizes too large to allocate.
pub(crate) fn burn_standard_normal(rng: &mut impl Rng, count: usize) {
    // Chunks must stay even: the polar method consumes the stream in
    // pairs, and only the final (possibly odd) element may draw singly.
    const CHUNK: usize = 1 << 16;
    let mut buf = vec![0.0f64; CHUNK.min(count)];
    let mut left = count;
    while left >= CHUNK {
        rlra_matrix::randn::fill_standard_normal(rng, &mut buf);
        left -= CHUNK;
    }
    if left > 0 {
        rlra_matrix::randn::fill_standard_normal(rng, &mut buf[..left]);
    }
}

/// Runs one stage hook under a named span on the backend's tracer (when
/// one is installed) — the stage track of the Chrome trace. The span
/// brackets the simulated time the hook charged, faults and retries
/// included.
pub(crate) fn staged<E: Executor>(
    exec: &mut E,
    name: &'static str,
    f: impl FnOnce(&mut E) -> Result<()>,
) -> Result<()> {
    let start = exec.elapsed();
    let result = f(exec);
    if let Some(t) = exec.tracer() {
        t.emit(TraceEvent::Stage {
            name,
            start,
            end: exec.elapsed(),
        });
    }
    result
}

/// The host operand of a compute-mode run. `run_fixed_rank` rejects
/// shape-only inputs in compute mode at entry, so absence here is an
/// internal invariant violation, not a user error.
fn host_values<'a>(a: &Input<'a>) -> Result<&'a Mat> {
    a.values().ok_or(MatrixError::Internal {
        op: "run_fixed_rank",
        invariant: "compute mode requires a values input (checked at entry)",
    })
}

/// The sampled matrix `B`, populated by Step 1a on computing backends.
fn sampled(b_host: Option<Mat>) -> Result<Mat> {
    b_host.ok_or(MatrixError::Internal {
        op: "run_fixed_rank",
        invariant: "Step 1a populates B before later stages read it",
    })
}

/// Borrowing flavor of [`sampled`].
fn sampled_ref(b_host: &Option<Mat>) -> Result<&Mat> {
    b_host.as_ref().ok_or(MatrixError::Internal {
        op: "run_fixed_rank",
        invariant: "Step 1a populates B before later stages read it",
    })
}

/// Runs the fixed-rank random sampling algorithm (Figure 2b) on the
/// given execution backend.
///
/// Returns the approximation (on computing backends) and the unified
/// timing report. The RNG stream is consumed identically on every
/// backend — `ℓ·m` standard-normal draws for Gaussian sampling, the
/// SRFT operator draws for FFT sampling — so a dry run and a compute run
/// of the same experiment stay seed-compatible.
///
/// # Errors
///
/// Returns configuration errors from [`SamplerConfig::validate`],
/// [`rlra_matrix::MatrixError::Unsupported`] for features the backend
/// rejects, and propagates kernel failures.
pub fn run_fixed_rank<E: Executor>(
    exec: &mut E,
    a: Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<(Option<LowRankApprox>, ExecReport)> {
    let (m, n) = a.shape();
    cfg.validate(m, n)?;
    exec.supports(cfg, a.values().is_some())?;
    let compute = exec.computes();
    if compute && a.values().is_none() {
        return Err(rlra_matrix::MatrixError::Unsupported {
            backend: exec.name(),
            feature: "shape-only input in compute mode".into(),
        });
    }
    let l = cfg.l();
    let k = cfg.k;
    exec.begin(m, n);

    // --- Step 1a: sample B = Ω·A -------------------------------------------
    let mut b_host: Option<Mat> = None;
    match cfg.sampling {
        SamplingKind::Gaussian => {
            staged(exec, "gaussian_sample", |e| e.gaussian_sample(l))?;
            if compute {
                let am = host_values(&a)?;
                let omega = gaussian_mat(l, m, rng);
                let mut b = Mat::zeros(l, n);
                rlra_blas::gemm(
                    1.0,
                    omega.as_ref(),
                    Trans::No,
                    am.as_ref(),
                    Trans::No,
                    0.0,
                    b.as_mut(),
                )?;
                b_host = Some(b);
            } else {
                burn_standard_normal(rng, l * m);
            }
        }
        SamplingKind::Fft(scheme) => {
            let op = SrftOperator::new(m, l, scheme, rng)?;
            staged(exec, "srft_sample_rows", |e| e.srft_sample_rows(l, scheme))?;
            if compute {
                let am = host_values(&a)?;
                b_host = Some(op.sample_rows(am)?);
            }
        }
    }

    // --- Step 1b: power iterations ------------------------------------------
    for _ in 0..cfg.q {
        staged(exec, "orth_b", |e| e.orth_b(l, cfg.reorth))?;
        staged(exec, "gemm_to_c", |e| e.gemm_to_c(l))?;
        staged(exec, "orth_c", |e| e.orth_c(l, cfg.reorth))?;
        staged(exec, "gemm_to_b", |e| e.gemm_to_b(l))?;
    }
    if compute {
        let am = host_values(&a)?;
        let empty_b = Mat::zeros(0, n);
        let empty_c = Mat::zeros(0, m);
        let (b, _c) = power_iterate(
            am,
            &empty_b,
            &empty_c,
            sampled(b_host.take())?,
            cfg.q,
            cfg.reorth,
        )?;
        b_host = Some(b);
    }

    // --- Steps 2 and 3 --------------------------------------------------------
    staged(exec, "step2_pivot", |e| e.step2_pivot(cfg.step2, l, k))?;
    staged(exec, "tsqr", |e| e.tsqr(k, cfg.reorth))?;
    let report = exec.finish()?;

    let approx = if compute {
        let am = host_values(&a)?;
        Some(crate::fixed_rank::finish_from_sampled_with(
            am,
            sampled_ref(&b_host)?,
            k,
            cfg.reorth,
            cfg.step2,
        )?)
    } else {
        None
    };
    Ok((approx, report))
}

/// Runs [`run_fixed_rank`] under a fault-recovery policy: the executor is
/// wrapped in [`super::Recovering`], which retries transient faults with
/// simulated exponential backoff and degrades the fleet on fail-stop
/// device losses. The report's `retries` / `devices_lost` /
/// `recovery_seconds` fields record what recovery cost.
///
/// Host numerics are unaffected by recovery (they run here, on the
/// host), so with the same seed the factors are identical to a
/// fault-free run.
///
/// # Errors
///
/// Everything [`run_fixed_rank`] returns, plus faults that exhaust the
/// retry budget or cannot be recovered (e.g. the last device of a
/// backend failing).
pub fn run_fixed_rank_with_recovery<E: Executor>(
    exec: E,
    policy: super::RecoveryPolicy,
    a: Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<(Option<LowRankApprox>, ExecReport)> {
    let mut wrapped = super::Recovering::new(exec, policy);
    run_fixed_rank(&mut wrapped, a, cfg, rng)
}
