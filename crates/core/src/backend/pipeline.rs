//! The fixed-rank sampling pipeline (paper Figure 2b), written once
//! against the [`Executor`] trait.
//!
//! Numerics run here on host matrices — identically on every backend —
//! while the executor hooks account for what each step costs on the
//! backend's hardware. See the [module docs](super) for the contract.

use super::{ExecReport, Executor, Input, IntegrityGuard, NumericGuard};
use crate::config::{SamplerConfig, SamplingKind};
use crate::power::power_iterate_protected;
use crate::result::LowRankApprox;
use rand::Rng;
use rlra_blas::Trans;
use rlra_fft::SrftOperator;
use rlra_matrix::{gaussian_mat, Mat, MatrixError, Result};
use rlra_trace::TraceEvent;

/// Gaussian probe rows of the verified-accuracy posterior estimate.
const VERIFY_PROBES: usize = 8;
/// Attempt budget of the verified-accuracy retry (including the first).
const VERIFY_MAX_ATTEMPTS: usize = 3;
/// Failure probability fed to the `c_ad` constant of the posterior
/// bound (paper §10).
const VERIFY_GAMMA: f64 = 0.01;

/// Advances `rng` by exactly the draws of an `count`-variate standard
/// normal fill, without materializing the buffer. Keeps dry runs
/// seed-compatible with compute runs (and with each other across
/// backends) at sizes too large to allocate.
pub(crate) fn burn_standard_normal(rng: &mut impl Rng, count: usize) {
    // Chunks must stay even: the polar method consumes the stream in
    // pairs, and only the final (possibly odd) element may draw singly.
    const CHUNK: usize = 1 << 16;
    let mut buf = vec![0.0f64; CHUNK.min(count)];
    let mut left = count;
    while left >= CHUNK {
        rlra_matrix::randn::fill_standard_normal(rng, &mut buf);
        left -= CHUNK;
    }
    if left > 0 {
        rlra_matrix::randn::fill_standard_normal(rng, &mut buf[..left]);
    }
}

/// Runs one stage hook under a named span on the backend's tracer (when
/// one is installed) — the stage track of the Chrome trace. The span
/// brackets the simulated time the hook charged, faults and retries
/// included.
pub(crate) fn staged<E: Executor>(
    exec: &mut E,
    name: &'static str,
    f: impl FnOnce(&mut E) -> Result<()>,
) -> Result<()> {
    let start = exec.elapsed();
    let result = f(exec);
    if let Some(t) = exec.tracer() {
        t.emit(TraceEvent::Stage {
            name,
            start,
            end: exec.elapsed(),
        });
    }
    result
}

/// One incremental factor-extension step of the fixed-accuracy pipeline:
/// stages the three `adaptive_update_*` cost hooks (pivot selection on
/// the accumulated trailing residual sample, gathered-panel projection +
/// CholQR, exact trailing `R` coupling), then runs the host numerics through
/// [`crate::fixed_rank::IncrementalFactors::extend`] with the panel QR on
/// the guard's ladder, and drains the guard so escalations are charged
/// and traced where they happened.
///
/// The panel width `k_b` is deterministic from the shapes (the step
/// accepts the columns backed by the previously buffered rows; the fresh
/// block `w` is only stacked in reserve as the next step's oversampling),
/// so the hooks are charged up front and the numerics run once. A
/// buffer-only step (`k_b == 0`, e.g. the very first block) charges
/// nothing — stacking the permuted rows is bookkeeping, not device work.
///
/// The accepted `Q` panel (the [`rlra_lapack::sample_panel_step`]
/// output after projection and the ladder QR) is the integrity guard's
/// `"panel"` buffer: queued corruption events land on it and, when the
/// guard is armed, its column-orthonormality is verified — a defect
/// escalates per the policy (re-materialize, else surface
/// [`rlra_matrix::MatrixError::SilentCorruption`] for the durable
/// layer's rollback).
pub(crate) fn incremental_extend<E: Executor>(
    exec: &mut E,
    factors: &mut crate::fixed_rank::IncrementalFactors,
    a: &Mat,
    w: &Mat,
    reorth: bool,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
) -> Result<()> {
    let (k_done, n_trail, k_b) = factors.step_dims();
    if k_b > 0 {
        // Pivot selection runs on the whole accumulated residual sample
        // (the downdated prior blocks plus the fresh one), so its row
        // count grows with every step — that growth is the within-block
        // oversampling.
        let l_rows = factors.sample_rows() + w.rows();
        staged(exec, "adaptive_update_pivot", |e| {
            e.adaptive_update_pivot(l_rows, n_trail, k_b)
        })?;
        staged(exec, "adaptive_update_panel", |e| {
            e.adaptive_update_panel(k_b, k_done)
        })?;
        staged(exec, "adaptive_update_trailing", |e| {
            e.adaptive_update_trailing(k_b, n_trail)
        })?;
    }
    iguard.sync(exec);
    let accepted = factors.extend(a, w, reorth, guard)?;
    guard.drain(exec)?;
    if accepted > 0 {
        // The panel is column-orthonormal, so its transpose satisfies
        // the row-norm invariant the orth verification checks; the
        // clean host copy makes the escalation re-run a bit-identical
        // re-materialization.
        let clean = factors.last_panel(accepted);
        let verified =
            iguard.orth_protected("adaptive_update_panel", "panel", || Ok(clean.transpose()));
        iguard.drain(exec)?;
        factors.set_last_panel(accepted, &verified?.transpose());
    }
    Ok(())
}

/// The host operand of a compute-mode run. `run_fixed_rank` rejects
/// shape-only inputs in compute mode at entry, so absence here is an
/// internal invariant violation, not a user error.
fn host_values<'a>(a: &Input<'a>) -> Result<&'a Mat> {
    a.values().ok_or(MatrixError::Internal {
        op: "run_fixed_rank",
        invariant: "compute mode requires a values input (checked at entry)",
    })
}

/// The sampled matrix `B`, populated by Step 1a on computing backends.
fn sampled(b_host: Option<Mat>) -> Result<Mat> {
    b_host.ok_or(MatrixError::Internal {
        op: "run_fixed_rank",
        invariant: "Step 1a populates B before later stages read it",
    })
}

/// Borrowing flavor of [`sampled`].
fn sampled_ref(b_host: &Option<Mat>) -> Result<&Mat> {
    b_host.as_ref().ok_or(MatrixError::Internal {
        op: "run_fixed_rank",
        invariant: "Step 1a populates B before later stages read it",
    })
}

/// Runs the fixed-rank random sampling algorithm (Figure 2b) on the
/// given execution backend.
///
/// Returns the approximation (on computing backends) and the unified
/// timing report. The RNG stream is consumed identically on every
/// backend — `ℓ·m` standard-normal draws for Gaussian sampling, the
/// SRFT operator draws for FFT sampling — so a dry run and a compute run
/// of the same experiment stay seed-compatible.
///
/// # Errors
///
/// Returns configuration errors from [`SamplerConfig::validate`],
/// [`rlra_matrix::MatrixError::Unsupported`] for features the backend
/// rejects, and propagates kernel failures.
pub fn run_fixed_rank<E: Executor>(
    exec: &mut E,
    a: Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<(Option<LowRankApprox>, ExecReport)> {
    let mut guard = NumericGuard::default();
    run_fixed_rank_with_guard(exec, a, cfg, rng, &mut guard)
}

/// As [`run_fixed_rank`], with an explicit [`NumericGuard`] so the
/// caller controls the escalation policy (ladder cap, shift scale,
/// health checks) and can read the breakdown counters afterwards. The
/// guard's counters are folded into the returned report.
///
/// Use a fresh guard per run: [`NumericGuard::fold_into`] folds the
/// guard's *cumulative* counters.
///
/// # Errors
///
/// Everything [`run_fixed_rank`] returns, plus
/// [`MatrixError::NumericalBreakdown`] when the ladder or a health
/// check gives up.
pub fn run_fixed_rank_with_guard<E: Executor>(
    exec: &mut E,
    a: Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
    guard: &mut NumericGuard,
) -> Result<(Option<LowRankApprox>, ExecReport)> {
    let mut iguard = IntegrityGuard::default();
    run_fixed_rank_protected(exec, a, cfg, rng, guard, &mut iguard)
}

/// As [`run_fixed_rank_with_guard`], with an explicit [`IntegrityGuard`]
/// arming the ABFT integrity layer: the sketch GEMM (buffer `"sketch"`),
/// the power-iteration GEMMs (`"power_c"` / `"power_b"`), the CholQR
/// ladder rungs (`"orth_b"` / `"orth_c"`) and the final factor panel
/// (`"tsqr"`) run checksum-guarded, injected corruption is detected and
/// corrected or escalated per the guard's policy, and the report's
/// `sdc_*` counters record what happened. With the default disarmed
/// guard this is [`run_fixed_rank_with_guard`] exactly — factors *and*
/// report stay bit-identical.
///
/// On an integrity failure the guard is drained before the error
/// returns, so the detection work that failed the run is still charged
/// and traced on the executor.
///
/// # Errors
///
/// Everything [`run_fixed_rank_with_guard`] returns, plus
/// [`MatrixError::SilentCorruption`] when corruption is detected under
/// [`super::IntegrityMode::DetectOnly`] or exhausts the correction
/// budget.
pub fn run_fixed_rank_protected<E: Executor>(
    exec: &mut E,
    a: Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
) -> Result<(Option<LowRankApprox>, ExecReport)> {
    let (m, n) = a.shape();
    cfg.validate(m, n)?;
    exec.supports(cfg, a.values().is_some())?;
    if exec.computes() && a.values().is_none() {
        return Err(MatrixError::Unsupported {
            backend: exec.name(),
            feature: "shape-only input in compute mode".into(),
        });
    }
    exec.begin(m, n);
    let attempt = attempt_fixed_rank(exec, a, cfg, rng, guard, iguard);
    guard.drain(exec)?;
    iguard.drain(exec)?;
    let approx = attempt?;
    let mut report = exec.finish()?;
    guard.fold_into(&mut report);
    iguard.fold_into(&mut report);
    Ok((approx, report))
}

/// Runs a guard health check and immediately drains the guard, so the
/// check is charged/traced even when it fails the run.
fn checked<E: Executor>(
    exec: &mut E,
    guard: &mut NumericGuard,
    stage: &'static str,
    block: &Mat,
    scale: f64,
) -> Result<()> {
    let verdict = guard.health_check(stage, block, scale);
    guard.drain(exec)?;
    verdict
}

/// One pass of the Figure 2b pipeline body: stage hooks plus guarded
/// host numerics, *without* `begin`/`finish`, so the verified-accuracy
/// retry can run several attempts against one executor and settle the
/// accounting once.
fn attempt_fixed_rank<E: Executor>(
    exec: &mut E,
    a: Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
) -> Result<Option<LowRankApprox>> {
    let scale = input_scale(&a, exec.computes(), guard)?;
    let b_host = fixed_rank_sample_stage(exec, &a, cfg, rng, guard, iguard, scale)?;
    let b_host = fixed_rank_power_stage(exec, &a, cfg, guard, iguard, scale, b_host)?;
    fixed_rank_finish_stage(exec, &a, cfg, guard, iguard, scale, b_host)
}

/// The input magnitude the guard's health checks compare block norms
/// against (zero when checks are off or the run is shape-only).
pub(crate) fn input_scale(a: &Input<'_>, compute: bool, guard: &NumericGuard) -> Result<f64> {
    if compute && guard.policy.health_checks {
        Ok(rlra_matrix::norms::max_abs(host_values(a)?.as_ref()))
    } else {
        Ok(0.0)
    }
}

/// Step 1a of the Figure 2b pipeline: sample `B = Ω·A` (plus the health
/// check of the sampled block). Returns the sampled matrix on computing
/// backends.
pub(crate) fn fixed_rank_sample_stage<E: Executor>(
    exec: &mut E,
    a: &Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
    scale: f64,
) -> Result<Option<Mat>> {
    let (m, n) = a.shape();
    let compute = exec.computes();
    let l = cfg.l();
    let mut b_host: Option<Mat> = None;
    let sample_stage: &'static str;
    match cfg.sampling {
        SamplingKind::Gaussian => {
            sample_stage = "gaussian_sample";
            staged(exec, "gaussian_sample", |e| e.gaussian_sample(l))?;
            iguard.sync(exec);
            if compute {
                let am = host_values(a)?;
                let omega = gaussian_mat(l, m, rng);
                let mut b = Mat::zeros(l, n);
                let protected = iguard.gemm_protected(
                    "gaussian_sample",
                    "sketch",
                    1.0,
                    &omega,
                    Trans::No,
                    am,
                    Trans::No,
                    &mut b,
                );
                iguard.drain(exec)?;
                protected?;
                b_host = Some(b);
            } else {
                burn_standard_normal(rng, l * m);
                iguard.protect_shape("gaussian_sample", "sketch", l, n, m);
                iguard.drain(exec)?;
            }
        }
        SamplingKind::Fft(scheme) => {
            // The SRFT sample is not a GEMM, so it sits outside the ABFT
            // funnel: events aimed at its output stay queued (dead data
            // by construction) and the coverage sweep reports them as
            // unapplied rather than silently escaped.
            sample_stage = "srft_sample_rows";
            let op = SrftOperator::new(m, l, scheme, rng)?;
            staged(exec, "srft_sample_rows", |e| e.srft_sample_rows(l, scheme))?;
            iguard.sync(exec);
            if compute {
                let am = host_values(a)?;
                b_host = Some(op.sample_rows(am)?);
            }
        }
    }
    if compute {
        checked(exec, guard, sample_stage, sampled_ref(&b_host)?, scale)?;
    }
    Ok(b_host)
}

/// Step 1b of the Figure 2b pipeline: `q` power iterations refining the
/// sampled matrix (plus the health check of the refined block).
pub(crate) fn fixed_rank_power_stage<E: Executor>(
    exec: &mut E,
    a: &Input<'_>,
    cfg: &SamplerConfig,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
    scale: f64,
    mut b_host: Option<Mat>,
) -> Result<Option<Mat>> {
    let (m, n) = a.shape();
    let compute = exec.computes();
    let l = cfg.l();
    for _ in 0..cfg.q {
        staged(exec, "orth_b", |e| e.orth_b(l, cfg.reorth))?;
        staged(exec, "gemm_to_c", |e| e.gemm_to_c(l))?;
        staged(exec, "orth_c", |e| e.orth_c(l, cfg.reorth))?;
        staged(exec, "gemm_to_b", |e| e.gemm_to_b(l))?;
    }
    iguard.sync(exec);
    if compute {
        let am = host_values(a)?;
        let empty_b = Mat::zeros(0, n);
        let empty_c = Mat::zeros(0, m);
        let protected = power_iterate_protected(
            am,
            &empty_b,
            &empty_c,
            sampled(b_host.take())?,
            cfg.q,
            cfg.reorth,
            guard,
            iguard,
        );
        guard.drain(exec)?;
        iguard.drain(exec)?;
        let (b, _c) = protected?;
        if cfg.q > 0 {
            checked(exec, guard, "gemm_to_b", &b, scale)?;
        }
        b_host = Some(b);
    } else {
        // Mirror the protected compute iteration's integrity charges so
        // an armed dry run prices the same work as an armed fault-free
        // compute run: orth verify, checksummed C GEMM, orth verify,
        // checksummed B GEMM — per power iteration.
        for _ in 0..cfg.q {
            iguard.protect_shape("orth_b", "orth_b", l, n, 0);
            iguard.protect_shape("gemm_to_c", "power_c", l, m, n);
            iguard.protect_shape("orth_c", "orth_c", l, m, 0);
            iguard.protect_shape("gemm_to_b", "power_b", l, n, m);
        }
        iguard.drain(exec)?;
    }
    Ok(b_host)
}

/// Steps 2 and 3 of the Figure 2b pipeline: pivot selection on the
/// sampled matrix and the tall-skinny QR of the selected columns.
pub(crate) fn fixed_rank_finish_stage<E: Executor>(
    exec: &mut E,
    a: &Input<'_>,
    cfg: &SamplerConfig,
    guard: &mut NumericGuard,
    iguard: &mut IntegrityGuard,
    scale: f64,
    b_host: Option<Mat>,
) -> Result<Option<LowRankApprox>> {
    let compute = exec.computes();
    let l = cfg.l();
    let k = cfg.k;
    staged(exec, "step2_pivot", |e| e.step2_pivot(cfg.step2, l, k))?;
    staged(exec, "tsqr", |e| e.tsqr(k, cfg.reorth))?;
    iguard.sync(exec);
    let approx = if compute {
        let am = host_values(a)?;
        let mut approx = crate::fixed_rank::finish_from_sampled_guarded(
            am,
            sampled_ref(&b_host)?,
            k,
            cfg.reorth,
            cfg.step2,
            guard,
        )?;
        guard.drain(exec)?;
        // The factor panel Q is column-orthonormal, so its transpose
        // satisfies the row-norm invariant the orth verification
        // checks; the clean host copy makes the escalation re-run a
        // bit-identical re-materialization.
        let clean_q = approx.q.clone();
        let verified = iguard.orth_protected("tsqr", "tsqr", || Ok(clean_q.transpose()));
        iguard.drain(exec)?;
        approx.q = verified?.transpose();
        checked(exec, guard, "tsqr", &approx.q, scale)?;
        Some(approx)
    } else {
        iguard.protect_shape("tsqr", "tsqr", k, a.shape().0, 0);
        iguard.drain(exec)?;
        None
    };
    Ok(approx)
}

/// Randomized posterior bound on the factorization error `‖A·P − Q·R‖`:
/// `probes` Gaussian row probes of the residual, certified with the
/// paper's `c_ad·√(2/π)` constant (§10, eq. 4). `O(probes · m·n)` —
/// two thin GEMMs, no `m × n` residual is materialized.
pub(crate) fn posterior_error_bound(
    a: &Mat,
    approx: &LowRankApprox,
    probes: usize,
    rng: &mut impl Rng,
) -> Result<f64> {
    let (m, n) = a.shape();
    let k = approx.q.cols();
    let omega = gaussian_mat(probes, m, rng);
    // Ω·(A·P) = (Ω·A)·P  (probes × n).
    let mut oa = Mat::zeros(probes, n);
    rlra_blas::gemm(
        1.0,
        omega.as_ref(),
        Trans::No,
        a.as_ref(),
        Trans::No,
        0.0,
        oa.as_mut(),
    )?;
    let mut resid = approx.perm.apply_cols(&oa)?;
    // Ω·Q·R  (probes × n), subtracted in place.
    let mut oq = Mat::zeros(probes, k);
    rlra_blas::gemm(
        1.0,
        omega.as_ref(),
        Trans::No,
        approx.q.as_ref(),
        Trans::No,
        0.0,
        oq.as_mut(),
    )?;
    rlra_blas::gemm(
        -1.0,
        oq.as_ref(),
        Trans::No,
        approx.r.as_ref(),
        Trans::No,
        1.0,
        resid.as_mut(),
    )?;
    let mut worst = 0.0f64;
    for i in 0..probes {
        let row_sq: f64 = (0..n).map(|j| resid[(i, j)].powi(2)).sum();
        worst = worst.max(row_sq.sqrt());
    }
    // Probe rows have E‖ω‖² = m; normalize so the estimate targets the
    // residual's spectral norm rather than √m times it.
    let estimate = worst / (m as f64).sqrt();
    let cad = crate::estimate::cad(VERIFY_GAMMA, m.min(n), probes);
    Ok(crate::estimate::error_bound_from_estimate(estimate, cad))
}

/// Runs [`run_fixed_rank`] with a **verified-accuracy retry**: after the
/// pipeline finishes, a randomized posterior estimate of the
/// factorization error `‖A·P − Q·R‖` is checked against `tol`. On a
/// miss, the sampler is bounded-retried against the same executor — the
/// next attempt re-draws `Ω` (the RNG stream simply continues) and bumps
/// the oversampling `p` when the shapes still allow it — before failing
/// with [`MatrixError::AccuracyNotReached`].
///
/// Every attempt's kernels (and the posterior probes, via
/// [`Executor::verify_probe`]) are charged to the one executor, so the
/// returned report prices the retries.
///
/// # Errors
///
/// Everything [`run_fixed_rank_with_guard`] returns, plus
/// [`MatrixError::Unsupported`] on non-computing backends (the check
/// reads values) and [`MatrixError::AccuracyNotReached`] when the
/// attempt budget is exhausted.
pub fn run_fixed_rank_verified<E: Executor>(
    exec: &mut E,
    a: Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
    tol: f64,
    guard: &mut NumericGuard,
) -> Result<(LowRankApprox, ExecReport)> {
    let (m, n) = a.shape();
    cfg.validate(m, n)?;
    // NaN must fail this check too, hence the negated comparison.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(tol > 0.0) {
        return Err(MatrixError::InvalidParameter {
            name: "tol",
            message: format!("tolerance must be positive, got {tol}"),
        });
    }
    exec.supports(cfg, a.values().is_some())?;
    if !exec.computes() || a.values().is_none() {
        return Err(MatrixError::Unsupported {
            backend: exec.name(),
            feature: "verified accuracy — the posterior estimate reads values".into(),
        });
    }
    exec.begin(m, n);
    let mut attempt_cfg = *cfg;
    let mut best = f64::INFINITY;
    // The verified retry predates the integrity layer; it runs with the
    // checksums disarmed (a caller who wants both composes the
    // protected entry with its own posterior check).
    let mut iguard = IntegrityGuard::default();
    for _ in 0..VERIFY_MAX_ATTEMPTS {
        let approx = attempt_fixed_rank(exec, a, &attempt_cfg, rng, guard, &mut iguard)?.ok_or(
            MatrixError::Internal {
                op: "run_fixed_rank_verified",
                invariant: "computing backends return an approximation",
            },
        )?;
        staged(exec, "verify_probe", |e| {
            e.verify_probe(VERIFY_PROBES, attempt_cfg.k)
        })?;
        let am = host_values(&a)?;
        let bound = posterior_error_bound(am, &approx, VERIFY_PROBES, rng)?;
        best = best.min(bound);
        if bound <= tol {
            guard.drain(exec)?;
            let mut report = exec.finish()?;
            guard.fold_into(&mut report);
            return Ok((approx, report));
        }
        // Retry with a fresh Ω (the stream continues) and, when the
        // shapes allow, more oversampling — the Figure 3 lever for a
        // subspace that came up short.
        let bumped = attempt_cfg.with_p(attempt_cfg.p + attempt_cfg.k.max(1));
        if bumped.validate(m, n).is_ok() {
            attempt_cfg = bumped;
        }
    }
    guard.drain(exec)?;
    exec.finish()?;
    Err(MatrixError::AccuracyNotReached {
        achieved: best,
        required: tol,
        attempts: VERIFY_MAX_ATTEMPTS,
    })
}

/// Runs [`run_fixed_rank`] under a fault-recovery policy: the executor is
/// wrapped in [`super::Recovering`], which retries transient faults with
/// simulated exponential backoff and degrades the fleet on fail-stop
/// device losses. The report's `retries` / `devices_lost` /
/// `recovery_seconds` fields record what recovery cost.
///
/// Host numerics are unaffected by recovery (they run here, on the
/// host), so with the same seed the factors are identical to a
/// fault-free run.
///
/// # Errors
///
/// Everything [`run_fixed_rank`] returns, plus faults that exhaust the
/// retry budget or cannot be recovered (e.g. the last device of a
/// backend failing).
pub fn run_fixed_rank_with_recovery<E: Executor>(
    exec: E,
    policy: super::RecoveryPolicy,
    a: Input<'_>,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<(Option<LowRankApprox>, ExecReport)> {
    let mut wrapped = super::Recovering::new(exec, policy);
    run_fixed_rank(&mut wrapped, a, cfg, rng)
}
