//! The numerical-robustness guard: breakdown detection, the
//! orthogonalization fallback ladder, and between-stage health checks.
//!
//! The guard mirrors how [`super::Recovering`] wraps *device* faults,
//! but for *numerical* faults: a CholQR Gram matrix losing positive
//! definiteness, a NaN-poisoned block, a norm explosion. It is a
//! host-side state object threaded through the guarded host numerics
//! (the pipeline, the power iteration, the Step-3 tall QR), because the
//! numerics/accounting split of the [module docs](super) still holds —
//! the guard *detects and repairs on the host*, then charges the
//! executor for the extra kernels each repair would have cost.
//!
//! # The ladder
//!
//! Orthogonalizations start on the fast rung and escalate only on
//! breakdown:
//!
//! 1. **CholQR** (with the configured re-orthogonalization pass) — the
//!    paper's choice; squares the condition number in the Gram matrix.
//! 2. **Shifted CholQR2** — a shifted Cholesky pass that tolerates
//!    `κ ≈ 1/√(shift·ε)`, followed by two plain corrective passes.
//! 3. **Householder QR** — unconditionally stable, slowest.
//!
//! A run in which no rung breaks executes byte-for-byte the same
//! kernels as before this layer existed, charges nothing extra, and
//! reports all-zero guard counters — the bit-identity invariant the
//! cross-backend tests pin.
//!
//! Charges are buffered ([`NumericGuard::drain`] pushes them into the
//! executor's cost hooks and trace stream between stages) and the
//! counters fold into the final [`ExecReport`] via
//! [`NumericGuard::fold_into`]. The guard never touches `retries` —
//! device-fault accounting belongs to [`super::Recovering`] alone, so
//! composing both injectors in one run cannot double-count.

use super::{ExecReport, Executor};
use rlra_matrix::{Mat, MatrixError, Result};
use rlra_trace::TraceEvent;

/// One rung of the orthogonalization fallback ladder, cheapest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Plain CholQR (one or two Gram/Cholesky/solve passes).
    CholQr,
    /// Shifted CholQR2: shifted first pass plus two corrective passes.
    ShiftedCholQr2,
    /// Householder QR: unconditionally backward stable.
    Householder,
}

impl Rung {
    /// Ladder position: 0 = CholQR, 1 = shifted CholQR2, 2 = Householder.
    pub fn index(self) -> usize {
        match self {
            Rung::CholQr => 0,
            Rung::ShiftedCholQr2 => 1,
            Rung::Householder => 2,
        }
    }

    /// Short label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            Rung::CholQr => "cholqr",
            Rung::ShiftedCholQr2 => "shifted-cholqr2",
            Rung::Householder => "householder",
        }
    }

    fn next(self) -> Option<Rung> {
        match self {
            Rung::CholQr => Some(Rung::ShiftedCholQr2),
            Rung::ShiftedCholQr2 => Some(Rung::Householder),
            Rung::Householder => None,
        }
    }
}

/// Tuning knobs of the numeric guard. The default policy preserves
/// bit-identity on healthy runs: the full ladder is available but rung
/// 0 is exactly the pre-guard kernel sequence, and health checks are
/// off (they cost a streaming read per stage).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NumericPolicy {
    /// Highest rung the ladder may escalate to. `Rung::CholQr` disables
    /// fallbacks entirely (breakdowns surface as errors).
    pub max_rung: Rung,
    /// Scale of the diagonal shift in rung 1, in units of
    /// `ε·trace(G)`. Larger shifts rescue worse conditioning but leave
    /// more work for the corrective passes.
    pub shift_scale: f64,
    /// Run NaN/Inf and norm-explosion scans between pipeline stages.
    pub health_checks: bool,
    /// A block whose max-magnitude entry exceeds `explosion_factor`
    /// times the input scale fails the health check.
    pub explosion_factor: f64,
}

impl Default for NumericPolicy {
    fn default() -> Self {
        NumericPolicy {
            max_rung: Rung::Householder,
            shift_scale: 100.0,
            health_checks: false,
            explosion_factor: 1e8,
        }
    }
}

/// A buffered accounting event, pushed to the executor on
/// [`NumericGuard::drain`]. Buffering keeps the guarded host numerics
/// free of executor borrows.
#[derive(Debug, Clone, Copy)]
enum GuardCharge {
    Breakdown {
        stage: &'static str,
        rung: Rung,
    },
    Fallback {
        stage: &'static str,
        rows: usize,
        cols: usize,
        rung: Rung,
        reorth: bool,
    },
    Health {
        stage: &'static str,
        rows: usize,
        cols: usize,
        ok: bool,
    },
}

/// Breakdown/fallback state of one guarded run. See the [module
/// docs](self) for the contract.
#[derive(Debug, Clone, Default)]
pub struct NumericGuard {
    /// The escalation policy.
    pub policy: NumericPolicy,
    breakdowns: u64,
    fallbacks: u64,
    histogram: [u64; 3],
    pending: Vec<GuardCharge>,
}

impl NumericGuard {
    /// A guard with the given escalation policy.
    pub fn new(policy: NumericPolicy) -> Self {
        NumericGuard {
            policy,
            ..NumericGuard::default()
        }
    }

    /// Numerical breakdowns detected so far (failed rungs, poisoned or
    /// exploding blocks).
    pub fn breakdowns(&self) -> u64 {
        self.breakdowns
    }

    /// Ladder escalations performed so far (one per rung climbed).
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Successful orthogonalizations per rung `[cholqr, shifted, hhqr]`.
    /// Rung-0 successes are not counted — they are the bit-identical
    /// fast path — so a healthy run reads `[0, 0, 0]`.
    pub fn ladder_histogram(&self) -> [u64; 3] {
        self.histogram
    }

    /// Rebuilds the cumulative counters from a checkpoint snapshot. Only
    /// the counters are durable state: buffered charges are always
    /// drained to the executor before a snapshot is written, so `pending`
    /// is empty at every checkpoint boundary.
    pub fn restore_counters(&mut self, breakdowns: u64, fallbacks: u64, histogram: [u64; 3]) {
        self.breakdowns = breakdowns;
        self.fallbacks = fallbacks;
        self.histogram = histogram;
    }

    fn record_breakdown(&mut self, stage: &'static str, rung: Rung) {
        self.breakdowns += 1;
        self.pending.push(GuardCharge::Breakdown { stage, rung });
    }

    fn record_fallback(&mut self, stage: &'static str, b: &Mat, rung: Rung, reorth: bool) {
        self.fallbacks += 1;
        self.pending.push(GuardCharge::Fallback {
            stage,
            rows: b.rows(),
            cols: b.cols(),
            rung,
            reorth,
        });
    }

    fn escalate(&mut self, stage: &'static str, from: Rung) -> Result<Rung> {
        self.record_breakdown(stage, from);
        match from.next() {
            Some(next) if next <= self.policy.max_rung => Ok(next),
            _ => Err(MatrixError::NumericalBreakdown {
                stage,
                detail: "orthogonalization ladder exhausted",
            }),
        }
    }

    /// Row-orthonormalizes a short-wide block through the ladder:
    /// CholQR (rung 0, exactly the pre-guard kernels), shifted CholQR2,
    /// Householder QR of the transpose. Every escalation is counted,
    /// buffered for cost charging, and visible in the histogram.
    ///
    /// # Errors
    ///
    /// [`MatrixError::NumericalBreakdown`] when every rung up to
    /// `policy.max_rung` breaks; propagates non-breakdown kernel errors.
    pub fn ladder_rows(&mut self, stage: &'static str, b: &Mat, reorth: bool) -> Result<Mat> {
        let attempt = if reorth {
            rlra_lapack::cholqr_rows2(b)
        } else {
            rlra_lapack::cholqr_rows(b)
        };
        match attempt {
            Ok((q, _)) => Ok(q),
            Err(MatrixError::NotPositiveDefinite { .. }) => {
                self.escalate(stage, Rung::CholQr)?;
                self.record_fallback(stage, b, Rung::ShiftedCholQr2, reorth);
                match rlra_lapack::shifted_cholqr_rows2(b, self.policy.shift_scale) {
                    Ok((q, _)) => {
                        self.histogram[Rung::ShiftedCholQr2.index()] += 1;
                        Ok(q)
                    }
                    Err(MatrixError::NotPositiveDefinite { .. }) => {
                        self.escalate(stage, Rung::ShiftedCholQr2)?;
                        self.record_fallback(stage, b, Rung::Householder, reorth);
                        self.histogram[Rung::Householder.index()] += 1;
                        Ok(rlra_lapack::form_q(&b.transpose()).transpose())
                    }
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Tall-skinny flavor of the ladder, returning both factors (the
    /// Step-3 finish needs `R`): CholQR, shifted CholQR2, Householder
    /// `qr_factor`.
    ///
    /// # Errors
    ///
    /// As [`NumericGuard::ladder_rows`].
    pub fn ladder_tall(
        &mut self,
        stage: &'static str,
        b: &Mat,
        reorth: bool,
    ) -> Result<(Mat, Mat)> {
        let attempt = if reorth {
            rlra_lapack::cholqr2(b)
        } else {
            rlra_lapack::cholqr(b)
        };
        match attempt {
            Ok(qr) => Ok(qr),
            Err(MatrixError::NotPositiveDefinite { .. }) => {
                self.escalate(stage, Rung::CholQr)?;
                self.record_fallback(stage, b, Rung::ShiftedCholQr2, reorth);
                match rlra_lapack::shifted_cholqr2(b, self.policy.shift_scale) {
                    Ok(qr) => {
                        self.histogram[Rung::ShiftedCholQr2.index()] += 1;
                        Ok(qr)
                    }
                    Err(MatrixError::NotPositiveDefinite { .. }) => {
                        self.escalate(stage, Rung::ShiftedCholQr2)?;
                        self.record_fallback(stage, b, Rung::Householder, reorth);
                        self.histogram[Rung::Householder.index()] += 1;
                        Ok(rlra_lapack::qr_factor(b))
                    }
                    Err(e) => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Between-stage health check: NaN/Inf scan plus a norm-explosion
    /// test against `scale` (the input's max magnitude). A no-op unless
    /// `policy.health_checks` is on; when on, the streaming read is
    /// buffered for cost charging whether or not the block passes.
    ///
    /// # Errors
    ///
    /// [`MatrixError::NumericalBreakdown`] on a non-finite entry or a
    /// max magnitude above `explosion_factor · scale`.
    pub fn health_check(&mut self, stage: &'static str, block: &Mat, scale: f64) -> Result<()> {
        if !self.policy.health_checks {
            return Ok(());
        }
        let (rows, cols) = block.shape();
        let mut finite = true;
        let mut max = 0.0f64;
        for i in 0..rows {
            for j in 0..cols {
                let v = block[(i, j)];
                if !v.is_finite() {
                    finite = false;
                }
                max = max.max(v.abs());
            }
        }
        let exploded = scale > 0.0 && max > self.policy.explosion_factor * scale;
        let ok = finite && !exploded;
        self.pending.push(GuardCharge::Health {
            stage,
            rows,
            cols,
            ok,
        });
        if !finite {
            self.breakdowns += 1;
            return Err(MatrixError::NumericalBreakdown {
                stage,
                detail: "non-finite block",
            });
        }
        if exploded {
            self.breakdowns += 1;
            return Err(MatrixError::NumericalBreakdown {
                stage,
                detail: "norm explosion",
            });
        }
        Ok(())
    }

    /// Pushes the buffered charges into the executor's cost hooks and
    /// trace stream (instant marks on the stage track, stamped at the
    /// executor's current simulated time). Call between stages and
    /// before [`Executor::finish`], so escalation costs land inside the
    /// run's timeline.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures from the charge hooks.
    pub fn drain<E: Executor + ?Sized>(&mut self, exec: &mut E) -> Result<()> {
        for charge in std::mem::take(&mut self.pending) {
            match charge {
                GuardCharge::Breakdown { stage, rung } => {
                    if let Some(t) = exec.tracer() {
                        t.emit(TraceEvent::Breakdown {
                            stage,
                            rung: rung.index() as u8,
                            time: exec.elapsed(),
                        });
                    }
                }
                GuardCharge::Fallback {
                    stage,
                    rows,
                    cols,
                    rung,
                    reorth,
                } => {
                    exec.charge_fallback(rows, cols, rung, reorth)?;
                    if let Some(t) = exec.tracer() {
                        t.emit(TraceEvent::Fallback {
                            stage,
                            rung: rung.index() as u8,
                            time: exec.elapsed(),
                        });
                    }
                }
                GuardCharge::Health {
                    stage,
                    rows,
                    cols,
                    ok,
                } => {
                    exec.charge_health_check(rows, cols)?;
                    if let Some(t) = exec.tracer() {
                        t.emit(TraceEvent::HealthCheck {
                            stage,
                            ok,
                            time: exec.elapsed(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Folds the guard counters into a finished report (and its metrics
    /// registry). Never touches `retries` — device-fault retry
    /// accounting belongs exclusively to [`super::Recovering`].
    pub fn fold_into(&self, report: &mut ExecReport) {
        report.breakdowns += self.breakdowns;
        report.fallbacks += self.fallbacks;
        for (slot, count) in report.ladder_histogram.iter_mut().zip(self.histogram) {
            *slot += count;
        }
        report.metrics.fallbacks += self.fallbacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_lapack::householder::orthogonality_error;
    use rlra_matrix::gaussian_mat;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn healthy_input_stays_on_rung_zero() {
        let b = gaussian_mat(5, 30, &mut rng(1));
        let mut g = NumericGuard::default();
        let q = g.ladder_rows("orth_b", &b, true).unwrap();
        assert!(orthogonality_error(&q.transpose()) < 1e-12);
        assert_eq!(g.breakdowns(), 0);
        assert_eq!(g.fallbacks(), 0);
        assert_eq!(g.ladder_histogram(), [0, 0, 0]);
        // Bit-identity with the raw rung-0 kernel.
        let (q0, _) = rlra_lapack::cholqr_rows2(&b).unwrap();
        assert_eq!(q, q0);
    }

    #[test]
    fn near_deficiency_escalates_to_shifted_rung() {
        // Almost-duplicated row: plain CholQR breaks, the shifted rung
        // rescues it.
        let mut b = gaussian_mat(4, 30, &mut rng(2));
        let noise = gaussian_mat(1, 30, &mut rng(3));
        for j in 0..30 {
            b[(3, j)] = b[(0, j)] + 1e-9 * noise[(0, j)];
        }
        assert!(rlra_lapack::cholqr_rows2(&b).is_err());
        let mut g = NumericGuard::default();
        let q = g.ladder_rows("orth_b", &b, true).unwrap();
        assert_eq!(q.shape(), (4, 30));
        assert!(orthogonality_error(&q.transpose()) < 1e-9);
        assert_eq!(g.breakdowns(), 1);
        assert_eq!(g.fallbacks(), 1);
        assert_eq!(g.ladder_histogram(), [0, 1, 0]);
    }

    #[test]
    fn exact_deficiency_escalates_to_householder() {
        let mut b = gaussian_mat(4, 20, &mut rng(4));
        for j in 0..20 {
            b[(3, j)] = b[(0, j)];
        }
        let mut g = NumericGuard::default();
        let q = g.ladder_rows("orth_c", &b, true).unwrap();
        assert_eq!(q.shape(), (4, 20));
        assert_eq!(g.breakdowns(), 2);
        assert_eq!(g.fallbacks(), 2);
        assert_eq!(g.ladder_histogram(), [0, 0, 1]);
    }

    #[test]
    fn capped_ladder_surfaces_the_breakdown() {
        let mut b = gaussian_mat(4, 20, &mut rng(5));
        for j in 0..20 {
            b[(3, j)] = b[(0, j)];
        }
        let mut g = NumericGuard::new(NumericPolicy {
            max_rung: Rung::CholQr,
            ..NumericPolicy::default()
        });
        let err = g.ladder_rows("orth_b", &b, true).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::NumericalBreakdown {
                stage: "orth_b",
                ..
            }
        ));
        assert_eq!(g.breakdowns(), 1);
        assert_eq!(g.fallbacks(), 0);
    }

    #[test]
    fn tall_ladder_reconstructs_through_the_shifted_rung() {
        let mut b = gaussian_mat(30, 4, &mut rng(6));
        let noise = gaussian_mat(30, 1, &mut rng(7));
        for i in 0..30 {
            b[(i, 3)] = b[(i, 0)] + 1e-9 * noise[(i, 0)];
        }
        let mut g = NumericGuard::default();
        let (q, r) = g.ladder_tall("tsqr", &b, true).unwrap();
        assert_eq!(g.ladder_histogram(), [0, 1, 0]);
        // Q·R reproduces B.
        let mut qr = Mat::zeros(30, 4);
        rlra_blas::gemm(
            1.0,
            q.as_ref(),
            rlra_blas::Trans::No,
            r.as_ref(),
            rlra_blas::Trans::No,
            0.0,
            qr.as_mut(),
        )
        .unwrap();
        let diff = rlra_matrix::ops::sub(&b, &qr).unwrap();
        assert!(rlra_matrix::norms::max_abs(diff.as_ref()) < 1e-8);
        assert!(orthogonality_error(&q) < 1e-10);
    }

    #[test]
    fn health_check_is_a_noop_by_default() {
        let mut g = NumericGuard::default();
        let poisoned = Mat::from_fn(3, 3, |i, j| if i == j { f64::NAN } else { 1.0 });
        assert!(g.health_check("gemm_to_c", &poisoned, 1.0).is_ok());
        assert_eq!(g.breakdowns(), 0);
    }

    #[test]
    fn health_check_catches_nan_and_explosion() {
        let mut g = NumericGuard::new(NumericPolicy {
            health_checks: true,
            explosion_factor: 1e3,
            ..NumericPolicy::default()
        });
        let poisoned = Mat::from_fn(3, 3, |i, j| if (i, j) == (1, 2) { f64::NAN } else { 1.0 });
        let err = g.health_check("gemm_to_c", &poisoned, 1.0).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::NumericalBreakdown {
                detail: "non-finite block",
                ..
            }
        ));
        let huge = Mat::from_fn(2, 2, |_, _| 1e7);
        let err = g.health_check("gemm_to_b", &huge, 1.0).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::NumericalBreakdown {
                detail: "norm explosion",
                ..
            }
        ));
        assert_eq!(g.breakdowns(), 2);
        let fine = Mat::from_fn(2, 2, |_, _| 0.5);
        assert!(g.health_check("orth_b", &fine, 1.0).is_ok());
    }

    #[test]
    fn fold_into_updates_report_counters_but_never_retries() {
        let mut b = gaussian_mat(4, 20, &mut rng(8));
        for j in 0..20 {
            b[(3, j)] = b[(0, j)];
        }
        let mut g = NumericGuard::default();
        g.ladder_rows("orth_b", &b, false).unwrap();
        let mut exec = super::super::CpuExec::new();
        exec.begin(4, 20);
        g.drain(&mut exec).unwrap();
        let mut report = exec.finish().unwrap();
        report.retries = 7;
        g.fold_into(&mut report);
        assert_eq!(report.breakdowns, 2);
        assert_eq!(report.fallbacks, 2);
        assert_eq!(report.ladder_histogram, [0, 0, 1]);
        assert_eq!(report.metrics.fallbacks, 2);
        assert_eq!(report.retries, 7, "guard must not touch device retries");
    }
}
