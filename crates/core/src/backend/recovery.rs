//! Fault recovery for the execution backends.
//!
//! [`Recovering`] wraps any [`Executor`] and intercepts the
//! [`MatrixError::DeviceFault`] errors raised by injected faults
//! (see `rlra_gpu::fault`):
//!
//! * **transient** faults (the ECC-retryable class) are retried in place
//!   after a simulated exponential backoff, charged to the device clock
//!   under the `Recovery` timeline phase — the device RNG stream is not
//!   advanced by a faulted launch, so the retried launch draws the same
//!   values and numerics are unaffected;
//! * **fail-stop** device losses trigger
//!   [`Executor::recover_device_loss`]: the backend redistributes the
//!   lost block-rows over the survivors, re-draws only the lost `Ω`
//!   rows, and re-orthogonalizes them against the accepted basis —
//!   cheaper than a full restart because the sketch built so far is
//!   kept (fresh i.i.d. Gaussian rows are distributionally exchangeable
//!   with the lost ones, so the sketch quality guarantee is preserved);
//! * **stragglers** never surface as errors (they only dilate the
//!   faulted device's kernel time), so a *watchdog* samples
//!   [`Executor::device_load`] at stage boundaries instead: a device
//!   whose per-launch cost exceeds a policy multiple of the fleet
//!   median is handed to [`Executor::mitigate_straggler`], which races
//!   a speculative re-dispatch of its block-rows against it.
//!
//! All of this is *accounting*: the pipeline's numerics run on the host
//! and are bit-identical with or without recovery for the same seed.

use super::{ExecReport, Executor};
use crate::config::{SamplerConfig, Step2Kind};
use rlra_fft::SrftScheme;
use rlra_matrix::{DeviceFaultKind, MatrixError, Result};
use rlra_trace::{TraceEvent, Tracer};

/// Retry/backoff policy for transient faults.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Consecutive transient retries allowed per stage hook before the
    /// fault is propagated. A recovered device loss resets the count.
    pub retry_budget: u32,
    /// Simulated seconds of backoff before the first retry.
    pub backoff_base: f64,
    /// Multiplier applied to the backoff on each further retry.
    pub backoff_factor: f64,
    /// Half-width of the deterministic jitter band around each backoff,
    /// as a fraction of it (`0.1` = ±10%). Jitter decorrelates the
    /// retry storms of devices that fault in lockstep; it is seeded
    /// from [`RecoveryPolicy::jitter_salt`] and the wrapper's retry
    /// ordinal — never from ambient entropy — so runs stay
    /// reproducible, and fault-free runs (which charge no backoff at
    /// all) are bit-identical whatever the salt.
    pub jitter_frac: f64,
    /// Seed mixed into the jitter hash; vary it across fleet members so
    /// their retry schedules decohere.
    pub jitter_salt: u64,
    /// Straggler watchdog trip point: a device whose per-launch cost
    /// exceeds this multiple of the fleet median is speculatively
    /// re-dispatched via [`Executor::mitigate_straggler`]. `None`
    /// disables the watchdog.
    pub straggler_threshold: Option<f64>,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            retry_budget: 3,
            // ~1 ms: the order of a cuRAND/ECC scrub turnaround, large
            // against a kernel launch (~10 µs) but small against any
            // GEMM at paper sizes.
            backoff_base: 1e-3,
            backoff_factor: 2.0,
            jitter_frac: 0.1,
            jitter_salt: 0,
            straggler_threshold: None,
        }
    }
}

/// SplitMix64 finalizer: a tiny, well-mixed hash used to derive the
/// backoff jitter deterministically from `(salt, draw ordinal)`.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RecoveryPolicy {
    /// Backoff before retry number `attempt` (0-based): exponential in
    /// the attempt, before jitter.
    pub fn backoff(&self, attempt: u32) -> f64 {
        self.backoff_base * self.backoff_factor.powi(attempt.min(30) as i32)
    }

    /// The backoff actually charged for retry `attempt` when it is the
    /// `draw`-th retry of the run overall: [`RecoveryPolicy::backoff`]
    /// scaled by a deterministic jitter in
    /// `[1 − jitter_frac, 1 + jitter_frac)` hashed from
    /// `(jitter_salt, draw)`.
    pub fn jittered_backoff(&self, attempt: u32, draw: u64) -> f64 {
        let h = splitmix64(self.jitter_salt ^ draw.wrapping_mul(0xA076_1D64_78BD_642F));
        // 53 mantissa bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        self.backoff(attempt) * (1.0 + self.jitter_frac * (2.0 * u - 1.0))
    }
}

/// An [`Executor`] wrapper that makes any backend fault-tolerant under
/// the injected fault model. See the [module docs](self).
#[derive(Debug)]
pub struct Recovering<E: Executor> {
    inner: E,
    policy: RecoveryPolicy,
    retries: u64,
    devices_lost: usize,
    /// `(device, simulated seconds elapsed when it was lost)` — the
    /// restart-cost baseline in the what-if sweep prices a full restart
    /// at each of these points.
    loss_log: Vec<(usize, f64)>,
    /// Retry ordinal across the whole run — the jitter draw counter.
    jitter_draws: u64,
    /// Speculative re-dispatches attempted by the watchdog (or handed
    /// in explicitly).
    speculations: u64,
    /// Simulated wall-clock seconds the successful speculations saved.
    speculation_saved: f64,
    /// Cleared the first time the backend refuses
    /// [`Executor::mitigate_straggler`] as unsupported, so the watchdog
    /// stops probing it.
    watchdog_armed: bool,
    /// Devices already raced once — a straggler that *wins* its race
    /// stays slow but is not raced again.
    speculated: Vec<usize>,
}

impl<E: Executor> Recovering<E> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: E, policy: RecoveryPolicy) -> Self {
        Recovering {
            inner,
            policy,
            retries: 0,
            devices_lost: 0,
            loss_log: Vec::new(),
            jitter_draws: 0,
            speculations: 0,
            speculation_saved: 0.0,
            watchdog_armed: true,
            speculated: Vec::new(),
        }
    }

    /// Unwraps the inner executor.
    pub fn into_inner(self) -> E {
        self.inner
    }

    /// Transient retries performed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Devices lost (and recovered from) so far.
    pub fn devices_lost(&self) -> usize {
        self.devices_lost
    }

    /// The device losses seen so far, with the simulated time at which
    /// each struck.
    pub fn loss_log(&self) -> &[(usize, f64)] {
        &self.loss_log
    }

    /// Speculative straggler re-dispatches attempted so far.
    pub fn speculations(&self) -> u64 {
        self.speculations
    }

    /// Simulated wall-clock seconds saved by won speculations so far.
    pub fn speculation_saved(&self) -> f64 {
        self.speculation_saved
    }

    /// Races a speculative re-dispatch against `device` on the inner
    /// backend, counting the attempt and any savings.
    fn speculate_on(&mut self, device: usize) -> Result<f64> {
        self.speculated.push(device);
        let saved = self.inner.mitigate_straggler(device)?;
        self.speculations += 1;
        self.speculation_saved += saved;
        Ok(saved)
    }

    /// Straggler watchdog, run after every successful stage hook: trips
    /// when some device's per-launch cost exceeds the policy multiple
    /// of the fleet median. Backends that refuse the mitigation disarm
    /// it for the rest of the run.
    fn watchdog(&mut self) -> Result<()> {
        let Some(threshold) = self.policy.straggler_threshold else {
            return Ok(());
        };
        if !self.watchdog_armed {
            return Ok(());
        }
        let per_launch: Vec<(usize, f64)> = self
            .inner
            .device_load()
            .into_iter()
            .filter(|&(_, _, launches)| launches > 0)
            .map(|(d, busy, launches)| (d, busy / launches as f64))
            .collect();
        if per_launch.len() < 2 {
            return Ok(());
        }
        let mut costs: Vec<f64> = per_launch.iter().map(|&(_, c)| c).collect();
        costs.sort_by(f64::total_cmp);
        let median = costs[costs.len() / 2];
        let Some(&(device, worst)) = per_launch.iter().max_by(|a, b| a.1.total_cmp(&b.1)) else {
            return Ok(());
        };
        if median <= 0.0 || worst <= threshold * median || self.speculated.contains(&device) {
            return Ok(());
        }
        match self.speculate_on(device) {
            Ok(_) => Ok(()),
            Err(MatrixError::Unsupported { .. }) => {
                self.watchdog_armed = false;
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Emits a recovery event on the inner backend's tracer, if any.
    fn trace_recovery(&self, device: usize, action: &'static str) {
        if let Some(t) = self.inner.tracer() {
            t.emit(TraceEvent::Recovery {
                device,
                action,
                time: self.inner.elapsed(),
            });
        }
    }

    /// Runs `op` against the inner executor, absorbing recoverable
    /// faults per the policy.
    ///
    /// Recovery work itself launches kernels on the survivors, so a
    /// fault can strike *during* another device's recovery: transients
    /// there are retried like any other, and a nested fail-stop is
    /// pushed onto a pending stack and recovered first (its survivors
    /// are a subset of the original's, so the order is safe).
    fn guard(&mut self, mut op: impl FnMut(&mut E) -> Result<()>) -> Result<()> {
        let mut attempts = 0u32;
        let mut pending: Vec<(usize, u64)> = Vec::new();
        loop {
            let result = if let Some(&(device, at)) = pending.last() {
                let r = self.inner.recover_device_loss(device, at);
                if r.is_ok() {
                    pending.pop();
                    self.devices_lost += 1;
                    self.loss_log.push((device, self.inner.elapsed()));
                    self.trace_recovery(device, "device-loss-recovered");
                    // The degraded fleet gets a fresh retry budget.
                    attempts = 0;
                    continue;
                }
                r
            } else {
                let r = op(&mut self.inner);
                if r.is_ok() {
                    self.watchdog()?;
                    return Ok(());
                }
                r
            };
            let Err(err) = result else { continue };
            match err {
                MatrixError::DeviceFault {
                    device,
                    kind: DeviceFaultKind::Transient,
                    ..
                } if attempts < self.policy.retry_budget => {
                    let backoff = self.policy.jittered_backoff(attempts, self.jitter_draws);
                    self.jitter_draws += 1;
                    attempts += 1;
                    self.retries += 1;
                    self.inner.charge_recovery(backoff);
                    self.trace_recovery(device, "transient-retry");
                }
                MatrixError::DeviceFault {
                    device,
                    kind: DeviceFaultKind::FailStop,
                    at,
                } => {
                    pending.push((device, at));
                    attempts = 0;
                }
                // Silent corruption is a *data* fault, not a launch
                // fault: the kernel completed, so re-running it here
                // would charge a backoff for nothing, count a retry for
                // work the integrity guard already accounts as a
                // correction or re-run, and — worse — re-execute healthy
                // stages around a still-poisoned buffer. It surfaces
                // unchanged for the `IntegrityPolicy` escalation ladder
                // (localized correction → bounded re-run → checkpoint
                // rollback).
                MatrixError::SilentCorruption {
                    device,
                    kernel,
                    location,
                } => {
                    self.trace_recovery(device, "integrity-escalation");
                    return Err(MatrixError::SilentCorruption {
                        device,
                        kernel,
                        location,
                    });
                }
                e => return Err(e),
            }
        }
    }
}

impl<E: Executor> Executor for Recovering<E> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn computes(&self) -> bool {
        self.inner.computes()
    }

    fn supports(&self, cfg: &SamplerConfig, has_values: bool) -> Result<()> {
        self.inner.supports(cfg, has_values)
    }

    fn begin(&mut self, m: usize, n: usize) {
        self.inner.begin(m, n);
    }

    fn gaussian_sample(&mut self, l: usize) -> Result<()> {
        self.guard(|e| e.gaussian_sample(l))
    }

    fn srft_sample_rows(&mut self, l: usize, scheme: SrftScheme) -> Result<()> {
        self.guard(|e| e.srft_sample_rows(l, scheme))
    }

    fn orth_b(&mut self, l: usize, reorth: bool) -> Result<()> {
        self.guard(|e| e.orth_b(l, reorth))
    }

    fn gemm_to_c(&mut self, l: usize) -> Result<()> {
        self.guard(|e| e.gemm_to_c(l))
    }

    fn orth_c(&mut self, l: usize, reorth: bool) -> Result<()> {
        self.guard(|e| e.orth_c(l, reorth))
    }

    fn gemm_to_b(&mut self, l: usize) -> Result<()> {
        self.guard(|e| e.gemm_to_b(l))
    }

    fn step2_pivot(&mut self, kind: Step2Kind, l: usize, k: usize) -> Result<()> {
        self.guard(|e| e.step2_pivot(kind, l, k))
    }

    fn tsqr(&mut self, k: usize, reorth: bool) -> Result<()> {
        self.guard(|e| e.tsqr(k, reorth))
    }

    fn supports_adaptive(&self) -> bool {
        self.inner.supports_adaptive()
    }

    fn adaptive_draw(&mut self, l_inc: usize) -> Result<()> {
        self.guard(|e| e.adaptive_draw(l_inc))
    }

    fn adaptive_orth(
        &mut self,
        rows: usize,
        cols: usize,
        l_prev: usize,
        reorth: bool,
    ) -> Result<()> {
        self.guard(|e| e.adaptive_orth(rows, cols, l_prev, reorth))
    }

    fn adaptive_gemm_c(&mut self, l_new: usize) -> Result<()> {
        self.guard(|e| e.adaptive_gemm_c(l_new))
    }

    fn adaptive_gemm_w(&mut self, l_new: usize) -> Result<()> {
        self.guard(|e| e.adaptive_gemm_w(l_new))
    }

    fn adaptive_probe(&mut self, next_inc: usize, l_now: usize) -> Result<()> {
        self.guard(|e| e.adaptive_probe(next_inc, l_now))
    }

    fn adaptive_finish(&mut self, k: usize) -> Result<()> {
        self.guard(|e| e.adaptive_finish(k))
    }

    fn adaptive_update_pivot(&mut self, l_rows: usize, n_trail: usize, k_b: usize) -> Result<()> {
        self.guard(|e| e.adaptive_update_pivot(l_rows, n_trail, k_b))
    }

    fn adaptive_update_panel(&mut self, k_b: usize, k_done: usize) -> Result<()> {
        self.guard(|e| e.adaptive_update_panel(k_b, k_done))
    }

    fn adaptive_update_trailing(&mut self, k_b: usize, n_trail: usize) -> Result<()> {
        self.guard(|e| e.adaptive_update_trailing(k_b, n_trail))
    }

    fn charge_fallback(
        &mut self,
        rows: usize,
        cols: usize,
        rung: super::Rung,
        reorth: bool,
    ) -> Result<()> {
        self.guard(|e| e.charge_fallback(rows, cols, rung, reorth))
    }

    fn charge_health_check(&mut self, rows: usize, cols: usize) -> Result<()> {
        self.guard(|e| e.charge_health_check(rows, cols))
    }

    fn verify_probe(&mut self, probes: usize, k: usize) -> Result<()> {
        self.guard(|e| e.verify_probe(probes, k))
    }

    fn charge_checksum_encode(&mut self, m: usize, n: usize, k: usize) -> Result<()> {
        self.guard(|e| e.charge_checksum_encode(m, n, k))
    }

    fn verify_integrity(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        outcome: super::IntegrityOutcome,
    ) -> Result<()> {
        self.guard(|e| e.verify_integrity(m, n, k, outcome))
    }

    fn take_sdc_events(&mut self) -> Vec<rlra_gpu::SdcEvent> {
        self.inner.take_sdc_events()
    }

    fn elapsed(&self) -> f64 {
        self.inner.elapsed()
    }

    fn tracer(&self) -> Option<Tracer> {
        self.inner.tracer()
    }

    fn charge_recovery(&mut self, secs: f64) {
        self.inner.charge_recovery(secs);
    }

    fn charge_speculation(&mut self, device: usize, secs: f64) {
        self.inner.charge_speculation(device, secs);
    }

    fn device_load(&self) -> Vec<(usize, f64, u64)> {
        self.inner.device_load()
    }

    fn mitigate_straggler(&mut self, device: usize) -> Result<f64> {
        self.speculate_on(device)
    }

    fn checkpoint_hook(&mut self, bytes: u64) -> Result<()> {
        self.guard(|e| e.checkpoint_hook(bytes))
    }

    fn export_account(&mut self) -> Result<Vec<u8>> {
        // The wrapper carries run state of its own (retry and
        // speculation counters feed the final report), so the blob is
        // the wrapper's counters followed by the inner backend's blob.
        let inner = self.inner.export_account()?;
        let mut w = crate::checkpoint::SnapWriter::new();
        w.write_u64(self.retries);
        w.write_usize(self.devices_lost);
        w.write_usize(self.loss_log.len());
        for &(device, at) in &self.loss_log {
            w.write_usize(device);
            w.write_f64(at);
        }
        w.write_u64(self.jitter_draws);
        w.write_u64(self.speculations);
        w.write_f64(self.speculation_saved);
        w.write_bool(self.watchdog_armed);
        w.write_usizes(&self.speculated);
        w.write_bytes(&inner);
        Ok(w.into_bytes())
    }

    fn restore_account(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = crate::checkpoint::SnapReader::new(bytes);
        let retries = r.read_u64()?;
        let devices_lost = r.read_usize()?;
        let n_losses = r.read_usize()?;
        if n_losses > r.remaining() {
            return Err(MatrixError::CheckpointCorrupt {
                detail: "recovery loss log length implausible",
            });
        }
        let mut loss_log = Vec::with_capacity(n_losses);
        for _ in 0..n_losses {
            let device = r.read_usize()?;
            let at = r.read_f64()?;
            loss_log.push((device, at));
        }
        let jitter_draws = r.read_u64()?;
        let speculations = r.read_u64()?;
        let speculation_saved = r.read_f64()?;
        let watchdog_armed = r.read_bool()?;
        let speculated = r.read_usizes()?;
        let inner = r.read_bytes()?;
        if r.remaining() != 0 {
            return Err(MatrixError::CheckpointCorrupt {
                detail: "trailing bytes in recovery account blob",
            });
        }
        self.inner.restore_account(&inner)?;
        self.retries = retries;
        self.devices_lost = devices_lost;
        self.loss_log = loss_log;
        self.jitter_draws = jitter_draws;
        self.speculations = speculations;
        self.speculation_saved = speculation_saved;
        self.watchdog_armed = watchdog_armed;
        self.speculated = speculated;
        Ok(())
    }

    fn recover_device_loss(&mut self, device: usize, at: u64) -> Result<()> {
        self.inner.recover_device_loss(device, at)
    }

    fn finish(&mut self) -> Result<ExecReport> {
        let mut report = self.inner.finish()?;
        report.retries += self.retries;
        report.devices_lost += self.devices_lost;
        report.speculations += self.speculations;
        report.metrics.retries += self.retries;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_gpu::Timeline;

    /// Scripted executor: fails `gaussian_sample` with the queued faults
    /// in order, then succeeds. Records recovery calls.
    struct Scripted {
        faults: Vec<MatrixError>,
        recovery_faults: Vec<MatrixError>,
        recovered: Vec<(usize, u64)>,
        backoff_charged: f64,
        recoverable: bool,
        load: Vec<(usize, f64, u64)>,
        mitigated: Vec<usize>,
        mitigable: bool,
    }

    impl Scripted {
        fn new(faults: Vec<MatrixError>, recoverable: bool) -> Self {
            Scripted {
                faults,
                recovery_faults: Vec::new(),
                recovered: Vec::new(),
                backoff_charged: 0.0,
                recoverable,
                load: Vec::new(),
                mitigated: Vec::new(),
                mitigable: false,
            }
        }

        /// Fixed per-device load the watchdog will observe.
        fn with_load(mut self, load: Vec<(usize, f64, u64)>, mitigable: bool) -> Self {
            self.load = load;
            self.mitigable = mitigable;
            self
        }

        /// Faults that strike *during* `recover_device_loss`, in order.
        fn with_recovery_faults(mut self, faults: Vec<MatrixError>) -> Self {
            self.recovery_faults = faults;
            self
        }
    }

    impl Executor for Scripted {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn computes(&self) -> bool {
            false
        }
        fn supports(&self, _cfg: &SamplerConfig, _has_values: bool) -> Result<()> {
            Ok(())
        }
        fn begin(&mut self, _m: usize, _n: usize) {}
        fn gaussian_sample(&mut self, _l: usize) -> Result<()> {
            if self.faults.is_empty() {
                Ok(())
            } else {
                Err(self.faults.remove(0))
            }
        }
        fn srft_sample_rows(&mut self, _l: usize, _scheme: SrftScheme) -> Result<()> {
            Ok(())
        }
        fn orth_b(&mut self, _l: usize, _reorth: bool) -> Result<()> {
            Ok(())
        }
        fn gemm_to_c(&mut self, _l: usize) -> Result<()> {
            Ok(())
        }
        fn orth_c(&mut self, _l: usize, _reorth: bool) -> Result<()> {
            Ok(())
        }
        fn gemm_to_b(&mut self, _l: usize) -> Result<()> {
            Ok(())
        }
        fn step2_pivot(&mut self, _kind: Step2Kind, _l: usize, _k: usize) -> Result<()> {
            Ok(())
        }
        fn tsqr(&mut self, _k: usize, _reorth: bool) -> Result<()> {
            Ok(())
        }
        fn charge_recovery(&mut self, secs: f64) {
            self.backoff_charged += secs;
        }
        fn recover_device_loss(&mut self, device: usize, at: u64) -> Result<()> {
            if !self.recoverable {
                return Err(MatrixError::Unsupported {
                    backend: "scripted",
                    feature: "device-loss recovery".into(),
                });
            }
            if !self.recovery_faults.is_empty() {
                return Err(self.recovery_faults.remove(0));
            }
            self.recovered.push((device, at));
            Ok(())
        }
        fn device_load(&self) -> Vec<(usize, f64, u64)> {
            self.load.clone()
        }
        fn mitigate_straggler(&mut self, device: usize) -> Result<f64> {
            if !self.mitigable {
                return Err(MatrixError::Unsupported {
                    backend: "scripted",
                    feature: "straggler re-dispatch".into(),
                });
            }
            self.mitigated.push(device);
            Ok(1.5)
        }
        fn finish(&mut self) -> Result<ExecReport> {
            Ok(ExecReport {
                seconds: 0.0,
                timeline: Timeline::new(),
                launches: 0,
                syncs: 0,
                comms: 0.0,
                devices: 1,
                faults_injected: 0,
                retries: 0,
                recovery_seconds: 0.0,
                devices_lost: 0,
                breakdowns: 0,
                fallbacks: 0,
                ladder_histogram: [0; 3],
                speculations: 0,
                sdc_injected: 0,
                sdc_detected: 0,
                sdc_corrected: 0,
                sdc_rollbacks: 0,
                metrics: rlra_trace::Metrics::default(),
            })
        }
    }

    fn transient(at: u64) -> MatrixError {
        MatrixError::DeviceFault {
            device: 0,
            kind: DeviceFaultKind::Transient,
            at,
        }
    }

    fn fail_stop(device: usize, at: u64) -> MatrixError {
        MatrixError::DeviceFault {
            device,
            kind: DeviceFaultKind::FailStop,
            at,
        }
    }

    #[test]
    fn transients_within_budget_are_retried_with_backoff() {
        let inner = Scripted::new(vec![transient(1), transient(2)], true);
        let mut rec = Recovering::new(inner, RecoveryPolicy::default());
        rec.gaussian_sample(8).unwrap();
        assert_eq!(rec.retries(), 2);
        let policy = RecoveryPolicy::default();
        let expected = policy.jittered_backoff(0, 0) + policy.jittered_backoff(1, 1);
        assert!((rec.into_inner().backoff_charged - expected).abs() < 1e-15);
    }

    #[test]
    fn jittered_backoff_is_deterministic_and_banded() {
        let policy = RecoveryPolicy::default();
        for draw in 0..64u64 {
            let a = policy.jittered_backoff(1, draw);
            let b = policy.jittered_backoff(1, draw);
            assert_eq!(a.to_bits(), b.to_bits(), "jitter must be a pure function");
            let base = policy.backoff(1);
            assert!(a >= base * (1.0 - policy.jitter_frac));
            assert!(a < base * (1.0 + policy.jitter_frac));
        }
        // Different draws (and salts) actually decorrelate.
        assert_ne!(
            policy.jittered_backoff(0, 0).to_bits(),
            policy.jittered_backoff(0, 1).to_bits()
        );
        let salted = RecoveryPolicy {
            jitter_salt: 7,
            ..RecoveryPolicy::default()
        };
        assert_ne!(
            policy.jittered_backoff(0, 0).to_bits(),
            salted.jittered_backoff(0, 0).to_bits()
        );
    }

    #[test]
    fn watchdog_races_the_straggler_once() {
        // Device 2 runs each launch 5× the fleet median; threshold 3.
        let load = vec![(0, 10.0, 10), (1, 11.0, 10), (2, 50.0, 10)];
        let inner = Scripted::new(Vec::new(), true).with_load(load, true);
        let policy = RecoveryPolicy {
            straggler_threshold: Some(3.0),
            ..RecoveryPolicy::default()
        };
        let mut rec = Recovering::new(inner, policy);
        rec.gaussian_sample(8).unwrap();
        // Load is unchanged on the scripted backend, but the device was
        // already raced: the second boundary must not re-trip.
        rec.orth_b(8, false).unwrap();
        assert_eq!(rec.speculations(), 1);
        assert!((rec.speculation_saved() - 1.5).abs() < 1e-15);
        let report = rec.finish().unwrap();
        assert_eq!(report.speculations, 1);
        assert_eq!(rec.into_inner().mitigated, vec![2]);
    }

    #[test]
    fn watchdog_disarms_on_unsupported_backends() {
        let load = vec![(0, 10.0, 10), (1, 50.0, 10)];
        let inner = Scripted::new(Vec::new(), true).with_load(load, false);
        let policy = RecoveryPolicy {
            straggler_threshold: Some(3.0),
            ..RecoveryPolicy::default()
        };
        let mut rec = Recovering::new(inner, policy);
        // The refusal is absorbed, the run continues, nothing counted.
        rec.gaussian_sample(8).unwrap();
        rec.orth_b(8, false).unwrap();
        assert_eq!(rec.speculations(), 0);
    }

    #[test]
    fn watchdog_off_by_default_never_probes() {
        let load = vec![(0, 10.0, 10), (1, 500.0, 10)];
        let inner = Scripted::new(Vec::new(), true).with_load(load, true);
        let mut rec = Recovering::new(inner, RecoveryPolicy::default());
        rec.gaussian_sample(8).unwrap();
        assert_eq!(rec.speculations(), 0);
        assert!(rec.into_inner().mitigated.is_empty());
    }

    #[test]
    fn exhausted_retry_budget_propagates_the_fault() {
        let faults = (0..4).map(transient).collect();
        let inner = Scripted::new(faults, true);
        let policy = RecoveryPolicy {
            retry_budget: 3,
            ..RecoveryPolicy::default()
        };
        let mut rec = Recovering::new(inner, policy);
        let err = rec.gaussian_sample(8).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::DeviceFault {
                kind: DeviceFaultKind::Transient,
                ..
            }
        ));
        assert_eq!(rec.retries(), 3);
    }

    #[test]
    fn fail_stop_recovers_and_is_counted_in_the_report() {
        let inner = Scripted::new(vec![fail_stop(1, 42)], true);
        let mut rec = Recovering::new(inner, RecoveryPolicy::default());
        rec.gaussian_sample(8).unwrap();
        assert_eq!(rec.devices_lost(), 1);
        assert_eq!(rec.loss_log().len(), 1);
        assert_eq!(rec.loss_log()[0].0, 1);
        let report = rec.finish().unwrap();
        assert_eq!(report.devices_lost, 1);
        assert_eq!(report.retries, 0);
        assert_eq!(rec.into_inner().recovered, vec![(1, 42)]);
    }

    #[test]
    fn fail_stop_resets_the_transient_budget() {
        // budget 1: transient, fail-stop, transient — the second
        // transient only survives because the loss reset the budget.
        let inner = Scripted::new(vec![transient(1), fail_stop(0, 2), transient(3)], true);
        let policy = RecoveryPolicy {
            retry_budget: 1,
            ..RecoveryPolicy::default()
        };
        let mut rec = Recovering::new(inner, policy);
        rec.gaussian_sample(8).unwrap();
        assert_eq!(rec.retries(), 2);
        assert_eq!(rec.devices_lost(), 1);
    }

    #[test]
    fn faults_during_recovery_are_absorbed() {
        // A fail-stop whose recovery is first interrupted by a transient
        // (retried) and then by a second fail-stop (recovered first,
        // nested), before finally going through.
        let inner = Scripted::new(vec![fail_stop(0, 5)], true)
            .with_recovery_faults(vec![transient(6), fail_stop(1, 6)]);
        let mut rec = Recovering::new(inner, RecoveryPolicy::default());
        rec.gaussian_sample(8).unwrap();
        assert_eq!(rec.retries(), 1);
        assert_eq!(rec.devices_lost(), 2);
        // The nested loss completes its recovery before the original.
        assert_eq!(rec.into_inner().recovered, vec![(1, 6), (0, 5)]);
    }

    #[test]
    fn unrecoverable_loss_propagates() {
        let inner = Scripted::new(vec![fail_stop(0, 7)], false);
        let mut rec = Recovering::new(inner, RecoveryPolicy::default());
        assert!(rec.gaussian_sample(8).is_err());
    }

    #[test]
    fn silent_corruption_is_never_transient_retried() {
        // The double-counting seam: a corruption repair belongs to the
        // integrity guard's `sdc_corrected`, never to `retries` — if the
        // wrapper absorbed it as a transient, the same incident would be
        // billed twice (a backoff here, a correction there) and healthy
        // stages would re-run around a still-poisoned buffer.
        let inner = Scripted::new(
            vec![MatrixError::SilentCorruption {
                device: 3,
                kernel: "sketch",
                location: (1, 2),
            }],
            true,
        );
        let mut rec = Recovering::new(inner, RecoveryPolicy::default());
        let err = rec.gaussian_sample(8).unwrap_err();
        assert!(matches!(
            err,
            MatrixError::SilentCorruption {
                device: 3,
                kernel: "sketch",
                location: (1, 2),
            }
        ));
        assert_eq!(rec.retries(), 0);
        let report = rec.finish().unwrap();
        assert_eq!(report.retries, 0);
        assert_eq!(report.sdc_corrected, 0);
        assert_eq!(rec.into_inner().backoff_charged, 0.0);
    }

    #[test]
    fn non_fault_errors_pass_through() {
        let inner = Scripted::new(
            vec![MatrixError::Internal {
                op: "x",
                invariant: "y",
            }],
            true,
        );
        let mut rec = Recovering::new(inner, RecoveryPolicy::default());
        assert!(matches!(
            rec.gaussian_sample(8).unwrap_err(),
            MatrixError::Internal { .. }
        ));
        assert_eq!(rec.retries(), 0);
    }
}
