//! The CPU reference backend: numerics only, no device accounting.

use super::{ExecReport, Executor, IntegrityOutcome};
use crate::config::SamplerConfig;
use rlra_fft::SrftScheme;
use rlra_gpu::{SdcEvent, SdcInjector, Timeline};
use rlra_matrix::Result;

/// Host-only execution: the pipeline's numerics *are* the work, so every
/// hook is a no-op and the report is empty.
///
/// The one piece of device machinery the CPU backend does carry is an
/// optional [`SdcInjector`]: silent corruption is a *data* fault, not an
/// accounting artifact, so the cross-backend bit-identity tests need to
/// fire the same deterministic events here as on the simulated devices.
/// With no launch stream to watch, the injector is polled once per
/// [`Executor::take_sdc_events`] call with an advancing ordinal — plans
/// aimed at the CPU backend use `at_launch: 0` so events fire at the
/// first guarded sync.
#[derive(Debug, Default)]
pub struct CpuExec {
    /// Planned silent-corruption events for this (device-less) run.
    sdc: Option<SdcInjector>,
    /// Poll ordinal standing in for the launch counter devices have.
    polls: u64,
}

impl CpuExec {
    /// Creates the CPU backend.
    pub fn new() -> Self {
        CpuExec::default()
    }

    /// Installs (or clears) a silent-data-corruption injector; mirrors
    /// [`rlra_gpu::Gpu::set_sdc_injector`] so tests and benches can arm
    /// every backend the same way.
    pub fn set_sdc_injector(&mut self, sdc: Option<SdcInjector>) {
        self.sdc = sdc;
    }
}

// analyze: allow(cost, host numerics are the work; there is no device to charge)
impl Executor for CpuExec {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn computes(&self) -> bool {
        true
    }

    fn supports(&self, _cfg: &SamplerConfig, _has_values: bool) -> Result<()> {
        Ok(())
    }

    fn begin(&mut self, _m: usize, _n: usize) {}

    fn gaussian_sample(&mut self, _l: usize) -> Result<()> {
        Ok(())
    }

    fn srft_sample_rows(&mut self, _l: usize, _scheme: SrftScheme) -> Result<()> {
        Ok(())
    }

    fn orth_b(&mut self, _l: usize, _reorth: bool) -> Result<()> {
        Ok(())
    }

    fn gemm_to_c(&mut self, _l: usize) -> Result<()> {
        Ok(())
    }

    fn orth_c(&mut self, _l: usize, _reorth: bool) -> Result<()> {
        Ok(())
    }

    fn gemm_to_b(&mut self, _l: usize) -> Result<()> {
        Ok(())
    }

    fn step2_pivot(&mut self, _kind: crate::config::Step2Kind, _l: usize, _k: usize) -> Result<()> {
        Ok(())
    }

    fn tsqr(&mut self, _k: usize, _reorth: bool) -> Result<()> {
        Ok(())
    }

    fn supports_adaptive(&self) -> bool {
        true
    }

    // Every hook is implemented explicitly (not left to the trait's
    // silent defaults) so the hook-parity lint can tell a deliberate
    // host no-op from a forgotten backend impl.

    fn adaptive_draw(&mut self, _l_inc: usize) -> Result<()> {
        Ok(())
    }

    fn adaptive_orth(
        &mut self,
        _rows: usize,
        _cols: usize,
        _l_prev: usize,
        _reorth: bool,
    ) -> Result<()> {
        Ok(())
    }

    fn adaptive_gemm_c(&mut self, _l_new: usize) -> Result<()> {
        Ok(())
    }

    fn adaptive_gemm_w(&mut self, _l_new: usize) -> Result<()> {
        Ok(())
    }

    fn adaptive_probe(&mut self, _next_inc: usize, _l_now: usize) -> Result<()> {
        Ok(())
    }

    fn adaptive_finish(&mut self, _k: usize) -> Result<()> {
        Ok(())
    }

    fn adaptive_update_pivot(
        &mut self,
        _l_rows: usize,
        _n_trail: usize,
        _k_b: usize,
    ) -> Result<()> {
        Ok(())
    }

    fn adaptive_update_panel(&mut self, _k_b: usize, _k_done: usize) -> Result<()> {
        Ok(())
    }

    fn adaptive_update_trailing(&mut self, _k_b: usize, _n_trail: usize) -> Result<()> {
        Ok(())
    }

    fn charge_fallback(
        &mut self,
        _rows: usize,
        _cols: usize,
        _rung: super::Rung,
        _reorth: bool,
    ) -> Result<()> {
        Ok(())
    }

    fn charge_health_check(&mut self, _rows: usize, _cols: usize) -> Result<()> {
        Ok(())
    }

    fn verify_probe(&mut self, _probes: usize, _k: usize) -> Result<()> {
        Ok(())
    }

    fn charge_checksum_encode(&mut self, _m: usize, _n: usize, _k: usize) -> Result<()> {
        Ok(())
    }

    fn verify_integrity(
        &mut self,
        _m: usize,
        _n: usize,
        _k: usize,
        _outcome: IntegrityOutcome,
    ) -> Result<()> {
        Ok(())
    }

    fn take_sdc_events(&mut self) -> Vec<SdcEvent> {
        let mut fired = Vec::new();
        if let Some(sdc) = self.sdc.as_mut() {
            while let Some(ev) = sdc.poll(self.polls) {
                fired.push(ev);
            }
        }
        self.polls += 1;
        fired
    }

    fn charge_recovery(&mut self, _secs: f64) {}

    fn charge_speculation(&mut self, _device: usize, _secs: f64) {}

    fn checkpoint_hook(&mut self, _bytes: u64) -> Result<()> {
        Ok(())
    }

    fn export_account(&mut self) -> Result<Vec<u8>> {
        // No clocks, no counters: the CPU account is the empty blob.
        Ok(Vec::new())
    }

    fn restore_account(&mut self, bytes: &[u8]) -> Result<()> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(rlra_matrix::MatrixError::CheckpointCorrupt {
                detail: "cpu account blob must be empty",
            })
        }
    }

    fn finish(&mut self) -> Result<ExecReport> {
        Ok(ExecReport {
            seconds: 0.0,
            timeline: Timeline::new(),
            launches: 0,
            syncs: 0,
            comms: 0.0,
            devices: 0,
            faults_injected: 0,
            retries: 0,
            recovery_seconds: 0.0,
            devices_lost: 0,
            breakdowns: 0,
            fallbacks: 0,
            ladder_histogram: [0; 3],
            speculations: 0,
            sdc_injected: self.sdc.as_ref().map(SdcInjector::fired).unwrap_or(0),
            sdc_detected: 0,
            sdc_corrected: 0,
            sdc_rollbacks: 0,
            metrics: rlra_trace::Metrics::default(),
        })
    }
}
