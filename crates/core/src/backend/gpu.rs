//! The single-GPU backend (paper §3, Figures 11–14).
//!
//! Drives the real `rlra-gpu` kernels on an internal dry-run simulator
//! with the caller's device spec, then folds the accounting into the
//! caller's [`Gpu`] when the run finishes. The caller's execution mode
//! only decides whether the pipeline materializes values; the cost
//! accounting is identical either way.

use super::{ExecReport, Executor, IntegrityOutcome};
use crate::config::{SamplerConfig, Step2Kind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_blas::Trans;
use rlra_fft::{SrftOperator, SrftScheme};
use rlra_gpu::algos::{gpu_cholqr, gpu_cholqr_rows, gpu_qp3_truncated, gpu_tournament_qrcp};
use rlra_gpu::{DMat, ExecMode, Gpu, Phase};
use rlra_matrix::{MatrixError, Result};
use rlra_trace::{Metrics, Tracer};

/// Single-GPU execution backend.
pub struct GpuExec<'a> {
    gpu: &'a mut Gpu,
    sim: Gpu,
    a_sim: Option<DMat>,
    m: usize,
    n: usize,
}

impl std::fmt::Debug for GpuExec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuExec")
            .field("m", &self.m)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<'a> GpuExec<'a> {
    /// Creates the backend for the given (caller-owned) GPU context.
    ///
    /// A fault injector installed on the caller's GPU is moved into the
    /// internal simulator for the duration of the run (and moved back by
    /// [`Executor::finish`]), so planned faults fire against the timed
    /// launches.
    pub fn new(gpu: &'a mut Gpu) -> Self {
        let mut sim = Gpu::new(gpu.cost().spec().clone(), ExecMode::DryRun);
        sim.set_device(gpu.device());
        if let Some(inj) = gpu.take_injector() {
            sim.set_injector(Some(inj));
        }
        // The SDC injector watches the same timed launch stream.
        if let Some(sdc) = gpu.take_sdc_injector() {
            sim.set_sdc_injector(Some(sdc));
        }
        // Like the injector, the tracer observes the timed launches, so
        // it follows them into the simulator (and back at finish).
        if let Some(tr) = gpu.take_tracer() {
            sim.set_tracer(Some(tr));
        }
        GpuExec {
            gpu,
            sim,
            a_sim: None,
            m: 0,
            n: 0,
        }
    }

    /// The simulator burns its own (throwaway) RNG stream; the user
    /// stream is consumed once, by the pipeline.
    fn dummy_rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }
}

/// The resident operand, present between `begin` and `finish`. A free
/// function over the field (not a method) so the returned borrow stays
/// disjoint from `self.sim`.
fn resident(a_sim: &Option<DMat>) -> Result<&DMat> {
    a_sim.as_ref().ok_or(MatrixError::Internal {
        op: "GpuExec",
        invariant: "stage hook called before begin()",
    })
}

impl Executor for GpuExec<'_> {
    fn name(&self) -> &'static str {
        "gpu"
    }

    fn computes(&self) -> bool {
        self.gpu.mode() == ExecMode::Compute
    }

    fn supports(&self, _cfg: &SamplerConfig, _has_values: bool) -> Result<()> {
        Ok(())
    }

    fn begin(&mut self, m: usize, n: usize) {
        self.m = m;
        self.n = n;
        self.a_sim = Some(self.sim.resident_shape(m, n));
    }

    fn gaussian_sample(&mut self, l: usize) -> Result<()> {
        let omega = self
            .sim
            .curand_gaussian(Phase::Prng, l, self.m, &mut Self::dummy_rng())?;
        let mut b = self.sim.alloc(l, self.n);
        let a = resident(&self.a_sim)?;
        self.sim.gemm(
            Phase::Sampling,
            1.0,
            &omega,
            Trans::No,
            a,
            Trans::No,
            0.0,
            &mut b,
        )?;
        Ok(())
    }

    fn srft_sample_rows(&mut self, l: usize, scheme: SrftScheme) -> Result<()> {
        let op = SrftOperator::new(self.m, l, scheme, &mut Self::dummy_rng())?;
        let a = resident(&self.a_sim)?;
        self.sim.cufft_sample_rows(Phase::Sampling, &op, a)?;
        Ok(())
    }

    fn orth_b(&mut self, l: usize, reorth: bool) -> Result<()> {
        let b = self.sim.resident_shape(l, self.n);
        gpu_cholqr_rows(&mut self.sim, Phase::OrthIter, &b, reorth)?;
        Ok(())
    }

    fn gemm_to_c(&mut self, l: usize) -> Result<()> {
        let bq = self.sim.resident_shape(l, self.n);
        let mut c = self.sim.alloc(l, self.m);
        let a = resident(&self.a_sim)?;
        self.sim.gemm(
            Phase::GemmIter,
            1.0,
            &bq,
            Trans::No,
            a,
            Trans::Yes,
            0.0,
            &mut c,
        )?;
        Ok(())
    }

    fn orth_c(&mut self, l: usize, reorth: bool) -> Result<()> {
        let c = self.sim.resident_shape(l, self.m);
        gpu_cholqr_rows(&mut self.sim, Phase::OrthIter, &c, reorth)?;
        Ok(())
    }

    fn gemm_to_b(&mut self, l: usize) -> Result<()> {
        let cq = self.sim.resident_shape(l, self.m);
        let mut b = self.sim.alloc(l, self.n);
        let a = resident(&self.a_sim)?;
        self.sim.gemm(
            Phase::GemmIter,
            1.0,
            &cq,
            Trans::No,
            a,
            Trans::No,
            0.0,
            &mut b,
        )?;
        Ok(())
    }

    fn step2_pivot(&mut self, kind: Step2Kind, l: usize, k: usize) -> Result<()> {
        let b = self.sim.resident_shape(l, self.n);
        match kind {
            Step2Kind::Qp3 => {
                gpu_qp3_truncated(&mut self.sim, Phase::Qrcp, &b, k)?;
            }
            Step2Kind::Tournament => {
                gpu_tournament_qrcp(&mut self.sim, Phase::Qrcp, &b, k)?;
            }
        }
        // T = R̂₁:ₖ⁻¹·R̂ₖ₊₁:ₙ on the device (Figure 2b, Line 9).
        if self.n > k {
            let nrhs = self.n - k;
            self.sim.charge_kernel(
                Phase::Qrcp,
                "trsm",
                [k, nrhs, k],
                (k * k * nrhs) as f64,
                8.0 * (k * k / 2 + 2 * k * nrhs) as f64,
                self.sim.cost().trsm(k, nrhs),
            );
        }
        Ok(())
    }

    fn tsqr(&mut self, k: usize, reorth: bool) -> Result<()> {
        // Gathering the k pivot columns is a device-side copy.
        self.sim.charge_kernel(
            Phase::Qr,
            "gather",
            [self.m, k, 0],
            0.0,
            16.0 * (self.m * k) as f64,
            self.sim.cost().blas1(self.m * k, 2.0),
        );
        let ap1k = self.sim.resident_shape(self.m, k);
        gpu_cholqr(&mut self.sim, Phase::Qr, &ap1k, reorth)?;
        // R = R̄·[I | T] (Line 10): triangular multiply on the device.
        self.sim.charge_kernel(
            Phase::Qr,
            "trmm",
            [k, self.n, k],
            (k * k * self.n) as f64,
            8.0 * (k * k / 2 + 2 * k * self.n) as f64,
            self.sim.cost().trsm(k, self.n),
        );
        Ok(())
    }

    fn supports_adaptive(&self) -> bool {
        true
    }

    fn adaptive_draw(&mut self, l_inc: usize) -> Result<()> {
        let omega = self
            .sim
            .curand_gaussian(Phase::Prng, l_inc, self.m, &mut Self::dummy_rng())?;
        let mut w = self.sim.alloc(l_inc, self.n);
        let a = resident(&self.a_sim)?;
        self.sim.gemm(
            Phase::Sampling,
            1.0,
            &omega,
            Trans::No,
            a,
            Trans::No,
            0.0,
            &mut w,
        )?;
        Ok(())
    }

    fn adaptive_orth(
        &mut self,
        rows: usize,
        cols: usize,
        l_prev: usize,
        reorth: bool,
    ) -> Result<()> {
        // Block-orthogonalization against the accepted basis (two GEMMs
        // per pass) plus the block's own CholQR.
        let passes = if reorth { 2 } else { 1 };
        if l_prev > 0 {
            for _ in 0..passes {
                self.sim
                    .charge(Phase::OrthIter, self.sim.cost().gemm(rows, l_prev, cols));
                self.sim
                    .charge(Phase::OrthIter, self.sim.cost().gemm(rows, cols, l_prev));
            }
        }
        for _ in 0..passes {
            self.sim
                .charge(Phase::OrthIter, self.sim.cost().syrk(rows, cols));
            self.sim
                .charge(Phase::OrthIter, self.sim.cost().host_cholesky(rows));
            self.sim
                .charge(Phase::OrthIter, self.sim.cost().trsm(rows, cols));
        }
        Ok(())
    }

    fn adaptive_gemm_c(&mut self, l_new: usize) -> Result<()> {
        let wd = self.sim.resident_shape(l_new, self.n);
        let mut c = self.sim.alloc(l_new, self.m);
        let a = resident(&self.a_sim)?;
        self.sim.gemm(
            Phase::GemmIter,
            1.0,
            &wd,
            Trans::No,
            a,
            Trans::Yes,
            0.0,
            &mut c,
        )?;
        Ok(())
    }

    fn adaptive_gemm_w(&mut self, l_new: usize) -> Result<()> {
        let cd = self.sim.resident_shape(l_new, self.m);
        let mut w = self.sim.alloc(l_new, self.n);
        let a = resident(&self.a_sim)?;
        self.sim.gemm(
            Phase::GemmIter,
            1.0,
            &cd,
            Trans::No,
            a,
            Trans::No,
            0.0,
            &mut w,
        )?;
        Ok(())
    }

    fn adaptive_probe(&mut self, next_inc: usize, l_now: usize) -> Result<()> {
        // ε̃ = max row-residual (small GEMMs, charged as Other).
        self.sim.charge(
            Phase::Other,
            self.sim.cost().gemm(next_inc, l_now, self.n)
                + self.sim.cost().gemm(next_inc, self.n, l_now),
        );
        Ok(())
    }

    fn adaptive_finish(&mut self, k: usize) -> Result<()> {
        self.sim
            .charge(Phase::Qrcp, self.sim.cost().gemv(k, self.n) * k as f64); // truncated QP3 skeleton
        self.sim.charge(
            Phase::Qr,
            self.sim.cost().syrk(k, self.m) + self.sim.cost().trsm(k, self.m),
        );
        Ok(())
    }

    fn adaptive_update_pivot(&mut self, l_rows: usize, n_trail: usize, k_b: usize) -> Result<()> {
        if n_trail == 0 || k_b == 0 {
            return Ok(());
        }
        // Hybrid QP3 (paper §6): the accumulated sample panel is device
        // resident, so the trailing-sample update runs there — CholQR of
        // the l_rows × k_done lead block and the two projection gemms
        // that downdate the trailing columns. Only the downdated
        // l_rows × n_trail panel is downloaded for the truncated blocked
        // QP3 on the host (it is too skinny to pivot on the device), and
        // the pivot order comes back up.
        let k_done = self.n - n_trail;
        if k_done > 0 {
            self.sim.charge(
                Phase::Qrcp,
                self.sim.cost().syrk(k_done, l_rows)
                    + self.sim.cost().host_cholesky(k_done)
                    + self.sim.cost().trsm(k_done, l_rows)
                    + self.sim.cost().gemm(k_done, n_trail, l_rows)
                    + self.sim.cost().gemm(l_rows, n_trail, k_done),
            );
        }
        self.sim.charge(
            Phase::Qrcp,
            self.sim.cost().transfer(8 * (l_rows * n_trail) as u64)
                + self
                    .sim
                    .cost()
                    .host_flops(4.0 * (l_rows * k_b) as f64 * n_trail as f64)
                + self.sim.cost().transfer(8 * n_trail as u64),
        );
        Ok(())
    }

    fn adaptive_update_panel(&mut self, k_b: usize, k_done: usize) -> Result<()> {
        if k_b == 0 {
            return Ok(());
        }
        // Gather the k_b new pivot columns of A (device-side copy).
        self.sim.charge_kernel(
            Phase::Qr,
            "gather",
            [self.m, k_b, 0],
            0.0,
            16.0 * (self.m * k_b) as f64,
            self.sim.cost().blas1(self.m * k_b, 2.0),
        );
        // Project against the accepted panels, twice ("twice is
        // enough"): coef = Qᵀ·panel, panel -= Q·coef, per pass.
        if k_done > 0 {
            for _ in 0..2 {
                self.sim
                    .charge(Phase::Qr, self.sim.cost().gemm(k_done, k_b, self.m));
                self.sim
                    .charge(Phase::Qr, self.sim.cost().gemm(self.m, k_b, k_done));
            }
        }
        // CholQR of the m × k_b remainder; the Gram matrix is formed with
        // GEMM, not SYRK — at panel widths the SYRK tile shape is too
        // small to keep the device busy.
        self.sim
            .charge(Phase::Qr, self.sim.cost().gemm(k_b, k_b, self.m));
        self.sim
            .charge(Phase::Qr, self.sim.cost().host_cholesky(k_b));
        self.sim
            .charge(Phase::Qr, self.sim.cost().trsm(k_b, self.m));
        Ok(())
    }

    fn adaptive_update_trailing(&mut self, k_b: usize, n_trail: usize) -> Result<()> {
        if k_b == 0 || n_trail <= k_b {
            return Ok(());
        }
        // Exact trailing coupling Q_newᵀ·A_rest: gather the still-trailing
        // columns of A (device-side copy), then one wide GEMM with the
        // tall inner dimension m.
        let n_rest = n_trail - k_b;
        self.sim.charge_kernel(
            Phase::Qr,
            "gather",
            [self.m, n_rest, 0],
            0.0,
            16.0 * (self.m * n_rest) as f64,
            self.sim.cost().blas1(self.m * n_rest, 2.0),
        );
        self.sim
            .charge(Phase::Qr, self.sim.cost().gemm(k_b, n_rest, self.m));
        Ok(())
    }

    fn charge_fallback(
        &mut self,
        rows: usize,
        cols: usize,
        rung: super::Rung,
        _reorth: bool,
    ) -> Result<()> {
        // The Gram side of the block is its short dimension (rows for
        // the short-wide power-iteration blocks, cols for the tall
        // Step-3 operand).
        let s = rows.min(cols);
        let long = rows.max(cols);
        match rung {
            super::Rung::CholQr => {}
            super::Rung::ShiftedCholQr2 => {
                // Shifted pass + two corrective passes; the diagonal
                // shift itself is a BLAS-1 sweep of the Gram diagonal.
                self.sim
                    .charge(Phase::OrthIter, self.sim.cost().blas1(s, 2.0));
                for _ in 0..3 {
                    self.sim
                        .charge(Phase::OrthIter, self.sim.cost().syrk(s, long));
                    self.sim
                        .charge(Phase::OrthIter, self.sim.cost().host_cholesky(s));
                    self.sim
                        .charge(Phase::OrthIter, self.sim.cost().trsm(s, long));
                }
            }
            super::Rung::Householder => {
                let block = self.sim.resident_shape(long, s);
                rlra_gpu::algos::gpu_hhqr(&mut self.sim, Phase::OrthIter, &block)?;
            }
        }
        Ok(())
    }

    fn charge_health_check(&mut self, rows: usize, cols: usize) -> Result<()> {
        // One streaming read of the block with a device-side reduction.
        self.sim.charge_kernel(
            Phase::Other,
            "health_scan",
            [rows, cols, 0],
            (rows * cols) as f64,
            8.0 * (rows * cols) as f64,
            self.sim.cost().blas1_reduce(rows * cols),
        );
        Ok(())
    }

    fn charge_checksum_encode(&mut self, m: usize, n: usize, k: usize) -> Result<()> {
        // Two operand-sum reductions plus the two rank-1 reference
        // products, all on the device alongside the protected GEMM.
        self.sim.charge_kernel(
            Phase::Integrity,
            "abft",
            [m, n, k],
            rlra_blas::checksum::encode_flops(m, n, k) as f64,
            8.0 * (m * k + k * n + m + n) as f64,
            self.sim.cost().blas1_reduce(m * k)
                + self.sim.cost().blas1_reduce(k * n)
                + self.sim.cost().gemv(k, n)
                + self.sim.cost().gemv(m, k),
        );
        Ok(())
    }

    fn verify_integrity(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        outcome: IntegrityOutcome,
    ) -> Result<()> {
        // Device-side column- and row-sum sweeps over the output panel,
        // then a PCIe download of both digest vectors for the host
        // compare against the encoded references.
        self.sim.charge_kernel(
            Phase::Integrity,
            "abft",
            [m, n, 0],
            rlra_blas::checksum::verify_flops(m, n) as f64,
            8.0 * (m * n) as f64,
            self.sim.cost().blas1_reduce(m * n) * 2.0,
        );
        self.sim.charge(
            Phase::Integrity,
            self.sim.cost().transfer(8 * (m + n) as u64),
        );
        match outcome {
            IntegrityOutcome::Clean => {}
            IntegrityOutcome::Corrected => {
                // Localized repair: one length-k inner product, a
                // single-entry upload, and the re-verify sweep.
                self.sim.charge(
                    Phase::Integrity,
                    self.sim.cost().blas1_reduce(k.max(1))
                        + self.sim.cost().transfer(8)
                        + self.sim.cost().blas1_reduce(m * n) * 2.0,
                );
            }
            IntegrityOutcome::Rerun => {
                // Full re-execution of the poisoned product (k > 0) or
                // of the CholQR pass that produced the block (k == 0),
                // plus the re-verify sweep.
                let redo = if k > 0 {
                    self.sim.cost().gemm(m, n, k)
                } else {
                    self.sim.cost().syrk(m, n)
                        + self.sim.cost().host_cholesky(m)
                        + self.sim.cost().trsm(m, n)
                };
                self.sim.charge(
                    Phase::Integrity,
                    redo + self.sim.cost().blas1_reduce(m * n) * 2.0,
                );
            }
        }
        Ok(())
    }

    fn take_sdc_events(&mut self) -> Vec<rlra_gpu::SdcEvent> {
        self.sim.drain_sdc_events()
    }

    fn verify_probe(&mut self, probes: usize, k: usize) -> Result<()> {
        // Posterior residual probe: Ω·A, Ω·Q and (Ω·Q)·R — three thin
        // GEMMs, charged as Other like the adaptive probe.
        self.sim.charge(
            Phase::Other,
            self.sim.cost().gemm(probes, self.n, self.m)
                + self.sim.cost().gemm(probes, k, self.m)
                + self.sim.cost().gemm(probes, self.n, k),
        );
        Ok(())
    }

    fn elapsed(&self) -> f64 {
        self.sim.clock()
    }

    fn tracer(&self) -> Option<Tracer> {
        self.sim.tracer()
    }

    fn charge_recovery(&mut self, secs: f64) {
        // Backoff is wall-clock waiting, not kernel work: bypass any
        // straggler slowdown.
        self.sim.charge_raw(Phase::Recovery, secs);
    }

    fn charge_speculation(&mut self, _device: usize, secs: f64) {
        // Cancelled speculative work is wall time the fleet really
        // spent; on a single device it lands with the other recovery
        // overhead (no straggler scaling — the loser is already gone).
        self.sim.charge_raw(Phase::Recovery, secs);
    }

    fn device_load(&self) -> Vec<(usize, f64, u64)> {
        let m = self.sim.device_metrics();
        vec![(m.device, m.busy_seconds, m.launches)]
    }

    fn checkpoint_hook(&mut self, bytes: u64) -> Result<()> {
        // Drain the device, then stream the snapshot through the host:
        // one sync plus a host-side serialization pass over the payload.
        self.sim.charge_sync(Phase::Other);
        let secs = self.sim.cost().host_flops(bytes as f64);
        self.sim.charge_raw(Phase::Other, secs);
        Ok(())
    }

    fn export_account(&mut self) -> Result<Vec<u8>> {
        let mut w = crate::checkpoint::SnapWriter::new();
        crate::checkpoint::write_device_account(&mut w, &self.sim.export_account());
        Ok(w.into_bytes())
    }

    fn restore_account(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = crate::checkpoint::SnapReader::new(bytes);
        let acc = crate::checkpoint::read_device_account(&mut r)?;
        if r.remaining() != 0 {
            return Err(MatrixError::CheckpointCorrupt {
                detail: "trailing bytes in gpu account blob",
            });
        }
        self.sim.restore_account(&acc)
    }

    fn finish(&mut self) -> Result<ExecReport> {
        let report = ExecReport {
            seconds: self.sim.clock(),
            timeline: self.sim.timeline().clone(),
            launches: self.sim.launches,
            syncs: self.sim.syncs,
            comms: 0.0,
            devices: 1,
            faults_injected: self.sim.faults_injected(),
            retries: 0,
            recovery_seconds: self.sim.timeline().get(Phase::Recovery),
            devices_lost: 0,
            breakdowns: 0,
            fallbacks: 0,
            ladder_histogram: [0; 3],
            speculations: 0,
            sdc_injected: self.sim.sdc_injected(),
            sdc_detected: 0,
            sdc_corrected: 0,
            sdc_rollbacks: 0,
            metrics: Metrics {
                devices: vec![self.sim.device_metrics()],
                retries: 0,
                fallbacks: 0,
            },
        };
        for phase in Phase::ALL {
            let secs = self.sim.timeline().get(phase);
            if secs > 0.0 {
                // The sim already applied any straggler slowdown; fold the
                // inflated seconds verbatim.
                self.gpu.charge_raw(phase, secs);
            }
        }
        self.gpu.launches += self.sim.launches;
        self.gpu.syncs += self.sim.syncs;
        self.gpu.absorb_metrics(&self.sim);
        if let Some((device, at)) = self.sim.dead_info() {
            self.gpu.mark_dead(device, at);
        }
        if let Some(inj) = self.sim.take_injector() {
            self.gpu.set_injector(Some(inj));
        }
        // Undrained SDC events (fired but never consumed by a guard) go
        // back to the caller so nothing is silently dropped; the
        // injector follows them home.
        self.gpu.requeue_sdc_events(self.sim.drain_sdc_events());
        if let Some(sdc) = self.sim.take_sdc_injector() {
            self.gpu.set_sdc_injector(Some(sdc));
        }
        if let Some(tr) = self.sim.take_tracer() {
            self.gpu.set_tracer(Some(tr));
        }
        self.sim.reset();
        self.a_sim = None;
        Ok(report)
    }
}
