//! Execution backends for the randomized sampler.
//!
//! The paper evaluates the same algorithm (Figure 2b, and the adaptive
//! Figure 3 loop) on several machines: one CPU, one GPU, several GPUs
//! sharing a host, and a distributed-memory cluster. This module factors
//! that variation behind the [`Executor`] trait so the algorithm itself
//! exists **once**, in [`pipeline::run_fixed_rank`] (and once more for
//! the adaptive loop in [`crate::adaptive`]).
//!
//! The split of responsibilities is strict:
//!
//! - The **pipeline owns all numerics.** Every value the algorithm
//!   produces — the sampled matrix, the power-iteration updates, the
//!   Step 2 pivoting, the tall-skinny QR — is computed on host matrices
//!   with the same kernels the CPU reference uses. A consequence worth
//!   the discipline: every computing backend returns **bit-identical**
//!   factors for the same seed.
//! - The **executor owns all accounting.** Each hook charges the
//!   simulated machine with the kernels, collectives and barriers that
//!   step costs on its hardware. The single- and multi-GPU executors do
//!   this by driving the real `rlra-gpu` kernels on an internal dry-run
//!   context and folding the result into the caller's context when the
//!   run finishes; the cluster executor charges the caller's
//!   (dry-run-only) cluster directly.
//!
//! # Examples
//!
//! Running the sampler on the CPU backend:
//!
//! ```
//! use rand::SeedableRng;
//! use rlra_core::backend::{run_fixed_rank, CpuExec, Input};
//! use rlra_core::SamplerConfig;
//! use rlra_matrix::{gaussian_mat, Mat};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let a = gaussian_mat(40, 20, &mut rng);
//! let cfg = SamplerConfig::new(4).with_p(4);
//! let mut exec = CpuExec::new();
//! let (approx, report) = run_fixed_rank(&mut exec, Input::Values(&a), &cfg, &mut rng).unwrap();
//! let approx = approx.unwrap();
//! assert_eq!(approx.q.shape(), (40, 4));
//! assert_eq!(report.devices, 0); // no accelerator involved
//! ```
//!
//! Timing the same run on a simulated GPU (dry run, shape-only input):
//!
//! ```
//! use rand::SeedableRng;
//! use rlra_core::backend::{run_fixed_rank, GpuExec, Input};
//! use rlra_core::SamplerConfig;
//!
//! let mut gpu = rlra_gpu::Gpu::k40c_dry();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
//! let mut exec = GpuExec::new(&mut gpu);
//! let (approx, report) =
//!     run_fixed_rank(&mut exec, Input::Shape(50_000, 2_500), &cfg, &mut rng).unwrap();
//! assert!(approx.is_none()); // dry run: timing only
//! assert!(report.seconds > 0.0);
//! ```

mod cluster;
mod cpu;
mod gpu;
mod guard;
mod integrity;
mod multi;
mod pipeline;
mod recovery;

pub use cluster::ClusterExec;
pub use cpu::CpuExec;
pub use gpu::GpuExec;
pub use guard::{NumericGuard, NumericPolicy, Rung};
pub use integrity::{IntegrityGuard, IntegrityMode, IntegrityOutcome, IntegrityPolicy};
pub use multi::MultiGpuExec;
pub(crate) use pipeline::{
    fixed_rank_finish_stage, fixed_rank_power_stage, fixed_rank_sample_stage, incremental_extend,
    input_scale, posterior_error_bound, staged,
};
pub use pipeline::{
    run_fixed_rank, run_fixed_rank_protected, run_fixed_rank_verified, run_fixed_rank_with_guard,
    run_fixed_rank_with_recovery,
};
pub use recovery::{Recovering, RecoveryPolicy};

use crate::config::{SamplerConfig, Step2Kind};
use rlra_fft::SrftScheme;
use rlra_gpu::Timeline;
use rlra_matrix::{Mat, MatrixError, Result};
use rlra_trace::{Metrics, Tracer};
use std::fmt;

/// Unified timing report of one sampler run on any backend.
///
/// Replaces the per-backend `RunReport` / `MultiRunReport` /
/// `ClusterRunReport` trio; those names remain as aliases.
///
/// `PartialEq` is exact (bit-level) on every field: the cross-backend
/// tests use it to assert that a fault plan which fires no faults leaves
/// the whole report — not just the factors — bit-identical.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Simulated wall-clock seconds (the slowest device).
    pub seconds: f64,
    /// Per-phase breakdown (PRNG / Sampling / GEMM (Iter) / Orth (Iter) /
    /// QRCP / QR / Comms / Recovery, matching the paper's stacked bars;
    /// max across devices where several are involved).
    pub timeline: Timeline,
    /// Kernel launches issued (summed over devices).
    pub launches: u64,
    /// Host synchronizations (summed over devices).
    pub syncs: u64,
    /// Communication/host-transfer seconds (the paper's "Comms" bar;
    /// inter-node seconds on the cluster backend, zero on CPU/single-GPU
    /// — an invariant asserted by the cross-backend equivalence tests).
    pub comms: f64,
    /// Number of simulated devices involved (0 for the CPU backend).
    pub devices: usize,
    /// Injected fault events that fired during the run (all kinds).
    pub faults_injected: u64,
    /// Transient-fault retries performed by the recovery policy.
    pub retries: u64,
    /// Simulated seconds spent in the `Recovery` phase (backoff,
    /// redistribution, sketch-row re-draw, re-orthogonalization).
    pub recovery_seconds: f64,
    /// Devices lost to fail-stop faults and recovered from by degrading
    /// the fleet.
    pub devices_lost: usize,
    /// Numerical breakdowns detected by the guard layer (a CholQR rung
    /// failing, a non-finite block, a norm explosion).
    pub breakdowns: u64,
    /// Orthogonalization fallback-ladder escalations (one per rung
    /// actually climbed; 0 on a healthy run).
    pub fallbacks: u64,
    /// How many guarded orthogonalizations *succeeded* at each ladder
    /// rung: `[CholQR, shifted CholQR2, Householder QR]`. A healthy run
    /// has everything in rung 0 — except that rung-0 successes are not
    /// counted (they are the bit-identical fast path), so a healthy run
    /// shows `[0, 0, 0]`.
    pub ladder_histogram: [u64; 3],
    /// Speculative straggler re-dispatches performed by the recovery
    /// policy's watchdog (see [`Executor::mitigate_straggler`]).
    pub speculations: u64,
    /// Silent-data-corruption events the SDC injector actually applied
    /// to resident buffers during the run (whether or not detected).
    pub sdc_injected: u64,
    /// Corruptions the checksum verification pass caught.
    pub sdc_detected: u64,
    /// Detected corruptions repaired in place from the checksum pair
    /// (single-entry recompute or bounded kernel re-run).
    pub sdc_corrected: u64,
    /// Detected corruptions that escalated to a checkpoint rollback.
    pub sdc_rollbacks: u64,
    /// Per-device / per-kernel metrics accumulated during the run
    /// (empty on the CPU backend).
    pub metrics: Metrics,
}

impl fmt::Display for ExecReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {:.6} s on {} device(s), {} launches, {} syncs",
            self.seconds, self.devices, self.launches, self.syncs
        )?;
        for (label, secs) in self.timeline.breakdown() {
            let pct = if self.seconds > 0.0 {
                100.0 * secs / self.seconds
            } else {
                0.0
            };
            writeln!(f, "  {label:>12}: {secs:>12.6} s  {pct:5.1}%")?;
        }
        if self.comms > 0.0 {
            writeln!(f, "  {:>12}: {:>12.6} s  (inter-node)", "Comms", self.comms)?;
        }
        if self.faults_injected > 0 || self.devices_lost > 0 || self.retries > 0 {
            writeln!(
                f,
                "  faults: {} injected, {} retries, {} device(s) lost, {:.6} s recovering",
                self.faults_injected, self.retries, self.devices_lost, self.recovery_seconds
            )?;
        }
        if self.speculations > 0 {
            writeln!(
                f,
                "  stragglers: {} speculative re-dispatch(es)",
                self.speculations
            )?;
        }
        if self.sdc_injected > 0 || self.sdc_detected > 0 {
            writeln!(
                f,
                "  integrity: {} corruption(s) injected, {} detected, {} corrected in place, {} rollback(s)",
                self.sdc_injected, self.sdc_detected, self.sdc_corrected, self.sdc_rollbacks
            )?;
        }
        if self.breakdowns > 0 || self.fallbacks > 0 {
            writeln!(
                f,
                "  numerics: {} breakdown(s), {} fallback(s), ladder [cholqr {}, shifted {}, hhqr {}]",
                self.breakdowns,
                self.fallbacks,
                self.ladder_histogram[0],
                self.ladder_histogram[1],
                self.ladder_histogram[2]
            )?;
        }
        for d in &self.metrics.devices {
            writeln!(
                f,
                "  gpu{}: {:.1}% busy, {} launches, {:.1} MB over PCIe",
                d.device,
                100.0 * d.utilization(),
                d.launches,
                d.bytes_moved / 1e6
            )?;
        }
        Ok(())
    }
}

/// Input matrix for a sampler run: real values, or a shape for dry-run
/// timing studies at sizes too large to materialize.
#[derive(Debug, Clone, Copy)]
pub enum Input<'a> {
    /// Materialized host matrix.
    Values(&'a Mat),
    /// `(m, n)` shape only (dry-run timing).
    Shape(usize, usize),
}

impl<'a> Input<'a> {
    /// `(rows, cols)` of the input.
    pub fn shape(&self) -> (usize, usize) {
        match self {
            Input::Values(a) => a.shape(),
            Input::Shape(m, n) => (*m, *n),
        }
    }

    /// The materialized values, when present. The borrow is the input's
    /// own lifetime (`Input` is `Copy` over `&'a Mat`), not `&self`'s.
    pub fn values(&self) -> Option<&'a Mat> {
        match *self {
            Input::Values(a) => Some(a),
            Input::Shape(..) => None,
        }
    }
}

/// The kernel surface the sampler needs from an execution backend.
///
/// One hook per semantic step of Figure 2b (plus the Figure 3 adaptive
/// hooks). The pipeline calls the hooks in algorithm order; each hook
/// charges whatever kernels, collectives and barriers the step costs on
/// that backend. Hooks never produce numeric values — see the
/// [module docs](self) for the numerics/accounting split.
///
/// All shape arguments are redundant with the `(m, n)` passed to
/// [`Executor::begin`] plus the configured `ℓ = k + p`; they are passed
/// explicitly so a hook implementation reads like the kernel sequence it
/// charges.
pub trait Executor {
    /// Short backend name (used in error messages).
    fn name(&self) -> &'static str;

    /// Whether this backend materializes values (compute mode). When
    /// `false` the pipeline skips all numerics and returns `None` for
    /// the approximation.
    fn computes(&self) -> bool;

    /// Validates backend-specific support for this request; called
    /// before any work. `has_values` says whether the input carries
    /// values (vs. shape only).
    ///
    /// # Errors
    ///
    /// [`rlra_matrix::MatrixError::Unsupported`] for a feature this
    /// backend cannot run.
    fn supports(&self, cfg: &SamplerConfig, has_values: bool) -> Result<()>;

    /// Starts a run on an `m × n` input: distributes the (shape-only)
    /// operand and snapshots whatever state `finish` diffs against.
    fn begin(&mut self, m: usize, n: usize);

    /// Step 1a, Gaussian: draw `Ω` (`ℓ × m`) and charge `B = Ω·A`.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn gaussian_sample(&mut self, l: usize) -> Result<()>;

    /// Step 1a, FFT: charge the SRFT row sampling `B = Ω·A`.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn srft_sample_rows(&mut self, l: usize, scheme: SrftScheme) -> Result<()>;

    /// Power iteration: row-orthonormalization of `B` (`ℓ × n`).
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn orth_b(&mut self, l: usize, reorth: bool) -> Result<()>;

    /// Power iteration: `C = B·Aᵀ` (`ℓ × m`).
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn gemm_to_c(&mut self, l: usize) -> Result<()>;

    /// Power iteration: row-orthonormalization of `C` (`ℓ × m`).
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn orth_c(&mut self, l: usize, reorth: bool) -> Result<()>;

    /// Power iteration: `B = C·A` (`ℓ × n`).
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn gemm_to_b(&mut self, l: usize) -> Result<()>;

    /// Step 2: rank the pivot columns of `B` (truncated QP3 or the
    /// communication-avoiding tournament) and the `T = R̂₁:ₖ⁻¹·R̂ₖ₊₁:ₙ`
    /// triangular solve.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn step2_pivot(&mut self, kind: Step2Kind, l: usize, k: usize) -> Result<()>;

    /// Step 3: gather `A·P₁:ₖ`, tall-skinny QR, and the triangular
    /// finish.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn tsqr(&mut self, k: usize, reorth: bool) -> Result<()>;

    // --- Adaptive scheme (Figure 3) hooks -------------------------------

    /// Whether the Figure 3 adaptive loop can run on this backend.
    fn supports_adaptive(&self) -> bool {
        false
    }

    /// Adaptive: draw an `ℓ_inc × m` block and charge `W = Ω·A`.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn adaptive_draw(&mut self, _l_inc: usize) -> Result<()> {
        Ok(())
    }

    /// Adaptive: block-orthogonalization of a `rows × cols` block
    /// against an accepted basis of `l_prev` rows, plus its CholQR.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn adaptive_orth(
        &mut self,
        _rows: usize,
        _cols: usize,
        _l_prev: usize,
        _reorth: bool,
    ) -> Result<()> {
        Ok(())
    }

    /// Adaptive power iteration: `C = W·Aᵀ` (`l_new × m`).
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn adaptive_gemm_c(&mut self, _l_new: usize) -> Result<()> {
        Ok(())
    }

    /// Adaptive power iteration: `W = C·A` (`l_new × n`).
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn adaptive_gemm_w(&mut self, _l_new: usize) -> Result<()> {
        Ok(())
    }

    /// Adaptive: the residual-estimate probe against an `l_now`-row
    /// basis.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn adaptive_probe(&mut self, _next_inc: usize, _l_now: usize) -> Result<()> {
        Ok(())
    }

    /// Adaptive fixed-accuracy finish: Steps 2–3 at `k = ℓ_final`
    /// (restart mode). In incremental mode this hook is *not* called —
    /// the finish flushes the reserved sample block through one last
    /// [`Executor::adaptive_update_pivot`]/panel/trailing charge under
    /// the `adaptive_finish` stage, then assembles at zero extra cost.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn adaptive_finish(&mut self, _k: usize) -> Result<()> {
        Ok(())
    }

    /// Incremental update: the trailing-sample update (QR of the
    /// `l_rows × k_done` accepted lead block of the sample buffer plus
    /// two projection gemms that downdate the trailing columns),
    /// followed by truncated QP3 of the downdated `l_rows × n_trail`
    /// panel keeping `k_b` pivots. `l_rows` grows by one sample block
    /// per step — the within-block oversampling of the pivot selection
    /// (the newest block is held in reserve and only steers pivots).
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn adaptive_update_pivot(
        &mut self,
        _l_rows: usize,
        _n_trail: usize,
        _k_b: usize,
    ) -> Result<()> {
        Ok(())
    }

    /// Incremental update: gather the `k_b` new pivot columns of `A`,
    /// project them against the `k_done` accepted columns (two passes —
    /// "twice is enough"), and orthonormalize the remainder (CholQR
    /// panel).
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn adaptive_update_panel(&mut self, _k_b: usize, _k_done: usize) -> Result<()> {
        Ok(())
    }

    /// Incremental update: the exact trailing coupling
    /// `Q_newᵀ·A_rest` (`k_b × (n_trail − k_b)`, inner dimension `m`)
    /// extending `R`'s new rows over the still-trailing columns.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn adaptive_update_trailing(&mut self, _k_b: usize, _n_trail: usize) -> Result<()> {
        Ok(())
    }

    // --- Numeric guard hooks --------------------------------------------

    /// Charges one fallback-ladder escalation: re-running the
    /// orthogonalization of a `rows × cols` block at `rung` (1 = shifted
    /// CholQR2, three Gram/solve passes; 2 = Householder QR). No-op on
    /// backends without a device clock; the host numerics were already
    /// done by the guard.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn charge_fallback(
        &mut self,
        _rows: usize,
        _cols: usize,
        _rung: Rung,
        _reorth: bool,
    ) -> Result<()> {
        Ok(())
    }

    /// Charges one between-stage health check (NaN/Inf scan +
    /// norm-explosion test) over a `rows × cols` block: one streaming
    /// read of the block.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn charge_health_check(&mut self, _rows: usize, _cols: usize) -> Result<()> {
        Ok(())
    }

    /// Verified-accuracy pass: charges the posterior error probe
    /// (`probes` Gaussian rows against the rank-`k` factors).
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn verify_probe(&mut self, _probes: usize, _k: usize) -> Result<()> {
        Ok(())
    }

    // --- Integrity (ABFT) hooks -------------------------------------------

    /// Charges encoding the ABFT checksum references of an `m×n×k`
    /// protected product: the two operand-sum reductions plus the two
    /// rank-1 reference products (see [`rlra_blas::checksum::encode`]).
    /// No-op on backends without a device clock; the host arithmetic was
    /// already done by the integrity guard.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn charge_checksum_encode(&mut self, _m: usize, _n: usize, _k: usize) -> Result<()> {
        Ok(())
    }

    /// Charges verifying an `m×n` protected output panel (inner
    /// dimension `k`) against its checksum references, plus whatever the
    /// verification `outcome` cost on top: a
    /// [`IntegrityOutcome::Corrected`] adds the single-entry length-`k`
    /// recompute and re-verify; a [`IntegrityOutcome::Rerun`] adds a full
    /// re-execution of the `m×n×k` product. Device-backed executors also
    /// charge the host-side digest comparison (PCIe download of the two
    /// reference vectors); the cluster broadcasts the reference digests
    /// so every node agrees on the verdict.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn verify_integrity(
        &mut self,
        _m: usize,
        _n: usize,
        _k: usize,
        _outcome: IntegrityOutcome,
    ) -> Result<()> {
        Ok(())
    }

    /// Drains the silent-data-corruption events the backend's SDC
    /// injectors have fired since the last call. The integrity guard
    /// applies each drained event to the named host buffer it protects —
    /// keeping the corruption itself deterministic and bit-exact across
    /// backends. Backends without injectors return an empty vector.
    fn take_sdc_events(&mut self) -> Vec<rlra_gpu::SdcEvent> {
        Vec::new()
    }

    /// Simulated seconds elapsed since [`Executor::begin`].
    fn elapsed(&self) -> f64 {
        0.0
    }

    /// The tracer observing this run, if one is installed on the
    /// backend's devices (clones share the sink). The pipeline uses it
    /// to emit stage-span events around the hooks.
    fn tracer(&self) -> Option<Tracer> {
        None
    }

    // --- Fault recovery hooks -------------------------------------------

    /// Charges `secs` of simulated recovery time (retry backoff) to the
    /// backend's surviving devices under [`rlra_gpu::Phase::Recovery`].
    /// No-op on backends without a device clock (CPU).
    fn charge_recovery(&mut self, _secs: f64) {}

    /// Charges `secs` of simulated seconds for a *losing* speculative
    /// re-dispatch branch on `device` under
    /// [`rlra_gpu::Phase::Recovery`]: work that ran but whose result was
    /// discarded when the other branch finished first. No-op on backends
    /// without a device clock (CPU).
    fn charge_speculation(&mut self, _device: usize, _secs: f64) {}

    /// Per-device load report for the straggler watchdog:
    /// `(device index, busy seconds, kernel launches)` for every device
    /// still alive. Empty on backends without a device clock.
    fn device_load(&self) -> Vec<(usize, f64, u64)> {
        Vec::new()
    }

    /// Speculatively re-dispatches the straggling `device`'s block-rows
    /// onto the surviving devices, racing the two branches: whichever
    /// finishes first wins, the loser's work is cancelled and charged
    /// through [`Executor::charge_speculation`]. On a survivors' win the
    /// straggler is quarantined and its rows stay redistributed. Returns
    /// the simulated wall-clock seconds the decision saved (0 when the
    /// straggler wins the race and nothing changes).
    ///
    /// # Errors
    ///
    /// [`MatrixError::Unsupported`] on backends that cannot
    /// re-dispatch (CPU has no devices; a single GPU has no survivors).
    fn mitigate_straggler(&mut self, _device: usize) -> Result<f64> {
        Err(MatrixError::Unsupported {
            backend: self.name(),
            feature: "straggler re-dispatch (no surviving devices to race)".into(),
        })
    }

    // --- Durability hooks -----------------------------------------------

    /// Charges one checkpoint boundary: serializing `bytes` of numeric
    /// run state host-side and draining it to stable storage (modeled
    /// PCIe/network drain on device-backed executors). Checkpointing is
    /// never free; the durable runners call this before exporting the
    /// accounting snapshot, so the snapshot's clocks *include* the
    /// checkpoint's own cost.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures.
    fn checkpoint_hook(&mut self, _bytes: u64) -> Result<()> {
        Ok(())
    }

    /// Serializes the backend's *absolute* accounting state (clocks,
    /// timelines, launch/sync counters, kernel stats) into an opaque
    /// blob, embedded in every checkpoint snapshot. Restoring it with
    /// [`Executor::restore_account`] on a freshly begun run reproduces
    /// the uninterrupted run's report bit for bit.
    ///
    /// # Errors
    ///
    /// [`MatrixError::Unsupported`] on backends without durable
    /// accounting.
    fn export_account(&mut self) -> Result<Vec<u8>> {
        Err(MatrixError::Unsupported {
            backend: self.name(),
            feature: "accounting export (durable checkpoints)".into(),
        })
    }

    /// Overwrites the backend's accounting state with a blob produced by
    /// [`Executor::export_account`] (called between
    /// [`Executor::begin`] and the first resumed stage hook).
    ///
    /// # Errors
    ///
    /// [`MatrixError::Unsupported`] on backends without durable
    /// accounting; [`MatrixError::CheckpointCorrupt`] when the blob does
    /// not decode against this backend's fleet.
    fn restore_account(&mut self, _bytes: &[u8]) -> Result<()> {
        Err(MatrixError::Unsupported {
            backend: self.name(),
            feature: "accounting restore (durable checkpoints)".into(),
        })
    }

    /// Recovers from a fail-stop loss of `device` (reported at launch
    /// ordinal `at`): redistribute the lost block-rows over the
    /// survivors, re-draw the lost `Ω` rows, and re-orthogonalize them
    /// against the accepted basis, charging it all to the `Recovery`
    /// phase. After a successful return the failed stage hook can be
    /// re-invoked against the degraded fleet.
    ///
    /// # Errors
    ///
    /// [`MatrixError::Unsupported`] on backends that cannot degrade
    /// (CPU has no devices; a single GPU has no survivors).
    fn recover_device_loss(&mut self, _device: usize, _at: u64) -> Result<()> {
        Err(MatrixError::Unsupported {
            backend: self.name(),
            feature: "device-loss recovery (no surviving devices to degrade onto)".into(),
        })
    }

    /// Ends the run: folds the accounting into the caller's context (for
    /// backends that simulate internally) and returns the unified
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates accounting-fold failures (e.g. a simulation context
    /// that no longer matches the caller's fleet).
    fn finish(&mut self) -> Result<ExecReport>;
}
