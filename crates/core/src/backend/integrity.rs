//! The ABFT integrity guard: silent-data-corruption application,
//! checksum-guarded kernels, and localized correction.
//!
//! Device faults abort launches ([`super::Recovering`] retries them) and
//! numerical breakdowns surface as errors ([`super::NumericGuard`]
//! escalates its ladder) — but a *silent* corruption does neither: a bit
//! flips in a resident buffer, the launch reports success, and the wrong
//! numbers sail into the factors. This guard closes that gap with
//! algorithm-based fault tolerance (Huang & Abraham): every protected
//! GEMM carries side-band checksum references
//! ([`rlra_blas::checksum::GemmChecksum`]), every protected
//! orthogonalization verifies its unit-row-norm invariant, and a caught
//! single-element corruption is repaired *in place* from the
//! column/row-checksum pair — recomputing only the poisoned entry's
//! inner product, bit-identically to the fault-free kernel — instead of
//! re-running the whole launch.
//!
//! The guard follows the numerics/accounting split of the [module
//! docs](super): corruption is applied and detected *on the host*
//! (deterministically, so every computing backend sees bit-identical
//! poison and bit-identical repairs), while the costs — checksum
//! encodes, verification passes including the PCIe digest download,
//! corrections, re-runs — are buffered and charged through the
//! [`Executor::charge_checksum_encode`] /
//! [`Executor::verify_integrity`] hook pair on
//! [`IntegrityGuard::drain`].
//!
//! # Escalation ladder
//!
//! 1. **Clean** — references match; nothing extra beyond the verify.
//! 2. **Single-element** — exactly one row sum and one column sum
//!    disagree; under [`IntegrityMode::Correct`] the entry is recomputed
//!    from a length-`k` inner product and re-verified.
//! 3. **Wider** (or a correction that did not re-verify) — the full
//!    kernel is re-run under a bounded budget
//!    ([`IntegrityPolicy::rerun_budget`]).
//! 4. **Exhausted** (or [`IntegrityMode::DetectOnly`]) — the run fails
//!    with [`MatrixError::SilentCorruption`]; the durable layer may then
//!    roll back to the last checkpoint
//!    ([`IntegrityGuard::note_rollback`]).
//!
//! The default policy is [`IntegrityMode::Off`]: nothing is encoded,
//! verified or charged, and an unprotected run stays bit-identical —
//! factors *and* full report — to one predating this layer. An armed
//! fault-free run keeps bit-identical factors (verification only reads
//! the panels) and is itself deterministic: two armed runs with the same
//! plan agree bit-for-bit on factors and full report.

use super::{ExecReport, Executor};
use rlra_blas::checksum::{correct_entry, encode, flip_bit, Verdict};
use rlra_blas::Trans;
use rlra_gpu::{SdcEvent, SdcKind};
use rlra_matrix::{Mat, MatrixError, Result};
use rlra_trace::TraceEvent;

/// What the integrity layer does with a detected corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IntegrityMode {
    /// Checksums disarmed: nothing encoded, verified or charged. The
    /// default — runs are bit-identical to the pre-integrity pipeline.
    #[default]
    Off,
    /// Verify every protected kernel; surface any corruption as
    /// [`MatrixError::SilentCorruption`] without repairing it.
    DetectOnly,
    /// Verify, correct single-element corruption in place, and re-run
    /// the kernel (bounded) for anything wider.
    Correct,
}

/// Tuning knobs of the integrity guard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrityPolicy {
    /// Arming mode (default [`IntegrityMode::Off`]).
    pub mode: IntegrityMode,
    /// Safety factor on the checksum mismatch threshold, in units of
    /// the `(k + m)·ε`-scaled rounding bound (see
    /// [`rlra_blas::checksum::GemmChecksum::col_threshold`]). Honest
    /// rounding drift must never fire, so the default is a generous 64.
    pub tolerance: f64,
    /// How many full kernel re-runs a non-localizable corruption may
    /// consume before the guard gives up and surfaces the error.
    pub rerun_budget: usize,
}

impl Default for IntegrityPolicy {
    fn default() -> Self {
        IntegrityPolicy {
            mode: IntegrityMode::Off,
            tolerance: 64.0,
            rerun_budget: 2,
        }
    }
}

impl IntegrityPolicy {
    /// A policy with the given mode and default knobs.
    pub fn with_mode(mode: IntegrityMode) -> Self {
        IntegrityPolicy {
            mode,
            ..IntegrityPolicy::default()
        }
    }
}

/// What a verification pass concluded — and therefore what it cost on
/// top of the two checksum reductions (see
/// [`Executor::verify_integrity`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntegrityOutcome {
    /// References matched; only the verification itself was performed.
    Clean,
    /// A single poisoned entry was recomputed from a length-`k` inner
    /// product and the panel re-verified.
    Corrected,
    /// The whole kernel was re-executed and the panel re-verified.
    Rerun,
}

impl IntegrityOutcome {
    /// Short label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            IntegrityOutcome::Clean => "clean",
            IntegrityOutcome::Corrected => "corrected",
            IntegrityOutcome::Rerun => "rerun",
        }
    }
}

/// A buffered accounting event, pushed to the executor on
/// [`IntegrityGuard::drain`]. Buffering keeps the protected host
/// numerics free of executor borrows, exactly like
/// [`super::NumericGuard`]'s charges.
#[derive(Debug, Clone, Copy)]
enum IntegrityCharge {
    /// Checksum references of an `m×n×k` product were encoded.
    Encode { m: usize, n: usize, k: usize },
    /// An `m×n` panel (inner dimension `k`) was verified, with the
    /// given outcome on top.
    Verify {
        m: usize,
        n: usize,
        k: usize,
        outcome: IntegrityOutcome,
    },
    /// A lifecycle mark for the trace stream (no cost of its own).
    Mark {
        device: usize,
        stage: &'static str,
        action: &'static str,
        at_launch: u64,
    },
}

/// Integrity state of one protected run. See the [module docs](self)
/// for the contract.
#[derive(Debug, Clone, Default)]
pub struct IntegrityGuard {
    /// The detection/correction policy.
    pub policy: IntegrityPolicy,
    detected: u64,
    corrected: u64,
    rollbacks: u64,
    escapes: u64,
    /// Fired-but-unapplied corruption events, synced from the executor's
    /// injectors and consumed by buffer name as protected kernels run.
    queue: Vec<SdcEvent>,
    pending: Vec<IntegrityCharge>,
}

impl IntegrityGuard {
    /// A guard with the given policy.
    pub fn new(policy: IntegrityPolicy) -> Self {
        IntegrityGuard {
            policy,
            ..IntegrityGuard::default()
        }
    }

    /// Whether checksums are armed (any mode but [`IntegrityMode::Off`]).
    pub fn armed(&self) -> bool {
        self.policy.mode != IntegrityMode::Off
    }

    /// Corruptions the verification passes caught so far.
    pub fn detected(&self) -> u64 {
        self.detected
    }

    /// Detected corruptions repaired (in-place entry recompute or
    /// bounded kernel re-run) so far.
    pub fn corrected(&self) -> u64 {
        self.corrected
    }

    /// Detected corruptions escalated to a checkpoint rollback so far
    /// (counted by the durable layer via
    /// [`IntegrityGuard::note_rollback`]).
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Corruptions that were *applied* to a protected buffer but slipped
    /// past verification (disarmed guard, or a perturbation below the
    /// working-precision tolerance). The `whatif_sdc` coverage sweep
    /// asserts this stays zero for exponent-region flips in
    /// funnel-covered kernels.
    pub fn escapes(&self) -> u64 {
        self.escapes
    }

    /// Pulls the corruption events the backend's injectors have fired
    /// since the last call into the guard's queue. The pipeline syncs
    /// after every stage hook, so events land before the protected host
    /// kernel that consumes their buffer runs.
    pub fn sync<E: Executor + ?Sized>(&mut self, exec: &mut E) {
        self.queue.append(&mut exec.take_sdc_events());
    }

    /// Events still queued (fired by an injector, not yet applied to a
    /// protected buffer — e.g. a plan naming a buffer outside the
    /// protected funnel, which by construction poisons dead data).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Drains the queued events targeting `buffer`.
    fn take_events_for(&mut self, buffer: &str) -> Vec<SdcEvent> {
        let mut hit = Vec::new();
        let mut keep = Vec::new();
        for ev in self.queue.drain(..) {
            if ev.buffer == buffer {
                hit.push(ev);
            } else {
                keep.push(ev);
            }
        }
        self.queue = keep;
        hit
    }

    /// Applies drained events to the host panel (indices reduced modulo
    /// the shape, as [`SdcEvent`] documents) and marks each injection.
    fn apply_events(&mut self, stage: &'static str, c: &mut Mat, events: &[SdcEvent]) {
        let (m, n) = c.shape();
        if m == 0 || n == 0 {
            return;
        }
        for ev in events {
            let (i, j) = (ev.row % m, ev.col % n);
            let poisoned = match ev.kind {
                SdcKind::BitFlip { bit } => flip_bit(c[(i, j)], bit),
                SdcKind::Perturb { scale } => c[(i, j)] * (1.0 + scale),
            };
            c[(i, j)] = poisoned;
            self.pending.push(IntegrityCharge::Mark {
                device: ev.device,
                stage,
                action: "injected",
                at_launch: ev.at_launch,
            });
        }
    }

    fn mark(&mut self, stage: &'static str, action: &'static str, events: &[SdcEvent]) {
        let (device, at_launch) = events
            .first()
            .map(|e| (e.device, e.at_launch))
            .unwrap_or((0, 0));
        self.pending.push(IntegrityCharge::Mark {
            device,
            stage,
            action,
            at_launch,
        });
    }

    fn corruption_error(
        stage: &'static str,
        events: &[SdcEvent],
        location: (usize, usize),
    ) -> MatrixError {
        MatrixError::SilentCorruption {
            device: events.first().map(|e| e.device).unwrap_or(0),
            kernel: stage,
            location,
        }
    }

    /// Runs the protected product `C = α·op(A)·op(B)` (the `β = 0` form
    /// every pipeline GEMM uses), applies any corruption events queued
    /// against `buffer` to the output, and — when armed — encodes the
    /// checksum references and verifies the panel, correcting or
    /// re-running per the policy.
    ///
    /// On success the output is bit-identical to a fault-free GEMM: the
    /// in-place correction routes through the same kernel on views
    /// ([`rlra_blas::checksum::correct_entry`]), and a re-run simply
    /// recomputes the product with the corruption already consumed.
    ///
    /// # Errors
    ///
    /// [`MatrixError::SilentCorruption`] when corruption is detected
    /// under [`IntegrityMode::DetectOnly`], or when correction and the
    /// bounded re-runs fail to produce a clean panel; propagates kernel
    /// errors. On error, drain the guard before returning to the user
    /// so the verification work is still charged and traced.
    #[allow(clippy::too_many_arguments)]
    pub fn gemm_protected(
        &mut self,
        stage: &'static str,
        buffer: &'static str,
        alpha: f64,
        a: &Mat,
        ta: Trans,
        b: &Mat,
        tb: Trans,
        c: &mut Mat,
    ) -> Result<()> {
        rlra_blas::gemm(alpha, a.as_ref(), ta, b.as_ref(), tb, 0.0, c.as_mut())?;
        let events = self.take_events_for(buffer);
        self.apply_events(stage, c, &events);
        if !self.armed() {
            self.escapes += events.len() as u64;
            return Ok(());
        }
        let (m, n) = c.shape();
        let k = ta.apply(a.rows(), a.cols()).1;
        let refs = encode(alpha, a.as_ref(), ta, b.as_ref(), tb)?;
        self.pending.push(IntegrityCharge::Encode { m, n, k });
        match refs.verify(c.as_ref(), self.policy.tolerance) {
            Verdict::Clean => {
                // Applied corruption that verification cannot see (a
                // sub-tolerance perturbation) escapes — counted, so the
                // coverage sweep can report it honestly.
                self.escapes += events.len() as u64;
                self.pending.push(IntegrityCharge::Verify {
                    m,
                    n,
                    k,
                    outcome: IntegrityOutcome::Clean,
                });
                Ok(())
            }
            Verdict::Single { row, col } => {
                self.detected += 1;
                self.mark(stage, "detected", &events);
                if self.policy.mode != IntegrityMode::Correct {
                    self.pending.push(IntegrityCharge::Verify {
                        m,
                        n,
                        k,
                        outcome: IntegrityOutcome::Clean,
                    });
                    return Err(Self::corruption_error(stage, &events, (row, col)));
                }
                let mut cm = c.as_mut();
                correct_entry(alpha, a.as_ref(), ta, b.as_ref(), tb, &mut cm, row, col)?;
                if refs.verify(c.as_ref(), self.policy.tolerance) == Verdict::Clean {
                    self.corrected += 1;
                    self.pending.push(IntegrityCharge::Verify {
                        m,
                        n,
                        k,
                        outcome: IntegrityOutcome::Corrected,
                    });
                    self.mark(stage, "corrected", &events);
                    Ok(())
                } else {
                    // The localized repair did not re-verify (a second
                    // corruption hid in the same row/column pair):
                    // escalate to the bounded re-run.
                    self.rerun_gemm(stage, &events, alpha, a, ta, b, tb, c, &refs, (row, col))
                }
            }
            Verdict::Wider => {
                self.detected += 1;
                self.mark(stage, "detected", &events);
                if self.policy.mode != IntegrityMode::Correct {
                    self.pending.push(IntegrityCharge::Verify {
                        m,
                        n,
                        k,
                        outcome: IntegrityOutcome::Clean,
                    });
                    return Err(Self::corruption_error(stage, &events, (0, 0)));
                }
                self.rerun_gemm(stage, &events, alpha, a, ta, b, tb, c, &refs, (0, 0))
            }
        }
    }

    /// Bounded full re-execution of a protected GEMM whose corruption
    /// could not be corrected in place.
    #[allow(clippy::too_many_arguments)]
    fn rerun_gemm(
        &mut self,
        stage: &'static str,
        events: &[SdcEvent],
        alpha: f64,
        a: &Mat,
        ta: Trans,
        b: &Mat,
        tb: Trans,
        c: &mut Mat,
        refs: &rlra_blas::GemmChecksum,
        location: (usize, usize),
    ) -> Result<()> {
        let (m, n) = c.shape();
        let k = ta.apply(a.rows(), a.cols()).1;
        for _ in 0..self.policy.rerun_budget {
            rlra_blas::gemm(alpha, a.as_ref(), ta, b.as_ref(), tb, 0.0, c.as_mut())?;
            self.pending.push(IntegrityCharge::Verify {
                m,
                n,
                k,
                outcome: IntegrityOutcome::Rerun,
            });
            if refs.verify(c.as_ref(), self.policy.tolerance) == Verdict::Clean {
                self.corrected += 1;
                self.mark(stage, "rerun", events);
                return Ok(());
            }
        }
        Err(Self::corruption_error(stage, events, location))
    }

    /// Runs a protected orthogonalization: `compute` produces a
    /// row-orthonormal block (typically through the numeric guard's
    /// ladder), corruption events queued against `buffer` are applied to
    /// it, and — when armed — its unit-row-norm invariant is verified.
    /// ABFT's entry-localizing checksum pair does not survive the
    /// Cholesky/inverse chain inside CholQR, so a detected corruption
    /// here always escalates straight to the bounded re-run (the events
    /// are already consumed, so one re-run reproduces the fault-free
    /// block bit-identically).
    ///
    /// # Errors
    ///
    /// As [`IntegrityGuard::gemm_protected`].
    pub fn orth_protected(
        &mut self,
        stage: &'static str,
        buffer: &'static str,
        mut compute: impl FnMut() -> Result<Mat>,
    ) -> Result<Mat> {
        let mut q = compute()?;
        let events = self.take_events_for(buffer);
        self.apply_events(stage, &mut q, &events);
        if !self.armed() {
            self.escapes += events.len() as u64;
            return Ok(q);
        }
        let (m, n) = q.shape();
        if let Some(bad_row) = Self::row_norm_defect(&q, self.policy.tolerance) {
            self.detected += 1;
            self.mark(stage, "detected", &events);
            if self.policy.mode != IntegrityMode::Correct {
                self.pending.push(IntegrityCharge::Verify {
                    m,
                    n,
                    k: 0,
                    outcome: IntegrityOutcome::Clean,
                });
                return Err(Self::corruption_error(stage, &events, (bad_row, 0)));
            }
            for _ in 0..self.policy.rerun_budget {
                q = compute()?;
                self.pending.push(IntegrityCharge::Verify {
                    m,
                    n,
                    k: 0,
                    outcome: IntegrityOutcome::Rerun,
                });
                if Self::row_norm_defect(&q, self.policy.tolerance).is_none() {
                    self.corrected += 1;
                    self.mark(stage, "rerun", &events);
                    return Ok(q);
                }
            }
            return Err(Self::corruption_error(stage, &events, (bad_row, 0)));
        }
        self.escapes += events.len() as u64;
        self.pending.push(IntegrityCharge::Verify {
            m,
            n,
            k: 0,
            outcome: IntegrityOutcome::Clean,
        });
        Ok(q)
    }

    /// First row of a supposedly row-orthonormal block whose norm
    /// deviates from 1 beyond the rounding tolerance, if any.
    fn row_norm_defect(q: &Mat, tolerance: f64) -> Option<usize> {
        let (m, n) = q.shape();
        for i in 0..m {
            let norm_sq: f64 = (0..n).map(|j| q[(i, j)].powi(2)).sum();
            if (norm_sq - 1.0).abs() > tolerance * f64::EPSILON * (n as f64) {
                return Some(i);
            }
        }
        None
    }

    /// Dry-run counterpart of the protected kernels: consumes the
    /// events queued against `buffer` (marking the injections — the sim
    /// fired them even though there is no data to poison) and, when
    /// armed, charges the encode + clean-verify pair so an armed dry
    /// run's report prices the same integrity work as an armed
    /// fault-free compute run.
    pub fn protect_shape(
        &mut self,
        stage: &'static str,
        buffer: &'static str,
        m: usize,
        n: usize,
        k: usize,
    ) {
        let events = self.take_events_for(buffer);
        for ev in &events {
            self.pending.push(IntegrityCharge::Mark {
                device: ev.device,
                stage,
                action: "injected",
                at_launch: ev.at_launch,
            });
        }
        if !self.armed() {
            return;
        }
        if k > 0 {
            self.pending.push(IntegrityCharge::Encode { m, n, k });
        }
        self.pending.push(IntegrityCharge::Verify {
            m,
            n,
            k,
            outcome: IntegrityOutcome::Clean,
        });
    }

    /// Records a checkpoint rollback forced by unrecoverable corruption
    /// (the durable layer calls this after restoring the snapshot).
    pub fn note_rollback(&mut self, stage: &'static str, device: usize, at_launch: u64) {
        self.rollbacks += 1;
        self.pending.push(IntegrityCharge::Mark {
            device,
            stage,
            action: "rollback",
            at_launch,
        });
    }

    /// Pushes the buffered charges into the executor's integrity hooks
    /// and trace stream. Call between stages and before
    /// [`Executor::finish`] — and before propagating a
    /// [`MatrixError::SilentCorruption`], so the detection work that
    /// failed the run is still priced inside it.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures from the charge hooks.
    pub fn drain<E: Executor + ?Sized>(&mut self, exec: &mut E) -> Result<()> {
        for charge in std::mem::take(&mut self.pending) {
            match charge {
                IntegrityCharge::Encode { m, n, k } => {
                    exec.charge_checksum_encode(m, n, k)?;
                }
                IntegrityCharge::Verify { m, n, k, outcome } => {
                    exec.verify_integrity(m, n, k, outcome)?;
                }
                IntegrityCharge::Mark {
                    device,
                    stage,
                    action,
                    at_launch,
                } => {
                    if let Some(t) = exec.tracer() {
                        t.emit(TraceEvent::Sdc {
                            device,
                            stage,
                            action,
                            at_launch,
                            time: exec.elapsed(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Folds the guard counters into a finished report. `sdc_injected`
    /// is *not* folded here — it comes from the device injectors at
    /// [`Executor::finish`] — and `retries` is never touched
    /// (device-fault accounting belongs to [`super::Recovering`], so
    /// composing both injectors in one run cannot double-count).
    pub fn fold_into(&self, report: &mut ExecReport) {
        report.sdc_detected += self.detected;
        report.sdc_corrected += self.corrected;
        report.sdc_rollbacks += self.rollbacks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_gpu::SdcPlan;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            1.0 + (state % 1000) as f64 / 1000.0
        })
    }

    fn queue_events(guard: &mut IntegrityGuard, plan: &SdcPlan) {
        guard.queue.extend(plan.events().iter().copied());
    }

    fn protected_product(
        guard: &mut IntegrityGuard,
        m: usize,
        n: usize,
        k: usize,
    ) -> (Result<()>, Mat, Mat) {
        let a = pseudo(m, k, 1);
        let b = pseudo(k, n, 2);
        let mut clean = Mat::zeros(m, n);
        rlra_blas::gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            clean.as_mut(),
        )
        .unwrap();
        let mut c = Mat::zeros(m, n);
        let r = guard.gemm_protected(
            "sketch",
            "sketch",
            1.0,
            &a,
            Trans::No,
            &b,
            Trans::No,
            &mut c,
        );
        (r, c, clean)
    }

    #[test]
    fn disarmed_guard_applies_events_and_counts_escapes() {
        let mut g = IntegrityGuard::default();
        assert!(!g.armed());
        queue_events(&mut g, &SdcPlan::new().bit_flip(0, 0, "sketch", 3, 4, 54));
        let (r, c, clean) = protected_product(&mut g, 12, 8, 16);
        r.unwrap();
        assert_ne!(c, clean, "disarmed corruption must land in the output");
        assert_eq!(g.escapes(), 1);
        assert_eq!(g.detected(), 0);
    }

    #[test]
    fn armed_guard_corrects_single_flip_bit_identically() {
        let mut g = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::Correct));
        queue_events(&mut g, &SdcPlan::new().bit_flip(2, 9, "sketch", 3, 4, 54));
        let (r, c, clean) = protected_product(&mut g, 12, 8, 16);
        r.unwrap();
        assert_eq!(c, clean, "corrected output must be bit-identical");
        assert_eq!(g.detected(), 1);
        assert_eq!(g.corrected(), 1);
        assert_eq!(g.escapes(), 0);
    }

    #[test]
    fn detect_only_surfaces_silent_corruption_with_location() {
        let mut g = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::DetectOnly));
        queue_events(&mut g, &SdcPlan::new().bit_flip(5, 11, "sketch", 3, 4, 54));
        let (r, _, _) = protected_product(&mut g, 12, 8, 16);
        let err = r.unwrap_err();
        assert!(matches!(
            err,
            MatrixError::SilentCorruption {
                device: 5,
                kernel: "sketch",
                location: (3, 4),
            }
        ));
        assert_eq!(g.detected(), 1);
        assert_eq!(g.corrected(), 0);
    }

    #[test]
    fn wider_corruption_escalates_to_rerun() {
        let mut g = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::Correct));
        queue_events(
            &mut g,
            &SdcPlan::new()
                .bit_flip(0, 0, "sketch", 1, 1, 54)
                .bit_flip(0, 0, "sketch", 5, 6, 54),
        );
        let (r, c, clean) = protected_product(&mut g, 12, 8, 16);
        r.unwrap();
        assert_eq!(c, clean, "re-run output must be bit-identical");
        assert_eq!(g.detected(), 1);
        assert_eq!(g.corrected(), 1);
    }

    #[test]
    fn events_target_their_buffer_only() {
        let mut g = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::Correct));
        queue_events(&mut g, &SdcPlan::new().bit_flip(0, 0, "power_b", 1, 1, 54));
        let (r, c, clean) = protected_product(&mut g, 12, 8, 16);
        r.unwrap();
        assert_eq!(c, clean, "event for another buffer must not fire here");
        assert_eq!(g.detected(), 0);
        assert_eq!(g.queued(), 1, "the event stays queued for its buffer");
    }

    #[test]
    fn sub_tolerance_perturbation_escapes_and_is_counted() {
        let mut g = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::Correct));
        queue_events(&mut g, &SdcPlan::new().perturb(0, 0, "sketch", 3, 4, 1e-17));
        let (r, _, _) = protected_product(&mut g, 12, 8, 16);
        r.unwrap();
        assert_eq!(g.detected(), 0);
        assert_eq!(g.escapes(), 1);
    }

    #[test]
    fn orth_protected_reruns_a_poisoned_block() {
        let mut g = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::Correct));
        queue_events(&mut g, &SdcPlan::new().bit_flip(1, 3, "orth_b", 2, 5, 58));
        let raw = pseudo(4, 20, 3);
        let clean = crate::backend::NumericGuard::default()
            .ladder_rows("orth_b", &raw, true)
            .unwrap();
        let q = g
            .orth_protected("orth_b", "orth_b", || {
                crate::backend::NumericGuard::default().ladder_rows("orth_b", &raw, true)
            })
            .unwrap();
        assert_eq!(q, clean, "re-run block must be bit-identical");
        assert_eq!(g.detected(), 1);
        assert_eq!(g.corrected(), 1);
    }

    #[test]
    fn orth_protected_clean_block_charges_one_verify() {
        let mut g = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::Correct));
        let raw = pseudo(4, 20, 4);
        let q = g
            .orth_protected("orth_b", "orth_b", || {
                crate::backend::NumericGuard::default().ladder_rows("orth_b", &raw, true)
            })
            .unwrap();
        assert_eq!(q.shape(), (4, 20));
        assert_eq!(g.detected(), 0);
        assert_eq!(g.pending.len(), 1, "exactly the clean verify charge");
    }

    #[test]
    fn drain_charges_and_fold_never_touches_retries() {
        let mut g = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::Correct));
        queue_events(&mut g, &SdcPlan::new().bit_flip(0, 0, "sketch", 3, 4, 54));
        let (r, _, _) = protected_product(&mut g, 12, 8, 16);
        r.unwrap();
        let mut exec = super::super::CpuExec::new();
        exec.begin(12, 8);
        g.drain(&mut exec).unwrap();
        assert!(g.pending.is_empty());
        let mut report = exec.finish().unwrap();
        report.retries = 7;
        g.fold_into(&mut report);
        assert_eq!(report.sdc_detected, 1);
        assert_eq!(report.sdc_corrected, 1);
        assert_eq!(report.sdc_rollbacks, 0);
        assert_eq!(report.retries, 7, "guard must not touch device retries");
    }

    #[test]
    fn note_rollback_counts_and_marks() {
        let mut g = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::Correct));
        g.note_rollback("sample_block", 2, 17);
        assert_eq!(g.rollbacks(), 1);
        let mut report = ExecReport::default();
        g.fold_into(&mut report);
        assert_eq!(report.sdc_rollbacks, 1);
    }

    #[test]
    fn protect_shape_charges_armed_only() {
        let mut off = IntegrityGuard::default();
        off.protect_shape("sketch", "sketch", 10, 5, 20);
        assert!(off.pending.is_empty());
        let mut armed = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::Correct));
        armed.protect_shape("sketch", "sketch", 10, 5, 20);
        assert_eq!(armed.pending.len(), 2, "encode + clean verify");
    }
}
