//! The multi-GPU backend (paper §4 and Figure 15).
//!
//! `A` is distributed block-row-wise; `Ω` and `C` follow the matching 1D
//! block-column layout of `Aᵀ`. Sampling and the power-iteration
//! multiplies are local GEMMs followed by host reductions; the small QR
//! of the reduced `ℓ × n` matrix runs on the CPU and is broadcast back;
//! CholQR of the distributed `C` uses the Figure 4 scheme.
//!
//! Like [`GpuExec`](super::GpuExec), all accounting runs on an internal
//! dry-run [`MultiGpu`] and is folded into the caller's context by
//! [`MultiGpu::absorb`] when the run finishes.

use super::{ExecReport, Executor};
use crate::config::{SamplerConfig, SamplingKind, Step2Kind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_blas::Trans;
use rlra_fft::SrftScheme;
use rlra_gpu::algos::{gpu_qp3_truncated, gpu_tournament_qrcp};
use rlra_gpu::{DMat, ExecMode, MultiGpu, Phase};
use rlra_matrix::{Mat, MatrixError, Result};

/// Multi-GPU execution backend.
pub struct MultiGpuExec<'a> {
    mg: &'a mut MultiGpu,
    sim: MultiGpu,
    a_parts: Vec<DMat>,
    b_bcast: Vec<DMat>,
    c_parts: Vec<DMat>,
    m: usize,
    n: usize,
}

impl std::fmt::Debug for MultiGpuExec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiGpuExec")
            .field("m", &self.m)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<'a> MultiGpuExec<'a> {
    /// Creates the backend for the given (caller-owned) multi-GPU
    /// context.
    pub fn new(mg: &'a mut MultiGpu) -> Self {
        let sim = MultiGpu::new(mg.ng(), mg.gpu(0).cost().spec().clone(), ExecMode::DryRun);
        MultiGpuExec {
            mg,
            sim,
            a_parts: Vec::new(),
            b_bcast: Vec::new(),
            c_parts: Vec::new(),
            m: 0,
            n: 0,
        }
    }

    fn dummy_rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    /// Charges the host-side QR of the reduced `ℓ × n` sampled matrix
    /// (CholQR flop count on the CPU, paper §4) to every GPU.
    fn charge_host_rows_qr(&mut self, l: usize, reorth: bool) {
        let passes = if reorth { 2.0 } else { 1.0 };
        let flops = passes * 2.0 * l as f64 * l as f64 * self.n as f64;
        let cost = self.sim.gpu(0).cost().clone();
        let secs = cost.host_flops(flops) + cost.host_cholesky(l);
        for i in 0..self.sim.ng() {
            self.sim.gpu_mut(i).charge(Phase::OrthIter, secs);
        }
    }
}

impl Executor for MultiGpuExec<'_> {
    fn name(&self) -> &'static str {
        "multi-gpu"
    }

    fn computes(&self) -> bool {
        self.mg.mode() == ExecMode::Compute
    }

    fn supports(&self, cfg: &SamplerConfig, has_values: bool) -> Result<()> {
        if !matches!(cfg.sampling, SamplingKind::Gaussian) {
            return Err(MatrixError::Unsupported {
                backend: self.name(),
                feature: "FFT (SRFT) sampling — the scaling study uses Gaussian sampling only"
                    .into(),
            });
        }
        let _ = has_values; // shape-only + compute is rejected centrally
        Ok(())
    }

    fn begin(&mut self, m: usize, n: usize) {
        self.m = m;
        self.n = n;
        self.a_parts = self.sim.distribute_rows_shape(m, n);
    }

    fn gaussian_sample(&mut self, l: usize) -> Result<()> {
        // Ω is distributed in the block-column layout of Aᵀ: GPU i draws
        // its own l × m_i chunk (independent cuRAND streams in parallel).
        let mut b_parts = Vec::with_capacity(self.a_parts.len());
        for (i, ap) in self.a_parts.iter().enumerate() {
            let mi = ap.rows();
            let gpu = self.sim.gpu_mut(i);
            let omega_i = gpu.curand_gaussian(Phase::Prng, l, mi, &mut Self::dummy_rng());
            let mut bi = gpu.alloc(l, self.n);
            gpu.gemm(
                Phase::Sampling,
                1.0,
                &omega_i,
                Trans::No,
                ap,
                Trans::No,
                0.0,
                &mut bi,
            )?;
            b_parts.push(bi);
        }
        self.sim.reduce_to_host(Phase::Comms, &b_parts)?;
        Ok(())
    }

    fn srft_sample_rows(&mut self, _l: usize, _scheme: SrftScheme) -> Result<()> {
        Err(MatrixError::Unsupported {
            backend: self.name(),
            feature: "FFT (SRFT) sampling".into(),
        })
    }

    fn orth_b(&mut self, l: usize, reorth: bool) -> Result<()> {
        // QR of the small l × n matrix B on the CPU (paper §4), then
        // broadcast the orthonormal factor.
        self.charge_host_rows_qr(l, reorth);
        self.b_bcast = self.sim.broadcast(Phase::Comms, &Mat::zeros(l, self.n));
        Ok(())
    }

    fn gemm_to_c(&mut self, l: usize) -> Result<()> {
        // C(i) = B · A(i)ᵀ — column-distributed like Aᵀ.
        let mut c_parts = Vec::with_capacity(self.a_parts.len());
        for (i, ap) in self.a_parts.iter().enumerate() {
            let mi = ap.rows();
            let gpu = self.sim.gpu_mut(i);
            let mut ci = gpu.alloc(l, mi);
            gpu.gemm(
                Phase::GemmIter,
                1.0,
                &self.b_bcast[i],
                Trans::No,
                ap,
                Trans::Yes,
                0.0,
                &mut ci,
            )?;
            c_parts.push(ci);
        }
        self.c_parts = c_parts;
        Ok(())
    }

    fn orth_c(&mut self, _l: usize, reorth: bool) -> Result<()> {
        // Distributed CholQR of C (Figure 4).
        self.sim
            .cholqr_rows_distributed(Phase::OrthIter, &mut self.c_parts, reorth)?;
        Ok(())
    }

    fn gemm_to_b(&mut self, l: usize) -> Result<()> {
        // B(i) = C(i) · A(i), reduce.
        let mut b_next = Vec::with_capacity(self.a_parts.len());
        for (i, ap) in self.a_parts.iter().enumerate() {
            let gpu = self.sim.gpu_mut(i);
            let mut bi = gpu.alloc(l, self.n);
            gpu.gemm(
                Phase::GemmIter,
                1.0,
                &self.c_parts[i],
                Trans::No,
                ap,
                Trans::No,
                0.0,
                &mut bi,
            )?;
            b_next.push(bi);
        }
        self.sim.reduce_to_host(Phase::Comms, &b_next)?;
        Ok(())
    }

    fn step2_pivot(&mut self, kind: Step2Kind, l: usize, k: usize) -> Result<()> {
        {
            let n = self.n;
            let gpu0 = self.sim.gpu_mut(0);
            let b_dev = gpu0.resident_shape(l, n);
            match kind {
                Step2Kind::Qp3 => {
                    gpu_qp3_truncated(gpu0, Phase::Qrcp, &b_dev, k)?;
                }
                Step2Kind::Tournament => {
                    gpu_tournament_qrcp(gpu0, Phase::Qrcp, &b_dev, k)?;
                }
            }
            if n > k {
                gpu0.charge(Phase::Qrcp, gpu0.cost().trsm(k, n - k));
            }
        }
        self.sim.barrier();
        Ok(())
    }

    fn tsqr(&mut self, k: usize, reorth: bool) -> Result<()> {
        // Each GPU gathers its local rows of the k pivot columns, then
        // the distributed tall-skinny CholQR of A·P₁:ₖ (Figure 4).
        let chunks = self.sim.row_chunks(self.m);
        let mut x_parts = Vec::with_capacity(chunks.len());
        for (i, &(_, len)) in chunks.iter().enumerate() {
            let gpu = self.sim.gpu_mut(i);
            gpu.charge(Phase::Qr, gpu.cost().blas1(len * k, 2.0)); // gather copy
            x_parts.push(gpu.resident_shape(len, k));
        }
        self.sim
            .cholqr_tall_distributed(Phase::Qr, &mut x_parts, reorth)?;
        // Triangular finish on GPU 0.
        {
            let n = self.n;
            let gpu0 = self.sim.gpu_mut(0);
            gpu0.charge(Phase::Qr, gpu0.cost().trsm(k, n));
        }
        self.sim.barrier();
        Ok(())
    }

    fn finish(&mut self) -> ExecReport {
        let ng = self.sim.ng();
        let (mut launches, mut syncs) = (0u64, 0u64);
        for i in 0..ng {
            launches += self.sim.gpu(i).launches;
            syncs += self.sim.gpu(i).syncs;
        }
        let report = ExecReport {
            seconds: self.sim.time(),
            timeline: self.sim.breakdown(),
            launches,
            syncs,
            comms: self.sim.comms_time(),
            devices: ng,
        };
        self.mg.absorb(&self.sim);
        self.sim.reset();
        self.a_parts.clear();
        self.b_bcast.clear();
        self.c_parts.clear();
        report
    }
}
