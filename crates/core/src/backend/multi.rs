//! The multi-GPU backend (paper §4 and Figure 15).
//!
//! `A` is distributed block-row-wise; `Ω` and `C` follow the matching 1D
//! block-column layout of `Aᵀ`. Sampling and the power-iteration
//! multiplies are local GEMMs followed by host reductions; the small QR
//! of the reduced `ℓ × n` matrix runs on the CPU and is broadcast back;
//! CholQR of the distributed `C` uses the Figure 4 scheme.
//!
//! Like [`GpuExec`](super::GpuExec), all accounting runs on an internal
//! dry-run [`MultiGpu`] and is folded into the caller's context by
//! [`MultiGpu::absorb`] when the run finishes.

use super::{ExecReport, Executor, IntegrityOutcome};
use crate::config::{SamplerConfig, SamplingKind, Step2Kind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_blas::Trans;
use rlra_fft::SrftScheme;
use rlra_gpu::algos::{gpu_qp3_truncated, gpu_tournament_qrcp};
use rlra_gpu::{DMat, ExecMode, MultiGpu, Phase};
use rlra_matrix::{Mat, MatrixError, Result};
use rlra_trace::{TraceEvent, Tracer};

/// Projection window of the straggler race, in partition passes: the
/// watchdog prices quarantining a persistently slow device against this
/// many remaining `ℓ × n × m_d` passes (≈ the pipeline tail of a
/// mid-range power-iteration sweep, 4 passes per iteration). One pass
/// would never out-run the one-time block-row re-upload; the tail is
/// what the quarantine actually spares.
const SPECULATION_TAIL: usize = 16;

/// Per-survivor share of a distributed inner dimension (at least 1 so
/// degenerate shapes still price a minimal sweep).
fn share_of(k: usize, survivors: usize) -> usize {
    k.div_ceil(survivors.max(1)).max(1)
}

/// Multi-GPU execution backend.
///
/// `slots[j]` is the device index that owns the `j`-th distributed part;
/// it starts as `0..ng` and shrinks when a fail-stop fault kills a GPU
/// and [`Executor::recover_device_loss`] redistributes over the
/// survivors.
pub struct MultiGpuExec<'a> {
    mg: &'a mut MultiGpu,
    sim: MultiGpu,
    a_parts: Vec<DMat>,
    b_bcast: Vec<DMat>,
    c_parts: Vec<DMat>,
    slots: Vec<usize>,
    l: usize,
    m: usize,
    n: usize,
}

impl std::fmt::Debug for MultiGpuExec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiGpuExec")
            .field("m", &self.m)
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl<'a> MultiGpuExec<'a> {
    /// Creates the backend for the given (caller-owned) multi-GPU
    /// context.
    ///
    /// Fault injectors installed on the caller's GPUs are moved into the
    /// internal simulator (and moved back by [`Executor::finish`]), and
    /// pre-existing device losses carry over so a degraded fleet stays
    /// degraded.
    ///
    /// # Errors
    ///
    /// Propagates [`MultiGpu::new`] failures.
    pub fn new(mg: &'a mut MultiGpu) -> Result<Self> {
        let mut sim = MultiGpu::new(mg.ng(), mg.gpu(0).cost().spec().clone(), ExecMode::DryRun)?;
        for i in 0..mg.ng() {
            if let Some(inj) = mg.gpu_mut(i).take_injector() {
                sim.gpu_mut(i).set_injector(Some(inj));
            }
            if let Some(sdc) = mg.gpu_mut(i).take_sdc_injector() {
                sim.gpu_mut(i).set_sdc_injector(Some(sdc));
            }
            if let Some((device, at)) = mg.gpu(i).dead_info() {
                sim.gpu_mut(i).mark_dead(device, at);
            }
            if mg.gpu(i).is_quarantined() {
                sim.gpu_mut(i).quarantine();
            }
        }
        // The tracer follows the timed launches into the simulator (and
        // back at finish), like the injectors.
        if let Some(tr) = mg.take_tracer() {
            sim.set_tracer(Some(tr));
        }
        Ok(MultiGpuExec {
            mg,
            sim,
            a_parts: Vec::new(),
            b_bcast: Vec::new(),
            c_parts: Vec::new(),
            slots: Vec::new(),
            l: 0,
            m: 0,
            n: 0,
        })
    }

    fn dummy_rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    /// Charges the host-side QR of the reduced `ℓ × n` sampled matrix
    /// (CholQR flop count on the CPU, paper §4) to every surviving GPU
    /// (host work, so exempt from straggler scaling).
    fn charge_host_rows_qr(&mut self, l: usize, reorth: bool) {
        let passes = if reorth { 2.0 } else { 1.0 };
        let flops = passes * 2.0 * l as f64 * l as f64 * self.n as f64;
        let cost = self.sim.gpu(0).cost().clone();
        let secs = cost.host_flops(flops) + cost.host_cholesky(l);
        for gi in self.sim.alive_indices() {
            self.sim.gpu_mut(gi).charge_raw(Phase::OrthIter, secs);
        }
    }
}

impl Executor for MultiGpuExec<'_> {
    fn name(&self) -> &'static str {
        "multi-gpu"
    }

    fn computes(&self) -> bool {
        self.mg.mode() == ExecMode::Compute
    }

    // shape-only + compute is rejected centrally, so `has_values` is moot
    fn supports(&self, cfg: &SamplerConfig, _has_values: bool) -> Result<()> {
        if !matches!(cfg.sampling, SamplingKind::Gaussian) {
            return Err(MatrixError::Unsupported {
                backend: self.name(),
                feature: "FFT (SRFT) sampling — the scaling study uses Gaussian sampling only"
                    .into(),
            });
        }
        Ok(())
    }

    fn begin(&mut self, m: usize, n: usize) {
        self.m = m;
        self.n = n;
        self.a_parts = self.sim.distribute_rows_shape(m, n);
        self.slots = self.sim.alive_indices();
    }

    fn gaussian_sample(&mut self, l: usize) -> Result<()> {
        // Ω is distributed in the block-column layout of Aᵀ: GPU i draws
        // its own l × m_i chunk (independent cuRAND streams in parallel).
        self.l = l;
        let mut b_parts = Vec::with_capacity(self.a_parts.len());
        for (ap, &gi) in self.a_parts.iter().zip(&self.slots) {
            let mi = ap.rows();
            let gpu = self.sim.gpu_mut(gi);
            let omega_i = gpu.curand_gaussian(Phase::Prng, l, mi, &mut Self::dummy_rng())?;
            let mut bi = gpu.alloc(l, self.n);
            gpu.gemm(
                Phase::Sampling,
                1.0,
                &omega_i,
                Trans::No,
                ap,
                Trans::No,
                0.0,
                &mut bi,
            )?;
            b_parts.push(bi);
        }
        self.sim.reduce_to_host(Phase::Comms, &b_parts)?;
        Ok(())
    }

    fn srft_sample_rows(&mut self, _l: usize, _scheme: SrftScheme) -> Result<()> {
        Err(MatrixError::Unsupported {
            backend: self.name(),
            feature: "FFT (SRFT) sampling".into(),
        })
    }

    fn orth_b(&mut self, l: usize, reorth: bool) -> Result<()> {
        // QR of the small l × n matrix B on the CPU (paper §4), then
        // broadcast the orthonormal factor.
        self.charge_host_rows_qr(l, reorth);
        self.b_bcast = self.sim.broadcast(Phase::Comms, &Mat::zeros(l, self.n));
        Ok(())
    }

    fn gemm_to_c(&mut self, l: usize) -> Result<()> {
        // C(i) = B · A(i)ᵀ — column-distributed like Aᵀ.
        let mut c_parts = Vec::with_capacity(self.a_parts.len());
        for ((j, ap), &gi) in self.a_parts.iter().enumerate().zip(&self.slots) {
            let mi = ap.rows();
            let gpu = self.sim.gpu_mut(gi);
            let mut ci = gpu.alloc(l, mi);
            gpu.gemm(
                Phase::GemmIter,
                1.0,
                &self.b_bcast[j],
                Trans::No,
                ap,
                Trans::Yes,
                0.0,
                &mut ci,
            )?;
            c_parts.push(ci);
        }
        self.c_parts = c_parts;
        Ok(())
    }

    fn orth_c(&mut self, _l: usize, reorth: bool) -> Result<()> {
        // Distributed CholQR of C (Figure 4).
        // analyze: allow(numerics, timing-only Gram reduction across devices; the factors come from the guarded host ladder)
        self.sim
            .cholqr_rows_distributed(Phase::OrthIter, &mut self.c_parts, reorth)?;
        Ok(())
    }

    fn gemm_to_b(&mut self, l: usize) -> Result<()> {
        // B(i) = C(i) · A(i), reduce.
        let mut b_next = Vec::with_capacity(self.a_parts.len());
        for ((j, ap), &gi) in self.a_parts.iter().enumerate().zip(&self.slots) {
            let gpu = self.sim.gpu_mut(gi);
            let mut bi = gpu.alloc(l, self.n);
            gpu.gemm(
                Phase::GemmIter,
                1.0,
                &self.c_parts[j],
                Trans::No,
                ap,
                Trans::No,
                0.0,
                &mut bi,
            )?;
            b_next.push(bi);
        }
        self.sim.reduce_to_host(Phase::Comms, &b_next)?;
        Ok(())
    }

    fn step2_pivot(&mut self, kind: Step2Kind, l: usize, k: usize) -> Result<()> {
        {
            let n = self.n;
            // The small pivoted QR runs on the first surviving GPU.
            let gi0 = self.slots.first().copied().ok_or(MatrixError::Internal {
                op: "MultiGpuExec",
                invariant: "at least one surviving GPU",
            })?;
            let gpu0 = self.sim.gpu_mut(gi0);
            let b_dev = gpu0.resident_shape(l, n);
            match kind {
                Step2Kind::Qp3 => {
                    gpu_qp3_truncated(gpu0, Phase::Qrcp, &b_dev, k)?;
                }
                Step2Kind::Tournament => {
                    gpu_tournament_qrcp(gpu0, Phase::Qrcp, &b_dev, k)?;
                }
            }
            if n > k {
                gpu0.charge(Phase::Qrcp, gpu0.cost().trsm(k, n - k));
            }
        }
        self.sim.barrier();
        Ok(())
    }

    fn tsqr(&mut self, k: usize, reorth: bool) -> Result<()> {
        // Each GPU gathers its local rows of the k pivot columns, then
        // the distributed tall-skinny CholQR of A·P₁:ₖ (Figure 4).
        let chunks = self.sim.row_chunks(self.m);
        let alive = self.sim.alive_indices();
        let mut x_parts = Vec::with_capacity(chunks.len());
        for (&(_, len), &gi) in chunks.iter().zip(&alive) {
            let gpu = self.sim.gpu_mut(gi);
            gpu.charge(Phase::Qr, gpu.cost().blas1(len * k, 2.0)); // gather copy
            x_parts.push(gpu.resident_shape(len, k));
        }
        // analyze: allow(numerics, timing-only Gram reduction across devices; the factors come from the guarded host ladder)
        self.sim
            .cholqr_tall_distributed(Phase::Qr, &mut x_parts, reorth)?;
        // Triangular finish on the first surviving GPU.
        {
            let n = self.n;
            let gi0 = alive.first().copied().ok_or(MatrixError::Internal {
                op: "MultiGpuExec",
                invariant: "at least one surviving GPU",
            })?;
            let gpu0 = self.sim.gpu_mut(gi0);
            gpu0.charge(Phase::Qr, gpu0.cost().trsm(k, n));
        }
        self.sim.barrier();
        Ok(())
    }

    fn supports_adaptive(&self) -> bool {
        true
    }

    fn adaptive_draw(&mut self, l_inc: usize) -> Result<()> {
        // Each GPU draws its l_inc × m_i chunk of the new Ω rows and
        // forms its sample contribution; the block reduces to the host.
        self.l += l_inc;
        let mut w_parts = Vec::with_capacity(self.a_parts.len());
        for (ap, &gi) in self.a_parts.iter().zip(&self.slots) {
            let mi = ap.rows();
            let gpu = self.sim.gpu_mut(gi);
            let omega_i = gpu.curand_gaussian(Phase::Prng, l_inc, mi, &mut Self::dummy_rng())?;
            let mut wi = gpu.alloc(l_inc, self.n);
            gpu.gemm(
                Phase::Sampling,
                1.0,
                &omega_i,
                Trans::No,
                ap,
                Trans::No,
                0.0,
                &mut wi,
            )?;
            w_parts.push(wi);
        }
        self.sim.reduce_to_host(Phase::Comms, &w_parts)?;
        Ok(())
    }

    fn adaptive_orth(
        &mut self,
        rows: usize,
        cols: usize,
        l_prev: usize,
        reorth: bool,
    ) -> Result<()> {
        // The accepted basis and the new block are host-resident between
        // steps (they arrive via the sample reduction): block-CGS
        // projection plus the block's CholQR run on the CPU, stalling
        // every survivor equally.
        let passes = if reorth { 2.0 } else { 1.0 };
        let flops = passes
            * (4.0 * (rows * l_prev) as f64 * cols as f64
                + 2.0 * (rows * rows) as f64 * cols as f64);
        let cost = self.sim.gpu(0).cost().clone();
        let secs = cost.host_flops(flops) + cost.host_cholesky(rows);
        for gi in self.sim.alive_indices() {
            self.sim.gpu_mut(gi).charge_raw(Phase::OrthIter, secs);
        }
        Ok(())
    }

    fn adaptive_gemm_c(&mut self, l_new: usize) -> Result<()> {
        // Broadcast the refined block, then C(i) = W · A(i)ᵀ.
        self.b_bcast = self.sim.broadcast(Phase::Comms, &Mat::zeros(l_new, self.n));
        let mut c_parts = Vec::with_capacity(self.a_parts.len());
        for ((j, ap), &gi) in self.a_parts.iter().enumerate().zip(&self.slots) {
            let mi = ap.rows();
            let gpu = self.sim.gpu_mut(gi);
            let mut ci = gpu.alloc(l_new, mi);
            gpu.gemm(
                Phase::GemmIter,
                1.0,
                &self.b_bcast[j],
                Trans::No,
                ap,
                Trans::Yes,
                0.0,
                &mut ci,
            )?;
            c_parts.push(ci);
        }
        self.c_parts = c_parts;
        Ok(())
    }

    fn adaptive_gemm_w(&mut self, l_new: usize) -> Result<()> {
        // W(i) = C(i) · A(i), reduce back to the host.
        let mut w_next = Vec::with_capacity(self.a_parts.len());
        for ((j, ap), &gi) in self.a_parts.iter().enumerate().zip(&self.slots) {
            let gpu = self.sim.gpu_mut(gi);
            let mut wi = gpu.alloc(l_new, self.n);
            gpu.gemm(
                Phase::GemmIter,
                1.0,
                &self.c_parts[j],
                Trans::No,
                ap,
                Trans::No,
                0.0,
                &mut wi,
            )?;
            w_next.push(wi);
        }
        self.sim.reduce_to_host(Phase::Comms, &w_next)?;
        Ok(())
    }

    fn adaptive_probe(&mut self, next_inc: usize, l_now: usize) -> Result<()> {
        // The residual probe runs on the host-resident sketch.
        let cost = self.sim.gpu(0).cost().clone();
        let secs = cost.host_flops(4.0 * (next_inc * l_now) as f64 * self.n as f64);
        for gi in self.sim.alive_indices() {
            self.sim.gpu_mut(gi).charge_raw(Phase::Other, secs);
        }
        Ok(())
    }

    fn adaptive_finish(&mut self, k: usize) -> Result<()> {
        // Restart oracle: truncated QP3 skeleton of the final ℓ × n
        // sketch on the first surviving GPU, then the distributed
        // tall-skinny CholQR of A·P₁:ₖ.
        {
            let n = self.n;
            let gi0 = self.slots.first().copied().ok_or(MatrixError::Internal {
                op: "MultiGpuExec",
                invariant: "at least one surviving GPU",
            })?;
            let gpu0 = self.sim.gpu_mut(gi0);
            gpu0.charge(Phase::Qrcp, gpu0.cost().gemv(k, n) * k as f64);
            if n > k {
                gpu0.charge(Phase::Qrcp, gpu0.cost().trsm(k, n - k));
            }
        }
        let chunks = self.sim.row_chunks(self.m);
        let alive = self.sim.alive_indices();
        let mut g_parts = Vec::with_capacity(chunks.len());
        for (&(_, len), &gi) in chunks.iter().zip(&alive) {
            let gpu = self.sim.gpu_mut(gi);
            gpu.charge(Phase::Qr, gpu.cost().blas1(len * k, 2.0)); // gather copy
            gpu.charge(Phase::Qr, gpu.cost().syrk(k, len));
            g_parts.push(gpu.alloc(k, k));
        }
        self.sim.reduce_to_host(Phase::Comms, &g_parts)?;
        let cost = self.sim.gpu(0).cost().clone();
        let chol = cost.host_cholesky(k);
        for gi in self.sim.alive_indices() {
            self.sim.gpu_mut(gi).charge_raw(Phase::Qr, chol);
        }
        self.sim.broadcast(Phase::Comms, &Mat::zeros(k, k));
        for (&(_, len), &gi) in chunks.iter().zip(&alive) {
            let gpu = self.sim.gpu_mut(gi);
            gpu.charge(Phase::Qr, gpu.cost().trsm(k, len));
        }
        self.sim.barrier();
        Ok(())
    }

    fn adaptive_update_pivot(&mut self, l_rows: usize, n_trail: usize, k_b: usize) -> Result<()> {
        if n_trail == 0 || k_b == 0 {
            return Ok(());
        }
        // The sample panel is host-resident (it arrived via the sample
        // reduction): the trailing-sample update (QR of the lead block
        // plus two projection gemms) and the truncated QP3 run on the
        // CPU and the pivot order is broadcast.
        let k_done = self.n - n_trail;
        let cost = self.sim.gpu(0).cost().clone();
        let qp3 = cost.host_flops(4.0 * (l_rows * k_done) as f64 * k_done as f64)
            + cost.host_flops(4.0 * (l_rows * k_done) as f64 * n_trail as f64)
            + cost.host_flops(4.0 * (l_rows * k_b) as f64 * n_trail as f64);
        for gi in self.sim.alive_indices() {
            self.sim.gpu_mut(gi).charge_raw(Phase::Qrcp, qp3);
        }
        self.sim.broadcast(Phase::Comms, &Mat::zeros(1, n_trail));
        Ok(())
    }

    fn adaptive_update_panel(&mut self, k_b: usize, k_done: usize) -> Result<()> {
        if k_b == 0 {
            return Ok(());
        }
        // Each GPU gathers its local rows of the k_b new pivot columns,
        // projects them against the accepted panels, and contributes its
        // share of the projection coefficients and the Gram matrix to one
        // reduction (a (k_done + k_b) × k_b block per device).
        let chunks = self.sim.row_chunks(self.m);
        let alive = self.sim.alive_indices();
        let mut parts = Vec::with_capacity(chunks.len());
        for (&(_, len), &gi) in chunks.iter().zip(&alive) {
            let gpu = self.sim.gpu_mut(gi);
            gpu.charge(Phase::Qr, gpu.cost().blas1(len * k_b, 2.0)); // gather copy
            if k_done > 0 {
                // Two projection passes ("twice is enough").
                for _ in 0..2 {
                    gpu.charge(Phase::Qr, gpu.cost().gemm(k_done, k_b, len));
                    gpu.charge(Phase::Qr, gpu.cost().gemm(len, k_b, k_done));
                }
            }
            // GEMM-formed Gram: at panel widths the SYRK tile shape is
            // too small to keep the device busy.
            gpu.charge(Phase::Qr, gpu.cost().gemm(k_b, k_b, len));
            parts.push(gpu.alloc(k_done + k_b, k_b));
        }
        self.sim.reduce_to_host(Phase::Comms, &parts)?;
        let cost = self.sim.gpu(0).cost().clone();
        let chol = cost.host_cholesky(k_b);
        for gi in self.sim.alive_indices() {
            self.sim.gpu_mut(gi).charge_raw(Phase::Qr, chol);
        }
        self.sim.broadcast(Phase::Comms, &Mat::zeros(k_b, k_b));
        for (&(_, len), &gi) in chunks.iter().zip(&alive) {
            let gpu = self.sim.gpu_mut(gi);
            gpu.charge(Phase::Qr, gpu.cost().trsm(k_b, len));
        }
        self.sim.barrier();
        Ok(())
    }

    fn adaptive_update_trailing(&mut self, k_b: usize, n_trail: usize) -> Result<()> {
        if k_b == 0 || n_trail <= k_b {
            return Ok(());
        }
        // Exact trailing coupling Q_newᵀ·A_rest: each GPU gathers its
        // local rows of the still-trailing columns and contributes a
        // k_b × n_rest partial product to one reduction.
        let n_rest = n_trail - k_b;
        let chunks = self.sim.row_chunks(self.m);
        let alive = self.sim.alive_indices();
        let mut parts = Vec::with_capacity(chunks.len());
        for (&(_, len), &gi) in chunks.iter().zip(&alive) {
            let gpu = self.sim.gpu_mut(gi);
            gpu.charge(Phase::Qr, gpu.cost().blas1(len * n_rest, 2.0)); // gather copy
            gpu.charge(Phase::Qr, gpu.cost().gemm(k_b, n_rest, len));
            parts.push(gpu.alloc(k_b, n_rest));
        }
        self.sim.reduce_to_host(Phase::Comms, &parts)?;
        self.sim.barrier();
        Ok(())
    }

    fn charge_fallback(
        &mut self,
        rows: usize,
        cols: usize,
        rung: super::Rung,
        _reorth: bool,
    ) -> Result<()> {
        let s = rows.min(cols);
        let long = rows.max(cols);
        let cost = self.sim.gpu(0).cost().clone();
        let secs = match rung {
            super::Rung::CholQr => return Ok(()),
            super::Rung::ShiftedCholQr2 => {
                // Shifted pass + two corrective passes of distributed
                // CholQR; the Gram reduction and shift run on the host.
                cost.blas1(s, 2.0)
                    + 3.0 * (cost.syrk(s, long) + cost.host_cholesky(s) + cost.trsm(s, long))
            }
            super::Rung::Householder => {
                // The Householder rung gathers the block to the host and
                // factors it there (LAPACK-style 2·long·s² flop count,
                // twice for the explicit Q formation).
                cost.transfer(8 * (rows * cols) as u64)
                    + cost.host_flops(4.0 * long as f64 * s as f64 * s as f64)
            }
        };
        // Host-side rescue work stalls every survivor equally: exempt
        // from straggler scaling, like the reduced host QR.
        for gi in self.sim.alive_indices() {
            self.sim.gpu_mut(gi).charge_raw(Phase::OrthIter, secs);
        }
        Ok(())
    }

    fn charge_health_check(&mut self, rows: usize, cols: usize) -> Result<()> {
        // The scanned block lives on the host between stages; one
        // streaming reduction over its entries.
        let cost = self.sim.gpu(0).cost().clone();
        let secs = cost.host_flops((rows * cols) as f64);
        for gi in self.sim.alive_indices() {
            self.sim.gpu_mut(gi).charge_raw(Phase::Other, secs);
        }
        Ok(())
    }

    fn charge_checksum_encode(&mut self, m: usize, n: usize, k: usize) -> Result<()> {
        // The protected products are formed as per-device partial GEMMs
        // over row chunks of the inner dimension, so each survivor
        // encodes the references of its own share; the partial reference
        // vectors merge in the same host reduction as the panel itself.
        let alive = self.sim.alive_indices();
        let share = share_of(k, alive.len());
        for gi in alive {
            let gpu = self.sim.gpu_mut(gi);
            gpu.charge_kernel(
                Phase::Integrity,
                "abft",
                [m, n, share],
                rlra_blas::checksum::encode_flops(m, n, share) as f64,
                8.0 * (m * share + share * n + m + n) as f64,
                gpu.cost().blas1_reduce(m * share)
                    + gpu.cost().blas1_reduce(share * n)
                    + gpu.cost().gemv(share, n)
                    + gpu.cost().gemv(m, share),
            );
        }
        Ok(())
    }

    fn verify_integrity(
        &mut self,
        m: usize,
        n: usize,
        k: usize,
        outcome: IntegrityOutcome,
    ) -> Result<()> {
        // Each survivor sweeps the column/row digests of its partial
        // panel and ships the two reference vectors to the host, which
        // folds and compares them next to the panel reduction.
        let alive = self.sim.alive_indices();
        for &gi in &alive {
            let gpu = self.sim.gpu_mut(gi);
            gpu.charge_kernel(
                Phase::Integrity,
                "abft",
                [m, n, 0],
                rlra_blas::checksum::verify_flops(m, n) as f64,
                8.0 * (m * n) as f64,
                gpu.cost().blas1_reduce(m * n) * 2.0,
            );
            gpu.charge(Phase::Integrity, gpu.cost().transfer(8 * (m + n) as u64));
        }
        let cost = self.sim.gpu(0).cost().clone();
        match outcome {
            IntegrityOutcome::Clean => {}
            IntegrityOutcome::Corrected => {
                // The repair happens on the host-resident reduced panel:
                // one length-k inner product, a single-entry write-back,
                // and a host re-verify sweep — stalling every survivor.
                let secs = cost.host_flops(2.0 * k.max(1) as f64)
                    + cost.transfer(8)
                    + cost.host_flops(rlra_blas::checksum::verify_flops(m, n) as f64);
                for gi in self.sim.alive_indices() {
                    self.sim.gpu_mut(gi).charge_raw(Phase::Integrity, secs);
                }
            }
            IntegrityOutcome::Rerun => {
                // Re-run the distributed product (k > 0) or the CholQR
                // pass that produced the block (k == 0), then host
                // re-verify.
                for gi in self.sim.alive_indices() {
                    let gpu = self.sim.gpu_mut(gi);
                    let redo = if k > 0 {
                        gpu.cost().gemm(m, n, share_of(k, alive.len()))
                    } else {
                        gpu.cost().syrk(m, n) + gpu.cost().host_cholesky(m) + gpu.cost().trsm(m, n)
                    };
                    gpu.charge(Phase::Integrity, redo);
                }
                let reverify = cost.host_flops(rlra_blas::checksum::verify_flops(m, n) as f64);
                for gi in self.sim.alive_indices() {
                    self.sim.gpu_mut(gi).charge_raw(Phase::Integrity, reverify);
                }
            }
        }
        Ok(())
    }

    fn take_sdc_events(&mut self) -> Vec<rlra_gpu::SdcEvent> {
        self.sim.drain_sdc_events()
    }

    fn verify_probe(&mut self, probes: usize, k: usize) -> Result<()> {
        // Probe GEMMs against the distributed A, plus the thin host-side
        // products against Q and R.
        let chunks = self.sim.row_chunks(self.m);
        let alive = self.sim.alive_indices();
        for (&(_, len), &gi) in chunks.iter().zip(&alive) {
            let gpu = self.sim.gpu_mut(gi);
            gpu.charge(Phase::Other, gpu.cost().gemm(probes, self.n, len));
        }
        let cost = self.sim.gpu(0).cost().clone();
        let secs = cost.host_flops(2.0 * probes as f64 * k as f64 * (self.m + self.n) as f64);
        for gi in self.sim.alive_indices() {
            self.sim.gpu_mut(gi).charge_raw(Phase::Other, secs);
        }
        self.sim.barrier();
        Ok(())
    }

    fn elapsed(&self) -> f64 {
        self.sim.time()
    }

    fn tracer(&self) -> Option<Tracer> {
        self.sim.tracer()
    }

    fn charge_recovery(&mut self, secs: f64) {
        // Backoff is wall-clock waiting on every survivor, not kernel
        // work: exempt from straggler scaling.
        for gi in self.sim.alive_indices() {
            self.sim.gpu_mut(gi).charge_raw(Phase::Recovery, secs);
        }
    }

    fn charge_speculation(&mut self, device: usize, secs: f64) {
        // The cancelled racer's in-flight work is real wall time; it
        // lands on the device that ran it, raw (the race already priced
        // in any slowdown).
        if device < self.sim.ng() {
            self.sim.gpu_mut(device).charge_raw(Phase::Recovery, secs);
        }
    }

    fn device_load(&self) -> Vec<(usize, f64, u64)> {
        // Only devices still scheduling work: a quarantined straggler
        // must not re-trigger the watchdog.
        self.sim
            .alive_indices()
            .into_iter()
            .map(|gi| {
                let m = self.sim.gpu(gi).device_metrics();
                (gi, m.busy_seconds, m.launches)
            })
            .collect()
    }

    fn mitigate_straggler(&mut self, device: usize) -> Result<f64> {
        if device >= self.sim.ng() {
            return Err(MatrixError::Internal {
                op: "MultiGpuExec::mitigate_straggler",
                invariant: "straggler device index within the fleet",
            });
        }
        if self.sim.gpu(device).is_dead() || self.sim.gpu(device).is_quarantined() {
            return Ok(0.0);
        }
        let survivors: Vec<usize> = self
            .sim
            .alive_indices()
            .into_iter()
            .filter(|&gi| gi != device)
            .collect();
        if survivors.is_empty() {
            return Err(MatrixError::Unsupported {
                backend: self.name(),
                feature: "straggler re-dispatch (no surviving devices to race)".into(),
            });
        }
        // Race economics. A straggler *stays* slow, so the watchdog is
        // not racing a single kernel: quarantining the device spares its
        // whole remaining share of the run. The projection window is
        // `SPECULATION_TAIL` partition passes (the pipeline tail of a
        // mid-range power-iteration sweep): keeping the straggler costs
        // its slowdown times the nominal per-pass GEMM for that window,
        // while quarantining costs a one-time re-upload of its block
        // rows plus the window at the survivors' *post-quarantine*
        // partition size — `ceil(m / survivors)` rows each, priced
        // through the cost model rather than scaled linearly, because
        // occupancy makes the bigger partition more than
        // proportionally slower.
        let m_d = self
            .slots
            .iter()
            .position(|&gi| gi == device)
            .map_or_else(|| self.m / self.sim.ng().max(1), |j| self.a_parts[j].rows());
        let l = self.l.max(1);
        let cost = self.sim.gpu(survivors[0]).cost().clone();
        let w_nom = cost.gemm(l, self.n.max(1), m_d.max(1));
        let m_new = self.m.div_ceil(survivors.len()).max(1);
        let w_new = cost.gemm(l, self.n.max(1), m_new);
        let redo = m_d.div_ceil(survivors.len()).max(1);
        let w_redo = cost.gemm(l, self.n.max(1), redo);
        let t_fetch = cost.transfer(8 * (m_d * self.n) as u64);
        let tail = SPECULATION_TAIL as f64;
        let t_straggler = self.sim.gpu(device).slowdown().max(1.0) * w_nom * tail;
        let t_surv = t_fetch + w_new * tail;
        // What the race costs when it is decided: the fetch plus the
        // straggler's in-flight block redone in shares by the
        // survivors. The spared (or dragged) tail is then realized by
        // the ordinary stage hooks on the redistributed partitions —
        // charging the projection here would double-count it.
        let t_cancel = t_fetch + w_redo;
        let start = self.sim.time();
        if t_surv < t_straggler {
            // Survivors win: cancel the straggler's in-flight block
            // (charging the time it ran before cancellation), quarantine
            // it, and redistribute its rows over the winners.
            self.charge_speculation(device, t_cancel);
            self.sim.gpu_mut(device).quarantine();
            for &gi in &survivors {
                self.sim.gpu_mut(gi).charge_raw(Phase::Recovery, t_cancel);
            }
            self.a_parts = self.sim.distribute_rows_shape(self.m, self.n);
            self.slots = self.sim.alive_indices();
            if !self.b_bcast.is_empty() {
                self.b_bcast = self.sim.broadcast(Phase::Recovery, &Mat::zeros(l, self.n));
            }
            if !self.c_parts.is_empty() {
                let mut c_parts = Vec::with_capacity(self.a_parts.len());
                for (ap, &gi) in self.a_parts.iter().zip(&self.slots) {
                    let mi = ap.rows();
                    c_parts.push(self.sim.gpu_mut(gi).alloc(l, mi));
                }
                self.c_parts = c_parts;
            }
            let saved = t_straggler - t_surv;
            if let Some(t) = self.sim.tracer() {
                t.emit(TraceEvent::Speculation {
                    device,
                    outcome: "survivors-won",
                    saved,
                    time: start,
                });
            }
            Ok(saved)
        } else {
            // The straggler beats the projection (tiny blocks or a mild
            // slowdown): its in-flight pass lands first, the speculative
            // copies are cancelled, and the survivors are charged the
            // aborted fetch + redo. No quarantine, nothing saved.
            for &gi in &survivors {
                self.charge_speculation(gi, t_cancel);
            }
            if let Some(t) = self.sim.tracer() {
                t.emit(TraceEvent::Speculation {
                    device,
                    outcome: "straggler-won",
                    saved: 0.0,
                    time: start,
                });
            }
            Ok(0.0)
        }
    }

    fn checkpoint_hook(&mut self, bytes: u64) -> Result<()> {
        // Every survivor drains at a barrier, then the host gathers the
        // device-resident share over PCIe and serializes the snapshot.
        self.sim.barrier();
        let cost = self.sim.gpu(0).cost().clone();
        let secs = cost.transfer(bytes) + cost.host_flops(bytes as f64);
        for gi in self.sim.alive_indices() {
            self.sim.gpu_mut(gi).charge_raw(Phase::Other, secs);
        }
        Ok(())
    }

    fn export_account(&mut self) -> Result<Vec<u8>> {
        let mut w = crate::checkpoint::SnapWriter::new();
        crate::checkpoint::write_fleet_account(&mut w, &self.sim.export_account());
        Ok(w.into_bytes())
    }

    fn restore_account(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = crate::checkpoint::SnapReader::new(bytes);
        let acc = crate::checkpoint::read_fleet_account(&mut r)?;
        if r.remaining() != 0 {
            return Err(MatrixError::CheckpointCorrupt {
                detail: "trailing bytes in fleet account blob",
            });
        }
        self.sim.restore_account(&acc)?;
        // The snapshot may carry dead or quarantined devices this fresh
        // simulator did not know about: re-derive the distribution.
        if self.m > 0 {
            self.a_parts = self.sim.distribute_rows_shape(self.m, self.n);
            self.slots = self.sim.alive_indices();
        }
        Ok(())
    }

    fn recover_device_loss(&mut self, device: usize, at: u64) -> Result<()> {
        if device >= self.sim.ng() {
            return Err(MatrixError::Internal {
                op: "MultiGpuExec::recover_device_loss",
                invariant: "faulted device index within the fleet",
            });
        }
        if !self.sim.gpu(device).is_dead() {
            self.sim.gpu_mut(device).mark_dead(device, at);
        }
        let survivors = self.sim.alive_indices();
        if survivors.is_empty() {
            return Err(MatrixError::Unsupported {
                backend: self.name(),
                feature: "device-loss recovery with zero surviving GPUs".into(),
            });
        }
        // Rows the dead GPU owned (its distributed block of A).
        let lost_rows = self
            .slots
            .iter()
            .position(|&gi| gi == device)
            .map_or_else(|| self.m / self.sim.ng().max(1), |j| self.a_parts[j].rows());
        let l = self.l.max(1);
        let ns = survivors.len();
        let cost = self.sim.gpu(survivors[0]).cost().clone();
        // Sketch-aware recovery, charged to the Recovery phase on every
        // survivor:
        // 1. re-upload the lost block rows of A over PCIe,
        let reupload = cost.transfer(8 * (lost_rows * self.n) as u64);
        // 2. re-draw only the lost Ω rows (split over the survivors) and
        //    re-form their sample contribution (Ω and the sketch are
        //    i.i.d. Gaussian, so fresh rows are distributionally
        //    exchangeable with the lost ones),
        let share = lost_rows.div_ceil(ns);
        let redraw = cost.curand(l * share) + cost.gemm(l, self.n, share);
        // 3. re-orthogonalize the re-drawn block against the accepted
        //    basis (one block-CGS pass: two projection GEMMs + CholQR).
        let reorth = cost.gemm(l, self.n, l)
            + cost.gemm(l, l, self.n)
            + cost.syrk(l, self.n)
            + cost.host_cholesky(l)
            + cost.trsm(l, self.n);
        for &gi in &survivors {
            self.sim
                .gpu_mut(gi)
                .charge_raw(Phase::Recovery, reupload + redraw + reorth);
        }
        // Redistribute A over the survivors and refresh the slot map.
        self.a_parts = self.sim.distribute_rows_shape(self.m, self.n);
        self.slots = self.sim.alive_indices();
        // Rebuild distributed intermediates for the shrunk fleet so the
        // retried stage hook sees consistent shapes.
        if !self.b_bcast.is_empty() {
            self.b_bcast = self.sim.broadcast(Phase::Recovery, &Mat::zeros(l, self.n));
        }
        if !self.c_parts.is_empty() {
            let mut c_parts = Vec::with_capacity(self.a_parts.len());
            for (ap, &gi) in self.a_parts.iter().zip(&self.slots) {
                let mi = ap.rows();
                c_parts.push(self.sim.gpu_mut(gi).alloc(l, mi));
            }
            self.c_parts = c_parts;
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<ExecReport> {
        let ng = self.sim.ng();
        let (mut launches, mut syncs) = (0u64, 0u64);
        for i in 0..ng {
            launches += self.sim.gpu(i).launches;
            syncs += self.sim.gpu(i).syncs;
        }
        let timeline = self.sim.breakdown();
        let report = ExecReport {
            seconds: self.sim.time(),
            recovery_seconds: timeline.get(Phase::Recovery),
            timeline,
            launches,
            syncs,
            comms: self.sim.comms_time(),
            devices: ng,
            faults_injected: self.sim.faults_injected(),
            retries: 0,
            devices_lost: 0,
            breakdowns: 0,
            fallbacks: 0,
            ladder_histogram: [0; 3],
            speculations: 0,
            sdc_injected: self.sim.sdc_injected(),
            sdc_detected: 0,
            sdc_corrected: 0,
            sdc_rollbacks: 0,
            metrics: self.sim.metrics(),
        };
        self.mg.absorb(&self.sim)?;
        // Undrained SDC events go home to the device that fired them;
        // the injectors follow.
        for ev in self.sim.drain_sdc_events() {
            if ev.device < ng {
                self.mg.gpu_mut(ev.device).requeue_sdc_events(vec![ev]);
            }
        }
        for i in 0..ng {
            if let Some(inj) = self.sim.gpu_mut(i).take_injector() {
                self.mg.gpu_mut(i).set_injector(Some(inj));
            }
            if let Some(sdc) = self.sim.gpu_mut(i).take_sdc_injector() {
                self.mg.gpu_mut(i).set_sdc_injector(Some(sdc));
            }
        }
        if let Some(tr) = self.sim.take_tracer() {
            self.mg.set_tracer(Some(tr));
        }
        self.sim.reset();
        self.a_parts.clear();
        self.b_bcast.clear();
        self.c_parts.clear();
        self.slots.clear();
        Ok(report)
    }
}
