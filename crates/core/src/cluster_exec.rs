//! Distributed-memory execution of the fixed-rank sampler — the setting
//! of the paper's closing prediction (§11: the benefits of random
//! sampling "increase on a computer with higher communication cost, like
//! a distributed-memory computer").
//!
//! The layout extends §4's single-node scheme one level up: `A` is split
//! block-row-wise across nodes (proportionally to their GPU counts) and
//! again across each node's GPUs; the short-wide reductions run
//! PCIe-locally first and then as α-β tree collectives over the
//! interconnect. A distributed QP3 baseline is modeled alongside: it
//! pays a **latency-bound all-reduce per pivot** (the pivot decision
//! cannot be batched), which is exactly why its gap to random sampling
//! widens with node count.

use crate::config::{SamplerConfig, SamplingKind};
use rand::Rng;
use rlra_blas::Trans;
use rlra_gpu::{Cluster, DMat, ExecMode, Phase, Timeline};
use rlra_matrix::{Mat, MatrixError, Result};

/// Timing report of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRunReport {
    /// Simulated wall-clock seconds (slowest GPU anywhere).
    pub seconds: f64,
    /// Inter-node communication seconds.
    pub comms_inter: f64,
    /// Per-phase breakdown (max across nodes).
    pub timeline: Timeline,
    /// Nodes × GPUs-per-node used.
    pub nodes: usize,
    /// Total GPUs.
    pub total_gpus: usize,
}

/// Runs the fixed-rank sampler across a simulated cluster (timing-level;
/// requires [`ExecMode::DryRun`] — the distributed numerics are already
/// validated at the multi-GPU level, and the cluster study is about
/// communication shape at scale).
///
/// # Errors
///
/// Returns configuration/parameter errors; only Gaussian sampling is
/// supported.
pub fn sample_fixed_rank_cluster(
    cluster: &mut Cluster,
    m: usize,
    n: usize,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<ClusterRunReport> {
    cfg.validate(m, n)?;
    if !matches!(cfg.sampling, SamplingKind::Gaussian) {
        return Err(MatrixError::InvalidParameter {
            name: "sampling",
            message: "cluster path supports Gaussian sampling only".into(),
        });
    }
    if cluster.mode() != ExecMode::DryRun {
        return Err(MatrixError::InvalidParameter {
            name: "cluster",
            message: "cluster runs are timing studies; use ExecMode::DryRun".into(),
        });
    }
    let l = cfg.l();
    let k = cfg.k;
    let nodes = cluster.nodes();
    let t0 = cluster.time();

    // --- Distribute A: node row blocks, then per-GPU blocks ----------------
    let node_chunks = cluster.node_row_chunks(m);
    let mut a_parts: Vec<Vec<DMat>> = Vec::with_capacity(nodes);
    for (ni, &(_, len)) in node_chunks.iter().enumerate() {
        let node = cluster.node_mut(ni);
        a_parts.push(node.distribute_rows_shape(len, n));
    }

    // --- Step 1a: local sampling, node reduce, inter-node allreduce --------
    let reduce_b = |cluster: &mut Cluster, a_parts: &[Vec<DMat>], rng: &mut dyn FnMut(&mut rlra_gpu::Gpu, usize) -> DMat, phase: Phase| -> Result<()> {
        let mut node_bs = Vec::with_capacity(nodes);
        for (ni, parts) in a_parts.iter().enumerate() {
            let node = cluster.node_mut(ni);
            let mut b_parts = Vec::with_capacity(node.ng());
            for (gi, ap) in parts.iter().enumerate() {
                let gpu = node.gpu_mut(gi);
                let src = rng(gpu, ap.rows());
                let mut bi = gpu.alloc(l, n);
                gpu.gemm(phase, 1.0, &src, Trans::No, ap, Trans::No, 0.0, &mut bi)?;
                b_parts.push(bi);
            }
            node_bs.push(node.reduce_to_host(Phase::Comms, &b_parts)?);
        }
        cluster.allreduce_host(Phase::Comms, &node_bs)?;
        Ok(())
    };

    // Initial sampling: Ω chunks drawn per GPU.
    {
        let mut draw = |gpu: &mut rlra_gpu::Gpu, rows: usize| -> DMat {
            gpu.charge(Phase::Prng, gpu.cost().curand(l * rows));
            gpu.resident_shape(l, rows)
        };
        reduce_b(cluster, &a_parts, &mut draw, Phase::Sampling)?;
    }
    let _ = rng; // cluster runs are dry; the RNG stream is not consumed

    // --- Step 1b: power iterations -----------------------------------------
    for _ in 0..cfg.q {
        // Host QR of B on node 0, broadcast over the interconnect, then
        // PCIe-broadcast within each node.
        {
            let node0 = cluster.node_mut(0);
            let cost = node0.gpu(0).cost().clone();
            let passes = if cfg.reorth { 2.0 } else { 1.0 };
            let secs = cost.host_flops(passes * 2.0 * (l * l * n) as f64) + cost.host_cholesky(l);
            for g in 0..node0.ng() {
                node0.gpu_mut(g).charge(Phase::OrthIter, secs);
            }
        }
        cluster.broadcast_host(Phase::Comms, &Mat::zeros(l, n));
        for ni in 0..nodes {
            let node = cluster.node_mut(ni);
            node.broadcast(Phase::Comms, &Mat::zeros(l, n));
        }
        // C(i) = B·A(i)ᵀ, distributed CholQR of C with a global Gram
        // allreduce, then B(i) = C(i)·A(i) and the B reduction.
        let mut node_gs = Vec::with_capacity(nodes);
        for (ni, parts) in a_parts.iter().enumerate() {
            let node = cluster.node_mut(ni);
            let mut g_parts = Vec::with_capacity(node.ng());
            for (gi, ap) in parts.iter().enumerate() {
                let gpu = node.gpu_mut(gi);
                let b_local = gpu.resident_shape(l, n);
                let mut ci = gpu.alloc(l, ap.rows());
                gpu.gemm(Phase::GemmIter, 1.0, &b_local, Trans::No, ap, Trans::Yes, 0.0, &mut ci)?;
                let mut gi_mat = gpu.alloc(l, l);
                gpu.syrk_full(Phase::OrthIter, 1.0, &ci, Trans::No, 0.0, &mut gi_mat)?;
                g_parts.push(gi_mat);
            }
            node_gs.push(node.reduce_to_host(Phase::Comms, &g_parts)?);
        }
        cluster.allreduce_host(Phase::Comms, &node_gs)?;
        // Cholesky of the l×l Gram replicated on every node's host, R̄
        // broadcast intra-node, local TRSM + the next B GEMM.
        for (ni, parts) in a_parts.iter().enumerate() {
            let node = cluster.node_mut(ni);
            {
                let cost = node.gpu(0).cost().clone();
                let secs = cost.host_cholesky(l);
                for g in 0..node.ng() {
                    node.gpu_mut(g).charge(Phase::OrthIter, secs);
                }
            }
            node.broadcast(Phase::Comms, &Mat::zeros(l, l));
            for (gi, ap) in parts.iter().enumerate() {
                let gpu = node.gpu_mut(gi);
                gpu.charge(Phase::OrthIter, gpu.cost().trsm(l, ap.rows()));
            }
        }
        let mut noop = |gpu: &mut rlra_gpu::Gpu, rows: usize| -> DMat { gpu.resident_shape(l, rows) };
        reduce_b(cluster, &a_parts, &mut noop, Phase::GemmIter)?;
    }

    // --- Step 2: QP3 of B on node 0, GPU 0 -----------------------------------
    {
        let node0 = cluster.node_mut(0);
        let gpu0 = node0.gpu_mut(0);
        let b_dev = gpu0.resident_shape(l, n);
        rlra_gpu::algos::gpu_qp3_truncated(gpu0, Phase::Qrcp, &b_dev, k)?;
        if n > k {
            gpu0.charge(Phase::Qrcp, gpu0.cost().trsm(k, n - k));
        }
    }
    // Broadcast the pivot list (tiny) to all nodes.
    cluster.broadcast_host(Phase::Comms, &Mat::zeros(1, k.max(1)));

    // --- Step 3: distributed tall-skinny CholQR of A·P₁:ₖ --------------------
    let mut node_gs = Vec::with_capacity(nodes);
    for (ni, parts) in a_parts.iter().enumerate() {
        let node = cluster.node_mut(ni);
        let mut g_parts = Vec::with_capacity(node.ng());
        for (gi, ap) in parts.iter().enumerate() {
            let gpu = node.gpu_mut(gi);
            gpu.charge(Phase::Qr, gpu.cost().blas1(ap.rows() * k, 2.0)); // gather
            let x = gpu.resident_shape(ap.rows(), k);
            let mut g = gpu.alloc(k, k);
            gpu.syrk_full(Phase::Qr, 1.0, &x, Trans::Yes, 0.0, &mut g)?;
            g_parts.push(g);
        }
        node_gs.push(node.reduce_to_host(Phase::Comms, &g_parts)?);
    }
    cluster.allreduce_host(Phase::Comms, &node_gs)?;
    for (ni, parts) in a_parts.iter().enumerate() {
        let node = cluster.node_mut(ni);
        {
            let cost = node.gpu(0).cost().clone();
            let secs = cost.host_cholesky(k);
            for g in 0..node.ng() {
                node.gpu_mut(g).charge(Phase::Qr, secs);
            }
        }
        node.broadcast(Phase::Comms, &Mat::zeros(k, k));
        for (gi, ap) in parts.iter().enumerate() {
            let gpu = node.gpu_mut(gi);
            gpu.charge(Phase::Qr, gpu.cost().trsm(k, ap.rows()));
        }
    }
    cluster.barrier();

    Ok(ClusterRunReport {
        seconds: cluster.time() - t0,
        comms_inter: cluster.inter_node_comms(),
        timeline: cluster.breakdown(),
        nodes,
        total_gpus: cluster.total_gpus(),
    })
}

/// Timing model of a **distributed truncated QP3** on the same cluster:
/// per pivot, a latency-bound all-reduce (the norms/pivot decision), a
/// pivot-column exchange, the row-distributed BLAS-2 update, and the
/// norm downdate; per panel, the deferred trailing GEMM. Every one of
/// the `k` steps synchronizes the whole machine.
pub fn qp3_cluster_time(cluster: &mut Cluster, m: usize, n: usize, k: usize) -> f64 {
    let nodes = cluster.nodes();
    let total_gpus = cluster.total_gpus();
    let m_local = m.div_ceil(total_gpus);
    let t0 = cluster.time();
    let nb = 32usize;
    for j in 0..k {
        // Pivot decision: partial norms reduced across everything.
        cluster.allreduce_scalar(Phase::Qrcp);
        // Pivot column exchange (the column lives row-distributed; the
        // factored part must be gathered to form the reflector).
        let col_bytes = 8 * (m / nodes.max(1)) as u64;
        let net_secs = cluster.network().tree_collective(nodes, col_bytes);
        for ni in 0..nodes {
            let node = cluster.node_mut(ni);
            for g in 0..node.ng() {
                node.gpu_mut(g).charge(Phase::Qrcp, net_secs);
            }
        }
        // Local BLAS-2 update on each GPU's row slice.
        for ni in 0..nodes {
            let node = cluster.node_mut(ni);
            for g in 0..node.ng() {
                let gpu = node.gpu_mut(g);
                let t = gpu.cost().gemv(m_local.saturating_sub(j / total_gpus).max(1), n - j)
                    + gpu.cost().blas1(n - j, 2.0)
                    + 2.0 * gpu.cost().sync();
                gpu.charge(Phase::Qrcp, t);
            }
        }
        // Deferred trailing update once per panel.
        if (j + 1) % nb == 0 || j + 1 == k {
            for ni in 0..nodes {
                let node = cluster.node_mut(ni);
                for g in 0..node.ng() {
                    let gpu = node.gpu_mut(g);
                    let t = gpu.cost().gemm(m_local, n - j, nb.min(j + 1));
                    gpu.charge(Phase::Qrcp, t);
                }
            }
        }
    }
    cluster.barrier();
    cluster.time() - t0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_gpu::{DeviceSpec, NetworkSpec};

    fn cluster(nodes: usize, gpn: usize, net: NetworkSpec) -> Cluster {
        Cluster::new(nodes, gpn, DeviceSpec::k40c(), net, ExecMode::DryRun)
    }

    fn rs_time(nodes: usize, m: usize) -> ClusterRunReport {
        let mut cl = cluster(nodes, 2, NetworkSpec::infiniband_fdr());
        let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
        sample_fixed_rank_cluster(&mut cl, m, 2_500, &cfg, &mut StdRng::seed_from_u64(1)).unwrap()
    }

    #[test]
    fn strong_scaling_across_nodes() {
        let t1 = rs_time(1, 400_000).seconds;
        let t2 = rs_time(2, 400_000).seconds;
        let t4 = rs_time(4, 400_000).seconds;
        assert!(t2 < t1, "2 nodes must beat 1: {t2} vs {t1}");
        assert!(t4 < t2, "4 nodes must beat 2: {t4} vs {t2}");
        let s4 = t1 / t4;
        assert!(s4 > 2.0, "4-node speedup {s4:.2}");
    }

    #[test]
    fn inter_node_comms_grow_with_nodes_but_stay_minor() {
        let r2 = rs_time(2, 400_000);
        let r8 = rs_time(8, 400_000);
        assert!(r8.comms_inter > r2.comms_inter);
        assert!(r8.comms_inter / r8.seconds < 0.5, "comms should not dominate RS");
    }

    #[test]
    fn qp3_gap_widens_with_node_count() {
        // The §11 prediction, quantified: speedup(RS vs QP3) grows with P.
        let speedup = |nodes: usize| -> f64 {
            let rs = rs_time(nodes, 400_000).seconds;
            let mut cl = cluster(nodes, 2, NetworkSpec::infiniband_fdr());
            let qp3 = qp3_cluster_time(&mut cl, 400_000, 2_500, 64);
            qp3 / rs
        };
        let s1 = speedup(1);
        let s4 = speedup(4);
        assert!(s4 > s1, "gap must widen: {s1:.1}x -> {s4:.1}x");
    }

    #[test]
    fn slower_network_hurts_qp3_more() {
        let ratio = |net: NetworkSpec| -> f64 {
            let mut cl = cluster(4, 2, net.clone());
            let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
            let rs = sample_fixed_rank_cluster(&mut cl, 400_000, 2_500, &cfg, &mut StdRng::seed_from_u64(2))
                .unwrap()
                .seconds;
            let mut cl2 = cluster(4, 2, net);
            let qp3 = qp3_cluster_time(&mut cl2, 400_000, 2_500, 64);
            qp3 / rs
        };
        let ib = ratio(NetworkSpec::infiniband_fdr());
        let eth = ratio(NetworkSpec::ethernet_10g());
        assert!(eth > ib, "10GbE should favor RS even more: IB {ib:.1}x vs Eth {eth:.1}x");
    }

    #[test]
    fn compute_mode_rejected() {
        let mut cl = Cluster::new(2, 1, DeviceSpec::k40c(), NetworkSpec::infiniband_fdr(), ExecMode::Compute);
        let cfg = SamplerConfig::new(8);
        assert!(
            sample_fixed_rank_cluster(&mut cl, 1_000, 200, &cfg, &mut StdRng::seed_from_u64(3))
                .is_err()
        );
    }
}
