//! Distributed-memory execution of the fixed-rank sampler — the setting
//! of the paper's closing prediction (§11: the benefits of random
//! sampling "increase on a computer with higher communication cost, like
//! a distributed-memory computer").
//!
//! Thin wrapper over the unified pipeline
//! ([`crate::backend::run_fixed_rank`]) with the
//! [`crate::backend::ClusterExec`] backend: `A` is split block-row-wise
//! across nodes (proportionally to their GPU counts) and again across
//! each node's GPUs; the short-wide reductions run PCIe-locally first
//! and then as α-β tree collectives over the interconnect. A distributed
//! QP3 baseline is modeled alongside ([`qp3_cluster_time`]): it pays a
//! **latency-bound all-reduce per pivot** (the pivot decision cannot be
//! batched), which is exactly why its gap to random sampling widens with
//! node count.

use crate::backend::{run_fixed_rank, ClusterExec, Input};
use crate::config::SamplerConfig;
use rand::Rng;
use rlra_gpu::{Cluster, Phase};
use rlra_matrix::Result;

/// Timing report of a cluster run (the unified
/// [`crate::backend::ExecReport`]; `comms` is the inter-node share and
/// `devices` the total GPU count).
pub type ClusterRunReport = crate::backend::ExecReport;

/// Runs the fixed-rank sampler across a simulated cluster (timing-level;
/// requires [`rlra_gpu::ExecMode::DryRun`] — the distributed numerics
/// are already validated at the multi-GPU level, and the cluster study
/// is about communication shape at scale).
///
/// # Errors
///
/// Returns configuration/parameter errors and
/// [`rlra_matrix::MatrixError::Unsupported`] for FFT sampling or a
/// compute-mode cluster.
pub fn sample_fixed_rank_cluster(
    cluster: &mut Cluster,
    m: usize,
    n: usize,
    cfg: &SamplerConfig,
    rng: &mut impl Rng,
) -> Result<ClusterRunReport> {
    let mut exec = ClusterExec::new(cluster);
    let (_, report) = run_fixed_rank(&mut exec, Input::Shape(m, n), cfg, rng)?;
    Ok(report)
}

/// Timing model of a **distributed truncated QP3** on the same cluster:
/// per pivot, a latency-bound all-reduce (the norms/pivot decision), a
/// pivot-column exchange, the row-distributed BLAS-2 update, and the
/// norm downdate; per panel, the deferred trailing GEMM. Every one of
/// the `k` steps synchronizes the whole machine.
pub fn qp3_cluster_time(cluster: &mut Cluster, m: usize, n: usize, k: usize) -> f64 {
    let nodes = cluster.nodes();
    let total_gpus = cluster.total_gpus();
    let m_local = m.div_ceil(total_gpus);
    let t0 = cluster.time();
    let nb = 32usize;
    for j in 0..k {
        // Pivot decision: partial norms reduced across everything.
        cluster.allreduce_scalar(Phase::Qrcp);
        // Pivot column exchange (the column lives row-distributed; the
        // factored part must be gathered to form the reflector).
        let col_bytes = 8 * (m / nodes.max(1)) as u64;
        let net_secs = cluster.network().tree_collective(nodes, col_bytes);
        for ni in 0..nodes {
            let node = cluster.node_mut(ni);
            for g in 0..node.ng() {
                node.gpu_mut(g).charge(Phase::Qrcp, net_secs);
            }
        }
        // Local BLAS-2 update on each GPU's row slice.
        for ni in 0..nodes {
            let node = cluster.node_mut(ni);
            for g in 0..node.ng() {
                let gpu = node.gpu_mut(g);
                let t = gpu
                    .cost()
                    .gemv(m_local.saturating_sub(j / total_gpus).max(1), n - j)
                    + gpu.cost().blas1(n - j, 2.0)
                    + 2.0 * gpu.cost().sync();
                gpu.charge(Phase::Qrcp, t);
            }
        }
        // Deferred trailing update once per panel.
        if (j + 1) % nb == 0 || j + 1 == k {
            for ni in 0..nodes {
                let node = cluster.node_mut(ni);
                for g in 0..node.ng() {
                    let gpu = node.gpu_mut(g);
                    let t = gpu.cost().gemm(m_local, n - j, nb.min(j + 1));
                    gpu.charge(Phase::Qrcp, t);
                }
            }
        }
    }
    cluster.barrier();
    cluster.time() - t0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_gpu::{DeviceSpec, ExecMode, NetworkSpec};

    fn cluster(nodes: usize, gpn: usize, net: NetworkSpec) -> Cluster {
        Cluster::new(nodes, gpn, DeviceSpec::k40c(), net, ExecMode::DryRun).unwrap()
    }

    fn rs_time(nodes: usize, m: usize) -> ClusterRunReport {
        let mut cl = cluster(nodes, 2, NetworkSpec::infiniband_fdr());
        let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
        sample_fixed_rank_cluster(&mut cl, m, 2_500, &cfg, &mut StdRng::seed_from_u64(1)).unwrap()
    }

    #[test]
    fn strong_scaling_across_nodes() {
        let t1 = rs_time(1, 400_000).seconds;
        let t2 = rs_time(2, 400_000).seconds;
        let t4 = rs_time(4, 400_000).seconds;
        assert!(t2 < t1, "2 nodes must beat 1: {t2} vs {t1}");
        assert!(t4 < t2, "4 nodes must beat 2: {t4} vs {t2}");
        let s4 = t1 / t4;
        assert!(s4 > 2.0, "4-node speedup {s4:.2}");
    }

    #[test]
    fn inter_node_comms_grow_with_nodes_but_stay_minor() {
        let r2 = rs_time(2, 400_000);
        let r8 = rs_time(8, 400_000);
        assert!(r8.comms > r2.comms);
        assert!(r8.comms / r8.seconds < 0.5, "comms should not dominate RS");
    }

    #[test]
    fn qp3_gap_widens_with_node_count() {
        // The §11 prediction, quantified: speedup(RS vs QP3) grows with P.
        let speedup = |nodes: usize| -> f64 {
            let rs = rs_time(nodes, 400_000).seconds;
            let mut cl = cluster(nodes, 2, NetworkSpec::infiniband_fdr());
            let qp3 = qp3_cluster_time(&mut cl, 400_000, 2_500, 64);
            qp3 / rs
        };
        let s1 = speedup(1);
        let s4 = speedup(4);
        assert!(s4 > s1, "gap must widen: {s1:.1}x -> {s4:.1}x");
    }

    #[test]
    fn slower_network_hurts_qp3_more() {
        let ratio = |net: NetworkSpec| -> f64 {
            let mut cl = cluster(4, 2, net.clone());
            let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
            let rs = sample_fixed_rank_cluster(
                &mut cl,
                400_000,
                2_500,
                &cfg,
                &mut StdRng::seed_from_u64(2),
            )
            .unwrap()
            .seconds;
            let mut cl2 = cluster(4, 2, net);
            let qp3 = qp3_cluster_time(&mut cl2, 400_000, 2_500, 64);
            qp3 / rs
        };
        let ib = ratio(NetworkSpec::infiniband_fdr());
        let eth = ratio(NetworkSpec::ethernet_10g());
        assert!(
            eth > ib,
            "10GbE should favor RS even more: IB {ib:.1}x vs Eth {eth:.1}x"
        );
    }

    #[test]
    fn compute_mode_rejected() {
        let mut cl = Cluster::new(
            2,
            1,
            DeviceSpec::k40c(),
            NetworkSpec::infiniband_fdr(),
            ExecMode::Compute,
        )
        .unwrap();
        let cfg = SamplerConfig::new(8);
        let err =
            sample_fixed_rank_cluster(&mut cl, 1_000, 200, &cfg, &mut StdRng::seed_from_u64(3))
                .unwrap_err();
        assert!(matches!(
            err,
            rlra_matrix::MatrixError::Unsupported {
                backend: "cluster",
                ..
            }
        ));
    }
}
