//! The deterministic baseline: truncated QP3 (the algorithm random
//! sampling is compared against throughout the paper).

use crate::result::LowRankApprox;
use rlra_gpu::{DMat, Gpu, Phase};
use rlra_matrix::{Mat, Result};

/// Rank-`k` approximation by truncated QP3 on the CPU.
///
/// # Errors
///
/// Propagates factorization errors (invalid `k`).
pub fn qp3_low_rank(a: &Mat, k: usize) -> Result<LowRankApprox> {
    let res = rlra_lapack::qp3_blocked(a, k, rlra_lapack::qrcp::QP3_BLOCK)?;
    Ok(LowRankApprox {
        q: res.q(),
        r: res.r(),
        perm: res.perm.clone(),
    })
}

/// Rank-`k` approximation by truncated QP3 on the simulated GPU: charges
/// the QP3 kernel sequence to [`Phase::Qrcp`] and returns the
/// factorization (in compute mode) together with the simulated seconds
/// consumed.
///
/// # Errors
///
/// Propagates factorization errors.
pub fn qp3_low_rank_gpu(gpu: &mut Gpu, a: &DMat, k: usize) -> Result<(Option<LowRankApprox>, f64)> {
    let t0 = gpu.clock();
    let res = rlra_gpu::algos::gpu_qp3_truncated(gpu, Phase::Qrcp, a, k)?;
    let elapsed = gpu.clock() - t0;
    let approx = res.result.map(|r| LowRankApprox {
        q: r.q(),
        r: r.r(),
        perm: r.perm.clone(),
    });
    Ok((approx, elapsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_data::testmat::decay_matrix;

    #[test]
    fn qp3_truncation_error_near_sigma() {
        let (a, spec) = decay_matrix(60, 30, 0.5, 1);
        let k = 6;
        let lr = qp3_low_rank(&a, k).unwrap();
        let err = lr.error_spectral(&a).unwrap();
        assert!(
            err < 20.0 * spec[k],
            "QP3 error {err:e} vs sigma {:e}",
            spec[k]
        );
        assert!(err > 0.5 * spec[k]);
    }

    #[test]
    fn gpu_baseline_matches_cpu_numerics() {
        let (a, _) = decay_matrix(40, 20, 0.6, 2);
        let cpu = qp3_low_rank(&a, 5).unwrap();
        let mut gpu = Gpu::k40c();
        let ad = gpu.resident(&a);
        let (gpu_lr, secs) = qp3_low_rank_gpu(&mut gpu, &ad, 5).unwrap();
        let gpu_lr = gpu_lr.unwrap();
        assert!(secs > 0.0);
        assert_eq!(cpu.perm.as_slice(), gpu_lr.perm.as_slice());
        assert!(cpu.q.approx_eq(&gpu_lr.q, 1e-12));
    }

    #[test]
    fn dry_run_charges_without_result() {
        let mut gpu = Gpu::k40c_dry();
        let ad = gpu.resident_shape(5000, 500);
        let (lr, secs) = qp3_low_rank_gpu(&mut gpu, &ad, 64).unwrap();
        assert!(lr.is_none());
        assert!(secs > 0.0);
    }
}
