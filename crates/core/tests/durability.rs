//! Durability acceptance: kill a durable run at **every** checkpoint
//! boundary, resume each kill from its snapshot on a fresh executor,
//! and require the resumed factors *and the full [`ExecReport`]* to be
//! bit-identical to the uninterrupted durable run — on every backend.
//!
//! This is the crash-consistency contract of the checkpoint subsystem:
//! a snapshot carries the numeric state, the RNG stream position, the
//! guard counters and the executor's absolute clocks, so a resume
//! continues as if the kill never happened.

use rlra_core::backend::{CpuExec, ExecReport, GpuExec, Input, MultiGpuExec};
use rlra_core::checkpoint::{CheckpointPlan, CountingRng, Durability};
use rlra_core::durable::{
    resume_fixed_accuracy, resume_fixed_rank, run_fixed_rank_durable, sample_fixed_accuracy_durable,
};
use rlra_core::{AdaptiveConfig, AdaptiveResult, Deadline, LowRankApprox, SamplerConfig};
use rlra_data::testmat::{decay_matrix, rng};
use rlra_gpu::{Cluster, DeviceSpec, ExecMode, Gpu, MultiGpu, NetworkSpec};
use rlra_matrix::{Mat, MatrixError};

const SEED: u64 = 41;

fn operand() -> Mat {
    decay_matrix(90, 45, 0.6, 42).0
}

fn adaptive_cfg() -> AdaptiveConfig {
    AdaptiveConfig::new(1e-8, 8)
}

fn assert_reports_match(a: &ExecReport, b: &ExecReport, what: &str) {
    assert_eq!(a, b, "{what}: full ExecReport must be bit-identical");
}

/// Uninterrupted durable fixed-accuracy run → (result, snapshots).
#[allow(clippy::type_complexity)]
fn adaptive_reference<E: rlra_core::backend::Executor>(
    exec: &mut E,
    a: &Mat,
) -> (
    (LowRankApprox, AdaptiveResult, ExecReport),
    Vec<(u64, Vec<u8>)>,
) {
    let mut crng = CountingRng::new(rng(SEED));
    let mut dur = Durability::new(CheckpointPlan::always());
    let out = sample_fixed_accuracy_durable(exec, a, &adaptive_cfg(), &mut crng, &mut dur)
        .unwrap_or_else(|e| panic!("uninterrupted run failed: {e}"));
    let full = out
        .complete()
        .unwrap_or_else(|| panic!("uninterrupted run suspended"));
    (full, dur.snapshots().to_vec())
}

/// Kill the fixed-accuracy run at boundary `kill`, then resume and
/// compare against the reference on a fresh executor built by `make`.
fn adaptive_kill_resume_case<E, F>(make: F, what: &str)
where
    E: rlra_core::backend::Executor,
    F: Fn() -> E,
{
    let a = operand();
    let cfg = adaptive_cfg();
    let mut reference_exec = make();
    let ((ref_approx, ref_adaptive, ref_report), snapshots) =
        adaptive_reference(&mut reference_exec, &a);
    assert!(
        snapshots.len() >= 2,
        "{what}: the run must cross at least two boundaries to test resume"
    );

    for (kill_id, _) in &snapshots {
        // Killed leg: identical run, suspended right after `kill_id`.
        let mut exec = make();
        let mut crng = CountingRng::new(rng(SEED));
        let mut dur = Durability::new(CheckpointPlan::kill_after(*kill_id));
        let out = sample_fixed_accuracy_durable(&mut exec, &a, &cfg, &mut crng, &mut dur)
            .unwrap_or_else(|e| panic!("{what}: killed leg failed: {e}"));
        let suspended = out
            .suspended()
            .unwrap_or_else(|| panic!("{what}: kill at {kill_id} did not suspend"));
        assert_eq!(suspended, *kill_id);
        let sealed = dur
            .get(*kill_id)
            .unwrap_or_else(|| panic!("{what}: snapshot {kill_id} missing"))
            .to_vec();

        // Resumed leg: fresh executor, fresh seeded RNG.
        let mut exec2 = make();
        let mut dur2 = Durability::new(CheckpointPlan::always());
        let out2 = resume_fixed_accuracy(&mut exec2, &a, &cfg, rng(SEED), &sealed, &mut dur2)
            .unwrap_or_else(|e| panic!("{what}: resume from {kill_id} failed: {e}"));
        let (approx, adaptive, report) = out2
            .complete()
            .unwrap_or_else(|| panic!("{what}: resume from {kill_id} suspended"));

        assert_eq!(
            approx.q, ref_approx.q,
            "{what}: Q after resume from boundary {kill_id}"
        );
        assert_eq!(
            approx.r, ref_approx.r,
            "{what}: R after resume from boundary {kill_id}"
        );
        assert_eq!(
            approx.perm.as_slice(),
            ref_approx.perm.as_slice(),
            "{what}: perm after resume from boundary {kill_id}"
        );
        assert_eq!(
            adaptive, ref_adaptive,
            "{what}: adaptive trajectory after resume from boundary {kill_id}"
        );
        assert_reports_match(
            &report,
            &ref_report,
            &format!("{what}: resume from boundary {kill_id}"),
        );

        // The resumed run re-numbers the remaining boundaries exactly.
        let expected_rest: Vec<u64> = snapshots
            .iter()
            .map(|(id, _)| *id)
            .filter(|id| id > kill_id)
            .collect();
        let resumed_ids: Vec<u64> = dur2.snapshots().iter().map(|(id, _)| *id).collect();
        assert_eq!(
            resumed_ids, expected_rest,
            "{what}: resumed boundary numbering after {kill_id}"
        );
    }
}

#[test]
fn adaptive_kill_resume_bit_identical_on_gpu() {
    adaptive_kill_resume_case(
        || {
            let gpu = Box::leak(Box::new(Gpu::k40c()));
            GpuExec::new(gpu)
        },
        "gpu",
    );
}

#[test]
fn adaptive_kill_resume_bit_identical_on_cpu() {
    adaptive_kill_resume_case(CpuExec::new, "cpu");
}

#[test]
fn adaptive_kill_resume_bit_identical_on_three_gpus() {
    adaptive_kill_resume_case(
        || {
            let mg = Box::leak(Box::new(
                MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute)
                    .unwrap_or_else(|e| panic!("fleet construction failed: {e}")),
            ));
            MultiGpuExec::new(mg).unwrap_or_else(|e| panic!("executor construction failed: {e}"))
        },
        "multi-gpu",
    );
}

#[test]
fn fixed_rank_kill_resume_bit_identical_on_cluster() {
    let cfg = SamplerConfig::new(8).with_p(4).with_q(2);

    let make_cluster = || {
        Cluster::new(
            3,
            2,
            DeviceSpec::k40c(),
            NetworkSpec::infiniband_fdr(),
            ExecMode::DryRun,
        )
        .unwrap_or_else(|e| panic!("cluster construction failed: {e}"))
    };

    // Uninterrupted reference (dry-run: no factors, timing only).
    let mut cl = make_cluster();
    let mut exec = rlra_core::backend::ClusterExec::new(&mut cl);
    let mut crng = CountingRng::new(rng(SEED));
    let mut dur = Durability::new(CheckpointPlan::always());
    let out = run_fixed_rank_durable(&mut exec, Input::Shape(90, 45), &cfg, &mut crng, &mut dur)
        .unwrap_or_else(|e| panic!("uninterrupted cluster run failed: {e}"));
    let (_, ref_report) = out
        .complete()
        .unwrap_or_else(|| panic!("uninterrupted cluster run suspended"));
    let snapshots = dur.snapshots().to_vec();
    assert_eq!(snapshots.len(), 2, "sample + power boundaries");

    for (kill_id, _) in &snapshots {
        let mut cl = make_cluster();
        let mut exec = rlra_core::backend::ClusterExec::new(&mut cl);
        let mut crng = CountingRng::new(rng(SEED));
        let mut dur = Durability::new(CheckpointPlan::kill_after(*kill_id));
        let out =
            run_fixed_rank_durable(&mut exec, Input::Shape(90, 45), &cfg, &mut crng, &mut dur)
                .unwrap_or_else(|e| panic!("killed cluster leg failed: {e}"));
        assert_eq!(out.suspended(), Some(*kill_id));
        let sealed = dur
            .get(*kill_id)
            .unwrap_or_else(|| panic!("snapshot {kill_id} missing"))
            .to_vec();

        let mut cl2 = make_cluster();
        let mut exec2 = rlra_core::backend::ClusterExec::new(&mut cl2);
        let mut dur2 = Durability::new(CheckpointPlan::always());
        let out2 = resume_fixed_rank(
            &mut exec2,
            Input::Shape(90, 45),
            &cfg,
            rng(SEED),
            &sealed,
            &mut dur2,
        )
        .unwrap_or_else(|e| panic!("cluster resume from {kill_id} failed: {e}"));
        let (approx, report) = out2
            .complete()
            .unwrap_or_else(|| panic!("cluster resume from {kill_id} suspended"));
        assert!(approx.is_none(), "dry-run backends produce no factors");
        assert_reports_match(
            &report,
            &ref_report,
            &format!("cluster resume from boundary {kill_id}"),
        );
    }
}

#[test]
fn fixed_rank_kill_resume_bit_identical_on_gpu() {
    let a = operand();
    let cfg = SamplerConfig::new(8).with_p(4).with_q(2);

    let mut gpu = Gpu::k40c();
    let mut exec = GpuExec::new(&mut gpu);
    let mut crng = CountingRng::new(rng(SEED));
    let mut dur = Durability::new(CheckpointPlan::always());
    let out = run_fixed_rank_durable(&mut exec, Input::Values(&a), &cfg, &mut crng, &mut dur)
        .unwrap_or_else(|e| panic!("uninterrupted run failed: {e}"));
    let (ref_approx, ref_report) = out
        .complete()
        .unwrap_or_else(|| panic!("uninterrupted run suspended"));
    let ref_approx = ref_approx.unwrap_or_else(|| panic!("computing backend must factor"));
    let snapshots = dur.snapshots().to_vec();
    assert_eq!(snapshots.len(), 2, "sample + power boundaries");

    for (kill_id, _) in &snapshots {
        let mut gpu = Gpu::k40c();
        let mut exec = GpuExec::new(&mut gpu);
        let mut crng = CountingRng::new(rng(SEED));
        let mut dur = Durability::new(CheckpointPlan::kill_after(*kill_id));
        let out = run_fixed_rank_durable(&mut exec, Input::Values(&a), &cfg, &mut crng, &mut dur)
            .unwrap_or_else(|e| panic!("killed leg failed: {e}"));
        assert_eq!(out.suspended(), Some(*kill_id));
        let sealed = dur
            .get(*kill_id)
            .unwrap_or_else(|| panic!("snapshot {kill_id} missing"))
            .to_vec();

        let mut gpu2 = Gpu::k40c();
        let mut exec2 = GpuExec::new(&mut gpu2);
        let mut dur2 = Durability::new(CheckpointPlan::always());
        let out2 = resume_fixed_rank(
            &mut exec2,
            Input::Values(&a),
            &cfg,
            rng(SEED),
            &sealed,
            &mut dur2,
        )
        .unwrap_or_else(|e| panic!("resume from {kill_id} failed: {e}"));
        let (approx, report) = out2
            .complete()
            .unwrap_or_else(|| panic!("resume from {kill_id} suspended"));
        let approx = approx.unwrap_or_else(|| panic!("resumed run must factor"));
        assert_eq!(approx.q, ref_approx.q, "Q after resume from {kill_id}");
        assert_eq!(approx.r, ref_approx.r, "R after resume from {kill_id}");
        assert_reports_match(
            &report,
            &ref_report,
            &format!("fixed-rank resume from boundary {kill_id}"),
        );
    }
}

#[test]
fn deadline_bounded_run_returns_partial_with_estimate() {
    let a = operand();
    // A budget past the first boundary but far short of the full run.
    let mut gpu = Gpu::k40c();
    let mut exec = GpuExec::new(&mut gpu);
    let mut crng = CountingRng::new(rng(SEED));
    let mut dur = Durability::new(CheckpointPlan::always());
    let full = sample_fixed_accuracy_durable(&mut exec, &a, &adaptive_cfg(), &mut crng, &mut dur)
        .unwrap_or_else(|e| panic!("reference run failed: {e}"))
        .complete()
        .unwrap_or_else(|| panic!("reference run suspended"));
    let full_seconds = full.2.seconds;

    let mut cfg = adaptive_cfg();
    cfg.deadline = Some(Deadline::new(full_seconds * 0.25));
    let mut gpu2 = Gpu::k40c();
    let mut exec2 = GpuExec::new(&mut gpu2);
    let mut crng2 = CountingRng::new(rng(SEED));
    let mut dur2 = Durability::new(CheckpointPlan::always());
    let err = sample_fixed_accuracy_durable(&mut exec2, &a, &cfg, &mut crng2, &mut dur2)
        .err()
        .unwrap_or_else(|| panic!("a quarter budget must overrun"));
    let MatrixError::DeadlineExceeded {
        snapshot,
        budget,
        elapsed,
    } = err
    else {
        panic!("expected DeadlineExceeded, got {err}");
    };
    assert!(elapsed > budget);
    let partial = dur2
        .take_partial()
        .unwrap_or_else(|| panic!("overrun must leave a partial result"));
    assert_eq!(partial.snapshot, snapshot);
    let partial_approx = partial
        .approx
        .unwrap_or_else(|| panic!("computing backend must build partial factors"));
    assert!(
        partial.estimate.is_finite() && partial.estimate > 0.0,
        "posterior estimate must certify the partial factors"
    );
    assert!(partial_approx.rank() > 0);

    // The overrun boundary resumes to the full bit-identical result.
    let sealed = dur2
        .get(snapshot)
        .unwrap_or_else(|| panic!("overrun snapshot missing"))
        .to_vec();
    let mut gpu3 = Gpu::k40c();
    let mut exec3 = GpuExec::new(&mut gpu3);
    let mut dur3 = Durability::new(CheckpointPlan::always());
    let resumed = resume_fixed_accuracy(
        &mut exec3,
        &a,
        &adaptive_cfg(),
        rng(SEED),
        &sealed,
        &mut dur3,
    )
    .unwrap_or_else(|e| panic!("resume after overrun failed: {e}"))
    .complete()
    .unwrap_or_else(|| panic!("resume after overrun suspended"));
    assert_eq!(resumed.0.q, full.0.q, "Q after deadline-overrun resume");
    assert_eq!(resumed.2, full.2, "report after deadline-overrun resume");
}
