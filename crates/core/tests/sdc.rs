//! ABFT acceptance tests: the integrity guard's headline invariants on
//! every backend.
//!
//! - An **armed, fault-free** protected run yields factors bit-identical
//!   to the unguarded pipeline — protection changes charges, never
//!   numerics.
//! - A **single bit-flip** in the power-iteration GEMM is detected,
//!   localized, and corrected in place: the corrected factors are
//!   bit-identical to the fault-free run, on CPU, single-GPU, and
//!   multi-GPU, and all three backends agree bit for bit.
//! - A **no-fire** [`SdcPlan`] leaves the factors *and the entire
//!   report* bit-identical to a run with no plan installed.
//! - Detect-only mode aborts with the corrupting kernel named; on the
//!   durable path the same detection escalates to a checkpoint rollback
//!   that still recovers bit-identical factors.
//! - The timing-only cluster backend prices the integrity funnel and
//!   counts injections without any numeric effect.

use rlra_core::backend::{
    run_fixed_rank, run_fixed_rank_protected, ClusterExec, CpuExec, ExecReport, Executor, GpuExec,
    Input, IntegrityGuard, IntegrityMode, IntegrityPolicy, MultiGpuExec, NumericGuard,
};
use rlra_core::{
    run_fixed_rank_durable_protected, CheckpointPlan, CountingRng, Durability, DurableOutcome,
    LowRankApprox, SamplerConfig,
};
use rlra_data::testmat::{decay_matrix, rng};
use rlra_gpu::{Cluster, DeviceSpec, ExecMode, Gpu, MultiGpu, NetworkSpec, SdcPlan};
use rlra_matrix::{Mat, MatrixError};

const SEED: u64 = 9;

fn test_input() -> (Mat, SamplerConfig) {
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    (a, SamplerConfig::new(6).with_p(4).with_q(1))
}

fn guard(mode: IntegrityMode) -> IntegrityGuard {
    IntegrityGuard::new(IntegrityPolicy::with_mode(mode))
}

/// One protected compute run on an already-armed executor.
fn protected<E: Executor>(
    exec: &mut E,
    a: &Mat,
    cfg: &SamplerConfig,
    mode: IntegrityMode,
) -> (LowRankApprox, ExecReport) {
    let mut ng = NumericGuard::default();
    let mut ig = guard(mode);
    let (lr, rep) = run_fixed_rank_protected(
        exec,
        Input::Values(a),
        cfg,
        &mut rng(SEED),
        &mut ng,
        &mut ig,
    )
    .expect("protected run");
    (lr.expect("compute backend returns factors"), rep)
}

/// A single always-detectable flip in the power-iteration GEMM output.
fn flip_gemm() -> SdcPlan {
    SdcPlan::new().bit_flip(0, 0, "power_c", 3, 5, 54)
}

#[test]
fn armed_fault_free_factors_bit_identical_to_unguarded() {
    let (a, cfg) = test_input();

    let check = |lr_plain: &LowRankApprox, lr_armed: &LowRankApprox, rep: &ExecReport, name| {
        assert_eq!(lr_plain.q, lr_armed.q, "{name}: Q");
        assert_eq!(lr_plain.r, lr_armed.r, "{name}: R");
        assert_eq!(lr_plain.perm.as_slice(), lr_armed.perm.as_slice(), "{name}");
        assert_eq!(rep.sdc_injected, 0, "{name}: nothing injected");
        assert_eq!(rep.sdc_detected, 0, "{name}: nothing detected");
        assert_eq!(rep.sdc_corrected, 0, "{name}: nothing corrected");
    };

    let mut cpu = CpuExec::new();
    let (lr, _) = run_fixed_rank(&mut cpu, Input::Values(&a), &cfg, &mut rng(SEED)).unwrap();
    let lr_plain = lr.unwrap();
    let mut cpu = CpuExec::new();
    let (lr_armed, rep) = protected(&mut cpu, &a, &cfg, IntegrityMode::Correct);
    check(&lr_plain, &lr_armed, &rep, "cpu");

    let mut gpu = Gpu::k40c();
    let mut ge = GpuExec::new(&mut gpu);
    let (lr_armed, rep) = protected(&mut ge, &a, &cfg, IntegrityMode::Correct);
    check(&lr_plain, &lr_armed, &rep, "gpu");
    // Protection is visible only in the charges: the armed run prices
    // the checksum funnel on top of the same kernels.
    let mut gpu = Gpu::k40c();
    let mut ge = GpuExec::new(&mut gpu);
    let (_, rep_plain) = run_fixed_rank(&mut ge, Input::Values(&a), &cfg, &mut rng(SEED)).unwrap();
    assert!(rep.seconds > rep_plain.seconds, "checksum work is charged");

    let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
    let mut me = MultiGpuExec::new(&mut mg).unwrap();
    let (lr_armed, rep) = protected(&mut me, &a, &cfg, IntegrityMode::Correct);
    check(&lr_plain, &lr_armed, &rep, "multi");
}

#[test]
fn single_gemm_flip_corrected_bit_identically_on_every_backend() {
    let (a, cfg) = test_input();
    let plan = flip_gemm();
    let mut corrected: Vec<(&str, LowRankApprox)> = Vec::new();

    // CPU reference for the fault-free factors.
    let mut cpu = CpuExec::new();
    let (lr_free, _) = protected(&mut cpu, &a, &cfg, IntegrityMode::Correct);

    let check = |lr: &LowRankApprox, rep: &ExecReport, name| {
        assert_eq!(rep.sdc_injected, 1, "{name}: one event fired");
        assert_eq!(rep.sdc_detected, 1, "{name}: one detection");
        assert_eq!(rep.sdc_corrected, 1, "{name}: corrected in place");
        assert_eq!(rep.sdc_rollbacks, 0, "{name}: no escalation");
        assert_eq!(lr_free.q, lr.q, "{name}: corrected Q bit-identical");
        assert_eq!(lr_free.r, lr.r, "{name}: corrected R bit-identical");
        assert_eq!(lr_free.perm.as_slice(), lr.perm.as_slice(), "{name}");
    };

    let mut cpu = CpuExec::new();
    cpu.set_sdc_injector(Some(plan.injector_for(0)));
    let (lr, rep) = protected(&mut cpu, &a, &cfg, IntegrityMode::Correct);
    check(&lr, &rep, "cpu");
    corrected.push(("cpu", lr));

    let mut gpu = Gpu::k40c();
    gpu.set_sdc_injector(Some(plan.injector_for(0)));
    let mut ge = GpuExec::new(&mut gpu);
    let (lr, rep) = protected(&mut ge, &a, &cfg, IntegrityMode::Correct);
    check(&lr, &rep, "gpu");
    corrected.push(("gpu", lr));

    let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
    mg.install_sdc_plan(&plan);
    let mut me = MultiGpuExec::new(&mut mg).unwrap();
    let (lr, rep) = protected(&mut me, &a, &cfg, IntegrityMode::Correct);
    check(&lr, &rep, "multi");
    corrected.push(("multi", lr));

    // And the three corrected runs agree with each other, bit for bit.
    let (_, first) = &corrected[0];
    for (name, lr) in &corrected[1..] {
        assert_eq!(first.q, lr.q, "cpu vs {name}: corrected Q");
        assert_eq!(first.r, lr.r, "cpu vs {name}: corrected R");
    }
}

#[test]
fn detect_only_aborts_naming_the_corrupting_kernel() {
    let (a, cfg) = test_input();
    let plan = flip_gemm();

    let mut cpu = CpuExec::new();
    cpu.set_sdc_injector(Some(plan.injector_for(0)));
    let mut gpu = Gpu::k40c();
    gpu.set_sdc_injector(Some(plan.injector_for(0)));
    let mut ge = GpuExec::new(&mut gpu);

    let mut errs = Vec::new();
    let mut ng = NumericGuard::default();
    let mut ig = guard(IntegrityMode::DetectOnly);
    errs.push(
        run_fixed_rank_protected(
            &mut cpu,
            Input::Values(&a),
            &cfg,
            &mut rng(SEED),
            &mut ng,
            &mut ig,
        )
        .expect_err("cpu detect-only must abort"),
    );
    let mut ng = NumericGuard::default();
    let mut ig = guard(IntegrityMode::DetectOnly);
    errs.push(
        run_fixed_rank_protected(
            &mut ge,
            Input::Values(&a),
            &cfg,
            &mut rng(SEED),
            &mut ng,
            &mut ig,
        )
        .expect_err("gpu detect-only must abort"),
    );
    for err in errs {
        assert!(
            matches!(
                err,
                MatrixError::SilentCorruption {
                    device: 0,
                    kernel: "gemm_to_c",
                    ..
                }
            ),
            "abort must attribute the corrupting kernel: {err}"
        );
    }
}

#[test]
fn no_fire_sdc_plan_leaves_factors_and_full_report_bit_identical() {
    let (a, cfg) = test_input();
    // Scheduled far past any launch ordinal this problem size reaches.
    let plan = SdcPlan::new().bit_flip(0, 1_000_000, "power_c", 3, 5, 54);

    let run_gpu = |with_plan: bool| {
        let mut gpu = Gpu::k40c();
        if with_plan {
            gpu.set_sdc_injector(Some(plan.injector_for(0)));
        }
        let mut ge = GpuExec::new(&mut gpu);
        protected(&mut ge, &a, &cfg, IntegrityMode::Correct)
    };
    let (lr_base, rep_base) = run_gpu(false);
    let (lr_plan, rep_plan) = run_gpu(true);
    assert_eq!(lr_base.q, lr_plan.q);
    assert_eq!(lr_base.r, lr_plan.r);
    assert_eq!(
        rep_base, rep_plan,
        "single-GPU report must be bit-identical"
    );

    let run_multi = |with_plan: bool| {
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        if with_plan {
            mg.install_sdc_plan(&plan);
        }
        let mut me = MultiGpuExec::new(&mut mg).unwrap();
        protected(&mut me, &a, &cfg, IntegrityMode::Correct)
    };
    let (mlr_base, mrep_base) = run_multi(false);
    let (mlr_plan, mrep_plan) = run_multi(true);
    assert_eq!(mlr_base.q, mlr_plan.q);
    assert_eq!(mlr_base.r, mlr_plan.r);
    assert_eq!(
        mrep_base, mrep_plan,
        "multi-GPU report must be bit-identical"
    );
}

#[test]
fn detect_only_rollback_recovers_bit_identical_factors_durably() {
    let (a, cfg) = test_input();

    let run = |with_plan: bool| {
        let mut gpu = Gpu::k40c();
        if with_plan {
            gpu.set_sdc_injector(Some(flip_gemm().injector_for(0)));
        }
        let mut ge = GpuExec::new(&mut gpu);
        let mut crng = CountingRng::new(rng(SEED));
        let mut dur = Durability::new(CheckpointPlan::always());
        // Detect-only: the guard may not repair in place, so the
        // detection escalates to the boundary rollback.
        let mut ig = guard(IntegrityMode::DetectOnly);
        let out = run_fixed_rank_durable_protected(
            &mut ge,
            Input::Values(&a),
            &cfg,
            &mut crng,
            &mut dur,
            &mut ig,
        )
        .expect("rollback must absorb the corruption");
        match out {
            DurableOutcome::Complete((lr, rep)) => (lr.expect("factors"), rep),
            DurableOutcome::Suspended { .. } => unreachable!("no kill plan installed"),
        }
    };

    let (lr_free, rep_free) = run(false);
    assert_eq!(rep_free.sdc_rollbacks, 0);
    let (lr_roll, rep_roll) = run(true);
    assert_eq!(rep_roll.sdc_injected, 1, "one event fired");
    assert_eq!(rep_roll.sdc_detected, 1, "one detection");
    assert_eq!(
        rep_roll.sdc_corrected, 0,
        "detect-only never repairs in place"
    );
    assert_eq!(rep_roll.sdc_rollbacks, 1, "recovered via the checkpoint");
    assert_eq!(lr_free.q, lr_roll.q, "rolled-back Q bit-identical");
    assert_eq!(lr_free.r, lr_roll.r, "rolled-back R bit-identical");
    assert_eq!(lr_free.perm.as_slice(), lr_roll.perm.as_slice());
    // The redone stage is priced: the rollback run costs strictly more.
    assert!(
        rep_roll.seconds > rep_free.seconds,
        "lost work stays billed"
    );
}

#[test]
fn cluster_dry_run_prices_integrity_and_counts_injections() {
    let cfg = SamplerConfig::new(6).with_p(4).with_q(1);
    let make = || {
        Cluster::new(
            3,
            2,
            DeviceSpec::k40c(),
            NetworkSpec::infiniband_fdr(),
            ExecMode::DryRun,
        )
        .unwrap()
    };
    let run = |cl: &mut Cluster, mode: Option<IntegrityMode>| {
        let mut ce = ClusterExec::new(cl);
        let mut ng = NumericGuard::default();
        let mut ig = mode.map(guard).unwrap_or_default();
        let (lr, rep) = run_fixed_rank_protected(
            &mut ce,
            Input::Shape(90, 45),
            &cfg,
            &mut rng(SEED),
            &mut ng,
            &mut ig,
        )
        .expect("dry cluster run");
        assert!(lr.is_none(), "timing-only backend returns no factors");
        rep
    };

    let mut cl = make();
    let rep_off = run(&mut cl, None);
    let mut cl = make();
    let rep_armed = run(&mut cl, Some(IntegrityMode::Correct));
    assert!(
        rep_armed.seconds > rep_off.seconds,
        "the checksum funnel is priced on the timing backend"
    );

    // A fired plan on the dry path is counted but has no numeric or
    // timing effect: there are no values to corrupt or verify.
    let mut cl = make();
    cl.install_sdc_plan(&flip_gemm());
    let rep_fired = run(&mut cl, Some(IntegrityMode::Correct));
    assert_eq!(rep_fired.sdc_injected, 1, "the injector fired");
    assert_eq!(rep_fired.sdc_detected, 0, "nothing to verify shape-only");
    assert_eq!(rep_fired.seconds, rep_armed.seconds, "timing unchanged");
}
