//! Golden-trace tests: the event stream of a fixed-seed simulated run
//! is deterministic (byte-identical Chrome export across repeats), the
//! per-device event durations reconcile with the `Timeline` totals, and
//! attaching a [`NullSink`] perturbs nothing — factors and the entire
//! [`ExecReport`] stay bit-identical to a run with no sink at all.

use rlra_core::backend::{run_fixed_rank, ClusterExec, CpuExec, GpuExec, Input, MultiGpuExec};
use rlra_core::{FlightDeck, SamplerConfig};
use rlra_data::testmat::{decay_matrix, rng};
use rlra_gpu::{Cluster, DeviceSpec, ExecMode, Gpu, MultiGpu, NetworkSpec, Phase};
use rlra_obs::{names, walltime};
use rlra_trace::{chrome_trace_json, parse_json, Json, TraceEvent, Tracer};

/// One traced 2-GPU dry run at a paper-ish shape; returns the Chrome
/// document, the raw events, and the report.
fn traced_multi_run() -> (String, Vec<TraceEvent>, rlra_core::backend::ExecReport) {
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let mut mg = MultiGpu::new(2, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
    mg.set_tracer(Some(Tracer::ring(1 << 16)));
    let mut me = MultiGpuExec::new(&mut mg).unwrap();
    let (_, rep) =
        run_fixed_rank(&mut me, Input::Shape(60_000, 2_500), &cfg, &mut rng(11)).unwrap();
    let tracer = mg.take_tracer().expect("tracer given back at finish");
    let events = tracer.events();
    assert_eq!(tracer.dropped(), 0, "ring must not overflow in this run");
    (chrome_trace_json(&events), events, rep)
}

#[test]
fn golden_trace_byte_identical_across_repeated_runs() {
    let (doc1, ev1, rep1) = traced_multi_run();
    let (doc2, ev2, rep2) = traced_multi_run();
    assert!(!ev1.is_empty());
    assert_eq!(ev1, ev2, "event streams must match exactly");
    assert_eq!(doc1, doc2, "Chrome export must be byte-identical");
    assert_eq!(rep1, rep2, "reports must be bit-identical");
}

#[test]
fn chrome_export_has_one_track_per_device_and_parses() {
    let (doc, _, rep) = traced_multi_run();
    let parsed = parse_json(&doc).expect("valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Every device owns a named track (thread_name metadata + at least
    // one duration event with its tid), and the comms track exists.
    for d in 0..rep.devices {
        let tid = d as f64;
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(|v| v.as_str()) == Some("M")
                    && e.get("tid").and_then(Json::as_num) == Some(tid)
            }),
            "device {d} must have thread_name metadata"
        );
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(|v| v.as_str()) == Some("X")
                    && e.get("tid").and_then(Json::as_num) == Some(tid)
            }),
            "device {d} must have duration events"
        );
    }
}

#[test]
fn per_device_event_durations_reconcile_with_the_timeline() {
    let (_, events, rep) = traced_multi_run();
    // For every phase: each device's event durations sum to that
    // device's timeline entry, and the report keeps the max across
    // devices (the breakdown convention). Barriers make waits explicit,
    // so nothing is lost between events and accumulators.
    for phase in Phase::ALL {
        let per_device: Vec<f64> = (0..rep.devices)
            .map(|d| {
                events
                    .iter()
                    .filter(|e| {
                        e.charged_device() == Some(d) && e.charged_phase() == Some(phase.label())
                    })
                    .map(TraceEvent::duration)
                    .sum()
            })
            .collect();
        let traced = per_device.iter().fold(0.0f64, |a, &b| a.max(b));
        let reported = rep.timeline.get(phase);
        assert!(
            (traced - reported).abs() <= 1e-9 * reported.max(1e-9),
            "{}: traced {traced} vs reported {reported}",
            phase.label()
        );
    }
    // And in total: the busiest device's event time is the run time.
    let total: f64 = (0..rep.devices)
        .map(|d| {
            events
                .iter()
                .filter(|e| e.charged_device() == Some(d))
                .map(TraceEvent::duration)
                .sum()
        })
        .fold(0.0, f64::max);
    assert!((total - rep.seconds).abs() <= 1e-9 * rep.seconds);
}

/// Attaching a `NullSink` must be observationally free: factors and the
/// whole report (clock, timeline, metrics, counters) bit-identical to a
/// run with no tracer installed, on every computing backend.
#[test]
fn null_sink_run_bit_identical_to_no_sink_run() {
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    let cfg = SamplerConfig::new(6).with_p(4).with_q(1);

    // Single GPU, compute mode.
    let run_gpu = |traced: bool| {
        let mut gpu = Gpu::k40c();
        if traced {
            gpu.set_tracer(Some(Tracer::null()));
        }
        let mut ge = GpuExec::new(&mut gpu);
        let (lr, rep) = run_fixed_rank(&mut ge, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
        (lr.unwrap(), rep)
    };
    let (lr_base, rep_base) = run_gpu(false);
    let (lr_null, rep_null) = run_gpu(true);
    assert_eq!(lr_base.q, lr_null.q);
    assert_eq!(lr_base.r, lr_null.r);
    assert_eq!(lr_base.perm.as_slice(), lr_null.perm.as_slice());
    assert_eq!(rep_base, rep_null, "single-GPU report must not change");

    // Multi-GPU, compute mode.
    let run_multi = |traced: bool| {
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        if traced {
            mg.set_tracer(Some(Tracer::null()));
        }
        let mut me = MultiGpuExec::new(&mut mg).unwrap();
        let (lr, rep) = run_fixed_rank(&mut me, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
        (lr.unwrap(), rep)
    };
    let (mlr_base, mrep_base) = run_multi(false);
    let (mlr_null, mrep_null) = run_multi(true);
    assert_eq!(mlr_base.q, mlr_null.q);
    assert_eq!(mlr_base.r, mlr_null.r);
    assert_eq!(mlr_base.perm.as_slice(), mlr_null.perm.as_slice());
    assert_eq!(mrep_base, mrep_null, "multi-GPU report must not change");

    // CPU for completeness: no tracer to attach, factors still match.
    let mut cpu = CpuExec::new();
    let (cpu_lr, _) = run_fixed_rank(&mut cpu, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
    assert_eq!(cpu_lr.unwrap().q, lr_base.q);
}

/// The whole telemetry stack armed — a [`FlightDeck`] tracer (registry
/// sink + flight recorder) on the backend *and* the wall-clock funnel
/// enabled — must be just as free as a `NullSink`: factors and the
/// entire report bit-identical to an uninstrumented run, on all four
/// backends. This is the issue's acceptance criterion for `rlra-obs`.
#[test]
fn armed_flight_deck_keeps_runs_bit_identical_on_all_backends() {
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    let cfg = SamplerConfig::new(6).with_p(4).with_q(1);
    let deck = FlightDeck::default();

    // Baselines with everything off.
    let run_gpu = |deck: Option<&FlightDeck>| {
        let mut gpu = Gpu::k40c();
        gpu.set_tracer(deck.map(FlightDeck::tracer));
        let mut ge = GpuExec::new(&mut gpu);
        let (lr, rep) = run_fixed_rank(&mut ge, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
        (lr.unwrap(), rep)
    };
    let run_multi = |deck: Option<&FlightDeck>| {
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        mg.set_tracer(deck.map(FlightDeck::tracer));
        let mut me = MultiGpuExec::new(&mut mg).unwrap();
        let (lr, rep) = run_fixed_rank(&mut me, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
        (lr.unwrap(), rep)
    };
    let run_cluster = |deck: Option<&FlightDeck>| {
        let mut cl = Cluster::new(
            2,
            2,
            DeviceSpec::k40c(),
            NetworkSpec::infiniband_fdr(),
            ExecMode::DryRun,
        )
        .unwrap();
        cl.set_tracer(deck.map(FlightDeck::tracer));
        let mut ce = ClusterExec::new(&mut cl);
        let (_, rep) = run_fixed_rank(&mut ce, Input::Shape(90, 45), &cfg, &mut rng(9)).unwrap();
        rep
    };
    let run_cpu = || {
        let mut cpu = CpuExec::new();
        let (lr, rep) = run_fixed_rank(&mut cpu, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
        (lr.unwrap(), rep)
    };

    let (glr0, grep0) = run_gpu(None);
    let (mlr0, mrep0) = run_multi(None);
    let crep0 = run_cluster(None);
    let (plr0, prep0) = run_cpu();

    // Arm everything: deck tracers on the simulated backends, the
    // wall-clock funnel globally (its scopes fire inside the blas /
    // lapack hot paths on every backend, including CPU).
    let _registry = walltime::enable();
    let (glr1, grep1) = run_gpu(Some(&deck));
    let (mlr1, mrep1) = run_multi(Some(&deck));
    let crep1 = run_cluster(Some(&deck));
    let (plr1, prep1) = run_cpu();
    walltime::disable();

    assert_eq!(glr0.q, glr1.q);
    assert_eq!(glr0.r, glr1.r);
    assert_eq!(glr0.perm.as_slice(), glr1.perm.as_slice());
    assert_eq!(grep0, grep1, "single-GPU report must not change");
    assert_eq!(mlr0.q, mlr1.q);
    assert_eq!(mlr0.r, mlr1.r);
    assert_eq!(mrep0, mrep1, "multi-GPU report must not change");
    assert_eq!(crep0, crep1, "cluster report must not change");
    assert_eq!(plr0.q, plr1.q);
    assert_eq!(plr0.r, plr1.r);
    assert_eq!(prep0, prep1, "CPU report must not change");

    // And the telemetry was live, not a no-op: the deck's registry
    // holds per-kernel latency series and the recorder kept a tail.
    let snap = deck.registry().snapshot();
    assert!(
        !snap.hist_family(names::SIM_KERNEL_SECONDS).is_empty(),
        "armed registry must have streamed kernel events"
    );
    assert!(
        !deck.recorder().is_empty(),
        "flight recorder must hold a tail"
    );
}
