//! Fault injection and recovery, end to end: deterministic fault plans
//! fired against the simulated fleet, absorbed by the
//! [`Recovering`] policy wrapper.
//!
//! The key property under test is the issue's acceptance criterion: an
//! injected fail-stop mid-power-iteration on the 3-GPU compute backend
//! completes via redistribution + sketch-row re-draw, the recovered
//! error matches the fault-free error within the oversampling tolerance
//! (here: bit-identically, because recovery is an accounting-layer
//! phenomenon and the host numerics never see it), and the report
//! carries the recovery overhead.

use rlra_core::backend::{
    run_fixed_rank, run_fixed_rank_with_recovery, GpuExec, Input, MultiGpuExec, Recovering,
    RecoveryPolicy,
};
use rlra_core::SamplerConfig;
use rlra_data::testmat::{decay_matrix, rng};
use rlra_gpu::{DeviceSpec, ExecMode, FaultPlan, Gpu, MultiGpu};
use rlra_matrix::{DeviceFaultKind, MatrixError};

#[test]
fn fail_stop_mid_power_iteration_recovers_on_three_gpus() {
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    let cfg = SamplerConfig::new(6).with_p(4).with_q(2);

    // Fault-free reference.
    let mut mg0 = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
    let mut e0 = MultiGpuExec::new(&mut mg0).unwrap();
    let (lr0, rep0) = run_fixed_rank(&mut e0, Input::Values(&a), &cfg, &mut rng(3)).unwrap();
    let lr0 = lr0.unwrap();
    let err_free = lr0.error_spectral(&a).unwrap();

    // Device 1 fail-stops at its 4th launch — inside the q=2 power
    // iteration (launches 0–1 are the sampling cuRAND+GEMM).
    let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
    mg.install_plan(&FaultPlan::default().fail_stop(1, 4));
    let exec = MultiGpuExec::new(&mut mg).unwrap();
    let (lr, rep) = run_fixed_rank_with_recovery(
        exec,
        RecoveryPolicy::default(),
        Input::Values(&a),
        &cfg,
        &mut rng(3),
    )
    .unwrap();
    let lr = lr.unwrap();

    // The run completed on the degraded fleet and the report says so.
    assert_eq!(rep.devices_lost, 1, "one device lost and recovered from");
    assert!(rep.faults_injected >= 1);
    assert!(
        rep.recovery_seconds > 0.0,
        "recovery work must be charged to the Recovery phase"
    );
    assert!(rep.seconds > rep0.seconds, "recovery is not free");

    // Recovered error within the oversampling tolerance of fault-free —
    // in fact bit-identical, since host numerics are unaffected.
    let err_rec = lr.error_spectral(&a).unwrap();
    assert!(
        err_rec <= 1.5 * err_free + 1e-12,
        "recovered error {err_rec:.3e} vs fault-free {err_free:.3e}"
    );
    assert_eq!(lr.q, lr0.q);
    assert_eq!(lr.r, lr0.r);
    assert_eq!(lr.perm.as_slice(), lr0.perm.as_slice());

    // The caller's context reflects the loss after the run.
    assert_eq!(mg.ng_alive(), 2);
}

#[test]
fn transient_fault_is_retried_and_numerics_unaffected() {
    let (a, _) = decay_matrix(64, 32, 0.55, 7);
    let cfg = SamplerConfig::new(5).with_p(3).with_q(1);

    let mut gpu0 = Gpu::k40c();
    let mut e0 = GpuExec::new(&mut gpu0);
    let (lr0, rep0) = run_fixed_rank(&mut e0, Input::Values(&a), &cfg, &mut rng(5)).unwrap();

    let mut gpu = Gpu::k40c();
    gpu.set_injector(Some(FaultPlan::default().transient(0, 2).injector_for(0)));
    let exec = GpuExec::new(&mut gpu);
    let (lr, rep) = run_fixed_rank_with_recovery(
        exec,
        RecoveryPolicy::default(),
        Input::Values(&a),
        &cfg,
        &mut rng(5),
    )
    .unwrap();

    assert_eq!(rep.retries, 1, "exactly one transient retry");
    assert_eq!(rep.faults_injected, 1);
    assert_eq!(rep.devices_lost, 0);
    assert!(rep.recovery_seconds > 0.0, "backoff charged");
    assert!(rep.seconds > rep0.seconds);
    // The device RNG stream is not advanced by a faulted launch, so the
    // retried launch draws the same values: factors bit-identical.
    let (lr, lr0) = (lr.unwrap(), lr0.unwrap());
    assert_eq!(lr.q, lr0.q);
    assert_eq!(lr.r, lr0.r);
}

#[test]
fn fail_stop_on_the_only_gpu_is_unrecoverable() {
    let cfg = SamplerConfig::new(5).with_p(3);
    let mut gpu = Gpu::k40c_dry();
    gpu.set_injector(Some(FaultPlan::default().fail_stop(0, 1).injector_for(0)));
    let exec = GpuExec::new(&mut gpu);
    let err = run_fixed_rank_with_recovery(
        exec,
        RecoveryPolicy::default(),
        Input::Shape(4_000, 500),
        &cfg,
        &mut rng(1),
    )
    .unwrap_err();
    assert!(
        matches!(err, MatrixError::Unsupported { backend: "gpu", .. }),
        "single GPU has no survivors to degrade onto: {err}"
    );
}

#[test]
fn exhausted_transient_budget_surfaces_the_device_fault() {
    let cfg = SamplerConfig::new(5).with_p(3);
    // Four transients on consecutive launches overwhelm a budget of 1
    // (each retry re-issues the same launch ordinal, but the injector
    // fires every queued event whose time has come — so queue several).
    let plan = FaultPlan::default()
        .transient(0, 1)
        .transient(0, 1)
        .transient(0, 1)
        .transient(0, 1);
    let mut gpu = Gpu::k40c_dry();
    gpu.set_injector(Some(plan.injector_for(0)));
    let exec = GpuExec::new(&mut gpu);
    let err = run_fixed_rank_with_recovery(
        exec,
        RecoveryPolicy {
            retry_budget: 1,
            ..RecoveryPolicy::default()
        },
        Input::Shape(4_000, 500),
        &cfg,
        &mut rng(1),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        MatrixError::DeviceFault {
            kind: DeviceFaultKind::Transient,
            ..
        }
    ));
}

#[test]
fn straggler_dilates_the_run_without_failing_it() {
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let run = |plan: Option<FaultPlan>| {
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
        if let Some(p) = plan {
            mg.install_plan(&p);
        }
        let exec = MultiGpuExec::new(&mut mg).unwrap();
        let (_, rep) = run_fixed_rank_with_recovery(
            exec,
            RecoveryPolicy::default(),
            Input::Shape(60_000, 2_500),
            &cfg,
            &mut rng(2),
        )
        .unwrap();
        rep
    };
    let base = run(None);
    let slow = run(Some(FaultPlan::default().straggler(2, 1, 3.0)));
    assert_eq!(slow.devices_lost, 0);
    assert_eq!(slow.retries, 0);
    assert_eq!(slow.faults_injected, 1);
    assert!(
        slow.seconds > base.seconds * 1.2,
        "straggler must dilate the critical path: {} vs {}",
        slow.seconds,
        base.seconds
    );
}

/// Combined device **and** numerical faults in one run must not
/// double-count: a transient launch fault is a `retry`, a ladder
/// escalation is a `fallback`, and each counter — in the report and in
/// the exported metrics — sees only its own kind.
#[test]
fn combined_device_and_numeric_faults_do_not_double_count() {
    use rlra_core::backend::{run_fixed_rank_with_guard, NumericGuard};
    use rlra_data::{near_deficient_spectrum, synthetic::matrix_with_spectrum};

    // Numerically hostile input: rank 8 under an l = 16 sketch.
    let spectrum = near_deficient_spectrum(45, 8, 1e-8);
    let a = matrix_with_spectrum(90, 45, &spectrum, &mut rng(7))
        .unwrap()
        .a;
    let cfg = SamplerConfig::new(12).with_p(4).with_q(1);

    // Reference: numerical faults only, no injector.
    let mut gpu0 = Gpu::k40c();
    let mut e0 = GpuExec::new(&mut gpu0);
    let mut guard0 = NumericGuard::default();
    let (lr0, rep0) =
        run_fixed_rank_with_guard(&mut e0, Input::Values(&a), &cfg, &mut rng(5), &mut guard0)
            .unwrap();
    assert!(rep0.fallbacks > 0, "deficient sketch exercises the ladder");
    assert_eq!(rep0.retries, 0, "no device faults, no retries");

    // Same run plus a transient device fault, absorbed by Recovering.
    let mut gpu = Gpu::k40c();
    gpu.set_injector(Some(FaultPlan::default().transient(0, 2).injector_for(0)));
    let exec = GpuExec::new(&mut gpu);
    let mut wrapped = Recovering::new(exec, RecoveryPolicy::default());
    let mut guard = NumericGuard::default();
    let (lr, rep) = run_fixed_rank_with_guard(
        &mut wrapped,
        Input::Values(&a),
        &cfg,
        &mut rng(5),
        &mut guard,
    )
    .unwrap();

    // Each fault kind lands in exactly its own counter.
    assert_eq!(
        rep.retries, 1,
        "one transient retry, not inflated by the ladder"
    );
    assert_eq!(rep.faults_injected, 1);
    assert_eq!(
        rep.fallbacks, rep0.fallbacks,
        "ladder escalations unchanged by the device fault"
    );
    assert_eq!(rep.breakdowns, rep0.breakdowns);
    assert_eq!(rep.ladder_histogram, rep0.ladder_histogram);

    // The exported metrics agree with the report field-for-field.
    for r in [&rep0, &rep] {
        assert_eq!(r.metrics.retries, r.retries, "metrics.retries mirror");
        assert_eq!(r.metrics.fallbacks, r.fallbacks, "metrics.fallbacks mirror");
    }

    // Neither fault kind perturbs the numerics.
    let (lr, lr0) = (lr.unwrap(), lr0.unwrap());
    assert_eq!(lr.q, lr0.q);
    assert_eq!(lr.r, lr0.r);
}

/// Degraded completion must beat the full-restart alternative in
/// simulated seconds: restart pays the time already elapsed at the loss
/// plus a whole fault-free run on the survivor fleet.
#[test]
fn recovery_is_cheaper_than_full_restart() {
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let (m, n) = (150_000, 2_500);

    let fleet_time = |ng: usize| {
        let mut mg = MultiGpu::new(ng, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
        let mut exec = MultiGpuExec::new(&mut mg).unwrap();
        let (_, rep) = run_fixed_rank(&mut exec, Input::Shape(m, n), &cfg, &mut rng(6)).unwrap();
        rep.seconds
    };

    let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::DryRun).unwrap();
    mg.install_plan(&FaultPlan::default().fail_stop(1, 4));
    let exec = MultiGpuExec::new(&mut mg).unwrap();
    let mut wrapped = Recovering::new(exec, RecoveryPolicy::default());
    let (_, rep) = run_fixed_rank(&mut wrapped, Input::Shape(m, n), &cfg, &mut rng(6)).unwrap();
    assert_eq!(rep.devices_lost, 1);
    let t_loss = wrapped.loss_log()[0].1;

    // Full restart: abandon at t_loss, rerun everything on 2 GPUs.
    let restart = t_loss + fleet_time(2);
    assert!(
        rep.seconds < restart,
        "degraded completion ({:.4}s) must beat restart ({:.4}s)",
        rep.seconds,
        restart
    );
}
