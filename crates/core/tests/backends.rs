//! Cross-backend equivalence: the unified pipeline must produce
//! **bit-identical** factors on every computing backend, and the
//! adaptive scheme must take the same trajectory on CPU and GPU.
//!
//! This is the acceptance test for the `Executor` refactor: the
//! numerics live in one place ([`rlra_core::backend::run_fixed_rank`]),
//! so the backends can only differ in what they *charge*, never in what
//! they *compute*.

use rlra_core::backend::{run_fixed_rank, CpuExec, GpuExec, Input, MultiGpuExec};
use rlra_core::{
    adaptive_sample, adaptive_sample_exec, AdaptiveConfig, SamplerConfig, SamplingKind, Step2Kind,
};
use rlra_data::testmat::{decay_matrix, exponent_matrix, rng};
use rlra_gpu::{DeviceSpec, ExecMode, Gpu, MultiGpu};

fn configs() -> Vec<SamplerConfig> {
    vec![
        SamplerConfig::new(5).with_p(3),
        SamplerConfig::new(8).with_p(4).with_q(2),
        SamplerConfig::new(6)
            .with_p(6)
            .with_step2(Step2Kind::Tournament),
        SamplerConfig::new(7).with_p(5).with_q(1).without_reorth(),
    ]
}

#[test]
fn fixed_rank_factors_bit_identical_across_backends() {
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    for (ci, cfg) in configs().iter().enumerate() {
        let seed = 100 + ci as u64;

        let mut cpu = CpuExec::new();
        let (cpu_lr, cpu_rep) =
            run_fixed_rank(&mut cpu, Input::Values(&a), cfg, &mut rng(seed)).unwrap();
        let cpu_lr = cpu_lr.unwrap();

        let mut gpu = Gpu::k40c();
        let mut ge = GpuExec::new(&mut gpu);
        let (gpu_lr, gpu_rep) =
            run_fixed_rank(&mut ge, Input::Values(&a), cfg, &mut rng(seed)).unwrap();
        let gpu_lr = gpu_lr.unwrap();

        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        let mut me = MultiGpuExec::new(&mut mg).unwrap();
        let (multi_lr, multi_rep) =
            run_fixed_rank(&mut me, Input::Values(&a), cfg, &mut rng(seed)).unwrap();
        let multi_lr = multi_lr.unwrap();

        // Bit-identical factors, not approximately equal.
        assert_eq!(cpu_lr.q, gpu_lr.q, "config {ci}: Q cpu vs gpu");
        assert_eq!(cpu_lr.r, gpu_lr.r, "config {ci}: R cpu vs gpu");
        assert_eq!(
            cpu_lr.perm.as_slice(),
            gpu_lr.perm.as_slice(),
            "config {ci}: perm"
        );
        assert_eq!(cpu_lr.q, multi_lr.q, "config {ci}: Q cpu vs multi");
        assert_eq!(cpu_lr.r, multi_lr.r, "config {ci}: R cpu vs multi");
        assert_eq!(
            cpu_lr.perm.as_slice(),
            multi_lr.perm.as_slice(),
            "config {ci}: perm multi"
        );

        // The costs are backend-specific: CPU charges nothing, the
        // simulated devices do.
        assert_eq!(cpu_rep.seconds, 0.0);
        assert_eq!(cpu_rep.devices, 0);
        assert!(gpu_rep.seconds > 0.0);
        assert_eq!(gpu_rep.devices, 1);
        assert!(multi_rep.seconds > 0.0);
        assert!(multi_rep.comms > 0.0);
        assert_eq!(multi_rep.devices, 3);

        // Communication is exclusively a multi-device phenomenon: the
        // CPU and single-GPU backends must report exactly zero comms.
        assert_eq!(cpu_rep.comms, 0.0, "config {ci}: CPU comms must be 0");
        assert_eq!(gpu_rep.comms, 0.0, "config {ci}: 1-GPU comms must be 0");

        // No faults were injected anywhere.
        for rep in [&cpu_rep, &gpu_rep, &multi_rep] {
            assert_eq!(rep.faults_injected, 0);
            assert_eq!(rep.retries, 0);
            assert_eq!(rep.recovery_seconds, 0.0);
            assert_eq!(rep.devices_lost, 0);
        }
    }
}

/// A fault plan whose events never fire (scheduled far past the launch
/// horizon) must leave both the factors and the *entire report* —
/// clocks, timelines, counters — bit-identical to a run with no
/// injector installed, on every computing backend.
#[test]
fn no_fire_fault_plan_is_bit_identical_to_no_injector_run() {
    use rlra_gpu::FaultPlan;
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    let cfg = SamplerConfig::new(6).with_p(4).with_q(1);
    let plan = FaultPlan::default()
        .transient(0, 1_000_000)
        .straggler(1, 1_000_000, 4.0)
        .fail_stop(2, 1_000_000);

    // Single GPU.
    let run_gpu = |with_plan: bool| {
        let mut gpu = Gpu::k40c();
        if with_plan {
            gpu.set_injector(Some(plan.injector_for(0)));
        }
        let mut ge = GpuExec::new(&mut gpu);
        let (lr, rep) = run_fixed_rank(&mut ge, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
        (lr.unwrap(), rep)
    };
    let (lr_base, rep_base) = run_gpu(false);
    let (lr_plan, rep_plan) = run_gpu(true);
    assert_eq!(lr_base.q, lr_plan.q);
    assert_eq!(lr_base.r, lr_plan.r);
    assert_eq!(lr_base.perm.as_slice(), lr_plan.perm.as_slice());
    assert_eq!(
        rep_base, rep_plan,
        "single-GPU report must be bit-identical"
    );

    // Multi-GPU.
    let run_multi = |with_plan: bool| {
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        if with_plan {
            mg.install_plan(&plan);
        }
        let mut me = MultiGpuExec::new(&mut mg).unwrap();
        let (lr, rep) = run_fixed_rank(&mut me, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
        (lr.unwrap(), rep)
    };
    let (mlr_base, mrep_base) = run_multi(false);
    let (mlr_plan, mrep_plan) = run_multi(true);
    assert_eq!(mlr_base.q, mlr_plan.q);
    assert_eq!(mlr_base.r, mlr_plan.r);
    assert_eq!(mlr_base.perm.as_slice(), mlr_plan.perm.as_slice());
    assert_eq!(
        mrep_base, mrep_plan,
        "multi-GPU report must be bit-identical"
    );

    // CPU for completeness: the backend ignores injectors entirely.
    let mut cpu = CpuExec::new();
    let (cpu_lr, cpu_rep) = run_fixed_rank(&mut cpu, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
    assert_eq!(cpu_lr.unwrap().q, lr_base.q);
    assert_eq!(cpu_rep.faults_injected, 0);
}

#[test]
fn fft_sampling_bit_identical_cpu_vs_gpu() {
    let (a, _) = decay_matrix(64, 32, 0.55, 7);
    let cfg = SamplerConfig::new(6)
        .with_p(6)
        .with_sampling(SamplingKind::Fft(rlra_fft::SrftScheme::Full));

    let mut cpu = CpuExec::new();
    let (cpu_lr, _) = run_fixed_rank(&mut cpu, Input::Values(&a), &cfg, &mut rng(3)).unwrap();
    let mut gpu = Gpu::k40c();
    let mut ge = GpuExec::new(&mut gpu);
    let (gpu_lr, _) = run_fixed_rank(&mut ge, Input::Values(&a), &cfg, &mut rng(3)).unwrap();

    let (c, g) = (cpu_lr.unwrap(), gpu_lr.unwrap());
    assert_eq!(c.q, g.q);
    assert_eq!(c.r, g.r);
    assert_eq!(c.perm.as_slice(), g.perm.as_slice());
}

#[test]
fn dry_run_timing_unaffected_by_backend_refactor_consumes_no_values() {
    // Shape-only input on a dry-run GPU still yields the timing report,
    // and the same seed gives the same simulated time (determinism).
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let run = || {
        let mut gpu = Gpu::k40c_dry();
        let mut ge = GpuExec::new(&mut gpu);
        let (lr, rep) =
            run_fixed_rank(&mut ge, Input::Shape(50_000, 2_500), &cfg, &mut rng(5)).unwrap();
        assert!(lr.is_none());
        rep.seconds
    };
    assert_eq!(run(), run());
}

#[test]
fn adaptive_trajectory_identical_cpu_vs_gpu() {
    let a = exponent_matrix(220, 64, 17);
    let cfg = AdaptiveConfig {
        l_max: 64,
        ..AdaptiveConfig::new(2e-3, 8)
    };

    let mut gpu = Gpu::k40c();
    let on_gpu = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(23)).unwrap();
    let mut cpu = CpuExec::new();
    let (on_cpu, _rep) = adaptive_sample_exec(&mut cpu, &a, &cfg, &mut rng(23)).unwrap();

    assert_eq!(on_cpu.l(), on_gpu.l(), "same final sample size l");
    assert_eq!(on_cpu.converged, on_gpu.converged);
    assert_eq!(on_cpu.steps.len(), on_gpu.steps.len());
    for (c, g) in on_cpu.steps.iter().zip(on_gpu.steps.iter()) {
        assert_eq!(c.l, g.l);
        assert_eq!(
            c.estimate.to_bits(),
            g.estimate.to_bits(),
            "bit-identical estimates"
        );
    }
    assert_eq!(on_cpu.basis, on_gpu.basis);
}
