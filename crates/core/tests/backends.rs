//! Cross-backend equivalence: the unified pipeline must produce
//! **bit-identical** factors on every computing backend, and the
//! adaptive scheme must take the same trajectory on CPU and GPU.
//!
//! This is the acceptance test for the `Executor` refactor: the
//! numerics live in one place ([`rlra_core::backend::run_fixed_rank`]),
//! so the backends can only differ in what they *charge*, never in what
//! they *compute*.

use rlra_core::backend::{run_fixed_rank, CpuExec, GpuExec, Input, MultiGpuExec};
use rlra_core::{
    adaptive_sample, adaptive_sample_exec, sample_fixed_accuracy_exec, AdaptiveConfig,
    SamplerConfig, SamplingKind, Step2Kind,
};
use rlra_data::testmat::{decay_matrix, exponent_matrix, rng};
use rlra_gpu::{DeviceSpec, ExecMode, Gpu, MultiGpu};

fn configs() -> Vec<SamplerConfig> {
    vec![
        SamplerConfig::new(5).with_p(3),
        SamplerConfig::new(8).with_p(4).with_q(2),
        SamplerConfig::new(6)
            .with_p(6)
            .with_step2(Step2Kind::Tournament),
        SamplerConfig::new(7).with_p(5).with_q(1).without_reorth(),
    ]
}

#[test]
fn fixed_rank_factors_bit_identical_across_backends() {
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    for (ci, cfg) in configs().iter().enumerate() {
        let seed = 100 + ci as u64;

        let mut cpu = CpuExec::new();
        let (cpu_lr, cpu_rep) =
            run_fixed_rank(&mut cpu, Input::Values(&a), cfg, &mut rng(seed)).unwrap();
        let cpu_lr = cpu_lr.unwrap();

        let mut gpu = Gpu::k40c();
        let mut ge = GpuExec::new(&mut gpu);
        let (gpu_lr, gpu_rep) =
            run_fixed_rank(&mut ge, Input::Values(&a), cfg, &mut rng(seed)).unwrap();
        let gpu_lr = gpu_lr.unwrap();

        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        let mut me = MultiGpuExec::new(&mut mg).unwrap();
        let (multi_lr, multi_rep) =
            run_fixed_rank(&mut me, Input::Values(&a), cfg, &mut rng(seed)).unwrap();
        let multi_lr = multi_lr.unwrap();

        // Bit-identical factors, not approximately equal.
        assert_eq!(cpu_lr.q, gpu_lr.q, "config {ci}: Q cpu vs gpu");
        assert_eq!(cpu_lr.r, gpu_lr.r, "config {ci}: R cpu vs gpu");
        assert_eq!(
            cpu_lr.perm.as_slice(),
            gpu_lr.perm.as_slice(),
            "config {ci}: perm"
        );
        assert_eq!(cpu_lr.q, multi_lr.q, "config {ci}: Q cpu vs multi");
        assert_eq!(cpu_lr.r, multi_lr.r, "config {ci}: R cpu vs multi");
        assert_eq!(
            cpu_lr.perm.as_slice(),
            multi_lr.perm.as_slice(),
            "config {ci}: perm multi"
        );

        // The costs are backend-specific: CPU charges nothing, the
        // simulated devices do.
        assert_eq!(cpu_rep.seconds, 0.0);
        assert_eq!(cpu_rep.devices, 0);
        assert!(gpu_rep.seconds > 0.0);
        assert_eq!(gpu_rep.devices, 1);
        assert!(multi_rep.seconds > 0.0);
        assert!(multi_rep.comms > 0.0);
        assert_eq!(multi_rep.devices, 3);

        // Communication is exclusively a multi-device phenomenon: the
        // CPU and single-GPU backends must report exactly zero comms.
        assert_eq!(cpu_rep.comms, 0.0, "config {ci}: CPU comms must be 0");
        assert_eq!(gpu_rep.comms, 0.0, "config {ci}: 1-GPU comms must be 0");

        // No faults were injected and the numeric guard never fired.
        for rep in [&cpu_rep, &gpu_rep, &multi_rep] {
            assert_eq!(rep.faults_injected, 0);
            assert_eq!(rep.retries, 0);
            assert_eq!(rep.recovery_seconds, 0.0);
            assert_eq!(rep.devices_lost, 0);
            assert_eq!(rep.breakdowns, 0);
            assert_eq!(rep.fallbacks, 0);
            assert_eq!(rep.ladder_histogram, [0, 0, 0]);
        }
    }
}

/// A fault plan whose events never fire (scheduled far past the launch
/// horizon) must leave both the factors and the *entire report* —
/// clocks, timelines, counters — bit-identical to a run with no
/// injector installed, on every computing backend.
#[test]
fn no_fire_fault_plan_is_bit_identical_to_no_injector_run() {
    use rlra_gpu::FaultPlan;
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    let cfg = SamplerConfig::new(6).with_p(4).with_q(1);
    let plan = FaultPlan::default()
        .transient(0, 1_000_000)
        .straggler(1, 1_000_000, 4.0)
        .fail_stop(2, 1_000_000);

    // Single GPU.
    let run_gpu = |with_plan: bool| {
        let mut gpu = Gpu::k40c();
        if with_plan {
            gpu.set_injector(Some(plan.injector_for(0)));
        }
        let mut ge = GpuExec::new(&mut gpu);
        let (lr, rep) = run_fixed_rank(&mut ge, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
        (lr.unwrap(), rep)
    };
    let (lr_base, rep_base) = run_gpu(false);
    let (lr_plan, rep_plan) = run_gpu(true);
    assert_eq!(lr_base.q, lr_plan.q);
    assert_eq!(lr_base.r, lr_plan.r);
    assert_eq!(lr_base.perm.as_slice(), lr_plan.perm.as_slice());
    assert_eq!(
        rep_base, rep_plan,
        "single-GPU report must be bit-identical"
    );

    // Multi-GPU.
    let run_multi = |with_plan: bool| {
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        if with_plan {
            mg.install_plan(&plan);
        }
        let mut me = MultiGpuExec::new(&mut mg).unwrap();
        let (lr, rep) = run_fixed_rank(&mut me, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
        (lr.unwrap(), rep)
    };
    let (mlr_base, mrep_base) = run_multi(false);
    let (mlr_plan, mrep_plan) = run_multi(true);
    assert_eq!(mlr_base.q, mlr_plan.q);
    assert_eq!(mlr_base.r, mlr_plan.r);
    assert_eq!(mlr_base.perm.as_slice(), mlr_plan.perm.as_slice());
    assert_eq!(
        mrep_base, mrep_plan,
        "multi-GPU report must be bit-identical"
    );

    // CPU for completeness: the backend ignores injectors entirely.
    let mut cpu = CpuExec::new();
    let (cpu_lr, cpu_rep) = run_fixed_rank(&mut cpu, Input::Values(&a), &cfg, &mut rng(9)).unwrap();
    assert_eq!(cpu_lr.unwrap().q, lr_base.q);
    assert_eq!(cpu_rep.faults_injected, 0);
}

/// On a healthy input the ladder policy is *inert*: a guard capped at
/// rung 0 and a guard with the full ladder enabled must produce
/// bit-identical factors AND a bit-identical **entire report** —
/// clocks, timelines, counters — on every computing backend. This is
/// the acceptance criterion that installing the guard cannot perturb
/// runs that never break down.
#[test]
fn inert_guard_leaves_factors_and_full_report_bit_identical() {
    use rlra_core::backend::{run_fixed_rank_with_guard, NumericGuard, NumericPolicy, Rung};
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    let cfg = SamplerConfig::new(6).with_p(4).with_q(1);

    let policies = || {
        [
            NumericPolicy {
                max_rung: Rung::CholQr,
                ..NumericPolicy::default()
            },
            NumericPolicy::default(),
        ]
    };

    // CPU.
    let run_cpu = |policy: NumericPolicy| {
        let mut exec = CpuExec::new();
        let mut guard = NumericGuard::new(policy);
        let (lr, rep) =
            run_fixed_rank_with_guard(&mut exec, Input::Values(&a), &cfg, &mut rng(11), &mut guard)
                .unwrap();
        (lr.unwrap(), rep)
    };
    let [capped, full] = policies().map(run_cpu);
    assert_eq!(capped.0.q, full.0.q);
    assert_eq!(capped.0.r, full.0.r);
    assert_eq!(capped.1, full.1, "CPU report must be policy-independent");

    // Single GPU.
    let run_gpu = |policy: NumericPolicy| {
        let mut gpu = Gpu::k40c();
        let mut exec = GpuExec::new(&mut gpu);
        let mut guard = NumericGuard::new(policy);
        let (lr, rep) =
            run_fixed_rank_with_guard(&mut exec, Input::Values(&a), &cfg, &mut rng(11), &mut guard)
                .unwrap();
        (lr.unwrap(), rep)
    };
    let [capped, full] = policies().map(run_gpu);
    assert_eq!(capped.0.q, full.0.q);
    assert_eq!(capped.0.r, full.0.r);
    assert_eq!(capped.1, full.1, "GPU report must be policy-independent");

    // Multi-GPU.
    let run_multi = |policy: NumericPolicy| {
        let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
        let mut exec = MultiGpuExec::new(&mut mg).unwrap();
        let mut guard = NumericGuard::new(policy);
        let (lr, rep) =
            run_fixed_rank_with_guard(&mut exec, Input::Values(&a), &cfg, &mut rng(11), &mut guard)
                .unwrap();
        (lr.unwrap(), rep)
    };
    let [capped, full] = policies().map(run_multi);
    assert_eq!(capped.0.q, full.0.q);
    assert_eq!(capped.0.r, full.0.r);
    assert_eq!(
        capped.1, full.1,
        "multi-GPU report must be policy-independent"
    );
}

/// A near-singular sketch (numerical rank 8 under an l = 16 sample)
/// must complete via the fallback ladder on every computing backend,
/// with bit-identical factors and **identical ladder histograms** — the
/// escalation decisions are host-side numerics, so the backends cannot
/// diverge on when or how far to escalate.
#[test]
fn near_singular_sketch_escalates_identically_across_backends() {
    use rlra_core::backend::{run_fixed_rank_with_guard, NumericGuard, NumericPolicy, Rung};
    use rlra_data::{near_deficient_spectrum, synthetic::matrix_with_spectrum};
    use rlra_matrix::MatrixError;

    let spectrum = near_deficient_spectrum(45, 8, 1e-8);
    let a = matrix_with_spectrum(90, 45, &spectrum, &mut rng(7))
        .unwrap()
        .a;
    let cfg = SamplerConfig::new(12).with_p(4).with_q(1);

    let mut results = Vec::new();

    let mut cpu = CpuExec::new();
    let mut guard = NumericGuard::default();
    let (lr, rep) =
        run_fixed_rank_with_guard(&mut cpu, Input::Values(&a), &cfg, &mut rng(13), &mut guard)
            .unwrap();
    results.push(("cpu", lr.unwrap(), rep));

    let mut gpu = Gpu::k40c();
    let mut ge = GpuExec::new(&mut gpu);
    let mut guard = NumericGuard::default();
    let (lr, rep) =
        run_fixed_rank_with_guard(&mut ge, Input::Values(&a), &cfg, &mut rng(13), &mut guard)
            .unwrap();
    results.push(("gpu", lr.unwrap(), rep));

    let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
    let mut me = MultiGpuExec::new(&mut mg).unwrap();
    let mut guard = NumericGuard::default();
    let (lr, rep) =
        run_fixed_rank_with_guard(&mut me, Input::Values(&a), &cfg, &mut rng(13), &mut guard)
            .unwrap();
    results.push(("multi", lr.unwrap(), rep));

    let (_, lr0, rep0) = &results[0];
    assert!(
        rep0.fallbacks > 0,
        "the deficient sketch must exercise the ladder"
    );
    assert!(rep0.breakdowns > 0);
    for (name, lr, rep) in &results[1..] {
        assert_eq!(lr0.q, lr.q, "{name}: Q must match CPU");
        assert_eq!(lr0.r, lr.r, "{name}: R must match CPU");
        assert_eq!(rep0.breakdowns, rep.breakdowns, "{name}: breakdowns");
        assert_eq!(rep0.fallbacks, rep.fallbacks, "{name}: fallbacks");
        assert_eq!(
            rep0.ladder_histogram, rep.ladder_histogram,
            "{name}: ladder histogram"
        );
    }
    // The escalations landed on the shifted rung and the factors are
    // still an accurate rank-12 approximation (error ~ tail).
    assert!(rep0.ladder_histogram[1] > 0, "shifted rung used");
    let err = lr0.error_spectral(&a).unwrap();
    assert!(err < 1e-6, "recovered approximation accurate: {err:.3e}");

    // With the ladder capped at rung 0 the same input is a hard error —
    // the pre-guard behavior — on every backend, at the same stage.
    let capped = NumericPolicy {
        max_rung: Rung::CholQr,
        ..NumericPolicy::default()
    };
    let mut cpu = CpuExec::new();
    let mut guard = NumericGuard::new(capped);
    let err_cpu =
        run_fixed_rank_with_guard(&mut cpu, Input::Values(&a), &cfg, &mut rng(13), &mut guard)
            .unwrap_err();
    let mut gpu = Gpu::k40c();
    let mut ge = GpuExec::new(&mut gpu);
    let mut guard = NumericGuard::new(capped);
    let err_gpu =
        run_fixed_rank_with_guard(&mut ge, Input::Values(&a), &cfg, &mut rng(13), &mut guard)
            .unwrap_err();
    for e in [&err_cpu, &err_gpu] {
        assert!(
            matches!(e, MatrixError::NumericalBreakdown { stage, .. } if *stage == "orth_b"),
            "rung-0 cap must surface the breakdown: {e}"
        );
    }
}

#[test]
fn fft_sampling_bit_identical_cpu_vs_gpu() {
    let (a, _) = decay_matrix(64, 32, 0.55, 7);
    let cfg = SamplerConfig::new(6)
        .with_p(6)
        .with_sampling(SamplingKind::Fft(rlra_fft::SrftScheme::Full));

    let mut cpu = CpuExec::new();
    let (cpu_lr, _) = run_fixed_rank(&mut cpu, Input::Values(&a), &cfg, &mut rng(3)).unwrap();
    let mut gpu = Gpu::k40c();
    let mut ge = GpuExec::new(&mut gpu);
    let (gpu_lr, _) = run_fixed_rank(&mut ge, Input::Values(&a), &cfg, &mut rng(3)).unwrap();

    let (c, g) = (cpu_lr.unwrap(), gpu_lr.unwrap());
    assert_eq!(c.q, g.q);
    assert_eq!(c.r, g.r);
    assert_eq!(c.perm.as_slice(), g.perm.as_slice());
}

#[test]
fn dry_run_timing_unaffected_by_backend_refactor_consumes_no_values() {
    // Shape-only input on a dry-run GPU still yields the timing report,
    // and the same seed gives the same simulated time (determinism).
    let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
    let run = || {
        let mut gpu = Gpu::k40c_dry();
        let mut ge = GpuExec::new(&mut gpu);
        let (lr, rep) =
            run_fixed_rank(&mut ge, Input::Shape(50_000, 2_500), &cfg, &mut rng(5)).unwrap();
        assert!(lr.is_none());
        rep.seconds
    };
    assert_eq!(run(), run());
}

#[test]
fn adaptive_trajectory_identical_cpu_vs_gpu() {
    let a = exponent_matrix(220, 64, 17);
    let cfg = AdaptiveConfig {
        l_max: 64,
        ..AdaptiveConfig::new(2e-3, 8)
    };

    let mut gpu = Gpu::k40c();
    let on_gpu = adaptive_sample(&mut gpu, &a, &cfg, &mut rng(23)).unwrap();
    let mut cpu = CpuExec::new();
    let (on_cpu, _rep) = adaptive_sample_exec(&mut cpu, &a, &cfg, &mut rng(23)).unwrap();

    assert_eq!(on_cpu.l(), on_gpu.l(), "same final sample size l");
    assert_eq!(on_cpu.converged, on_gpu.converged);
    assert_eq!(on_cpu.steps.len(), on_gpu.steps.len());
    for (c, g) in on_cpu.steps.iter().zip(on_gpu.steps.iter()) {
        assert_eq!(c.l, g.l);
        assert_eq!(
            c.estimate.to_bits(),
            g.estimate.to_bits(),
            "bit-identical estimates"
        );
    }
    assert_eq!(on_cpu.basis, on_gpu.basis);
}

/// The incremental fixed-accuracy pipeline is pure host numerics behind
/// backend cost hooks: CPU, single-GPU and multi-GPU must produce
/// bit-identical factors, walk the identical `(ℓ, ε̃)` trajectory, and
/// fire the guard's orthogonalization ladder identically. Only the
/// modeled charges may differ.
#[test]
fn incremental_fixed_accuracy_factors_bit_identical_across_backends() {
    // Estimate ~ sqrt(m)·sigma_l = 12.2·10^{-l/10}: tol 1e-3 is reached
    // at l = 48 of the 60-column exponent profile, inside l_max.
    let a = exponent_matrix(150, 60, 77);
    let cfg = AdaptiveConfig {
        l_max: 60,
        ..AdaptiveConfig::new(1e-3, 16)
    };
    assert_eq!(cfg.finish, rlra_core::FinishMode::Incremental);

    let mut cpu = CpuExec::new();
    let (cpu_lr, cpu_res, cpu_rep) =
        sample_fixed_accuracy_exec(&mut cpu, &a, &cfg, &mut rng(55)).unwrap();

    let mut gpu = Gpu::k40c();
    let mut ge = GpuExec::new(&mut gpu);
    let (gpu_lr, gpu_res, gpu_rep) =
        sample_fixed_accuracy_exec(&mut ge, &a, &cfg, &mut rng(55)).unwrap();

    let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
    let mut me = MultiGpuExec::new(&mut mg).unwrap();
    let (multi_lr, multi_res, multi_rep) =
        sample_fixed_accuracy_exec(&mut me, &a, &cfg, &mut rng(55)).unwrap();

    assert!(cpu_res.converged, "tolerance reachable within l_max");

    // Bit-identical factors on every backend.
    for (name, lr) in [("gpu", &gpu_lr), ("multi", &multi_lr)] {
        assert_eq!(cpu_lr.q, lr.q, "Q cpu vs {name}");
        assert_eq!(cpu_lr.r, lr.r, "R cpu vs {name}");
        assert_eq!(
            cpu_lr.perm.as_slice(),
            lr.perm.as_slice(),
            "perm cpu vs {name}"
        );
    }

    // Identical trajectory, bit for bit.
    for (name, res) in [("gpu", &gpu_res), ("multi", &multi_res)] {
        assert_eq!(cpu_res.steps.len(), res.steps.len(), "steps cpu vs {name}");
        for (c, o) in cpu_res.steps.iter().zip(res.steps.iter()) {
            assert_eq!(c.l, o.l);
            assert_eq!(c.estimate.to_bits(), o.estimate.to_bits());
        }
        assert_eq!(cpu_res.converged, res.converged);
    }

    // The guard saw the same panels everywhere, so the ladder histogram
    // is a backend invariant.
    assert_eq!(cpu_rep.ladder_histogram, gpu_rep.ladder_histogram);
    assert_eq!(cpu_rep.ladder_histogram, multi_rep.ladder_histogram);

    // Charges stay backend-specific: comms exist only on multi-GPU.
    assert_eq!(cpu_rep.seconds, 0.0);
    assert_eq!(cpu_rep.comms, 0.0);
    assert_eq!(gpu_rep.comms, 0.0, "1-GPU comms must be 0");
    assert!(gpu_rep.seconds > 0.0);
    assert!(multi_rep.seconds > 0.0);
    assert!(multi_rep.comms > 0.0);
    assert_eq!(multi_rep.devices, 3);

    // The factors actually approximate A at the requested tolerance
    // (the estimate overshoots the true error, see Figure 16).
    let err = cpu_lr.error_spectral(&a).unwrap();
    assert!(err <= cfg.tol, "reconstruction error {err:.3e}");
}

/// Verified accuracy: the posterior estimate certifies an easily
/// reachable tolerance in one attempt, rejects a non-positive
/// tolerance up front, refuses timing-only backends, and exhausts its
/// bounded retries with [`MatrixError::AccuracyNotReached`] when the
/// tolerance is unreachable at the configured rank.
#[test]
fn verified_run_certifies_or_exhausts_bounded_retries() {
    use rlra_core::backend::{run_fixed_rank_verified, NumericGuard};
    use rlra_matrix::MatrixError;

    // Fast decay: rank 8 + oversampling reaches 1e-2 comfortably.
    let (a, _) = decay_matrix(90, 45, 0.5, 42);
    let cfg = SamplerConfig::new(8).with_p(4).with_q(1);
    let mut cpu = CpuExec::new();
    let mut guard = NumericGuard::default();
    let (lr, rep) = run_fixed_rank_verified(
        &mut cpu,
        Input::Values(&a),
        &cfg,
        &mut rng(21),
        1e-2,
        &mut guard,
    )
    .unwrap();
    let err = lr.error_spectral(&a).unwrap();
    assert!(
        err < 1e-2,
        "certified factors meet the tolerance: {err:.3e}"
    );
    assert_eq!(rep.breakdowns, 0, "healthy input never fires the guard");

    // A non-positive tolerance is rejected before any work happens.
    let mut guard = NumericGuard::default();
    assert!(matches!(
        run_fixed_rank_verified(
            &mut cpu,
            Input::Values(&a),
            &cfg,
            &mut rng(21),
            0.0,
            &mut guard
        ),
        Err(MatrixError::InvalidParameter { name: "tol", .. })
    ));

    // Timing-only backends cannot verify (no values to probe).
    let mut gpu = Gpu::k40c_dry();
    let mut ge = GpuExec::new(&mut gpu);
    let mut guard = NumericGuard::default();
    assert!(matches!(
        run_fixed_rank_verified(
            &mut ge,
            Input::Shape(4_000, 500),
            &cfg,
            &mut rng(21),
            1e-2,
            &mut guard
        ),
        Err(MatrixError::Unsupported { .. })
    ));

    // Slow decay (σᵢ = 10^{-i/10}): rank 8 leaves a ~10^{-0.8} tail, so
    // tol 1e-9 is unreachable no matter how the sketch is re-drawn. The
    // retry loop must stop at its bounded attempt count, reporting the
    // best achieved estimate.
    let a = exponent_matrix(120, 60, 17);
    let mut cpu = CpuExec::new();
    let mut guard = NumericGuard::default();
    let err = run_fixed_rank_verified(
        &mut cpu,
        Input::Values(&a),
        &cfg,
        &mut rng(21),
        1e-9,
        &mut guard,
    )
    .unwrap_err();
    match err {
        MatrixError::AccuracyNotReached {
            achieved,
            required,
            attempts,
        } => {
            assert_eq!(attempts, 3, "bounded retry budget");
            assert_eq!(required, 1e-9);
            assert!(
                achieved > required,
                "best estimate {achieved:.3e} honestly above the tolerance"
            );
        }
        other => panic!("expected AccuracyNotReached, got {other}"),
    }
}
