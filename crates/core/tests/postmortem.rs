//! Flight-recorder postmortems, end to end: a fixed-seed fail-stop run
//! with an armed [`FlightDeck`] dumps a bundle whose manifest, event
//! tail, and metrics snapshot reconcile exactly with what the tracer
//! streamed and what the [`ExecReport`] says; deadline overruns carry
//! the checkpoint pointer a resumed run would load; and the bundle
//! directory honors the `$RLRA_POSTMORTEM_DIR` override.

use rlra_core::backend::{
    run_fixed_rank, run_fixed_rank_protected, run_fixed_rank_with_recovery, ExecReport, GpuExec,
    Input, IntegrityGuard, IntegrityMode, IntegrityPolicy, MultiGpuExec, NumericGuard,
    RecoveryPolicy,
};
use rlra_core::{
    postmortem_dir, report_json, CheckpointPlan, CountingRng, Deadline, Durability, FlightDeck,
    SamplerConfig,
};
use rlra_data::testmat::{decay_matrix, rng};
use rlra_gpu::{DeviceSpec, ExecMode, FaultPlan, Gpu, MultiGpu, SdcPlan};
use rlra_matrix::MatrixError;
use rlra_obs::names;
use rlra_trace::{parse_json, Json};

fn test_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn count_events_of(events: &Json, kind: &str) -> usize {
    events
        .get("events")
        .and_then(Json::as_arr)
        .map_or(0, |arr| {
            arr.iter()
                .filter(|e| e.get("type").and_then(|t| t.as_str()) == Some(kind))
                .count()
        })
}

/// A fail-stop with no recovery policy kills the run; the deck turns
/// the error into a bundle whose manifest and event tail agree with
/// the recorder and the live registry.
#[test]
fn fail_stop_dumps_a_reconciling_postmortem_bundle() {
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    let cfg = SamplerConfig::new(6).with_p(4).with_q(1);
    let deck = FlightDeck::default();

    let mut gpu = Gpu::k40c();
    gpu.set_injector(Some(FaultPlan::default().fail_stop(0, 4).injector_for(0)));
    gpu.set_tracer(Some(deck.tracer()));
    let mut exec = GpuExec::new(&mut gpu);
    let err = run_fixed_rank(&mut exec, Input::Values(&a), &cfg, &mut rng(9))
        .expect_err("fail-stop without recovery must kill the run");
    assert!(
        matches!(err, MatrixError::DeviceFault { .. }),
        "expected a device fault, got {err}"
    );

    let dir = test_dir("rlra_postmortem_failstop");
    let written = deck
        .dump_on_error(&err, None, &dir)
        .expect("bundle write must succeed")
        .expect("a device fault is a run-level incident");
    assert!(written[0].ends_with("MANIFEST.json"));

    let manifest = parse_json(&std::fs::read_to_string(&written[0]).unwrap()).unwrap();
    assert_eq!(
        manifest.get("incident").unwrap().as_str(),
        Some("device-fault")
    );
    assert_eq!(manifest.get("checkpoint"), Some(&Json::Null));
    assert_eq!(
        manifest.get("events_retained").unwrap().as_num(),
        Some(deck.recorder().len() as f64),
        "manifest tail size must match the recorder"
    );

    // Nothing was evicted at this scale, so the bundle's event tail is
    // the *complete* stream — it must reconcile with the registry the
    // same tracer fed: one recorded kernel event per kernel-histogram
    // sample, and the injected fault seen by both.
    assert_eq!(deck.recorder().dropped(), 0);
    let events = parse_json(&std::fs::read_to_string(dir.join("events.json")).unwrap()).unwrap();
    let snap = deck.registry().snapshot();
    let hist_samples: u64 = snap
        .hist_family(names::SIM_KERNEL_SECONDS)
        .iter()
        .map(|(_, h)| h.count())
        .sum();
    assert_eq!(count_events_of(&events, "kernel") as u64, hist_samples);
    assert_eq!(count_events_of(&events, "fault"), 1);
    let faults: u64 = snap
        .counter_family(names::SIM_FAULTS_TOTAL)
        .iter()
        .map(|(_, c)| *c)
        .sum();
    assert_eq!(faults, 1);

    // The metrics snapshot in the bundle is the versioned registry doc.
    let metrics = parse_json(&std::fs::read_to_string(dir.join("metrics.json")).unwrap()).unwrap();
    assert_eq!(
        metrics.get("schema_version").unwrap().as_num(),
        Some(rlra_obs::REGISTRY_SCHEMA_VERSION as f64),
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A recovered fail-stop completes with a report; folding that report
/// into the deck and dumping a bundle around it must reconcile exactly
/// — counter for counter, second for second — with the `ExecReport`.
#[test]
fn recovered_run_bundle_reconciles_exactly_with_the_exec_report() {
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    let cfg = SamplerConfig::new(6).with_p(4).with_q(2);
    let deck = FlightDeck::default();

    let mut mg = MultiGpu::new(3, DeviceSpec::k40c(), ExecMode::Compute).unwrap();
    mg.install_plan(&FaultPlan::default().fail_stop(1, 4));
    mg.set_tracer(Some(deck.tracer()));
    let exec = MultiGpuExec::new(&mut mg).unwrap();
    let (_, rep) = run_fixed_rank_with_recovery(
        exec,
        RecoveryPolicy::default(),
        Input::Values(&a),
        &cfg,
        &mut rng(3),
    )
    .unwrap();
    assert_eq!(rep.devices_lost, 1);
    deck.observe_report(&rep);

    // Live event stream and folded aggregates agree with the report.
    let snap = deck.registry().snapshot();
    let sum_counters =
        |name: &str| -> u64 { snap.counter_family(name).iter().map(|(_, c)| *c).sum() };
    assert_eq!(sum_counters(names::SIM_FAULTS_TOTAL), rep.faults_injected);
    assert_eq!(sum_counters(names::RUNS_TOTAL), 1);
    assert_eq!(sum_counters(names::RUN_RETRIES_TOTAL), rep.retries);
    assert_eq!(sum_counters(names::RUN_FALLBACKS_TOTAL), rep.fallbacks);
    assert_eq!(sum_counters(names::DEVICE_LAUNCHES_TOTAL), rep.launches);
    assert_eq!(
        snap.gauge(names::RUN_RECOVERY_SECONDS, ""),
        Some(rep.recovery_seconds)
    );

    // An operator dumping a bundle after the incident gets a
    // `report.json` that parses back to the report, field for field.
    let dir = test_dir("rlra_postmortem_recovered");
    let incident = MatrixError::DeviceFault {
        device: 1,
        kind: rlra_matrix::DeviceFaultKind::FailStop,
        at: 4,
    };
    deck.dump_on_error(&incident, Some(&rep), &dir)
        .expect("bundle write must succeed")
        .expect("device fault is an incident");
    let doc = parse_json(&std::fs::read_to_string(dir.join("report.json")).unwrap()).unwrap();
    let num = |k: &str| doc.get(k).and_then(Json::as_num).unwrap();
    assert_eq!(num("seconds"), rep.seconds);
    assert_eq!(num("launches"), rep.launches as f64);
    assert_eq!(num("retries"), rep.retries as f64);
    assert_eq!(num("recovery_seconds"), rep.recovery_seconds);
    assert_eq!(num("devices_lost"), rep.devices_lost as f64);
    assert_eq!(num("faults_injected"), rep.faults_injected as f64);
    // ... and the rendered document is stable: rendering the same
    // report twice is byte-identical (the golden-postmortem property).
    assert_eq!(report_json(&rep), report_json(&rep));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Detect-only silent corruption kills the run; the deck classifies it
/// as a `silent-corruption` incident whose bundle carries the sdc marks
/// the drained integrity guard traced before the error surfaced.
#[test]
fn silent_corruption_dumps_a_postmortem_bundle() {
    let (a, _) = decay_matrix(90, 45, 0.6, 42);
    let cfg = SamplerConfig::new(6).with_p(4).with_q(1);
    let deck = FlightDeck::default();

    let mut gpu = Gpu::k40c();
    gpu.set_sdc_injector(Some(
        SdcPlan::new()
            .bit_flip(0, 0, "power_c", 1, 2, 51)
            .injector_for(0),
    ));
    gpu.set_tracer(Some(deck.tracer()));
    let mut exec = GpuExec::new(&mut gpu);
    let mut guard = NumericGuard::default();
    let mut iguard = IntegrityGuard::new(IntegrityPolicy::with_mode(IntegrityMode::DetectOnly));
    let err = run_fixed_rank_protected(
        &mut exec,
        Input::Values(&a),
        &cfg,
        &mut rng(9),
        &mut guard,
        &mut iguard,
    )
    .expect_err("detect-only corruption must kill the run");
    let MatrixError::SilentCorruption { kernel, device, .. } = err else {
        panic!("expected SilentCorruption, got {err}");
    };
    assert_eq!(kernel, "gemm_to_c");
    assert_eq!(device, 0);

    let dir = test_dir("rlra_postmortem_sdc");
    let written = deck
        .dump_on_error(&err, None, &dir)
        .expect("bundle write must succeed")
        .expect("silent corruption is a run-level incident");
    let manifest = parse_json(&std::fs::read_to_string(&written[0]).unwrap()).unwrap();
    assert_eq!(
        manifest.get("incident").unwrap().as_str(),
        Some("silent-corruption")
    );
    assert_eq!(manifest.get("checkpoint"), Some(&Json::Null));

    // The guard drained before the error surfaced, so the bundle's
    // event tail carries the injected+detected marks and the live
    // registry counted them under the action label.
    let events = parse_json(&std::fs::read_to_string(dir.join("events.json")).unwrap()).unwrap();
    assert!(
        count_events_of(&events, "sdc") >= 2,
        "expected injected and detected sdc marks in the event tail"
    );
    let snap = deck.registry().snapshot();
    assert_eq!(
        snap.counter(names::SIM_SDC_EVENTS_TOTAL, "action=\"injected\""),
        Some(1)
    );
    assert_eq!(
        snap.counter(names::SIM_SDC_EVENTS_TOTAL, "action=\"detected\""),
        Some(1)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A blown deadline is an incident whose bundle names the snapshot a
/// resumed run would load.
#[test]
fn deadline_overrun_bundle_carries_the_checkpoint_pointer() {
    let (a, _) = decay_matrix(60, 40, 0.6, 42);
    let cfg = SamplerConfig::new(10)
        .with_p(5)
        .with_q(2)
        .with_deadline(Deadline::new(1e-12));
    let deck = FlightDeck::default();

    let mut gpu = Gpu::k40c();
    gpu.set_tracer(Some(deck.tracer()));
    let mut exec = GpuExec::new(&mut gpu);
    let mut crng = CountingRng::new(rng(3));
    let mut dur = Durability::new(CheckpointPlan::always());
    let err =
        rlra_core::run_fixed_rank_durable(&mut exec, Input::Values(&a), &cfg, &mut crng, &mut dur)
            .expect_err("a 1e-12s budget must blow at the first boundary");
    let MatrixError::DeadlineExceeded { snapshot, .. } = err else {
        panic!("expected DeadlineExceeded, got {err}");
    };

    let dir = test_dir("rlra_postmortem_deadline");
    let written = deck
        .dump_on_error(&err, None, &dir)
        .unwrap()
        .expect("deadline overrun is an incident");
    let manifest = parse_json(&std::fs::read_to_string(&written[0]).unwrap()).unwrap();
    assert_eq!(
        manifest.get("incident").unwrap().as_str(),
        Some("deadline-exceeded")
    );
    assert_eq!(
        manifest.get("checkpoint").unwrap().as_num(),
        Some(snapshot as f64),
        "the bundle must point at the resumable snapshot"
    );
    assert!(dur.get(snapshot).is_some(), "and the snapshot exists");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Non-incident errors never write bundles, and the bundle directory
/// is `$RLRA_POSTMORTEM_DIR` when set.
#[test]
fn postmortem_dir_honors_the_env_override() {
    let deck = FlightDeck::default();
    let none = deck
        .dump_on_error(
            &MatrixError::SingularDiagonal { index: 0 },
            Some(&ExecReport::default()),
            &test_dir("rlra_postmortem_never"),
        )
        .unwrap();
    assert!(none.is_none(), "a dimension error is not an incident");

    std::env::set_var("RLRA_POSTMORTEM_DIR", "/tmp/rlra_pm_override");
    assert_eq!(
        postmortem_dir(),
        std::path::PathBuf::from("/tmp/rlra_pm_override")
    );
    std::env::remove_var("RLRA_POSTMORTEM_DIR");
    assert_eq!(
        postmortem_dir(),
        std::path::PathBuf::from("target/postmortem")
    );
}
