//! Property-based tests of the factorization kernels across random
//! shapes and conditioning.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlra_blas::naive::gemm_ref;
use rlra_blas::Trans;
use rlra_lapack::householder::orthogonality_error;
use rlra_matrix::{gaussian_mat, Mat};

fn random_mat(rng: &mut StdRng, rows: usize, cols: usize) -> Mat {
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

fn reconstructs(q: &Mat, r: &Mat, a: &Mat, tol: f64) -> bool {
    let rec = gemm_ref(q, Trans::No, r, Trans::No);
    rlra_matrix::ops::max_abs_diff(&rec, a).unwrap() < tol
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn householder_qr_invariants(
        m in 1usize..60,
        n in 1usize..60,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(&mut rng, m, n);
        let (q, r) = rlra_lapack::qr_factor(&a);
        prop_assert!(orthogonality_error(&q) < 1e-12);
        prop_assert!(reconstructs(&q, &r, &a, 1e-10));
        for j in 0..r.cols() {
            for i in j + 1..r.rows() {
                prop_assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholqr_matches_householder_subspace(
        m in 10usize..80,
        n in 1usize..8,
        seed in 0u64..1000,
    ) {
        let m = m.max(2 * n);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gaussian_mat(m, n, &mut rng);
        let (qc, rc) = rlra_lapack::cholqr2(&a).unwrap();
        prop_assert!(orthogonality_error(&qc) < 1e-11);
        prop_assert!(reconstructs(&qc, &rc, &a, 1e-9));
        // Same projector as Householder.
        let qh = rlra_lapack::form_q(&a);
        let pc = gemm_ref(&qc, Trans::No, &qc, Trans::Yes);
        let ph = gemm_ref(&qh, Trans::No, &qh, Trans::Yes);
        prop_assert!(rlra_matrix::ops::max_abs_diff(&pc, &ph).unwrap() < 1e-8);
    }

    #[test]
    fn tsqr_equals_householder_with_sign_convention(
        m in 12usize..90,
        n in 1usize..7,
        block in 4usize..30,
        seed in 0u64..1000,
    ) {
        let m = m.max(2 * n);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gaussian_mat(m, n, &mut rng);
        let t = rlra_lapack::tsqr(&a, block).unwrap();
        prop_assert!(orthogonality_error(&t.q) < 1e-11);
        prop_assert!(reconstructs(&t.q, &t.r, &a, 1e-9));
        let (_, r_ref) = rlra_lapack::tsqr::qr_positive_diag(&a);
        prop_assert!(rlra_matrix::ops::max_abs_diff(&t.r, &r_ref).unwrap() < 1e-8);
    }

    #[test]
    fn qrcp_pivot_monotonicity(
        m in 5usize..50,
        n in 5usize..50,
        seed in 0u64..1000,
    ) {
        let k = m.min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(&mut rng, m, n);
        let res = rlra_lapack::qrcp_column(&a, k).unwrap();
        let d = res.r_diag();
        for w in d.windows(2) {
            prop_assert!(w[1] <= w[0] * (1.0 + 1e-9), "diag not non-increasing: {:?}", d);
        }
        // |r_11| equals the largest column norm of A.
        let max_col = rlra_matrix::norms::col_norms(a.as_ref())
            .into_iter()
            .fold(0.0f64, f64::max);
        prop_assert!((d[0] - max_col).abs() < 1e-9 * (1.0 + max_col));
    }

    #[test]
    fn qp3_blocked_equals_unblocked(
        m in 8usize..40,
        n in 8usize..40,
        nb in 1usize..12,
        seed in 0u64..1000,
    ) {
        let k = m.min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(&mut rng, m, n);
        let r1 = rlra_lapack::qrcp_column(&a, k).unwrap();
        let r2 = rlra_lapack::qp3_blocked(&a, k, nb).unwrap();
        prop_assert_eq!(r1.perm.as_slice(), r2.perm.as_slice());
        for (x, y) in r1.r_diag().iter().zip(r2.r_diag()) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn cholesky_reconstructs_spd(
        n in 1usize..25,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let b = random_mat(&mut rng, n, n + 3);
        let mut g = gemm_ref(&b, Trans::No, &b, Trans::Yes);
        for i in 0..n {
            g[(i, i)] += n as f64;
        }
        let r = rlra_lapack::cholesky_upper(&g).unwrap();
        let rec = gemm_ref(&r, Trans::Yes, &r, Trans::No);
        prop_assert!(rlra_matrix::ops::max_abs_diff(&rec, &g).unwrap() < 1e-9 * n as f64);
    }

    #[test]
    fn svd_singular_values_match_gram_eigenvalues(
        m in 2usize..20,
        n in 2usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(&mut rng, m, n);
        let sv = rlra_lapack::singular_values(&a).unwrap();
        // Sum of squares equals the Frobenius norm squared.
        let fro2: f64 = a.as_slice().iter().map(|x| x * x).sum();
        let sum2: f64 = sv.iter().map(|s| s * s).sum();
        prop_assert!((fro2 - sum2).abs() < 1e-9 * (1.0 + fro2));
        // Largest singular value equals the power-iteration spectral
        // norm. When sigma_1 ~ sigma_2 the power iteration stalls between
        // them, but that lands the estimate within the (tiny) gap — so
        // the practical tolerance is the gap size, not machine precision.
        let sn = rlra_matrix::norms::spectral_norm(a.as_ref());
        prop_assert!(sn <= sv[0] * (1.0 + 1e-9), "estimate cannot exceed sigma_1");
        prop_assert!((sv[0] - sn).abs() < 1e-3 * (1.0 + sv[0]), "sv0 {} vs power {}", sv[0], sn);
    }

    #[test]
    fn tournament_never_much_worse_than_qp3(
        n_blocks in 2usize..6,
        k in 2usize..6,
        seed in 0u64..500,
    ) {
        let n = n_blocks * 2 * k + 3;
        let m = n + 10;
        let mut rng = StdRng::seed_from_u64(seed);
        // Decaying spectrum so rank-k matters.
        let x = rlra_lapack::form_q(&gaussian_mat(m, n, &mut rng));
        let y = rlra_lapack::form_q(&gaussian_mat(n, n, &mut rng));
        let xs = Mat::from_fn(m, n, |i, j| x[(i, j)] * 0.7f64.powi(j as i32));
        let mut a = Mat::zeros(m, n);
        rlra_blas::gemm(1.0, xs.as_ref(), Trans::No, y.as_ref(), Trans::Yes, 0.0, a.as_mut()).unwrap();

        let tp = rlra_lapack::tournament_qrcp(&a, k).unwrap();
        let e_tp = tp.error_spectral(&a).unwrap();
        let qp3 = rlra_lapack::qp3_blocked(&a, k, 8).unwrap();
        let ap = qp3.perm.apply_cols(&a).unwrap();
        let e_qp3 = rlra_matrix::norms::spectral_norm_mat(
            &rlra_matrix::ops::sub(&ap, &qp3.reconstruct()).unwrap(),
        );
        prop_assert!(e_tp < 10.0 * e_qp3 + 1e-12, "tournament {} vs qp3 {}", e_tp, e_qp3);
    }

    #[test]
    fn mixed_cholqr_always_at_least_as_orthogonal(
        m in 20usize..60,
        n in 2usize..6,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = gaussian_mat(m, n, &mut rng);
        let (qm, rm) = rlra_lapack::cholqr_mixed(&a).unwrap();
        prop_assert!(orthogonality_error(&qm) < 1e-12);
        prop_assert!(reconstructs(&qm, &rm, &a, 1e-10));
    }
}
