//! Communication-avoiding rank-revealing QRCP via **tournament
//! pivoting** (Demmel–Grigori–Gu–Xiang, the paper's reference \[4\] and a
//! planned comparison in its §11).
//!
//! Standard QP3 synchronizes on every pivot. Tournament pivoting instead
//! selects all `k` pivots with a single reduction tree:
//!
//! 1. partition the columns into blocks of `2k`,
//! 2. run a local truncated QRCP in each block and keep its `k` winners,
//! 3. pair up winners and repeat until one block remains — its QRCP
//!    ranking is the global pivot set,
//! 4. QR-factor the `k` selected columns and form `R = Qᵀ·A·P`.
//!
//! The pivots are not identical to QP3's, but the rank-revealing quality
//! loss is bounded (a factor that grows mildly with the tree depth), and
//! the entire selection costs one pass over `A` plus `O(log(n/k))` small
//! factorizations — no per-column synchronization.

use crate::householder::form_q;
use crate::qrcp::qrcp_column;
use rlra_blas::{gemm, Trans};
use rlra_matrix::{ColPerm, Mat, MatrixError, Result};

/// Result of a tournament-pivoted rank-`k` factorization `A·P ≈ Q·R`.
#[derive(Debug, Clone)]
pub struct CaQrcp {
    /// Orthonormal factor (`m × k`).
    pub q: Mat,
    /// Upper-trapezoidal factor (`k × n`), columns in pivot order.
    pub r: Mat,
    /// Column permutation (selected pivots first, in tournament order).
    pub perm: ColPerm,
    /// Number of tournament rounds (tree depth).
    pub rounds: usize,
}

/// Selects `k` pivot columns of `a` by tournament pivoting and returns
/// the rank-`k` factorization.
///
/// # Errors
///
/// Returns [`MatrixError::InvalidParameter`] if `k == 0` or
/// `k > min(m, n)`.
pub fn tournament_qrcp(a: &Mat, k: usize) -> Result<CaQrcp> {
    let (m, n) = a.shape();
    if k == 0 || k > m.min(n) {
        return Err(MatrixError::InvalidParameter {
            name: "k",
            message: format!("k = {k} must be in 1..=min(m, n) = {}", m.min(n)),
        });
    }
    // --- Tournament: candidate column indices, reduced in rounds ----------
    let mut candidates: Vec<usize> = (0..n).collect();
    let mut rounds = 0usize;
    while candidates.len() > 2 * k {
        let mut winners = Vec::with_capacity(candidates.len() / 2 + k);
        for chunk in candidates.chunks(2 * k) {
            if chunk.len() <= k {
                winners.extend_from_slice(chunk);
                continue;
            }
            let block = gather_cols(a, chunk);
            let kk = k.min(block.rows()).min(block.cols());
            let res = qrcp_column(&block, kk)?;
            for &local in &res.perm.as_slice()[..kk] {
                winners.push(chunk[local]);
            }
        }
        candidates = winners;
        rounds += 1;
    }
    // Final ranking of the surviving candidates.
    let block = gather_cols(a, &candidates);
    let kk = k.min(block.cols());
    let final_res = qrcp_column(&block, kk)?;
    let selected: Vec<usize> = final_res.perm.as_slice()[..kk]
        .iter()
        .map(|&local| candidates[local])
        .collect();

    // --- Build the permutation: selected first, the rest in order ---------
    let mut in_selected = vec![false; n];
    for &j in &selected {
        in_selected[j] = true;
    }
    let mut perm_vec = selected.clone();
    perm_vec.extend((0..n).filter(|&j| !in_selected[j]));
    let perm = ColPerm::from_vec(perm_vec)?;

    // --- Factor: Q from the selected columns, R = Qᵀ·A·P -------------------
    let ap1k = gather_cols(a, &selected);
    let q = match crate::cholqr::cholqr2(&ap1k) {
        Ok((q, _)) => q,
        Err(_) => form_q(&ap1k),
    };
    let ap = perm.apply_cols(a)?;
    let mut r = Mat::zeros(k, n);
    gemm(
        1.0,
        q.as_ref(),
        Trans::Yes,
        ap.as_ref(),
        Trans::No,
        0.0,
        r.as_mut(),
    )?;
    Ok(CaQrcp { q, r, perm, rounds })
}

impl CaQrcp {
    /// Spectral-norm error `‖A·P − Q·R‖₂`.
    ///
    /// # Errors
    ///
    /// Propagates shape errors.
    pub fn error_spectral(&self, a: &Mat) -> Result<f64> {
        let ap = self.perm.apply_cols(a)?;
        let mut rec = Mat::zeros(ap.rows(), ap.cols());
        gemm(
            1.0,
            self.q.as_ref(),
            Trans::No,
            self.r.as_ref(),
            Trans::No,
            0.0,
            rec.as_mut(),
        )?;
        let diff = rlra_matrix::ops::sub(&ap, &rec)?;
        Ok(rlra_matrix::norms::spectral_norm(diff.as_ref()))
    }
}

/// Gathers the listed columns of `a` into a fresh matrix.
fn gather_cols(a: &Mat, cols: &[usize]) -> Mat {
    let mut out = Mat::zeros(a.rows(), cols.len());
    for (dst, &src) in cols.iter().enumerate() {
        out.col_mut(dst).copy_from_slice(a.col(src));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::orthogonality_error;
    use crate::qrcp::qp3_blocked;
    use rlra_matrix::norms::spectral_norm_mat;
    use rlra_matrix::ops::sub;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    fn decaying(m: usize, n: usize, decay: f64, seed: u64) -> (Mat, Vec<f64>) {
        let spec: Vec<f64> = (0..n.min(m)).map(|i| decay.powi(i as i32)).collect();
        let x = crate::householder::form_q(&pseudo(m, spec.len(), seed));
        let y = crate::householder::form_q(&pseudo(n, spec.len(), seed + 1));
        let xs = Mat::from_fn(m, spec.len(), |i, j| x[(i, j)] * spec[j]);
        let mut a = Mat::zeros(m, n);
        gemm(
            1.0,
            xs.as_ref(),
            Trans::No,
            y.as_ref(),
            Trans::Yes,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        (a, spec)
    }

    #[test]
    fn factors_well_formed() {
        let (a, _) = decaying(40, 30, 0.7, 1);
        let res = tournament_qrcp(&a, 6).unwrap();
        assert_eq!(res.q.shape(), (40, 6));
        assert_eq!(res.r.shape(), (6, 30));
        assert!(orthogonality_error(&res.q) < 1e-11);
        // Permutation valid with 30 entries.
        assert_eq!(res.perm.len(), 30);
    }

    #[test]
    fn single_block_matches_qrcp_pivots() {
        // n <= 2k: no tournament rounds, the final QRCP decides alone.
        let (a, _) = decaying(30, 10, 0.5, 2);
        let k = 5;
        let tp = tournament_qrcp(&a, k).unwrap();
        assert_eq!(tp.rounds, 0);
        let qp3 = qp3_blocked(&a, k, 4).unwrap();
        assert_eq!(&tp.perm.as_slice()[..k], &qp3.perm.as_slice()[..k]);
    }

    #[test]
    fn error_competitive_with_qp3() {
        // Tournament pivots differ from QP3's, but the rank-k error must
        // stay within a small factor on a decaying spectrum.
        let (a, spec) = decaying(60, 48, 0.6, 3);
        let k = 8;
        let tp = tournament_qrcp(&a, k).unwrap();
        assert!(tp.rounds >= 1, "48 columns with k = 8 must take rounds");
        let e_tp = tp.error_spectral(&a).unwrap();
        let qp3 = qp3_blocked(&a, k, 4).unwrap();
        let ap = qp3.perm.apply_cols(&a).unwrap();
        let e_qp3 = spectral_norm_mat(&sub(&ap, &qp3.reconstruct()).unwrap());
        assert!(
            e_tp < 5.0 * e_qp3 + 1e-14,
            "tournament {e_tp:e} vs QP3 {e_qp3:e}"
        );
        assert!(e_tp < 20.0 * spec[k]);
    }

    #[test]
    fn exact_low_rank_recovered() {
        let x = pseudo(50, 3, 4);
        let y = pseudo(3, 40, 5);
        let mut a = Mat::zeros(50, 40);
        gemm(
            1.0,
            x.as_ref(),
            Trans::No,
            y.as_ref(),
            Trans::No,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        let res = tournament_qrcp(&a, 3).unwrap();
        let err = res.error_spectral(&a).unwrap();
        assert!(
            err < 1e-10 * spectral_norm_mat(&a),
            "rank-3 must be exact: {err:e}"
        );
    }

    #[test]
    fn dominant_column_always_selected() {
        let mut a = pseudo(20, 33, 6);
        for x in a.col_mut(17) {
            *x *= 1000.0;
        }
        let res = tournament_qrcp(&a, 4).unwrap();
        assert!(
            res.perm.as_slice()[..4].contains(&17),
            "column 17 must win the tournament: {:?}",
            &res.perm.as_slice()[..4]
        );
    }

    #[test]
    fn many_rounds_deep_tree() {
        let (a, _) = decaying(30, 200, 0.8, 7);
        let res = tournament_qrcp(&a, 4).unwrap();
        assert!(
            res.rounds >= 3,
            "200 cols / 8 per block needs a deep tree, got {}",
            res.rounds
        );
        assert!(orthogonality_error(&res.q) < 1e-11);
    }

    #[test]
    fn invalid_k_rejected() {
        let a = Mat::zeros(5, 5);
        assert!(tournament_qrcp(&a, 0).is_err());
        assert!(tournament_qrcp(&a, 6).is_err());
    }
}
