//! Mixed-precision CholQR (the paper's reference \[23\], listed in §11 as
//! a stabilization direction under study).
//!
//! Plain CholQR forms `G = BᵀB`, which squares the condition number: for
//! `κ(B) ≳ 10⁸` the Gram matrix is numerically indefinite in f64 and the
//! Cholesky factorization breaks down. Accumulating `G` **and** running
//! the Cholesky in doubled precision ([`crate::dd`]) defers the squaring
//! to ~10¹⁶, restoring `O(ε·κ(B))` orthogonality — one pass of
//! mixed-precision CholQR is as robust as two passes of the plain
//! algorithm, for ~2× the Gram-stage flops.

use crate::dd::{dd_dot, Dd};
use rlra_blas::{trsm, Diag, Side, Trans, UpLo};
use rlra_matrix::{Mat, MatrixError, Result};

/// Doubled-precision Cholesky of a double-double matrix stored row-major
/// in `g` (`n × n`, upper triangle referenced). Returns the f64-rounded
/// upper-triangular factor.
fn cholesky_upper_dd(g: &[Dd], n: usize) -> Result<Mat> {
    let at = |i: usize, j: usize| g[i * n + j];
    let mut r = vec![Dd::ZERO; n * n];
    let rd = |r: &[Dd], i: usize, j: usize| r[i * n + j];
    for j in 0..n {
        for i in 0..j {
            let mut s = at(i, j);
            for k in 0..i {
                s = s.sub(rd(&r, k, i).mul(rd(&r, k, j)));
            }
            let v = s.div(rd(&r, i, i));
            r[i * n + j] = v;
        }
        let mut d = at(j, j);
        for k in 0..j {
            let rkj = rd(&r, k, j);
            d = d.sub(rkj.mul(rkj));
        }
        // Relative breakdown check: doubled-precision roundoff leaves
        // O(2^-104) noise where exact arithmetic would give zero, so an
        // exactly dependent column shows up as a pivot at the dd noise
        // floor rather than a clean non-positive value.
        let dd_noise = 16.0 * n as f64 * 2f64.powi(-104) * at(j, j).hi.abs();
        if d.hi <= dd_noise || !d.hi.is_finite() {
            return Err(MatrixError::NotPositiveDefinite {
                pivot: j,
                value: d.hi,
            });
        }
        r[j * n + j] = d.sqrt();
    }
    Ok(Mat::from_fn(n, n, |i, j| {
        if i <= j {
            r[i * n + j].to_f64()
        } else {
            0.0
        }
    }))
}

/// Mixed-precision CholQR of a tall-skinny `B` (`m × n`, `m ≥ n`):
/// the Gram matrix and its Cholesky run in doubled precision, the
/// triangular solve in f64. Returns `(Q, R)` with `Q·R = B`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] for wide inputs and
/// [`MatrixError::NotPositiveDefinite`] when even doubled precision
/// cannot see a positive-definite Gram matrix (κ(B) ≳ 10¹⁶).
pub fn cholqr_mixed(b: &Mat) -> Result<(Mat, Mat)> {
    let (m, n) = b.shape();
    if m < n {
        return Err(MatrixError::DimensionMismatch {
            op: "cholqr_mixed",
            expected: "m >= n (tall-skinny)".into(),
            found: format!("{m}x{n}"),
        });
    }
    // Doubled-precision Gram matrix (upper triangle + mirror).
    let mut g = vec![Dd::ZERO; n * n];
    for j in 0..n {
        for i in 0..=j {
            let v = dd_dot(b.col(i), b.col(j));
            g[i * n + j] = v;
            g[j * n + i] = v;
        }
    }
    let r = cholesky_upper_dd(&g, n)?;
    let mut q = b.clone();
    trsm(
        Side::Right,
        UpLo::Upper,
        Trans::No,
        Diag::NonUnit,
        1.0,
        r.as_ref(),
        q.as_mut(),
    )?;
    Ok((q, r))
}

/// Mixed-precision CholQR of a short-wide `B` (`ℓ × n`, `ℓ ≤ n`): the LQ
/// adaptation used for the sampled matrices. Returns `(Q, R)` with
/// `RᵀQ = B` and orthonormal rows in `Q`.
///
/// # Errors
///
/// As for [`cholqr_mixed`].
pub fn cholqr_rows_mixed(b: &Mat) -> Result<(Mat, Mat)> {
    let (l, n) = b.shape();
    if l > n {
        return Err(MatrixError::DimensionMismatch {
            op: "cholqr_rows_mixed",
            expected: "l <= n (short-wide)".into(),
            found: format!("{l}x{n}"),
        });
    }
    // Row Gram matrix in doubled precision. Rows are strided; gather once.
    let rows: Vec<Vec<f64>> = (0..l)
        .map(|i| (0..n).map(|j| b[(i, j)]).collect())
        .collect();
    let mut g = vec![Dd::ZERO; l * l];
    for j in 0..l {
        for i in 0..=j {
            let v = dd_dot(&rows[i], &rows[j]);
            g[i * l + j] = v;
            g[j * l + i] = v;
        }
    }
    let r = cholesky_upper_dd(&g, l)?;
    let mut q = b.clone();
    trsm(
        Side::Left,
        UpLo::Upper,
        Trans::Yes,
        Diag::NonUnit,
        1.0,
        r.as_ref(),
        q.as_mut(),
    )?;
    Ok((q, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::{form_q, orthogonality_error};
    use rlra_blas::naive::gemm_ref;
    use rlra_matrix::ops::max_abs_diff;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    /// A = Q0 diag(1, 10^-g, 10^-2g, ...) V^T — mixed directions so the
    /// conditioning is invisible to column scaling.
    fn graded(m: usize, n: usize, decade_step: i32, seed: u64) -> Mat {
        let q0 = form_q(&pseudo(m, n, seed));
        let v = form_q(&pseudo(n, n, seed + 1));
        let scaled = Mat::from_fn(m, n, |i, j| {
            q0[(i, j)] * 10f64.powi(-decade_step * j as i32)
        });
        let mut a = Mat::zeros(m, n);
        rlra_blas::gemm(
            1.0,
            scaled.as_ref(),
            Trans::No,
            v.as_ref(),
            Trans::Yes,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        a
    }

    #[test]
    fn well_conditioned_matches_plain_cholqr() {
        let b = pseudo(50, 8, 1);
        let (qm, rm) = cholqr_mixed(&b).unwrap();
        let (qp, rp) = crate::cholqr::cholqr(&b).unwrap();
        assert!(max_abs_diff(&rm, &rp).unwrap() < 1e-12);
        assert!(max_abs_diff(&qm, &qp).unwrap() < 1e-12);
    }

    #[test]
    fn survives_where_plain_cholqr_breaks() {
        // kappa ~ 1e10: Gram kappa ~ 1e20 in f64 -> breakdown; the
        // doubled-precision Gram still sees it positive definite.
        let a = graded(60, 6, 2, 2);
        let plain_fails = crate::cholqr::cholqr(&a).is_err();
        let plain_bad = plain_fails || {
            let (q, _) = crate::cholqr::cholqr(&a).unwrap();
            orthogonality_error(&q) > 1e-6
        };
        assert!(plain_bad, "plain CholQR should be in trouble at kappa 1e10");
        let (q, r) = cholqr_mixed(&a).unwrap();
        // O(eps * kappa) orthogonality: comfortably below 1e-4.
        assert!(
            orthogonality_error(&q) < 1e-4,
            "mixed orth {}",
            orthogonality_error(&q)
        );
        let rec = gemm_ref(&q, Trans::No, &r, Trans::No);
        assert!(max_abs_diff(&rec, &a).unwrap() < 1e-10);
    }

    #[test]
    fn one_reorth_pass_reaches_machine_precision() {
        let a = graded(60, 6, 2, 3);
        let (q1, _) = cholqr_mixed(&a).unwrap();
        let (q2, _) = cholqr_mixed(&q1).unwrap();
        assert!(orthogonality_error(&q2) < 1e-13);
    }

    #[test]
    fn rows_variant_orthonormalizes_rows() {
        let b = pseudo(5, 40, 4);
        let (q, r) = cholqr_rows_mixed(&b).unwrap();
        assert!(orthogonality_error(&q.transpose()) < 1e-12);
        let rec = gemm_ref(&r, Trans::Yes, &q, Trans::No);
        assert!(max_abs_diff(&rec, &b).unwrap() < 1e-11);
    }

    #[test]
    fn rows_variant_survives_graded_rows() {
        let a = graded(40, 5, 2, 5).transpose(); // 5 x 40 with kappa 1e8
        let plain_bad = match crate::cholqr::cholqr_rows(&a) {
            Err(_) => true,
            Ok((q, _)) => orthogonality_error(&q.transpose()) > 1e-6,
        };
        assert!(plain_bad);
        let (q, _) = cholqr_rows_mixed(&a).unwrap();
        assert!(orthogonality_error(&q.transpose()) < 1e-4);
    }

    #[test]
    fn breakdown_beyond_doubled_precision() {
        // Exactly repeated column: no precision saves a singular Gram.
        let mut b = pseudo(20, 4, 6);
        let c0 = b.col(0).to_vec();
        b.col_mut(3).copy_from_slice(&c0);
        assert!(matches!(
            cholqr_mixed(&b),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn shape_validation() {
        assert!(cholqr_mixed(&Mat::zeros(3, 5)).is_err());
        assert!(cholqr_rows_mixed(&Mat::zeros(5, 3)).is_err());
    }
}
