//! Classical and Modified Gram–Schmidt, and the block orthogonalization
//! (`BOrth`) used by the paper's power iteration (Figure 2a, lines 4/9).
//!
//! CGS orthogonalizes each new column against all previous ones at once
//! (BLAS-2: one GEMV pair per column), MGS one previous column at a time
//! (BLAS-1 dots/axpys). Both are therefore slower than BLAS-3 CholQR on a
//! GPU — the ordering CholQR > CGS > HHQR > MGS measured in the paper's
//! Figure 7 falls directly out of these kernel classes.

use rlra_blas::{gemm, gemv, Trans};
use rlra_matrix::{Mat, MatrixError, Result};

/// Breakdown threshold for Gram–Schmidt: a column whose orthogonalized
/// remainder is below roundoff relative to its input norm is treated as
/// linearly dependent.
fn breakdown_tol(m: usize, input_norm: f64) -> f64 {
    (m as f64).sqrt() * f64::EPSILON * input_norm * 8.0
}

/// Classical Gram–Schmidt QR of `a` (`m × n`, `m ≥ n` assumed for a full
/// rank factor): returns `(Q, R)` with `Q` having orthonormal columns.
///
/// Each column is orthogonalized against **all** previous columns in one
/// matrix-vector pair (`r = Qᵀa_j`, `a_j ← a_j − Q r`), i.e. BLAS-2.
///
/// # Errors
///
/// Returns [`MatrixError::SingularDiagonal`] if a column collapses to zero
/// (exact linear dependence).
pub fn cgs(a: &Mat) -> Result<(Mat, Mat)> {
    let (m, n) = a.shape();
    let mut q = Mat::zeros(m, n);
    let mut r = Mat::zeros(n, n);
    for j in 0..n {
        let mut v = a.col(j).to_vec();
        let input_norm = rlra_blas::nrm2(&v);
        if j > 0 {
            let qj = q.submatrix(0, 0, m, j);
            let mut coeffs = vec![0.0f64; j];
            gemv(1.0, qj.as_ref(), Trans::Yes, &v, 0.0, &mut coeffs)?;
            gemv(-1.0, qj.as_ref(), Trans::No, &coeffs, 1.0, &mut v)?;
            for (i, &c) in coeffs.iter().enumerate() {
                r[(i, j)] = c;
            }
        }
        let norm = rlra_blas::nrm2(&v);
        if norm <= breakdown_tol(m, input_norm) {
            return Err(MatrixError::SingularDiagonal { index: j });
        }
        r[(j, j)] = norm;
        for x in &mut v {
            *x /= norm;
        }
        q.col_mut(j).copy_from_slice(&v);
    }
    Ok((q, r))
}

/// Modified Gram–Schmidt QR of `a`: returns `(Q, R)`.
///
/// Each column is orthogonalized against previous columns **one at a
/// time** (a dot and an axpy per previous column, i.e. BLAS-1), which is
/// more stable than CGS but even more latency-bound.
///
/// # Errors
///
/// Returns [`MatrixError::SingularDiagonal`] if a column collapses to zero.
pub fn mgs(a: &Mat) -> Result<(Mat, Mat)> {
    let (m, n) = a.shape();
    let mut q = Mat::zeros(m, n);
    let mut r = Mat::zeros(n, n);
    for j in 0..n {
        let mut v = a.col(j).to_vec();
        let input_norm = rlra_blas::nrm2(&v);
        for i in 0..j {
            let qi = q.col(i);
            let rij = rlra_blas::dot(qi, &v);
            r[(i, j)] = rij;
            rlra_blas::axpy(-rij, qi, &mut v);
        }
        let norm = rlra_blas::nrm2(&v);
        if norm <= breakdown_tol(m, input_norm) {
            return Err(MatrixError::SingularDiagonal { index: j });
        }
        r[(j, j)] = norm;
        for x in &mut v {
            *x /= norm;
        }
        q.col_mut(j).copy_from_slice(&v);
        let _ = m;
    }
    Ok((q, r))
}

/// Block orthogonalization of columns (`BOrth`, classical block
/// Gram–Schmidt): makes the columns of `w` orthogonal to the orthonormal
/// columns of `v` via `W ← W − V·(VᵀW)`, returning the coefficient block
/// `C = VᵀW`. With `reorth = true` a second pass is performed (the
/// "twice is enough" rule), and the coefficient blocks are summed.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `v.rows() != w.rows()`.
pub fn block_orth_cols(v: &Mat, w: &mut Mat, reorth: bool) -> Result<Mat> {
    if v.rows() != w.rows() {
        return Err(MatrixError::DimensionMismatch {
            op: "block_orth_cols",
            expected: format!("w.rows() == {}", v.rows()),
            found: format!("w.rows() == {}", w.rows()),
        });
    }
    let passes = if reorth { 2 } else { 1 };
    let mut total = Mat::zeros(v.cols(), w.cols());
    for _ in 0..passes {
        if v.cols() == 0 || w.cols() == 0 {
            break;
        }
        let mut c = Mat::zeros(v.cols(), w.cols());
        gemm(
            1.0,
            v.as_ref(),
            Trans::Yes,
            w.as_ref(),
            Trans::No,
            0.0,
            c.as_mut(),
        )?;
        gemm(
            -1.0,
            v.as_ref(),
            Trans::No,
            c.as_ref(),
            Trans::No,
            1.0,
            w.as_mut(),
        )?;
        rlra_matrix::ops::axpy_mat(1.0, &c, &mut total)?;
    }
    Ok(total)
}

/// Block orthogonalization of **rows** — the orientation the paper's
/// power iteration actually uses, since the sampled matrices `B` (ℓ×n)
/// and `C` (ℓ×m) are short-wide with orthonormal rows: makes the rows of
/// `w` orthogonal to the orthonormal rows of `v` via `W ← W − (WVᵀ)·V`.
/// Returns the coefficient block `C = WVᵀ` (summed over passes when
/// `reorth = true`).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `v.cols() != w.cols()`.
pub fn block_orth_rows(v: &Mat, w: &mut Mat, reorth: bool) -> Result<Mat> {
    if v.cols() != w.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "block_orth_rows",
            expected: format!("w.cols() == {}", v.cols()),
            found: format!("w.cols() == {}", w.cols()),
        });
    }
    let passes = if reorth { 2 } else { 1 };
    let mut total = Mat::zeros(w.rows(), v.rows());
    for _ in 0..passes {
        if v.rows() == 0 || w.rows() == 0 {
            break;
        }
        let mut c = Mat::zeros(w.rows(), v.rows());
        gemm(
            1.0,
            w.as_ref(),
            Trans::No,
            v.as_ref(),
            Trans::Yes,
            0.0,
            c.as_mut(),
        )?;
        gemm(
            -1.0,
            c.as_ref(),
            Trans::No,
            v.as_ref(),
            Trans::No,
            1.0,
            w.as_mut(),
        )?;
        rlra_matrix::ops::axpy_mat(1.0, &c, &mut total)?;
    }
    Ok(total)
}

/// Convenience alias for the column-oriented [`block_orth_cols`] without
/// reorthogonalization.
pub fn block_orth(v: &Mat, w: &mut Mat) -> Result<Mat> {
    block_orth_cols(v, w, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::orthogonality_error;
    use rlra_blas::naive::gemm_ref;
    use rlra_matrix::ops::max_abs_diff;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    fn check_qr_scheme(f: impl Fn(&Mat) -> Result<(Mat, Mat)>, tol: f64) {
        let a = pseudo(30, 8, 1);
        let (q, r) = f(&a).unwrap();
        assert!(orthogonality_error(&q) < tol);
        let qr = gemm_ref(&q, Trans::No, &r, Trans::No);
        assert!(max_abs_diff(&qr, &a).unwrap() < tol);
        // R upper triangular with positive diagonal.
        for j in 0..8 {
            assert!(r[(j, j)] > 0.0);
            for i in j + 1..8 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cgs_factorizes() {
        check_qr_scheme(cgs, 1e-10);
    }

    #[test]
    fn mgs_factorizes() {
        check_qr_scheme(mgs, 1e-10);
    }

    #[test]
    fn mgs_more_stable_than_cgs_on_graded() {
        // Nearly dependent columns: MGS orthogonality degrades like κ·ε,
        // CGS like κ²·ε.
        let m = 40;
        let base = pseudo(m, 1, 2);
        let mut a = Mat::zeros(m, 3);
        for j in 0..3 {
            let noise = pseudo(m, 1, 3 + j as u64);
            for i in 0..m {
                a[(i, j)] = base[(i, 0)] + 1e-7 * noise[(i, 0)];
            }
        }
        let (qc, _) = cgs(&a).unwrap();
        let (qm, _) = mgs(&a).unwrap();
        let ec = orthogonality_error(&qc);
        let em = orthogonality_error(&qm);
        assert!(
            em <= ec * 1.5 + 1e-15,
            "MGS ({em:e}) should not be much worse than CGS ({ec:e})"
        );
    }

    #[test]
    fn singular_column_detected() {
        let mut a = pseudo(10, 3, 4);
        let c0 = a.col(0).to_vec();
        a.col_mut(1).copy_from_slice(&c0);
        assert!(cgs(&a).is_err());
        assert!(mgs(&a).is_err());
    }

    #[test]
    fn block_orth_cols_orthogonalizes() {
        let v = crate::householder::form_q(&pseudo(40, 5, 5));
        let mut w = pseudo(40, 3, 6);
        let w0 = w.clone();
        let c = block_orth_cols(&v, &mut w, false).unwrap();
        // V^T W ≈ 0 afterwards.
        let vtw = gemm_ref(&v, Trans::Yes, &w, Trans::No);
        assert!(rlra_matrix::norms::max_abs(vtw.as_ref()) < 1e-12);
        // Reconstruction: W0 = V C + W.
        let mut rec = gemm_ref(&v, Trans::No, &c, Trans::No);
        rlra_matrix::ops::axpy_mat(1.0, &w, &mut rec).unwrap();
        assert!(max_abs_diff(&rec, &w0).unwrap() < 1e-12);
    }

    #[test]
    fn block_orth_cols_reorth_tightens() {
        let v = crate::householder::form_q(&pseudo(50, 8, 7));
        // W nearly inside span(V): stresses a single pass.
        let coeff = pseudo(8, 2, 8);
        let mut w = gemm_ref(&v, Trans::No, &coeff, Trans::No);
        let tiny = pseudo(50, 2, 9);
        rlra_matrix::ops::axpy_mat(1e-9, &tiny, &mut w).unwrap();
        let mut w2 = w.clone();
        block_orth_cols(&v, &mut w, false).unwrap();
        block_orth_cols(&v, &mut w2, true).unwrap();
        let e1 = rlra_matrix::norms::max_abs(gemm_ref(&v, Trans::Yes, &w, Trans::No).as_ref())
            / rlra_matrix::norms::max_abs(w.as_ref()).max(1e-300);
        let e2 = rlra_matrix::norms::max_abs(gemm_ref(&v, Trans::Yes, &w2, Trans::No).as_ref())
            / rlra_matrix::norms::max_abs(w2.as_ref()).max(1e-300);
        assert!(
            e2 <= e1 + 1e-15,
            "reorth should not be worse: {e2:e} vs {e1:e}"
        );
    }

    #[test]
    fn block_orth_rows_orthogonalizes() {
        // Row-orthonormal V from the transpose of a thin Q.
        let v = crate::householder::form_q(&pseudo(40, 4, 10)).transpose();
        let mut w = pseudo(3, 40, 11);
        let w0 = w.clone();
        let c = block_orth_rows(&v, &mut w, false).unwrap();
        let wvt = gemm_ref(&w, Trans::No, &v, Trans::Yes);
        assert!(rlra_matrix::norms::max_abs(wvt.as_ref()) < 1e-12);
        // W0 = C V + W.
        let mut rec = gemm_ref(&c, Trans::No, &v, Trans::No);
        rlra_matrix::ops::axpy_mat(1.0, &w, &mut rec).unwrap();
        assert!(max_abs_diff(&rec, &w0).unwrap() < 1e-12);
    }

    #[test]
    fn block_orth_empty_v_is_noop() {
        let v = Mat::zeros(10, 0);
        let mut w = pseudo(10, 2, 12);
        let w0 = w.clone();
        block_orth_cols(&v, &mut w, true).unwrap();
        assert_eq!(w, w0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let v = Mat::zeros(10, 2);
        let mut w = Mat::zeros(9, 2);
        assert!(block_orth_cols(&v, &mut w, false).is_err());
        let mut w = Mat::zeros(2, 9);
        assert!(block_orth_rows(&v, &mut w, false).is_err());
    }
}
