//! Golub–Kahan SVD: Householder bidiagonalization followed by
//! implicit-shift QR iteration on the bidiagonal.
//!
//! The workspace's second SVD path. The one-sided Jacobi SVD
//! ([`crate::svd`]) is simple and very accurate but costs `O(mn²)` *per
//! sweep* with many sweeps; the Golub–Kahan route pays one `O(mn²)`
//! bidiagonalization and then iterates on `O(n)` data, which is the
//! standard choice (LAPACK `gesvd`) once `n` grows past a few dozen. The
//! randomized-SVD finishing step ([`rlra-core`]'s projection SVD of the
//! `m × ℓ` projected matrix) is exactly such a case.
//!
//! [`rlra-core`]: crate

use crate::householder::{apply_reflector_left, larfg};
use crate::svd::Svd;
use rlra_matrix::{Mat, MatrixError, Result};

/// Maximum QR iterations per singular value.
const MAX_ITER_PER_VALUE: usize = 75;

/// Computes the thin SVD of `a` via Golub–Kahan bidiagonalization and
/// implicit-shift QR. Returns the same [`Svd`] type as the Jacobi path:
/// `U` (`m × r`), `σ` non-increasing, `V` (`n × r`), `r = min(m, n)`.
///
/// # Errors
///
/// Returns [`MatrixError::NoConvergence`] if the QR iteration stalls
/// (does not occur for the sizes used in this workspace).
pub fn svd_golub_kahan(a: &Mat) -> Result<Svd> {
    if a.rows() < a.cols() {
        let t = svd_golub_kahan(&a.transpose())?;
        return Ok(Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        });
    }
    let (m, n) = a.shape();
    if n == 0 {
        return Ok(Svd {
            u: Mat::zeros(m, 0),
            sigma: vec![],
            v: Mat::zeros(0, 0),
        });
    }

    // --- Phase 1: bidiagonalization A = U_b · B · V_bᵀ ----------------------
    let (mut d, mut e, u_b, v_b) = bidiagonalize(a);

    // --- Phase 2: implicit-shift QR on the bidiagonal -----------------------
    // Rotations are accumulated directly into the thin factors.
    let mut u = u_b; // m × n
    let mut v = v_b; // n × n
    qr_iterate(&mut d, &mut e, &mut u, &mut v)?;

    // --- Phase 3: signs and ordering -----------------------------------------
    for (j, dj) in d.iter_mut().enumerate() {
        if *dj < 0.0 {
            *dj = -*dj;
            for x in v.col_mut(j) {
                *x = -*x;
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).expect("singular values are finite"));
    let mut uu = Mat::zeros(m, n);
    let mut vv = Mat::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (dst, &src) in order.iter().enumerate() {
        sigma.push(d[src]);
        uu.col_mut(dst).copy_from_slice(u.col(src));
        vv.col_mut(dst).copy_from_slice(v.col(src));
    }
    Ok(Svd {
        u: uu,
        sigma,
        v: vv,
    })
}

/// Householder bidiagonalization: returns the diagonal `d`, the
/// superdiagonal `e`, and the explicitly formed thin factors
/// `U_b` (`m × n`) and `V_b` (`n × n`) with `A = U_b·B·V_bᵀ`.
fn bidiagonalize(a: &Mat) -> (Vec<f64>, Vec<f64>, Mat, Mat) {
    let (m, n) = a.shape();
    let mut work = a.clone();
    // Left reflectors stored in columns below the diagonal, right
    // reflectors in rows right of the superdiagonal.
    let mut tau_l = vec![0.0f64; n];
    let mut tau_r = vec![0.0f64; n.saturating_sub(2)];
    for j in 0..n {
        // Left reflector annihilates work[j+1.., j].
        let (beta, tau) = {
            let col = work.col_mut(j);
            let (head, tail) = col[j..].split_at_mut(1);
            larfg(head[0], tail)
        };
        work[(j, j)] = beta;
        tau_l[j] = tau;
        if tau != 0.0 && j + 1 < n {
            let (vcols, rest) = work.as_mut().split_at_col(j + 1);
            let v_tail = &vcols.col(j)[j + 1..];
            let mut rest = rest;
            let trailing = rest.submatrix_mut(j, 0, m - j, n - j - 1);
            apply_reflector_left(tau, v_tail, trailing);
        }
        // Right reflector annihilates work[j, j+2..].
        if j + 2 < n {
            let (beta_r, tau_row) = {
                // Gather row j, columns j+1.. into a temp.
                let mut row: Vec<f64> = (j + 1..n).map(|c| work[(j, c)]).collect();
                let (head, tail) = row.split_at_mut(1);
                let (b, t) = larfg(head[0], tail);
                // Write the reflector tail back into the row storage.
                work[(j, j + 1)] = b;
                for (idx, &val) in tail.iter().enumerate() {
                    work[(j, j + 2 + idx)] = val;
                }
                (b, t)
            };
            let _ = beta_r;
            tau_r[j] = tau_row;
            if tau_row != 0.0 {
                // Apply from the right to rows j+1..m: for each row i,
                // r ← r − τ (r·v) vᵀ with v = [1, work[j, j+2..]].
                let vrow: Vec<f64> = (j + 2..n).map(|c| work[(j, c)]).collect();
                for i in j + 1..m {
                    let mut w = work[(i, j + 1)];
                    for (idx, &vv) in vrow.iter().enumerate() {
                        w += work[(i, j + 2 + idx)] * vv;
                    }
                    let tw = tau_row * w;
                    work[(i, j + 1)] -= tw;
                    for (idx, &vv) in vrow.iter().enumerate() {
                        work[(i, j + 2 + idx)] -= tw * vv;
                    }
                }
            }
        }
    }
    let d: Vec<f64> = (0..n).map(|j| work[(j, j)]).collect();
    let e: Vec<f64> = (0..n.saturating_sub(1)).map(|j| work[(j, j + 1)]).collect();

    // Form U_b: apply left reflectors to the leading n columns of I_m,
    // in reverse order.
    let mut u = Mat::zeros(m, n);
    for j in 0..n {
        u[(j, j)] = 1.0;
    }
    for j in (0..n).rev() {
        let tau = tau_l[j];
        if tau == 0.0 {
            continue;
        }
        let v_tail: Vec<f64> = (j + 1..m).map(|r| work[(r, j)]).collect();
        let mut view = u.as_mut();
        let sub = view.submatrix_mut(j, 0, m - j, n);
        apply_reflector_left(tau, &v_tail, sub);
    }
    // Form V_b: apply right reflectors (as left reflectors on Vᵀ — or
    // equivalently left-apply to I_n rows j+1..) in reverse order.
    let mut v = Mat::identity(n);
    for j in (0..n.saturating_sub(2)).rev() {
        let tau = tau_r[j];
        if tau == 0.0 {
            continue;
        }
        let v_tail: Vec<f64> = (j + 2..n).map(|c| work[(j, c)]).collect();
        let mut view = v.as_mut();
        let sub = view.submatrix_mut(j + 1, 0, n - j - 1, n);
        apply_reflector_left(tau, &v_tail, sub);
    }
    (d, e, u, v)
}

/// Givens rotation `(c, s)` with `c·a + s·b = r`, `−s·a + c·b = 0`.
fn givens(a: f64, b: f64) -> (f64, f64, f64) {
    if b == 0.0 {
        (1.0, 0.0, a)
    } else if a == 0.0 {
        (0.0, 1.0, b)
    } else {
        let r = a.hypot(b);
        (a / r, b / r, r)
    }
}

/// Applies the rotation to columns `j1`, `j2` of `x`:
/// `[x_{j1}, x_{j2}] ← [c·x_{j1} + s·x_{j2}, −s·x_{j1} + c·x_{j2}]`.
fn rot_cols(x: &mut Mat, j1: usize, j2: usize, c: f64, s: f64) {
    debug_assert!(j1 < j2);
    let (left, mut right) = x.as_mut().split_at_col(j2);
    let mut left = left;
    let a = left.col_mut(j1);
    let b = right.col_mut(0);
    for i in 0..a.len() {
        let xa = a[i];
        let xb = b[i];
        a[i] = c * xa + s * xb;
        b[i] = -s * xa + c * xb;
    }
}

/// Implicit-shift QR on the bidiagonal `(d, e)`, accumulating left
/// rotations into `u` and right rotations into `v`.
fn qr_iterate(d: &mut [f64], e: &mut [f64], u: &mut Mat, v: &mut Mat) -> Result<()> {
    let n = d.len();
    if n <= 1 {
        return Ok(());
    }
    let eps = f64::EPSILON;
    let mut iters_left = MAX_ITER_PER_VALUE * n;
    let mut hi = n - 1;
    while hi > 0 {
        // Deflate converged superdiagonals.
        let mut deflated = false;
        for i in (0..hi).rev() {
            if e[i].abs() <= eps * (d[i].abs() + d[i + 1].abs()) {
                e[i] = 0.0;
                if i == hi - 1 {
                    hi -= 1;
                    deflated = true;
                    break;
                }
            }
        }
        if deflated {
            continue;
        }
        if hi == 0 {
            break;
        }
        // Active block [lo..=hi]: the largest block ending at hi with
        // nonzero superdiagonals.
        let mut lo = hi;
        while lo > 0 && e[lo - 1] != 0.0 {
            lo -= 1;
        }
        // Zero diagonal inside the block: rotate the offending row away
        // (Golub–Van Loan §8.6.1 remark). Rotating against the next
        // column keeps the bidiagonal structure with e[i] annihilated.
        let mut zeroed = false;
        for i in lo..hi {
            if d[i] == 0.0 && e[i] != 0.0 {
                // Chase e[i] to the right with left rotations.
                let mut f = e[i];
                e[i] = 0.0;
                for j in i + 1..=hi {
                    let (c, s, r) = givens(d[j], f);
                    d[j] = r;
                    // Left rotation mixes rows i and j of B, i.e. columns
                    // i and j of U — with the annihilated part entering
                    // row i.
                    rot_cols(u, i.min(j), i.max(j), c, -s);
                    if j < hi {
                        f = -s * e[j];
                        e[j] *= c;
                    }
                }
                zeroed = true;
                break;
            }
        }
        if zeroed {
            continue;
        }

        if iters_left == 0 {
            return Err(MatrixError::NoConvergence {
                op: "svd_golub_kahan",
                iterations: MAX_ITER_PER_VALUE * n,
            });
        }
        iters_left -= 1;

        // Wilkinson shift from the trailing 2×2 of BᵀB.
        let dm = d[hi - 1];
        let dn = d[hi];
        let em = e[hi - 1];
        let e_prev = if hi >= 2 { e[hi - 2] } else { 0.0 };
        let t11 = dm * dm + e_prev * e_prev;
        let t12 = dm * em;
        let t22 = dn * dn + em * em;
        let delta = (t11 - t22) / 2.0;
        let mu = if t12 == 0.0 {
            t22
        } else {
            t22 - t12 * t12 / (delta + delta.signum() * (delta * delta + t12 * t12).sqrt())
        };

        // Implicit QR sweep: chase the bulge from lo to hi.
        let mut y = d[lo] * d[lo] - mu;
        let mut z = d[lo] * e[lo];
        for k in lo..hi {
            // Right rotation on columns (k, k+1).
            let (c, s, _) = givens(y, z);
            if k > lo {
                e[k - 1] = y.hypot(z);
            }
            let dk = d[k];
            let ek = e[k];
            let dk1 = d[k + 1];
            d[k] = c * dk + s * ek;
            e[k] = -s * dk + c * ek;
            let bulge = s * dk1;
            let dk1_new = c * dk1;
            rot_cols(v, k, k + 1, c, s);
            // Left rotation on rows (k, k+1) to restore bidiagonal.
            let (c2, s2, r2) = givens(d[k], bulge);
            d[k] = r2;
            let ek_cur = e[k];
            e[k] = c2 * ek_cur + s2 * dk1_new;
            d[k + 1] = -s2 * ek_cur + c2 * dk1_new;
            rot_cols(u, k, k + 1, c2, s2);
            if k + 1 < hi {
                let ek1 = e[k + 1];
                y = e[k];
                z = s2 * ek1;
                e[k + 1] = c2 * ek1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::{form_q, orthogonality_error};
    use rlra_matrix::ops::max_abs_diff;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    fn with_spectrum(m: usize, n: usize, sigma: &[f64], seed: u64) -> Mat {
        let u = form_q(&pseudo(m, n, seed));
        let v = form_q(&pseudo(n, n, seed + 1));
        let us = Mat::from_fn(m, n, |i, j| u[(i, j)] * sigma[j]);
        let mut a = Mat::zeros(m, n);
        rlra_blas::gemm(
            1.0,
            us.as_ref(),
            rlra_blas::Trans::No,
            v.as_ref(),
            rlra_blas::Trans::Yes,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        a
    }

    fn check_full(a: &Mat, tol: f64) {
        let svd = svd_golub_kahan(a).unwrap();
        assert!(
            orthogonality_error(&svd.u) < tol,
            "U orth {}",
            orthogonality_error(&svd.u)
        );
        assert!(
            orthogonality_error(&svd.v) < tol,
            "V orth {}",
            orthogonality_error(&svd.v)
        );
        for w in svd.sigma.windows(2) {
            assert!(w[0] >= w[1] - 1e-14, "sigma not sorted: {:?}", svd.sigma);
        }
        for &s in &svd.sigma {
            assert!(s >= 0.0);
        }
        let rec = svd.reconstruct();
        let scale = rlra_matrix::norms::max_abs(a.as_ref()).max(1.0);
        assert!(
            max_abs_diff(&rec, a).unwrap() < tol * scale * 100.0,
            "reconstruction off by {}",
            max_abs_diff(&rec, a).unwrap()
        );
    }

    #[test]
    fn random_tall() {
        check_full(&pseudo(30, 12, 1), 1e-12);
    }

    #[test]
    fn random_square() {
        check_full(&pseudo(20, 20, 2), 1e-12);
    }

    #[test]
    fn random_wide() {
        check_full(&pseudo(8, 25, 3), 1e-12);
    }

    #[test]
    fn matches_jacobi_singular_values() {
        let a = pseudo(25, 15, 4);
        let gk = svd_golub_kahan(&a).unwrap();
        let jac = crate::svd::svd_jacobi(&a).unwrap();
        for (g, j) in gk.sigma.iter().zip(&jac.sigma) {
            assert!((g - j).abs() < 1e-10 * (1.0 + j), "GK {g} vs Jacobi {j}");
        }
    }

    #[test]
    fn prescribed_spectrum_recovered() {
        let sigma: Vec<f64> = (0..12).map(|i| 2f64.powi(-i)).collect();
        let a = with_spectrum(30, 12, &sigma, 5);
        let got = svd_golub_kahan(&a).unwrap().sigma;
        for (g, e) in got.iter().zip(&sigma) {
            assert!((g - e).abs() < 1e-11 * (1.0 + e), "got {g:e}, want {e:e}");
        }
    }

    #[test]
    fn wide_dynamic_range() {
        // sigma spanning 12 orders: relative accuracy of the large end,
        // absolute of the small end.
        let sigma: Vec<f64> = (0..10).map(|i| 10f64.powi(-(i + i / 3))).collect();
        let a = with_spectrum(24, 10, &sigma, 6);
        let got = svd_golub_kahan(&a).unwrap().sigma;
        for (g, e) in got.iter().zip(&sigma).take(6) {
            assert!((g - e).abs() < 1e-10 * e, "got {g:e}, want {e:e}");
        }
    }

    #[test]
    fn exactly_low_rank() {
        let x = pseudo(20, 3, 7);
        let y = pseudo(3, 14, 8);
        let mut a = Mat::zeros(20, 14);
        rlra_blas::gemm(
            1.0,
            x.as_ref(),
            rlra_blas::Trans::No,
            y.as_ref(),
            rlra_blas::Trans::No,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        let svd = svd_golub_kahan(&a).unwrap();
        assert!(svd.sigma[2] > 1e-8);
        for &s in &svd.sigma[3..] {
            assert!(s < 1e-10 * svd.sigma[0], "tail {s:e}");
        }
        check_full(&a, 1e-11);
    }

    #[test]
    fn identity_and_diagonal() {
        let svd = svd_golub_kahan(&Mat::identity(6)).unwrap();
        for &s in &svd.sigma {
            assert!((s - 1.0).abs() < 1e-14);
        }
        let d = Mat::from_diag(&[5.0, -2.0, 3.0]);
        let svd = svd_golub_kahan(&d).unwrap();
        assert!((svd.sigma[0] - 5.0).abs() < 1e-13);
        assert!((svd.sigma[1] - 3.0).abs() < 1e-13);
        assert!((svd.sigma[2] - 2.0).abs() < 1e-13);
    }

    #[test]
    fn zero_and_tiny_matrices() {
        let svd = svd_golub_kahan(&Mat::zeros(5, 3)).unwrap();
        assert!(svd.sigma.iter().all(|&s| s == 0.0));
        let svd = svd_golub_kahan(&Mat::from_diag(&[2.0])).unwrap();
        assert_eq!(svd.sigma, vec![2.0]);
        check_full(&pseudo(2, 2, 9), 1e-13);
        check_full(&pseudo(3, 1, 10), 1e-13);
    }

    #[test]
    fn faster_than_jacobi_for_larger_n() {
        // Not a wall-clock bench, just sanity that it converges on a size
        // where Jacobi needs many sweeps.
        let a = pseudo(120, 80, 11);
        check_full(&a, 1e-11);
    }
}
