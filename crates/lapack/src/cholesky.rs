//! Cholesky factorization (LAPACK `potrf`), upper-triangular variant used
//! by CholQR.

use rlra_matrix::{Mat, MatrixError, Result};

/// Computes the upper-triangular Cholesky factor `R` of a symmetric
/// positive-definite matrix `G`, such that `RᵀR = G`. Only the upper
/// triangle of `G` is read.
///
/// # Errors
///
/// Returns [`MatrixError::NotPositiveDefinite`] if a pivot is
/// non-positive, which is how CholQR detects breakdown on numerically
/// rank-deficient Gram matrices.
pub fn cholesky_upper(g: &Mat) -> Result<Mat> {
    cholesky_upper_rel_tol(g, 0.0)
}

/// [`cholesky_upper`] with a *relative cancellation guard*: a pivot that
/// the elimination cancels to below `64·n·ε` of its own diagonal entry
/// `g[j,j]` is round-off, not data — the column is numerically in the
/// span of its predecessors even if the pivot happens to round positive.
///
/// The sign-only check of plain Cholesky makes CholQR breakdown detection
/// a coin flip on exactly singular Gram matrices (the true pivot is `0`,
/// the computed one is `±O(ε‖G‖)`); the relative guard makes it
/// deterministic. The criterion is local (against `g[j,j]`, not
/// `max g[i,i]`), so legitimately graded matrices — small columns that
/// stay independent — are untouched: their pivots are small but do not
/// *cancel*.
///
/// # Errors
///
/// Returns [`MatrixError::NotPositiveDefinite`] when a pivot fails the
/// guard.
pub fn cholesky_upper_guarded(g: &Mat) -> Result<Mat> {
    let n = g.rows() as f64;
    cholesky_upper_rel_tol(g, 64.0 * n * f64::EPSILON)
}

fn cholesky_upper_rel_tol(g: &Mat, rel_tol: f64) -> Result<Mat> {
    let n = g.rows();
    if g.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "cholesky_upper",
            expected: "square matrix".into(),
            found: format!("{}x{}", n, g.cols()),
        });
    }
    let mut r = Mat::zeros(n, n);
    for j in 0..n {
        // r[i, j] for i < j: (g[i, j] - sum_{k<i} r[k,i] r[k,j]) / r[i,i]
        for i in 0..j {
            let mut s = g[(i, j)];
            for k in 0..i {
                s -= r[(k, i)] * r[(k, j)];
            }
            r[(i, j)] = s / r[(i, i)];
        }
        let mut d = g[(j, j)];
        for k in 0..j {
            d -= r[(k, j)] * r[(k, j)];
        }
        if d <= rel_tol * g[(j, j)].abs() || !d.is_finite() {
            return Err(MatrixError::NotPositiveDefinite { pivot: j, value: d });
        }
        r[(j, j)] = d.sqrt();
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_blas::naive::gemm_ref;
    use rlra_blas::Trans;
    use rlra_matrix::ops::max_abs_diff;

    fn spd(n: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let b = Mat::from_fn(n, n + 2, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        });
        // B B^T + n I is comfortably SPD.
        let mut g = gemm_ref(&b, Trans::No, &b, Trans::Yes);
        for i in 0..n {
            g[(i, i)] += n as f64;
        }
        g
    }

    #[test]
    fn reconstructs_spd_matrix() {
        let g = spd(12, 1);
        let r = cholesky_upper(&g).unwrap();
        let rtr = gemm_ref(&r, Trans::Yes, &r, Trans::No);
        let d = max_abs_diff(&rtr, &g).unwrap();
        assert!(d < 1e-10, "R^T R != G: {d}");
    }

    #[test]
    fn factor_is_upper_triangular_with_positive_diag() {
        let g = spd(8, 2);
        let r = cholesky_upper(&g).unwrap();
        for j in 0..8 {
            assert!(r[(j, j)] > 0.0);
            for i in j + 1..8 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn identity_factors_to_identity() {
        let r = cholesky_upper(&Mat::identity(5)).unwrap();
        assert!(max_abs_diff(&r, &Mat::identity(5)).unwrap() < 1e-15);
    }

    #[test]
    fn rejects_indefinite() {
        let mut g = Mat::identity(3);
        g[(2, 2)] = -1.0;
        let e = cholesky_upper(&g);
        assert!(matches!(
            e,
            Err(MatrixError::NotPositiveDefinite { pivot: 2, .. })
        ));
    }

    #[test]
    fn rejects_semidefinite() {
        // Rank-1 Gram matrix of order 2.
        let g = Mat::from_row_major(2, 2, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(cholesky_upper(&g).is_err());
    }

    #[test]
    fn rejects_non_square() {
        assert!(cholesky_upper(&Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn only_upper_triangle_is_read() {
        let mut g = spd(6, 3);
        let r1 = cholesky_upper(&g).unwrap();
        // Poison the strictly lower triangle.
        for j in 0..6 {
            for i in j + 1..6 {
                g[(i, j)] = f64::NAN;
            }
        }
        let r2 = cholesky_upper(&g).unwrap();
        assert!(max_abs_diff(&r1, &r2).unwrap() == 0.0);
    }
}
