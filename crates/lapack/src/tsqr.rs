//! Communication-avoiding tall-skinny QR (**TSQR**, Demmel–Grigori–
//! Hoemmen–Langou), the orthogonalization scheme the paper lists as its
//! ongoing work for improving the stability of random sampling beyond
//! CholQR ("we are studying other orthogonalization schemes including
//! Communication-Avoiding QR \[5\]", §11).
//!
//! TSQR factors an `m × n` tall-skinny matrix by a reduction tree:
//! row blocks are QR-factored independently, the stacked `R` factors are
//! factored pairwise up the tree, and the final `R` is the root's
//! triangle. Unlike CholQR it is unconditionally stable (it never squares
//! the condition number), while still needing only one reduction — at the
//! cost of a larger flop constant and Householder-style kernels at the
//! leaves.

use crate::householder::{geqrf, orgqr, qr_factor};
use rlra_matrix::{Mat, MatrixError, Result};

/// The compact result of a TSQR factorization: enough to form `Q`
/// explicitly or reconstruct `R`.
#[derive(Debug, Clone)]
pub struct Tsqr {
    /// The final upper-triangular factor (`n × n`).
    pub r: Mat,
    /// Explicit thin `Q` (`m × n`). TSQR implementations often keep `Q`
    /// implicit; we materialize it because the sampling algorithms
    /// consume `Q` directly.
    pub q: Mat,
    /// Number of leaf blocks used.
    pub leaves: usize,
}

/// Factors `a` (`m × n`, `m ≥ n`) with a binary-tree TSQR using leaf
/// blocks of at least `block_rows` rows. Returns `(Q, R)` with
/// orthonormal `Q`, upper-triangular `R` with non-negative diagonal, and
/// `Q·R = A`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `m < n`, or
/// [`MatrixError::InvalidParameter`] if `block_rows == 0`.
pub fn tsqr(a: &Mat, block_rows: usize) -> Result<Tsqr> {
    let (m, n) = a.shape();
    if m < n {
        return Err(MatrixError::DimensionMismatch {
            op: "tsqr",
            expected: "m >= n (tall-skinny)".into(),
            found: format!("{m}x{n}"),
        });
    }
    if block_rows == 0 {
        return Err(MatrixError::InvalidParameter {
            name: "block_rows",
            message: "leaf block must have at least one row".into(),
        });
    }
    // Leaf blocks need at least n rows each to produce square R factors.
    let rows_per_leaf = block_rows.max(n);
    let leaves = (m / rows_per_leaf).max(1);
    let bounds = split_rows(m, leaves);

    // --- Leaf stage: independent QR of each row block --------------------
    let mut leaf_qs: Vec<Mat> = Vec::with_capacity(leaves);
    let mut rs: Vec<Mat> = Vec::with_capacity(leaves);
    for &(start, len) in &bounds {
        let block = a.submatrix(start, 0, len, n);
        let (q, r) = qr_factor(&block);
        leaf_qs.push(q);
        rs.push(positive_diag_qr(r, None).0);
    }
    // Fix the leaf Q signs to match the sign-normalized R factors.
    for (q, &(start, len)) in leaf_qs.iter_mut().zip(&bounds) {
        let block = a.submatrix(start, 0, len, n);
        let (q_fixed, _) = normalize_leaf(&block, q);
        *q = q_fixed;
    }

    // --- Reduction tree: pairwise QR of stacked R factors -----------------
    // Each tree level combines pairs [R_i; R_j] = Q_ij · R_ij; the small
    // Q_ij factors are pushed back down into the leaf Q blocks.
    let mut level_qs: Vec<Vec<Mat>> = Vec::new();
    let mut current = rs;
    while current.len() > 1 {
        let mut next = Vec::with_capacity(current.len().div_ceil(2));
        let mut qs = Vec::with_capacity(current.len().div_ceil(2));
        let mut i = 0;
        while i + 1 < current.len() {
            let stacked = current[i].vcat(&current[i + 1])?;
            let (q, r) = qr_factor(&stacked);
            let (r, flips) = positive_diag_qr(r, None);
            let q = flip_cols(&q, &flips);
            qs.push(q);
            next.push(r);
            i += 2;
        }
        if i < current.len() {
            // Odd element passes through unchanged (identity Q).
            qs.push(Mat::identity(n));
            next.push(current[i].clone());
        }
        level_qs.push(qs);
        current = next;
    }
    let r_final = current.pop().expect("at least one factor");

    // --- Form the explicit Q by propagating the tree factors down ---------
    // At the root, Q_global = I_n; walking the tree top-down multiplies
    // each node's children by the corresponding row blocks of the node's
    // small Q.
    let mut factors: Vec<Mat> = vec![Mat::identity(n)];
    for qs in level_qs.iter().rev() {
        let mut expanded = Vec::with_capacity(qs.len() * 2);
        for (node_idx, q_small) in qs.iter().enumerate() {
            let parent = &factors[node_idx];
            if q_small.rows() == 2 * n {
                // Combined node: split the 2n × n small Q into its two
                // child blocks and compose with the parent factor.
                let top = q_small.submatrix(0, 0, n, n);
                let bot = q_small.submatrix(n, 0, n, n);
                expanded.push(mat_mul(&top, parent)?);
                expanded.push(mat_mul(&bot, parent)?);
            } else {
                // Pass-through node.
                expanded.push(mat_mul(q_small, parent)?);
            }
        }
        factors = expanded;
    }
    debug_assert_eq!(factors.len(), leaves);

    // Q = blockdiag(leaf_Q_i) · factors.
    let mut q = Mat::zeros(m, n);
    for ((leaf_q, factor), &(start, _len)) in leaf_qs.iter().zip(&factors).zip(&bounds) {
        let qi = mat_mul(leaf_q, factor)?;
        q.set_submatrix(start, 0, &qi);
    }
    Ok(Tsqr {
        r: r_final,
        q,
        leaves,
    })
}

/// Splits `m` rows into `parts` nearly equal chunks.
fn split_rows(m: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = m / parts;
    let extra = m % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((start, len));
        start += len;
    }
    out
}

/// Enforces a non-negative diagonal on `r` by flipping row signs; returns
/// the fixed factor and the flip mask.
fn positive_diag_qr(mut r: Mat, _unused: Option<()>) -> (Mat, Vec<bool>) {
    let n = r.rows().min(r.cols());
    let mut flips = vec![false; n];
    for i in 0..n {
        if r[(i, i)] < 0.0 {
            flips[i] = true;
            for j in 0..r.cols() {
                r[(i, j)] = -r[(i, j)];
            }
        }
    }
    (r, flips)
}

/// Flips the sign of the columns of `q` marked in `flips` (the adjoint of
/// the row flips applied to `R`).
fn flip_cols(q: &Mat, flips: &[bool]) -> Mat {
    let mut out = q.clone();
    for (j, &f) in flips.iter().enumerate() {
        if f {
            for x in out.col_mut(j) {
                *x = -*x;
            }
        }
    }
    out
}

/// Renormalizes a leaf: recompute `Q` against the sign-normalized `R` by
/// solving `Q = A·R⁻¹` via the already-orthonormal candidate (cheap sign
/// fix without another factorization).
fn normalize_leaf(block: &Mat, q_candidate: &Mat) -> (Mat, ()) {
    // The candidate Q is orthonormal; the sign-normalized R differs from
    // the candidate's R only by row signs, which map to column signs of Q.
    // Recover the signs by checking the projection of A onto each column.
    let n = q_candidate.cols();
    let mut q = q_candidate.clone();
    for j in 0..n {
        // diag entry sign of candidate's R: r_jj = q_j^T a_j.
        let r_jj = rlra_blas::dot(q.col(j), block.col(j));
        if r_jj < 0.0 {
            for x in q.col_mut(j) {
                *x = -*x;
            }
        }
    }
    (q, ())
}

/// Small dense product helper (`a · b`).
fn mat_mul(a: &Mat, b: &Mat) -> Result<Mat> {
    let mut out = Mat::zeros(a.rows(), b.cols());
    rlra_blas::gemm(
        1.0,
        a.as_ref(),
        rlra_blas::Trans::No,
        b.as_ref(),
        rlra_blas::Trans::No,
        0.0,
        out.as_mut(),
    )?;
    Ok(out)
}

/// Unblocked fallback used by tests for cross-checking: plain Householder
/// QR with the same sign convention as [`tsqr`].
pub fn qr_positive_diag(a: &Mat) -> (Mat, Mat) {
    let mut f = a.clone();
    let taus = geqrf(&mut f);
    let k = a.rows().min(a.cols());
    let r = Mat::from_fn(k, a.cols(), |i, j| if i <= j { f[(i, j)] } else { 0.0 });
    let q = orgqr(&f, &taus, k);
    let (r, flips) = positive_diag_qr(r, None);
    (flip_cols(&q, &flips), r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::orthogonality_error;
    use rlra_matrix::ops::max_abs_diff;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    fn check(a: &Mat, block_rows: usize, tol: f64) {
        let t = tsqr(a, block_rows).unwrap();
        assert!(
            orthogonality_error(&t.q) < tol,
            "Q not orthonormal: {}",
            orthogonality_error(&t.q)
        );
        // R upper triangular with non-negative diagonal.
        for j in 0..t.r.cols() {
            for i in j + 1..t.r.rows() {
                assert!(t.r[(i, j)].abs() < tol);
            }
            assert!(t.r[(j, j)] >= 0.0);
        }
        // Q R = A.
        let rec = mat_mul(&t.q, &t.r).unwrap();
        assert!(max_abs_diff(&rec, a).unwrap() < tol, "QR != A");
    }

    #[test]
    fn single_leaf_reduces_to_plain_qr() {
        let a = pseudo(30, 6, 1);
        let t = tsqr(&a, 100).unwrap();
        assert_eq!(t.leaves, 1);
        check(&a, 100, 1e-11);
    }

    #[test]
    fn two_leaves() {
        check(&pseudo(40, 5, 2), 20, 1e-11);
    }

    #[test]
    fn power_of_two_tree() {
        check(&pseudo(64, 4, 3), 8, 1e-11);
    }

    #[test]
    fn odd_leaf_count() {
        // 50 rows / 10-row leaves = 5 leaves: exercises the pass-through.
        check(&pseudo(50, 4, 4), 10, 1e-11);
    }

    #[test]
    fn uneven_blocks() {
        check(&pseudo(47, 6, 5), 9, 1e-11);
    }

    #[test]
    fn matches_householder_r() {
        // Same sign convention => identical R (and Q) as plain QR.
        let a = pseudo(48, 6, 6);
        let t = tsqr(&a, 12).unwrap();
        let (q_ref, r_ref) = qr_positive_diag(&a);
        assert!(
            max_abs_diff(&t.r, &r_ref).unwrap() < 1e-10,
            "R differs from Householder"
        );
        assert!(
            max_abs_diff(&t.q, &q_ref).unwrap() < 1e-9,
            "Q differs from Householder"
        );
    }

    #[test]
    fn stable_on_ill_conditioned_input_where_cholqr_breaks() {
        // kappa(A) ~ 1e10 with *mixed* directions (column scaling alone
        // is invisible to CholQR): A = Q0 * diag(graded) * V^T. The Gram
        // matrix then has kappa ~ 1e20 and CholQR breaks down or loses
        // orthogonality; TSQR sails through.
        let m = 60;
        let n = 6;
        let q0 = crate::householder::form_q(&pseudo(m, n, 7));
        let v = crate::householder::form_q(&pseudo(n, n, 8));
        let scaled = Mat::from_fn(m, n, |i, j| q0[(i, j)] * 10f64.powi(-(2 * j as i32)));
        let a = {
            let mut a = Mat::zeros(m, n);
            rlra_blas::gemm(
                1.0,
                scaled.as_ref(),
                rlra_blas::Trans::No,
                v.as_ref(),
                rlra_blas::Trans::Yes,
                0.0,
                a.as_mut(),
            )
            .unwrap();
            a
        };
        let cholqr_bad = match crate::cholqr::cholqr(&a) {
            Err(_) => true,
            Ok((q, _)) => orthogonality_error(&q) > 1e-8,
        };
        assert!(cholqr_bad, "CholQR should struggle at kappa ~ 1e10");
        let t = tsqr(&a, 15).unwrap();
        assert!(orthogonality_error(&t.q) < 1e-12, "TSQR must stay stable");
    }

    #[test]
    fn rejects_wide_and_zero_block() {
        assert!(tsqr(&Mat::zeros(3, 5), 2).is_err());
        assert!(tsqr(&Mat::zeros(5, 3), 0).is_err());
    }

    #[test]
    fn block_rows_smaller_than_n_is_clamped() {
        let a = pseudo(30, 8, 8);
        let t = tsqr(&a, 2).unwrap(); // clamps to >= n rows per leaf
        assert!(t.leaves <= 30 / 8);
        check(&a, 2, 1e-11);
    }
}
