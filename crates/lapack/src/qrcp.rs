//! QR factorization with column pivoting — the paper's deterministic
//! baseline.
//!
//! Two variants are provided:
//!
//! - [`qrcp_column`] — the unblocked column-based algorithm (LAPACK
//!   `geqp2`): BLAS-2 reflector applications, immediate column-norm
//!   recomputation when the downdate becomes unreliable,
//! - [`qp3_blocked`] — the blocked BLAS-3 algorithm of
//!   Quintana-Ortí/Sun/Bischof (LAPACK `geqp3`/`laqps`): panels are
//!   factored with pivoting while trailing-matrix updates are *deferred*
//!   through an auxiliary matrix `F` and applied as one GEMM per panel.
//!   When the downdated column norms diverge from the true norms, the
//!   panel is terminated early, the trailing matrix is updated, and the
//!   flagged norms are recomputed — exactly the overhead the paper
//!   describes ("the frequent norm recomputation leads to poorer data
//!   locality").
//!
//! Both return a truncated rank-`k` factorization `A·P ≈ Q·R`.

use crate::householder::{apply_reflector_left, larfg, orgqr};
use rlra_blas::{gemm, gemv, Trans};
use rlra_matrix::{ColPerm, Mat, MatrixError, Result};

/// Threshold for declaring a downdated column norm unreliable
/// (LAPACK's `tol3z = sqrt(eps)`).
fn tol3z() -> f64 {
    f64::EPSILON.sqrt()
}

/// Execution statistics of a QRCP run, consumed by the simulated-GPU cost
/// model and by the benchmark harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QrcpStats {
    /// Number of column-norm recomputations triggered by downdate
    /// breakdown.
    pub norm_recomputes: usize,
    /// Number of panels factored (1 for the unblocked algorithm's whole
    /// sweep; for QP3, panels can terminate early so this can exceed
    /// `ceil(k / nb)`).
    pub panels: usize,
    /// Total BLAS-2 reflector applications (column-based algorithm) or
    /// per-column panel updates (blocked algorithm).
    pub blas2_updates: usize,
}

/// Result of a (truncated) QR factorization with column pivoting.
#[derive(Debug, Clone)]
pub struct QrcpResult {
    /// Compact factorization: `R` on and above the diagonal of the leading
    /// `rank` columns; Householder tails below the diagonal.
    pub factors: Mat,
    /// Reflector coefficients (length `rank`).
    pub taus: Vec<f64>,
    /// Column permutation `P` with `A·P ≈ Q·R`.
    pub perm: ColPerm,
    /// Number of factorization steps performed (the target rank `k`).
    pub rank: usize,
    /// Execution statistics.
    pub stats: QrcpStats,
}

impl QrcpResult {
    /// The thin orthogonal factor `Q` (`m × rank`).
    pub fn q(&self) -> Mat {
        orgqr(&self.factors, &self.taus, self.rank)
    }

    /// The triangular factor `R` (`rank × n`, upper trapezoidal).
    pub fn r(&self) -> Mat {
        Mat::from_fn(self.rank, self.factors.cols(), |i, j| {
            if i <= j {
                self.factors[(i, j)]
            } else {
                0.0
            }
        })
    }

    /// Absolute values of the diagonal of `R` — QRCP's rank-revealing
    /// proxies for the singular values.
    pub fn r_diag(&self) -> Vec<f64> {
        (0..self.rank).map(|i| self.factors[(i, i)].abs()).collect()
    }

    /// Reconstructs the rank-`rank` approximation of `A·P` as `Q·R`.
    pub fn reconstruct(&self) -> Mat {
        let q = self.q();
        let r = self.r();
        let mut out = Mat::zeros(q.rows(), r.cols());
        gemm(
            1.0,
            q.as_ref(),
            Trans::No,
            r.as_ref(),
            Trans::No,
            0.0,
            out.as_mut(),
        )
        .expect("shapes consistent");
        out
    }
}

fn validate_k(a: &Mat, k: usize) -> Result<()> {
    let kmax = a.rows().min(a.cols());
    if k > kmax {
        return Err(MatrixError::InvalidParameter {
            name: "k",
            message: format!("target rank {k} exceeds min(m, n) = {kmax}"),
        });
    }
    Ok(())
}

/// Unblocked column-based QRCP truncated at `k` steps (LAPACK `geqp2`
/// with early exit).
///
/// At each step, the remaining column with the largest (downdated)
/// two-norm is swapped into the pivot position, a Householder reflector is
/// generated and applied to the trailing submatrix with BLAS-2 kernels,
/// and the trailing column norms are downdated (with recomputation when
/// cancellation makes the downdate unreliable).
///
/// # Errors
///
/// Returns [`MatrixError::InvalidParameter`] if `k > min(m, n)`.
pub fn qrcp_column(a: &Mat, k: usize) -> Result<QrcpResult> {
    validate_k(a, k)?;
    let (m, n) = a.shape();
    let mut f = a.clone();
    let mut perm = ColPerm::identity(n);
    let mut taus = Vec::with_capacity(k);
    let mut stats = QrcpStats {
        panels: 1,
        ..Default::default()
    };

    let mut pnorm: Vec<f64> = (0..n).map(|j| rlra_blas::nrm2(f.col(j))).collect();
    let mut onorm = pnorm.clone();

    for j in 0..k {
        // Pivot: remaining column with largest partial norm.
        let rel = rlra_blas::iamax(&pnorm[j..]);
        let p = j + rel;
        if p != j {
            // Swap full columns, norms and permutation entries.
            let (left, mut right) = f.as_mut().split_at_col(p);
            let mut left = left;
            rlra_blas::swap(left.col_mut(j), right.col_mut(0));
            pnorm.swap(j, p);
            onorm.swap(j, p);
            perm.swap(j, p);
        }
        // Householder reflector on f[j.., j].
        let (beta, tau) = {
            let col = f.col_mut(j);
            let (head, tail) = col[j..].split_at_mut(1);
            larfg(head[0], tail)
        };
        f[(j, j)] = beta;
        taus.push(tau);
        // Apply to trailing columns (BLAS-2).
        if j + 1 < n && tau != 0.0 {
            let (vcols, mut rest) = f.as_mut().split_at_col(j + 1);
            let v_tail = &vcols.col(j)[j + 1..];
            let trailing = rest.submatrix_mut(j, 0, m - j, n - j - 1);
            apply_reflector_left(tau, v_tail, trailing);
            stats.blas2_updates += 1;
        }
        // Downdate the partial norms of the trailing columns.
        for i in j + 1..n {
            if pnorm[i] == 0.0 {
                continue;
            }
            let temp = (f[(j, i)] / pnorm[i]).abs();
            let temp = ((1.0 + temp) * (1.0 - temp)).max(0.0);
            let ratio = pnorm[i] / onorm[i];
            let temp2 = temp * ratio * ratio;
            if temp2 <= tol3z() {
                // Downdate has lost too much accuracy: recompute from the
                // updated trailing column (BLAS-1), as LAPACK does.
                let col = f.col(i);
                pnorm[i] = rlra_blas::nrm2(&col[j + 1..]);
                onorm[i] = pnorm[i];
                stats.norm_recomputes += 1;
            } else {
                pnorm[i] *= temp.sqrt();
            }
        }
    }
    Ok(QrcpResult {
        factors: f,
        taus,
        perm,
        rank: k,
        stats,
    })
}

/// Default panel width for [`qp3_blocked`].
pub const QP3_BLOCK: usize = 32;

/// Blocked BLAS-3 QRCP (**QP3**, LAPACK `geqp3`) truncated at `k` steps.
///
/// Panels of up to `nb` columns are factored with global pivoting; the
/// trailing matrix is only touched through (a) the running update of the
/// current pivot row (needed for norm downdating) and (b) one deferred
/// GEMM per panel, `A ← A − V·Fᵀ`. A panel terminates early when a
/// downdated norm becomes unreliable; the flagged norms are recomputed
/// after the trailing update (the "immediate update + norm recomputation"
/// behaviour described in §2 of the paper).
///
/// # Errors
///
/// Returns [`MatrixError::InvalidParameter`] if `k > min(m, n)` or
/// `nb == 0`.
pub fn qp3_blocked(a: &Mat, k: usize, nb: usize) -> Result<QrcpResult> {
    validate_k(a, k)?;
    if nb == 0 {
        return Err(MatrixError::InvalidParameter {
            name: "nb",
            message: "panel width must be positive".into(),
        });
    }
    let (m, n) = a.shape();
    let mut f = a.clone();
    let mut perm = ColPerm::identity(n);
    let mut taus = vec![0.0f64; k];
    let mut stats = QrcpStats::default();

    let mut pnorm: Vec<f64> = (0..n).map(|j| rlra_blas::nrm2(f.col(j))).collect();
    let mut onorm = pnorm.clone();

    let mut offset = 0usize;
    while offset < k {
        let panel_max = nb.min(k - offset);
        let factored = laqps_panel(
            &mut f, offset, panel_max, &mut pnorm, &mut onorm, &mut perm, &mut taus, &mut stats,
        )?;
        stats.panels += 1;
        offset += factored;
        let _ = m;
        let _ = n;
    }
    taus.truncate(k);
    Ok(QrcpResult {
        factors: f,
        taus,
        perm,
        rank: k,
        stats,
    })
}

/// Factors up to `nb` columns starting at global column `offset`
/// (LAPACK `laqps`). Returns the number of columns actually factored
/// (less than `nb` when a norm-downdate breakdown forces an early panel
/// exit). On return the trailing matrix has been updated with the
/// accumulated block transformation and flagged norms recomputed.
#[allow(clippy::too_many_arguments)]
fn laqps_panel(
    f: &mut Mat,
    offset: usize,
    nb: usize,
    pnorm: &mut [f64],
    onorm: &mut [f64],
    perm: &mut ColPerm,
    taus: &mut [f64],
    stats: &mut QrcpStats,
) -> Result<usize> {
    let (m, n) = f.shape();
    let nloc = n - offset; // trailing width including panel
                           // F accumulates the deferred update: A_trailing ← A_trailing − V·Fᵀ.
                           // Row `j` of F corresponds to global column `offset + j`.
    let mut fmat = Mat::zeros(nloc, nb);
    let mut lsticc = false;
    let mut kdone = 0usize;

    while kdone < nb && !lsticc {
        let kk = kdone; // local panel index
        let rk = offset + kk; // global pivot row/column
                              // --- Pivot selection over downdated norms -----------------------
        let rel = rlra_blas::iamax(&pnorm[rk..]);
        let p = rk + rel;
        if p != rk {
            let (left, mut right) = f.as_mut().split_at_col(p);
            let mut left = left;
            rlra_blas::swap(left.col_mut(rk), right.col_mut(0));
            pnorm.swap(rk, p);
            onorm.swap(rk, p);
            perm.swap(rk, p);
            // Swap the corresponding rows of F (local indices).
            for c in 0..nb {
                let fc = fmat.col_mut(c);
                fc.swap(rk - offset, p - offset);
            }
        }
        // --- Apply the panel's previous reflectors to column rk ---------
        // A[rk.., rk] -= V[rk.., 0..kk] · F[kk_local, 0..kk]ᵀ
        if kk > 0 {
            for t in 0..kk {
                let coeff = fmat[(kk, t)];
                if coeff != 0.0 {
                    let vcol = offset + t;
                    let (left, mut right) = f.as_mut().split_at_col(rk);
                    let v = &left.col(vcol)[rk..];
                    let dst = &mut right.col_mut(0)[rk..];
                    rlra_blas::axpy(-coeff, v, dst);
                }
            }
            stats.blas2_updates += 1;
        }
        // --- Generate the Householder reflector --------------------------
        let (beta, tau) = {
            let col = f.col_mut(rk);
            let (head, tail) = col[rk..].split_at_mut(1);
            larfg(head[0], tail)
        };
        taus[rk] = tau;
        // Temporarily store 1.0 at the reflector head (LAPACK trick) so the
        // GEMVs below can treat column rk as v_k.
        f[(rk, rk)] = 1.0;

        // --- F[kk+1.., kk] = tau · A[rk.., rk+1..]ᵀ · v_k ----------------
        if rk + 1 < n && tau != 0.0 {
            let trailing = f.as_ref().submatrix(rk, rk + 1, m - rk, n - rk - 1);
            let vslice = &f.as_ref().col(rk)[rk..];
            // Cannot borrow f twice; copy v (short-lived, length m − rk).
            let v: Vec<f64> = vslice.to_vec();
            let mut out = vec![0.0f64; n - rk - 1];
            gemv(tau, trailing, Trans::Yes, &v, 0.0, &mut out)?;
            for (i, val) in out.into_iter().enumerate() {
                fmat[(kk + 1 + i, kk)] = val;
            }
        }
        // Zero the rows of F for already-factored panel columns.
        for t in 0..=kk {
            fmat[(t, kk)] = 0.0;
        }
        // --- Incremental correction: F[:, kk] -= tau · F[:, 0..kk] · (Vᵀ v_k)
        if kk > 0 && tau != 0.0 {
            let mut aux = vec![0.0f64; kk];
            {
                let vpanel = f.as_ref().submatrix(rk, offset, m - rk, kk);
                let v: Vec<f64> = f.as_ref().col(rk)[rk..].to_vec();
                gemv(1.0, vpanel, Trans::Yes, &v, 0.0, &mut aux)?;
            }
            let fprev = fmat.submatrix(0, 0, nloc, kk);
            let mut corr = vec![0.0f64; nloc];
            gemv(-tau, fprev.as_ref(), Trans::No, &aux, 0.0, &mut corr)?;
            let fcol = fmat.col_mut(kk);
            for (dst, add) in fcol.iter_mut().zip(&corr) {
                *dst += add;
            }
        }
        // --- Update pivot row rk of the trailing matrix -------------------
        // A[rk, rk+1..] -= V[rk, 0..kk+1] · F[rk+1.., 0..kk+1]ᵀ
        if rk + 1 < n {
            for j in rk + 1..n {
                let jloc = j - offset;
                let mut s = 0.0;
                for t in 0..=kk {
                    s += f[(rk, offset + t)] * fmat[(jloc, t)];
                }
                f[(rk, j)] -= s;
            }
        }
        // Restore the diagonal entry.
        f[(rk, rk)] = beta;

        // --- Downdate partial norms --------------------------------------
        for j in rk + 1..n {
            if pnorm[j] == 0.0 {
                continue;
            }
            let temp = (f[(rk, j)] / pnorm[j]).abs();
            let temp = ((1.0 + temp) * (1.0 - temp)).max(0.0);
            let ratio = pnorm[j] / onorm[j];
            let temp2 = temp * ratio * ratio;
            if temp2 <= tol3z() {
                // Cannot recompute yet: the trailing column is stale until
                // the deferred block update lands. Flag and stop the panel.
                pnorm[j] = -1.0; // sentinel: recompute after the update
                lsticc = true;
            } else {
                pnorm[j] *= temp.sqrt();
            }
        }
        kdone += 1;
    }

    // --- Deferred trailing update: A ← A − V·Fᵀ (one GEMM) ---------------
    let first_trailing = offset + kdone;
    if first_trailing < n && first_trailing < m && kdone > 0 {
        let v_snapshot = f
            .as_ref()
            .submatrix(first_trailing, offset, m - first_trailing, kdone)
            .to_mat();
        // Zero out nothing: v rows below the panel are exactly the stored
        // reflector tails.
        let fblock = fmat.submatrix(kdone, 0, nloc - kdone, kdone);
        let mut view = f.as_mut();
        let trailing = view.submatrix_mut(
            first_trailing,
            first_trailing,
            m - first_trailing,
            n - first_trailing,
        );
        gemm(
            -1.0,
            v_snapshot.as_ref(),
            Trans::No,
            fblock.as_ref(),
            Trans::Yes,
            1.0,
            trailing,
        )?;
    }
    // --- Recompute flagged norms (now that columns are up to date) -------
    for j in first_trailing..n {
        if pnorm[j] < 0.0 {
            let col = f.col(j);
            pnorm[j] = rlra_blas::nrm2(&col[first_trailing..]);
            onorm[j] = pnorm[j];
            stats.norm_recomputes += 1;
        }
    }
    Ok(kdone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::orthogonality_error;
    use rlra_matrix::norms::spectral_norm_mat;
    use rlra_matrix::ops::sub;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    /// ‖AP − QR‖_max for a truncated factorization.
    fn truncation_residual(a: &Mat, res: &QrcpResult) -> f64 {
        let ap = res.perm.apply_cols(a).unwrap();
        let qr = res.reconstruct();
        rlra_matrix::norms::max_abs(sub(&ap, &qr).unwrap().as_ref())
    }

    fn check_full_factorization(res: &QrcpResult, a: &Mat) {
        // Full rank: AP = QR exactly (to roundoff).
        assert!(truncation_residual(a, res) < 1e-10);
        let q = res.q();
        assert!(orthogonality_error(&q) < 1e-11);
        // Diagonal of R non-increasing in magnitude (QRCP invariant).
        let d = res.r_diag();
        for w in d.windows(2) {
            assert!(
                w[1] <= w[0] * (1.0 + 1e-10),
                "R diagonal not non-increasing: {:?}",
                d
            );
        }
    }

    #[test]
    fn column_qrcp_full_rank() {
        let a = pseudo(20, 12, 1);
        let res = qrcp_column(&a, 12).unwrap();
        check_full_factorization(&res, &a);
    }

    #[test]
    fn qp3_full_rank() {
        let a = pseudo(20, 12, 1);
        let res = qp3_blocked(&a, 12, 4).unwrap();
        check_full_factorization(&res, &a);
    }

    #[test]
    fn qp3_matches_column_variant() {
        // Same pivots and (up to sign) same R for a generic matrix.
        let a = pseudo(30, 18, 2);
        let r1 = qrcp_column(&a, 18).unwrap();
        let r2 = qp3_blocked(&a, 18, 5).unwrap();
        assert_eq!(
            r1.perm.as_slice(),
            r2.perm.as_slice(),
            "pivot sequences differ"
        );
        let d1 = r1.r_diag();
        let d2 = r2.r_diag();
        for (x, y) in d1.iter().zip(&d2) {
            assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn truncated_rank_k_approximates() {
        // Build a matrix with rapidly decaying singular values; a rank-k
        // QRCP should capture it well.
        let m = 40;
        let n = 20;
        let u = crate::householder::form_q(&pseudo(m, n, 3));
        let v = crate::householder::form_q(&pseudo(n, n, 4));
        let sigma: Vec<f64> = (0..n).map(|i| 10f64.powi(-(i as i32))).collect();
        let us = Mat::from_fn(m, n, |i, j| u[(i, j)] * sigma[j]);
        let a = {
            let mut t = Mat::zeros(m, n);
            gemm(
                1.0,
                us.as_ref(),
                Trans::No,
                v.as_ref(),
                Trans::Yes,
                0.0,
                t.as_mut(),
            )
            .unwrap();
            t
        };
        let k = 6;
        for res in [qrcp_column(&a, k).unwrap(), qp3_blocked(&a, k, 4).unwrap()] {
            let ap = res.perm.apply_cols(&a).unwrap();
            let qr = res.reconstruct();
            let err = spectral_norm_mat(&sub(&ap, &qr).unwrap());
            // QRCP error is within a modest factor of sigma_{k+1}.
            assert!(
                err < 50.0 * sigma[k],
                "rank-{k} error {err:e} vs sigma_{}={:e}",
                k + 1,
                sigma[k]
            );
        }
    }

    #[test]
    fn rank_revealing_on_exactly_low_rank() {
        // Rank-3 matrix: the 4th diagonal entry of R must be ~0.
        let m = 25;
        let n = 10;
        let x = pseudo(m, 3, 5);
        let y = pseudo(3, n, 6);
        let mut a = Mat::zeros(m, n);
        gemm(
            1.0,
            x.as_ref(),
            Trans::No,
            y.as_ref(),
            Trans::No,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        for res in [qrcp_column(&a, 5).unwrap(), qp3_blocked(&a, 5, 2).unwrap()] {
            let d = res.r_diag();
            assert!(d[2] > 1e-8, "rank-3 should have 3 significant pivots");
            assert!(d[3] < 1e-9 * d[0], "4th pivot should vanish: {:?}", d);
        }
    }

    #[test]
    fn pivoting_selects_largest_column_first() {
        let mut a = pseudo(10, 5, 7);
        // Make column 3 dominant.
        for x in a.col_mut(3) {
            *x *= 100.0;
        }
        let res = qrcp_column(&a, 5).unwrap();
        assert_eq!(res.perm.as_slice()[0], 3);
        let res = qp3_blocked(&a, 5, 2).unwrap();
        assert_eq!(res.perm.as_slice()[0], 3);
    }

    #[test]
    fn qp3_panel_boundaries_robust() {
        let a = pseudo(35, 33, 8);
        for nb in [1, 2, 7, 32, 33, 64] {
            let res = qp3_blocked(&a, 33, nb).unwrap();
            assert!(truncation_residual(&a, res.borrow()) < 1e-9, "nb = {nb}");
        }
    }

    #[test]
    fn norm_recompute_triggers_on_adversarial_matrix() {
        // Columns that shrink drastically under elimination force the
        // downdating formula into cancellation.
        let m = 60;
        let n = 30;
        let q = crate::householder::form_q(&pseudo(m, n, 9));
        let sigma: Vec<f64> = (0..n)
            .map(|i| (1e-14f64).powf(i as f64 / n as f64))
            .collect();
        let mut a = Mat::zeros(m, n);
        let v = crate::householder::form_q(&pseudo(n, n, 10));
        let us = Mat::from_fn(m, n, |i, j| q[(i, j)] * sigma[j]);
        gemm(
            1.0,
            us.as_ref(),
            Trans::No,
            v.as_ref(),
            Trans::Yes,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        let res = qrcp_column(&a, n).unwrap();
        assert!(
            res.stats.norm_recomputes > 0,
            "expected at least one recompute"
        );
    }

    #[test]
    fn invalid_k_rejected() {
        let a = Mat::zeros(5, 3);
        assert!(qrcp_column(&a, 4).is_err());
        assert!(qp3_blocked(&a, 4, 2).is_err());
        assert!(qp3_blocked(&a, 2, 0).is_err());
    }

    #[test]
    fn k_zero_is_empty_factorization() {
        let a = pseudo(5, 3, 11);
        let res = qrcp_column(&a, 0).unwrap();
        assert_eq!(res.rank, 0);
        assert_eq!(res.q().shape(), (5, 0));
        let res = qp3_blocked(&a, 0, 2).unwrap();
        assert_eq!(res.rank, 0);
    }

    use std::borrow::Borrow;
}
