//! # rlra-lapack
//!
//! Dense factorizations for the `rlra` workspace (reproduction of Mary et
//! al., SC'15): every factorization the paper uses or compares against is
//! implemented here from scratch on top of `rlra-blas`:
//!
//! - [`householder`] — Householder reflectors, blocked QR (compact-WY),
//!   explicit Q formation and application (`geqrf`/`orgqr`/`ormqr`);
//!   this is the paper's **HHQR**,
//! - [`cholesky`] — `potrf`,
//! - [`mod@cholqr`] — **CholQR** for tall-skinny matrices and its LQ-flavored
//!   adaptation for short-wide matrices, with optional full
//!   reorthogonalization (the paper stabilizes the power iteration with
//!   "CholQR with one full reorthogonalization"),
//! - [`gram_schmidt`] — **CGS** and **MGS**, plus the block
//!   orthogonalization `BOrth` used on lines 4/9 of the paper's
//!   Figure 2(a),
//! - [`qrcp`] — QR with column pivoting: the unblocked column-based
//!   algorithm (`geqp2`) and the blocked BLAS-3 **QP3**
//!   (Quintana-Ortí/Sun/Bischof) with column-norm downdating and
//!   recomputation — the paper's deterministic baseline,
//! - [`svd`] — a one-sided Jacobi SVD used to build test matrices with
//!   prescribed spectra and to measure exact singular values σₖ₊₁ for the
//!   error bounds.

#![forbid(unsafe_code)]

pub mod ca_qrcp;
pub mod cholesky;
pub mod cholqr;
pub mod cholqr_mixed;
pub mod dd;
pub mod gk_svd;
pub mod gram_schmidt;
pub mod householder;
pub mod inc_qr;
pub mod lu;
pub mod qrcp;
pub mod svd;
pub mod tsqr;

pub use ca_qrcp::{tournament_qrcp, CaQrcp};
pub use cholesky::{cholesky_upper, cholesky_upper_guarded};
pub use cholqr::{
    cholqr, cholqr2, cholqr_rows, cholqr_rows2, shifted_cholqr2, shifted_cholqr_rows2,
};
pub use cholqr_mixed::{cholqr_mixed, cholqr_rows_mixed};
pub use gk_svd::svd_golub_kahan;
pub use gram_schmidt::{block_orth, block_orth_cols, block_orth_rows, cgs, mgs};
pub use householder::{form_q, qr_factor, HouseholderQr};
pub use inc_qr::{extend_r, sample_panel_step, SamplePanelStep};
pub use lu::{lu_factor, lu_solve, Lu};
pub use qrcp::{qp3_blocked, qrcp_column, QrcpResult};
pub use svd::{singular_values, svd_jacobi, Svd};
pub use tsqr::{tsqr, Tsqr};
