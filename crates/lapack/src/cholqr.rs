//! Cholesky QR (**CholQR**), the paper's orthogonalization kernel of
//! choice.
//!
//! CholQR computes a QR factorization in three BLAS-3 steps (paper §4):
//!
//! 1. form the Gram matrix `G = BᵀB` (tall-skinny) or `G = BBᵀ`
//!    (short-wide),
//! 2. Cholesky-factor `G = R̄ᵀR̄`,
//! 3. recover the orthogonal factor by a triangular solve
//!    (`Q = B·R̄⁻¹` or `Q = R̄⁻ᵀ·B`).
//!
//! It needs a single reduction (communication-minimal) and runs at BLAS-3
//! speed — the paper measures speedups up to 33× (tall-skinny, Fig. 7)
//! and 106× (short-wide, Fig. 9) over Householder QR on a K40c. The cost
//! is stability: `κ(G) = κ(B)²`, so the paper runs CholQR "with one full
//! reorthogonalization" ([`cholqr2`]/[`cholqr_rows2`]) inside the power
//! iteration.

use crate::cholesky::cholesky_upper;
use rlra_blas::{gemm, syrk, trsm, Diag, Side, Trans, UpLo};
use rlra_matrix::{Mat, Result};

/// CholQR of a tall-skinny matrix `B` (`m × n`, `m ≥ n`):
/// returns `(Q, R)` with `Q` having orthonormal **columns**, `R` upper
/// triangular and `Q·R = B`.
///
/// # Errors
///
/// Propagates [`rlra_matrix::MatrixError::NotPositiveDefinite`] when the
/// Gram matrix is numerically rank deficient (CholQR breakdown; callers
/// fall back to Householder QR as the paper recommends).
pub fn cholqr(b: &Mat) -> Result<(Mat, Mat)> {
    let n = b.cols();
    let mut g = Mat::zeros(n, n);
    syrk(1.0, b.as_ref(), Trans::Yes, 0.0, g.as_mut(), UpLo::Upper)?;
    mirror_upper(&mut g);
    let r = cholesky_upper(&g)?;
    let mut q = b.clone();
    trsm(
        Side::Right,
        UpLo::Upper,
        Trans::No,
        Diag::NonUnit,
        1.0,
        r.as_ref(),
        q.as_mut(),
    )?;
    Ok((q, r))
}

/// CholQR with one full reorthogonalization ("CholQR2"): runs [`cholqr`]
/// twice and merges the triangular factors, restoring orthogonality to
/// machine precision for matrices with `κ(B) ≲ 1/√ε`.
pub fn cholqr2(b: &Mat) -> Result<(Mat, Mat)> {
    let (q1, r1) = cholqr(b)?;
    let (q2, r2) = cholqr(&q1)?;
    Ok((q2, merge_r(&r2, &r1)?))
}

/// CholQR of a short-wide matrix `B` (`ℓ × n`, `ℓ ≤ n`), the paper's LQ
/// adaptation (its footnote 3 and Figure 4): returns `(Q, R)` with `Q`
/// having orthonormal **rows** (`QQᵀ = I`), `R` upper triangular (`ℓ × ℓ`)
/// and `Rᵀ·Q = B`.
///
/// Steps: `G = BBᵀ`, `R̄ᵀR̄ = G`, `Q = R̄⁻ᵀB`.
///
/// # Errors
///
/// Propagates [`rlra_matrix::MatrixError::NotPositiveDefinite`] on
/// breakdown.
pub fn cholqr_rows(b: &Mat) -> Result<(Mat, Mat)> {
    let l = b.rows();
    let mut g = Mat::zeros(l, l);
    syrk(1.0, b.as_ref(), Trans::No, 0.0, g.as_mut(), UpLo::Upper)?;
    mirror_upper(&mut g);
    let r = cholesky_upper(&g)?;
    let mut q = b.clone();
    trsm(
        Side::Left,
        UpLo::Upper,
        Trans::Yes,
        Diag::NonUnit,
        1.0,
        r.as_ref(),
        q.as_mut(),
    )?;
    Ok((q, r))
}

/// Short-wide CholQR with one full reorthogonalization — the exact
/// configuration the paper uses to stabilize the power iteration
/// ("we orthogonalized both sampled matrices using CholQR with one full
/// reorthogonalization", §6).
pub fn cholqr_rows2(b: &Mat) -> Result<(Mat, Mat)> {
    let (q1, r1) = cholqr_rows(b)?;
    let (q2, r2) = cholqr_rows(&q1)?;
    // B = R1^T Q1 and Q1 = R2^T Q2 ⟹ B = (R2 R1)^T Q2.
    Ok((q2, merge_r(&r2, &r1)?))
}

/// Copies the upper triangle into the lower one, making `g` symmetric.
fn mirror_upper(g: &mut Mat) {
    let n = g.rows();
    for j in 0..n {
        for i in 0..j {
            let v = g[(i, j)];
            g[(j, i)] = v;
        }
    }
}

/// Product `R₂·R₁` of two upper-triangular factors (stays upper
/// triangular).
fn merge_r(r2: &Mat, r1: &Mat) -> Result<Mat> {
    let mut r = Mat::zeros(r2.rows(), r1.cols());
    gemm(
        1.0,
        r2.as_ref(),
        Trans::No,
        r1.as_ref(),
        Trans::No,
        0.0,
        r.as_mut(),
    )?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::orthogonality_error;
    use rlra_blas::naive::gemm_ref;
    use rlra_matrix::ops::max_abs_diff;
    use rlra_matrix::MatrixError;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    #[test]
    fn tall_skinny_reconstructs() {
        let b = pseudo(50, 8, 1);
        let (q, r) = cholqr(&b).unwrap();
        let qr = gemm_ref(&q, Trans::No, &r, Trans::No);
        assert!(max_abs_diff(&qr, &b).unwrap() < 1e-10);
        assert!(orthogonality_error(&q) < 1e-10);
    }

    #[test]
    fn tall_skinny_r_upper_triangular() {
        let b = pseudo(30, 6, 2);
        let (_q, r) = cholqr(&b).unwrap();
        for j in 0..6 {
            for i in j + 1..6 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholqr2_improves_orthogonality_on_graded_matrix() {
        // Columns with widely varying scales stress single-pass CholQR.
        let mut b = pseudo(60, 6, 3);
        for j in 0..6 {
            let s = 10f64.powi(-(j as i32));
            for x in b.col_mut(j) {
                *x *= s;
            }
        }
        let (q1, _) = cholqr(&b).unwrap();
        let (q2, r2) = cholqr2(&b).unwrap();
        assert!(orthogonality_error(&q2) <= orthogonality_error(&q1) + 1e-15);
        assert!(orthogonality_error(&q2) < 1e-12);
        let qr = gemm_ref(&q2, Trans::No, &r2, Trans::No);
        assert!(max_abs_diff(&qr, &b).unwrap() < 1e-10);
    }

    #[test]
    fn short_wide_rows_orthonormal() {
        let b = pseudo(6, 40, 4);
        let (q, r) = cholqr_rows(&b).unwrap();
        assert_eq!(q.shape(), (6, 40));
        assert_eq!(r.shape(), (6, 6));
        // Q Q^T = I.
        let qt = q.transpose();
        assert!(orthogonality_error(&qt) < 1e-10);
        // R^T Q = B.
        let rtq = gemm_ref(&r, Trans::Yes, &q, Trans::No);
        assert!(max_abs_diff(&rtq, &b).unwrap() < 1e-10);
    }

    #[test]
    fn short_wide_reorthogonalized() {
        let mut b = pseudo(5, 35, 5);
        for i in 0..5 {
            let s = 10f64.powi(-(i as i32 * 2));
            // Scale rows to grade the conditioning.
            for j in 0..35 {
                b[(i, j)] *= s;
            }
        }
        let (q, r) = cholqr_rows2(&b).unwrap();
        let qt = q.transpose();
        assert!(orthogonality_error(&qt) < 1e-12);
        let rtq = gemm_ref(&r, Trans::Yes, &q, Trans::No);
        assert!(max_abs_diff(&rtq, &b).unwrap() < 1e-9);
    }

    #[test]
    fn breakdown_on_rank_deficiency() {
        // Exactly repeated column ⇒ singular Gram matrix.
        let mut b = pseudo(20, 4, 6);
        let c = b.col(0).to_vec();
        b.col_mut(3).copy_from_slice(&c);
        assert!(matches!(
            cholqr(&b),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn cholqr_matches_householder_span() {
        // Q from CholQR and from HHQR must span the same subspace:
        // P = Q_c Q_c^T equals Q_h Q_h^T.
        let b = pseudo(25, 5, 7);
        let (qc, _) = cholqr(&b).unwrap();
        let qh = crate::householder::form_q(&b);
        let pc = gemm_ref(&qc, Trans::No, &qc, Trans::Yes);
        let ph = gemm_ref(&qh, Trans::No, &qh, Trans::Yes);
        assert!(max_abs_diff(&pc, &ph).unwrap() < 1e-9);
    }

    #[test]
    fn orthonormal_input_gives_identity_r() {
        let b = pseudo(40, 5, 8);
        let (q, _) = cholqr(&b).unwrap();
        let (_, r2) = cholqr(&q).unwrap();
        assert!(max_abs_diff(&r2, &Mat::identity(5)).unwrap() < 1e-12);
    }
}
