//! Cholesky QR (**CholQR**), the paper's orthogonalization kernel of
//! choice.
//!
//! CholQR computes a QR factorization in three BLAS-3 steps (paper §4):
//!
//! 1. form the Gram matrix `G = BᵀB` (tall-skinny) or `G = BBᵀ`
//!    (short-wide),
//! 2. Cholesky-factor `G = R̄ᵀR̄`,
//! 3. recover the orthogonal factor by a triangular solve
//!    (`Q = B·R̄⁻¹` or `Q = R̄⁻ᵀ·B`).
//!
//! It needs a single reduction (communication-minimal) and runs at BLAS-3
//! speed — the paper measures speedups up to 33× (tall-skinny, Fig. 7)
//! and 106× (short-wide, Fig. 9) over Householder QR on a K40c. The cost
//! is stability: `κ(G) = κ(B)²`, so the paper runs CholQR "with one full
//! reorthogonalization" ([`cholqr2`]/[`cholqr_rows2`]) inside the power
//! iteration.

use crate::cholesky::{cholesky_upper, cholesky_upper_guarded};
use rlra_blas::{gemm, syrk, trsm, Diag, Side, Trans, UpLo};
use rlra_matrix::{Mat, Result};

/// CholQR of a tall-skinny matrix `B` (`m × n`, `m ≥ n`):
/// returns `(Q, R)` with `Q` having orthonormal **columns**, `R` upper
/// triangular and `Q·R = B`.
///
/// # Errors
///
/// Propagates [`rlra_matrix::MatrixError::NotPositiveDefinite`] when the
/// Gram matrix is numerically rank deficient (CholQR breakdown; callers
/// fall back to Householder QR as the paper recommends).
pub fn cholqr(b: &Mat) -> Result<(Mat, Mat)> {
    let _wall =
        rlra_obs::walltime::scoped_labeled(rlra_obs::names::WALL_CHOLQR_SECONDS, "rung=\"cholqr\"");
    let n = b.cols();
    let mut g = Mat::zeros(n, n);
    syrk(1.0, b.as_ref(), Trans::Yes, 0.0, g.as_mut(), UpLo::Upper)?;
    mirror_upper(&mut g);
    let r = cholesky_upper_guarded(&g)?;
    let mut q = b.clone();
    trsm(
        Side::Right,
        UpLo::Upper,
        Trans::No,
        Diag::NonUnit,
        1.0,
        r.as_ref(),
        q.as_mut(),
    )?;
    Ok((q, r))
}

/// CholQR with one full reorthogonalization ("CholQR2"): runs [`cholqr`]
/// twice and merges the triangular factors, restoring orthogonality to
/// machine precision for matrices with `κ(B) ≲ 1/√ε`.
pub fn cholqr2(b: &Mat) -> Result<(Mat, Mat)> {
    let _wall = rlra_obs::walltime::scoped_labeled(
        rlra_obs::names::WALL_CHOLQR_SECONDS,
        "rung=\"cholqr2\"",
    );
    let (q1, r1) = cholqr(b)?;
    let (q2, r2) = cholqr(&q1)?;
    Ok((q2, merge_r(&r2, &r1)?))
}

/// CholQR of a short-wide matrix `B` (`ℓ × n`, `ℓ ≤ n`), the paper's LQ
/// adaptation (its footnote 3 and Figure 4): returns `(Q, R)` with `Q`
/// having orthonormal **rows** (`QQᵀ = I`), `R` upper triangular (`ℓ × ℓ`)
/// and `Rᵀ·Q = B`.
///
/// Steps: `G = BBᵀ`, `R̄ᵀR̄ = G`, `Q = R̄⁻ᵀB`.
///
/// # Errors
///
/// Propagates [`rlra_matrix::MatrixError::NotPositiveDefinite`] on
/// breakdown.
pub fn cholqr_rows(b: &Mat) -> Result<(Mat, Mat)> {
    let _wall = rlra_obs::walltime::scoped_labeled(
        rlra_obs::names::WALL_CHOLQR_SECONDS,
        "rung=\"cholqr_rows\"",
    );
    let l = b.rows();
    let mut g = Mat::zeros(l, l);
    syrk(1.0, b.as_ref(), Trans::No, 0.0, g.as_mut(), UpLo::Upper)?;
    mirror_upper(&mut g);
    let r = cholesky_upper_guarded(&g)?;
    let mut q = b.clone();
    trsm(
        Side::Left,
        UpLo::Upper,
        Trans::Yes,
        Diag::NonUnit,
        1.0,
        r.as_ref(),
        q.as_mut(),
    )?;
    Ok((q, r))
}

/// Short-wide CholQR with one full reorthogonalization — the exact
/// configuration the paper uses to stabilize the power iteration
/// ("we orthogonalized both sampled matrices using CholQR with one full
/// reorthogonalization", §6).
pub fn cholqr_rows2(b: &Mat) -> Result<(Mat, Mat)> {
    let _wall = rlra_obs::walltime::scoped_labeled(
        rlra_obs::names::WALL_CHOLQR_SECONDS,
        "rung=\"cholqr_rows2\"",
    );
    let (q1, r1) = cholqr_rows(b)?;
    let (q2, r2) = cholqr_rows(&q1)?;
    // B = R1^T Q1 and Q1 = R2^T Q2 ⟹ B = (R2 R1)^T Q2.
    Ok((q2, merge_r(&r2, &r1)?))
}

/// Diagonal shift for a Gram matrix: `scale · ε · trace(G)`.
///
/// `trace(G) = ‖B‖_F²` bounds `‖B‖₂²` from above, so the shift follows
/// the shifted-CholeskyQR recipe (a small multiple of `u·‖B‖₂²`) without
/// needing a norm estimate; `scale` absorbs the dimension-dependent
/// constant and is a policy knob.
fn gram_shift(g: &Mat, scale: f64) -> f64 {
    let n = g.rows();
    let trace: f64 = (0..n).map(|i| g[(i, i)]).sum();
    scale * f64::EPSILON * trace.max(f64::MIN_POSITIVE)
}

/// One shifted CholQR pass of a tall-skinny `B`: Cholesky-factors
/// `G + σI` instead of `G`, trading exactness of `R` for a positive
/// definite factorization on nearly rank-deficient input.
fn shifted_pass(b: &Mat, shift_scale: f64) -> Result<(Mat, Mat)> {
    let n = b.cols();
    let mut g = Mat::zeros(n, n);
    syrk(1.0, b.as_ref(), Trans::Yes, 0.0, g.as_mut(), UpLo::Upper)?;
    mirror_upper(&mut g);
    let shift = gram_shift(&g, shift_scale);
    for i in 0..n {
        g[(i, i)] += shift;
    }
    let r = cholesky_upper(&g)?;
    let mut q = b.clone();
    trsm(
        Side::Right,
        UpLo::Upper,
        Trans::No,
        Diag::NonUnit,
        1.0,
        r.as_ref(),
        q.as_mut(),
    )?;
    Ok((q, r))
}

/// One shifted CholQR pass of a short-wide `B` (rows flavor).
fn shifted_pass_rows(b: &Mat, shift_scale: f64) -> Result<(Mat, Mat)> {
    let l = b.rows();
    let mut g = Mat::zeros(l, l);
    syrk(1.0, b.as_ref(), Trans::No, 0.0, g.as_mut(), UpLo::Upper)?;
    mirror_upper(&mut g);
    let shift = gram_shift(&g, shift_scale);
    for i in 0..l {
        g[(i, i)] += shift;
    }
    let r = cholesky_upper(&g)?;
    let mut q = b.clone();
    trsm(
        Side::Left,
        UpLo::Upper,
        Trans::Yes,
        Diag::NonUnit,
        1.0,
        r.as_ref(),
        q.as_mut(),
    )?;
    Ok((q, r))
}

/// Smallest acceptable diagonal of the first corrective pass. The shifted
/// pass maps a direction with singular value `σ` to `σ/√(σ² + σ_shift)`
/// in `Q₁`: genuine data that plain CholQR merely *rounded away*
/// (`σ ≳ √ε·‖B‖`) lands at `≳ √(1/scale) ≫ √ε`, while a direction that
/// is pure round-off noise (`σ ~ ε·‖B‖`, i.e. exact rank deficiency)
/// lands near `√ε`. A threshold a few decades above `√ε ≈ 1.5e-8`
/// separates the two regimes.
const SHIFTED_MIN_DIAG: f64 = 1e-6;

/// Rejects a corrective-pass `R` whose diagonal shows the shifted pass
/// normalized a noise direction (deficiency below the shift level).
fn check_rescue_diag(r: &Mat) -> Result<()> {
    for i in 0..r.rows() {
        let d = r[(i, i)].abs();
        if d < SHIFTED_MIN_DIAG {
            return Err(rlra_matrix::MatrixError::NotPositiveDefinite { pivot: i, value: d });
        }
    }
    Ok(())
}

/// Shifted CholQR with full reorthogonalization, the breakdown-tolerant
/// rung of the orthogonalization fallback ladder (tall-skinny flavor):
/// a shifted first pass that cannot break down on merely *near*-singular
/// input, followed by two plain corrective passes (the shifted-CholeskyQR3
/// recipe — one pass leaves `ε·κ(Q₁)²` orthogonality error, the second
/// takes it to machine precision), with all triangular factors merged so
/// `Q·R = B` still holds (the shift perturbs only the intermediates).
///
/// # Errors
///
/// Returns [`rlra_matrix::MatrixError::NotPositiveDefinite`] when `B` is
/// rank deficient *below* the shift level (the shifted pass would then
/// normalize round-off noise, detected by a collapsed diagonal in the
/// first corrective pass); callers escalate to Householder QR.
pub fn shifted_cholqr2(b: &Mat, shift_scale: f64) -> Result<(Mat, Mat)> {
    let _wall = rlra_obs::walltime::scoped_labeled(
        rlra_obs::names::WALL_CHOLQR_SECONDS,
        "rung=\"shifted_cholqr2\"",
    );
    let (q1, r1) = shifted_pass(b, shift_scale)?;
    let (q2, r2) = cholqr(&q1)?;
    check_rescue_diag(&r2)?;
    let (q3, r3) = cholqr(&q2)?;
    Ok((q3, merge_r(&r3, &merge_r(&r2, &r1)?)?))
}

/// Shifted CholQR with full reorthogonalization, short-wide flavor — the
/// rows companion of [`shifted_cholqr2`]: `(Q, R)` with orthonormal rows
/// and `Rᵀ·Q = B`.
///
/// # Errors
///
/// Returns [`rlra_matrix::MatrixError::NotPositiveDefinite`] when `B` is
/// rank deficient below the shift level.
pub fn shifted_cholqr_rows2(b: &Mat, shift_scale: f64) -> Result<(Mat, Mat)> {
    let _wall = rlra_obs::walltime::scoped_labeled(
        rlra_obs::names::WALL_CHOLQR_SECONDS,
        "rung=\"shifted_cholqr_rows2\"",
    );
    let (q1, r1) = shifted_pass_rows(b, shift_scale)?;
    let (q2, r2) = cholqr_rows(&q1)?;
    check_rescue_diag(&r2)?;
    let (q3, r3) = cholqr_rows(&q2)?;
    Ok((q3, merge_r(&r3, &merge_r(&r2, &r1)?)?))
}

/// Copies the upper triangle into the lower one, making `g` symmetric.
fn mirror_upper(g: &mut Mat) {
    let n = g.rows();
    for j in 0..n {
        for i in 0..j {
            let v = g[(i, j)];
            g[(j, i)] = v;
        }
    }
}

/// Product `R₂·R₁` of two upper-triangular factors (stays upper
/// triangular).
fn merge_r(r2: &Mat, r1: &Mat) -> Result<Mat> {
    let mut r = Mat::zeros(r2.rows(), r1.cols());
    gemm(
        1.0,
        r2.as_ref(),
        Trans::No,
        r1.as_ref(),
        Trans::No,
        0.0,
        r.as_mut(),
    )?;
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::orthogonality_error;
    use rlra_blas::naive::gemm_ref;
    use rlra_matrix::ops::max_abs_diff;
    use rlra_matrix::MatrixError;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    #[test]
    fn tall_skinny_reconstructs() {
        let b = pseudo(50, 8, 1);
        let (q, r) = cholqr(&b).unwrap();
        let qr = gemm_ref(&q, Trans::No, &r, Trans::No);
        assert!(max_abs_diff(&qr, &b).unwrap() < 1e-10);
        assert!(orthogonality_error(&q) < 1e-10);
    }

    #[test]
    fn tall_skinny_r_upper_triangular() {
        let b = pseudo(30, 6, 2);
        let (_q, r) = cholqr(&b).unwrap();
        for j in 0..6 {
            for i in j + 1..6 {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholqr2_improves_orthogonality_on_graded_matrix() {
        // Columns with widely varying scales stress single-pass CholQR.
        let mut b = pseudo(60, 6, 3);
        for j in 0..6 {
            let s = 10f64.powi(-(j as i32));
            for x in b.col_mut(j) {
                *x *= s;
            }
        }
        let (q1, _) = cholqr(&b).unwrap();
        let (q2, r2) = cholqr2(&b).unwrap();
        assert!(orthogonality_error(&q2) <= orthogonality_error(&q1) + 1e-15);
        assert!(orthogonality_error(&q2) < 1e-12);
        let qr = gemm_ref(&q2, Trans::No, &r2, Trans::No);
        assert!(max_abs_diff(&qr, &b).unwrap() < 1e-10);
    }

    #[test]
    fn short_wide_rows_orthonormal() {
        let b = pseudo(6, 40, 4);
        let (q, r) = cholqr_rows(&b).unwrap();
        assert_eq!(q.shape(), (6, 40));
        assert_eq!(r.shape(), (6, 6));
        // Q Q^T = I.
        let qt = q.transpose();
        assert!(orthogonality_error(&qt) < 1e-10);
        // R^T Q = B.
        let rtq = gemm_ref(&r, Trans::Yes, &q, Trans::No);
        assert!(max_abs_diff(&rtq, &b).unwrap() < 1e-10);
    }

    #[test]
    fn short_wide_reorthogonalized() {
        let mut b = pseudo(5, 35, 5);
        for i in 0..5 {
            let s = 10f64.powi(-(i as i32 * 2));
            // Scale rows to grade the conditioning.
            for j in 0..35 {
                b[(i, j)] *= s;
            }
        }
        let (q, r) = cholqr_rows2(&b).unwrap();
        let qt = q.transpose();
        assert!(orthogonality_error(&qt) < 1e-12);
        let rtq = gemm_ref(&r, Trans::Yes, &q, Trans::No);
        assert!(max_abs_diff(&rtq, &b).unwrap() < 1e-9);
    }

    #[test]
    fn breakdown_on_rank_deficiency() {
        // Exactly repeated column ⇒ singular Gram matrix.
        let mut b = pseudo(20, 4, 6);
        let c = b.col(0).to_vec();
        b.col_mut(3).copy_from_slice(&c);
        assert!(matches!(
            cholqr(&b),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn shifted_cholqr2_survives_near_rank_deficiency() {
        // col3 = col0 + 1e-9·noise: the Gram matrix squares that to a
        // 1e-18 pivot, below ε·trace — plain CholQR breaks down, the
        // shifted rung does not.
        let mut b = pseudo(40, 4, 9);
        let noise = pseudo(40, 1, 10);
        let c: Vec<f64> = b
            .col(0)
            .iter()
            .zip(noise.col(0))
            .map(|(x, e)| x + 1e-9 * e)
            .collect();
        b.col_mut(3).copy_from_slice(&c);
        assert!(matches!(
            cholqr(&b),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
        let (q, r) = shifted_cholqr2(&b, 100.0).unwrap();
        assert!(orthogonality_error(&q) < 1e-10);
        let qr = gemm_ref(&q, Trans::No, &r, Trans::No);
        assert!(max_abs_diff(&qr, &b).unwrap() < 1e-9);
    }

    #[test]
    fn shifted_cholqr_rows2_survives_near_rank_deficiency() {
        let mut b = pseudo(4, 30, 11);
        let noise = pseudo(1, 30, 14);
        let r0: Vec<f64> = (0..30).map(|j| b[(0, j)]).collect();
        for (j, v) in r0.iter().enumerate() {
            b[(3, j)] = v + 1e-9 * noise[(0, j)];
        }
        assert!(matches!(
            cholqr_rows(&b),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
        let (q, r) = shifted_cholqr_rows2(&b, 100.0).unwrap();
        let qt = q.transpose();
        assert!(orthogonality_error(&qt) < 1e-10);
        let rtq = gemm_ref(&r, Trans::Yes, &q, Trans::No);
        assert!(max_abs_diff(&rtq, &b).unwrap() < 1e-9);
    }

    #[test]
    fn shifted_cholqr2_still_breaks_on_exact_deficiency() {
        // Exact duplicate column: the shifted first pass yields an exactly
        // singular Q1 and the reorthogonalization pass must report it.
        let mut b = pseudo(20, 4, 12);
        let c = b.col(0).to_vec();
        b.col_mut(3).copy_from_slice(&c);
        assert!(matches!(
            shifted_cholqr2(&b, 100.0),
            Err(MatrixError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn shifted_cholqr2_matches_cholqr2_on_well_conditioned_input() {
        // On healthy input the shift is an O(ε) perturbation of R; Q and
        // the reconstruction agree with the unshifted path to fp noise.
        let b = pseudo(50, 6, 13);
        let (qs, rs) = shifted_cholqr2(&b, 100.0).unwrap();
        let (qp, rp) = cholqr2(&b).unwrap();
        assert!(max_abs_diff(&qs, &qp).unwrap() < 1e-10);
        assert!(max_abs_diff(&rs, &rp).unwrap() < 1e-10);
    }

    #[test]
    fn cholqr_matches_householder_span() {
        // Q from CholQR and from HHQR must span the same subspace:
        // P = Q_c Q_c^T equals Q_h Q_h^T.
        let b = pseudo(25, 5, 7);
        let (qc, _) = cholqr(&b).unwrap();
        let qh = crate::householder::form_q(&b);
        let pc = gemm_ref(&qc, Trans::No, &qc, Trans::Yes);
        let ph = gemm_ref(&qh, Trans::No, &qh, Trans::Yes);
        assert!(max_abs_diff(&pc, &ph).unwrap() < 1e-9);
    }

    #[test]
    fn orthonormal_input_gives_identity_r() {
        let b = pseudo(40, 5, 8);
        let (q, _) = cholqr(&b).unwrap();
        let (_, r2) = cholqr(&q).unwrap();
        assert!(max_abs_diff(&r2, &Mat::identity(5)).unwrap() < 1e-12);
    }
}
