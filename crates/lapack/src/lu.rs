//! Dense LU factorization with partial pivoting (LAPACK `getrf`/`getrs`).
//!
//! Used for the small dense systems the hierarchical solver and the CUR
//! linking matrix produce (leaf blocks, Woodbury capacitance systems) —
//! general nonsymmetric matrices where Cholesky does not apply.

use rlra_matrix::{Mat, MatrixError, Result};

/// A partially pivoted LU factorization `P·A = L·U` with unit-diagonal
/// `L` and `U` packed into one matrix.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed factors: `U` on and above the diagonal, the multipliers of
    /// `L` below it.
    pub factors: Mat,
    /// Row-swap sequence: at step `k`, rows `k` and `pivots[k]` were
    /// exchanged.
    pub pivots: Vec<usize>,
}

/// Factors the square matrix `a` as `P·A = L·U` with partial pivoting.
///
/// # Errors
///
/// Returns [`MatrixError::SingularDiagonal`] if a pivot column is exactly
/// zero below the diagonal (the matrix is singular to working precision).
pub fn lu_factor(a: &Mat) -> Result<Lu> {
    let n = a.rows();
    if a.cols() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "lu_factor",
            expected: "square matrix".into(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    let mut lu = a.clone();
    let mut pivots = Vec::with_capacity(n);
    for k in 0..n {
        // Partial pivot: largest magnitude in column k at or below row k.
        let mut piv = k;
        let mut best = lu[(k, k)].abs();
        for i in k + 1..n {
            if lu[(i, k)].abs() > best {
                best = lu[(i, k)].abs();
                piv = i;
            }
        }
        if best == 0.0 {
            return Err(MatrixError::SingularDiagonal { index: k });
        }
        pivots.push(piv);
        if piv != k {
            for j in 0..n {
                let t = lu[(k, j)];
                lu[(k, j)] = lu[(piv, j)];
                lu[(piv, j)] = t;
            }
        }
        // Eliminate below the pivot; store the multipliers.
        let pivot_val = lu[(k, k)];
        for i in k + 1..n {
            let f = lu[(i, k)] / pivot_val;
            lu[(i, k)] = f;
            if f != 0.0 {
                for j in k + 1..n {
                    let v = lu[(k, j)];
                    lu[(i, j)] -= f * v;
                }
            }
        }
    }
    Ok(Lu {
        factors: lu,
        pivots,
    })
}

impl Lu {
    /// Order of the factorization.
    pub fn order(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A·X = B` for a multi-column right-hand side using the
    /// stored factors (LAPACK `getrs`).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `b.rows()` does not
    /// match the factorization order.
    pub fn solve_mat(&self, b: &Mat) -> Result<Mat> {
        let n = self.order();
        if b.rows() != n {
            return Err(MatrixError::DimensionMismatch {
                op: "Lu::solve_mat",
                expected: format!("b.rows() == {n}"),
                found: format!("b.rows() == {}", b.rows()),
            });
        }
        let mut x = b.clone();
        // Apply the row swaps.
        for (k, &piv) in self.pivots.iter().enumerate() {
            if piv != k {
                for j in 0..x.cols() {
                    let t = x[(k, j)];
                    x[(k, j)] = x[(piv, j)];
                    x[(piv, j)] = t;
                }
            }
        }
        // Forward substitution with unit-lower L.
        for j in 0..x.cols() {
            for k in 0..n {
                let xk = x[(k, j)];
                if xk != 0.0 {
                    for i in k + 1..n {
                        let l = self.factors[(i, k)];
                        x[(i, j)] -= l * xk;
                    }
                }
            }
            // Backward substitution with U.
            for i in (0..n).rev() {
                let mut s = x[(i, j)];
                for c in i + 1..n {
                    s -= self.factors[(i, c)] * x[(c, j)];
                }
                x[(i, j)] = s / self.factors[(i, i)];
            }
        }
        Ok(x)
    }

    /// Solves `A·x = b` for one right-hand side.
    ///
    /// # Errors
    ///
    /// As for [`Lu::solve_mat`].
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let bm = Mat::from_col_major(b.len(), 1, b.to_vec())?;
        Ok(self.solve_mat(&bm)?.into_vec())
    }
}

/// One-shot dense solve `A·X = B`.
///
/// # Errors
///
/// As for [`lu_factor`] and [`Lu::solve_mat`].
pub fn lu_solve(a: &Mat, b: &Mat) -> Result<Mat> {
    lu_factor(a)?.solve_mat(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_blas::naive::gemm_ref;
    use rlra_blas::Trans;
    use rlra_matrix::ops::max_abs_diff;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    #[test]
    fn solves_random_system() {
        let a = pseudo(12, 12, 1);
        let x_true = pseudo(12, 3, 2);
        let b = gemm_ref(&a, Trans::No, &x_true, Trans::No);
        let x = lu_solve(&a, &b).unwrap();
        assert!(max_abs_diff(&x, &x_true).unwrap() < 1e-10);
    }

    #[test]
    fn solve_vec_matches_mat() {
        let a = pseudo(8, 8, 3);
        let b: Vec<f64> = (0..8).map(|i| i as f64 - 3.0).collect();
        let lu = lu_factor(&a).unwrap();
        let x1 = lu.solve(&b).unwrap();
        let bm = Mat::from_col_major(8, 1, b).unwrap();
        let x2 = lu.solve_mat(&bm).unwrap();
        assert_eq!(x1, x2.into_vec());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // a[0,0] = 0 forces a row swap immediately.
        let mut a = pseudo(6, 6, 4);
        a[(0, 0)] = 0.0;
        let x_true = pseudo(6, 1, 5);
        let b = gemm_ref(&a, Trans::No, &x_true, Trans::No);
        let x = lu_solve(&a, &b).unwrap();
        assert!(max_abs_diff(&x, &x_true).unwrap() < 1e-10);
    }

    #[test]
    fn detects_singularity() {
        let mut a = pseudo(5, 5, 6);
        // Make row 3 a copy of row 1 => singular.
        for j in 0..5 {
            let v = a[(1, j)];
            a[(3, j)] = v;
        }
        assert!(matches!(
            lu_factor(&a),
            Err(MatrixError::SingularDiagonal { .. })
        ));
    }

    #[test]
    fn identity_is_its_own_factorization() {
        let lu = lu_factor(&Mat::identity(4)).unwrap();
        assert!(max_abs_diff(&lu.factors, &Mat::identity(4)).unwrap() < 1e-15);
        let b: Vec<f64> = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(lu.solve(&b).unwrap(), b);
    }

    #[test]
    fn rejects_non_square_and_mismatched_rhs() {
        assert!(lu_factor(&Mat::zeros(3, 4)).is_err());
        let lu = lu_factor(&Mat::identity(3)).unwrap();
        assert!(lu.solve_mat(&Mat::zeros(4, 1)).is_err());
    }

    #[test]
    fn factors_reconstruct_pa() {
        let a = pseudo(7, 7, 7);
        let lu = lu_factor(&a).unwrap();
        let n = 7;
        // Build L and U from the packed factors.
        let l = Mat::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                lu.factors[(i, j)]
            } else {
                0.0
            }
        });
        let u = Mat::from_fn(n, n, |i, j| if i <= j { lu.factors[(i, j)] } else { 0.0 });
        let lu_prod = gemm_ref(&l, Trans::No, &u, Trans::No);
        // Apply the swap sequence to A.
        let mut pa = a.clone();
        for (k, &piv) in lu.pivots.iter().enumerate() {
            if piv != k {
                for j in 0..n {
                    let t = pa[(k, j)];
                    pa[(k, j)] = pa[(piv, j)];
                    pa[(piv, j)] = t;
                }
            }
        }
        assert!(max_abs_diff(&lu_prod, &pa).unwrap() < 1e-11);
    }
}
