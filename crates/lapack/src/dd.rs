//! Double-double ("doubled precision") arithmetic.
//!
//! The paper's §11 lists *mixed-precision CholQR* (Yamazaki, Tomov,
//! Dongarra, SIAM J. Sci. Comput. 37, 2015 — reference \[23\]) among the
//! stabilization strategies under study: accumulating the Gram matrix
//! and running the Cholesky factorization in doubled precision removes
//! the `κ(B)²` squaring that makes plain CholQR break down. This module
//! provides the ~31-significant-digit double-double scalar those kernels
//! need, built on the classical error-free transformations (Knuth's
//! TwoSum, Dekker's split/TwoProd).

/// A double-double value `hi + lo` with `|lo| ≤ ulp(hi)/2`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dd {
    /// Leading component.
    pub hi: f64,
    /// Trailing error component.
    pub lo: f64,
}

/// Error-free sum: `a + b = s + e` exactly.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let e = (a - (s - bb)) + (b - bb);
    (s, e)
}

/// Error-free sum for `|a| ≥ |b|` (one branch cheaper).
#[inline]
fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let e = b - (s - a);
    (s, e)
}

/// Dekker's split of a double into two 26-bit halves.
#[inline]
fn split(a: f64) -> (f64, f64) {
    const SPLITTER: f64 = 134_217_729.0; // 2^27 + 1
    let t = SPLITTER * a;
    let hi = t - (t - a);
    let lo = a - hi;
    (hi, lo)
}

/// Error-free product: `a * b = p + e` exactly.
#[inline]
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let (ah, al) = split(a);
    let (bh, bl) = split(b);
    let e = ((ah * bh - p) + ah * bl + al * bh) + al * bl;
    (p, e)
}

// The arithmetic methods intentionally mirror the operator names without
// implementing the operator traits: every call site should read as
// explicit doubled-precision arithmetic, not blend in with f64 math.
#[allow(clippy::should_implement_trait)]
impl Dd {
    /// Zero.
    pub const ZERO: Dd = Dd { hi: 0.0, lo: 0.0 };

    /// Lifts a double.
    #[inline]
    pub fn from_f64(x: f64) -> Dd {
        Dd { hi: x, lo: 0.0 }
    }

    /// Rounds back to double.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.hi + self.lo
    }

    /// `self + other`.
    #[inline]
    pub fn add(self, other: Dd) -> Dd {
        let (s, e) = two_sum(self.hi, other.hi);
        let e = e + self.lo + other.lo;
        let (hi, lo) = quick_two_sum(s, e);
        Dd { hi, lo }
    }

    /// `self - other`.
    #[inline]
    pub fn sub(self, other: Dd) -> Dd {
        self.add(Dd {
            hi: -other.hi,
            lo: -other.lo,
        })
    }

    /// `self * other`.
    #[inline]
    pub fn mul(self, other: Dd) -> Dd {
        let (p, e) = two_prod(self.hi, other.hi);
        let e = e + self.hi * other.lo + self.lo * other.hi;
        let (hi, lo) = quick_two_sum(p, e);
        Dd { hi, lo }
    }

    /// Adds the exact product of two doubles (fused multiply-accumulate
    /// in doubled precision) — the inner-loop operation of the
    /// mixed-precision Gram matrix.
    #[inline]
    pub fn fma_f64(self, a: f64, b: f64) -> Dd {
        let (p, e) = two_prod(a, b);
        self.add(Dd { hi: p, lo: e })
    }

    /// `self / other` (one Newton refinement on the double quotient).
    #[inline]
    pub fn div(self, other: Dd) -> Dd {
        let q1 = self.hi / other.hi;
        // r = self - q1*other, computed in doubled precision.
        let r = self.sub(other.mul(Dd::from_f64(q1)));
        let q2 = r.hi / other.hi;
        let (hi, lo) = quick_two_sum(q1, q2);
        Dd { hi, lo }
    }

    /// `sqrt(self)` (one Newton refinement on the double root).
    #[inline]
    pub fn sqrt(self) -> Dd {
        if self.hi <= 0.0 {
            return Dd {
                hi: self.hi.sqrt(),
                lo: 0.0,
            }; // 0 or NaN propagates
        }
        let s1 = self.hi.sqrt();
        // s = s1 + (self - s1^2) / (2 s1).
        let r = self.sub(Dd::from_f64(s1).mul(Dd::from_f64(s1)));
        let s2 = r.hi / (2.0 * s1);
        let (hi, lo) = quick_two_sum(s1, s2);
        Dd { hi, lo }
    }
}

/// Doubled-precision dot product of two f64 slices: every product and
/// the accumulation are error-free, so the result carries ~106 bits.
pub fn dd_dot(x: &[f64], y: &[f64]) -> Dd {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = Dd::ZERO;
    for (&a, &b) in x.iter().zip(y) {
        acc = acc.fma_f64(a, b);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_error_free() {
        let a = 1.0;
        let b = 1e-20;
        let (s, e) = two_sum(a, b);
        assert_eq!(s, 1.0);
        assert_eq!(e, 1e-20);
    }

    #[test]
    fn two_prod_recovers_rounding_error() {
        let a = 1.0 + f64::EPSILON;
        let b = 1.0 - f64::EPSILON;
        let (p, e) = two_prod(a, b);
        // a*b = 1 - eps^2 exactly; p rounds to 1.0, e = -eps^2.
        assert_eq!(p + e, 1.0 - f64::EPSILON * f64::EPSILON);
    }

    #[test]
    fn add_beats_double_precision() {
        // (1 + 1e-20) - 1 = 1e-20 survives in dd, vanishes in f64.
        let one = Dd::from_f64(1.0);
        let tiny = Dd::from_f64(1e-20);
        let r = one.add(tiny).sub(one);
        assert_eq!(r.to_f64(), 1e-20);
        assert_eq!((1.0f64 + 1e-20) - 1.0, 0.0);
    }

    #[test]
    fn mul_and_div_roundtrip() {
        let a = Dd::from_f64(std::f64::consts::PI);
        let b = Dd::from_f64(std::f64::consts::E);
        let r = a.mul(b).div(b);
        assert!((r.to_f64() - std::f64::consts::PI).abs() < 1e-15);
        assert!(r.sub(a).to_f64().abs() < 1e-30);
    }

    #[test]
    fn sqrt_squares_back() {
        let x = Dd::from_f64(2.0);
        let s = x.sqrt();
        let back = s.mul(s).sub(x);
        assert!(back.to_f64().abs() < 1e-30, "residual {}", back.to_f64());
    }

    #[test]
    fn sqrt_of_zero_and_negative() {
        assert_eq!(Dd::ZERO.sqrt().to_f64(), 0.0);
        assert!(Dd::from_f64(-1.0).sqrt().to_f64().is_nan());
    }

    #[test]
    fn dd_dot_cancellation() {
        // x . y with massive cancellation: exact answer is 2, f64 loses it.
        let big = 1e17;
        let x = vec![big, 1.0, -big, 1.0];
        let y = vec![1.0, 1.0, 1.0, 1.0];
        let exact = dd_dot(&x, &y).to_f64();
        assert_eq!(exact, 2.0);
    }

    #[test]
    fn dd_dot_matches_f64_when_benign() {
        let x: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let y: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).cos()).collect();
        let plain = rlra_blas::dot(&x, &y);
        let dd = dd_dot(&x, &y).to_f64();
        assert!((plain - dd).abs() < 1e-13);
    }
}
