//! One-sided Jacobi SVD.
//!
//! Used by the workspace to (a) generate test matrices with prescribed
//! singular spectra (Table 1 of the paper), and (b) compute exact
//! reference values `σₖ₊₁` against which the randomized approximation
//! error bound `‖AP − QR‖ ≤ c(p, Ω)^{1/(2q+1)} σₖ₊₁` is checked.
//!
//! One-sided Jacobi applies plane rotations to the columns of `A` until
//! all pairs are numerically orthogonal, yielding `A·V = U·Σ`. It is slow
//! (`O(n²m)` per sweep) but simple and accurate — exactly right for the
//! modest `n ≤ ~500` the reference computations need.

use rlra_matrix::{Mat, MatrixError, Result};

/// Full thin SVD `A = U·Σ·Vᵀ` of an `m × n` matrix.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors (`m × r`, orthonormal columns),
    /// `r = min(m, n)`.
    pub u: Mat,
    /// Singular values in non-increasing order (length `r`).
    pub sigma: Vec<f64>,
    /// Right singular vectors (`n × r`, orthonormal columns).
    pub v: Mat,
}

impl Svd {
    /// Reconstructs `A ≈ U·Σ·Vᵀ` (exact up to roundoff for the thin SVD).
    pub fn reconstruct(&self) -> Mat {
        let r = self.sigma.len();
        let us = Mat::from_fn(self.u.rows(), r, |i, j| self.u[(i, j)] * self.sigma[j]);
        let mut out = Mat::zeros(self.u.rows(), self.v.rows());
        rlra_blas::gemm(
            1.0,
            us.as_ref(),
            rlra_blas::Trans::No,
            self.v.as_ref(),
            rlra_blas::Trans::Yes,
            0.0,
            out.as_mut(),
        )
        .expect("shapes consistent");
        out
    }

    /// The best rank-`k` approximation `U₁:ₖ Σ₁:ₖ V₁:ₖᵀ` (Eckart–Young).
    pub fn truncate(&self, k: usize) -> Mat {
        let k = k.min(self.sigma.len());
        let us = Mat::from_fn(self.u.rows(), k, |i, j| self.u[(i, j)] * self.sigma[j]);
        let vk = self.v.columns(0, k);
        let mut out = Mat::zeros(self.u.rows(), self.v.rows());
        rlra_blas::gemm(
            1.0,
            us.as_ref(),
            rlra_blas::Trans::No,
            vk.as_ref(),
            rlra_blas::Trans::Yes,
            0.0,
            out.as_mut(),
        )
        .expect("shapes consistent");
        out
    }
}

/// Maximum number of Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 60;

/// Computes the thin SVD of `a` by one-sided Jacobi rotations.
///
/// For `m < n` the transpose is factored and the roles of `U`/`V`
/// swapped, so any shape is accepted.
///
/// # Errors
///
/// Returns [`MatrixError::NoConvergence`] if the sweep limit is exhausted
/// (does not occur for the matrix sizes used in this workspace).
pub fn svd_jacobi(a: &Mat) -> Result<Svd> {
    if a.rows() < a.cols() {
        let t = svd_jacobi(&a.transpose())?;
        return Ok(Svd {
            u: t.v,
            sigma: t.sigma,
            v: t.u,
        });
    }
    let (m, n) = a.shape();
    let mut u = a.clone(); // becomes U·Σ column-wise
    let mut v = Mat::identity(n);
    let eps = f64::EPSILON;
    // Columns whose norm has fallen below roundoff relative to the matrix
    // scale are numerically zero; rotating them against each other only
    // churns noise and stalls convergence on rank-deficient inputs.
    let fnorm = rlra_matrix::norms::frobenius(a.as_ref());
    let dead = (eps * fnorm) * (eps * fnorm);

    let mut converged = false;
    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0usize;
        for p in 0..n {
            for q in p + 1..n {
                // Gram entries of the (p, q) column pair.
                let app = rlra_blas::dot(u.col(p), u.col(p));
                let aqq = rlra_blas::dot(u.col(q), u.col(q));
                let apq = rlra_blas::dot(u.col(p), u.col(q));
                if apq.abs() <= eps * (app * aqq).sqrt() || apq == 0.0 || app <= dead || aqq <= dead
                {
                    continue;
                }
                off += 1;
                // Jacobi rotation that annihilates the (p, q) Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                rotate_cols(&mut u, p, q, c, s, m);
                rotate_cols(&mut v, p, q, c, s, n);
            }
        }
        if off == 0 {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(MatrixError::NoConvergence {
            op: "svd_jacobi",
            iterations: MAX_SWEEPS,
        });
    }

    // Extract singular values and normalize U's columns.
    let mut order: Vec<usize> = (0..n).collect();
    let norms: Vec<f64> = (0..n).map(|j| rlra_blas::nrm2(u.col(j))).collect();
    order.sort_by(|&i, &j| norms[j].partial_cmp(&norms[i]).expect("norms are finite"));

    let mut uu = Mat::zeros(m, n);
    let mut vv = Mat::zeros(n, n);
    let mut sigma = Vec::with_capacity(n);
    for (dst, &src) in order.iter().enumerate() {
        let s = norms[src];
        sigma.push(s);
        if s > 0.0 {
            for (i, &x) in u.col(src).iter().enumerate() {
                uu[(i, dst)] = x / s;
            }
        } else {
            // Null column: any unit vector orthogonal to the rest would
            // do; leave zero (rank-deficient tail is rarely consumed).
            uu[(dst.min(m - 1), dst)] = 1.0;
        }
        for (i, &x) in v.col(src).iter().enumerate() {
            vv[(i, dst)] = x;
        }
    }
    Ok(Svd {
        u: uu,
        sigma,
        v: vv,
    })
}

/// Applies the rotation `[c, s; -s, c]` to columns `p`, `q` of `x`.
fn rotate_cols(x: &mut Mat, p: usize, q: usize, c: f64, s: f64, rows: usize) {
    let (left, mut right) = x.as_mut().split_at_col(q);
    let mut left = left;
    let cp = left.col_mut(p);
    let cq = right.col_mut(0);
    for i in 0..rows {
        let xp = cp[i];
        let xq = cq[i];
        cp[i] = c * xp - s * xq;
        cq[i] = s * xp + c * xq;
    }
}

/// Convenience: singular values only, in non-increasing order.
pub fn singular_values(a: &Mat) -> Result<Vec<f64>> {
    Ok(svd_jacobi(a)?.sigma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::householder::{form_q, orthogonality_error};
    use rlra_matrix::norms::spectral_norm_mat;
    use rlra_matrix::ops::{max_abs_diff, sub};

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    fn with_spectrum(m: usize, n: usize, sigma: &[f64], seed: u64) -> Mat {
        let u = form_q(&pseudo(m, n, seed));
        let v = form_q(&pseudo(n, n, seed + 1));
        let us = Mat::from_fn(m, n, |i, j| u[(i, j)] * sigma[j]);
        let mut a = Mat::zeros(m, n);
        rlra_blas::gemm(
            1.0,
            us.as_ref(),
            rlra_blas::Trans::No,
            v.as_ref(),
            rlra_blas::Trans::Yes,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        a
    }

    #[test]
    fn diagonal_matrix_recovers_spectrum() {
        let a = Mat::from_diag(&[3.0, 1.0, 2.0]);
        let svd = svd_jacobi(&a).unwrap();
        assert!((svd.sigma[0] - 3.0).abs() < 1e-12);
        assert!((svd.sigma[1] - 2.0).abs() < 1e-12);
        assert!((svd.sigma[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prescribed_spectrum_recovered() {
        let sigma: Vec<f64> = (0..8).map(|i| (i as f64 + 1.0).powi(-2)).collect();
        let a = with_spectrum(20, 8, &sigma, 1);
        let got = singular_values(&a).unwrap();
        for (g, e) in got.iter().zip(&sigma) {
            assert!((g - e).abs() < 1e-10 * (1.0 + e), "got {g}, expected {e}");
        }
    }

    #[test]
    fn factors_orthonormal_and_reconstruct() {
        let a = pseudo(15, 9, 2);
        let svd = svd_jacobi(&a).unwrap();
        assert!(orthogonality_error(&svd.u) < 1e-10);
        assert!(orthogonality_error(&svd.v) < 1e-10);
        assert!(max_abs_diff(&svd.reconstruct(), &a).unwrap() < 1e-10);
    }

    #[test]
    fn wide_matrix_handled_by_transpose() {
        let a = pseudo(6, 14, 3);
        let svd = svd_jacobi(&a).unwrap();
        assert_eq!(svd.u.shape(), (6, 6));
        assert_eq!(svd.v.shape(), (14, 6));
        assert!(max_abs_diff(&svd.reconstruct(), &a).unwrap() < 1e-10);
    }

    #[test]
    fn truncation_is_eckart_young_optimal() {
        let sigma: Vec<f64> = (0..10).map(|i| 2f64.powi(-i)).collect();
        let a = with_spectrum(25, 10, &sigma, 4);
        let svd = svd_jacobi(&a).unwrap();
        for k in [1, 3, 5] {
            let ak = svd.truncate(k);
            let err = spectral_norm_mat(&sub(&a, &ak).unwrap());
            assert!(
                (err - sigma[k]).abs() < 1e-8,
                "rank-{k} error {err} should equal sigma_{}={}",
                k + 1,
                sigma[k]
            );
        }
    }

    #[test]
    fn singular_values_sorted_descending() {
        let a = pseudo(12, 12, 5);
        let s = singular_values(&a).unwrap();
        for w in s.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn rank_deficient_tail_is_zero() {
        let x = pseudo(10, 2, 6);
        let y = pseudo(2, 7, 7);
        let mut a = Mat::zeros(10, 7);
        rlra_blas::gemm(
            1.0,
            x.as_ref(),
            rlra_blas::Trans::No,
            y.as_ref(),
            rlra_blas::Trans::No,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        let s = singular_values(&a).unwrap();
        assert!(s[1] > 1e-8);
        for &v in &s[2..] {
            assert!(v < 1e-10 * s[0]);
        }
    }

    #[test]
    fn spectral_norm_agrees_with_power_iteration() {
        let a = pseudo(18, 11, 8);
        let s = singular_values(&a).unwrap();
        let pn = spectral_norm_mat(&a);
        assert!((s[0] - pn).abs() < 1e-7 * s[0]);
    }
}
