//! Householder QR factorization (the paper's **HHQR**).
//!
//! Implements the LAPACK-style toolchain:
//!
//! - [`larfg`] — generate an elementary reflector,
//! - [`geqr2`] — unblocked panel QR (BLAS-2),
//! - `larft` + block application — compact-WY blocked QR ([`geqrf`]),
//! - [`orgqr`] — form the thin orthogonal factor explicitly,
//! - high-level wrappers [`qr_factor`] / [`form_q`].
//!
//! HHQR is unconditionally stable but BLAS-1/2-bound; the paper measures
//! it at ~5× faster than QP3 and ~30× slower than CholQR on tall-skinny
//! GPU workloads (Figure 7).

use rlra_blas::{gemm, Diag, Side, Trans, UpLo};
use rlra_matrix::{Mat, MatMut, MatrixError, Result};

/// Compact (factored) form of a Householder QR: reflectors stored below
/// the diagonal of `factors`, R on and above it, with scalar factors
/// `taus`.
#[derive(Debug, Clone)]
pub struct HouseholderQr {
    /// `m × n` storage holding R in its upper triangle and the reflector
    /// vectors (implicit leading 1) below the diagonal.
    pub factors: Mat,
    /// Scalar reflector coefficients, one per factored column.
    pub taus: Vec<f64>,
}

/// Generates an elementary Householder reflector for the vector
/// `[alpha, x...]`: returns `(beta, tau)` and overwrites `x` with the tail
/// of `v` (normalized so `v₀ = 1`), such that
/// `(I − τ v vᵀ) [alpha; x] = [beta; 0]`.
pub fn larfg(alpha: f64, x: &mut [f64]) -> (f64, f64) {
    let xnorm = rlra_blas::nrm2(x);
    if xnorm == 0.0 {
        // Already collapsed; H = I.
        return (alpha, 0.0);
    }
    let beta = -(alpha.hypot(xnorm)).copysign(alpha);
    let tau = (beta - alpha) / beta;
    let scale = 1.0 / (alpha - beta);
    for xi in x.iter_mut() {
        *xi *= scale;
    }
    (beta, tau)
}

/// Applies the reflector `H = I − τ v vᵀ` (with `v = [1; v_tail]`) to every
/// column of `c`, i.e. `C ← H·C`.
///
/// `c` must have `v_tail.len() + 1` rows.
pub fn apply_reflector_left(tau: f64, v_tail: &[f64], mut c: MatMut<'_>) {
    if tau == 0.0 {
        return;
    }
    let m = c.rows();
    debug_assert_eq!(m, v_tail.len() + 1);
    for j in 0..c.cols() {
        let cj = c.col_mut(j);
        // w = v^T c_j = c_j[0] + v_tail . c_j[1..]
        let w = cj[0] + rlra_blas::dot(v_tail, &cj[1..]);
        let tw = tau * w;
        cj[0] -= tw;
        rlra_blas::axpy(-tw, v_tail, &mut cj[1..]);
    }
}

/// Unblocked Householder QR of the leading `min(m, n)` columns of `a`
/// (LAPACK `geqr2`): overwrites `a` with R above the diagonal and the
/// reflector tails below it; returns the `tau` coefficients.
pub fn geqr2(mut a: MatMut<'_>) -> Vec<f64> {
    let m = a.rows();
    let n = a.cols();
    let k = m.min(n);
    let mut taus = Vec::with_capacity(k);
    for j in 0..k {
        // Generate reflector for column j below the diagonal.
        let (beta, tau) = {
            let col = a.col_mut(j);
            let (head, tail) = col[j..].split_at_mut(1);
            larfg(head[0], tail)
        };
        a.set(j, j, beta);
        taus.push(tau);
        if j + 1 < n && tau != 0.0 {
            // Copy v tail (borrow checker: the tail lives in column j which
            // we must read while updating columns j+1..).
            let (vcols, rest) = a.reborrow().split_at_col(j + 1);
            let v_tail = &vcols.col(j)[j + 1..];
            let mut rest = rest;
            let trailing = rest.submatrix_mut(j, 0, m - j, n - j - 1);
            apply_reflector_left(tau, v_tail, trailing);
        }
    }
    taus
}

/// Forms the upper-triangular compact-WY factor `T` (`k × k`) for the
/// reflector block `V` stored in `factors[j0.., j0..j0+k]` (LAPACK
/// `larft`, forward columnwise).
fn larft(factors: &Mat, j0: usize, k: usize, taus: &[f64]) -> Mat {
    let m = factors.rows();
    let mut t = Mat::zeros(k, k);
    for i in 0..k {
        let tau = taus[i];
        t[(i, i)] = tau;
        if tau == 0.0 {
            continue;
        }
        // t[0..i, i] = -tau * V[:, 0..i]^T v_i, then T[0..i, i] = T[0..i, 0..i] * that
        let col_i = j0 + i;
        let row0 = j0 + i; // v_i has implicit 1 at row j0+i, tail below
        let mut w = vec![0.0f64; i];
        for (jj, wj) in w.iter_mut().enumerate() {
            let col_j = j0 + jj;
            // V[:, jj]^T v_i over rows row0.. (v_j has implicit 1 at j0+jj,
            // which is above row0, so only stored tails overlap).
            let mut s = factors[(row0, col_j)]; // v_j[row0] * v_i[row0]=1
            for r in row0 + 1..m {
                s += factors[(r, col_j)] * factors[(r, col_i)];
            }
            *wj = -tau * s;
        }
        // T[0..i, i] = T[0..i, 0..i] * w  (upper-triangular T so far)
        for r in 0..i {
            let mut s = 0.0;
            for c in r..i {
                s += t[(r, c)] * w[c];
            }
            t[(r, i)] = s;
        }
    }
    t
}

/// Applies the block reflector `(I − V T Vᵀ)ᵀ = I − V Tᵀ Vᵀ` to `c`
/// (`C ← Qᵀ C` for the panel's Q), where `V` is the unit-lower-trapezoidal
/// reflector block stored in `factors[j0.., j0..j0+k]`.
fn apply_block_reflector_trans(factors: &Mat, j0: usize, k: usize, t: &Mat, mut c: MatMut<'_>) {
    let m = factors.rows();
    let rows = m - j0;
    let n = c.cols();
    debug_assert_eq!(c.rows(), rows);
    if n == 0 || k == 0 {
        return;
    }
    // W = V^T C  (k × n); V is rows×k unit lower trapezoidal.
    let mut w = Mat::zeros(k, n);
    for j in 0..n {
        let cj = c.col(j);
        for i in 0..k {
            let col_i = j0 + i;
            // v_i = [0...0, 1, tail] with the 1 at local row i.
            let mut s = cj[i];
            for r in i + 1..rows {
                s += factors[(j0 + r, col_i)] * cj[r];
            }
            let wj = w.col_mut(j);
            wj[i] = s;
        }
    }
    // W := T^T W
    rlra_blas::trmm(
        Side::Left,
        UpLo::Upper,
        Trans::Yes,
        Diag::NonUnit,
        1.0,
        t.as_ref(),
        w.as_mut(),
    )
    .expect("trmm shapes are consistent by construction");
    // C := C − V W
    for j in 0..n {
        let wj = w.col(j).to_vec();
        let cj = c.col_mut(j);
        for i in 0..k {
            let col_i = j0 + i;
            let wij = wj[i];
            if wij == 0.0 {
                continue;
            }
            cj[i] -= wij;
            for r in i + 1..rows {
                cj[r] -= factors[(j0 + r, col_i)] * wij;
            }
        }
    }
}

/// Default panel width for blocked QR.
pub const QR_BLOCK: usize = 32;

/// Blocked Householder QR (LAPACK `geqrf`): factors `a` in place using
/// compact-WY panel updates so the trailing-matrix work is BLAS-3.
pub fn geqrf(a: &mut Mat) -> Vec<f64> {
    let m = a.rows();
    let n = a.cols();
    let kmax = m.min(n);
    let mut taus = vec![0.0f64; kmax];
    let mut j = 0;
    while j < kmax {
        let nb = QR_BLOCK.min(kmax - j);
        // Panel factorization (BLAS-2).
        {
            let mut view = a.as_mut();
            let panel = view.submatrix_mut(j, j, m - j, nb);
            let panel_taus = geqr2(panel);
            taus[j..j + nb].copy_from_slice(&panel_taus);
        }
        // Trailing update (BLAS-3 via compact WY).
        if j + nb < n {
            let t = larft(a, j, nb, &taus[j..j + nb]);
            let factors_snapshot = a.clone();
            let mut view = a.as_mut();
            let trailing = view.submatrix_mut(j, j + nb, m - j, n - j - nb);
            apply_block_reflector_trans(&factors_snapshot, j, nb, &t, trailing);
        }
        j += nb;
    }
    taus
}

/// Forms the thin orthogonal factor `Q` (`m × k`) from the compact
/// factorization produced by [`geqrf`]/[`geqr2`] (LAPACK `orgqr`).
pub fn orgqr(factors: &Mat, taus: &[f64], k: usize) -> Mat {
    let m = factors.rows();
    let kf = taus.len();
    assert!(k <= kf.max(1) && k <= m, "orgqr: k out of range");
    // Q starts as the leading k columns of the identity and the reflectors
    // are applied in reverse order: Q = H_0 · H_1 ⋯ H_{kf-1} · E_k.
    let mut q = Mat::zeros(m, k);
    for j in 0..k {
        q[(j, j)] = 1.0;
    }
    for j in (0..kf.min(m)).rev() {
        let tau = taus[j];
        if tau == 0.0 {
            continue;
        }
        let v_tail: Vec<f64> = (j + 1..m).map(|r| factors[(r, j)]).collect();
        let mut view = q.as_mut();
        let sub = view.submatrix_mut(j, 0, m - j, k);
        apply_reflector_left(tau, &v_tail, sub);
    }
    q
}

/// Applies `Qᵀ` (from a compact factorization of an `m × kf` panel) to the
/// matrix `c` in place: `C ← Qᵀ C` (LAPACK `ormqr` with `side = Left`,
/// `trans = T`).
pub fn ormqr_left_trans(factors: &Mat, taus: &[f64], c: &mut Mat) -> Result<()> {
    let m = factors.rows();
    if c.rows() != m {
        return Err(MatrixError::DimensionMismatch {
            op: "ormqr_left_trans",
            expected: format!("c.rows() == {m}"),
            found: format!("c.rows() == {}", c.rows()),
        });
    }
    let n = c.cols();
    for (j, &tau) in taus.iter().enumerate() {
        if tau == 0.0 {
            continue;
        }
        let v_tail: Vec<f64> = (j + 1..m).map(|r| factors[(r, j)]).collect();
        let mut view = c.as_mut();
        let sub = view.submatrix_mut(j, 0, m - j, n);
        apply_reflector_left(tau, &v_tail, sub);
    }
    Ok(())
}

/// Convenience wrapper: thin QR factorization `A = Q R` with `Q` of shape
/// `m × min(m,n)` and `R` of shape `min(m,n) × n`.
pub fn qr_factor(a: &Mat) -> (Mat, Mat) {
    let mut f = a.clone();
    let taus = geqrf(&mut f);
    let k = a.rows().min(a.cols());
    let r = Mat::from_fn(k, a.cols(), |i, j| if i <= j { f[(i, j)] } else { 0.0 });
    let q = orgqr(&f, &taus, k);
    (q, r)
}

/// Forms `Q` only (thin, `m × min(m,n)`), discarding `R`.
pub fn form_q(a: &Mat) -> Mat {
    qr_factor(a).0
}

/// Computes the residual `‖QᵀQ − I‖_max`, a convenient orthogonality
/// diagnostic used across the workspace's tests.
pub fn orthogonality_error(q: &Mat) -> f64 {
    let k = q.cols();
    let mut g = Mat::zeros(k, k);
    gemm(
        1.0,
        q.as_ref(),
        Trans::Yes,
        q.as_ref(),
        Trans::No,
        0.0,
        g.as_mut(),
    )
    .expect("shapes consistent");
    let mut worst = 0.0f64;
    for j in 0..k {
        for i in 0..k {
            let target = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((g[(i, j)] - target).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_blas::naive::gemm_ref;
    use rlra_matrix::ops::max_abs_diff;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        })
    }

    #[test]
    fn larfg_annihilates_tail() {
        let mut x = vec![3.0, 4.0];
        let (beta, tau) = larfg(0.0, &mut x);
        // Applying H to the original vector must give [beta, 0, 0].
        let v = [1.0, x[0], x[1]];
        let orig = [0.0, 3.0, 4.0];
        let w: f64 = v.iter().zip(&orig).map(|(a, b)| a * b).sum();
        let result: Vec<f64> = orig
            .iter()
            .zip(&v)
            .map(|(o, vi)| o - tau * w * vi)
            .collect();
        assert!((result[0] - beta).abs() < 1e-12);
        assert!(result[1].abs() < 1e-12);
        assert!(result[2].abs() < 1e-12);
        assert!((beta.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn larfg_zero_tail_is_identity() {
        let mut x: Vec<f64> = vec![0.0, 0.0];
        let (beta, tau) = larfg(7.0, &mut x);
        assert_eq!(beta, 7.0);
        assert_eq!(tau, 0.0);
    }

    fn check_qr(a: &Mat, tol: f64) {
        let (q, r) = qr_factor(a);
        let k = a.rows().min(a.cols());
        assert_eq!(q.shape(), (a.rows(), k));
        assert_eq!(r.shape(), (k, a.cols()));
        // R upper triangular.
        for j in 0..r.cols() {
            for i in j + 1..r.rows() {
                assert_eq!(r[(i, j)], 0.0);
            }
        }
        // Q orthonormal.
        assert!(
            orthogonality_error(&q) < tol,
            "Q^T Q != I: {}",
            orthogonality_error(&q)
        );
        // Q R = A.
        let qr = gemm_ref(&q, rlra_blas::Trans::No, &r, rlra_blas::Trans::No);
        let d = max_abs_diff(&qr, a).unwrap();
        assert!(d < tol, "QR != A: {d}");
    }

    #[test]
    fn qr_tall_matrix() {
        check_qr(&pseudo(40, 12, 1), 1e-12);
    }

    #[test]
    fn qr_square_matrix() {
        check_qr(&pseudo(15, 15, 2), 1e-12);
    }

    #[test]
    fn qr_wide_matrix() {
        check_qr(&pseudo(10, 25, 3), 1e-12);
    }

    #[test]
    fn qr_single_column() {
        check_qr(&pseudo(9, 1, 4), 1e-13);
    }

    #[test]
    fn qr_crosses_block_boundary() {
        // n > QR_BLOCK exercises the compact-WY trailing update.
        check_qr(&pseudo(80, QR_BLOCK * 2 + 5, 5), 1e-11);
    }

    #[test]
    fn blocked_matches_unblocked() {
        let a = pseudo(50, 45, 6);
        let mut f1 = a.clone();
        let t1 = geqrf(&mut f1);
        let mut f2 = a.clone();
        let t2 = geqr2(f2.as_mut());
        let d = max_abs_diff(&f1, &f2).unwrap();
        assert!(d < 1e-11, "factors differ: {d}");
        for (a, b) in t1.iter().zip(&t2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn ormqr_gives_r() {
        // Q^T A = R.
        let a = pseudo(20, 8, 7);
        let mut f = a.clone();
        let taus = geqrf(&mut f);
        let mut c = a.clone();
        ormqr_left_trans(&f, &taus, &mut c).unwrap();
        for j in 0..8 {
            for i in 0..20 {
                if i <= j.min(7) {
                    assert!((c[(i, j)] - f[(i, j)]).abs() < 1e-11);
                } else {
                    assert!(
                        c[(i, j)].abs() < 1e-11,
                        "below-diagonal {i},{j} = {}",
                        c[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn orgqr_partial_columns() {
        let a = pseudo(30, 10, 8);
        let mut f = a.clone();
        let taus = geqrf(&mut f);
        let q_full = orgqr(&f, &taus, 10);
        let q_part = orgqr(&f, &taus, 4);
        for j in 0..4 {
            for i in 0..30 {
                assert!((q_full[(i, j)] - q_part[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn qr_of_identity_is_identity() {
        let (q, r) = qr_factor(&Mat::identity(6));
        assert!(max_abs_diff(&q, &Mat::identity(6)).unwrap() < 1e-14);
        assert!(max_abs_diff(&r, &Mat::identity(6)).unwrap() < 1e-14);
    }

    #[test]
    fn qr_rank_deficient_still_orthogonal() {
        // Two identical columns: R has a (near-)zero diagonal but Q stays
        // orthonormal.
        let mut a = pseudo(12, 3, 9);
        let c0 = a.col(0).to_vec();
        a.col_mut(2).copy_from_slice(&c0);
        let (q, _r) = qr_factor(&a);
        assert!(orthogonality_error(&q) < 1e-12);
    }
}
