//! Incremental blocked rank-revealing QR building blocks (the
//! sample-driven pivot selection of Duersch–Gu, arXiv:1509.06820, in the
//! blocked RRF shape of Martinsson–Voronin, arXiv:1503.07157).
//!
//! The fixed-accuracy sampler grows its subspace by `b` rows at a time;
//! instead of re-running the pivoted factorization from scratch at the
//! final size, each accepted sample block selects the next `k_b ≤ b`
//! pivot columns *from the trailing (not yet accepted) columns only* and
//! the `A·P ≈ Q·R` factors are extended by one panel:
//!
//! 1. [`sample_panel_step`] — truncated QP3 of the `l × n_trail`
//!    trailing *residual* sample panel `Ŝ` (the downdated prior sample
//!    blocks stacked with the fresh one, so the row count — and with it
//!    the within-block oversampling — grows every step), yielding the
//!    local pivot order and the interpolation `T_w = R̂₁₁⁻¹·R̂₁₂` that
//!    downdates the still-trailing sample columns
//!    (`Ŝ_rest ← Ŝ_rest − Ŝ_sel·T_w`, the trailing-sample update);
//! 2. the caller projects the `k_b` new pivot columns of `A` against the
//!    accepted `Q` panels and orthonormalizes the remainder (core's
//!    guarded ladder);
//! 3. [`extend_r`] — grows `R` by the panel's rows: the exact projection
//!    coefficients over the accepted columns, the panel's own triangular
//!    factor on the diagonal, and the exact trailing coupling
//!    `Q_newᵀ·A_rest` over the still-trailing columns.
//!
//! Because every block of `R` is an exact inner product against `A`, the
//! assembled factor satisfies `R = Qᵀ·A·P` to working precision and the
//! approximation error is exactly the projection residual
//! `‖(I − QQᵀ)A‖` — the sample never contaminates the factor values, it
//! only orders the columns.

use crate::qrcp::qp3_blocked;
use rlra_blas::{Diag, Side, Trans, UpLo};
use rlra_matrix::{Mat, MatrixError, Result};

/// Result of one blocked QRCP panel step on a trailing residual-sample
/// panel.
#[derive(Debug, Clone)]
pub struct SamplePanelStep {
    /// Local pivot order over the `n_trail` trailing columns (position
    /// `j` of the permuted panel is column `perm[j]` of the input).
    pub perm: Vec<usize>,
    /// Accepted panel width (the truncation rank of the step).
    pub k_b: usize,
    /// Interpolation factor `T_w = R̂₁₁⁻¹·R̂₁₂`
    /// (`k_b × (n_trail − k_b)`), expressing the still-trailing sample
    /// columns in the newly accepted ones — the downdate factor of the
    /// trailing-sample update `Ŝ_rest ← Ŝ_rest − Ŝ_sel·T_w`.
    pub t_w: Mat,
}

/// Truncated QP3 of an `l × n_trail` trailing residual-sample panel `Ŝ`:
/// ranks the trailing columns, keeps the leading `k_b` pivots, and
/// solves for the interpolation `T_w` that downdates the rest (the
/// trailing-sample update of the incremental pipeline).
///
/// `nb` is the QP3 panel width (clamped to `k_b` internally).
///
/// # Errors
///
/// Returns [`MatrixError::InvalidParameter`] when `k_b` exceeds
/// `min(l, n_trail)` or `nb == 0`, and propagates kernel failures.
pub fn sample_panel_step(w_trail: &Mat, k_b: usize, nb: usize) -> Result<SamplePanelStep> {
    let _wall = rlra_obs::walltime::scoped(rlra_obs::names::WALL_SAMPLE_PANEL_SECONDS);
    let n_trail = w_trail.cols();
    if k_b == 0 || n_trail == 0 {
        return Ok(SamplePanelStep {
            perm: (0..n_trail).collect(),
            k_b: 0,
            t_w: Mat::zeros(0, n_trail),
        });
    }
    let qrcp = qp3_blocked(w_trail, k_b, nb.min(k_b))?;
    let r_hat = qrcp.r();
    let mut t_w = Mat::zeros(k_b, n_trail - k_b);
    if n_trail > k_b {
        let r11 = r_hat.submatrix(0, 0, k_b, k_b);
        t_w = r_hat.submatrix(0, k_b, k_b, n_trail - k_b);
        rlra_blas::trsm(
            Side::Left,
            UpLo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            r11.as_ref(),
            t_w.as_mut(),
        )?;
    }
    Ok(SamplePanelStep {
        perm: qrcp.perm.as_slice().to_vec(),
        k_b,
        t_w,
    })
}

/// Extends a `k_done × n` triangular factor `R` by one `k_b`-column
/// panel, returning the `(k_done + k_b) × n` factor:
///
/// - columns `k_done .. k_done + k_b` of the existing rows are replaced
///   by the exact projection coefficients `coef = Qᵀ·A_panel`
///   (`k_done × k_b`);
/// - the new rows carry the panel's own triangular factor `r_new`
///   (`k_b × k_b`) on the diagonal block and the exact trailing coupling
///   `trail = Q_newᵀ·A_rest` (`k_b × n_rest`) over the trailing columns.
///
/// Expects `R`'s trailing columns already permuted into the step's local
/// pivot order (see [`sample_panel_step`]), and `trail` gathered in that
/// same order.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] when the block shapes are
/// inconsistent.
pub fn extend_r(r: &Mat, coef: &Mat, r_new: &Mat, trail: &Mat) -> Result<Mat> {
    let (k_done, n) = r.shape();
    let k_b = r_new.rows();
    let n_rest = n - n.min(k_done + k_b);
    if coef.shape() != (k_done, k_b) || r_new.cols() != k_b || trail.shape() != (k_b, n_rest) {
        return Err(MatrixError::DimensionMismatch {
            op: "extend_r",
            expected: format!("coef {k_done}×{k_b}, r_new {k_b}×{k_b}, trail {k_b}×{n_rest}"),
            found: format!(
                "coef {:?}, r_new {:?}, trail {:?}",
                coef.shape(),
                r_new.shape(),
                trail.shape()
            ),
        });
    }
    let mut out = Mat::zeros(k_done + k_b, n);
    out.set_submatrix(0, 0, r);
    out.set_submatrix(0, k_done, coef);
    out.set_submatrix(k_done, k_done, r_new);
    if n_rest > 0 {
        out.set_submatrix(k_done, k_done + k_b, trail);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rlra_matrix::gaussian_mat;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    #[test]
    fn panel_step_matches_direct_qp3() {
        let w = gaussian_mat(6, 20, &mut rng(1));
        let step = sample_panel_step(&w, 4, 32).unwrap();
        let direct = qp3_blocked(&w, 4, 4).unwrap();
        assert_eq!(step.k_b, 4);
        assert_eq!(step.perm, direct.perm.as_slice());
        assert_eq!(step.t_w.shape(), (4, 16));
        // T_w solves R̂₁₁·T = R̂₁₂ for the same factorization.
        let r_hat = direct.r();
        let r11 = r_hat.submatrix(0, 0, 4, 4);
        let mut lhs = Mat::zeros(4, 16);
        rlra_blas::gemm(
            1.0,
            r11.as_ref(),
            Trans::No,
            step.t_w.as_ref(),
            Trans::No,
            0.0,
            lhs.as_mut(),
        )
        .unwrap();
        let r12 = r_hat.submatrix(0, 4, 4, 16);
        for i in 0..4 {
            for j in 0..16 {
                assert!((lhs[(i, j)] - r12[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn degenerate_panels_are_empty_steps() {
        let w = gaussian_mat(4, 10, &mut rng(2));
        let step = sample_panel_step(&w, 0, 32).unwrap();
        assert_eq!(step.k_b, 0);
        assert_eq!(step.perm, (0..10).collect::<Vec<_>>());
        let empty = Mat::zeros(4, 0);
        let step = sample_panel_step(&empty, 2, 32).unwrap();
        assert_eq!(step.k_b, 0);
    }

    #[test]
    fn extend_r_assembles_the_blocks() {
        // R (2×6), panel of width 2, two trailing columns.
        let r = Mat::from_fn(2, 6, |i, j| (10 * i + j) as f64);
        let coef = Mat::from_fn(2, 2, |i, j| (i + j) as f64 + 0.5);
        let r_new = Mat::from_fn(2, 2, |i, j| if i <= j { 1.0 + j as f64 } else { 0.0 });
        let trail = Mat::from_fn(2, 2, |i, j| 4.0 + (i * 2 + j) as f64);
        let out = extend_r(&r, &coef, &r_new, &trail).unwrap();
        assert_eq!(out.shape(), (4, 6));
        // Old rows keep their leading columns, get coef at 2..4.
        assert_eq!(out[(0, 0)], 0.0);
        assert_eq!(out[(1, 1)], 11.0);
        assert_eq!(out[(0, 2)], 0.5);
        assert_eq!(out[(1, 3)], 2.5);
        // New rows: zero lead, r_new diagonal block, trail block verbatim.
        assert_eq!(out[(2, 0)], 0.0);
        assert_eq!(out[(2, 2)], 1.0);
        assert_eq!(out[(3, 3)], 2.0);
        assert_eq!(out[(2, 4)], 4.0);
        assert_eq!(out[(3, 5)], 7.0);
    }

    #[test]
    fn extend_r_rejects_mismatched_blocks() {
        let r = Mat::zeros(2, 6);
        let coef = Mat::zeros(3, 2); // wrong rows
        let r_new = Mat::zeros(2, 2);
        let trail = Mat::zeros(2, 2);
        assert!(extend_r(&r, &coef, &r_new, &trail).is_err());
    }
}
