//! Property-based tests validating the optimized BLAS kernels against the
//! naive reference implementations on randomly shaped inputs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlra_blas::checksum::{correct_entry, encode, flip_bit, Verdict};
use rlra_blas::naive::{gemm_ref, gemv_ref};
use rlra_blas::{gemm, gemv, syrk, trmm, trsm, Diag, Side, Trans, UpLo};
use rlra_matrix::{ops::max_abs_diff, Mat};

fn random_mat(rng: &mut StdRng, rows: usize, cols: usize) -> Mat {
    Mat::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

fn trans_strategy() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::No), Just(Trans::Yes)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_matches_reference(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        ta in trans_strategy(),
        tb in trans_strategy(),
        seed in 0u64..1000,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = match ta {
            Trans::No => random_mat(&mut rng, m, k),
            Trans::Yes => random_mat(&mut rng, k, m),
        };
        let b = match tb {
            Trans::No => random_mat(&mut rng, k, n),
            Trans::Yes => random_mat(&mut rng, n, k),
        };
        let c0 = random_mat(&mut rng, m, n);
        let mut c = c0.clone();
        gemm(alpha, a.as_ref(), ta, b.as_ref(), tb, beta, c.as_mut()).unwrap();

        let ab = gemm_ref(&a, ta, &b, tb);
        let expect = Mat::from_fn(m, n, |i, j| alpha * ab[(i, j)] + beta * c0[(i, j)]);
        let d = max_abs_diff(&c, &expect).unwrap();
        prop_assert!(d < 1e-10 * (k as f64 + 1.0), "diff = {d}");
    }

    #[test]
    fn gemv_matches_reference(
        m in 1usize..50,
        n in 1usize..50,
        trans in trans_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(&mut rng, m, n);
        let (_, xn) = trans.apply(m, n);
        let (ym, _) = trans.apply(m, n);
        let x: Vec<f64> = (0..xn).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; ym];
        gemv(1.0, a.as_ref(), trans, &x, 0.0, &mut y).unwrap();
        let expect = gemv_ref(&a, trans, &x);
        for (a, b) in y.iter().zip(&expect) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn syrk_equals_gemm_on_triangle(
        n in 1usize..25,
        k in 1usize..25,
        trans in trans_strategy(),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = match trans {
            Trans::No => random_mat(&mut rng, n, k),
            Trans::Yes => random_mat(&mut rng, k, n),
        };
        let full = match trans {
            Trans::No => gemm_ref(&a, Trans::No, &a, Trans::Yes),
            Trans::Yes => gemm_ref(&a, Trans::Yes, &a, Trans::No),
        };
        let mut c = Mat::zeros(n, n);
        syrk(1.0, a.as_ref(), trans, 0.0, c.as_mut(), UpLo::Lower).unwrap();
        for j in 0..n {
            for i in j..n {
                prop_assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn trsm_inverts_trmm(
        n in 1usize..20,
        nrhs in 1usize..20,
        side in prop_oneof![Just(Side::Left), Just(Side::Right)],
        uplo in prop_oneof![Just(UpLo::Lower), Just(UpLo::Upper)],
        trans in trans_strategy(),
        diag in prop_oneof![Just(Diag::NonUnit), Just(Diag::Unit)],
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Well-conditioned triangular matrix (dominant diagonal).
        let mut t = random_mat(&mut rng, n, n);
        for i in 0..n {
            let d = t[(i, i)];
            t[(i, i)] = d.signum().max(1.0).copysign(if d == 0.0 { 1.0 } else { d }) * (2.0 + d.abs());
        }
        let (br, bc) = match side {
            Side::Left => (n, nrhs),
            Side::Right => (nrhs, n),
        };
        let b0 = random_mat(&mut rng, br, bc);
        let mut b = b0.clone();
        trmm(side, uplo, trans, diag, 1.0, t.as_ref(), b.as_mut()).unwrap();
        trsm(side, uplo, trans, diag, 1.0, t.as_ref(), b.as_mut()).unwrap();
        let d = max_abs_diff(&b, &b0).unwrap();
        prop_assert!(d < 1e-9, "diff = {d}");
    }

    #[test]
    fn checksum_round_trip_detects_flips_and_corrects_bit_identically(
        m in 1usize..32,
        n in 1usize..32,
        k in 1usize..48,
        ta in trans_strategy(),
        tb in trans_strategy(),
        seed in 0u64..1000,
        flip_row in 0usize..1_000_000,
        flip_col in 0usize..1_000_000,
        bit in 52u8..63,
    ) {
        // Entries bounded away from zero (in [1, 2)) so an exponent-bit
        // flip's delta always dominates the rounding-noise tolerance.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut positive = |rows: usize, cols: usize| {
            Mat::from_fn(rows, cols, |_, _| rng.gen_range(1.0..2.0))
        };
        let a = match ta {
            Trans::No => positive(m, k),
            Trans::Yes => positive(k, m),
        };
        let b = match tb {
            Trans::No => positive(k, n),
            Trans::Yes => positive(n, k),
        };
        let mut clean = Mat::zeros(m, n);
        gemm(1.0, a.as_ref(), ta, b.as_ref(), tb, 0.0, clean.as_mut()).unwrap();
        let cs = encode(1.0, a.as_ref(), ta, b.as_ref(), tb).unwrap();
        prop_assert_eq!(cs.verify(clean.as_ref(), 64.0), Verdict::Clean);

        // A random single-element exponent-region flip is always
        // detected, localized, and corrected to the exact clean bits.
        let (pi, pj) = (flip_row % m, flip_col % n);
        let mut c = clean.clone();
        c[(pi, pj)] = flip_bit(c[(pi, pj)], bit);
        prop_assert_eq!(
            cs.verify(c.as_ref(), 64.0),
            Verdict::Single { row: pi, col: pj }
        );
        let mut cm = c.as_mut();
        correct_entry(1.0, a.as_ref(), ta, b.as_ref(), tb, &mut cm, pi, pj).unwrap();
        prop_assert_eq!(c[(pi, pj)].to_bits(), clean[(pi, pj)].to_bits());
        prop_assert_eq!(cs.verify(c.as_ref(), 64.0), Verdict::Clean);
    }

    #[test]
    fn checksum_never_fires_below_tolerance(
        m in 1usize..32,
        n in 1usize..32,
        k in 1usize..48,
        seed in 0u64..1000,
        prow in 0usize..1_000_000,
        pcol in 0usize..1_000_000,
        frac in 0.0f64..0.2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_mat(&mut rng, m, k);
        let b = random_mat(&mut rng, k, n);
        let mut c = Mat::zeros(m, n);
        gemm(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No, 0.0, c.as_mut()).unwrap();
        let cs = encode(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No).unwrap();
        // Perturb one entry by a fraction of the smaller of the two
        // mismatch thresholds: genuine rounding drift of this size must
        // never be flagged as corruption.
        let (pi, pj) = (prow % m, pcol % n);
        let delta = frac
            * cs.col_threshold(c.as_ref(), pj, 64.0)
                .min(cs.row_threshold(c.as_ref(), pi, 64.0));
        c[(pi, pj)] += delta;
        prop_assert_eq!(cs.verify(c.as_ref(), 64.0), Verdict::Clean);
    }

    #[test]
    fn dot_is_symmetric_and_linear(
        len in 0usize..100,
        seed in 0u64..1000,
        alpha in -3.0f64..3.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let d1 = rlra_blas::dot(&x, &y);
        let d2 = rlra_blas::dot(&y, &x);
        prop_assert!((d1 - d2).abs() < 1e-12);
        let ax: Vec<f64> = x.iter().map(|v| alpha * v).collect();
        let d3 = rlra_blas::dot(&ax, &y);
        prop_assert!((d3 - alpha * d1).abs() < 1e-9);
    }
}
