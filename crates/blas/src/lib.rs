//! # rlra-blas
//!
//! BLAS level 1/2/3 kernels in pure Rust, the computational substrate of
//! the `rlra` workspace (reproduction of Mary et al., SC'15).
//!
//! The paper's performance argument hinges on the distinction between
//! kernel classes:
//!
//! - **BLAS-3** (GEMM, SYRK, TRSM, TRMM) — high arithmetic intensity, what
//!   randomized sampling and CholQR are built from,
//! - **BLAS-2** (GEMV, GER) — memory bound, what QP3 spends half its flops
//!   in,
//! - **BLAS-1** (DOT, AXPY, NRM2) — latency/memory bound, what MGS and
//!   norm recomputation are made of.
//!
//! All three levels are implemented here with a shared [`MatRef`]/[`MatMut`]
//! view interface; GEMM variants parallelize over output column panels with
//! rayon. The [`naive`] module holds straightforward reference
//! implementations used to validate the optimized kernels in tests.
//!
//! [`MatRef`]: rlra_matrix::MatRef
//! [`MatMut`]: rlra_matrix::MatMut

#![forbid(unsafe_code)]

pub mod checksum;
pub mod flops;
pub mod level1;
pub mod level2;
pub mod level3;
pub mod naive;

pub use checksum::{GemmChecksum, Verdict};
pub use level1::{axpy, copy, dot, iamax, nrm2, scal, swap};
pub use level2::{gemv, ger, trmv, trsv};
pub use level3::{gemm, syrk, trmm, trsm};

/// Transpose option for a matrix operand (`op(A) = A` or `Aᵀ`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the operand.
    Yes,
}

impl Trans {
    /// Shape of `op(A)` given the stored shape of `A`.
    pub fn apply(self, rows: usize, cols: usize) -> (usize, usize) {
        match self {
            Trans::No => (rows, cols),
            Trans::Yes => (cols, rows),
        }
    }
}

/// Which side a triangular operand multiplies from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// `op(T) · X`.
    Left,
    /// `X · op(T)`.
    Right,
}

/// Which triangle of a triangular/symmetric operand is referenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpLo {
    /// Lower triangle.
    Lower,
    /// Upper triangle.
    Upper,
}

/// Whether a triangular operand has an implicit unit diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Diag {
    /// Diagonal entries are read from storage.
    NonUnit,
    /// Diagonal entries are taken to be 1 and not read.
    Unit,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trans_apply_swaps_shape() {
        assert_eq!(Trans::No.apply(3, 5), (3, 5));
        assert_eq!(Trans::Yes.apply(3, 5), (5, 3));
    }
}
