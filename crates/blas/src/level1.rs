//! BLAS level-1: vector-vector kernels.
//!
//! These are the latency-bound primitives that dominate MGS and the column
//! norm (re)computation inside QP3 — the kernels the paper identifies as
//! obtaining "only a small fraction of the hardware's peak performance".

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    // analyze: allow(panic, documented slice-length contract on the hottest level-1 kernel; a Result here costs a branch per MGS inner product)
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    // Accumulate in four lanes to expose instruction-level parallelism
    // without changing the result enough to matter for our tolerances.
    let n = x.len();
    let chunks = n / 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for c in 0..chunks {
        let i = 4 * c;
        s0 += x[i] * y[i];
        s1 += x[i + 1] * y[i + 1];
        s2 += x[i + 2] * y[i + 2];
        s3 += x[i + 3] * y[i + 3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for i in 4 * chunks..n {
        s += x[i] * y[i];
    }
    s
}

/// Euclidean norm `‖x‖₂` with overflow-safe scaling.
pub fn nrm2(x: &[f64]) -> f64 {
    rlra_matrix::norms::vec_norm2(x)
}

/// `y ← y + α·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    // analyze: allow(panic, documented slice-length contract mirroring copy_from_slice; axpy sits inside the QP3 column-update loop)
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    if alpha == 0.0 {
        return;
    }
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← α·x`.
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Index of the entry with the largest absolute value; returns 0 for an
/// empty slice.
pub fn iamax(x: &[f64]) -> usize {
    let mut best = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    for (i, &xi) in x.iter().enumerate() {
        let a = xi.abs();
        if a > best_val {
            best_val = a;
            best = i;
        }
    }
    best
}

/// Swaps the contents of two equal-length vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn swap(x: &mut [f64], y: &mut [f64]) {
    // analyze: allow(panic, documented slice-length contract mirroring mem::swap on slices)
    assert_eq!(x.len(), y.len(), "swap: length mismatch");
    for (xi, yi) in x.iter_mut().zip(y.iter_mut()) {
        std::mem::swap(xi, yi);
    }
}

/// Copies `x` into `y`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn copy(x: &[f64], y: &mut [f64]) {
    // analyze: allow(panic, documented slice-length contract; copy_from_slice on the next line panics identically anyway)
    assert_eq!(x.len(), y.len(), "copy: length mismatch");
    y.copy_from_slice(x);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let x: Vec<f64> = (0..17).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..17).map(|i| (i as f64).sin()).collect();
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-12);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [10.0, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpy_zero_alpha_is_noop() {
        let x = [f64::NAN; 3];
        let mut y = [1.0, 2.0, 3.0];
        axpy(0.0, &x, &mut y);
        assert_eq!(y, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, -2.0];
        scal(-0.5, &mut x);
        assert_eq!(x, [-0.5, 1.0]);
    }

    #[test]
    fn iamax_finds_largest_abs() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), 1);
        assert_eq!(iamax(&[]), 0);
        assert_eq!(iamax(&[2.0, 2.0]), 0); // first wins ties
    }

    #[test]
    fn swap_exchanges() {
        let mut x = [1.0, 2.0];
        let mut y = [3.0, 4.0];
        swap(&mut x, &mut y);
        assert_eq!(x, [3.0, 4.0]);
        assert_eq!(y, [1.0, 2.0]);
    }

    #[test]
    fn nrm2_345() {
        assert_eq!(nrm2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
