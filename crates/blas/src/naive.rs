//! Straightforward reference implementations of the level-3 kernels.
//!
//! These are triple loops with no blocking or parallelism, used by the
//! test suites (including the property-based ones) to validate the
//! optimized kernels in [`crate::level3`], and by the simulated GPU crate
//! when a bit-reproducible serial result is preferred over speed.

use crate::Trans;
use rlra_matrix::Mat;

/// Reference GEMM: returns `op(A)·op(B)` as a fresh matrix.
///
/// # Panics
///
/// Panics if the inner dimensions of `op(A)` and `op(B)` disagree.
pub fn gemm_ref(a: &Mat, ta: Trans, b: &Mat, tb: Trans) -> Mat {
    let (m, ka) = ta.apply(a.rows(), a.cols());
    let (kb, n) = tb.apply(b.rows(), b.cols());
    // analyze: allow(panic, documented shape contract on a test-oracle kernel; reference implementations keep the infallible BLAS signature)
    assert_eq!(ka, kb, "gemm_ref: inner dimension mismatch");
    let get_a = |i: usize, l: usize| match ta {
        Trans::No => a[(i, l)],
        Trans::Yes => a[(l, i)],
    };
    let get_b = |l: usize, j: usize| match tb {
        Trans::No => b[(l, j)],
        Trans::Yes => b[(j, l)],
    };
    Mat::from_fn(m, n, |i, j| {
        (0..ka).map(|l| get_a(i, l) * get_b(l, j)).sum()
    })
}

/// Reference matrix-vector product `op(A)·x`.
///
/// # Panics
///
/// Panics if `x` does not match the column count of `op(A)`.
pub fn gemv_ref(a: &Mat, ta: Trans, x: &[f64]) -> Vec<f64> {
    let (m, k) = ta.apply(a.rows(), a.cols());
    // analyze: allow(panic, documented shape contract on a test-oracle kernel; reference implementations keep the infallible BLAS signature)
    assert_eq!(k, x.len(), "gemv_ref: dimension mismatch");
    let get_a = |i: usize, l: usize| match ta {
        Trans::No => a[(i, l)],
        Trans::Yes => a[(l, i)],
    };
    (0..m)
        .map(|i| (0..k).map(|l| get_a(i, l) * x[l]).sum())
        .collect()
}

/// Reference solution of a dense linear system `T·x = b` for triangular
/// `T` via explicit Gaussian elimination (no pivoting; `T` is assumed well
/// conditioned in tests).
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn solve_dense_ref(t: &Mat, b: &[f64]) -> Vec<f64> {
    let n = t.rows();
    // analyze: allow(panic, documented shape contract on a test-oracle kernel; reference implementations keep the infallible BLAS signature)
    assert_eq!(t.cols(), n);
    // analyze: allow(panic, documented shape contract on a test-oracle kernel; reference implementations keep the infallible BLAS signature)
    assert_eq!(b.len(), n);
    // Dense LU without pivoting, adequate for the small well-conditioned
    // triangular factors used in tests.
    let mut lu = t.clone();
    let mut x: Vec<f64> = b.to_vec();
    for k in 0..n {
        for i in k + 1..n {
            let f = lu[(i, k)] / lu[(k, k)];
            lu[(i, k)] = f;
            for j in k + 1..n {
                let v = lu[(k, j)];
                lu[(i, j)] -= f * v;
            }
            x[i] -= f * x[k];
        }
    }
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in i + 1..n {
            s -= lu[(i, j)] * x[j];
        }
        x[i] = s / lu[(i, i)];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_ref_identity() {
        let a = Mat::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let i3 = Mat::identity(3);
        assert_eq!(gemm_ref(&a, Trans::No, &i3, Trans::No), a);
        assert_eq!(gemm_ref(&i3, Trans::No, &a, Trans::No), a);
    }

    #[test]
    fn gemm_ref_transpose_options_agree() {
        let a = Mat::from_fn(2, 3, |i, j| (i + j * j) as f64);
        let b = Mat::from_fn(3, 2, |i, j| (2 * i + j) as f64);
        let ab = gemm_ref(&a, Trans::No, &b, Trans::No);
        let at = a.transpose();
        let bt = b.transpose();
        assert_eq!(gemm_ref(&at, Trans::Yes, &b, Trans::No), ab);
        assert_eq!(gemm_ref(&a, Trans::No, &bt, Trans::Yes), ab);
        assert_eq!(gemm_ref(&at, Trans::Yes, &bt, Trans::Yes), ab);
    }

    #[test]
    fn gemv_ref_matches_gemm_column() {
        let a = Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let x = vec![1.0, -1.0];
        let y = gemv_ref(&a, Trans::No, &x);
        let xm = Mat::from_col_major(2, 1, x).unwrap();
        let ym = gemm_ref(&a, Trans::No, &xm, Trans::No);
        assert_eq!(y, ym.as_slice());
    }

    #[test]
    fn solve_dense_ref_solves() {
        let t = Mat::from_row_major(2, 2, &[2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = solve_dense_ref(&t, &[5.0, 10.0]);
        // 2x0 + x1 = 5; x0 + 3x1 = 10 -> x = (1, 3)
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }
}
