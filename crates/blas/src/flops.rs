//! Floating-point operation counts for the kernels in this crate.
//!
//! The simulated-GPU cost model (`rlra-gpu`) and the analytic performance
//! model (`rlra-perfmodel`, reproducing the paper's Figure 5) both consume
//! these counts, so they are defined once here.

/// Flops of `C ← α·op(A)op(B) + β·C` with `op(A)` of shape `m × k` and
/// `op(B)` of shape `k × n`: one multiply and one add per inner-product
/// term.
pub fn gemm_flops(m: usize, n: usize, k: usize) -> u64 {
    2 * m as u64 * n as u64 * k as u64
}

/// Flops of `y ← α·op(A)x + β·y` for an `m × n` operand.
pub fn gemv_flops(m: usize, n: usize) -> u64 {
    2 * m as u64 * n as u64
}

/// Flops of the rank-1 update `A ← A + α x yᵀ` for an `m × n` matrix.
pub fn ger_flops(m: usize, n: usize) -> u64 {
    2 * m as u64 * n as u64
}

/// Flops of a symmetric rank-k update producing an `n × n` triangle from an
/// `n × k` operand.
pub fn syrk_flops(n: usize, k: usize) -> u64 {
    n as u64 * (n as u64 + 1) * k as u64
}

/// Flops of a triangular solve with an `n × n` triangle against `nrhs`
/// right-hand sides.
pub fn trsm_flops(n: usize, nrhs: usize) -> u64 {
    n as u64 * n as u64 * nrhs as u64
}

/// Flops of a triangular matrix-matrix multiply (same count as `trsm`).
pub fn trmm_flops(n: usize, nrhs: usize) -> u64 {
    n as u64 * n as u64 * nrhs as u64
}

/// Flops of a triangular matrix-vector multiply with an `n × n`
/// triangle: `n(n+1)/2` multiplies and `n(n−1)/2` adds, `n²` total.
pub fn trmv_flops(n: usize) -> u64 {
    n as u64 * n as u64
}

/// Flops of a triangular solve with an `n × n` triangle against a single
/// right-hand side (same count as `trmv`).
pub fn trsv_flops(n: usize) -> u64 {
    n as u64 * n as u64
}

/// Flops of a dot product of length `n`.
pub fn dot_flops(n: usize) -> u64 {
    2 * n as u64
}

/// Flops of an `axpy` of length `n`.
pub fn axpy_flops(n: usize) -> u64 {
    2 * n as u64
}

/// Flops of a Cholesky factorization of an `n × n` matrix (`n³/3` leading
/// order).
pub fn cholesky_flops(n: usize) -> u64 {
    let n = n as u64;
    n * n * n / 3 + n * n / 2
}

/// Flops of an unpivoted Householder QR of an `m × n` matrix (`m ≥ n`),
/// leading order `2mn² − 2n³/3`.
pub fn qr_flops(m: usize, n: usize) -> u64 {
    let (m, n) = (m as u64, n as u64);
    2 * m * n * n - 2 * n * n * n / 3
}

/// Flops of a truncated QP3 run for `k` steps on an `m × n` matrix:
/// `4mnk − 2(m+n)k² + 4k³/3` leading order (LAPACK working notes).
pub fn qp3_flops(m: usize, n: usize, k: usize) -> u64 {
    let (m, n, k) = (m as i128, n as i128, k as i128);
    let f = 4 * m * n * k - 2 * (m + n) * k * k + 4 * k * k * k / 3;
    f.max(0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_flops_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48);
    }

    #[test]
    fn gemv_is_gemm_with_single_column() {
        assert_eq!(gemv_flops(7, 5), gemm_flops(7, 1, 5));
    }

    #[test]
    fn triangular_vector_counts_match_matrix_counts() {
        // trmv/trsv are the nrhs = 1 column of trmm/trsm.
        assert_eq!(trmv_flops(64), trmm_flops(64, 1));
        assert_eq!(trsv_flops(64), trsm_flops(64, 1));
    }

    #[test]
    fn qr_flops_positive_and_monotone() {
        assert!(qr_flops(100, 10) > 0);
        assert!(qr_flops(200, 10) > qr_flops(100, 10));
    }

    #[test]
    fn qp3_full_rank_matches_qr_leading_order() {
        // A full QP3 (k = n) performs the same flops as unpivoted QR to
        // leading order — the paper's complaint is that *half of them* are
        // BLAS-2, not that there are more of them.
        let m = 10_000;
        let n = 100;
        let qp3 = qp3_flops(m, n, n) as f64;
        let qr = qr_flops(m, n) as f64;
        let ratio = qp3 / qr;
        assert!(ratio > 0.95 && ratio < 1.05, "ratio = {ratio}");
    }

    #[test]
    fn qp3_truncation_monotone_in_k() {
        assert_eq!(qp3_flops(1000, 1000, 0), 0);
        assert!(qp3_flops(1000, 1000, 10) < qp3_flops(1000, 1000, 20));
        // Truncating at k << n is much cheaper than the full factorization.
        assert!(qp3_flops(10_000, 1000, 50) < qp3_flops(10_000, 1000, 1000) / 5);
    }

    #[test]
    fn cholesky_cubic_term() {
        let f = cholesky_flops(300) as f64;
        let expect = 300f64.powi(3) / 3.0;
        assert!((f - expect).abs() / expect < 0.01);
    }
}
