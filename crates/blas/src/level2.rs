//! BLAS level-2: matrix-vector kernels.

use crate::level1::{axpy, dot};
use crate::{Diag, Trans, UpLo};
use rlra_matrix::{MatMut, MatRef, MatrixError, Result};

/// General matrix-vector product `y ← α·op(A)·x + β·y`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `x`/`y` lengths do not
/// match the shape of `op(A)`.
pub fn gemv(
    alpha: f64,
    a: MatRef<'_>,
    trans: Trans,
    x: &[f64],
    beta: f64,
    y: &mut [f64],
) -> Result<()> {
    let (op_rows, op_cols) = trans.apply(a.rows(), a.cols());
    if x.len() != op_cols || y.len() != op_rows {
        return Err(MatrixError::DimensionMismatch {
            op: "gemv",
            expected: format!("x.len() == {op_cols}, y.len() == {op_rows}"),
            found: format!("x.len() == {}, y.len() == {}", x.len(), y.len()),
        });
    }
    if beta == 0.0 {
        y.fill(0.0);
    } else if beta != 1.0 {
        for yi in y.iter_mut() {
            *yi *= beta;
        }
    }
    if alpha == 0.0 {
        return Ok(());
    }
    match trans {
        Trans::No => {
            // y += alpha * A x, columnwise axpy (streams A once).
            for (j, &xj) in x.iter().enumerate() {
                let c = alpha * xj;
                if c != 0.0 {
                    axpy(c, a.col(j), y);
                }
            }
        }
        Trans::Yes => {
            // y_j += alpha * A[:, j]^T x, columnwise dot.
            for (j, yj) in y.iter_mut().enumerate() {
                *yj += alpha * dot(a.col(j), x);
            }
        }
    }
    Ok(())
}

/// Rank-1 update `A ← A + α·x·yᵀ`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `x.len() != a.rows()` or
/// `y.len() != a.cols()`.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], mut a: MatMut<'_>) -> Result<()> {
    if x.len() != a.rows() || y.len() != a.cols() {
        return Err(MatrixError::DimensionMismatch {
            op: "ger",
            expected: format!("x.len() == {}, y.len() == {}", a.rows(), a.cols()),
            found: format!("x.len() == {}, y.len() == {}", x.len(), y.len()),
        });
    }
    if alpha == 0.0 {
        return Ok(());
    }
    for (j, &yj) in y.iter().enumerate() {
        let c = alpha * yj;
        if c != 0.0 {
            axpy(c, x, a.col_mut(j));
        }
    }
    Ok(())
}

/// Triangular matrix-vector product `x ← op(T)·x` for a square triangular
/// `T`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `T` is not square or `x`
/// has the wrong length.
#[allow(clippy::needless_range_loop)] // indexed loops mirror the LAPACK reference
pub fn trmv(t: MatRef<'_>, uplo: UpLo, trans: Trans, diag: Diag, x: &mut [f64]) -> Result<()> {
    let n = t.rows();
    if t.cols() != n || x.len() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "trmv",
            expected: format!("T square of order == x.len() == {}", x.len()),
            found: format!("T is {}x{}", t.rows(), t.cols()),
        });
    }
    // Effective triangle after the transpose option.
    let lower = matches!(
        (uplo, trans),
        (UpLo::Lower, Trans::No) | (UpLo::Upper, Trans::Yes)
    );
    let at = |i: usize, j: usize| -> f64 {
        match trans {
            Trans::No => t.get(i, j),
            Trans::Yes => t.get(j, i),
        }
    };
    if lower {
        // x_i depends on x_0..=x_i: compute top-down in reverse.
        for i in (0..n).rev() {
            let mut s = match diag {
                Diag::NonUnit => at(i, i) * x[i],
                Diag::Unit => x[i],
            };
            for j in 0..i {
                s += at(i, j) * x[j];
            }
            x[i] = s;
        }
    } else {
        // Upper: x_i depends on x_i..x_{n-1}: compute forward.
        for i in 0..n {
            let mut s = match diag {
                Diag::NonUnit => at(i, i) * x[i],
                Diag::Unit => x[i],
            };
            for j in i + 1..n {
                s += at(i, j) * x[j];
            }
            x[i] = s;
        }
    }
    Ok(())
}

/// Triangular solve `op(T)·x = b`, overwriting `x` (which holds `b` on
/// entry).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] for shape errors, or
/// [`MatrixError::SingularDiagonal`] if a diagonal entry is exactly zero
/// and `diag` is [`Diag::NonUnit`].
#[allow(clippy::needless_range_loop)] // indexed loops mirror the LAPACK reference
pub fn trsv(t: MatRef<'_>, uplo: UpLo, trans: Trans, diag: Diag, x: &mut [f64]) -> Result<()> {
    let n = t.rows();
    if t.cols() != n || x.len() != n {
        return Err(MatrixError::DimensionMismatch {
            op: "trsv",
            expected: format!("T square of order == x.len() == {}", x.len()),
            found: format!("T is {}x{}", t.rows(), t.cols()),
        });
    }
    let lower = matches!(
        (uplo, trans),
        (UpLo::Lower, Trans::No) | (UpLo::Upper, Trans::Yes)
    );
    let at = |i: usize, j: usize| -> f64 {
        match trans {
            Trans::No => t.get(i, j),
            Trans::Yes => t.get(j, i),
        }
    };
    if lower {
        for i in 0..n {
            let mut s = x[i];
            for j in 0..i {
                s -= at(i, j) * x[j];
            }
            x[i] = match diag {
                Diag::Unit => s,
                Diag::NonUnit => {
                    let d = at(i, i);
                    if d == 0.0 {
                        return Err(MatrixError::SingularDiagonal { index: i });
                    }
                    s / d
                }
            };
        }
    } else {
        for i in (0..n).rev() {
            let mut s = x[i];
            for j in i + 1..n {
                s -= at(i, j) * x[j];
            }
            x[i] = match diag {
                Diag::Unit => s,
                Diag::NonUnit => {
                    let d = at(i, i);
                    if d == 0.0 {
                        return Err(MatrixError::SingularDiagonal { index: i });
                    }
                    s / d
                }
            };
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_matrix::Mat;

    fn mat(rows: usize, cols: usize, data: &[f64]) -> Mat {
        Mat::from_row_major(rows, cols, data).unwrap()
    }

    #[test]
    fn gemv_no_trans() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 0.0, -1.0];
        let mut y = [10.0, 10.0];
        gemv(1.0, a.as_ref(), Trans::No, &x, 0.5, &mut y).unwrap();
        // A x = [1-3, 4-6] = [-2, -2]; y = 0.5*[10,10] + [-2,-2] = [3, 3]
        assert_eq!(y, [3.0, 3.0]);
    }

    #[test]
    fn gemv_trans() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, 1.0];
        let mut y = [0.0; 3];
        gemv(1.0, a.as_ref(), Trans::Yes, &x, 0.0, &mut y).unwrap();
        assert_eq!(y, [5.0, 7.0, 9.0]);
    }

    #[test]
    fn gemv_shape_check() {
        let a = Mat::zeros(2, 3);
        let mut y = [0.0; 2];
        assert!(gemv(1.0, a.as_ref(), Trans::No, &[0.0; 2], 0.0, &mut y).is_err());
    }

    #[test]
    fn ger_rank_one() {
        let mut a = Mat::zeros(2, 2);
        ger(2.0, &[1.0, 2.0], &[3.0, 4.0], a.as_mut()).unwrap();
        assert_eq!(a[(0, 0)], 6.0);
        assert_eq!(a[(1, 1)], 16.0);
    }

    #[test]
    fn trsv_upper_solves() {
        // T = [2 1; 0 4], b = [4, 8] -> x = [1, 2]
        let t = mat(2, 2, &[2.0, 1.0, 0.0, 4.0]);
        let mut x = [4.0, 8.0];
        trsv(t.as_ref(), UpLo::Upper, Trans::No, Diag::NonUnit, &mut x).unwrap();
        assert_eq!(x, [1.0, 2.0]);
    }

    #[test]
    fn trsv_upper_transpose_is_lower_solve() {
        // Solve T^T x = b with T upper: forward substitution.
        let t = mat(2, 2, &[2.0, 1.0, 0.0, 4.0]);
        let mut x = [2.0, 9.0];
        trsv(t.as_ref(), UpLo::Upper, Trans::Yes, Diag::NonUnit, &mut x).unwrap();
        // T^T = [2 0; 1 4]; x0 = 1, x1 = (9-1)/4 = 2
        assert_eq!(x, [1.0, 2.0]);
    }

    #[test]
    fn trsv_unit_diag_ignores_storage() {
        let t = mat(2, 2, &[999.0, 1.0, 0.0, 999.0]);
        let mut x = [3.0, 2.0];
        trsv(t.as_ref(), UpLo::Upper, Trans::No, Diag::Unit, &mut x).unwrap();
        // x1 = 2; x0 = 3 - 1*2 = 1
        assert_eq!(x, [1.0, 2.0]);
    }

    #[test]
    fn trsv_detects_singular() {
        let t = mat(2, 2, &[1.0, 1.0, 0.0, 0.0]);
        let mut x = [1.0, 1.0];
        let e = trsv(t.as_ref(), UpLo::Upper, Trans::No, Diag::NonUnit, &mut x);
        assert!(matches!(e, Err(MatrixError::SingularDiagonal { index: 1 })));
    }

    #[test]
    fn trmv_inverts_trsv() {
        let t = mat(3, 3, &[2.0, 1.0, -1.0, 0.0, 3.0, 0.5, 0.0, 0.0, 1.5]);
        let x0 = [1.0, -2.0, 0.5];
        for (uplo, trans) in [(UpLo::Upper, Trans::No), (UpLo::Upper, Trans::Yes)] {
            let mut x = x0;
            trmv(t.as_ref(), uplo, trans, Diag::NonUnit, &mut x).unwrap();
            trsv(t.as_ref(), uplo, trans, Diag::NonUnit, &mut x).unwrap();
            for (a, b) in x.iter().zip(&x0) {
                assert!((a - b).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn trmv_lower() {
        // T = [1 0; 2 3] lower, x = [1, 1] -> Tx = [1, 5]
        let t = mat(2, 2, &[1.0, 0.0, 2.0, 3.0]);
        let mut x = [1.0, 1.0];
        trmv(t.as_ref(), UpLo::Lower, Trans::No, Diag::NonUnit, &mut x).unwrap();
        assert_eq!(x, [1.0, 5.0]);
    }
}
