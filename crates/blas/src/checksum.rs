//! ABFT checksum encode/verify helpers for GEMM.
//!
//! Algorithm-based fault tolerance (Huang & Abraham) protects a product
//! `C = α·op(A)·op(B)` by carrying one extra checksum row and column:
//! the row vector `eᵀ·op(A)·op(B)` predicts the column sums of `C`, and
//! the column vector `op(A)·op(B)·e` predicts its row sums. A silent
//! single-element corruption of `C` perturbs exactly one column sum and
//! one row sum, so the mismatch pair *localizes* the poisoned entry —
//! which can then be recomputed from a single length-`k` inner product
//! instead of re-running the whole GEMM.
//!
//! Rather than physically appending the checksum row/column to the
//! operands (which would perturb every downstream shape), this module
//! keeps them side-band in a [`GemmChecksum`]: the arithmetic is the
//! same `(k + 1)`-row encoded multiply the ABFT literature describes,
//! just stored next to the panel instead of under it.
//!
//! The single-entry recompute in [`correct_entry`] deliberately goes
//! back through [`crate::gemm`] on 1×k / k×1 *views* of the original
//! operands so that the corrected value is **bit-identical** to what a
//! fault-free GEMM would have produced: the cache-blocked kernel
//! accumulates every output entry serially over `k` in increasing block
//! order, and that order is invariant to the output's column/row
//! partitioning, so a 1×1 output walks the exact same additions.

use crate::level1::dot;
use crate::Trans;
use rlra_matrix::{Mat, MatMut, MatRef, MatrixError, Result};

/// Outcome of a checksum verification pass over a GEMM output panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Row and column sums both match the encoded references.
    Clean,
    /// Exactly one column sum and one row sum disagree: the corruption
    /// is localized to entry `(row, col)` and can be corrected in place.
    Single {
        /// Row index of the poisoned entry in the output panel.
        row: usize,
        /// Column index of the poisoned entry in the output panel.
        col: usize,
    },
    /// More than one row or column disagrees (or a mismatch could not be
    /// localized to a single entry): the panel must be recomputed.
    Wider,
}

/// Side-band checksum references for one `C = α·op(A)·op(B)` product.
#[derive(Debug, Clone, PartialEq)]
pub struct GemmChecksum {
    /// `α·eᵀ·op(A)·op(B)` — predicted column sums of `C`, length `n`.
    col_ref: Vec<f64>,
    /// `α·op(A)·op(B)·e` — predicted row sums of `C`, length `m`.
    row_ref: Vec<f64>,
    /// Inner dimension of the product, kept for tolerance scaling.
    k: usize,
}

/// Flops charged for encoding the checksum references of an `m×n×k`
/// GEMM: the two operand-sum reductions plus the two rank-1 products.
pub const fn encode_flops(m: usize, n: usize, k: usize) -> u64 {
    (3 * m * k + 3 * k * n) as u64
}

/// Flops charged for verifying an `m×n` output panel against its
/// references: one pass of column sums and one of row sums.
pub const fn verify_flops(m: usize, n: usize) -> u64 {
    (2 * m * n) as u64
}

/// `eᵀ·op(A)`: sums over the rows of `op(A)`, one entry per op-column.
fn op_col_sums(a: MatRef<'_>, ta: Trans) -> Vec<f64> {
    match ta {
        // Column l of A is contiguous; sum each.
        Trans::No => (0..a.cols()).map(|l| a.col(l).iter().sum()).collect(),
        // op(A) = Aᵀ: its column l is row l of A.
        Trans::Yes => {
            let mut s = vec![0.0f64; a.rows()];
            for j in 0..a.cols() {
                for (sl, &v) in s.iter_mut().zip(a.col(j)) {
                    *sl += v;
                }
            }
            s
        }
    }
}

/// `op(B)·e`: sums over the columns of `op(B)`, one entry per op-row.
fn op_row_sums(b: MatRef<'_>, tb: Trans) -> Vec<f64> {
    match tb {
        Trans::No => {
            let mut t = vec![0.0f64; b.rows()];
            for j in 0..b.cols() {
                for (tl, &v) in t.iter_mut().zip(b.col(j)) {
                    *tl += v;
                }
            }
            t
        }
        Trans::Yes => (0..b.cols()).map(|l| b.col(l).iter().sum()).collect(),
    }
}

/// Encodes the checksum references for `C = α·op(A)·op(B)` (the `β = 0`
/// form every protected kernel in the pipeline uses).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if the inner dimensions of
/// `op(A)` and `op(B)` disagree.
pub fn encode(
    alpha: f64,
    a: MatRef<'_>,
    ta: Trans,
    b: MatRef<'_>,
    tb: Trans,
) -> Result<GemmChecksum> {
    let (m, ka) = ta.apply(a.rows(), a.cols());
    let (kb, n) = tb.apply(b.rows(), b.cols());
    if ka != kb {
        return Err(MatrixError::DimensionMismatch {
            op: "checksum_encode",
            expected: format!("op(A) {m}x{ka} · op(B) {ka}x{n}"),
            found: format!("op(A) {m}x{ka}, op(B) {kb}x{n}"),
        });
    }
    let s = op_col_sums(a, ta); // length k
    let t = op_row_sums(b, tb); // length k
    let col_ref = match tb {
        Trans::No => (0..n).map(|j| alpha * dot(&s, b.col(j))).collect(),
        Trans::Yes => (0..n)
            .map(|j| {
                let mut acc = 0.0;
                for (l, &sl) in s.iter().enumerate() {
                    acc += sl * b.get(j, l);
                }
                alpha * acc
            })
            .collect(),
    };
    let row_ref = match ta {
        Trans::No => (0..m)
            .map(|i| {
                let mut acc = 0.0;
                for (l, &tl) in t.iter().enumerate() {
                    acc += a.get(i, l) * tl;
                }
                alpha * acc
            })
            .collect(),
        Trans::Yes => (0..m).map(|i| alpha * dot(a.col(i), &t)).collect(),
    };
    Ok(GemmChecksum {
        col_ref,
        row_ref,
        k: ka,
    })
}

impl GemmChecksum {
    /// The expected output shape `(m, n)` these references cover.
    pub fn shape(&self) -> (usize, usize) {
        (self.row_ref.len(), self.col_ref.len())
    }

    /// Absolute mismatch threshold for column `j` of `c`.
    ///
    /// The references and the actual sums accumulate `k·m` products in
    /// different association orders, so honest rounding drift is bounded
    /// by `(k + m)·ε` times the magnitudes involved; `tolerance` is the
    /// caller's safety factor on top (the integrity policy default is a
    /// generous 64).
    pub fn col_threshold(&self, c: MatRef<'_>, j: usize, tolerance: f64) -> f64 {
        let scale: f64 = c.col(j).iter().map(|v| v.abs()).sum::<f64>() + self.col_ref[j].abs();
        tolerance * f64::EPSILON * (self.k + c.rows()) as f64 * scale
    }

    /// Absolute mismatch threshold for row `i` of `c` (see
    /// [`Self::col_threshold`]).
    pub fn row_threshold(&self, c: MatRef<'_>, i: usize, tolerance: f64) -> f64 {
        let mut scale = self.row_ref[i].abs();
        for j in 0..c.cols() {
            scale += c.get(i, j).abs();
        }
        tolerance * f64::EPSILON * (self.k + c.cols()) as f64 * scale
    }

    /// Verifies an output panel against the encoded references.
    ///
    /// Returns [`Verdict::Single`] only when exactly one column sum *and*
    /// exactly one row sum disagree — the signature of a single corrupted
    /// entry. Any other mismatch pattern (including a column firing
    /// without a localizable row) is reported as [`Verdict::Wider`].
    ///
    /// # Panics
    ///
    /// Panics if `c`'s shape does not match the encoded product.
    // analyze: allow(panic, shape is fixed by the encode call two lines above every use; a Result here would double-wrap the hot verify path)
    pub fn verify(&self, c: MatRef<'_>, tolerance: f64) -> Verdict {
        let (m, n) = self.shape();
        assert_eq!(c.shape(), (m, n), "checksum verify: shape mismatch");
        let mut bad_col = None;
        let mut bad_cols = 0usize;
        for j in 0..n {
            let sum: f64 = c.col(j).iter().sum();
            if (sum - self.col_ref[j]).abs() > self.col_threshold(c, j, tolerance) {
                bad_col = Some(j);
                bad_cols += 1;
            }
        }
        let mut bad_row = None;
        let mut bad_rows = 0usize;
        for i in 0..m {
            let mut sum = 0.0;
            for j in 0..n {
                sum += c.get(i, j);
            }
            if (sum - self.row_ref[i]).abs() > self.row_threshold(c, i, tolerance) {
                bad_row = Some(i);
                bad_rows += 1;
            }
        }
        match (bad_rows, bad_cols) {
            (0, 0) => Verdict::Clean,
            (1, 1) => Verdict::Single {
                row: bad_row.unwrap_or(0),
                col: bad_col.unwrap_or(0),
            },
            _ => Verdict::Wider,
        }
    }
}

/// Recomputes the single entry `(row, col)` of `C = α·op(A)·op(B)` from
/// the original operands, bit-identically to a fault-free full GEMM.
///
/// The recompute routes through [`crate::gemm`] on a 1×k (or k×1) view
/// of `op`-row `row` of `A` and a k×1 (or 1×k) view of `op`-column `col`
/// of `B`, taken *in storage order* so the kernel walks the same memory
/// and the same `KC`-block accumulation sequence as the full product.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if the operand shapes are
/// inconsistent or `(row, col)` is out of range for the product.
#[allow(clippy::too_many_arguments)] // mirrors the gemm operand list plus the localized entry
pub fn correct_entry(
    alpha: f64,
    a: MatRef<'_>,
    ta: Trans,
    b: MatRef<'_>,
    tb: Trans,
    c: &mut MatMut<'_>,
    row: usize,
    col: usize,
) -> Result<()> {
    let (m, k) = ta.apply(a.rows(), a.cols());
    let (_, n) = tb.apply(b.rows(), b.cols());
    if row >= m || col >= n {
        return Err(MatrixError::DimensionMismatch {
            op: "checksum_correct",
            expected: format!("entry within {m}x{n}"),
            found: format!("({row}, {col})"),
        });
    }
    let a_row = match ta {
        Trans::No => a.submatrix(row, 0, 1, k),
        Trans::Yes => a.submatrix(0, row, k, 1),
    };
    let b_col = match tb {
        Trans::No => b.submatrix(0, col, k, 1),
        Trans::Yes => b.submatrix(col, 0, 1, k),
    };
    let mut cell = Mat::zeros(1, 1);
    crate::level3::gemm(alpha, a_row, ta, b_col, tb, 0.0, cell.as_mut())?;
    c.set(row, col, cell[(0, 0)]);
    Ok(())
}

/// Flips bit `bit` (0 = mantissa LSB, 62 = top exponent bit, 63 = sign)
/// of the IEEE-754 representation of `x` — the canonical single-event
/// upset model the SDC injector applies to resident buffers.
pub fn flip_bit(x: f64, bit: u8) -> f64 {
    f64::from_bits(x.to_bits() ^ (1u64 << u32::from(bit.min(63))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_matrix::Mat;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Bounded away from zero so exponent-bit flips always produce
            // a delta far above the rounding tolerance.
            1.0 + (state % 1000) as f64 / 1000.0
        })
    }

    fn product(alpha: f64, a: &Mat, ta: Trans, b: &Mat, tb: Trans) -> (Mat, GemmChecksum) {
        let (m, _) = ta.apply(a.rows(), a.cols());
        let (_, n) = tb.apply(b.rows(), b.cols());
        let mut c = Mat::zeros(m, n);
        crate::level3::gemm(alpha, a.as_ref(), ta, b.as_ref(), tb, 0.0, c.as_mut()).unwrap();
        let cs = encode(alpha, a.as_ref(), ta, b.as_ref(), tb).unwrap();
        (c, cs)
    }

    #[test]
    fn clean_product_verifies_clean_for_all_transposes() {
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            let (m, n, k) = (17, 11, 29);
            let a = match ta {
                Trans::No => pseudo(m, k, 1),
                Trans::Yes => pseudo(k, m, 1),
            };
            let b = match tb {
                Trans::No => pseudo(k, n, 2),
                Trans::Yes => pseudo(n, k, 2),
            };
            let (c, cs) = product(1.5, &a, ta, &b, tb);
            assert_eq!(cs.shape(), (m, n));
            assert_eq!(cs.verify(c.as_ref(), 64.0), Verdict::Clean);
        }
    }

    #[test]
    fn single_flip_is_localized_and_corrected_bit_identically() {
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            let (m, n, k) = (300, 9, 520); // k spans multiple KC blocks
            let a = match ta {
                Trans::No => pseudo(m, k, 3),
                Trans::Yes => pseudo(k, m, 3),
            };
            let b = match tb {
                Trans::No => pseudo(k, n, 4),
                Trans::Yes => pseudo(n, k, 4),
            };
            let (clean, cs) = product(1.0, &a, ta, &b, tb);
            let mut c = clean.clone();
            let (pi, pj) = (137 % m, 7 % n);
            c[(pi, pj)] = flip_bit(c[(pi, pj)], 54);
            assert_eq!(
                cs.verify(c.as_ref(), 64.0),
                Verdict::Single { row: pi, col: pj }
            );
            let mut cm = c.as_mut();
            correct_entry(1.0, a.as_ref(), ta, b.as_ref(), tb, &mut cm, pi, pj).unwrap();
            // Bit-identical, not merely close: the corrected entry must
            // equal the fault-free GEMM's bits exactly.
            assert_eq!(c[(pi, pj)].to_bits(), clean[(pi, pj)].to_bits());
            assert_eq!(cs.verify(c.as_ref(), 64.0), Verdict::Clean);
        }
    }

    #[test]
    fn correction_is_bit_identical_through_the_parallel_split() {
        // Wide enough (n > 64, flops > 2^20) that the full GEMM forks.
        let (m, n, k) = (96, 200, 96);
        let a = pseudo(m, k, 5);
        let b = pseudo(k, n, 6);
        let (clean, _) = product(2.0, &a, Trans::No, &b, Trans::No);
        let mut c = clean.clone();
        c[(40, 150)] = flip_bit(c[(40, 150)], 62);
        let mut cm = c.as_mut();
        correct_entry(
            2.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            &mut cm,
            40,
            150,
        )
        .unwrap();
        assert_eq!(c[(40, 150)].to_bits(), clean[(40, 150)].to_bits());
    }

    #[test]
    fn two_flips_in_distinct_rows_and_columns_report_wider() {
        let (m, n, k) = (20, 10, 15);
        let a = pseudo(m, k, 7);
        let b = pseudo(k, n, 8);
        let (mut c, cs) = product(1.0, &a, Trans::No, &b, Trans::No);
        c[(3, 2)] = flip_bit(c[(3, 2)], 55);
        c[(9, 6)] = flip_bit(c[(9, 6)], 55);
        assert_eq!(cs.verify(c.as_ref(), 64.0), Verdict::Wider);
    }

    #[test]
    fn sub_tolerance_perturbation_does_not_fire() {
        let (m, n, k) = (20, 10, 15);
        let a = pseudo(m, k, 9);
        let b = pseudo(k, n, 10);
        let (mut c, cs) = product(1.0, &a, Trans::No, &b, Trans::No);
        let thr = cs.col_threshold(c.as_ref(), 4, 64.0);
        c[(5, 4)] += thr * 1e-3;
        assert_eq!(cs.verify(c.as_ref(), 64.0), Verdict::Clean);
    }

    #[test]
    fn encode_rejects_inner_mismatch_and_correct_rejects_out_of_range() {
        let a = Mat::zeros(3, 4);
        let b = Mat::zeros(5, 2);
        assert!(encode(1.0, a.as_ref(), Trans::No, b.as_ref(), Trans::No).is_err());
        let b = Mat::zeros(4, 2);
        let mut c = Mat::zeros(3, 2);
        let mut cm = c.as_mut();
        assert!(correct_entry(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            &mut cm,
            3,
            0
        )
        .is_err());
    }

    #[test]
    fn flip_bit_round_trips_and_clamps() {
        let x = -1234.5678e-9;
        assert_eq!(flip_bit(flip_bit(x, 17), 17).to_bits(), x.to_bits());
        assert_eq!(flip_bit(1.0, 63), -1.0);
        // Out-of-range bit indices clamp to the sign bit.
        assert_eq!(flip_bit(1.0, 200), -1.0);
    }

    #[test]
    fn flop_estimates_are_symmetric_in_the_operands() {
        assert_eq!(encode_flops(10, 20, 30), encode_flops(20, 10, 30));
        assert_eq!(verify_flops(10, 20), verify_flops(20, 10));
    }
}
