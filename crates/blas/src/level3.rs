//! BLAS level-3: matrix-matrix kernels.
//!
//! GEMM is the kernel the whole paper revolves around: the sampling step
//! `B = ΩA` and the power-iteration multiplies are GEMMs, and their BLAS-3
//! character is what makes random sampling communication-optimal. The
//! implementation here recursively splits the output into column panels
//! with `rayon::join` and uses a register-blocked serial microkernel that
//! updates four output columns per sweep over `A`.

use crate::level1::axpy;
use crate::{Diag, Side, Trans, UpLo};
use rlra_matrix::{MatMut, MatRef, MatrixError, Result};

/// Output-column panel width below which GEMM runs serially.
const GEMM_PAR_THRESHOLD: usize = 64;
/// Minimum work (flops) before GEMM bothers to fork.
const GEMM_PAR_MIN_FLOPS: u64 = 1 << 20;

fn dim_err(op: &'static str, expected: String, found: String) -> MatrixError {
    MatrixError::DimensionMismatch {
        op,
        expected,
        found,
    }
}

/// General matrix-matrix multiply `C ← α·op(A)·op(B) + β·C`.
///
/// Parallelizes over column panels of `C` using rayon when the problem is
/// large enough; each serial leaf uses a 4-column register-blocked kernel.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if the shapes of `op(A)`,
/// `op(B)` and `C` are inconsistent.
pub fn gemm(
    alpha: f64,
    a: MatRef<'_>,
    ta: Trans,
    b: MatRef<'_>,
    tb: Trans,
    beta: f64,
    c: MatMut<'_>,
) -> Result<()> {
    let (m, ka) = ta.apply(a.rows(), a.cols());
    let (kb, n) = tb.apply(b.rows(), b.cols());
    if ka != kb || c.rows() != m || c.cols() != n {
        return Err(dim_err(
            "gemm",
            format!("op(A) {m}x{ka} · op(B) {ka}x{n} -> C {m}x{n}"),
            format!(
                "op(A) {}x{}, op(B) {}x{}, C {}x{}",
                m,
                ka,
                kb,
                n,
                c.rows(),
                c.cols()
            ),
        ));
    }
    if m == 0 || n == 0 {
        return Ok(());
    }
    let _wall = rlra_obs::walltime::scoped(rlra_obs::names::WALL_GEMM_SECONDS);
    gemm_rec(alpha, a, ta, b, tb, beta, c, ka);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn gemm_rec(
    alpha: f64,
    a: MatRef<'_>,
    ta: Trans,
    b: MatRef<'_>,
    tb: Trans,
    beta: f64,
    c: MatMut<'_>,
    k: usize,
) {
    let n = c.cols();
    let flops = 2 * c.rows() as u64 * n as u64 * k as u64;
    if n <= GEMM_PAR_THRESHOLD || flops < GEMM_PAR_MIN_FLOPS {
        gemm_serial(alpha, a, ta, b, tb, beta, c, k);
        return;
    }
    let mid = n / 2;
    let (cl, cr) = c.split_at_col(mid);
    // Partition op(B) columns to match the C panels.
    let (bl, br) = match tb {
        Trans::No => (b.cols_block(0, mid), b.cols_block(mid, n - mid)),
        Trans::Yes => (b.rows_block(0, mid), b.rows_block(mid, n - mid)),
    };
    rayon::join(
        || gemm_rec(alpha, a, ta, bl, tb, beta, cl, k),
        || gemm_rec(alpha, a, ta, br, tb, beta, cr, k),
    );
}

#[allow(clippy::too_many_arguments)]
fn gemm_serial(
    alpha: f64,
    a: MatRef<'_>,
    ta: Trans,
    b: MatRef<'_>,
    tb: Trans,
    beta: f64,
    mut c: MatMut<'_>,
    k: usize,
) {
    // Scale C by beta once up front.
    if beta == 0.0 {
        for j in 0..c.cols() {
            c.col_mut(j).fill(0.0);
        }
    } else if beta != 1.0 {
        for j in 0..c.cols() {
            for x in c.col_mut(j) {
                *x *= beta;
            }
        }
    }
    if alpha == 0.0 || k == 0 {
        return;
    }
    match ta {
        Trans::No => gemm_serial_a_notrans(alpha, a, b, tb, c, k),
        Trans::Yes => gemm_serial_a_trans(alpha, a, b, tb, c, k),
    }
}

/// `op(B)` scalar accessor: element `(l, j)` of `op(B)`.
#[inline]
fn b_at(b: MatRef<'_>, tb: Trans, l: usize, j: usize) -> f64 {
    match tb {
        Trans::No => b.get(l, j),
        Trans::Yes => b.get(j, l),
    }
}

/// Cache-block heights for the serial GEMM: an `MC × KC` panel of `A`
/// (`128 × 256` f64 = 256 KiB) stays L2-resident while all output column
/// groups consume it.
const GEMM_MC: usize = 128;
const GEMM_KC: usize = 256;

/// Serial kernel for `C += α·A·op(B)`: `MC × KC` cache blocking on `A`
/// with a register-blocked microkernel that accumulates four columns of
/// `C` per sweep. The blocking loads each `A` panel once per *all* output
/// columns instead of once per four, cutting the dominant memory traffic
/// by `n/4` for wide outputs.
fn gemm_serial_a_notrans(
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    tb: Trans,
    mut c: MatMut<'_>,
    k: usize,
) {
    let m = c.rows();
    let n = c.cols();
    let mut l0 = 0;
    while l0 < k {
        let kc = GEMM_KC.min(k - l0);
        let mut i0 = 0;
        while i0 < m {
            let mc = GEMM_MC.min(m - i0);
            let a_block = a.submatrix(i0, l0, mc, kc);
            let mut c_block = c.submatrix_mut(i0, 0, mc, n);
            gemm_micro_panel(alpha, a_block, b, tb, l0, c_block.reborrow(), kc);
            i0 += mc;
        }
        l0 += kc;
    }
}

/// Microkernel over one `mc × kc` block of `A`: accumulates four output
/// columns at a time. `l0` is the global offset of the block's columns
/// within `op(B)`'s rows.
fn gemm_micro_panel(
    alpha: f64,
    a_block: MatRef<'_>,
    b: MatRef<'_>,
    tb: Trans,
    l0: usize,
    mut c: MatMut<'_>,
    kc: usize,
) {
    let m = c.rows();
    let n = c.cols();
    let mut j = 0;
    while j + 4 <= n {
        let mut block = c.submatrix_mut(0, j, m, 4);
        let (data, ld) = block.raw_parts_mut();
        let (c0, rest) = data.split_at_mut(ld);
        let (c1, rest) = rest.split_at_mut(ld);
        let (c2, c3) = rest.split_at_mut(ld);
        let (c0, c1, c2) = (&mut c0[..m], &mut c1[..m], &mut c2[..m]);
        let c3 = &mut c3[..m];
        for l in 0..kc {
            let al = a_block.col(l);
            let b0 = alpha * b_at(b, tb, l0 + l, j);
            let b1 = alpha * b_at(b, tb, l0 + l, j + 1);
            let b2 = alpha * b_at(b, tb, l0 + l, j + 2);
            let b3 = alpha * b_at(b, tb, l0 + l, j + 3);
            if b0 == 0.0 && b1 == 0.0 && b2 == 0.0 && b3 == 0.0 {
                continue;
            }
            for i in 0..m {
                let ai = al[i];
                c0[i] += b0 * ai;
                c1[i] += b1 * ai;
                c2[i] += b2 * ai;
                c3[i] += b3 * ai;
            }
        }
        j += 4;
    }
    while j < n {
        for l in 0..kc {
            let coeff = alpha * b_at(b, tb, l0 + l, j);
            if coeff != 0.0 {
                axpy(coeff, a_block.col(l), c.col_mut(j));
            }
        }
        j += 1;
    }
}

/// Serial kernel for `C += α·Aᵀ·op(B)`: each output entry is an inner
/// product along a column of `A`, which is contiguous in column-major
/// storage.
fn gemm_serial_a_trans(
    alpha: f64,
    a: MatRef<'_>,
    b: MatRef<'_>,
    tb: Trans,
    mut c: MatMut<'_>,
    k: usize,
) {
    let m = c.rows();
    let n = c.cols();
    match tb {
        Trans::No => {
            for j in 0..n {
                let bj = b.col(j);
                for i in 0..m {
                    let s = crate::level1::dot(a.col(i), bj);
                    let cj = c.col_mut(j);
                    cj[i] += alpha * s;
                }
            }
        }
        Trans::Yes => {
            // Gather row j of B once per output column to keep the inner
            // loop contiguous.
            let mut brow = vec![0.0f64; k];
            for j in 0..n {
                for (l, bl) in brow.iter_mut().enumerate() {
                    *bl = b.get(j, l);
                }
                for i in 0..m {
                    let s = crate::level1::dot(a.col(i), &brow);
                    let cj = c.col_mut(j);
                    cj[i] += alpha * s;
                }
            }
        }
    }
}

/// Symmetric rank-k update `C ← α·op(A)·op(A)ᵀ + β·C`, writing only the
/// `uplo` triangle of `C` (the other triangle is left untouched).
///
/// With `trans = No` and a short-wide `A` (`ℓ × n`), this is exactly the
/// Gram-matrix step `G = BBᵀ` of CholQR in the paper.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] if `C` is not square of
/// order matching `op(A)`.
pub fn syrk(
    alpha: f64,
    a: MatRef<'_>,
    trans: Trans,
    beta: f64,
    mut c: MatMut<'_>,
    uplo: UpLo,
) -> Result<()> {
    let (nc, k) = trans.apply(a.rows(), a.cols());
    if c.rows() != nc || c.cols() != nc {
        return Err(dim_err(
            "syrk",
            format!("C square of order {nc}"),
            format!("C {}x{}", c.rows(), c.cols()),
        ));
    }
    // Scale the referenced triangle.
    for j in 0..nc {
        let (lo, hi) = match uplo {
            UpLo::Lower => (j, nc),
            UpLo::Upper => (0, j + 1),
        };
        let cj = c.col_mut(j);
        for x in &mut cj[lo..hi] {
            *x *= beta;
        }
    }
    if alpha == 0.0 || k == 0 {
        return Ok(());
    }
    match trans {
        Trans::Yes => {
            // C = alpha * A^T A: entries are dots of contiguous columns.
            for j in 0..nc {
                let (lo, hi) = match uplo {
                    UpLo::Lower => (j, nc),
                    UpLo::Upper => (0, j + 1),
                };
                for i in lo..hi {
                    let s = crate::level1::dot(a.col(i), a.col(j));
                    let cj = c.col_mut(j);
                    cj[i] += alpha * s;
                }
            }
        }
        Trans::No => {
            // C = alpha * A A^T: accumulate rank-1 updates column of A at
            // a time, touching only the requested triangle.
            for l in 0..k {
                let al = a.col(l);
                for j in 0..nc {
                    let coeff = alpha * al[j];
                    if coeff == 0.0 {
                        continue;
                    }
                    let (lo, hi) = match uplo {
                        UpLo::Lower => (j, nc),
                        UpLo::Upper => (0, j + 1),
                    };
                    let cj = c.col_mut(j);
                    for i in lo..hi {
                        cj[i] += coeff * al[i];
                    }
                }
            }
        }
    }
    Ok(())
}

/// Triangular solve with multiple right-hand sides:
/// `op(T)·X = α·B` (left) or `X·op(T) = α·B` (right), overwriting `B`
/// with `X`.
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape errors and
/// [`MatrixError::SingularDiagonal`] on an exactly zero pivot.
pub fn trsm(
    side: Side,
    uplo: UpLo,
    trans: Trans,
    diag: Diag,
    alpha: f64,
    t: MatRef<'_>,
    mut b: MatMut<'_>,
) -> Result<()> {
    let n = t.rows();
    if t.cols() != n {
        return Err(dim_err(
            "trsm",
            "T square".into(),
            format!("T {}x{}", t.rows(), t.cols()),
        ));
    }
    let expected = match side {
        Side::Left => b.rows(),
        Side::Right => b.cols(),
    };
    if expected != n {
        return Err(dim_err(
            "trsm",
            format!("T order == {n}"),
            format!("B {}x{} on side {side:?}", b.rows(), b.cols()),
        ));
    }
    if alpha != 1.0 {
        for j in 0..b.cols() {
            for x in b.col_mut(j) {
                *x *= alpha;
            }
        }
    }
    match side {
        Side::Left => {
            for j in 0..b.cols() {
                crate::level2::trsv(t, uplo, trans, diag, b.col_mut(j))?;
            }
            Ok(())
        }
        Side::Right => trsm_right(uplo, trans, diag, t, b),
    }
}

/// Right-side solve `X·S = B` with `S = op(T)`: columns of `X` are
/// resolved in dependency order with columnwise AXPY updates, which keeps
/// the kernel BLAS-3-like (contiguous column traffic).
fn trsm_right(
    uplo: UpLo,
    trans: Trans,
    diag: Diag,
    t: MatRef<'_>,
    mut b: MatMut<'_>,
) -> Result<()> {
    let n = t.rows();
    let s_at = |i: usize, j: usize| -> f64 {
        match trans {
            Trans::No => t.get(i, j),
            Trans::Yes => t.get(j, i),
        }
    };
    // Effective triangle of S = op(T). For S upper, X[:, j] depends on the
    // already-solved columns i < j (forward order); for S lower the mirror.
    let s_upper = matches!(
        (uplo, trans),
        (UpLo::Upper, Trans::No) | (UpLo::Lower, Trans::Yes)
    );
    let order: Vec<usize> = if s_upper {
        (0..n).collect()
    } else {
        (0..n).rev().collect()
    };
    for &j in &order {
        // X[:, j] = (B[:, j] - sum_{i before j} X[:, i] * S[i, j]) / S[j, j]
        {
            // Split so we can read solved columns while updating column j.
            let (left, right) = b.reborrow().split_at_col(j);
            if s_upper {
                let mut right = right;
                let bj = right.col_mut(0);
                for i in 0..j {
                    let coeff = s_at(i, j);
                    if coeff != 0.0 {
                        axpy(-coeff, left.col(i), bj);
                    }
                }
            } else {
                // Dependencies live to the right of column j.
                let (mut cur, rest) = right.split_at_col(1);
                let bj = cur.col_mut(0);
                for i in j + 1..n {
                    let coeff = s_at(i, j);
                    if coeff != 0.0 {
                        axpy(-coeff, rest.col(i - j - 1), bj);
                    }
                }
            }
        }
        if let Diag::NonUnit = diag {
            let d = s_at(j, j);
            if d == 0.0 {
                return Err(MatrixError::SingularDiagonal { index: j });
            }
            for x in b.col_mut(j) {
                *x /= d;
            }
        }
    }
    Ok(())
}

/// Triangular matrix-matrix multiply
/// `B ← α·op(T)·B` (left) or `B ← α·B·op(T)` (right).
///
/// # Errors
///
/// Returns [`MatrixError::DimensionMismatch`] on shape errors.
pub fn trmm(
    side: Side,
    uplo: UpLo,
    trans: Trans,
    diag: Diag,
    alpha: f64,
    t: MatRef<'_>,
    mut b: MatMut<'_>,
) -> Result<()> {
    let n = t.rows();
    if t.cols() != n {
        return Err(dim_err(
            "trmm",
            "T square".into(),
            format!("T {}x{}", t.rows(), t.cols()),
        ));
    }
    let expected = match side {
        Side::Left => b.rows(),
        Side::Right => b.cols(),
    };
    if expected != n {
        return Err(dim_err(
            "trmm",
            format!("T order == {n}"),
            format!("B {}x{} on side {side:?}", b.rows(), b.cols()),
        ));
    }
    match side {
        Side::Left => {
            for j in 0..b.cols() {
                crate::level2::trmv(t, uplo, trans, diag, b.col_mut(j))?;
                if alpha != 1.0 {
                    for x in b.col_mut(j) {
                        *x *= alpha;
                    }
                }
            }
            Ok(())
        }
        Side::Right => trmm_right(uplo, trans, diag, alpha, t, b),
    }
}

/// Right-side multiply `B ← α·B·S` with `S = op(T)`: result column `j` is
/// a combination of source columns restricted to the triangle, computed in
/// an order that never overwrites a source column before it is consumed.
fn trmm_right(
    uplo: UpLo,
    trans: Trans,
    diag: Diag,
    alpha: f64,
    t: MatRef<'_>,
    mut b: MatMut<'_>,
) -> Result<()> {
    let n = t.rows();
    let m = b.rows();
    let s_at = |i: usize, j: usize| -> f64 {
        match trans {
            Trans::No => t.get(i, j),
            Trans::Yes => t.get(j, i),
        }
    };
    let s_upper = matches!(
        (uplo, trans),
        (UpLo::Upper, Trans::No) | (UpLo::Lower, Trans::Yes)
    );
    // For S upper: out[:, j] = sum_{i <= j} B[:, i] S[i, j]; computing j
    // from high to low leaves the needed source columns (i < j) intact.
    // For S lower it is the mirror image.
    let mut scratch = vec![0.0f64; m];
    let order: Vec<usize> = if s_upper {
        (0..n).rev().collect()
    } else {
        (0..n).collect()
    };
    for &j in &order {
        scratch.fill(0.0);
        let (lo, hi) = if s_upper { (0, j) } else { (j + 1, n) };
        for i in lo..hi {
            let coeff = s_at(i, j);
            if coeff != 0.0 {
                axpy(coeff, b.col(i), &mut scratch);
            }
        }
        let djj = match diag {
            Diag::Unit => 1.0,
            Diag::NonUnit => s_at(j, j),
        };
        let bj = b.col_mut(j);
        for (x, &s) in bj.iter_mut().zip(&scratch) {
            *x = alpha * (djj * *x + s);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::gemm_ref;
    use rlra_matrix::ops::max_abs_diff;
    use rlra_matrix::Mat;

    fn pseudo(rows: usize, cols: usize, seed: u64) -> Mat {
        // Deterministic pseudo-random fill without pulling in `rand`.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        Mat::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        })
    }

    fn assert_close(a: &Mat, b: &Mat, tol: f64) {
        let d = max_abs_diff(a, b).unwrap();
        assert!(d <= tol, "max abs diff {d} > {tol}");
    }

    #[test]
    fn gemm_all_transpose_combinations_match_reference() {
        let (m, n, k) = (13, 9, 7);
        for (ta, tb) in [
            (Trans::No, Trans::No),
            (Trans::Yes, Trans::No),
            (Trans::No, Trans::Yes),
            (Trans::Yes, Trans::Yes),
        ] {
            let a = match ta {
                Trans::No => pseudo(m, k, 1),
                Trans::Yes => pseudo(k, m, 1),
            };
            let b = match tb {
                Trans::No => pseudo(k, n, 2),
                Trans::Yes => pseudo(n, k, 2),
            };
            let mut c = Mat::zeros(m, n);
            gemm(1.0, a.as_ref(), ta, b.as_ref(), tb, 0.0, c.as_mut()).unwrap();
            let expect = gemm_ref(&a, ta, &b, tb);
            assert_close(&c, &expect, 1e-12);
        }
    }

    #[test]
    fn gemm_alpha_beta() {
        let a = pseudo(5, 4, 3);
        let b = pseudo(4, 6, 4);
        let c0 = pseudo(5, 6, 5);
        let mut c = c0.clone();
        gemm(
            2.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            -1.0,
            c.as_mut(),
        )
        .unwrap();
        let ab = gemm_ref(&a, Trans::No, &b, Trans::No);
        let expect = Mat::from_fn(5, 6, |i, j| 2.0 * ab[(i, j)] - c0[(i, j)]);
        assert_close(&c, &expect, 1e-12);
    }

    #[test]
    fn gemm_wide_exercises_parallel_split() {
        // n > GEMM_PAR_THRESHOLD and enough flops to fork.
        let (m, n, k) = (64, 200, 96);
        let a = pseudo(m, k, 6);
        let b = pseudo(k, n, 7);
        let mut c = Mat::zeros(m, n);
        gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c.as_mut(),
        )
        .unwrap();
        assert_close(&c, &gemm_ref(&a, Trans::No, &b, Trans::No), 1e-11);
    }

    #[test]
    fn gemm_rejects_bad_shapes() {
        let a = Mat::zeros(3, 4);
        let b = Mat::zeros(5, 2);
        let mut c = Mat::zeros(3, 2);
        assert!(gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c.as_mut()
        )
        .is_err());
    }

    #[test]
    fn gemm_empty_ok() {
        let a = Mat::zeros(0, 3);
        let b = Mat::zeros(3, 0);
        let mut c = Mat::zeros(0, 0);
        assert!(gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.0,
            c.as_mut()
        )
        .is_ok());
    }

    #[test]
    fn gemm_k_zero_scales_only() {
        let a = Mat::zeros(3, 0);
        let b = Mat::zeros(0, 3);
        let mut c = Mat::filled(3, 3, 2.0);
        gemm(
            1.0,
            a.as_ref(),
            Trans::No,
            b.as_ref(),
            Trans::No,
            0.5,
            c.as_mut(),
        )
        .unwrap();
        assert_eq!(c[(1, 1)], 1.0);
    }

    #[test]
    fn syrk_no_trans_matches_gemm_triangle() {
        let a = pseudo(6, 9, 8);
        let full = gemm_ref(&a, Trans::No, &a, Trans::Yes);
        for uplo in [UpLo::Lower, UpLo::Upper] {
            let mut c = Mat::zeros(6, 6);
            syrk(1.0, a.as_ref(), Trans::No, 0.0, c.as_mut(), uplo).unwrap();
            for j in 0..6 {
                for i in 0..6 {
                    let in_tri = match uplo {
                        UpLo::Lower => i >= j,
                        UpLo::Upper => i <= j,
                    };
                    if in_tri {
                        assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-12);
                    } else {
                        assert_eq!(c[(i, j)], 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn syrk_trans_matches_gemm_triangle() {
        let a = pseudo(9, 5, 9);
        let full = gemm_ref(&a, Trans::Yes, &a, Trans::No);
        let mut c = Mat::zeros(5, 5);
        syrk(1.0, a.as_ref(), Trans::Yes, 0.0, c.as_mut(), UpLo::Upper).unwrap();
        for j in 0..5 {
            for i in 0..=j {
                assert!((c[(i, j)] - full[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn syrk_beta_preserves_triangle_only() {
        let a = pseudo(4, 3, 10);
        let mut c = Mat::filled(4, 4, 1.0);
        syrk(0.0, a.as_ref(), Trans::No, 2.0, c.as_mut(), UpLo::Lower).unwrap();
        assert_eq!(c[(2, 1)], 2.0); // lower scaled
        assert_eq!(c[(1, 2)], 1.0); // upper untouched
    }

    fn upper_tri(n: usize, seed: u64) -> Mat {
        let mut t = pseudo(n, n, seed);
        for j in 0..n {
            for i in j + 1..n {
                t[(i, j)] = 0.0;
            }
            t[(j, j)] += 4.0; // well conditioned
        }
        t
    }

    #[test]
    fn trsm_left_solves() {
        let n = 7;
        let t = upper_tri(n, 11);
        let x_true = pseudo(n, 4, 12);
        // B = T X
        let b = gemm_ref(&t, Trans::No, &x_true, Trans::No);
        let mut x = b.clone();
        trsm(
            Side::Left,
            UpLo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            t.as_ref(),
            x.as_mut(),
        )
        .unwrap();
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn trsm_left_transpose_solves() {
        let n = 6;
        let t = upper_tri(n, 13);
        let x_true = pseudo(n, 3, 14);
        let tt = t.transpose();
        let b = gemm_ref(&tt, Trans::No, &x_true, Trans::No);
        let mut x = b.clone();
        trsm(
            Side::Left,
            UpLo::Upper,
            Trans::Yes,
            Diag::NonUnit,
            1.0,
            t.as_ref(),
            x.as_mut(),
        )
        .unwrap();
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn trsm_right_solves_upper() {
        let n = 5;
        let t = upper_tri(n, 15);
        let x_true = pseudo(8, n, 16);
        let b = gemm_ref(&x_true, Trans::No, &t, Trans::No);
        let mut x = b.clone();
        trsm(
            Side::Right,
            UpLo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            t.as_ref(),
            x.as_mut(),
        )
        .unwrap();
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn trsm_right_solves_lower_transpose() {
        let n = 5;
        let t = upper_tri(n, 17); // use as T, op(T) = T^T is lower
        let tt = t.transpose();
        let x_true = pseudo(6, n, 18);
        let b = gemm_ref(&x_true, Trans::No, &tt, Trans::No);
        let mut x = b.clone();
        trsm(
            Side::Right,
            UpLo::Upper,
            Trans::Yes,
            Diag::NonUnit,
            1.0,
            t.as_ref(),
            x.as_mut(),
        )
        .unwrap();
        assert_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn trsm_alpha_scales_rhs() {
        let n = 3;
        let t = Mat::identity(n);
        let mut b = Mat::filled(n, 2, 1.0);
        trsm(
            Side::Left,
            UpLo::Upper,
            Trans::No,
            Diag::NonUnit,
            3.0,
            t.as_ref(),
            b.as_mut(),
        )
        .unwrap();
        assert_eq!(b[(0, 0)], 3.0);
    }

    #[test]
    fn trsm_detects_singular() {
        let mut t = upper_tri(3, 19);
        t[(1, 1)] = 0.0;
        let mut b = Mat::filled(3, 1, 1.0);
        let e = trsm(
            Side::Left,
            UpLo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            t.as_ref(),
            b.as_mut(),
        );
        assert!(e.is_err());
    }

    #[test]
    fn trmm_left_matches_reference() {
        let n = 6;
        let t = upper_tri(n, 20);
        let b0 = pseudo(n, 4, 21);
        let mut b = b0.clone();
        trmm(
            Side::Left,
            UpLo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            t.as_ref(),
            b.as_mut(),
        )
        .unwrap();
        let tri = rlra_matrix::ops::triu(&t);
        assert_close(&b, &gemm_ref(&tri, Trans::No, &b0, Trans::No), 1e-11);
    }

    #[test]
    fn trmm_right_matches_reference() {
        let n = 6;
        let t = upper_tri(n, 22);
        let b0 = pseudo(4, n, 23);
        let mut b = b0.clone();
        trmm(
            Side::Right,
            UpLo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            t.as_ref(),
            b.as_mut(),
        )
        .unwrap();
        let tri = rlra_matrix::ops::triu(&t);
        assert_close(&b, &gemm_ref(&b0, Trans::No, &tri, Trans::No), 1e-11);
    }

    #[test]
    fn trmm_right_transpose_matches_reference() {
        let n = 5;
        let t = upper_tri(n, 24);
        let b0 = pseudo(3, n, 25);
        let mut b = b0.clone();
        trmm(
            Side::Right,
            UpLo::Upper,
            Trans::Yes,
            Diag::NonUnit,
            1.0,
            t.as_ref(),
            b.as_mut(),
        )
        .unwrap();
        let tri = rlra_matrix::ops::triu(&t).transpose();
        assert_close(&b, &gemm_ref(&b0, Trans::No, &tri, Trans::No), 1e-11);
    }

    #[test]
    fn trmm_unit_diag() {
        let n = 4;
        let t = upper_tri(n, 26);
        let b0 = pseudo(n, 2, 27);
        let mut b = b0.clone();
        trmm(
            Side::Left,
            UpLo::Upper,
            Trans::No,
            Diag::Unit,
            1.0,
            t.as_ref(),
            b.as_mut(),
        )
        .unwrap();
        let mut tri = rlra_matrix::ops::triu(&t);
        for i in 0..n {
            tri[(i, i)] = 1.0;
        }
        assert_close(&b, &gemm_ref(&tri, Trans::No, &b0, Trans::No), 1e-11);
    }

    #[test]
    fn trmm_undoes_trsm() {
        let n = 8;
        let t = upper_tri(n, 28);
        let b0 = pseudo(n, 5, 29);
        let mut b = b0.clone();
        trsm(
            Side::Left,
            UpLo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            t.as_ref(),
            b.as_mut(),
        )
        .unwrap();
        trmm(
            Side::Left,
            UpLo::Upper,
            Trans::No,
            Diag::NonUnit,
            1.0,
            t.as_ref(),
            b.as_mut(),
        )
        .unwrap();
        assert_close(&b, &b0, 1e-10);
    }
}
