//! A minimal complex scalar for the FFT crate.
//!
//! Implemented in-repo to keep the external dependency surface down to the
//! crates allowed by the workspace policy (see DESIGN.md §3).

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number `re + i·im`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates `re + i·im`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared modulus `|z|²` (avoids the square root).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Complex64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-14;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
    }

    #[test]
    fn multiplication() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        let p = a * b;
        assert_eq!(p, Complex64::new(5.0, 5.0));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(2.5, -1.5);
        let b = Complex64::new(-0.5, 4.0);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < TOL && (q.im - a.im).abs() < TOL);
    }

    #[test]
    fn abs_and_norm_sqr() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn conj_negates_imag() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex64::new(1.0, -2.0));
        // z * conj(z) = |z|^2
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < TOL && p.im.abs() < TOL);
    }

    #[test]
    fn cis_is_unit_modulus() {
        for k in 0..8 {
            let z = Complex64::cis(k as f64 * 0.7);
            assert!((z.abs() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn cis_addition_theorem() {
        let a = 0.3;
        let b = 1.1;
        let lhs = Complex64::cis(a) * Complex64::cis(b);
        let rhs = Complex64::cis(a + b);
        assert!((lhs - rhs).abs() < TOL);
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex64::new(1.0, 1.0);
        z += Complex64::new(2.0, -1.0);
        assert_eq!(z, Complex64::new(3.0, 0.0));
        z -= Complex64::new(1.0, 0.0);
        assert_eq!(z, Complex64::new(2.0, 0.0));
        z *= Complex64::I;
        assert_eq!(z, Complex64::new(0.0, 2.0));
    }

    #[test]
    fn real_scale() {
        let z = Complex64::new(1.0, -2.0) * 3.0;
        assert_eq!(z, Complex64::new(3.0, -6.0));
    }
}
