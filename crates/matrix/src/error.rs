//! Error types shared across the workspace's linear-algebra crates.

use std::fmt;

/// Errors raised by matrix construction and dense linear algebra routines.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Description of the expected shape relation.
        expected: String,
        /// Description of the shapes that were actually supplied.
        found: String,
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// The offending (row, column) index.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
    /// A factorization encountered a matrix that is singular (or not
    /// positive definite, for Cholesky-type routines) to working precision.
    NotPositiveDefinite {
        /// Index of the pivot at which the breakdown was detected.
        pivot: usize,
        /// The value of the offending pivot.
        value: f64,
    },
    /// A triangular solve encountered an (exactly or numerically) zero
    /// diagonal entry.
    SingularDiagonal {
        /// Index of the zero diagonal entry.
        index: usize,
    },
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// The routine that failed.
        op: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// A parameter had an invalid value (e.g. zero-size sampling subspace).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        message: String,
    },
    /// A requested feature is not available on the execution backend that
    /// received the request (e.g. FFT sampling on the multi-GPU backend).
    Unsupported {
        /// Name of the backend that rejected the request.
        backend: &'static str,
        /// Description of the unsupported feature or mode.
        feature: String,
    },
    /// An internal invariant was violated (a state the caller cannot
    /// cause through the public API). Library code returns this instead
    /// of panicking so a serving deployment degrades to a failed request
    /// rather than a dead worker.
    Internal {
        /// The operation whose invariant broke.
        op: &'static str,
        /// Description of the broken invariant.
        invariant: &'static str,
    },
    /// A (simulated) device fault fired during execution. Raised by the
    /// fault-injection machinery in `rlra-gpu`; a recovery policy in the
    /// executor layer may retry (transients) or degrade the fleet
    /// (fail-stop losses) instead of surfacing this to the caller.
    DeviceFault {
        /// Global index of the faulting device.
        device: usize,
        /// What kind of fault fired.
        kind: DeviceFaultKind,
        /// Kernel-launch ordinal on that device at which the fault fired.
        at: u64,
    },
    /// A numerical breakdown (rank deficiency below every ladder rung,
    /// a non-finite block, or a norm explosion) that the orthogonalization
    /// fallback ladder could not absorb. Carries where it was detected so
    /// the guard's report and the error agree.
    NumericalBreakdown {
        /// Pipeline stage at which the breakdown was detected.
        stage: &'static str,
        /// What was detected (`non-finite block`, `norm explosion`,
        /// `ladder exhausted`, ...).
        detail: &'static str,
    },
    /// The verified-accuracy pass measured a posterior error estimate
    /// above the requested tolerance and the bounded retry budget could
    /// not close the gap.
    AccuracyNotReached {
        /// Posterior error estimate of the best attempt.
        achieved: f64,
        /// The tolerance the caller requested.
        required: f64,
        /// Number of full attempts made (including the first).
        attempts: usize,
    },
    /// A deadline-budgeted run overran its simulated wall-clock budget.
    /// The run was checkpointed before surfacing this, so the caller can
    /// retrieve the partial result (and its posterior error estimate)
    /// under the carried snapshot id, or resume the job later.
    DeadlineExceeded {
        /// Id of the snapshot written at the overrun boundary.
        snapshot: u64,
        /// The simulated-seconds budget that was exceeded.
        budget: f64,
        /// Simulated seconds actually elapsed when the overrun was caught.
        elapsed: f64,
    },
    /// A checkpoint snapshot failed validation (bad magic, unknown
    /// version, truncation, or a checksum mismatch). Corrupt snapshots
    /// are always surfaced as this error — never as a panic.
    CheckpointCorrupt {
        /// What failed while decoding the snapshot.
        detail: &'static str,
    },
    /// Checksum verification caught silent data corruption (a bit flip
    /// or a quietly wrong kernel result) that the integrity policy
    /// could not localize and correct in place. Unlike
    /// [`MatrixError::DeviceFault`], the launch itself *succeeded* —
    /// the wrong numbers would have sailed into the factors. Recovery
    /// (bounded re-runs, checkpoint rollback) is the integrity layer's
    /// job, never the transient-retry path's.
    SilentCorruption {
        /// Global index of the device whose buffer was poisoned.
        device: usize,
        /// The guarded kernel/stage at which verification tripped.
        kernel: &'static str,
        /// `(row, col)` of the first mismatching element of the output
        /// panel (best effort: `(0, 0)` when the corruption was too
        /// wide to localize).
        location: (usize, usize),
    },
}

/// Classification of an injected device fault (see `MatrixError::DeviceFault`).
///
/// The richer scheduling representation (e.g. the straggler's slowdown
/// factor) lives with the injector in `rlra-gpu`; this enum is only the
/// error-surface classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceFaultKind {
    /// A retry-able transient kernel failure (e.g. an ECC double-bit
    /// error aborting one launch). The device survives.
    Transient,
    /// Permanent device loss: every later launch on the device fails.
    FailStop,
    /// The device fell behind (thermal throttling, a bad PCIe link):
    /// its kernel costs are inflated by a multiplier. Surfaced for
    /// accounting; execution continues.
    Straggler,
}

impl fmt::Display for DeviceFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceFaultKind::Transient => "transient kernel failure",
            DeviceFaultKind::FailStop => "fail-stop device loss",
            DeviceFaultKind::Straggler => "straggler slowdown",
        };
        f.write_str(s)
    }
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch {
                op,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{op}: dimension mismatch (expected {expected}, found {found})"
                )
            }
            MatrixError::IndexOutOfBounds { index, shape } => {
                write!(
                    f,
                    "index ({}, {}) out of bounds for {}x{} matrix",
                    index.0, index.1, shape.0, shape.1
                )
            }
            MatrixError::NotPositiveDefinite { pivot, value } => {
                write!(
                    f,
                    "matrix not positive definite at pivot {pivot} (value {value:e})"
                )
            }
            MatrixError::SingularDiagonal { index } => {
                write!(
                    f,
                    "singular triangular factor: zero diagonal at index {index}"
                )
            }
            MatrixError::NoConvergence { op, iterations } => {
                write!(f, "{op}: no convergence after {iterations} iterations")
            }
            MatrixError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            MatrixError::Unsupported { backend, feature } => {
                write!(f, "backend `{backend}` does not support {feature}")
            }
            MatrixError::Internal { op, invariant } => {
                write!(f, "{op}: internal invariant violated ({invariant})")
            }
            MatrixError::DeviceFault { device, kind, at } => {
                write!(f, "device {device}: {kind} at launch {at}")
            }
            MatrixError::NumericalBreakdown { stage, detail } => {
                write!(f, "numerical breakdown at stage `{stage}`: {detail}")
            }
            MatrixError::AccuracyNotReached {
                achieved,
                required,
                attempts,
            } => {
                write!(
                    f,
                    "accuracy not reached after {attempts} attempts: \
                     posterior estimate {achieved:e} above tolerance {required:e}"
                )
            }
            MatrixError::DeadlineExceeded {
                snapshot,
                budget,
                elapsed,
            } => {
                write!(
                    f,
                    "deadline exceeded: {elapsed:.6}s elapsed against a {budget:.6}s \
                     budget (partial result checkpointed as snapshot {snapshot})"
                )
            }
            MatrixError::CheckpointCorrupt { detail } => {
                write!(f, "checkpoint corrupt: {detail}")
            }
            MatrixError::SilentCorruption {
                device,
                kernel,
                location,
            } => {
                write!(
                    f,
                    "silent data corruption on device {device} in `{kernel}` \
                     near ({}, {}): checksum verification failed and the \
                     corruption could not be corrected in place",
                    location.0, location.1
                )
            }
        }
    }
}

impl std::error::Error for MatrixError {}

/// Convenience alias used by every fallible routine in the workspace.
pub type Result<T> = std::result::Result<T, MatrixError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = MatrixError::DimensionMismatch {
            op: "gemm",
            expected: "a.cols == b.rows".into(),
            found: "3 vs 4".into(),
        };
        let s = e.to_string();
        assert!(s.contains("gemm"));
        assert!(s.contains("3 vs 4"));
    }

    #[test]
    fn display_out_of_bounds() {
        let e = MatrixError::IndexOutOfBounds {
            index: (5, 1),
            shape: (2, 2),
        };
        assert!(e.to_string().contains("(5, 1)"));
    }

    #[test]
    fn display_not_positive_definite() {
        let e = MatrixError::NotPositiveDefinite {
            pivot: 3,
            value: -1.0,
        };
        assert!(e.to_string().contains("pivot 3"));
    }

    #[test]
    fn display_no_convergence() {
        let e = MatrixError::NoConvergence {
            op: "jacobi_svd",
            iterations: 30,
        };
        assert!(e.to_string().contains("jacobi_svd"));
        assert!(e.to_string().contains("30"));
    }

    #[test]
    fn display_unsupported() {
        let e = MatrixError::Unsupported {
            backend: "multi-gpu",
            feature: "FFT (SRFT) sampling".into(),
        };
        let s = e.to_string();
        assert!(s.contains("multi-gpu"));
        assert!(s.contains("FFT"));
    }

    #[test]
    fn display_internal() {
        let e = MatrixError::Internal {
            op: "run_fixed_rank",
            invariant: "computing backend lost its host values",
        };
        let s = e.to_string();
        assert!(s.contains("run_fixed_rank"));
        assert!(s.contains("invariant"));
    }

    #[test]
    fn display_device_fault() {
        let e = MatrixError::DeviceFault {
            device: 2,
            kind: DeviceFaultKind::FailStop,
            at: 41,
        };
        let s = e.to_string();
        assert!(s.contains("device 2"));
        assert!(s.contains("fail-stop"));
        assert!(s.contains("41"));
    }

    #[test]
    fn device_fault_kinds_display_distinctly() {
        let labels: Vec<String> = [
            DeviceFaultKind::Transient,
            DeviceFaultKind::FailStop,
            DeviceFaultKind::Straggler,
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        assert_eq!(labels.len(), 3);
        assert!(labels.iter().all(|l| !l.is_empty()));
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[1], labels[2]);
    }

    #[test]
    fn display_numerical_breakdown() {
        let e = MatrixError::NumericalBreakdown {
            stage: "orth_b",
            detail: "ladder exhausted",
        };
        let s = e.to_string();
        assert!(s.contains("orth_b"));
        assert!(s.contains("ladder exhausted"));
    }

    #[test]
    fn display_accuracy_not_reached() {
        let e = MatrixError::AccuracyNotReached {
            achieved: 3e-2,
            required: 1e-6,
            attempts: 3,
        };
        let s = e.to_string();
        assert!(s.contains("3 attempts"));
        assert!(s.contains("3e-2"));
        assert!(s.contains("1e-6"));
    }

    #[test]
    fn display_deadline_exceeded() {
        let e = MatrixError::DeadlineExceeded {
            snapshot: 7,
            budget: 2.5,
            elapsed: 3.0,
        };
        let s = e.to_string();
        assert!(s.contains("deadline exceeded"));
        assert!(s.contains("snapshot 7"));
        assert!(s.contains("2.5"));
    }

    #[test]
    fn display_checkpoint_corrupt() {
        let e = MatrixError::CheckpointCorrupt {
            detail: "checksum mismatch",
        };
        let s = e.to_string();
        assert!(s.contains("checkpoint corrupt"));
        assert!(s.contains("checksum mismatch"));
    }

    #[test]
    fn display_silent_corruption() {
        let e = MatrixError::SilentCorruption {
            device: 3,
            kernel: "gemm_to_b",
            location: (5, 9),
        };
        let s = e.to_string();
        assert!(s.contains("silent data corruption"));
        assert!(s.contains("device 3"));
        assert!(s.contains("gemm_to_b"));
        assert!(s.contains("(5, 9)"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        let e = MatrixError::SingularDiagonal { index: 0 };
        takes_err(&e);
    }
}
