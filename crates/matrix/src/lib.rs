//! # rlra-matrix
//!
//! Dense column-major matrix storage and views for the `rlra` workspace.
//!
//! This crate is the storage substrate shared by every other crate in the
//! reproduction of *"Performance of Random Sampling for Computing Low-rank
//! Approximations of a Dense Matrix on GPUs"* (Mary et al., SC'15):
//!
//! - [`Mat`] — an owned, column-major `m × n` matrix of `f64`,
//! - [`MatRef`] / [`MatMut`] — borrowed views with an explicit leading
//!   dimension (`ld`), mirroring the BLAS/LAPACK calling convention so
//!   blocked algorithms can operate on submatrices without copying,
//! - [`ColPerm`] — column permutations as produced by QR with column
//!   pivoting,
//! - [`Complex64`] — a minimal complex scalar used by the FFT crate,
//! - norms (Frobenius, 1-norm, ∞-norm, spectral norm via power iteration).
//!
//! All matrices are column major: element `(i, j)` of a view with leading
//! dimension `ld` lives at linear index `i + j * ld`.

#![forbid(unsafe_code)]

pub mod complex;
pub mod dense;
pub mod error;
pub mod norms;
pub mod ops;
pub mod perm;
pub mod randn;
pub mod view;

pub use complex::Complex64;
pub use dense::Mat;
pub use error::{DeviceFaultKind, MatrixError, Result};
pub use perm::ColPerm;
pub use randn::gaussian_mat;
pub use view::{MatMut, MatRef};

/// Machine epsilon for `f64`, re-exported for convenience in tolerance
/// computations throughout the workspace.
pub const EPS: f64 = f64::EPSILON;
