//! Owned dense column-major matrix type.

use crate::error::{MatrixError, Result};
use crate::view::{MatMut, MatRef};
use std::fmt;
use std::ops::{Index, IndexMut};

/// An owned dense `rows × cols` matrix of `f64`, stored column major with
/// leading dimension equal to `rows` (i.e. the storage is fully packed).
///
/// `Mat` is the owning counterpart of the borrowed views [`MatRef`] and
/// [`MatMut`]; algorithms in the `rlra` workspace generally accept views so
/// they can be applied to submatrices of a larger allocation, in the style
/// of BLAS/LAPACK.
///
/// # Examples
///
/// ```
/// use rlra_matrix::Mat;
///
/// let a = Mat::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
/// assert_eq!(a[(1, 2)], 21.0);
/// assert_eq!(a.shape(), (2, 3));
/// ```
#[derive(Clone, PartialEq)]
pub struct Mat {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Mat {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a `rows × cols` matrix with every entry equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Mat {
            data: vec![value; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Mat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix whose `(i, j)` entry is `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Mat { data, rows, cols }
    }

    /// Wraps a column-major `Vec` of length `rows * cols` as a matrix.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if the length of `data`
    /// does not equal `rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::DimensionMismatch {
                op: "Mat::from_col_major",
                expected: format!("data.len() == {}", rows * cols),
                found: format!("data.len() == {}", data.len()),
            });
        }
        Ok(Mat { data, rows, cols })
    }

    /// Builds a matrix from row-major data (convenient for literals in
    /// tests and examples).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if the length of `data`
    /// does not equal `rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: &[f64]) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::DimensionMismatch {
                op: "Mat::from_row_major",
                expected: format!("data.len() == {}", rows * cols),
                found: format!("data.len() == {}", data.len()),
            });
        }
        Ok(Mat::from_fn(rows, cols, |i, j| data[i * cols + j]))
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Mat::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix has zero rows or zero columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// The underlying column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying column-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its column-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrowed view of the whole matrix.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef::from_slice(&self.data, self.rows, self.cols, self.rows.max(1))
    }

    /// Mutable borrowed view of the whole matrix.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_> {
        let (rows, cols) = (self.rows, self.cols);
        let ld = rows.max(1);
        MatMut::from_slice(&mut self.data, rows, cols, ld)
    }

    /// Column `j` as a slice of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutable column `j` as a slice of length `rows`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(
            j < self.cols,
            "column index {j} out of bounds ({})",
            self.cols
        );
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copies the `nrows × ncols` submatrix whose top-left corner is
    /// `(r0, c0)` into a new owned matrix.
    ///
    /// # Panics
    ///
    /// Panics if the requested block extends past the matrix bounds.
    pub fn submatrix(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> Mat {
        assert!(
            r0 + nrows <= self.rows && c0 + ncols <= self.cols,
            "submatrix out of bounds"
        );
        Mat::from_fn(nrows, ncols, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Copies columns `c0..c0 + ncols` into a new owned matrix.
    pub fn columns(&self, c0: usize, ncols: usize) -> Mat {
        self.submatrix(0, c0, self.rows, ncols)
    }

    /// Copies rows `r0..r0 + nrows` into a new owned matrix.
    pub fn rows_block(&self, r0: usize, nrows: usize) -> Mat {
        self.submatrix(r0, 0, nrows, self.cols)
    }

    /// Returns the transpose as a new owned matrix.
    pub fn transpose(&self) -> Mat {
        Mat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Writes `block` into this matrix with its top-left corner at
    /// `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the block extends past the matrix bounds.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, block: &Mat) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "set_submatrix out of bounds"
        );
        for j in 0..block.cols {
            for i in 0..block.rows {
                self[(r0 + i, c0 + j)] = block[(i, j)];
            }
        }
    }

    /// Horizontally concatenates `self` and `other` (`[self | other]`).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if row counts differ.
    pub fn hcat(&self, other: &Mat) -> Result<Mat> {
        if self.rows != other.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "Mat::hcat",
                expected: format!("rows == {}", self.rows),
                found: format!("rows == {}", other.rows),
            });
        }
        let mut data = Vec::with_capacity((self.cols + other.cols) * self.rows);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Mat {
            data,
            rows: self.rows,
            cols: self.cols + other.cols,
        })
    }

    /// Vertically concatenates `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if column counts differ.
    pub fn vcat(&self, other: &Mat) -> Result<Mat> {
        if self.cols != other.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "Mat::vcat",
                expected: format!("cols == {}", self.cols),
                found: format!("cols == {}", other.cols),
            });
        }
        let rows = self.rows + other.rows;
        let mut m = Mat::zeros(rows, self.cols);
        for j in 0..self.cols {
            m.col_mut(j)[..self.rows].copy_from_slice(self.col(j));
            m.col_mut(j)[self.rows..].copy_from_slice(other.col(j));
        }
        Ok(m)
    }

    /// Grows the matrix to `new_cols` columns, zero-filling the new columns
    /// and preserving existing contents. Used by the adaptive sampling
    /// scheme when the sampled subspace is expanded.
    ///
    /// # Panics
    ///
    /// Panics if `new_cols < self.cols()`.
    pub fn grow_cols(&mut self, new_cols: usize) {
        assert!(new_cols >= self.cols, "grow_cols cannot shrink");
        self.data.resize(self.rows * new_cols, 0.0);
        self.cols = new_cols;
    }

    /// Checks element-wise approximate equality within absolute tolerance
    /// `tol`. Mostly intended for tests.
    pub fn approx_eq(&self, other: &Mat, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol || (a.is_nan() && b.is_nan()))
    }
}

impl Index<(usize, usize)> for Mat {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds"
        );
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(
            i < self.rows && j < self.cols,
            "index ({i}, {j}) out of bounds"
        );
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Mat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:>12.5e} ", self[(i, j)])?;
            }
            if self.cols > max_show {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Mat::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Mat::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_fn_column_major_layout() {
        let m = Mat::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        // Column major: [(0,0), (1,0), (0,1), (1,1)]
        assert_eq!(m.as_slice(), &[0.0, 10.0, 1.0, 11.0]);
    }

    #[test]
    fn from_row_major_matches_literal() {
        let m = Mat::from_row_major(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m[(1, 0)], 4.0);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn from_col_major_rejects_bad_len() {
        assert!(Mat::from_col_major(2, 2, vec![1.0; 3]).is_err());
    }

    #[test]
    fn col_slices() {
        let m = Mat::from_fn(3, 2, |i, j| (i + 10 * j) as f64);
        assert_eq!(m.col(0), &[0.0, 1.0, 2.0]);
        assert_eq!(m.col(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn col_out_of_bounds_panics() {
        let m = Mat::zeros(2, 2);
        let _ = m.col(2);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Mat::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 3));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn submatrix_extracts_block() {
        let m = Mat::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 2, 2, 2);
        assert_eq!(s[(0, 0)], m[(1, 2)]);
        assert_eq!(s[(1, 1)], m[(2, 3)]);
    }

    #[test]
    fn set_submatrix_writes_block() {
        let mut m = Mat::zeros(3, 3);
        let b = Mat::filled(2, 2, 5.0);
        m.set_submatrix(1, 1, &b);
        assert_eq!(m[(1, 1)], 5.0);
        assert_eq!(m[(2, 2)], 5.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn hcat_and_vcat() {
        let a = Mat::filled(2, 1, 1.0);
        let b = Mat::filled(2, 2, 2.0);
        let h = a.hcat(&b).unwrap();
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h[(0, 0)], 1.0);
        assert_eq!(h[(1, 2)], 2.0);

        let c = Mat::filled(1, 3, 3.0);
        let v = h.vcat(&c).unwrap();
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v[(2, 0)], 3.0);
    }

    #[test]
    fn hcat_rejects_mismatched_rows() {
        let a = Mat::zeros(2, 1);
        let b = Mat::zeros(3, 1);
        assert!(a.hcat(&b).is_err());
    }

    #[test]
    fn grow_cols_preserves_and_zeroes() {
        let mut m = Mat::filled(2, 2, 7.0);
        m.grow_cols(4);
        assert_eq!(m.shape(), (2, 4));
        assert_eq!(m[(1, 1)], 7.0);
        assert_eq!(m[(0, 3)], 0.0);
    }

    #[test]
    fn from_diag_builds_diagonal() {
        let m = Mat::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(m[(1, 1)], 2.0);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Mat::filled(2, 2, 1.0);
        let mut b = a.clone();
        b[(0, 0)] += 1e-12;
        assert!(a.approx_eq(&b, 1e-10));
        assert!(!a.approx_eq(&b, 1e-14));
    }

    #[test]
    fn views_agree_with_owner() {
        let m = Mat::from_fn(3, 3, |i, j| (i + j) as f64);
        let v = m.as_ref();
        assert_eq!(v.get(2, 1), m[(2, 1)]);
        assert_eq!(v.shape(), m.shape());
    }

    #[test]
    fn empty_matrix_is_empty() {
        assert!(Mat::zeros(0, 3).is_empty());
        assert!(Mat::zeros(3, 0).is_empty());
        assert!(!Mat::zeros(1, 1).is_empty());
    }
}
