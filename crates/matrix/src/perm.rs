//! Column permutations, as produced by QR with column pivoting.
//!
//! In the paper's notation, QRCP computes `A P ≈ Q R` where `P` permutes
//! columns. [`ColPerm`] stores the permutation as a forward map: entry
//! `perm[j]` is the index of the original column that ends up in position
//! `j` of `A P`.

use crate::dense::Mat;
use crate::error::{MatrixError, Result};

/// A column permutation `P`, stored as the forward map `j → perm[j]`:
/// column `j` of `A·P` is column `perm[j]` of `A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColPerm {
    perm: Vec<usize>,
}

impl ColPerm {
    /// The identity permutation on `n` columns.
    pub fn identity(n: usize) -> Self {
        ColPerm {
            perm: (0..n).collect(),
        }
    }

    /// Builds a permutation from a forward map.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidParameter`] if `perm` is not a
    /// permutation of `0..perm.len()`.
    pub fn from_vec(perm: Vec<usize>) -> Result<Self> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            if p >= n || seen[p] {
                return Err(MatrixError::InvalidParameter {
                    name: "perm",
                    message: format!("not a permutation of 0..{n}"),
                });
            }
            seen[p] = true;
        }
        Ok(ColPerm { perm })
    }

    /// Builds a permutation from a LAPACK-style sequence of column swaps:
    /// at step `j`, columns `j` and `pivots[j]` were exchanged.
    pub fn from_swap_sequence(n: usize, pivots: &[usize]) -> Self {
        let mut perm: Vec<usize> = (0..n).collect();
        for (j, &pj) in pivots.iter().enumerate() {
            perm.swap(j, pj);
        }
        ColPerm { perm }
    }

    /// Number of columns the permutation acts on.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// `true` if the permutation acts on zero columns.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The forward map as a slice: column `j` of `A·P` is column
    /// `self.as_slice()[j]` of `A`.
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// Swaps entries `a` and `b` of the forward map (records a column
    /// exchange during pivoted factorization).
    pub fn swap(&mut self, a: usize, b: usize) {
        self.perm.swap(a, b);
    }

    /// The inverse permutation.
    pub fn inverse(&self) -> ColPerm {
        let mut inv = vec![0usize; self.perm.len()];
        for (j, &p) in self.perm.iter().enumerate() {
            inv[p] = j;
        }
        ColPerm { perm: inv }
    }

    /// Applies the permutation to the columns of `a`, returning `A·P`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != self.len()`.
    pub fn apply_cols(&self, a: &Mat) -> Result<Mat> {
        if a.cols() != self.perm.len() {
            return Err(MatrixError::DimensionMismatch {
                op: "ColPerm::apply_cols",
                expected: format!("cols == {}", self.perm.len()),
                found: format!("cols == {}", a.cols()),
            });
        }
        let mut out = Mat::zeros(a.rows(), a.cols());
        for (j, &p) in self.perm.iter().enumerate() {
            out.col_mut(j).copy_from_slice(a.col(p));
        }
        Ok(out)
    }

    /// Applies the permutation to the **leading** `k` columns only,
    /// returning the `m × k` matrix `A·P₁:ₖ` (used for Step 3 of the
    /// random sampling algorithm).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidParameter`] if `k > self.len()`, or
    /// [`MatrixError::DimensionMismatch`] if `a.cols() != self.len()`.
    pub fn apply_cols_truncated(&self, a: &Mat, k: usize) -> Result<Mat> {
        if k > self.perm.len() {
            return Err(MatrixError::InvalidParameter {
                name: "k",
                message: format!("k = {k} exceeds permutation length {}", self.perm.len()),
            });
        }
        if a.cols() != self.perm.len() {
            return Err(MatrixError::DimensionMismatch {
                op: "ColPerm::apply_cols_truncated",
                expected: format!("cols == {}", self.perm.len()),
                found: format!("cols == {}", a.cols()),
            });
        }
        let mut out = Mat::zeros(a.rows(), k);
        for j in 0..k {
            out.col_mut(j).copy_from_slice(a.col(self.perm[j]));
        }
        Ok(out)
    }

    /// Composes two permutations: `(self ∘ other)` maps `j → self[other[j]]`,
    /// i.e. applying `other` then `self` as column selections.
    pub fn compose(&self, other: &ColPerm) -> Result<ColPerm> {
        if self.len() != other.len() {
            return Err(MatrixError::DimensionMismatch {
                op: "ColPerm::compose",
                expected: format!("len == {}", self.len()),
                found: format!("len == {}", other.len()),
            });
        }
        let perm = other.perm.iter().map(|&j| self.perm[j]).collect();
        Ok(ColPerm { perm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_noop() {
        let a = Mat::from_fn(2, 3, |i, j| (i + 10 * j) as f64);
        let p = ColPerm::identity(3);
        assert_eq!(p.apply_cols(&a).unwrap(), a);
    }

    #[test]
    fn from_vec_validates() {
        assert!(ColPerm::from_vec(vec![0, 2, 1]).is_ok());
        assert!(ColPerm::from_vec(vec![0, 0, 1]).is_err());
        assert!(ColPerm::from_vec(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn apply_cols_reorders() {
        let a = Mat::from_fn(2, 3, |_, j| j as f64);
        let p = ColPerm::from_vec(vec![2, 0, 1]).unwrap();
        let ap = p.apply_cols(&a).unwrap();
        assert_eq!(ap.col(0), &[2.0, 2.0]);
        assert_eq!(ap.col(1), &[0.0, 0.0]);
        assert_eq!(ap.col(2), &[1.0, 1.0]);
    }

    #[test]
    fn inverse_undoes() {
        let p = ColPerm::from_vec(vec![2, 0, 3, 1]).unwrap();
        let a = Mat::from_fn(2, 4, |_, j| j as f64);
        let ap = p.apply_cols(&a).unwrap();
        let back = p.inverse().apply_cols(&ap).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn truncated_application() {
        let a = Mat::from_fn(3, 4, |_, j| j as f64);
        let p = ColPerm::from_vec(vec![3, 1, 0, 2]).unwrap();
        let ap1 = p.apply_cols_truncated(&a, 2).unwrap();
        assert_eq!(ap1.shape(), (3, 2));
        assert_eq!(ap1.col(0), &[3.0, 3.0, 3.0]);
        assert_eq!(ap1.col(1), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn swap_sequence_matches_lapack_semantics() {
        // Swaps: step 0 exchanges cols 0 and 2; step 1 exchanges 1 and 1.
        let p = ColPerm::from_swap_sequence(3, &[2, 1]);
        assert_eq!(p.as_slice(), &[2, 1, 0]);
    }

    #[test]
    fn compose_applies_in_sequence() {
        let p1 = ColPerm::from_vec(vec![1, 2, 0]).unwrap();
        let p2 = ColPerm::from_vec(vec![2, 0, 1]).unwrap();
        let a = Mat::from_fn(1, 3, |_, j| j as f64);
        // apply p1 then p2 is the same as apply compose(p1, p2)? Check
        // against direct double application.
        let ap1 = p1.apply_cols(&a).unwrap();
        let ap1p2 = p2.apply_cols(&ap1).unwrap();
        let comp = p1.compose(&p2).unwrap();
        assert_eq!(comp.apply_cols(&a).unwrap(), ap1p2);
    }

    #[test]
    fn dimension_checks() {
        let p = ColPerm::identity(3);
        let a = Mat::zeros(2, 2);
        assert!(p.apply_cols(&a).is_err());
        assert!(p.apply_cols_truncated(&a, 4).is_err());
    }
}
