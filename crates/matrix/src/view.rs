//! Borrowed matrix views with an explicit leading dimension.
//!
//! [`MatRef`] and [`MatMut`] mirror the BLAS/LAPACK calling convention: a
//! view describes a `rows × cols` window into column-major storage whose
//! consecutive columns are `ld` elements apart. Blocked factorizations use
//! these to address panels and trailing submatrices without copying.

use crate::dense::Mat;
use std::fmt;

/// Immutable view of a column-major matrix block.
#[derive(Clone, Copy)]
pub struct MatRef<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl fmt::Debug for MatRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatRef")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("ld", &self.ld)
            .finish_non_exhaustive()
    }
}

impl<'a> MatRef<'a> {
    /// Wraps `data` as a `rows × cols` view with leading dimension `ld`.
    ///
    /// # Panics
    ///
    /// Panics if `ld < rows` (for nonempty views) or if `data` is too short
    /// to hold the last column.
    pub fn from_slice(data: &'a [f64], rows: usize, cols: usize, ld: usize) -> Self {
        if rows > 0 && cols > 0 {
            assert!(ld >= rows, "leading dimension {ld} < rows {rows}");
            let needed = (cols - 1) * ld + rows;
            assert!(
                data.len() >= needed,
                "slice too short: {} < {}",
                data.len(),
                needed
            );
        }
        MatRef {
            data,
            rows,
            cols,
            ld,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Leading dimension of the underlying storage.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Returns `true` if the view has zero rows or columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld]
    }

    /// Column `j` as a slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &'a [f64] {
        debug_assert!(j < self.cols);
        if self.rows == 0 {
            return &[];
        }
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Subview with top-left corner `(r0, c0)` and shape `nrows × ncols`.
    ///
    /// # Panics
    ///
    /// Panics if the window extends past the view bounds.
    pub fn submatrix(&self, r0: usize, c0: usize, nrows: usize, ncols: usize) -> MatRef<'a> {
        assert!(
            r0 + nrows <= self.rows && c0 + ncols <= self.cols,
            "subview out of bounds"
        );
        let offset = r0 + c0 * self.ld;
        let end = if nrows > 0 && ncols > 0 {
            offset + (ncols - 1) * self.ld + nrows
        } else {
            offset
        };
        MatRef {
            data: &self.data[offset..end.max(offset)],
            rows: nrows,
            cols: ncols,
            ld: self.ld,
        }
    }

    /// Subview of columns `c0..c0 + ncols` over all rows.
    pub fn cols_block(&self, c0: usize, ncols: usize) -> MatRef<'a> {
        self.submatrix(0, c0, self.rows, ncols)
    }

    /// Subview of rows `r0..r0 + nrows` over all columns.
    pub fn rows_block(&self, r0: usize, nrows: usize) -> MatRef<'a> {
        self.submatrix(r0, 0, nrows, self.cols)
    }

    /// Copies the view into a fresh owned [`Mat`].
    pub fn to_mat(&self) -> Mat {
        let mut m = Mat::zeros(self.rows, self.cols);
        for j in 0..self.cols {
            m.col_mut(j).copy_from_slice(self.col(j));
        }
        m
    }

    /// Splits the view into columns `[0, mid)` and `[mid, cols)`.
    pub fn split_at_col(&self, mid: usize) -> (MatRef<'a>, MatRef<'a>) {
        assert!(mid <= self.cols);
        (
            self.cols_block(0, mid),
            self.cols_block(mid, self.cols - mid),
        )
    }
}

/// Mutable view of a column-major matrix block.
pub struct MatMut<'a> {
    data: &'a mut [f64],
    rows: usize,
    cols: usize,
    ld: usize,
}

impl fmt::Debug for MatMut<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatMut")
            .field("rows", &self.rows)
            .field("cols", &self.cols)
            .field("ld", &self.ld)
            .finish_non_exhaustive()
    }
}

impl<'a> MatMut<'a> {
    /// Wraps `data` as a mutable `rows × cols` view with leading dimension
    /// `ld`.
    ///
    /// # Panics
    ///
    /// Panics if `ld < rows` (for nonempty views) or if `data` is too short
    /// to hold the last column.
    pub fn from_slice(data: &'a mut [f64], rows: usize, cols: usize, ld: usize) -> Self {
        if rows > 0 && cols > 0 {
            assert!(ld >= rows, "leading dimension {ld} < rows {rows}");
            let needed = (cols - 1) * ld + rows;
            assert!(
                data.len() >= needed,
                "slice too short: {} < {}",
                data.len(),
                needed
            );
        }
        MatMut {
            data,
            rows,
            cols,
            ld,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Leading dimension of the underlying storage.
    #[inline]
    pub fn ld(&self) -> usize {
        self.ld
    }

    /// Returns `true` if the view has zero rows or columns.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Element at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld]
    }

    /// Sets the element at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld] = v;
    }

    /// Column `j` as an immutable slice of length `rows`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        debug_assert!(j < self.cols);
        &self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Column `j` as a mutable slice of length `rows`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        debug_assert!(j < self.cols);
        &mut self.data[j * self.ld..j * self.ld + self.rows]
    }

    /// Immutable reborrow of the whole view.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_> {
        MatRef::from_slice(self.data, self.rows, self.cols, self.ld)
    }

    /// Mutable reborrow of the whole view (shortens the lifetime so the
    /// original can be used again afterwards).
    #[inline]
    pub fn reborrow(&mut self) -> MatMut<'_> {
        MatMut {
            data: self.data,
            rows: self.rows,
            cols: self.cols,
            ld: self.ld,
        }
    }

    /// Mutable subview with top-left corner `(r0, c0)` and shape
    /// `nrows × ncols`.
    ///
    /// # Panics
    ///
    /// Panics if the window extends past the view bounds.
    pub fn submatrix_mut(
        &mut self,
        r0: usize,
        c0: usize,
        nrows: usize,
        ncols: usize,
    ) -> MatMut<'_> {
        assert!(
            r0 + nrows <= self.rows && c0 + ncols <= self.cols,
            "subview out of bounds"
        );
        let offset = r0 + c0 * self.ld;
        let end = if nrows > 0 && ncols > 0 {
            offset + (ncols - 1) * self.ld + nrows
        } else {
            offset
        };
        MatMut {
            data: &mut self.data[offset..end.max(offset)],
            rows: nrows,
            cols: ncols,
            ld: self.ld,
        }
    }

    /// Splits the view into two disjoint mutable views of columns
    /// `[0, mid)` and `[mid, cols)`.
    ///
    /// This is the only mutable split offered: column ranges occupy
    /// disjoint storage ranges in column-major layout, so the split is
    /// expressible safely via `split_at_mut`.
    pub fn split_at_col_mut(&mut self, mid: usize) -> (MatMut<'_>, MatMut<'_>) {
        assert!(mid <= self.cols);
        let (left_data, right_data) = self.data.split_at_mut(mid * self.ld);
        let left = MatMut {
            data: left_data,
            rows: self.rows,
            cols: mid,
            ld: self.ld,
        };
        let right = MatMut {
            data: right_data,
            rows: self.rows,
            cols: self.cols - mid,
            ld: self.ld,
        };
        (left, right)
    }

    /// Consuming variant of [`MatMut::split_at_col_mut`]; the returned
    /// halves keep the full lifetime `'a`, which lets recursive
    /// divide-and-conquer kernels (e.g. rayon-parallel GEMM) hand each half
    /// to a different task.
    pub fn split_at_col(self, mid: usize) -> (MatMut<'a>, MatMut<'a>) {
        assert!(mid <= self.cols);
        let (left_data, right_data) = self.data.split_at_mut(mid * self.ld);
        let left = MatMut {
            data: left_data,
            rows: self.rows,
            cols: mid,
            ld: self.ld,
        };
        let right = MatMut {
            data: right_data,
            rows: self.rows,
            cols: self.cols - mid,
            ld: self.ld,
        };
        (left, right)
    }

    /// Exposes the raw column-major storage and leading dimension.
    ///
    /// Intended for innermost compute kernels (register-blocked GEMM) that
    /// update several columns simultaneously; element `(i, j)` of the view
    /// lives at index `i + j * ld` of the returned slice.
    #[inline]
    pub fn raw_parts_mut(&mut self) -> (&mut [f64], usize) {
        (self.data, self.ld)
    }

    /// Fills the view with `value`.
    pub fn fill(&mut self, value: f64) {
        for j in 0..self.cols {
            self.col_mut(j).fill(value);
        }
    }

    /// Copies `src` (which must have the same shape) into this view.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, src: MatRef<'_>) {
        assert_eq!(self.shape(), src.shape(), "copy_from: shape mismatch");
        for j in 0..self.cols {
            self.col_mut(j).copy_from_slice(src.col(j));
        }
    }

    /// Copies the view into a fresh owned [`Mat`].
    pub fn to_mat(&self) -> Mat {
        self.as_ref().to_mat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Mat {
        // 4x4 with entry i + 10*j.
        Mat::from_fn(4, 4, |i, j| (i + 10 * j) as f64)
    }

    #[test]
    fn view_indexes_with_ld() {
        let m = sample();
        let v = m.as_ref();
        assert_eq!(v.get(3, 2), 23.0);
        assert_eq!(v.ld(), 4);
    }

    #[test]
    fn submatrix_addresses_interior_block() {
        let m = sample();
        let v = m.as_ref().submatrix(1, 1, 2, 3);
        assert_eq!(v.shape(), (2, 3));
        assert_eq!(v.get(0, 0), 11.0);
        assert_eq!(v.get(1, 2), 32.0);
        assert_eq!(v.ld(), 4);
    }

    #[test]
    fn nested_subviews_compose() {
        let m = sample();
        let v = m.as_ref().submatrix(1, 1, 3, 3).submatrix(1, 1, 2, 2);
        assert_eq!(v.get(0, 0), 22.0);
        assert_eq!(v.get(1, 1), 33.0);
    }

    #[test]
    fn col_of_subview() {
        let m = sample();
        let v = m.as_ref().submatrix(1, 2, 2, 2);
        assert_eq!(v.col(0), &[21.0, 22.0]);
        assert_eq!(v.col(1), &[31.0, 32.0]);
    }

    #[test]
    fn to_mat_copies_block() {
        let m = sample();
        let sub = m.as_ref().submatrix(0, 1, 2, 2).to_mat();
        assert_eq!(sub[(0, 0)], 10.0);
        assert_eq!(sub[(1, 1)], 21.0);
        assert_eq!(sub.shape(), (2, 2));
    }

    #[test]
    fn mut_view_set_get() {
        let mut m = sample();
        {
            let mut v = m.as_mut();
            let mut s = v.submatrix_mut(2, 2, 2, 2);
            s.set(0, 0, -1.0);
        }
        assert_eq!(m[(2, 2)], -1.0);
    }

    #[test]
    fn split_at_col_mut_is_disjoint() {
        let mut m = sample();
        {
            let mut v = m.as_mut();
            let (mut l, mut r) = v.split_at_col_mut(2);
            l.fill(1.0);
            r.fill(2.0);
        }
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(0, 2)], 2.0);
    }

    #[test]
    fn copy_from_round_trips() {
        let src = sample();
        let mut dst = Mat::zeros(4, 4);
        dst.as_mut().copy_from(src.as_ref());
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn subview_out_of_bounds_panics() {
        let m = sample();
        let _ = m.as_ref().submatrix(2, 2, 3, 1);
    }

    #[test]
    #[should_panic(expected = "leading dimension")]
    fn bad_ld_panics() {
        let data = vec![0.0; 16];
        let _ = MatRef::from_slice(&data, 5, 3, 4);
    }

    #[test]
    fn empty_views_are_fine() {
        let data: Vec<f64> = vec![];
        let v = MatRef::from_slice(&data, 0, 0, 1);
        assert!(v.is_empty());
        let m = sample();
        let v = m.as_ref().submatrix(1, 1, 0, 0);
        assert!(v.is_empty());
    }

    #[test]
    fn rows_and_cols_blocks() {
        let m = sample();
        let top = m.as_ref().rows_block(0, 2);
        assert_eq!(top.get(1, 3), 31.0);
        let right = m.as_ref().cols_block(2, 2);
        assert_eq!(right.get(0, 0), 20.0);
    }
}
