//! Gaussian (standard normal) random matrices.
//!
//! The paper's Gaussian sampling matrix `Ω` has i.i.d. `N(0, 1)` entries
//! (generated with cuRAND on the GPU). We generate normals with the
//! Marsaglia polar method on top of a seeded `rand` PRNG, keeping the
//! dependency surface to the crates allowed by the workspace policy.

use crate::dense::Mat;
use rand::Rng;

/// Draws one standard normal variate using the Marsaglia polar method.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u = rng.gen_range(-1.0f64..1.0);
        let v = rng.gen_range(-1.0f64..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Fills a slice with i.i.d. standard normal variates.
pub fn fill_standard_normal(rng: &mut impl Rng, out: &mut [f64]) {
    // Polar method yields pairs; use both halves.
    let mut i = 0;
    while i + 1 < out.len() {
        let (a, b) = loop {
            let u = rng.gen_range(-1.0f64..1.0);
            let v = rng.gen_range(-1.0f64..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * s.ln() / s).sqrt();
                break (u * f, v * f);
            }
        };
        out[i] = a;
        out[i + 1] = b;
        i += 2;
    }
    if i < out.len() {
        out[i] = standard_normal(rng);
    }
}

/// An `rows × cols` matrix with i.i.d. `N(0, 1)` entries — the paper's
/// `PRNG(ℓ, m)` primitive.
pub fn gaussian_mat(rows: usize, cols: usize, rng: &mut impl Rng) -> Mat {
    let mut m = Mat::zeros(rows, cols);
    fill_standard_normal(rng, m.as_mut_slice());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_are_standard_normal() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut buf = vec![0.0f64; n];
        fill_standard_normal(&mut rng, &mut buf);
        let mean: f64 = buf.iter().sum::<f64>() / n as f64;
        let var: f64 = buf.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
        // Third moment ~ 0 (symmetry).
        let skew: f64 = buf.iter().map(|x| x.powi(3)).sum::<f64>() / n as f64;
        assert!(skew.abs() < 0.05, "skew = {skew}");
    }

    #[test]
    fn seeded_generation_is_reproducible() {
        let a = gaussian_mat(5, 7, &mut StdRng::seed_from_u64(7));
        let b = gaussian_mat(5, 7, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = gaussian_mat(5, 7, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn odd_length_filled_completely() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = vec![0.0f64; 7];
        fill_standard_normal(&mut rng, &mut buf);
        // All entries nonzero with probability 1.
        assert!(buf.iter().all(|&x| x != 0.0));
    }

    #[test]
    fn gaussian_mat_shape() {
        let m = gaussian_mat(3, 4, &mut StdRng::seed_from_u64(2));
        assert_eq!(m.shape(), (3, 4));
    }
}
