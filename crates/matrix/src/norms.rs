//! Matrix and vector norms.
//!
//! The spectral norm is computed by power iteration on `AᵀA` with a
//! deterministic start vector; it is used throughout the workspace to
//! evaluate approximation errors `‖AP − QR‖₂ / ‖A‖₂` as in the paper's
//! Figure 6.

use crate::dense::Mat;
use crate::view::MatRef;

/// Euclidean norm of a vector, computed with scaling to avoid overflow
/// (LAPACK `dnrm2`-style).
pub fn vec_norm2(x: &[f64]) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for &xi in x {
        if xi != 0.0 {
            let a = xi.abs();
            if scale < a {
                ssq = 1.0 + ssq * (scale / a).powi(2);
                scale = a;
            } else {
                ssq += (a / scale).powi(2);
            }
        }
    }
    scale * ssq.sqrt()
}

/// Frobenius norm `‖A‖_F`.
pub fn frobenius(a: MatRef<'_>) -> f64 {
    let mut scale = 0.0f64;
    let mut ssq = 1.0f64;
    for j in 0..a.cols() {
        for &x in a.col(j) {
            if x != 0.0 {
                let ax = x.abs();
                if scale < ax {
                    ssq = 1.0 + ssq * (scale / ax).powi(2);
                    scale = ax;
                } else {
                    ssq += (ax / scale).powi(2);
                }
            }
        }
    }
    scale * ssq.sqrt()
}

/// Maximum absolute entry `max |a_ij|`.
pub fn max_abs(a: MatRef<'_>) -> f64 {
    let mut m = 0.0f64;
    for j in 0..a.cols() {
        for &x in a.col(j) {
            m = m.max(x.abs());
        }
    }
    m
}

/// 1-norm: maximum absolute column sum.
pub fn one_norm(a: MatRef<'_>) -> f64 {
    let mut best = 0.0f64;
    for j in 0..a.cols() {
        let s: f64 = a.col(j).iter().map(|x| x.abs()).sum();
        best = best.max(s);
    }
    best
}

/// ∞-norm: maximum absolute row sum.
pub fn inf_norm(a: MatRef<'_>) -> f64 {
    let mut sums = vec![0.0f64; a.rows()];
    for j in 0..a.cols() {
        for (i, &x) in a.col(j).iter().enumerate() {
            sums[i] += x.abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Euclidean norms of every column of `a`.
pub fn col_norms(a: MatRef<'_>) -> Vec<f64> {
    (0..a.cols()).map(|j| vec_norm2(a.col(j))).collect()
}

fn matvec(a: MatRef<'_>, x: &[f64], y: &mut [f64]) {
    y.fill(0.0);
    for (j, &xj) in x.iter().enumerate() {
        if xj != 0.0 {
            for (yi, &aij) in y.iter_mut().zip(a.col(j)) {
                *yi += aij * xj;
            }
        }
    }
}

fn matvec_t(a: MatRef<'_>, x: &[f64], y: &mut [f64]) {
    for (j, yj) in y.iter_mut().enumerate() {
        *yj = a.col(j).iter().zip(x).map(|(&aij, &xi)| aij * xi).sum();
    }
}

/// Spectral norm `‖A‖₂ = σ₁(A)` estimated by power iteration on `AᵀA`.
///
/// Runs at most `max_iter` iterations and stops when the Rayleigh estimate
/// changes by less than `rtol` relatively. Deterministic: the start vector
/// is a fixed pseudo-random unit vector so test results are reproducible.
pub fn spectral_norm_iter(a: MatRef<'_>, max_iter: usize, rtol: f64) -> f64 {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return 0.0;
    }
    // Deterministic quasi-random start vector (avoids pathological
    // orthogonality with the leading singular vector for structured A).
    let mut v: Vec<f64> = (0..n)
        .map(|i| {
            let t = (i as f64 + 1.0) * 0.754_877_666_246_692_8; // frac of plastic ratio
            (t - t.floor()) - 0.5
        })
        .collect();
    let nv = vec_norm2(&v);
    if nv == 0.0 {
        return 0.0;
    }
    v.iter_mut().for_each(|x| *x /= nv);

    let mut av = vec![0.0f64; m];
    let mut atav = vec![0.0f64; n];
    let mut sigma = 0.0f64;
    for _ in 0..max_iter {
        matvec(a, &v, &mut av);
        matvec_t(a, &av, &mut atav);
        let norm = vec_norm2(&atav);
        if norm == 0.0 {
            return 0.0;
        }
        let new_sigma = norm.sqrt();
        let done = (new_sigma - sigma).abs() <= rtol * new_sigma;
        sigma = new_sigma;
        for (vi, &ai) in v.iter_mut().zip(&atav) {
            *vi = ai / norm;
        }
        if done {
            break;
        }
    }
    sigma
}

/// Spectral norm with default iteration budget (100 iterations, `1e-10`
/// relative tolerance) — adequate for the error studies in the paper.
pub fn spectral_norm(a: MatRef<'_>) -> f64 {
    spectral_norm_iter(a, 100, 1e-10)
}

/// Convenience: spectral norm of an owned matrix.
pub fn spectral_norm_mat(a: &Mat) -> f64 {
    spectral_norm(a.as_ref())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_norm_matches_hand_value() {
        assert_eq!(vec_norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(vec_norm2(&[]), 0.0);
        assert_eq!(vec_norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn vec_norm_avoids_overflow() {
        let big = 1e200;
        let n = vec_norm2(&[big, big]);
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-14);
    }

    #[test]
    fn frobenius_of_identity() {
        let a = Mat::identity(9);
        assert!((frobenius(a.as_ref()) - 3.0).abs() < 1e-14);
    }

    #[test]
    fn one_and_inf_norms() {
        let a = Mat::from_row_major(2, 2, &[1.0, -2.0, 3.0, 4.0]).unwrap();
        assert_eq!(one_norm(a.as_ref()), 6.0); // col 1: |-2|+|4| = 6
        assert_eq!(inf_norm(a.as_ref()), 7.0); // row 1: |3|+|4| = 7
        assert_eq!(max_abs(a.as_ref()), 4.0);
    }

    #[test]
    fn col_norms_per_column() {
        let a = Mat::from_row_major(2, 2, &[3.0, 0.0, 4.0, 1.0]).unwrap();
        let n = col_norms(a.as_ref());
        assert_eq!(n[0], 5.0);
        assert_eq!(n[1], 1.0);
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        let a = Mat::from_diag(&[1.0, -7.0, 3.0]);
        let s = spectral_norm(a.as_ref());
        assert!((s - 7.0).abs() < 1e-8, "got {s}");
    }

    #[test]
    fn spectral_norm_of_rank_one() {
        // A = u v^T has spectral norm |u||v|.
        let u = [1.0, 2.0, 2.0]; // norm 3
        let v = [3.0, 4.0]; // norm 5
        let a = Mat::from_fn(3, 2, |i, j| u[i] * v[j]);
        let s = spectral_norm(a.as_ref());
        assert!((s - 15.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn spectral_norm_empty_and_zero() {
        assert_eq!(spectral_norm(Mat::zeros(0, 3).as_ref()), 0.0);
        assert_eq!(spectral_norm(Mat::zeros(3, 3).as_ref()), 0.0);
    }

    #[test]
    fn spectral_leq_frobenius() {
        let a = Mat::from_fn(5, 4, |i, j| ((i * 13 + j * 7) % 11) as f64 - 5.0);
        let s = spectral_norm(a.as_ref());
        let f = frobenius(a.as_ref());
        assert!(s <= f + 1e-12);
        assert!(s >= f / (4f64).sqrt() - 1e-9); // rank <= 4
    }
}
