//! Elementwise matrix operations and small helpers.
//!
//! The heavy kernels (GEMM & friends) live in `rlra-blas`; this module
//! provides the cheap O(mn) utilities that the algorithm crates need for
//! residuals, scaling and comparisons.

use crate::dense::Mat;
use crate::error::{MatrixError, Result};

fn check_same_shape(op: &'static str, a: &Mat, b: &Mat) -> Result<()> {
    if a.shape() != b.shape() {
        return Err(MatrixError::DimensionMismatch {
            op,
            expected: format!("{}x{}", a.rows(), a.cols()),
            found: format!("{}x{}", b.rows(), b.cols()),
        });
    }
    Ok(())
}

/// Returns `a + b`.
pub fn add(a: &Mat, b: &Mat) -> Result<Mat> {
    check_same_shape("add", a, b)?;
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x + y)
        .collect();
    Mat::from_col_major(a.rows(), a.cols(), data)
}

/// Returns `a - b`.
pub fn sub(a: &Mat, b: &Mat) -> Result<Mat> {
    check_same_shape("sub", a, b)?;
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x - y)
        .collect();
    Mat::from_col_major(a.rows(), a.cols(), data)
}

/// Returns `alpha * a`.
pub fn scale(alpha: f64, a: &Mat) -> Mat {
    let data = a.as_slice().iter().map(|&x| alpha * x).collect();
    Mat::from_col_major(a.rows(), a.cols(), data).expect("shape preserved")
}

/// In-place `a += alpha * b`.
pub fn axpy_mat(alpha: f64, b: &Mat, a: &mut Mat) -> Result<()> {
    check_same_shape("axpy_mat", a, b)?;
    for (x, &y) in a.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *x += alpha * y;
    }
    Ok(())
}

/// Returns the strictly upper-triangular copy of `a` including the
/// diagonal (i.e. zeros out everything below the diagonal).
pub fn triu(a: &Mat) -> Mat {
    Mat::from_fn(
        a.rows(),
        a.cols(),
        |i, j| if i <= j { a[(i, j)] } else { 0.0 },
    )
}

/// Returns the lower-triangular copy of `a` including the diagonal.
pub fn tril(a: &Mat) -> Mat {
    Mat::from_fn(
        a.rows(),
        a.cols(),
        |i, j| if i >= j { a[(i, j)] } else { 0.0 },
    )
}

/// Maximum absolute difference between two same-shaped matrices; useful in
/// tests for comparing against reference results.
pub fn max_abs_diff(a: &Mat, b: &Mat) -> Result<f64> {
    check_same_shape("max_abs_diff", a, b)?;
    Ok(a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f64::max))
}

/// Extracts the main diagonal of `a`.
pub fn diag(a: &Mat) -> Vec<f64> {
    (0..a.rows().min(a.cols())).map(|i| a[(i, i)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = Mat::from_fn(2, 3, |i, j| (i + j) as f64);
        let b = Mat::filled(2, 3, 2.0);
        let s = add(&a, &b).unwrap();
        let back = sub(&s, &b).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn add_rejects_mismatch() {
        assert!(add(&Mat::zeros(2, 2), &Mat::zeros(2, 3)).is_err());
    }

    #[test]
    fn scale_multiplies() {
        let a = Mat::filled(2, 2, 3.0);
        let s = scale(-2.0, &a);
        assert_eq!(s[(1, 1)], -6.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Mat::filled(2, 2, 1.0);
        let b = Mat::filled(2, 2, 2.0);
        axpy_mat(0.5, &b, &mut a).unwrap();
        assert_eq!(a[(0, 0)], 2.0);
    }

    #[test]
    fn triu_tril_partition() {
        let a = Mat::from_fn(3, 3, |_, _| 1.0);
        let u = triu(&a);
        let l = tril(&a);
        // u + l double counts the diagonal.
        let sum = add(&u, &l).unwrap();
        assert_eq!(sum[(0, 0)], 2.0);
        assert_eq!(sum[(2, 0)], 1.0);
        assert_eq!(u[(2, 0)], 0.0);
        assert_eq!(l[(0, 2)], 0.0);
    }

    #[test]
    fn diag_extracts() {
        let a = Mat::from_fn(3, 2, |i, j| (10 * i + j) as f64);
        assert_eq!(diag(&a), vec![0.0, 11.0]);
    }

    #[test]
    fn max_abs_diff_detects() {
        let a = Mat::zeros(2, 2);
        let mut b = Mat::zeros(2, 2);
        b[(1, 0)] = -0.25;
        assert_eq!(max_abs_diff(&a, &b).unwrap(), 0.25);
    }
}
