//! Property-based tests of the storage layer: views, permutations,
//! norms.

use proptest::prelude::*;
use rlra_matrix::{ColPerm, Mat};

fn det_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    Mat::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 2000) as f64 / 1000.0 - 1.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn subview_agrees_with_submatrix_copy(
        m in 1usize..30,
        n in 1usize..30,
        seed in 0u64..1000,
        fr in 0.0f64..1.0,
        fc in 0.0f64..1.0,
        fh in 0.0f64..1.0,
        fw in 0.0f64..1.0,
    ) {
        let a = det_mat(m, n, seed);
        let r0 = ((m as f64 - 1.0) * fr) as usize;
        let c0 = ((n as f64 - 1.0) * fc) as usize;
        let h = 1 + ((m - r0 - 1) as f64 * fh) as usize;
        let w = 1 + ((n - c0 - 1) as f64 * fw) as usize;
        let copy = a.submatrix(r0, c0, h, w);
        let view = a.as_ref().submatrix(r0, c0, h, w);
        for j in 0..w {
            for i in 0..h {
                prop_assert_eq!(copy[(i, j)], view.get(i, j));
            }
        }
        prop_assert_eq!(view.to_mat(), copy);
    }

    #[test]
    fn transpose_is_involution(m in 0usize..20, n in 0usize..20, seed in 0u64..1000) {
        let a = det_mat(m, n, seed);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn permutation_inverse_roundtrip(n in 1usize..40, seed in 0u64..1000) {
        // Build a permutation from a swap sequence.
        let mut state = seed | 1;
        let swaps: Vec<usize> = (0..n)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                i + (state as usize) % (n - i)
            })
            .collect();
        let p = ColPerm::from_swap_sequence(n, &swaps);
        let a = det_mat(3, n, seed + 1);
        let ap = p.apply_cols(&a).unwrap();
        let back = p.inverse().apply_cols(&ap).unwrap();
        prop_assert_eq!(back, a);
        // inverse of inverse is identity map.
        let double_inv = p.inverse().inverse();
        prop_assert_eq!(double_inv.as_slice(), p.as_slice());
    }

    #[test]
    fn norm_inequalities(m in 1usize..25, n in 1usize..25, seed in 0u64..1000) {
        use rlra_matrix::norms::*;
        let a = det_mat(m, n, seed);
        let v = a.as_ref();
        let two = spectral_norm(v);
        let fro = frobenius(v);
        let one = one_norm(v);
        let inf = inf_norm(v);
        let maxa = max_abs(v);
        // Standard equivalences.
        prop_assert!(two <= fro + 1e-9);
        prop_assert!(fro <= two * (m.min(n) as f64).sqrt() + 1e-9);
        prop_assert!(two * two <= one * inf * (1.0 + 1e-9) + 1e-12);
        prop_assert!(maxa <= two + 1e-9);
        prop_assert!(maxa <= fro + 1e-12);
    }

    #[test]
    fn hcat_vcat_shapes_and_contents(
        m in 1usize..15,
        n1 in 1usize..10,
        n2 in 1usize..10,
        seed in 0u64..1000,
    ) {
        let a = det_mat(m, n1, seed);
        let b = det_mat(m, n2, seed + 1);
        let h = a.hcat(&b).unwrap();
        prop_assert_eq!(h.shape(), (m, n1 + n2));
        for j in 0..n1 {
            prop_assert_eq!(h.col(j), a.col(j));
        }
        for j in 0..n2 {
            prop_assert_eq!(h.col(n1 + j), b.col(j));
        }
        let at = a.transpose();
        let bt = b.transpose();
        let v = at.vcat(&bt).unwrap();
        prop_assert_eq!(v, h.transpose());
    }

    #[test]
    fn gaussian_matrices_differ_across_seeds(s1 in 0u64..500, s2 in 501u64..1000) {
        use rand::SeedableRng;
        let a = rlra_matrix::gaussian_mat(4, 4, &mut rand::rngs::StdRng::seed_from_u64(s1));
        let b = rlra_matrix::gaussian_mat(4, 4, &mut rand::rngs::StdRng::seed_from_u64(s2));
        prop_assert_ne!(a, b);
    }
}
