//! # rlra-perfmodel
//!
//! The analytic performance model of the paper:
//!
//! - [`costs`] — the computation/communication cost table of **Figure 5**
//!   (flops and words moved through the fast memory, per step of random
//!   sampling, and for QP3 / communication-avoiding QP3),
//! - [`gflops`] — the estimated-throughput model of **Figure 10**
//!   ("this allows us to evaluate the performance of random sampling on
//!   a target computer before implementing the algorithm"): per-kernel
//!   times from the calibrated `rlra-gpu` cost model are composed into
//!   end-to-end Gflop/s estimates for random sampling and truncated QP3.

#![forbid(unsafe_code)]

pub mod costs;
pub mod distributed;
pub mod gflops;

pub use costs::{caqp3_cost, qp3_cost, rs_step_cost, rs_total_cost, CostEntry, Dims, RsStep};
pub use distributed::{qp3_cluster_estimate, rs_cluster_estimate, ClusterDims};
pub use gflops::{estimated_qp3, estimated_rs, Estimate};
