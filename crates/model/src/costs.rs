//! The cost table of the paper's Figure 5: flops and words moved between
//! the two levels of the local memory hierarchy (fast memory of size
//! `M`), per step of the random sampling algorithm, and for the
//! deterministic baselines.
//!
//! Leading-order terms with explicit constants; the paper states the
//! orders only.

/// Problem dimensions in the paper's notation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dims {
    /// Rows of `A`.
    pub m: usize,
    /// Columns of `A`.
    pub n: usize,
    /// Target rank.
    pub k: usize,
    /// Oversampling.
    pub p: usize,
    /// Power iterations.
    pub q: usize,
}

impl Dims {
    /// Sampling dimension `ℓ = k + p`.
    pub fn l(&self) -> usize {
        self.k + self.p
    }
}

/// A (flops, words) cost pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEntry {
    /// Floating-point operations.
    pub flops: f64,
    /// Words moved between fast and slow memory.
    pub words: f64,
}

impl CostEntry {
    fn add(self, other: CostEntry) -> CostEntry {
        CostEntry {
            flops: self.flops + other.flops,
            words: self.words + other.words,
        }
    }
}

/// A step of the random sampling algorithm, one row of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsStep {
    /// Gaussian sampling `B = ΩA` (GEMM).
    SamplingGaussian,
    /// Full-FFT sampling.
    SamplingFft,
    /// Power-iteration multiplies (`2q` GEMMs).
    IterMult,
    /// Power-iteration orthogonalizations (CholQR of `ℓ×n` and `ℓ×m`).
    IterOrth,
    /// QRCP of the sampled `ℓ × n` matrix.
    Qrcp,
    /// Tall-skinny QR of `A·P₁:ₖ`.
    Qr,
}

/// Cost of one step of random sampling (Figure 5, top block).
/// `fast_mem` is the fast-memory size `M` in words.
pub fn rs_step_cost(step: RsStep, d: Dims, fast_mem: f64) -> CostEntry {
    let (m, n, l, q, k) = (d.m as f64, d.n as f64, d.l() as f64, d.q as f64, d.k as f64);
    let sqrt_m = fast_mem.sqrt();
    match step {
        RsStep::SamplingGaussian => {
            // One (ℓ×m)·(m×n) GEMM: communication-optimal blocked GEMM
            // moves 2·flops/√M words.
            let flops = 2.0 * l * m * n;
            CostEntry {
                flops,
                words: flops / sqrt_m,
            }
        }
        RsStep::SamplingFft => {
            // Full FFT of every column: n transforms of length m at
            // 5·m·log₂m flops each; FFT moves O(mn·log m / log M) words
            // (Figure 5, second row).
            let flops = n * 5.0 * m * m.log2();
            CostEntry {
                flops,
                words: flops / 5.0 / fast_mem.log2(),
            }
        }
        RsStep::IterMult => {
            // 2q GEMMs of the same size as the sampling GEMM.
            let flops = 2.0 * q * (2.0 * l * m * n);
            CostEntry {
                flops,
                words: flops / sqrt_m,
            }
        }
        RsStep::IterOrth => {
            // Per iteration: CholQR of ℓ×n and ℓ×m (2·l²·(m+n) flops each
            // pass; Figure 5 writes O((m+n)ℓ²q)).
            let flops = 2.0 * q * 2.0 * l * l * (m + n);
            CostEntry {
                flops,
                words: flops / sqrt_m,
            }
        }
        RsStep::Qrcp => {
            // Truncated QP3 of the ℓ×n sampled matrix: O(nℓ²) ≈ O(n·ℓ²);
            // the paper's table writes O(n²) with ℓ treated as constant.
            let flops = 4.0 * n * l * k;
            CostEntry {
                flops,
                words: flops,
            } // BLAS-2 half: no reuse
        }
        RsStep::Qr => {
            // CholQR of the m×k pivot block: 2mk² flops per pass.
            let flops = 2.0 * m * k * k;
            CostEntry {
                flops,
                words: flops / sqrt_m,
            }
        }
    }
}

/// Total cost of random sampling (Figure 5's "Total" row:
/// `O(mnℓ(1+2q))` flops and `O(mnℓ(1+2q)/M^{1/2})` words — the GEMMs
/// dominate).
pub fn rs_total_cost(d: Dims, fast_mem: f64) -> CostEntry {
    rs_step_cost(RsStep::SamplingGaussian, d, fast_mem)
        .add(rs_step_cost(RsStep::IterMult, d, fast_mem))
        .add(rs_step_cost(RsStep::IterOrth, d, fast_mem))
        .add(rs_step_cost(RsStep::Qrcp, d, fast_mem))
        .add(rs_step_cost(RsStep::Qr, d, fast_mem))
}

/// Truncated QP3 (Figure 5: `O(mnk)` flops and — because half the flops
/// are unblocked BLAS-2 — `O(mnk)` words: no fast-memory reuse).
pub fn qp3_cost(d: Dims) -> CostEntry {
    let (m, n, k) = (d.m as f64, d.n as f64, d.k as f64);
    let flops = 4.0 * m * n * k;
    CostEntry {
        flops,
        words: 0.5 * flops + 0.5 * flops / 1e2,
    }
}

/// Communication-avoiding QP3 (Figure 5: `O(mn(m+n))` flops,
/// `O(mn²/M^{1/2})` words — it trades extra flops for blocked movement).
pub fn caqp3_cost(d: Dims, fast_mem: f64) -> CostEntry {
    let (m, n) = (d.m as f64, d.n as f64);
    CostEntry {
        flops: m * n * (m + n),
        words: m * n * n / fast_mem.sqrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M_FAST: f64 = 1.5e6; // ~12 MB of f64 (K40c L2-ish)

    fn dims() -> Dims {
        Dims {
            m: 50_000,
            n: 2_500,
            k: 54,
            p: 10,
            q: 1,
        }
    }

    #[test]
    fn totals_dominated_by_gemm() {
        let d = dims();
        let total = rs_total_cost(d, M_FAST);
        let gemm = rs_step_cost(RsStep::SamplingGaussian, d, M_FAST).flops
            + rs_step_cost(RsStep::IterMult, d, M_FAST).flops;
        assert!(
            gemm / total.flops > 0.9,
            "GEMM fraction {}",
            gemm / total.flops
        );
    }

    #[test]
    fn rs_moves_fewer_words_than_qp3() {
        // The headline claim: random sampling is communication-optimal,
        // QP3 is not.
        let d = dims();
        let rs = rs_total_cost(d, M_FAST);
        let qp3 = qp3_cost(d);
        assert!(
            rs.words < qp3.words / 50.0,
            "rs {} vs qp3 {}",
            rs.words,
            qp3.words
        );
    }

    #[test]
    fn rs_flops_grow_linearly_with_q() {
        let d0 = Dims { q: 0, ..dims() };
        let d1 = Dims { q: 1, ..dims() };
        let d2 = Dims { q: 2, ..dims() };
        let f0 = rs_total_cost(d0, M_FAST).flops;
        let f1 = rs_total_cost(d1, M_FAST).flops;
        let f2 = rs_total_cost(d2, M_FAST).flops;
        let inc1 = f1 - f0;
        let inc2 = f2 - f1;
        assert!((inc1 - inc2).abs() / inc1 < 1e-9);
        // Paper §8: q = 1 performs roughly 3.6× the flops of QP3... and
        // ~3× the flops of q = 0 (1 + 2q GEMMs).
        assert!((f1 / f0 - 3.0).abs() < 0.2, "ratio {}", f1 / f0);
    }

    #[test]
    fn rs_vs_qp3_flop_ratio_close_to_paper() {
        // Paper §8: "random sampling performs roughly 3.6× or 1.2× more
        // flops than QP3 when q = 1 or 0" at (ℓ; p) = (64; 10),
        // n = 2,500. The paper's QP3 count is ≈2mnk (QR-like, k = 54);
        // ours is the LAPACK convention 4mnk − …, about 2.4× larger, so
        // the same physical ratio lands 2.4× lower here. Assert the
        // q-dependence and a band covering both conventions.
        let d0 = Dims { q: 0, ..dims() };
        let d1 = Dims { q: 1, ..dims() };
        let qp3 = qp3_cost(Dims { k: 64, ..d0 }).flops;
        let r0 = rs_total_cost(d0, M_FAST).flops / qp3;
        let r1 = rs_total_cost(d1, M_FAST).flops / qp3;
        assert!(r0 > 0.3 && r0 < 2.0, "q=0 flop ratio {r0}");
        assert!(r1 > 1.2 && r1 < 5.0, "q=1 flop ratio {r1}");
        assert!((r1 / r0 - 3.0).abs() < 0.3, "q=1 triples the GEMM flops");
    }

    #[test]
    fn caqp3_trades_flops_for_words() {
        let d = dims();
        let qp3 = qp3_cost(d);
        let ca = caqp3_cost(d, M_FAST);
        assert!(ca.flops > qp3.flops);
        assert!(ca.words < qp3.words);
    }
}
