//! Closed-form α-β performance model for the distributed-memory setting
//! — the analytic companion to `rlra-core`'s cluster simulation, in the
//! spirit of the paper's Figure 5/10 models ("evaluate the performance …
//! before implementing the algorithm").
//!
//! Cross-validated against the step-by-step cluster simulator in the
//! tests: two independently written models must agree on the totals.

use rlra_gpu::cost::CostModel;
use rlra_gpu::NetworkSpec;

/// Cluster shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterDims {
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
}

impl ClusterDims {
    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// Estimated time of distributed random sampling (`ℓ = k + p`, `q` power
/// iterations) on an `m × n` matrix: per-GPU GEMM work on `m/(P·g)` rows
/// plus the PCIe-local reductions and `O(log P)` interconnect
/// collectives, plus the serial Step 2 + the distributed Step 3.
#[allow(clippy::too_many_arguments)] // mirrors the paper's (m, n, l, k, q) notation
pub fn rs_cluster_estimate(
    cost: &CostModel,
    net: &NetworkSpec,
    dims: ClusterDims,
    m: usize,
    n: usize,
    l: usize,
    k: usize,
    q: usize,
) -> f64 {
    let g = dims.gpus_per_node;
    let p = dims.nodes;
    let m_gpu = m.div_ceil(dims.total_gpus());
    let b_bytes = 8 * (l * n) as u64;
    let gram_bytes = 8 * (l * l) as u64;

    let mut secs = 0.0;
    // PRNG (parallel across GPUs) + sampling GEMM + B reduction.
    secs += cost.curand(l * m_gpu);
    secs += cost.gemm(l, n, m_gpu);
    let reduce_b = g as f64 * cost.transfer(b_bytes)
        + cost.host_reduce(b_bytes, g)
        + 2.0 * net.tree_collective(p, b_bytes);
    secs += reduce_b;
    // Power iterations.
    for _ in 0..q {
        // Host QR of B + interconnect broadcast + intra-node broadcast.
        secs += cost.host_flops(2.0 * 2.0 * (l * l * n) as f64) + cost.host_cholesky(l);
        secs += net.tree_collective(p, b_bytes) + g as f64 * cost.transfer(b_bytes);
        // C = B·Aᵀ local + distributed CholQR of C (Gram allreduce).
        secs += cost.gemm(l, m_gpu, n);
        secs += cost.syrk(l, m_gpu);
        secs += g as f64 * cost.transfer(gram_bytes)
            + cost.host_reduce(gram_bytes, g)
            + 2.0 * net.tree_collective(p, gram_bytes);
        secs += cost.host_cholesky(l) + g as f64 * cost.transfer(gram_bytes) + cost.trsm(l, m_gpu);
        // B = C·A local + reduction.
        secs += cost.gemm(l, n, m_gpu);
        secs += reduce_b;
    }
    // Step 2: serial QP3 of B on one GPU (the Amdahl floor) + pivot bcast.
    secs += qp3_small_estimate(cost, l, n, k);
    secs += net.tree_collective(p, 8 * k as u64);
    // Step 3: distributed tall CholQR of A·P(1:k).
    let gram_k = 8 * (k * k) as u64;
    secs += cost.blas1(m_gpu * k, 2.0) + cost.syrk(k, m_gpu);
    secs += g as f64 * cost.transfer(gram_k)
        + cost.host_reduce(gram_k, g)
        + 2.0 * net.tree_collective(p, gram_k);
    secs += cost.host_cholesky(k) + g as f64 * cost.transfer(gram_k) + cost.trsm(k, m_gpu);
    secs
}

/// Per-step composite of a truncated QP3 on a single device (the small
/// `ℓ × n` sampled matrix).
fn qp3_small_estimate(cost: &CostModel, l: usize, n: usize, k: usize) -> f64 {
    let mut secs = 0.0;
    for j in 0..k {
        secs += 3.0 * cost.sync();
        secs += cost.blas1(n - j, 2.0) + cost.blas1(l, 3.0);
        secs += cost.blas1(l - j, 2.0) + cost.blas1(l - j, 2.0);
        if n > j + 1 {
            secs += cost.gemv(l - j, n - j - 1);
            secs += cost.blas1(n - j - 1, 2.0);
        }
    }
    secs
}

/// Estimated time of a distributed truncated QP3 with target rank `k`:
/// every pivot pays a latency-bound all-reduce plus a column exchange on
/// top of the (perfectly parallel) row-distributed BLAS-2 update.
pub fn qp3_cluster_estimate(
    cost: &CostModel,
    net: &NetworkSpec,
    dims: ClusterDims,
    m: usize,
    n: usize,
    k: usize,
) -> f64 {
    let p = dims.nodes;
    let m_gpu = m.div_ceil(dims.total_gpus());
    let nb = 32usize;
    let mut secs = 0.0;
    for j in 0..k {
        // Pivot all-reduce (latency) + column gather across nodes.
        secs += 2.0 * net.tree_collective(p, 8);
        secs += net.tree_collective(p, 8 * (m / p.max(1)) as u64);
        // Local BLAS-2 slice update.
        secs += cost.gemv(m_gpu.max(1), n - j) + cost.blas1(n - j, 2.0) + 2.0 * cost.sync();
        if (j + 1) % nb == 0 || j + 1 == k {
            secs += cost.gemm(m_gpu, n - j, nb.min(j + 1));
        }
    }
    secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlra_core::{qp3_cluster_time, sample_fixed_rank_cluster, SamplerConfig};
    use rlra_gpu::{Cluster, DeviceSpec, ExecMode};

    fn cost() -> CostModel {
        CostModel::new(DeviceSpec::k40c())
    }

    #[test]
    fn rs_estimate_matches_cluster_simulation() {
        // Two independent implementations (closed-form vs step-by-step
        // simulation) must agree within a modest factor across shapes.
        let c = cost();
        let net = NetworkSpec::infiniband_fdr();
        for (nodes, g, m) in [
            (1usize, 2usize, 200_000usize),
            (4, 2, 400_000),
            (8, 1, 400_000),
        ] {
            let dims = ClusterDims {
                nodes,
                gpus_per_node: g,
            };
            let est = rs_cluster_estimate(&c, &net, dims, m, 2_500, 64, 54, 1);
            let mut cl =
                Cluster::new(nodes, g, DeviceSpec::k40c(), net.clone(), ExecMode::DryRun).unwrap();
            let cfg = SamplerConfig::new(54).with_p(10).with_q(1);
            let sim =
                sample_fixed_rank_cluster(&mut cl, m, 2_500, &cfg, &mut StdRng::seed_from_u64(1))
                    .unwrap()
                    .seconds;
            let ratio = est / sim;
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "{nodes}x{g} @ m={m}: estimate {est:.4} vs sim {sim:.4} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn qp3_estimate_matches_cluster_simulation() {
        let c = cost();
        let net = NetworkSpec::infiniband_fdr();
        for nodes in [1usize, 4] {
            let dims = ClusterDims {
                nodes,
                gpus_per_node: 2,
            };
            let est = qp3_cluster_estimate(&c, &net, dims, 400_000, 2_500, 64);
            let mut cl =
                Cluster::new(nodes, 2, DeviceSpec::k40c(), net.clone(), ExecMode::DryRun).unwrap();
            let sim = qp3_cluster_time(&mut cl, 400_000, 2_500, 64);
            let ratio = est / sim;
            assert!(
                ratio > 0.5 && ratio < 2.0,
                "{nodes} nodes: estimate {est:.4} vs sim {sim:.4} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn estimated_gap_grows_with_nodes_then_amdahl() {
        let c = cost();
        let net = NetworkSpec::infiniband_fdr();
        let speedup = |nodes: usize| {
            let dims = ClusterDims {
                nodes,
                gpus_per_node: 2,
            };
            qp3_cluster_estimate(&c, &net, dims, 400_000, 2_500, 64)
                / rs_cluster_estimate(&c, &net, dims, 400_000, 2_500, 64, 54, 1)
        };
        assert!(speedup(4) > speedup(1), "gap widens through 4 nodes");
    }
}
