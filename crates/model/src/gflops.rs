//! The estimated-throughput model of the paper's Figure 10.
//!
//! §8: "Since the execution time of the random sampling is dominated by
//! the sampling and orthogonalization phases, we can estimate the
//! performance based on the kernel performance results … before
//! implementing the algorithm." We compose the per-kernel times of the
//! calibrated `rlra-gpu` cost model into end-to-end estimates.

use rlra_gpu::cost::CostModel;

/// An end-to-end performance estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Useful flops of the algorithm.
    pub flops: f64,
    /// Estimated execution time in seconds.
    pub seconds: f64,
}

impl Estimate {
    /// Achieved throughput in Gflop/s.
    pub fn gflops(&self) -> f64 {
        self.flops / self.seconds / 1e9
    }
}

/// Estimated time and throughput of random sampling with Gaussian
/// sampling, `ℓ = k + p` and `q` power iterations on an `m × n` matrix.
pub fn estimated_rs(
    cost: &CostModel,
    m: usize,
    n: usize,
    l: usize,
    k: usize,
    q: usize,
) -> Estimate {
    let mut secs = 0.0;
    // PRNG.
    secs += cost.curand(l * m);
    // Sampling GEMM.
    secs += cost.gemm(l, n, m);
    // Power iterations: 2 GEMMs + 2 short-wide CholQR (2 passes each).
    for _ in 0..q {
        secs += cost.gemm(l, m, n) + cost.gemm(l, n, m);
        for &cols in &[n, m] {
            secs += 2.0 * (cost.syrk(l, cols) + cost.host_cholesky(l) + cost.trsm(l, cols));
        }
    }
    // QRCP of B (ℓ×n): per-step sync + panel GEMV, dominated by the
    // full-width F GEMVs.
    for j in 0..k {
        secs += cost.blas1_reduce(n - j) + cost.gemv(l - j, n - j) + cost.sync();
    }
    // Tall-skinny QR of A·P₁:ₖ (CholQR ×2) + triangular finish.
    secs += 2.0 * (cost.syrk(k, m) + cost.host_cholesky(k) + cost.trsm(k, m));
    secs += cost.trsm(k, n);

    let flops = 2.0 * (l * m * n) as f64 * (1.0 + 2.0 * q as f64)
        + 2.0 * (m * k * k) as f64
        + 4.0 * (n * l * k) as f64;
    Estimate {
        flops,
        seconds: secs,
    }
}

/// Estimated time and throughput of truncated QP3 with target rank `k`
/// on an `m × n` matrix: half the flops are BLAS-2 GEMVs, half BLAS-3
/// panel updates, plus a synchronization per pivot.
pub fn estimated_qp3(cost: &CostModel, m: usize, n: usize, k: usize) -> Estimate {
    let mut secs = 0.0;
    let nb = 32usize;
    for j in 0..k {
        // Pivot sync + reflector + full-width F GEMV + panel column GEMV.
        secs += 2.0 * cost.sync();
        secs += cost.blas1_reduce(m - j);
        secs += cost.gemv(m - j, n - j);
        secs += cost.gemv(m - j, nb.min(j % nb + 1));
        secs += cost.blas1(n - j, 2.0);
        if (j + 1) % nb == 0 || j + 1 == k {
            secs += cost.gemm(m - j, n - j, nb.min(j + 1));
        }
    }
    let flops = rlra_blas::flops::qp3_flops(m, n, k) as f64;
    Estimate {
        flops,
        seconds: secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlra_gpu::DeviceSpec;

    fn cost() -> CostModel {
        CostModel::new(DeviceSpec::k40c())
    }

    #[test]
    fn fig10_rs_throughput_bands() {
        // Paper: at n = 2,500, (ℓ; p) = (64; 10), RS is expected to reach
        // ~676 Gflop/s for q = 1 and ~489 Gflop/s for q = 0 at large m.
        let c = cost();
        let e0 = estimated_rs(&c, 50_000, 2_500, 64, 54, 0);
        let e1 = estimated_rs(&c, 50_000, 2_500, 64, 54, 1);
        assert!(
            e0.gflops() > 250.0 && e0.gflops() < 700.0,
            "q=0: {:.0}",
            e0.gflops()
        );
        assert!(
            e1.gflops() > 400.0 && e1.gflops() < 900.0,
            "q=1: {:.0}",
            e1.gflops()
        );
        assert!(
            e1.gflops() > e0.gflops(),
            "q=1 runs at higher Gflop/s (more BLAS-3 work)"
        );
    }

    #[test]
    fn fig10_qp3_stays_far_below() {
        // Paper: "QP3 … performance was limited under 29 Gflop/s" (the
        // estimate) while the measured-time-derived figure is higher; we
        // assert the qualitative gap: QP3 ≪ RS.
        let c = cost();
        let qp3 = estimated_qp3(&c, 50_000, 2_500, 64);
        let rs = estimated_rs(&c, 50_000, 2_500, 64, 54, 0);
        assert!(qp3.gflops() < 100.0, "QP3 estimate {:.0}", qp3.gflops());
        assert!(rs.gflops() / qp3.gflops() > 5.0);
    }

    #[test]
    fn estimated_speedup_matches_paper_reasoning() {
        // Paper §8: expected speedups 23.8/3.6 = 6.7 (q = 1) and
        // 17.1/1.2 = 14.3 (q = 0). Allow generous bands.
        let c = cost();
        let qp3 = estimated_qp3(&c, 50_000, 2_500, 64);
        for (q, lo, hi) in [(0usize, 6.0, 26.0), (1, 3.0, 13.0)] {
            let rs = estimated_rs(&c, 50_000, 2_500, 64, 54, q);
            let speedup = qp3.seconds / rs.seconds;
            assert!(
                speedup > lo && speedup < hi,
                "q = {q}: estimated speedup {speedup:.1}"
            );
        }
    }

    #[test]
    fn estimates_scale_linearly_in_m() {
        let c = cost();
        let e1 = estimated_rs(&c, 25_000, 2_500, 64, 54, 1);
        let e2 = estimated_rs(&c, 50_000, 2_500, 64, 54, 1);
        let ratio = e2.seconds / e1.seconds;
        assert!(ratio > 1.6 && ratio < 2.4, "time ratio {ratio}");
    }
}
