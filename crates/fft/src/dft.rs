//! Reference `O(n²)` discrete Fourier transform used to validate the fast
//! transform in tests.

use rlra_matrix::Complex64;

/// Direct DFT: `X[k] = Σ_t x[t]·e^{−2πi·kt/n}`.
pub fn dft(x: &[Complex64]) -> Vec<Complex64> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut s = Complex64::ZERO;
            for (t, &xt) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t % n.max(1)) as f64 / n as f64;
                s += xt * Complex64::cis(ang);
            }
            s
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix2::fft_inplace;

    #[test]
    fn fft_matches_dft() {
        for n in [1usize, 2, 4, 8, 32, 64] {
            let x: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64 * 0.9).sin(), (i as f64 * 1.7).cos()))
                .collect();
            let slow = dft(&x);
            let mut fast = x;
            fft_inplace(&mut fast);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-9, "n = {n}");
            }
        }
    }

    #[test]
    fn dft_of_empty_is_empty() {
        assert!(dft(&[]).is_empty());
    }
}
