//! # rlra-fft
//!
//! Fast Fourier transforms and FFT-based random sampling for the `rlra`
//! workspace (reproduction of Mary et al., SC'15).
//!
//! The paper compares **Gaussian sampling** (`B = ΩA` with a Gaussian
//! `Ω`, a GEMM) against **FFT sampling** (`B = S·F·D·A`, a subsampled
//! randomized Fourier transform). This crate provides the FFT substrate:
//!
//! - [`radix2`] — iterative radix-2 Cooley–Tukey FFT with power-of-two
//!   padding (the paper pads the matrix so its leading dimension is the
//!   next power of two, exactly as cuFFT prefers),
//! - [`dft`] — an `O(n²)` reference DFT used for validation,
//! - [`srft`] — the subsampled randomized FFT sampling operator: a random
//!   sign-flip `D`, the FFT `F`, and a random row selection `S`, in both
//!   the **full** scheme (transform everything, then select `ℓ` rows) and
//!   a **pruned** scheme (compute only the selected rows; the paper notes
//!   cuFFT cannot do this, and we provide it for the flop-count analysis).

#![forbid(unsafe_code)]

pub mod dft;
pub mod radix2;
pub mod rfft;
pub mod srft;

pub use radix2::{fft_inplace, ifft_inplace, next_pow2};
pub use rfft::rfft_padded;
pub use srft::{SrftOperator, SrftScheme};
