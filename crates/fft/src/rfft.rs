//! Real-input FFT via the packed half-length complex transform.
//!
//! The SRFT sampling operator transforms *real* matrix columns, so the
//! generic complex FFT wastes half its work on zero imaginary parts. The
//! classic remedy packs adjacent real samples into complex pairs, runs
//! one half-length complex FFT, and unpacks with the split identities
//!
//! `E[k] = (Z[k] + conj(Z[h−k]))/2`,  `O[k] = −i·(Z[k] − conj(Z[h−k]))/2`,
//! `X[k] = E[k] + e^{−2πik/n}·O[k]`,
//!
//! recovering the full spectrum at ~half the flops and memory traffic.

use crate::radix2::{fft_inplace, next_pow2};
use rlra_matrix::Complex64;

/// FFT of a real signal, zero-padded to the next power of two. Returns
/// the full complex spectrum (same contract as
/// [`crate::radix2::fft_real_padded`], at roughly half the cost).
pub fn rfft_padded(x: &[f64]) -> Vec<Complex64> {
    let n = next_pow2(x.len().max(1));
    if n == 1 {
        return vec![Complex64::from_real(x.first().copied().unwrap_or(0.0))];
    }
    if n == 2 {
        let a = x.first().copied().unwrap_or(0.0);
        let b = x.get(1).copied().unwrap_or(0.0);
        return vec![Complex64::from_real(a + b), Complex64::from_real(a - b)];
    }
    let h = n / 2;
    // Pack pairs: z[j] = x[2j] + i·x[2j+1] (zero-padded).
    let mut z = vec![Complex64::ZERO; h];
    for (j, zj) in z.iter_mut().enumerate() {
        let re = x.get(2 * j).copied().unwrap_or(0.0);
        let im = x.get(2 * j + 1).copied().unwrap_or(0.0);
        *zj = Complex64::new(re, im);
    }
    fft_inplace(&mut z);
    // Unpack to the full spectrum.
    let mut out = vec![Complex64::ZERO; n];
    for k in 0..=h / 2 {
        let zk = z[k];
        let zmk = z[(h - k) % h].conj();
        let e = (zk + zmk).scale(0.5);
        let o_times_i = (zk - zmk).scale(0.5); // = i·O[k]
        let o = Complex64::new(o_times_i.im, -o_times_i.re); // O[k]
        let w = Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / n as f64);
        out[k] = e + w * o;
        // X[h − k] uses the conjugate-mirror of E and O.
        if k != 0 {
            let e2 = e.conj();
            let o2 = o.conj();
            let w2 = Complex64::cis(-2.0 * std::f64::consts::PI * (h - k) as f64 / n as f64);
            out[h - k] = e2 + w2 * o2;
        }
    }
    // X[h] = E[0] − O[0] (the Nyquist bin), real for real input.
    let z0 = z[0];
    out[h] = Complex64::from_real(z0.re - z0.im);
    // Conjugate symmetry fills the upper half.
    for k in h + 1..n {
        out[k] = out[n - k].conj();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix2::fft_real_padded;

    fn signal(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f64 / 500.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn matches_complex_fft_power_of_two() {
        for n in [4usize, 8, 16, 64, 256, 1024] {
            let x = signal(n, n as u64);
            let fast = rfft_padded(&x);
            let reference = fft_real_padded(&x);
            assert_eq!(fast.len(), reference.len());
            for (a, b) in fast.iter().zip(&reference) {
                assert!(
                    (*a - *b).abs() < 1e-9 * (n as f64),
                    "n = {n}: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn matches_complex_fft_with_padding() {
        for len in [3usize, 5, 17, 100, 500] {
            let x = signal(len, len as u64 + 100);
            let fast = rfft_padded(&x);
            let reference = fft_real_padded(&x);
            for (a, b) in fast.iter().zip(&reference) {
                assert!((*a - *b).abs() < 1e-9 * (len as f64 + 1.0));
            }
        }
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(rfft_padded(&[]).len(), 1);
        let one = rfft_padded(&[5.0]);
        assert_eq!(one[0], Complex64::from_real(5.0));
        let two = rfft_padded(&[1.0, 2.0]);
        assert!((two[0] - Complex64::from_real(3.0)).abs() < 1e-15);
        assert!((two[1] - Complex64::from_real(-1.0)).abs() < 1e-15);
    }

    #[test]
    fn spectrum_is_conjugate_symmetric() {
        let x = signal(128, 9);
        let spec = rfft_padded(&x);
        let n = spec.len();
        for k in 1..n / 2 {
            assert!((spec[k] - spec[n - k].conj()).abs() < 1e-10);
        }
        assert!(spec[0].im.abs() < 1e-12);
        assert!(spec[n / 2].im.abs() < 1e-12);
    }
}
