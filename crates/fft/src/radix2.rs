//! Iterative radix-2 Cooley–Tukey FFT.

use rlra_matrix::Complex64;

/// The smallest power of two `≥ n` (used for the padding strategy the
/// paper describes: "we padded the matrix A with zeroes such that its
/// leading dimension becomes the next power of two").
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// In-place decimation-in-time FFT of a power-of-two-length buffer.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_inplace(data: &mut [Complex64]) {
    fft_dir(data, false);
}

/// In-place inverse FFT (includes the `1/n` normalization).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft_inplace(data: &mut [Complex64]) {
    fft_dir(data, true);
    let n = data.len() as f64;
    for x in data.iter_mut() {
        *x = x.scale(1.0 / n);
    }
}

fn fft_dir(data: &mut [Complex64], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex64::cis(ang);
        let half = len / 2;
        let mut start = 0;
        while start < n {
            let mut w = Complex64::ONE;
            for i in 0..half {
                let u = data[start + i];
                let v = data[start + i + half] * w;
                data[start + i] = u + v;
                data[start + i + half] = u - v;
                w *= wlen;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Reorders `data` by bit-reversed index (the standard DIT pre-pass).
fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if i < j {
            data.swap(i, j);
        }
    }
}

/// FFT of a real-valued input (zero imaginary parts), with zero-padding to
/// the next power of two. Returns the padded complex spectrum.
pub fn fft_real_padded(x: &[f64]) -> Vec<Complex64> {
    let n = next_pow2(x.len().max(1));
    let mut buf = vec![Complex64::ZERO; n];
    for (b, &v) in buf.iter_mut().zip(x) {
        *b = Complex64::from_real(v);
    }
    fft_inplace(&mut buf);
    buf
}

/// Flop count model for a complex radix-2 FFT of length `n`:
/// `5 n log₂ n` real flops (the standard convention, which the paper's
/// effective-Gflop/s comparisons also use).
pub fn fft_flops(n: usize) -> u64 {
    if n <= 1 {
        return 0;
    }
    5 * n as u64 * (usize::BITS - 1 - n.leading_zeros()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(500), 512);
        assert_eq!(next_pow2(512), 512);
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        fft_inplace(&mut x);
        for v in &x {
            assert!(close(*v, Complex64::ONE, 1e-12));
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut x = vec![Complex64::ONE; 16];
        fft_inplace(&mut x);
        assert!(close(x[0], Complex64::from_real(16.0), 1e-12));
        for v in &x[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_single_tone() {
        // x[t] = e^{2πi·3t/n} transforms to n·δ_3.
        let n = 32;
        let mut x: Vec<Complex64> = (0..n)
            .map(|t| Complex64::cis(2.0 * std::f64::consts::PI * 3.0 * t as f64 / n as f64))
            .collect();
        fft_inplace(&mut x);
        for (k, v) in x.iter().enumerate() {
            let expect = if k == 3 { n as f64 } else { 0.0 };
            assert!((v.abs() - expect).abs() < 1e-10, "bin {k}: {v:?}");
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let orig: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut x = orig.clone();
        fft_inplace(&mut x);
        ifft_inplace(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!(close(*a, *b, 1e-12));
        }
    }

    #[test]
    fn parseval_identity() {
        let x: Vec<Complex64> = (0..128)
            .map(|i| Complex64::new((i as f64 * 1.3).sin(), (i as f64 * 0.4).cos()))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut f = x;
        fft_inplace(&mut f);
        let freq_energy: f64 = f.iter().map(|v| v.norm_sqr()).sum::<f64>() / 128.0;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex64> = (0..16).map(|i| Complex64::from_real(i as f64)).collect();
        let b: Vec<Complex64> = (0..16)
            .map(|i| Complex64::new(0.5 * i as f64, -(i as f64)))
            .collect();
        let sum: Vec<Complex64> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let (mut fa, mut fb, mut fs) = (a, b, sum);
        fft_inplace(&mut fa);
        fft_inplace(&mut fb);
        fft_inplace(&mut fs);
        for i in 0..16 {
            assert!(close(fs[i], fa[i] + fb[i], 1e-10));
        }
    }

    #[test]
    fn real_padding_extends_with_zeros() {
        let spec = fft_real_padded(&[1.0, 2.0, 3.0]); // pads to 4
        assert_eq!(spec.len(), 4);
        // DC bin = sum of inputs.
        assert!(close(spec[0], Complex64::from_real(6.0), 1e-12));
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn non_pow2_panics() {
        let mut x = vec![Complex64::ZERO; 6];
        fft_inplace(&mut x);
    }

    #[test]
    fn fft_flops_model() {
        assert_eq!(fft_flops(1), 0);
        assert_eq!(fft_flops(8), 5 * 8 * 3);
        assert_eq!(fft_flops(1024), 5 * 1024 * 10);
    }

    #[test]
    fn length_one_and_two() {
        let mut x = vec![Complex64::from_real(5.0)];
        fft_inplace(&mut x);
        assert!(close(x[0], Complex64::from_real(5.0), 0.0));

        let mut y = vec![Complex64::from_real(1.0), Complex64::from_real(2.0)];
        fft_inplace(&mut y);
        assert!(close(y[0], Complex64::from_real(3.0), 1e-15));
        assert!(close(y[1], Complex64::from_real(-1.0), 1e-15));
    }
}
