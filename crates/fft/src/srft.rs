//! Subsampled randomized Fourier transform (SRFT) sampling.
//!
//! The FFT sampling operator of the paper (§4): `Ω = S·F·D` where `D` is a
//! random diagonal sign flip, `F` the (power-of-two padded) FFT, and `S` a
//! random selection of `ℓ` output rows. The sampled matrix is `B = ΩA`.
//!
//! Two schemes are implemented, mirroring the paper's full/pruned
//! discussion:
//!
//! - **Full** ([`SrftScheme::Full`]): transform every column completely
//!   (`O(m̂ log m̂)` per column with `m̂` the padded length), then select
//!   `ℓ` rows. This is what cuFFT supports and what the paper measures.
//! - **Pruned** ([`SrftScheme::Pruned`]): compute only a strided subset of
//!   frequencies (`k ≡ r (mod m̂/ℓ̂)`) by folding the input into a
//!   length-`ℓ̂` buffer with phase weights and running a small FFT —
//!   `O(m̂ + ℓ̂ log ℓ̂)` per column. The paper notes cuFFT lacks this and
//!   analyzes its flop count (`O(mn log ℓ)`); we provide a working
//!   implementation for completeness.
//!
//! Since the downstream pipeline (QRCP of `B`) is real-valued, each
//! selected complex frequency is mapped to a real row by taking `√2·Re`
//! or `√2·Im` (chosen by a coin flip per row), a standard real-valued
//! subsampled-Fourier construction that preserves the expected isometry.

use crate::radix2::{fft_flops, fft_inplace, next_pow2};
use rand::Rng;
use rlra_matrix::{Complex64, Mat, MatrixError, Result};

/// Which SRFT evaluation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrftScheme {
    /// Transform everything, then select rows (cuFFT-style).
    Full,
    /// Compute only the selected (strided) frequencies.
    Pruned,
}

/// How a selected complex frequency row is mapped to a real row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReIm {
    Re,
    Im,
}

/// A sampled-FFT row-sampling operator `Ω` of shape `ℓ × m`.
#[derive(Debug, Clone)]
pub struct SrftOperator {
    /// Input length `m` (unpadded).
    m: usize,
    /// Padded length `m̂ = next_pow2(m)`.
    m_pad: usize,
    /// Number of sampled rows `ℓ`.
    l: usize,
    /// Random ±1 diagonal `D` (length `m`).
    signs: Vec<f64>,
    /// Selected frequency indices (within `0..m_pad`).
    freqs: Vec<usize>,
    /// Per-row choice of real or imaginary part.
    parts: Vec<ReIm>,
    /// Evaluation scheme.
    scheme: SrftScheme,
    /// Stride offset for the pruned scheme (`k ≡ offset (mod stride)`).
    stride: usize,
}

impl SrftOperator {
    /// Creates an `ℓ × m` SRFT sampling operator.
    ///
    /// For [`SrftScheme::Full`] the `ℓ` frequencies are drawn uniformly
    /// without replacement; for [`SrftScheme::Pruned`] they form a strided
    /// set `k = offset + t·(m̂/ℓ̂)` with a random offset (the structure
    /// that makes pruned evaluation `O(m̂ + ℓ̂ log ℓ̂)` per column).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::InvalidParameter`] if `l == 0` or `l > m`.
    pub fn new(m: usize, l: usize, scheme: SrftScheme, rng: &mut impl Rng) -> Result<Self> {
        if l == 0 || l > m {
            return Err(MatrixError::InvalidParameter {
                name: "l",
                message: format!("sampling size {l} must be in 1..={m}"),
            });
        }
        let m_pad = next_pow2(m);
        let signs: Vec<f64> = (0..m)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let parts: Vec<ReIm> = (0..l)
            .map(|_| {
                if rng.gen::<bool>() {
                    ReIm::Re
                } else {
                    ReIm::Im
                }
            })
            .collect();
        let (freqs, stride) = match scheme {
            SrftScheme::Full => {
                // Uniform sample without replacement (Floyd's algorithm is
                // overkill at these sizes; partial shuffle is fine).
                let mut all: Vec<usize> = (0..m_pad).collect();
                for i in 0..l {
                    let j = rng.gen_range(i..m_pad);
                    all.swap(i, j);
                }
                let mut sel = all[..l].to_vec();
                sel.sort_unstable();
                (sel, 0)
            }
            SrftScheme::Pruned => {
                let l_pad = next_pow2(l);
                let stride = (m_pad / l_pad).max(1);
                let offset = rng.gen_range(0..stride);
                let sel: Vec<usize> = (0..l).map(|t| offset + t * stride).collect();
                (sel, stride)
            }
        };
        Ok(SrftOperator {
            m,
            m_pad,
            l,
            signs,
            freqs,
            parts,
            scheme,
            stride,
        })
    }

    /// Number of sampled rows `ℓ`.
    pub fn rows(&self) -> usize {
        self.l
    }

    /// Input length `m`.
    pub fn input_len(&self) -> usize {
        self.m
    }

    /// Padded transform length `m̂`.
    pub fn padded_len(&self) -> usize {
        self.m_pad
    }

    /// The scheme this operator evaluates with.
    pub fn scheme(&self) -> SrftScheme {
        self.scheme
    }

    /// Applies the operator to one real vector of length `m`, producing
    /// `ℓ` real samples.
    pub fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.m);
        // Normalization keeps E‖Ωx‖² = ‖x‖²: the full unitary FFT scales
        // by 1/√m̂ and the row sampling by √(m̂/ℓ), combining to
        // √2/√(ℓ) extra for the Re/Im split.
        let scale = (2.0 / self.l as f64).sqrt();
        let selected = match self.scheme {
            SrftScheme::Full => self.apply_full(x),
            SrftScheme::Pruned => self.apply_pruned(x),
        };
        selected
            .iter()
            .zip(&self.parts)
            .map(|(z, part)| {
                scale
                    * match part {
                        ReIm::Re => z.re,
                        ReIm::Im => z.im,
                    }
            })
            .collect()
    }

    /// Full transform of one column, then row selection. Uses the
    /// real-input FFT (half-length packed transform) since matrix columns
    /// are real.
    fn apply_full(&self, x: &[f64]) -> Vec<Complex64> {
        let mut signed = vec![0.0f64; self.m];
        for (s, (&xi, &di)) in signed.iter_mut().zip(x.iter().zip(&self.signs)) {
            *s = xi * di;
        }
        let buf = crate::rfft::rfft_padded(&signed);
        debug_assert_eq!(buf.len(), self.m_pad);
        self.freqs.iter().map(|&k| buf[k]).collect()
    }

    /// Pruned transform: outputs `X[offset + c·stride]` only.
    ///
    /// Writing `t = u + j·ℓ̂`, `X[offset + c·stride] =
    /// Σ_u e^{−2πi c u/ℓ̂} · (Σ_j x[u + jℓ̂] e^{−2πi·offset·(u+jℓ̂)/m̂})`,
    /// i.e. a phase-weighted fold to length `ℓ̂` followed by an `ℓ̂`-point
    /// FFT.
    fn apply_pruned(&self, x: &[f64]) -> Vec<Complex64> {
        let l_pad = next_pow2(self.l);
        let offset = self.freqs[0];
        let mut folded = vec![Complex64::ZERO; l_pad];
        let ang_unit = -2.0 * std::f64::consts::PI * offset as f64 / self.m_pad as f64;
        for (t, &xt) in x.iter().enumerate() {
            let v = xt * self.signs[t];
            if v != 0.0 {
                let w = Complex64::cis(ang_unit * t as f64);
                folded[t % l_pad] += w.scale(v);
            }
        }
        fft_inplace(&mut folded);
        // Output c of the small FFT corresponds to frequency
        // offset + c·stride of the big one.
        (0..self.l).map(|c| folded[c]).collect()
    }

    /// Row sampling `B = Ω·A` (`ℓ × n`): the operator acts on each column
    /// of `A`.
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `a.rows() != m`.
    pub fn sample_rows(&self, a: &Mat) -> Result<Mat> {
        if a.rows() != self.m {
            return Err(MatrixError::DimensionMismatch {
                op: "SrftOperator::sample_rows",
                expected: format!("a.rows() == {}", self.m),
                found: format!("a.rows() == {}", a.rows()),
            });
        }
        let n = a.cols();
        let mut b = Mat::zeros(self.l, n);
        for j in 0..n {
            let col = self.apply_vec(a.col(j));
            b.col_mut(j).copy_from_slice(&col);
        }
        Ok(b)
    }

    /// Column sampling `B = Ω·Aᵀ` (`ℓ × rows(A)`): the operator acts on
    /// each row of `A` (requires `a.cols() == m`).
    ///
    /// # Errors
    ///
    /// Returns [`MatrixError::DimensionMismatch`] if `a.cols() != m`.
    pub fn sample_cols(&self, a: &Mat) -> Result<Mat> {
        if a.cols() != self.m {
            return Err(MatrixError::DimensionMismatch {
                op: "SrftOperator::sample_cols",
                expected: format!("a.cols() == {}", self.m),
                found: format!("a.cols() == {}", a.cols()),
            });
        }
        self.sample_rows(&a.transpose())
    }

    /// Flop count for sampling an `m × ncols` matrix with this operator
    /// (the quantities behind the paper's Figure 8 "effective Gflop/s"
    /// comparison).
    pub fn flops(&self, ncols: usize) -> u64 {
        let per_col = match self.scheme {
            SrftScheme::Full => {
                // Sign multiply + full padded FFT.
                self.m as u64 + fft_flops(self.m_pad)
            }
            SrftScheme::Pruned => {
                let l_pad = next_pow2(self.l);
                // Sign multiply + phase-weighted fold (6 flops/elem) + small FFT.
                self.m as u64 + 6 * self.m as u64 + fft_flops(l_pad)
            }
        };
        per_col * ncols as u64
    }

    /// Stride of the pruned frequency set (0 for the full scheme) —
    /// exposed for the cost model and tests.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn rejects_bad_sizes() {
        let mut r = rng(0);
        assert!(SrftOperator::new(10, 0, SrftScheme::Full, &mut r).is_err());
        assert!(SrftOperator::new(10, 11, SrftScheme::Full, &mut r).is_err());
        assert!(SrftOperator::new(10, 10, SrftScheme::Full, &mut r).is_ok());
    }

    #[test]
    fn full_selected_frequencies_are_distinct_and_sorted() {
        let mut r = rng(1);
        let op = SrftOperator::new(100, 16, SrftScheme::Full, &mut r).unwrap();
        for w in op.freqs.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(op.freqs.iter().all(|&k| k < op.padded_len()));
    }

    #[test]
    fn pruned_matches_full_fft_selection() {
        // The pruned evaluation must equal directly selecting the strided
        // frequencies from the full padded FFT (same D, offset).
        let mut r = rng(2);
        let m = 50;
        let l = 8;
        let op = SrftOperator::new(m, l, SrftScheme::Pruned, &mut r).unwrap();
        let x: Vec<f64> = (0..m).map(|i| (i as f64 * 0.37).sin()).collect();
        let pruned = op.apply_pruned(&x);
        let full = op.apply_full(&x);
        for (a, b) in pruned.iter().zip(&full) {
            assert!((*a - *b).abs() < 1e-9, "pruned {a:?} vs full {b:?}");
        }
    }

    #[test]
    fn norm_preserved_in_expectation() {
        // Average ‖Ωx‖²/‖x‖² over many independent operators ≈ 1.
        let m = 64;
        let l = 16;
        let x: Vec<f64> = (0..m).map(|i| ((i * 7 + 3) % 13) as f64 - 6.0).collect();
        let xn2: f64 = x.iter().map(|v| v * v).sum();
        let mut acc = 0.0;
        let trials = 200;
        let mut r = rng(3);
        for _ in 0..trials {
            let op = SrftOperator::new(m, l, SrftScheme::Full, &mut r).unwrap();
            let y = op.apply_vec(&x);
            acc += y.iter().map(|v| v * v).sum::<f64>();
        }
        let ratio = acc / trials as f64 / xn2;
        assert!((ratio - 1.0).abs() < 0.15, "E ratio = {ratio}");
    }

    #[test]
    fn sample_rows_shape_and_determinism() {
        let a = Mat::from_fn(30, 5, |i, j| ((i * 5 + j) % 7) as f64);
        let op = SrftOperator::new(30, 6, SrftScheme::Full, &mut rng(4)).unwrap();
        let b1 = op.sample_rows(&a).unwrap();
        let b2 = op.sample_rows(&a).unwrap();
        assert_eq!(b1.shape(), (6, 5));
        assert_eq!(b1, b2);
    }

    #[test]
    fn sample_cols_is_row_sampling_of_transpose() {
        let a = Mat::from_fn(4, 20, |i, j| (i + j * j) as f64);
        let op = SrftOperator::new(20, 3, SrftScheme::Full, &mut rng(5)).unwrap();
        let b = op.sample_cols(&a).unwrap();
        let bt = op.sample_rows(&a.transpose()).unwrap();
        assert_eq!(b, bt);
    }

    #[test]
    fn sampling_preserves_rank_information() {
        // A rank-2 matrix sampled down to l=6 rows still has numerical
        // rank 2.
        let u = Mat::from_fn(40, 2, |i, j| ((i + 1) as f64).powf(0.3 + j as f64));
        let v = Mat::from_fn(2, 10, |i, j| ((j + 2 * i) % 5) as f64 - 2.0);
        let mut a = Mat::zeros(40, 10);
        rlra_blas::gemm(
            1.0,
            u.as_ref(),
            rlra_blas::Trans::No,
            v.as_ref(),
            rlra_blas::Trans::No,
            0.0,
            a.as_mut(),
        )
        .unwrap();
        let op = SrftOperator::new(40, 6, SrftScheme::Full, &mut rng(6)).unwrap();
        let b = op.sample_rows(&a).unwrap();
        let s = rlra_lapack::singular_values(&b).unwrap();
        assert!(s[1] > 1e-10);
        assert!(s[2] < 1e-10 * s[0], "sampled rank should stay 2: {s:?}");
    }

    #[test]
    fn flops_pruned_less_than_full_for_small_l() {
        let mut r = rng(7);
        let full = SrftOperator::new(50_000, 64, SrftScheme::Full, &mut r).unwrap();
        let pruned = SrftOperator::new(50_000, 64, SrftScheme::Pruned, &mut r).unwrap();
        assert!(pruned.flops(100) < full.flops(100));
    }

    #[test]
    fn dimension_mismatch_detected() {
        let a = Mat::zeros(9, 3);
        let op = SrftOperator::new(10, 2, SrftScheme::Full, &mut rng(8)).unwrap();
        assert!(op.sample_rows(&a).is_err());
        assert!(op.sample_cols(&a).is_err());
    }
}
