//! Property-based tests of the FFT and SRFT sampling operators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rlra_fft::radix2::{fft_inplace, fft_real_padded, ifft_inplace, next_pow2};
use rlra_fft::{SrftOperator, SrftScheme};
use rlra_matrix::{Complex64, Mat};

fn complex_vec(len: usize, seed: u64) -> Vec<Complex64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let re = (state % 1000) as f64 / 500.0 - 1.0;
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let im = (state % 1000) as f64 / 500.0 - 1.0;
            Complex64::new(re, im)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fft_ifft_roundtrip(log_n in 0u32..11, seed in 0u64..1000) {
        let n = 1usize << log_n;
        let orig = complex_vec(n, seed);
        let mut x = orig.clone();
        fft_inplace(&mut x);
        ifft_inplace(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-10 * (n as f64).sqrt());
        }
    }

    #[test]
    fn parseval(log_n in 1u32..11, seed in 0u64..1000) {
        let n = 1usize << log_n;
        let x = complex_vec(n, seed);
        let te: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut f = x;
        fft_inplace(&mut f);
        let fe: f64 = f.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() < 1e-9 * (1.0 + te));
    }

    #[test]
    fn real_input_has_conjugate_symmetry(len in 2usize..200, seed in 0u64..1000) {
        let x: Vec<f64> = complex_vec(len, seed).iter().map(|z| z.re).collect();
        let spec = fft_real_padded(&x);
        let n = spec.len();
        prop_assert_eq!(n, next_pow2(len));
        // X[n-k] = conj(X[k]) for real inputs.
        for k in 1..n / 2 {
            let a = spec[k];
            let b = spec[n - k].conj();
            prop_assert!((a - b).abs() < 1e-9);
        }
        prop_assert!(spec[0].im.abs() < 1e-12);
    }

    #[test]
    fn srft_linearity(
        m in 8usize..120,
        l_frac in 1usize..4,
        scheme in prop_oneof![Just(SrftScheme::Full), Just(SrftScheme::Pruned)],
        seed in 0u64..1000,
        alpha in -2.0f64..2.0,
    ) {
        let l = (m / (l_frac + 1)).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let op = SrftOperator::new(m, l, scheme, &mut rng).unwrap();
        let x: Vec<f64> = complex_vec(m, seed + 1).iter().map(|z| z.re).collect();
        let y: Vec<f64> = complex_vec(m, seed + 2).iter().map(|z| z.re).collect();
        let combo: Vec<f64> = x.iter().zip(&y).map(|(a, b)| alpha * a + b).collect();
        let fx = op.apply_vec(&x);
        let fy = op.apply_vec(&y);
        let fc = op.apply_vec(&combo);
        for i in 0..l {
            prop_assert!((fc[i] - (alpha * fx[i] + fy[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn srft_row_sampling_matrix_consistency(
        m in 8usize..60,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        // sample_rows(A) column j equals apply_vec(A[:, j]).
        let l = (m / 2).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let op = SrftOperator::new(m, l, SrftScheme::Full, &mut rng).unwrap();
        let a = Mat::from_fn(m, n, |i, j| ((i * 7 + j * 3) % 13) as f64 - 6.0);
        let b = op.sample_rows(&a).unwrap();
        for j in 0..n {
            let col = op.apply_vec(a.col(j));
            for i in 0..l {
                prop_assert_eq!(b[(i, j)], col[i]);
            }
        }
    }

    #[test]
    fn pruned_equals_full_fft_on_selected_frequencies(
        m in 8usize..100,
        seed in 0u64..1000,
    ) {
        let l = (m / 3).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let op = SrftOperator::new(m, l, SrftScheme::Pruned, &mut rng).unwrap();
        let x: Vec<f64> = complex_vec(m, seed + 5).iter().map(|z| z.re).collect();
        // apply_vec goes through the pruned path; recompute via a fresh
        // full-scheme operator is NOT comparable (different freqs), so
        // compare against the operator's own full evaluation, exposed via
        // sample_rows on a single column (both paths share D and freqs).
        let out = op.apply_vec(&x);
        prop_assert_eq!(out.len(), l);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }
}
