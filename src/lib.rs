//! # rlra — randomized low-rank approximation on (simulated) GPUs
//!
//! A from-scratch Rust reproduction of *"Performance of Random Sampling
//! for Computing Low-rank Approximations of a Dense Matrix on GPUs"*
//! (Mary, Yamazaki, Kurzak, Luszczek, Tomov, Dongarra — SC'15).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`matrix`] | dense column-major matrices, views, permutations, norms |
//! | [`blas`] | BLAS 1/2/3 kernels (rayon-parallel GEMM) |
//! | [`lapack`] | Householder QR, CholQR, Gram–Schmidt, QRCP/QP3, Jacobi SVD |
//! | [`fft`] | radix-2 FFT + SRFT sampling |
//! | [`gpu`] | the simulated K40c: calibrated cost model, kernels, multi-GPU |
//! | [`core`] | the paper's algorithm: fixed-rank + adaptive random sampling |
//! | [`data`] | test-matrix generators (power/exponent spectra, HapMap-like) |
//! | [`perfmodel`] | the analytic cost model (paper Figures 5 and 10) |
//! | [`obs`] | fleet telemetry: metric registry, wall-clock profiling, flight recorder |
//!
//! ## Quickstart
//!
//! ```
//! use rlra::prelude::*;
//! use rand::SeedableRng;
//!
//! // A 200 x 100 matrix with a fast-decaying spectrum.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let spec = rlra::data::power_spectrum(100);
//! let tm = rlra::data::matrix_with_spectrum(200, 100, &spec, &mut rng).unwrap();
//!
//! // Rank-10 approximation by random sampling (k = 10, p = 10, q = 0).
//! let cfg = SamplerConfig::new(10);
//! let approx = sample_fixed_rank(&tm.a, &cfg, &mut rng).unwrap();
//!
//! // The error obeys the Halko–Martinsson–Tropp bound relative to
//! // sigma_{k+1}.
//! let err = approx.error_spectral(&tm.a).unwrap();
//! assert!(err < 30.0 * tm.sigma_after(10));
//! ```

#![forbid(unsafe_code)]

pub use rlra_blas as blas;
pub use rlra_core as core;
pub use rlra_data as data;
pub use rlra_fft as fft;
pub use rlra_gpu as gpu;
pub use rlra_lapack as lapack;
pub use rlra_matrix as matrix;
pub use rlra_obs as obs;
pub use rlra_perfmodel as perfmodel;

/// The most common imports for downstream users.
pub mod prelude {
    pub use rlra_core::{
        adaptive_sample, cur_decomposition, interpolative_decomposition, qp3_low_rank,
        randomized_svd, sample_fixed_accuracy, sample_fixed_rank, sample_fixed_rank_gpu,
        sample_fixed_rank_multi_gpu, AdaptiveConfig, BlrMatrix, CurDecomposition, FinishMode,
        HodlrMatrix, IncStrategy, InterpolativeDecomposition, LowRankApprox, RandomizedSvd,
        SamplerConfig, SamplingKind, Step2Kind,
    };
    pub use rlra_gpu::{DeviceSpec, ExecMode, Gpu, MultiGpu, Phase};
    pub use rlra_matrix::{ColPerm, Mat};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let cfg = SamplerConfig::new(5);
        assert_eq!(cfg.l(), 15);
        let m = Mat::identity(3);
        assert_eq!(m.rows(), 3);
    }
}
